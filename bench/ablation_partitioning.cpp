// Ablation — design-space exploration of the analog/digital partitioning
// (paper §2/§3: sub-block dimensioning comes from the system model).
//
// Three sweeps on the Full-fidelity gyro system:
//   1. ADC resolution vs rate-noise density — shows the sub-LSB carrier
//      quantization cliff below 14 bits that fixed the platform's converter
//      choice (see DESIGN.md).
//   2. Open vs closed loop — linearity and bandwidth (paper §4.1: closed
//      loop gives "more linear and accurate measures").
//   3. Output FIR corner vs measured -3 dB bandwidth — the programmable-
//      bandwidth knob behind Table 1's 25..75 Hz row.
#include <cmath>
#include <cstdio>

#include "common/math.hpp"
#include "common/spectrum.hpp"
#include "core/gyro_system.hpp"
#include "core/metrics.hpp"

using namespace ascp;
using namespace ascp::core;

namespace {

/// Warm up, measure raw gain and zero-rate noise, rate-referred.
struct QuickChar {
  double noise_dps = 0.0;
  double nonlin_pct = 0.0;
};

QuickChar quick_characterize(GyroSystemConfig cfg) {
  GyroSystem sys(cfg);
  sys.power_on(1);
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.2, nullptr);

  std::vector<double> rates, outs;
  for (double r : {-300.0, -150.0, 0.0, 150.0, 300.0}) {
    std::vector<double> o;
    sys.run(sensor::Profile::constant(r), sensor::Profile::constant(25.0), 0.25, &o);
    rates.push_back(r);
    outs.push_back(mean(std::span(o).subspan(o.size() / 2)));
  }
  const auto fit = fit_line(rates, outs);

  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.3, nullptr);
  std::vector<double> z;
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 4.0, &z);
  const auto psd = welch_psd(z, sys.output_rate_hz(), 1024);

  QuickChar qc;
  qc.noise_dps = std::sqrt(psd.band_mean(4.0, 20.0)) / std::abs(fit.slope);
  qc.nonlin_pct = fit.max_abs_residual / (std::abs(fit.slope) * 300.0) * 100.0;
  return qc;
}

}  // namespace

int main() {
  std::printf("=== Ablation: analog/digital partitioning sweeps ===\n\n");

  std::printf("[1] ADC resolution vs rate noise (Brownian floor ~0.09 deg/s/rtHz):\n");
  std::printf("    bits   noise [deg/s/rtHz]\n");
  for (int bits : {10, 12, 14, 16}) {
    auto cfg = default_gyro_system(Fidelity::Full);
    cfg.adc.bits = bits;
    const auto qc = quick_characterize(cfg);
    std::printf("    %4d   %8.4f%s\n", bits, qc.noise_dps,
                bits < 14 ? "   <- sub-LSB carrier quantization penalty" : "");
  }

  std::printf("\n[2] open loop vs closed loop (force feedback):\n");
  std::printf("    mode        nonlinearity [%%FS]  noise [deg/s/rtHz]\n");
  for (const auto mode : {SenseMode::OpenLoop, SenseMode::ClosedLoop}) {
    auto cfg = default_gyro_system(Fidelity::Full);
    cfg.sense.mode = mode;
    const auto qc = quick_characterize(cfg);
    std::printf("    %-11s %12.3f %18.4f\n",
                mode == SenseMode::OpenLoop ? "open" : "closed", qc.nonlin_pct, qc.noise_dps);
  }
  std::printf("    (open loop reads the residual sense motion through the nonlinear\n");
  std::printf("    pickoff and the narrow resonator envelope; closed loop nulls it —\n");
  std::printf("    the paper's sec. 4.1 'more linear and accurate measures'.)\n");

  std::printf("\n[3] programmable output bandwidth vs measured -3 dB (Table 1: 25..75 Hz):\n");
  std::printf("    bw setting [Hz]   measured BW [Hz]\n");
  for (double corner : {25.0, 50.0, 75.0}) {
    auto cfg = default_gyro_system(Fidelity::Full);
    cfg.sense.output_bw_hz = corner;
    GyroSystem sys(cfg);
    sys.power_on(1);
    sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.2, nullptr);
    const double bw = measure_bandwidth(sys, 25.0);
    std::printf("    %10.0f %18.1f\n", corner, bw);
  }

  std::printf("\n[4] DSP datapath word length (the 'RTL dimensioning' of sec. 2):\n");
  std::printf("    bits    noise [deg/s/rtHz]   nonlinearity [%%FS]\n");
  for (int bits : {8, 10, 12, 16, 0}) {
    auto cfg = default_gyro_system(Fidelity::Full);
    cfg.sense.datapath_bits = bits;
    const auto qc = quick_characterize(cfg);
    if (bits == 0)
      std::printf("    float  %10.4f %18.3f   (MATLAB reference level)\n", qc.noise_dps,
                  qc.nonlin_pct);
    else
      std::printf("    %5d  %10.4f %18.3f\n", bits, qc.noise_dps, qc.nonlin_pct);
  }
  std::printf("    (the servo dead-zone appears below ~10 bits; 16-bit baseband\n");
  std::printf("    registers are transparent against the float reference.)\n");
  return 0;
}
