// Ablation — the paper's central economic claim (§1/§3): a platform-derived
// per-sensor customization instantiates only the required blocks, while a
// Universal Sensor Interface ships the whole portfolio to every socket.
//
// We build three customizations (gyro, capacitive pressure, resistive
// bridge) and compare each against the universal superset on digital gates,
// analog area and power — the overhead the paper says its methodology
// removes ("practically no area overhead and best fit circuitry").
#include <cstdio>

#include "platform/area_model.hpp"

using namespace ascp::platform;

namespace {

AreaModel mcu_subsystem_base() {
  AreaModel m;
  for (const char* ip : {"cpu8051", "rom16k", "ram_ctrl", "uart", "bridge16", "regfile",
                         "jtag_tap", "spi", "timer16", "watchdog"})
    m.instantiate(ip);
  return m;
}

AreaModel gyro_customization() {
  AreaModel m = mcu_subsystem_base();
  m.instantiate("sram_ctrl");
  m.instantiate("cache_ctrl");
  for (const char* ip : {"nco", "pll_loop", "agc_loop", "iq_mod", "compensation", "biquad_bank",
                         "chain_ctrl", "fir"})
    m.instantiate(ip);
  m.instantiate("iq_demod", 2);
  m.instantiate("cic_decim", 2);
  m.instantiate("jtag_tap");
  for (const char* ip : {"charge_amp", "pga", "sar_adc12"}) m.instantiate(ip, 2);
  m.instantiate("dac12", 4);
  for (const char* ip : {"vref", "osc", "temp_sensor", "pad_ring"}) m.instantiate(ip);
  return m;
}

AreaModel pressure_customization() {
  // Capacitive pressure sensor: CDC-style chain, no drive loops at all.
  AreaModel m = mcu_subsystem_base();
  for (const char* ip : {"cap_cdc_dsp", "fir", "compensation", "chain_ctrl"}) m.instantiate(ip);
  m.instantiate("charge_amp");
  m.instantiate("pga");
  m.instantiate("sar_adc12");
  for (const char* ip : {"vref", "osc", "temp_sensor", "pad_ring"}) m.instantiate(ip);
  return m;
}

AreaModel bridge_customization() {
  // Resistive Wheatstone bridge: excitation + readout + compensation.
  AreaModel m = mcu_subsystem_base();
  for (const char* ip : {"bridge_readout_dsp", "fir", "compensation", "chain_ctrl"})
    m.instantiate(ip);
  m.instantiate("wheatstone_exc");
  m.instantiate("pga");
  m.instantiate("sar_adc12");
  for (const char* ip : {"vref", "osc", "temp_sensor", "pad_ring"}) m.instantiate(ip);
  return m;
}

void compare(const char* name, const AreaModel& custom, const AreaModel& universal) {
  const double g_over = (universal.total_kgates() / custom.total_kgates() - 1.0) * 100.0;
  const double a_over = (universal.total_analog_mm2() / custom.total_analog_mm2() - 1.0) * 100.0;
  const double p_over = (universal.total_power_mw() / custom.total_power_mw() - 1.0) * 100.0;
  std::printf("  %-22s %8.1f Kg %8.2f mm2 %8.1f mW   universal overhead: +%.0f%% gates, +%.0f%% analog, +%.0f%% power\n",
              name, custom.total_kgates(), custom.total_analog_mm2(), custom.total_power_mw(),
              g_over, a_over, p_over);
}

}  // namespace

int main() {
  std::printf("=== Ablation: platform customization vs Universal Sensor Interface ===\n\n");
  const auto universal = AreaModel::universal();
  std::printf("universal chip (whole portfolio): %.1f Kgates, %.2f mm2 analog, %.1f mW\n\n",
              universal.total_kgates(), universal.total_analog_mm2(),
              universal.total_power_mw());
  std::printf("per-sensor platform customizations:\n");
  compare("gyro (Table 1 system)", gyro_customization(), universal);
  compare("capacitive pressure", pressure_customization(), universal);
  compare("resistive bridge", bridge_customization(), universal);
  std::printf("\npaper claim (sec. 1): universal interfaces carry 'an increase in overall\n");
  std::printf("area and power consumption' for any given sensor; the platform flow\n");
  std::printf("instantiates only what the sensor needs. The overhead columns quantify it.\n");
  return 0;
}
