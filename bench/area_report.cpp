// §4.3 complexity claims — "The digital part of roughly 200 Kgates
// complexity has been implemented in a Xilinx X2S600E running a 20 MHz
// clock frequency. … the analog front end into a 12 mm² custom chip
// implemented in a 0.35 µm CMOS technology."
//
// Prints the per-IP area/power bookkeeping of the gyro customization and
// checks both headline numbers.
#include <cstdio>

#include "core/gyro_system.hpp"

using namespace ascp::core;

int main() {
  std::printf("=== Area / power report: gyro customization (paper sec. 4.3) ===\n\n");

  GyroSystem sys(default_gyro_system(Fidelity::Full));
  const auto& area = sys.platform().area();
  std::printf("%s\n", area.report("gyro conditioning platform, instantiated IPs").c_str());

  std::printf("paper claims:\n");
  std::printf("  digital complexity ~200 Kgates   -> model: %.1f Kgates\n", area.total_kgates());
  std::printf("  analog front end   ~12 mm2       -> model: %.2f mm2 (0.35 um, incl. pads)\n",
              area.total_analog_mm2());
  std::printf("  clock              20 MHz        -> model: %ld MHz (8051 subsystem)\n",
              sys.platform().config().cpu_clock_hz / 1000000);
  const bool gates_ok = area.total_kgates() > 160.0 && area.total_kgates() < 240.0;
  const bool analog_ok = area.total_analog_mm2() > 9.0 && area.total_analog_mm2() < 15.0;
  std::printf("\n  digital within 200 +/- 20%% : %s\n", gates_ok ? "YES" : "NO");
  std::printf("  analog  within 12  +/- 25%% : %s\n", analog_ok ? "YES" : "NO");
  return gates_ok && analog_ok ? 0 : 1;
}
