// Fault campaign — detection latency and recovery time per injected fault.
//
// Every fault from the standard catalogue is injected into a freshly built
// GyroSystem with the safety supervisor riding along: sensor-layer faults on
// the MEMS element, AFE faults on the converters and amplifiers (Full
// fidelity — Ideal has no AFE instances), DSP faults on the NCO and the
// config registers, MCU faults on the 8051 and the boot EEPROM. For each
// scenario the bench reports which DTCs latched, the detection latency in
// DSP samples (fault injection → first latch of the expected DTC) and the
// recovery time (fault injection → return to NOMINAL) where the fault is
// transient or the recovery path can clear it. Permanent faults legitimately
// never recover; the sense-ADC-stuck-at-null row is undetectable by design
// (an actively nulled channel frozen at null is indistinguishable from
// healthy operation) and is reported as such.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "analysis/firmware_corpus.hpp"
#include "core/gyro_system.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "safety/standard_faults.hpp"

using namespace ascp;
using core::Fidelity;
using core::GyroSystem;
using safety::FaultCampaign;

namespace {

struct Scenario {
  std::string title;
  Fidelity fidelity = Fidelity::Ideal;
  bool with_mcu = false;
  bool store_cal = false;  ///< persist a valid EEPROM record before the run
  /// Registers exactly one fault at the given DSP-sample index.
  std::function<void(FaultCampaign&, GyroSystem&, long)> bind;
};

struct Row {
  std::string name;
  const char* layer = "-";
  std::uint16_t expected = 0;
  bool detectable = true;
  std::uint16_t pre_dtcs = 0;   ///< anything latched before injection = false positive
  std::uint16_t latched = 0;
  long detect = -1;   ///< samples, injection → expected-DTC latch
  long recover = -1;  ///< samples, injection → return to NOMINAL
  const char* final_state = "?";
  bool armed = false;
  bool injected = false;
  // Structured-telemetry deltas for this scenario (from the shared registry).
  double ev_transitions = 0.0;  ///< supervisor.state_transitions
  double ev_latches = 0.0;      ///< supervisor.dtc_latches
  double ev_injections = 0.0;   ///< fault.injections
  std::uint64_t ev_total = 0;   ///< structured events emitted
};

/// Firmware for the MCU scenarios: the corpus watchdog kicker.
std::vector<std::uint8_t> kick_firmware(GyroSystem& gyro) {
  return analysis::corpus::assemble_watchdog_kicker(gyro.platform().config().map)
      .image;
}

void run_for(GyroSystem& g, double seconds) {
  g.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0),
        seconds, nullptr);
}

Row run_scenario(const Scenario& sc, obs::Observability& obs) {
  auto cfg = core::default_gyro_system(sc.fidelity);
  cfg.with_safety = true;
  cfg.with_mcu = sc.with_mcu;
  GyroSystem gyro(cfg);
  if (sc.with_mcu) gyro.platform().load_firmware(kick_firmware(gyro));
  gyro.power_on(1);

  // Metrics + events only: the registry/log are shared across scenarios so
  // the bench can report per-row deltas and a campaign-wide snapshot.
  obs::ObsSink sink;
  sink.metrics = &obs.metrics;
  sink.events = &obs.events;
  gyro.set_observability(sink);
  const auto snap0 = obs.metrics.snapshot();
  const std::uint64_t ev0 = obs.events.total();
  if (sc.with_mcu) {
    auto* wd = gyro.platform().watchdog();
    wd->write_reg(1, 30000);  // 1.5 ms of machine cycles at 20 MHz
    wd->write_reg(2, 1);
  }
  if (sc.store_cal)
    safety::store_calibration(*gyro.platform().spi(), gyro.config().comp);

  auto* sup = gyro.supervisor();
  // Warm up until the monitors arm (loop locked + settled, sustained).
  for (int i = 0; i < 30 && !sup->armed(); ++i) run_for(gyro, 0.1);

  Row row;
  row.armed = sup->armed();
  row.pre_dtcs = sup->dtcs();
  const auto finish_obs = [&](Row& r) {
    const auto snap1 = obs.metrics.snapshot();
    r.ev_transitions = snap1.counter_value("supervisor.state_transitions") -
                       snap0.counter_value("supervisor.state_transitions");
    r.ev_latches = snap1.counter_value("supervisor.dtc_latches") -
                   snap0.counter_value("supervisor.dtc_latches");
    r.ev_injections =
        snap1.counter_value("fault.injections") - snap0.counter_value("fault.injections");
    r.ev_total = obs.events.total() - ev0;
  };
  if (!sc.bind) {  // nominal baseline: no fault, just keep running
    row.name = sc.title;
    run_for(gyro, 2.0);
    row.latched = sup->dtcs();
    row.final_state = safety::state_name(sup->state());
    finish_obs(row);
    return row;
  }

  FaultCampaign campaign;
  const long inject_at = gyro.dsp_samples() + 1000;
  sc.bind(campaign, gyro, inject_at);
  const auto& spec = campaign.entries()[0].spec;
  row.name = spec.name;
  row.layer = safety::fault_layer_name(spec.layer);
  row.expected = spec.expected_dtc;
  row.detectable = spec.detectable;
  row.injected = true;

  gyro.set_fault_campaign(&campaign);
  run_for(gyro, 2.5);

  row.latched = sup->dtcs();
  if (row.expected) {
    const long first = sup->first_latch_fast(row.expected);
    if (first > inject_at) row.detect = first - inject_at;
  }
  if (sup->nominal_return_fast() > inject_at)
    row.recover = sup->nominal_return_fast() - inject_at;
  row.final_state = safety::state_name(sup->state());
  finish_obs(row);
  return row;
}

std::string fmt_samples(long n, double fs) {
  if (n < 0) return "-";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%ld (%.1f ms)", n, 1e3 * static_cast<double>(n) / fs);
  return buf;
}

}  // namespace

int main() {
  std::printf("=== Fault campaign: detection latency & recovery ===\n\n");
  std::printf("Safety supervisor with default thresholds; faults injected after\n");
  std::printf("arming; latency/recovery counted in DSP samples at 240 kHz.\n\n");

  using safety::FaultCampaign;
  namespace f = safety::faults;
  const std::vector<Scenario> scenarios = {
      {"(nominal baseline)", Fidelity::Ideal, false, false, nullptr},
      {"drive electrode open", Fidelity::Ideal, false, false,
       [](FaultCampaign& c, GyroSystem& g, long at) { f::add_drive_electrode_open(c, g, at); }},
      {"drive electrode stuck", Fidelity::Ideal, false, false,
       [](FaultCampaign& c, GyroSystem& g, long at) { f::add_drive_electrode_stuck(c, g, at); }},
      {"quadrature step", Fidelity::Ideal, false, false,
       [](FaultCampaign& c, GyroSystem& g, long at) { f::add_quadrature_step(c, g, at); }},
      {"primary ADC stuck code", Fidelity::Full, false, false,
       [](FaultCampaign& c, GyroSystem& g, long at) { f::add_primary_adc_stuck(c, g, at); }},
      {"sense ADC stuck at null", Fidelity::Full, false, false,
       [](FaultCampaign& c, GyroSystem& g, long at) { f::add_sense_adc_stuck_null(c, g, at); }},
      {"ADC reference drift", Fidelity::Full, false, false,
       [](FaultCampaign& c, GyroSystem& g, long at) { f::add_reference_drift(c, g, at); }},
      {"primary PGA gain error", Fidelity::Full, false, false,
       [](FaultCampaign& c, GyroSystem& g, long at) { f::add_pga_gain_error(c, g, at); }},
      {"primary charge-amp open wire", Fidelity::Full, false, false,
       [](FaultCampaign& c, GyroSystem& g, long at) { f::add_charge_amp_open(c, g, at); }},
      {"NCO phase jump", Fidelity::Ideal, false, false,
       [](FaultCampaign& c, GyroSystem& g, long at) { f::add_nco_phase_jump(c, g, at); }},
      {"config register bit flip", Fidelity::Ideal, false, false,
       [](FaultCampaign& c, GyroSystem& g, long at) { f::add_register_bit_flip(c, g, at); }},
      {"firmware hang (watchdog)", Fidelity::Ideal, true, false,
       [](FaultCampaign& c, GyroSystem& g, long at) { f::add_firmware_hang(c, g, at); }},
      {"EEPROM calibration corruption", Fidelity::Ideal, false, true,
       [](FaultCampaign& c, GyroSystem& g, long at) { f::add_eeprom_cal_corruption(c, g, at); }},
  };

  const double fs = 240e3;
  std::printf("%-30s %-7s %-15s %-34s %-18s %-18s %s\n", "fault", "layer",
              "expected DTC", "latched DTCs", "detect [smp]", "recover [smp]",
              "final");
  std::printf("%s\n", std::string(138, '-').c_str());

  obs::Observability obs;
  std::vector<Row> rows;
  int undetected = 0, false_positives = 0;
  for (const auto& sc : scenarios) {
    const Row row = run_scenario(sc, obs);
    rows.push_back(row);
    if (!row.armed) {
      std::printf("%-30s monitors never armed — scenario invalid\n", row.name.c_str());
      ++undetected;
      continue;
    }
    if (row.pre_dtcs) ++false_positives;

    std::string expected = row.expected ? safety::dtc_name(row.expected)
                                        : (row.detectable ? "-" : "(undetectable)");
    std::string detect;
    if (!row.detectable) {
      detect = "by design";
    } else if (!row.expected) {
      detect = "-";
    } else {
      detect = fmt_samples(row.detect, fs);
      if (row.detect < 0) {
        detect = "MISSED";
        ++undetected;
      }
    }
    const std::string recover = row.recover >= 0
        ? fmt_samples(row.recover, fs)
        : (row.injected ? "- (permanent)" : "-");
    std::printf("%-30s %-7s %-15s %-34s %-18s %-18s %s\n", row.name.c_str(),
                row.layer, expected.c_str(),
                safety::describe_dtcs(row.latched).c_str(), detect.c_str(),
                recover.empty() ? "-" : recover.c_str(), row.final_state);
  }

  std::printf("\n");
  std::printf("undetectable by design: 'sense ADC stuck at null' — the closed\n");
  std::printf("sense loop actively nulls the channel, so a code frozen at null is\n");
  std::printf("indistinguishable from healthy operation; a rail-stuck sense code\n");
  std::printf("IS detected (see tests/safety). Critical permanent faults hold\n");
  std::printf("SAFE_STATE with the output forced to null; transient faults (phase\n");
  std::printf("jump, register SEU, firmware hang) recover to NOMINAL via\n");
  std::printf("re-acquisition, scrub repair or the watchdog reset path; gain-class\n");
  std::printf("faults (reference drift, PGA error) are adapted around — the AGC\n");
  std::printf("re-trims and the state returns to NOMINAL while the DTC stays\n");
  std::printf("latched as service history.\n");
  // Machine-readable results with the campaign-wide telemetry snapshot
  // embedded — the structured-event totals make regressions in the event
  // pipeline visible alongside the detection-latency numbers.
  if (FILE* f = std::fopen("BENCH_fault_campaign.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"fault_campaign\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"fault\": \"%s\", \"layer\": \"%s\", \"detectable\": %s, "
                   "\"latched_dtcs\": %u, \"detect_samples\": %ld, "
                   "\"recover_samples\": %ld, \"final_state\": \"%s\", "
                   "\"state_transitions\": %.0f, \"dtc_latches\": %.0f, "
                   "\"fault_injections\": %.0f, \"events\": %llu}%s\n",
                   obs::json_escape(r.name).c_str(), r.layer, r.detectable ? "true" : "false",
                   r.latched, r.detect, r.recover, r.final_state, r.ev_transitions,
                   r.ev_latches, r.ev_injections,
                   static_cast<unsigned long long>(r.ev_total),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    const std::string snap = obs::json_snapshot(obs.metrics.snapshot(), &obs.events);
    std::fprintf(f, "  \"observability\": %s\n}\n", snap.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_fault_campaign.json\n");
  }

  std::printf("\nsummary: %d detectable fault(s) missed, %d false positive(s)\n",
              undetected, false_positives);
  return (undetected || false_positives) ? 1 : 0;
}
