// Fig. 5 — "Waveforms of PLL locking (MATLAB)".
//
// The paper's first validation artifact: the system-level (MATLAB) model of
// the drive loop acquiring lock, showing four traces — amplitude control,
// phase error, amplitude error, VCO control. We reproduce it with the Ideal
// fidelity (float chain, ideal transduction), print summary milestones and
// render the four waveforms; the full series goes to fig5_traces.csv.
#include <cstdio>

#include "common/trace.hpp"
#include "core/gyro_system.hpp"

using namespace ascp;
using namespace ascp::core;

int main() {
  std::printf("=== Fig. 5: PLL locking waveforms (system-level / 'MATLAB' model) ===\n");
  std::printf("Ideal fidelity: float DSP, ideal transduction, no AFE noise.\n\n");

  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  TraceRecorder trace;
  sys.set_trace(&trace, /*decimate=*/64);  // 3.75 kHz trace rate
  sys.power_on(1);

  // Power-on transient at rest, room temperature — the paper's scenario.
  const double kSimSeconds = 1.0;
  std::vector<double> out;
  double t_pll_lock = -1.0, t_agc_settle = -1.0;
  const double slice = 0.01;
  for (double t = 0.0; t < kSimSeconds; t += slice) {
    sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), slice, &out);
    if (t_pll_lock < 0 && sys.drive().pll_locked()) t_pll_lock = t + slice;
    if (t_agc_settle < 0 && sys.locked()) t_agc_settle = t + slice;
  }

  std::printf("milestones:\n");
  std::printf("  PLL lock detected      : %6.1f ms\n", t_pll_lock * 1e3);
  std::printf("  AGC amplitude settled  : %6.1f ms\n", t_agc_settle * 1e3);
  std::printf("  final drive frequency  : %8.2f Hz (resonance 15000.00 Hz)\n",
              sys.drive().frequency());
  std::printf("  final amplitude control: %8.4f V  (expected x*w0^2/(Q*fpv) = 1.78 V)\n",
              sys.drive().amplitude_control());
  std::printf("  final phase error      : %+8.5f (normalized PD)\n", sys.drive().phase_error());
  std::printf("  final VCO control      : %+8.3f Hz from centre\n\n", sys.drive().vco_control());

  for (const char* ch : {"amplitude_control", "phase_error", "amplitude_error", "vco_control"})
    std::printf("%s\n", trace.render_ascii(ch).c_str());

  trace.write_csv("fig5_traces.csv");
  std::printf("full series written to fig5_traces.csv\n");
  std::printf("paper shape: amplitude control ramps to its rail then settles; phase\n");
  std::printf("error spikes during pull-in and collapses to zero; amplitude error decays\n");
  std::printf("with the 2Q/w0 envelope; VCO control converges to the resonance offset.\n");
  return 0;
}
