// Fig. 6 — "Measured waveforms (AC probe)".
//
// The paper's second validation artifact: the same locking transient
// observed on the real prototype (FPGA + analog front end + sensor). Our
// equivalent is the Full fidelity path: charge amps, PGAs, anti-aliasing,
// SAR ADCs, DACs with settling/glitch, reference drift, electronics noise.
// The "AC probe" view is the primary pickoff at the ADC — a 15 kHz carrier
// whose envelope ring-up is what the paper's scope shot shows.
#include <cmath>
#include <cstdio>

#include "common/math.hpp"
#include "common/trace.hpp"
#include "core/gyro_system.hpp"

using namespace ascp;
using namespace ascp::core;

int main() {
  std::printf("=== Fig. 6: measured PLL locking (emulation / Full-fidelity path) ===\n");
  std::printf("Full fidelity: SAR ADCs, DACs, charge amps, noise — the 'prototype'.\n\n");

  GyroSystem sys(default_gyro_system(Fidelity::Full));
  TraceRecorder trace;
  sys.set_trace(&trace, /*decimate=*/64);
  sys.power_on(1);

  std::vector<double> out;
  double t_pll_lock = -1.0, t_agc_settle = -1.0;
  const double slice = 0.01;
  for (double t = 0.0; t < 1.0; t += slice) {
    sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), slice, &out);
    if (t_pll_lock < 0 && sys.drive().pll_locked()) t_pll_lock = t + slice;
    if (t_agc_settle < 0 && sys.locked()) t_agc_settle = t + slice;
  }

  std::printf("milestones (compare Fig. 5 — same shape, now with AFE in the loop):\n");
  std::printf("  PLL lock detected      : %6.1f ms\n", t_pll_lock * 1e3);
  std::printf("  AGC amplitude settled  : %6.1f ms\n", t_agc_settle * 1e3);
  std::printf("  final drive frequency  : %8.2f Hz\n", sys.drive().frequency());
  std::printf("  final pickoff amplitude: %8.4f V at the ADC (AGC target 1.0 V)\n\n",
              sys.drive().amplitude());

  // Envelope of the "AC probe" pickoff: peak per 2 ms bucket.
  const auto& pick = trace.channel("pickoff");
  const std::size_t per_bucket = static_cast<std::size_t>(0.002 / pick.dt);
  std::printf("pickoff envelope (AC probe), 2 ms buckets:\n  t[ms]  amplitude[V]\n");
  for (std::size_t b = 0; b + per_bucket <= pick.samples.size(); b += per_bucket * 25) {
    double peak = 0.0;
    for (std::size_t i = b; i < b + per_bucket; ++i)
      peak = std::max(peak, std::abs(pick.samples[i]));
    std::printf("  %5.0f  %8.4f\n", static_cast<double>(b) * pick.dt * 1e3, peak);
  }
  std::printf("\n");

  for (const char* ch : {"amplitude_control", "phase_error", "amplitude_error", "vco_control"})
    std::printf("%s\n", trace.render_ascii(ch).c_str());

  trace.write_csv("fig6_traces.csv");
  std::printf("full series written to fig6_traces.csv\n");
  std::printf("paper claim: 'an emulation environment has brought real sensors to\n");
  std::printf("locking' — the measured transient matches the MATLAB prediction of\n");
  std::printf("Fig. 5 apart from AFE noise and quantization texture.\n");
  return 0;
}
