// fleet_chaos — seeded chaos harness for the crash-resilient fleet runtime.
//
// Drives a mixed 8-channel fleet through a deterministic chaos script —
// worker stalls, one-shot channel exceptions, a persistent crasher, and
// checkpoint corruption (bit-flip and truncation) staged between run
// segments — and then audits the resilience invariants:
//
//   * zero lost channels  — every channel either caught up to the fleet tick
//                           or was quarantined with an ENGINE_FAULT DTC;
//   * full detection      — every injected stall was flagged by the watchdog,
//                           every exception restarted the channel, every
//                           corrupted checkpoint was rejected by the CRC
//                           frame and demoted to a cold rebuild;
//   * bit-exact recovery  — every surviving channel's output_hash() equals a
//                           clean solo twin that never saw chaos;
//   * replayable forensics — every restart/quarantine dumped a `.blackbox`
//                           crash image, every image decodes and replays to
//                           the wrecked instance's exact output hash, and
//                           every quarantined channel left at least one.
//
// Reports detection latency and MTTR percentiles to stdout and to
// BENCH_fleet_chaos.json. Exit status 0 when every invariant holds.
//
//   fleet_chaos [--smoke] [--seed N] [--blackbox-dir DIR]
//     --smoke           shorter run with small stall sleeps (CI-friendly)
//     --seed N          chaos-script seed (default 2026)
//     --blackbox-dir D  also write the crash images to D (CI forensics stage)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "platform/engine/blackbox.hpp"
#include "platform/engine/fleet.hpp"
#include "safety/dtc.hpp"

using namespace ascp;
using namespace ascp::engine;

namespace {

struct ChaosPlan {
  // fleet tick → channel for each injection kind
  std::vector<std::pair<long, std::size_t>> exceptions;  // one-shot throws
  std::vector<std::pair<long, std::size_t>> stalls;      // sleeps > deadline
  std::size_t persistent_crasher = 0;                    // throws from crash_from
  long crash_from = 0;
  std::size_t corrupt_victim = 0;   // checkpoint bit-flipped, then crashed
  std::size_t truncate_victim = 0;  // checkpoint truncated, then crashed
};

double mean(const std::vector<double>& v) {
  return v.empty() ? 0.0 : std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double maxv(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

const std::vector<ChannelKind> kKinds = {
    ChannelKind::GyroIdeal, ChannelKind::Adxrs300, ChannelKind::Gyrostar,
    ChannelKind::GyroIdeal, ChannelKind::Adxrs300, ChannelKind::Gyrostar,
    ChannelKind::GyroIdeal, ChannelKind::Adxrs300};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::uint64_t seed = 2026;
  const char* blackbox_dir = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) smoke = true;
    else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) seed = std::strtoull(argv[++i], nullptr, 10);
    else if (!std::strcmp(argv[i], "--blackbox-dir") && i + 1 < argc) blackbox_dir = argv[++i];
    else {
      std::fprintf(stderr, "usage: fleet_chaos [--smoke] [--seed N] [--blackbox-dir DIR]\n");
      return 2;
    }
  }

  const long total_ticks = smoke ? 24 : 60;
  const double stall_sleep_ms = smoke ? 30.0 : 60.0;

  FleetConfig fc;
  fc.root_seed = 424242;
  fc.threads = 4;
  fc.tick_seconds = 0.002;
  fc.tick_deadline_ms = smoke ? 12.0 : 25.0;
  fc.checkpoint_interval = 4;
  fc.max_restarts = 3;
  fc.backoff_base_ticks = 1;
  fc.backoff_cap_ticks = 4;

  // ---- deterministic chaos script ------------------------------------------
  // Victims are distinct channels; all tick choices come from the seed, so a
  // run is reproduced by its seed alone.
  Rng chaos(seed);
  ChaosPlan plan;
  std::vector<std::size_t> order(kKinds.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[chaos.next_u64() % i]);
  plan.persistent_crasher = order[0];
  plan.corrupt_victim = order[1];
  plan.truncate_victim = order[2];
  const auto pick_tick = [&](long lo, long hi) {
    return lo + static_cast<long>(chaos.next_u64() % static_cast<std::uint64_t>(hi - lo));
  };
  // Quarantine needs 4 crashes with backoffs 1/2/4 between them — the last
  // lands ~10 ticks after the first, which must stay inside the run.
  plan.crash_from = pick_tick(total_ticks / 2, total_ticks - 10);
  for (std::size_t k = 3; k < 5; ++k)
    plan.exceptions.emplace_back(pick_tick(2, total_ticks - 4), order[k]);
  for (std::size_t k = 5; k < 7; ++k)
    plan.stalls.emplace_back(pick_tick(2, total_ticks - 4), order[k]);
  // The corruption victims crash right after the segment boundary where their
  // checkpoint image is sabotaged (segment boundaries are thirds of the run).
  const long seg1 = total_ticks / 3, seg2 = 2 * total_ticks / 3;
  plan.exceptions.emplace_back(seg1 + 1, plan.corrupt_victim);
  plan.exceptions.emplace_back(seg2 + 1, plan.truncate_victim);

  // ---- fleet assembly -------------------------------------------------------
  std::atomic<long> stalls_injected{0}, exceptions_injected{0};
  std::vector<FleetChannelSpec> specs(kKinds.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].config.kind = kKinds[i];
    std::vector<long> ex_ticks, stall_ticks;
    for (const auto& [t, ch] : plan.exceptions)
      if (ch == i) ex_ticks.push_back(t);
    for (const auto& [t, ch] : plan.stalls)
      if (ch == i) stall_ticks.push_back(t);
    const bool crasher = i == plan.persistent_crasher;
    const long crash_from = plan.crash_from;
    specs[i].before_advance = [ex_ticks, stall_ticks, crasher, crash_from, stall_sleep_ms,
                               &stalls_injected, &exceptions_injected](long tick) {
      if (crasher && tick >= crash_from) {
        exceptions_injected.fetch_add(1);
        throw std::runtime_error("persistent crasher");
      }
      for (long t : ex_ticks)
        if (t == tick) {
          exceptions_injected.fetch_add(1);
          throw std::runtime_error("injected exception");
        }
      for (long t : stall_ticks)
        if (t == tick) {
          stalls_injected.fetch_add(1);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(stall_sleep_ms));
        }
    };
  }

  obs::Observability obs;
  FleetConfig cfg = fc;
  cfg.metrics = &obs.metrics;
  cfg.events = &obs.events;
  cfg.spans = &obs.spans;
  cfg.flight_recorders = true;
  if (blackbox_dir) cfg.blackbox_dir = blackbox_dir;
  // Every crash dump is captured for the forensics audit below (the sink
  // runs on the supervising thread, so a plain vector is safe).
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> dumps;
  cfg.blackbox_sink = [&dumps](std::size_t ch, const std::vector<std::uint8_t>& image) {
    dumps.emplace_back(ch, image);
  };
  FleetSupervisor fleet(std::move(specs), cfg);
  std::vector<std::uint64_t> delivered(kKinds.size(), 0);
  fleet.set_consumer([&delivered](std::size_t i, std::vector<double>&& batch) {
    delivered[i] += batch.size();
  });

  // ---- run: three segments with checkpoint sabotage at the boundaries ------
  const auto wall0 = std::chrono::steady_clock::now();
  fleet.run_ticks(seg1);
  fleet.corrupt_last_checkpoint(plan.corrupt_victim);
  fleet.run_ticks(seg2 - seg1);
  fleet.truncate_last_checkpoint(plan.truncate_victim, 16);
  fleet.run_ticks(total_ticks - seg2);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();

  const FleetStats& st = fleet.stats();

  // ---- clean twins: recovery must be bit-exact ------------------------------
  // Seeds fork sequentially from the root exactly as the supervisor derives
  // them; quarantined channels stopped mid-crash, so only survivors compare.
  Rng root(fc.root_seed);
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < kKinds.size(); ++i)
    seeds.push_back(root.fork(static_cast<std::uint64_t>(i) + 1).next_u64());

  bool hashes_ok = true;
  long lost_channels = 0;
  long quarantined_with_dtc = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (fleet.health(i) == ChannelHealth::Quarantined) {
      if (fleet.fleet_dtcs(i) & safety::kDtcEngineFault) ++quarantined_with_dtc;
      else ++lost_channels;  // parked without a trouble code = silent loss
      continue;
    }
    if (fleet.ticks_done(i) != fleet.ticks_run()) {
      ++lost_channels;
      continue;
    }
    ChannelConfig twin_cfg;
    twin_cfg.kind = kKinds[i];
    twin_cfg.seed = seeds[i];
    ConditioningChannel twin(twin_cfg);
    twin.advance(std::llround(static_cast<double>(total_ticks) * fc.tick_seconds *
                              twin.base_rate_hz()));
    if (twin.output_hash() != fleet.channel(i).output_hash()) {
      hashes_ok = false;
      std::printf("channel %zu: hash diverged from clean twin after recovery\n", i);
    }
  }

  // ---- blackbox forensics audit --------------------------------------------
  // Every captured crash image must decode and replay to the wrecked
  // instance's exact crash fingerprint, and every quarantined channel must
  // have left at least one image behind.
  long blackbox_replays_ok = 0;
  bool blackbox_replays_all = true;
  std::set<std::size_t> dumped_channels;
  for (const auto& [ch, image] : dumps) {
    dumped_channels.insert(ch);
    try {
      const BlackboxImage img = decode_blackbox(image);
      const BlackboxReplay rep = replay_blackbox(img);
      if (rep.hash_match) {
        ++blackbox_replays_ok;
      } else {
        blackbox_replays_all = false;
        std::printf("blackbox ch %zu: replay hash mismatch at crash tick %lld\n", ch,
                    static_cast<long long>(img.crash_ticks));
      }
    } catch (const std::exception& e) {
      blackbox_replays_all = false;
      std::printf("blackbox ch %zu: %s\n", ch, e.what());
    }
  }
  long quarantines_with_blackbox = 0;
  bool quarantines_dumped = true;
  for (std::size_t i = 0; i < fleet.size(); ++i)
    if (fleet.health(i) == ChannelHealth::Quarantined) {
      if (dumped_channels.count(i)) ++quarantines_with_blackbox;
      else quarantines_dumped = false;
    }
  const bool blackbox_ok = blackbox_replays_all && quarantines_dumped && !dumps.empty() &&
                           st.blackbox_dumps == static_cast<long>(dumps.size());

  const bool stalls_detected = st.stalls_detected >= stalls_injected.load();
  const bool exceptions_handled =
      st.exceptions == exceptions_injected.load() && st.restarts >= 3;
  const bool corruptions_detected = st.corrupt_checkpoints >= 2;
  const bool quarantine_worked =
      st.quarantined == 1 && quarantined_with_dtc == 1;
  const bool pass = lost_channels == 0 && stalls_detected && exceptions_handled &&
                    corruptions_detected && quarantine_worked && hashes_ok && blackbox_ok;

  std::printf("== fleet_chaos%s: seed %llu, %zu channels, %ld ticks, %.2fs wall ==\n",
              smoke ? " (smoke)" : "", static_cast<unsigned long long>(seed), fleet.size(),
              total_ticks, wall_s);
  std::printf("injected: %ld stalls, %ld exception events, 2 checkpoint corruptions\n",
              stalls_injected.load(), exceptions_injected.load());
  std::printf("detected: %ld stalls, %ld exceptions, %ld corrupt checkpoints\n",
              st.stalls_detected, st.exceptions, st.corrupt_checkpoints);
  std::printf("recovery: %ld restarts, %ld quarantined (with DTC: %ld), %ld checkpoints taken\n",
              st.restarts, st.quarantined, quarantined_with_dtc, st.checkpoints);
  std::printf("detection latency: mean %.2f ms, max %.2f ms over %zu stall incident(s)\n",
              mean(st.stall_detect_ms), maxv(st.stall_detect_ms), st.stall_detect_ms.size());
  std::printf("MTTR: mean %.2f ms, max %.2f ms over %zu incident(s)\n", mean(st.mttr_ms),
              maxv(st.mttr_ms), st.mttr_ms.size());
  std::printf("lost channels: %ld; surviving hashes bit-exact: %s\n", lost_channels,
              hashes_ok ? "yes" : "NO");
  std::printf("forensics: %zu blackbox dump(s), %ld replayed bit-exact, "
              "%ld/%ld quarantine(s) with image, %llu fleet spans\n",
              dumps.size(), blackbox_replays_ok, quarantines_with_blackbox, st.quarantined,
              static_cast<unsigned long long>(obs.spans.total()));
  std::printf("%s\n", pass ? "PASS" : "FAIL");

  if (FILE* f = std::fopen("BENCH_fleet_chaos.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"fleet_chaos\",\n  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"seed\": %llu,\n  \"channels\": %zu,\n  \"ticks\": %ld,\n",
                 static_cast<unsigned long long>(seed), fleet.size(), total_ticks);
    std::fprintf(f, "  \"wall_seconds\": %.3f,\n", wall_s);
    std::fprintf(f, "  \"injected\": {\"stalls\": %ld, \"exceptions\": %ld, \"checkpoint_corruptions\": 2},\n",
                 stalls_injected.load(), exceptions_injected.load());
    std::fprintf(f, "  \"detected\": {\"stalls\": %ld, \"exceptions\": %ld, \"corrupt_checkpoints\": %ld},\n",
                 st.stalls_detected, st.exceptions, st.corrupt_checkpoints);
    std::fprintf(f, "  \"recovery\": {\"restarts\": %ld, \"quarantined\": %ld, \"checkpoints\": %ld, \"shed_channel_ticks\": %ld},\n",
                 st.restarts, st.quarantined, st.checkpoints, st.shed_channel_ticks);
    std::fprintf(f, "  \"detection_latency_ms\": {\"mean\": %.3f, \"max\": %.3f, \"n\": %zu},\n",
                 mean(st.stall_detect_ms), maxv(st.stall_detect_ms), st.stall_detect_ms.size());
    std::fprintf(f, "  \"mttr_ms\": {\"mean\": %.3f, \"max\": %.3f, \"n\": %zu},\n",
                 mean(st.mttr_ms), maxv(st.mttr_ms), st.mttr_ms.size());
    std::fprintf(f, "  \"delivered_samples\": %ld,\n", st.delivered_samples);
    std::fprintf(f, "  \"engine_events\": %llu,\n",
                 static_cast<unsigned long long>(obs.events.count(obs::EventCategory::Engine)));
    std::fprintf(f, "  \"forensics\": {\"blackbox_dumps\": %ld, \"blackbox_replays_ok\": %ld, \"quarantines_with_blackbox\": %ld, \"fleet_spans\": %llu},\n",
                 st.blackbox_dumps, blackbox_replays_ok, quarantines_with_blackbox,
                 static_cast<unsigned long long>(obs.spans.total()));
    std::fprintf(f, "  \"invariants\": {\"lost_channels\": %ld, \"stalls_detected\": %s, \"exceptions_handled\": %s, \"corruptions_detected\": %s, \"quarantine_with_dtc\": %s, \"hashes_bit_exact\": %s, \"blackboxes_replayable\": %s},\n",
                 lost_channels, stalls_detected ? "true" : "false",
                 exceptions_handled ? "true" : "false", corruptions_detected ? "true" : "false",
                 quarantine_worked ? "true" : "false", hashes_ok ? "true" : "false",
                 blackbox_ok ? "true" : "false");
    std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_fleet_chaos.json\n");
  }

  return pass ? 0 : 1;
}
