// perf_channel_farm — throughput of the parallel conditioning farm.
//
// Sweeps {1, 4, 16, 64} channels × {1, T} worker threads and reports, for
// each configuration:
//   * samples/s          — decimated output samples produced per wall second
//   * channel-s/s        — simulated channel-seconds per wall second (the
//                          farm's capacity metric: how much device time the
//                          host buys per second)
//   * speedup            — vs the 1-thread farm of the same fleet size
// Every multi-threaded run is checked byte-identical to its single-threaded
// twin before its row is accepted. Results go to stdout and to
// BENCH_channel_farm.json in the working directory.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "platform/engine/channel_farm.hpp"

using namespace ascp;

namespace {

struct Row {
  std::size_t channels = 0;
  unsigned threads = 0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  double samples_per_sec = 0.0;
  double channel_sec_per_sec = 0.0;
  double speedup = 1.0;
  bool bit_identical = true;
};

// Homogeneous Ideal-fidelity fleet — the configuration a Monte Carlo
// characterization sweep would scale out, and the engine's batched path.
std::vector<engine::ChannelConfig> fleet(std::size_t n) {
  std::vector<engine::ChannelConfig> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].kind = engine::ChannelKind::GyroIdeal;
    specs[i].rate_dps = 10.0 + static_cast<double>(i % 7) * 12.5;
  }
  return specs;
}

struct RunResult {
  double wall = 0.0;
  std::size_t samples = 0;
  std::vector<std::uint64_t> hashes;
};

RunResult run_fleet(std::size_t n_channels, unsigned threads, double sim_seconds,
                    obs::MetricRegistry* metrics) {
  engine::FarmConfig fc;
  fc.root_seed = 2025;
  fc.threads = threads;
  fc.shared_metrics = metrics;
  engine::ChannelFarm farm(fleet(n_channels), fc);
  farm.advance(0.002);  // warmup: touch every channel once, fault in pages

  const auto t0 = std::chrono::steady_clock::now();
  farm.advance(sim_seconds);
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.wall = std::chrono::duration<double>(t1 - t0).count();
  r.samples = farm.total_samples();
  for (std::size_t i = 0; i < farm.size(); ++i) r.hashes.push_back(farm.channel(i).output_hash());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());

  // Sharded farm metrics: every run (serial and pooled) records into the same
  // registry, and the merged snapshot is embedded in BENCH_channel_farm.json.
  obs::MetricRegistry metrics;

  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    // CI smoke: a small pooled farm vs its single-threaded twin, checked
    // byte-identical. Exercises the pool handshake and the batched path
    // without the full sweep's runtime.
    const auto solo = run_fleet(4, 1, 0.1, &metrics);
    const auto pooled = run_fleet(4, hw, 0.1, &metrics);
    const bool ok = pooled.hashes == solo.hashes && pooled.samples == solo.samples;
    const auto snap = metrics.snapshot();
    std::printf("farm smoke: 4 channels, 0.1 s, %u threads: %zu samples, %s "
                "(%.0f advances metered)\n",
                hw, pooled.samples, ok ? "bit-identical" : "MISMATCH",
                snap.counter_value("farm.channel_advances"));
    return ok ? 0 : 1;
  }
  // Per-channel simulated time shrinks as the fleet grows so total simulated
  // channel-seconds (and the bench's runtime) stays roughly constant.
  const std::size_t kChannels[] = {1, 4, 16, 64};
  std::vector<Row> rows;

  std::printf("channel farm throughput (T = %u hardware threads)\n", hw);
  std::printf("%9s %8s %8s %10s %12s %14s %9s %6s\n", "channels", "threads", "sim_s", "wall_s",
              "samples/s", "channel-s/s", "speedup", "ident");

  for (const std::size_t n : kChannels) {
    const double sim_seconds = 1.28 / static_cast<double>(n);
    const auto solo = run_fleet(n, 1, sim_seconds, &metrics);
    for (const unsigned threads : {1u, hw}) {
      const auto r = threads == 1 ? solo : run_fleet(n, threads, sim_seconds, &metrics);
      Row row;
      row.channels = n;
      row.threads = threads;
      row.sim_seconds = sim_seconds;
      row.wall_seconds = r.wall;
      row.samples_per_sec = static_cast<double>(r.samples) / r.wall;
      row.channel_sec_per_sec = static_cast<double>(n) * sim_seconds / r.wall;
      row.speedup = solo.wall / r.wall;
      row.bit_identical = r.hashes == solo.hashes;
      rows.push_back(row);
      std::printf("%9zu %8u %8.4f %10.4f %12.3e %14.3f %9.2f %6s\n", row.channels, row.threads,
                  row.sim_seconds, row.wall_seconds, row.samples_per_sec, row.channel_sec_per_sec,
                  row.speedup, row.bit_identical ? "yes" : "NO");
    }
  }

  FILE* f = std::fopen("BENCH_channel_farm.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"bench\": \"channel_farm\",\n  \"hardware_threads\": %u,\n", hw);
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"channels\": %zu, \"threads\": %u, \"sim_seconds\": %.6f, "
                   "\"wall_seconds\": %.6f, \"samples_per_sec\": %.3f, "
                   "\"channel_seconds_per_sec\": %.4f, \"speedup\": %.3f, "
                   "\"bit_identical\": %s}%s\n",
                   r.channels, r.threads, r.sim_seconds, r.wall_seconds, r.samples_per_sec,
                   r.channel_sec_per_sec, r.speedup, r.bit_identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Merged sharded-metrics snapshot across every run above; the counter
    // totals are thread-count-independent (only commutative sums are shared).
    const std::string snap = obs::json_snapshot(metrics.snapshot());
    std::fprintf(f, "  \"observability\": %s\n}\n", snap.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_channel_farm.json\n");
  }

  bool ok = true;
  for (const Row& r : rows) ok = ok && r.bit_identical;
  return ok ? 0 : 1;
}
