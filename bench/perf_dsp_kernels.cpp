// Microbenchmarks (google-benchmark) of the DSP IPs and the full simulation
// step — documents the simulator's throughput (how many seconds of platform
// operation per wall second) and the relative kernel costs.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/gyro_system.hpp"
#include "dsp/biquad.hpp"
#include "dsp/cic.hpp"
#include "dsp/fir.hpp"
#include "dsp/nco.hpp"
#include "dsp/pll.hpp"
#include "mcu/assembler.hpp"
#include "mcu/core8051.hpp"
#include "sensor/gyro_mems.hpp"

using namespace ascp;

static void BM_FirFilter33(benchmark::State& state) {
  dsp::FirFilter fir(dsp::design_lowpass(33, 75.0, 1875.0));
  double x = 0.3;
  for (auto _ : state) {
    x = fir.process(x * 0.999 + 0.001);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FirFilter33);

static void BM_FirFilterFx33(benchmark::State& state) {
  dsp::FirFilterFx fir(dsp::design_lowpass(33, 75.0, 1875.0), 16, 14, 24);
  double x = 0.3;
  for (auto _ : state) {
    x = fir.process(x * 0.999 + 0.001);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FirFilterFx33);

static void BM_Biquad(benchmark::State& state) {
  dsp::Biquad bq(dsp::design_biquad_lowpass(400.0, 0.707, 240e3));
  double x = 0.3;
  for (auto _ : state) {
    x = bq.process(x * 0.999 + 0.001);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Biquad);

static void BM_Nco(benchmark::State& state) {
  dsp::Nco nco(240e3, 15e3);
  for (auto _ : state) benchmark::DoNotOptimize(nco.step());
}
BENCHMARK(BM_Nco);

static void BM_CicDecimator(benchmark::State& state) {
  dsp::CicDecimator cic(3, 128, 16, 2.5);
  double x = 0.1;
  for (auto _ : state) {
    x = x * 0.999 + 0.001;
    benchmark::DoNotOptimize(cic.push(x));
  }
}
BENCHMARK(BM_CicDecimator);

static void BM_PllStep(benchmark::State& state) {
  dsp::Pll pll(dsp::PllConfig{});
  double pickoff = 0.0;
  for (auto _ : state) {
    const double drive = pll.step(pickoff);
    pickoff = 0.9 * drive;  // crude loop closure
    benchmark::DoNotOptimize(pickoff);
  }
}
BENCHMARK(BM_PllStep);

static void BM_GyroMemsRk4Step(benchmark::State& state) {
  sensor::GyroMemsConfig cfg;
  sensor::GyroMems mems(cfg, Rng(1));
  sensor::GyroInputs in;
  in.v_drive = 1.0;
  in.rate_dps = 100.0;
  for (auto _ : state) benchmark::DoNotOptimize(mems.step(in));
}
BENCHMARK(BM_GyroMemsRk4Step);

static void BM_Core8051Instruction(benchmark::State& state) {
  mcu::Core8051 core;
  mcu::Assembler as;
  core.load_program(as.assemble(R"(
loop: MOV A,#5
      ADD A,#3
      MOV R2,A
      DJNZ R2,skip
skip: SJMP loop
  )").image);
  for (auto _ : state) benchmark::DoNotOptimize(core.step());
}
BENCHMARK(BM_Core8051Instruction);

static void BM_FullSystemMillisecond_Ideal(benchmark::State& state) {
  core::GyroSystem sys(core::default_gyro_system(core::Fidelity::Ideal));
  sys.power_on(1);
  const auto rate = sensor::Profile::constant(100.0);
  const auto temp = sensor::Profile::constant(25.0);
  for (auto _ : state) sys.run(rate, temp, 1e-3, nullptr);
}
BENCHMARK(BM_FullSystemMillisecond_Ideal)->Unit(benchmark::kMillisecond);

static void BM_FullSystemMillisecond_Full(benchmark::State& state) {
  core::GyroSystem sys(core::default_gyro_system(core::Fidelity::Full));
  sys.power_on(1);
  const auto rate = sensor::Profile::constant(100.0);
  const auto temp = sensor::Profile::constant(25.0);
  for (auto _ : state) sys.run(rate, temp, 1e-3, nullptr);
}
BENCHMARK(BM_FullSystemMillisecond_Full)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
