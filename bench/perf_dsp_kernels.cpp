// Microbenchmarks (google-benchmark) of the DSP IPs and the full simulation
// step — documents the simulator's throughput (how many seconds of platform
// operation per wall second) and the relative kernel costs.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/gyro_system.hpp"
#include "core/sense_chain.hpp"
#include "dsp/biquad.hpp"
#include "dsp/cic.hpp"
#include "dsp/fir.hpp"
#include "dsp/nco.hpp"
#include "dsp/pll.hpp"
#include "mcu/assembler.hpp"
#include "mcu/core8051.hpp"
#include "sensor/environment.hpp"
#include "sensor/gyro_mems.hpp"

using namespace ascp;

static void BM_FirFilter33(benchmark::State& state) {
  dsp::FirFilter fir(dsp::design_lowpass(33, 75.0, 1875.0));
  double x = 0.3;
  for (auto _ : state) {
    x = fir.process(x * 0.999 + 0.001);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FirFilter33);

static void BM_FirFilterFx33(benchmark::State& state) {
  dsp::FirFilterFx fir(dsp::design_lowpass(33, 75.0, 1875.0), 16, 14, 24);
  double x = 0.3;
  for (auto _ : state) {
    x = fir.process(x * 0.999 + 0.001);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FirFilterFx33);

static void BM_Biquad(benchmark::State& state) {
  dsp::Biquad bq(dsp::design_biquad_lowpass(400.0, 0.707, 240e3));
  double x = 0.3;
  for (auto _ : state) {
    x = bq.process(x * 0.999 + 0.001);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Biquad);

static void BM_Nco(benchmark::State& state) {
  dsp::Nco nco(240e3, 15e3);
  for (auto _ : state) benchmark::DoNotOptimize(nco.step());
}
BENCHMARK(BM_Nco);

static void BM_CicDecimator(benchmark::State& state) {
  dsp::CicDecimator cic(3, 128, 16, 2.5);
  double x = 0.1;
  for (auto _ : state) {
    x = x * 0.999 + 0.001;
    benchmark::DoNotOptimize(cic.push(x));
  }
}
BENCHMARK(BM_CicDecimator);

// ---- batched variants -------------------------------------------------------
// Same kernels through the *_block APIs at the engine's natural block size
// (one CIC frame, 128 samples). Counts are per sample so the per-item times
// compare directly against the scalar benches above.

static void BM_FirFilter33_Block(benchmark::State& state) {
  dsp::FirFilter fir(dsp::design_lowpass(33, 75.0, 1875.0));
  std::vector<double> buf(128, 0.3);
  for (auto _ : state) {
    fir.process_block(buf, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_FirFilter33_Block);

static void BM_Biquad_Block(benchmark::State& state) {
  dsp::Biquad bq(dsp::design_biquad_lowpass(400.0, 0.707, 240e3));
  std::vector<double> buf(128, 0.3);
  for (auto _ : state) {
    bq.process_block(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_Biquad_Block);

static void BM_Nco_Block(benchmark::State& state) {
  dsp::Nco nco(240e3, 15e3);
  std::vector<double> s(128), c(128);
  for (auto _ : state) {
    nco.step_block(s, c);
    benchmark::DoNotOptimize(s.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_Nco_Block);

static void BM_CicDecimator_Block(benchmark::State& state) {
  dsp::CicDecimator cic(3, 128, 16, 2.5);
  std::vector<double> in(128, 0.1), out(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cic.push_block(in, out));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_CicDecimator_Block);

// ---- full sense chain, one channel ------------------------------------------
// Open-loop chain at the 240 kHz DSP rate: the farm's per-channel hot path,
// scalar vs one-CIC-frame blocks. items/s here is DSP samples per second.

static void BM_SenseChainStep(benchmark::State& state) {
  core::SenseChainConfig cfg;
  cfg.mode = core::SenseMode::OpenLoop;
  core::SenseChain chain(cfg);
  dsp::Nco nco(cfg.fs, 15e3);
  for (auto _ : state) {
    nco.step();
    chain.step(0.3 * nco.cosine(), nco.sine(), nco.cosine());
    benchmark::DoNotOptimize(chain.slow_output(25.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SenseChainStep);

static void BM_SenseChainStepBlock(benchmark::State& state) {
  core::SenseChainConfig cfg;
  cfg.mode = core::SenseMode::OpenLoop;
  core::SenseChain chain(cfg);
  dsp::Nco nco(cfg.fs, 15e3);
  const std::size_t n = static_cast<std::size_t>(chain.samples_until_slow());
  std::vector<double> pk(n), ci(n), cq(n);
  for (auto _ : state) {
    nco.step_block(ci, cq);
    for (std::size_t k = 0; k < n; ++k) pk[k] = 0.3 * cq[k];
    chain.step_block(pk, ci, cq);
    benchmark::DoNotOptimize(chain.slow_output(25.0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SenseChainStepBlock);

static void BM_PllStep(benchmark::State& state) {
  dsp::Pll pll(dsp::PllConfig{});
  double pickoff = 0.0;
  for (auto _ : state) {
    const double drive = pll.step(pickoff);
    pickoff = 0.9 * drive;  // crude loop closure
    benchmark::DoNotOptimize(pickoff);
  }
}
BENCHMARK(BM_PllStep);

static void BM_GyroMemsRk4Step(benchmark::State& state) {
  sensor::GyroMemsConfig cfg;
  sensor::GyroMems mems(cfg, Rng(1));
  sensor::GyroInputs in;
  in.v_drive = 1.0;
  in.rate_dps = 100.0;
  for (auto _ : state) benchmark::DoNotOptimize(mems.step(in));
}
BENCHMARK(BM_GyroMemsRk4Step);

static void BM_Core8051Instruction(benchmark::State& state) {
  mcu::Core8051 core;
  mcu::Assembler as;
  core.load_program(as.assemble(R"(
loop: MOV A,#5
      ADD A,#3
      MOV R2,A
      DJNZ R2,skip
skip: SJMP loop
  )").image);
  for (auto _ : state) benchmark::DoNotOptimize(core.step());
}
BENCHMARK(BM_Core8051Instruction);

// Profile evaluation sits on the per-tick stimulus path of every channel, so
// the tagged-union dispatch has a perf row of its own. The mix covers the
// analytic kinds; the Fn row prices the std::function escape hatch against it.
static void BM_ProfileEval(benchmark::State& state) {
  const sensor::Profile profiles[4] = {
      sensor::Profile::sine(100.0, 25.0),
      sensor::Profile::staircase({-50.0, 0.0, 50.0, 100.0}, 0.25),
      sensor::Profile::chirp(80.0, 10.0, 400.0, 0.0, 1.0),
      sensor::Profile::ramp(-10.0, 10.0, 0.0, 1.0),
  };
  double t = 0.0;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiles[i & 3].at(t));
    t += 1e-6;
    ++i;
  }
}
BENCHMARK(BM_ProfileEval);

static void BM_ProfileEvalFn(benchmark::State& state) {
  const sensor::Profile p{sensor::Profile::Fn(
      [](double t) { return 100.0 * std::sin(2.0 * 3.141592653589793 * 25.0 * t); })};
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.at(t));
    t += 1e-6;
  }
}
BENCHMARK(BM_ProfileEvalFn);

static void BM_FullSystemMillisecond_Ideal(benchmark::State& state) {
  core::GyroSystem sys(core::default_gyro_system(core::Fidelity::Ideal));
  sys.power_on(1);
  const auto rate = sensor::Profile::constant(100.0);
  const auto temp = sensor::Profile::constant(25.0);
  for (auto _ : state) sys.run(rate, temp, 1e-3, nullptr);
}
BENCHMARK(BM_FullSystemMillisecond_Ideal)->Unit(benchmark::kMillisecond);

static void BM_FullSystemMillisecond_Full(benchmark::State& state) {
  core::GyroSystem sys(core::default_gyro_system(core::Fidelity::Full));
  sys.power_on(1);
  const auto rate = sensor::Profile::constant(100.0);
  const auto temp = sensor::Profile::constant(25.0);
  for (auto _ : state) sys.run(rate, temp, 1e-3, nullptr);
}
BENCHMARK(BM_FullSystemMillisecond_Full)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
