// perf_obs — cost of the observability layer, with an allocation meter.
//
// The obs contract is "cheap enough to leave armed on every channel, and
// bit-neutral". This bench prices both halves:
//
//   * record path   — ns/op for the flight-recorder ring (event / metric
//                     delta / probe sample), the event log and the span log,
//                     measured *after* the rings have wrapped so the steady
//                     state is what's priced. A global operator-new override
//                     counts allocations inside each timed loop: the record
//                     path must allocate exactly zero times.
//   * attach cost   — one GyroIdeal channel advanced three ways (no obs /
//                     with_obs / with_flight_recorder) over identical
//                     simulated time. The three output hashes must be equal
//                     (bit-neutrality) and the overhead percentages are
//                     reported; detached-vs-baseline must be noise.
//
// Results go to stdout and BENCH_observability.json (or --json FILE).
// Exit status: 0 when the record path is allocation-free and the hashes
// match, 1 otherwise.
//
//   perf_obs            full iteration counts
//   perf_obs --smoke    CI-sized loops, same checks
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "obs/observability.hpp"
#include "platform/engine/conditioning_channel.hpp"

// ---- allocation meter -------------------------------------------------------
// Single-TU global override: every new/new[] in the binary bumps the counter.
// Plain (unaligned) forms only — the obs layer never over-aligns — and the
// matching deletes route through free() so the pairing stays consistent.
namespace {
std::uint64_t g_allocs = 0;
}

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace ascp;

namespace {

struct OpRow {
  const char* name;
  double ns_per_op = 0.0;
  std::uint64_t allocs = 0;
  long iterations = 0;
};

/// Time `fn` over `iters` calls, counting allocations inside the loop.
template <typename Fn>
OpRow time_op(const char* name, long iters, Fn&& fn) {
  OpRow row;
  row.name = name;
  row.iterations = iters;
  const std::uint64_t a0 = g_allocs;
  const auto t0 = std::chrono::steady_clock::now();
  for (long i = 0; i < iters; ++i) fn(i);
  const auto t1 = std::chrono::steady_clock::now();
  row.allocs = g_allocs - a0;
  row.ns_per_op = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                  static_cast<double>(iters);
  return row;
}

struct ChannelRun {
  double wall_seconds = 0.0;
  std::uint64_t hash = 0;
  std::uint64_t samples = 0;
  std::uint64_t records = 0;
  std::uint64_t spans = 0;
};

/// Advance one GyroIdeal channel `sim_ticks` base ticks in chunks, draining
/// the queue like a fleet consumer would.
ChannelRun run_channel(bool with_obs, bool with_recorder, long sim_ticks) {
  engine::ChannelConfig cfg;
  cfg.kind = engine::ChannelKind::GyroIdeal;
  cfg.seed = 2026;
  cfg.rate_dps = 30.0;
  cfg.with_obs = with_obs;
  cfg.with_flight_recorder = with_recorder;
  engine::ConditioningChannel ch(cfg);

  const long chunk = sim_ticks / 50 > 0 ? sim_ticks / 50 : sim_ticks;
  ch.advance(chunk);  // warmup chunk: fault in pages, settle the PLL path
  (void)ch.take_outputs();

  ChannelRun r;
  const auto t0 = std::chrono::steady_clock::now();
  for (long done = 0; done < sim_ticks; done += chunk) {
    ch.advance(chunk < sim_ticks - done ? chunk : sim_ticks - done);
    (void)ch.take_outputs();
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.hash = ch.output_hash();
  r.samples = ch.total_outputs();
  if (auto* obs = ch.observability()) r.spans = obs->spans.total();
  if (auto* rec = ch.flight_recorder()) r.records = rec->total();
  return r;
}

double pct_over(double base, double x) { return base > 0.0 ? (x - base) / base * 100.0 : 0.0; }

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = "BENCH_observability.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) {
      smoke = true;
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_obs [--smoke] [--json FILE]\n");
      return 2;
    }
  }

  const long iters = smoke ? 200000 : 2000000;

  // ---- record-path microbenchmarks (steady state: rings pre-wrapped) -------
  obs::FlightRecorder fr(2048);
  obs::EventLog log(1024);
  log.set_flight_recorder(&fr);
  obs::SpanLog spans(1024);
  for (int i = 0; i < 4096; ++i) {  // wrap every ring before timing
    fr.record_metric(0.0, "warm", 1.0);
    log.emit(0.0, obs::EventSeverity::Debug, obs::EventCategory::Engine, "warm");
    spans.complete("warm", obs::SpanCategory::Channel, 0.0, 0.0);
  }

  std::vector<OpRow> rows;
  rows.push_back(time_op("recorder.record_event", iters, [&](long i) {
    fr.record_event(static_cast<double>(i), 1, 8, "tick_failed", "stall detected",
                    "channel", 3.0, "elapsed_ms", 12.5);
  }));
  rows.push_back(time_op("recorder.record_metric", iters, [&](long i) {
    fr.record_metric(static_cast<double>(i), "channel.outputs", 64.0);
  }));
  rows.push_back(time_op("recorder.record_probe", iters, [&](long i) {
    fr.record_probe(static_cast<double>(i), 4, i, 0.25, -0.25);
  }));
  rows.push_back(time_op("eventlog.emit+tee", iters, [&](long i) {
    log.emit(static_cast<double>(i), obs::EventSeverity::Info, obs::EventCategory::Engine,
             "restart", {}, {{"channel", 1.0}, {"backoff_ticks", 2.0}});
  }));
  rows.push_back(time_op("spanlog.begin+end", iters, [&](long i) {
    const auto id = spans.begin("channel.advance", obs::SpanCategory::Channel,
                                static_cast<double>(i));
    spans.end(id, static_cast<double>(i) + 1.0);
  }));

  bool alloc_free = true;
  std::printf("record path (%ld iterations each, rings wrapped)\n", iters);
  std::printf("%-24s %10s %8s\n", "op", "ns/op", "allocs");
  for (const OpRow& r : rows) {
    std::printf("%-24s %10.1f %8llu%s\n", r.name, r.ns_per_op,
                static_cast<unsigned long long>(r.allocs), r.allocs ? "  <-- NOT ZERO" : "");
    alloc_free = alloc_free && r.allocs == 0;
  }

  // ---- channel attach cost --------------------------------------------------
  const long sim_ticks = smoke ? 200000 : 2000000;  // base ticks @ 1 MHz
  const ChannelRun base = run_channel(false, false, sim_ticks);
  const ChannelRun wobs = run_channel(true, false, sim_ticks);
  const ChannelRun wrec = run_channel(true, true, sim_ticks);
  const bool hash_equal = base.hash == wobs.hash && base.hash == wrec.hash;
  const double obs_pct = pct_over(base.wall_seconds, wobs.wall_seconds);
  const double rec_pct = pct_over(base.wall_seconds, wrec.wall_seconds);

  std::printf("\nchannel advance, %ld base ticks (GyroIdeal)\n", sim_ticks);
  std::printf("%-18s %10s %12s %9s %9s\n", "config", "wall_s", "samples", "spans", "records");
  std::printf("%-18s %10.4f %12llu %9llu %9llu\n", "detached", base.wall_seconds,
              static_cast<unsigned long long>(base.samples), 0ull, 0ull);
  std::printf("%-18s %10.4f %12llu %9llu %9llu  (%+.1f%%)\n", "obs", wobs.wall_seconds,
              static_cast<unsigned long long>(wobs.samples),
              static_cast<unsigned long long>(wobs.spans),
              static_cast<unsigned long long>(wobs.records), obs_pct);
  std::printf("%-18s %10.4f %12llu %9llu %9llu  (%+.1f%%)\n", "flight_recorder",
              wrec.wall_seconds, static_cast<unsigned long long>(wrec.samples),
              static_cast<unsigned long long>(wrec.spans),
              static_cast<unsigned long long>(wrec.records), rec_pct);
  std::printf("output hashes %s\n", hash_equal ? "identical (bit-neutral)" : "MISMATCH");

  // ---- JSON ----------------------------------------------------------------
  FILE* f = std::fopen(json_path, "w");
  if (f) {
    std::fprintf(f, "{\n  \"bench\": \"perf_obs\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"record_path\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i)
      std::fprintf(f, "    {\"op\": \"%s\", \"ns_per_op\": %.2f, \"allocs\": %llu}%s\n",
                   rows[i].name, rows[i].ns_per_op,
                   static_cast<unsigned long long>(rows[i].allocs),
                   i + 1 < rows.size() ? "," : "");
    std::fprintf(f, "  ],\n  \"channel_advance\": {\n");
    std::fprintf(f, "    \"base_ticks\": %ld,\n", sim_ticks);
    std::fprintf(f, "    \"detached_wall_s\": %.6f,\n", base.wall_seconds);
    std::fprintf(f, "    \"obs_wall_s\": %.6f,\n", wobs.wall_seconds);
    std::fprintf(f, "    \"recorder_wall_s\": %.6f,\n", wrec.wall_seconds);
    std::fprintf(f, "    \"obs_overhead_pct\": %.2f,\n", obs_pct);
    std::fprintf(f, "    \"recorder_overhead_pct\": %.2f,\n", rec_pct);
    std::fprintf(f, "    \"recorder_records\": %llu,\n",
                 static_cast<unsigned long long>(wrec.records));
    std::fprintf(f, "    \"hash_equal\": %s\n  },\n", hash_equal ? "true" : "false");
    std::fprintf(f, "  \"record_path_alloc_free\": %s\n}\n", alloc_free ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  const bool pass = alloc_free && hash_equal;
  if (!pass) std::fprintf(stderr, "perf_obs: FAIL (alloc_free=%d hash_equal=%d)\n",
                          alloc_free ? 1 : 0, hash_equal ? 1 : 0);
  return pass ? 0 : 1;
}
