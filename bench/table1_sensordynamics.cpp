// Table 1 — "Performance of SensorDynamics implementation".
//
// Full characterization campaign of the platform's gyro customization:
// per-device temperature calibration, then the complete datasheet metrology
// (sensitivity, nonlinearity, null, turn-on, noise density, bandwidth) over
// several dies and the full automotive temperature range.
#include <cstdio>

#include "core/datasheet.hpp"
#include "core/gyro_system.hpp"

using namespace ascp::core;

int main() {
  std::printf("=== Table 1: SensorDynamics platform implementation ===\n");
  std::printf("(Full fidelity, 3 dies, -40..+85 degC; runtime a few minutes)\n\n");

  GyroSystem sys(default_gyro_system(Fidelity::Full));
  CharacterizationConfig cfg;
  cfg.seeds = {1, 2, 3};
  const auto ds = characterize(sys, "SensorDynamics (this reproduction)", cfg);
  std::printf("%s\n", ds.format().c_str());

  std::printf("paper Table 1 (min/typ/max):\n");
  std::printf("  Dynamic Range          +/-75 .. +/-300 deg/s (configurable)\n");
  std::printf("  Sensitivity Initial    4.85 / 5.00 / 5.15  mV/deg/s\n");
  std::printf("  Sensitivity Over Temp  4.80 / 5.00 / 5.20  mV/deg/s\n");
  std::printf("  Non Linearity          0.07 / 0.10 / 0.20  %% of FS\n");
  std::printf("  Null (initial/over T)  ~2.5 V (2.53 max)\n");
  std::printf("  Turn On Time           500 ms\n");
  std::printf("  Rate Noise Density     0.04 / 0.09 / 0.13  deg/s/rtHz\n");
  std::printf("  3 dB Bandwidth         25 / 75 Hz\n");
  std::printf("  Operating Temp         -40 .. +85 degC\n");
  return 0;
}
