// Table 2 — "Performance of AD XRS300".
//
// Same metrology campaign run on the ADXRS300-like analog baseline: low-Q
// split-mode element, fixed analog demodulation, RC output filter, factory
// trim at 25 degC only. The shape to reproduce: similar sensitivity but
// wider initial tolerance, drifting null, 35 ms turn-on (10x faster than
// the platform), 0.1 deg/s/rtHz noise, fixed 40 Hz bandwidth.
#include <cstdio>

#include "core/baselines.hpp"
#include "core/datasheet.hpp"

using namespace ascp::core;

int main() {
  std::printf("=== Table 2: AD XRS300-class analog baseline ===\n\n");

  AnalogGyroBaseline dut(adxrs300_like());
  CharacterizationConfig cfg;
  cfg.seeds = {1, 2, 3, 4, 5};  // analog baseline is cheap to simulate
  cfg.warmup_s = 0.5;           // low-Q element settles fast
  cfg.turn_on_tol_v = 10e-3;    // broadband analog floor needs a wider gate
  const auto ds = characterize(dut, "AD XRS300-class (this reproduction)", cfg);
  std::printf("%s\n", ds.format().c_str());

  std::printf("paper Table 2 (min/typ/max):\n");
  std::printf("  Dynamic Range          +/-300 deg/s\n");
  std::printf("  Sensitivity (initial)  4.60 / 5.00 / 5.40  mV/deg/s\n");
  std::printf("  Sensitivity Over Temp  4.60 / .... / 5.40  mV/deg/s\n");
  std::printf("  Non Linearity          0.10 (typ)          %% of FS\n");
  std::printf("  Null                   2.30 / 2.50 / 2.70  V\n");
  std::printf("  Turn On Time           35 ms\n");
  std::printf("  Rate Noise Density     0.1 (typ)           deg/s/rtHz\n");
  std::printf("  3 dB Bandwidth         40 Hz\n");
  std::printf("  Operating Temp         -40 .. +85 degC\n");
  return 0;
}
