// Table 3 — "Performance of Murata's Gyrostar".
//
// The piezoelectric tuning-fork baseline: sub-millivolt sensitivity, loose
// trim, 1.35 V null, narrow -5..+75 degC range, < 50 Hz bandwidth.
#include <cstdio>

#include "core/baselines.hpp"
#include "core/datasheet.hpp"

using namespace ascp::core;

int main() {
  std::printf("=== Table 3: Murata Gyrostar-class analog baseline ===\n\n");

  AnalogGyroBaseline dut(gyrostar_like());
  CharacterizationConfig cfg;
  cfg.seeds = {1, 2, 3, 4, 5};
  cfg.temp_lo = -5.0;   // Table 3: narrow consumer-grade range
  cfg.temp_hi = 75.0;
  cfg.warmup_s = 0.8;
  cfg.turn_on_tol_v = 10e-3;
  const auto ds = characterize(dut, "Murata Gyrostar-class (this reproduction)", cfg);
  std::printf("%s\n", ds.format().c_str());

  std::printf("paper Table 3 (min/typ/max):\n");
  std::printf("  Dynamic Range          +/-300 deg/s\n");
  std::printf("  Sensitivity (initial)  0.54 / 0.67 / 0.80  mV/deg/s\n");
  std::printf("  Sensitivity Over Temp  -5%% .. +5%%\n");
  std::printf("  Null                   1.35 V\n");
  std::printf("  Rate Noise Density     (not specified)\n");
  std::printf("  3 dB Bandwidth         < 50 Hz\n");
  std::printf("  Operating Temp         -5 .. +75 degC\n");
  return 0;
}
