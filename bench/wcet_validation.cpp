// wcet_validation — differential validation of the static WCET analyzer.
//
// The analyzer (analysis/timing_lint) claims: for every function it bounds,
// no execution on the ISS can retire more busy machine cycles than the
// static WCET. This bench earns that claim empirically: it drives every
// shipped firmware image through realistic workloads — the boot ROM over
// both its boot paths, the monitor ROM under host transactions, the
// diagnostic/telemetry monitors on the full conditioning platform, the
// RS-485 node on a 9-bit link, plus a replay of the conformance scenario
// corpus — while a profiler-based tracker measures the observed worst case
// per function (busy cycles only: spinning at `;@loop-wait` PCs, and
// everything called from them, is I/O wait and excluded on both sides).
//
//   static_WCET >= observed_max   for every (firmware, function) pair
//
// Any violation is an analyzer soundness bug and exits non-zero. Tightness
// ratios (static / observed) go to BENCH_wcet.json so regressions in either
// direction are visible over time.
//
//   wcet_validation [--smoke]     --smoke shortens the platform runs and
//                                 samples the scenario corpus (CI budget)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/firmware_corpus.hpp"
#include "analysis/timing_lint.hpp"
#include "conformance/oracle.hpp"
#include "conformance/scenario.hpp"
#include "core/gyro_system.hpp"
#include "mcu/assembler.hpp"
#include "mcu/bootrom.hpp"
#include "mcu/bus.hpp"
#include "mcu/cache_ctrl.hpp"
#include "mcu/core8051.hpp"
#include "mcu/monitor_rom.hpp"
#include "mcu/spi.hpp"
#include "mcu/uart.hpp"
#include "obs/mcu_profile.hpp"
#include "platform/engine/conditioning_channel.hpp"

using namespace ascp;

namespace {

analysis::TimingOptions timing_options(const platform::BridgeMap& map) {
  analysis::TimingOptions t;
  const mcu::CacheConfig cache;
  t.cache_miss_penalty = static_cast<int>(cache.miss_penalty_cycles);
  t.cache_data_sfr = static_cast<std::uint8_t>(cache.sfr_base + 3);
  t.kick_addrs = {map.watchdog, static_cast<std::uint16_t>(map.watchdog + 1)};
  return t;
}

struct Observed {
  long max_cost = -1;
  long samples = 0;
  void note(long cost) {
    max_cost = std::max(max_cost, cost);
    ++samples;
  }
};

/// McuProfiler that reconstructs function costs from the retirement stream.
///
/// Cost convention matches the static analyzer: a routine costs everything
/// from the retirement after its CALL up to and including its RET; cycles
/// retired at wait PCs — or anywhere inside a call made from a wait PC —
/// are excluded. Main-loop rounds are busy deltas between consecutive
/// retirements of the loop header; the init path is the busy total at the
/// first header retirement after reset.
class FunctionTracker : public obs::McuProfiler {
 public:
  explicit FunctionTracker(const analysis::WcetResult& wcet) : wcet_(wcet) {}

  void record_exec(std::uint16_t pc, std::uint8_t opcode, int cycles,
                   std::uint64_t total_cycles) override {
    obs::McuProfiler::record_exec(pc, opcode, cycles, total_cycles);
    if (static_cast<long>(total_cycles) < last_total_) reset_tracking(true);
    if (last_total_ < 0) {
      // Fresh attach: only trust the init measurement when we saw the run
      // from (almost) the very first instruction.
      init_pending_ = total_cycles <= 4;
    }
    last_total_ = static_cast<long>(total_cycles);

    if (pending_call_) {
      pending_call_ = false;
      frames_.push_back({pc, busy_, pending_wait_});
      if (pending_wait_) ++wait_depth_;
    }

    const bool wait = wait_depth_ > 0 || wcet_.wait_pcs.count(pc) > 0;
    const bool header = wcet_.loop_headers.count(pc) > 0;
    if (header && init_pending_) {
      init_.note(busy_);
      init_pending_ = false;
    }
    if (!wait) busy_ += cycles;
    if (header) {
      if (const auto it = round_start_.find(pc); it != round_start_.end())
        rounds_[pc].note(busy_ - it->second);
      round_start_[pc] = busy_;
    }

    if (opcode == 0x12 || (opcode & 0x1F) == 0x11) {  // LCALL / ACALL
      pending_call_ = true;
      pending_wait_ = wait;
    } else if (opcode == 0x22 && !frames_.empty()) {  // RET
      const Frame f = frames_.back();
      frames_.pop_back();
      if (f.wait_ctx)
        --wait_depth_;
      else
        functions_[f.entry].note(busy_ - f.busy_start);
    }
  }

  void record_isr_enter(std::uint16_t vector, std::uint64_t total_cycles) override {
    obs::McuProfiler::record_isr_enter(vector, total_cycles);
    pending_call_ = false;  // next retirement is the handler, not a callee
  }

  long busy() const { return busy_; }
  const std::map<std::uint16_t, Observed>& functions() const { return functions_; }
  const std::map<std::uint16_t, Observed>& rounds() const { return rounds_; }
  const Observed& init() const { return init_; }

 private:
  struct Frame {
    std::uint16_t entry;
    long busy_start;
    bool wait_ctx;
  };

  void reset_tracking(bool from_reset) {
    frames_.clear();
    round_start_.clear();
    wait_depth_ = 0;
    pending_call_ = false;
    busy_ = 0;
    init_pending_ = from_reset;
  }

  const analysis::WcetResult& wcet_;
  long last_total_ = -1;
  long busy_ = 0;
  int wait_depth_ = 0;
  bool pending_call_ = false;
  bool pending_wait_ = false;
  bool init_pending_ = false;
  std::vector<Frame> frames_;
  std::map<std::uint16_t, long> round_start_;  ///< header -> busy at last retirement
  std::map<std::uint16_t, Observed> functions_;
  std::map<std::uint16_t, Observed> rounds_;
  Observed init_;
};

struct Row {
  std::string firmware;
  std::string function;
  long static_cycles = 0;
  long observed_max = 0;
  long samples = 0;
};

struct Validator {
  std::map<std::string, analysis::WcetResult> wcet;  ///< firmware -> static
  std::vector<Row> rows;
  int failures = 0;

  const analysis::WcetResult& statics(const std::string& fw) const {
    return wcet.at(fw);
  }

  /// `want`: which function kind this measurement corresponds to. Needed
  /// because a whole-program main loop (watchdog_kicker) shares its entry PC
  /// between the TopLevel init path and the MainLoop round.
  void check_one(const std::string& fw, const char* kind, std::uint16_t entry,
                 const Observed& obs,
                 std::optional<analysis::FunctionWcet::Kind> want = {}) {
    if (obs.samples == 0) return;
    const analysis::WcetResult& w = wcet.at(fw);
    const analysis::FunctionWcet* f = nullptr;
    if (want)
      for (const auto& fn : w.functions)
        if (fn.entry == entry && fn.kind == *want) f = &fn;
    if (!f) f = w.find(entry);
    if (!f) {
      std::printf("FAIL %s: observed %s at 0x%04X the analyzer never modeled\n",
                  fw.c_str(), kind, entry);
      ++failures;
      return;
    }
    if (!f->bounded) {
      std::printf("FAIL %s/%s: executed but statically unbounded\n", fw.c_str(),
                  f->name.c_str());
      ++failures;
      return;
    }
    if (obs.max_cost > f->cycles) {
      std::printf("FAIL %s/%s: static WCET %ld < observed %ld (%ld sample(s))\n",
                  fw.c_str(), f->name.c_str(), f->cycles, obs.max_cost, obs.samples);
      ++failures;
    }
    rows.push_back({fw, f->name, f->cycles, obs.max_cost, obs.samples});
  }

  /// Compare everything a tracker measured against one firmware's statics.
  void check(const std::string& fw, const FunctionTracker& t) {
    using Kind = analysis::FunctionWcet::Kind;
    for (const auto& [entry, obs] : t.functions())
      check_one(fw, "routine", entry, obs, Kind::Routine);
    for (const auto& [entry, obs] : t.rounds())
      check_one(fw, "loop round", entry, obs, Kind::MainLoop);
    if (t.init().samples > 0)
      for (const auto& f : wcet.at(fw).functions)
        if (f.kind == Kind::TopLevel)
          check_one(fw, "init path", f.entry, t.init(), Kind::TopLevel);
  }
};

const analysis::FirmwareImage& corpus_image(const std::vector<analysis::FirmwareImage>& all,
                                            const char* name) {
  for (const auto& fw : all)
    if (fw.name == name) return fw;
  std::fprintf(stderr, "wcet_validation: no corpus image named %s\n", name);
  std::exit(2);
}

// ---- drives -----------------------------------------------------------------

/// Boot ROM, EEPROM path: program a valid image, run until control leaves
/// the ROM (LJMP PROGRAM), measure the whole path as the entry function.
void drive_bootrom_eeprom(Validator& v) {
  mcu::BootRomConfig cfg;
  mcu::Core8051 core;
  mcu::BridgedBus bus(4096);
  mcu::SpiMaster spi;
  mcu::SpiEeprom eeprom;
  bus.map(&spi, cfg.spi_base, 3, "spi");
  bus.map_program_ram(cfg.prog_base, 0x7F00, &core);
  spi.connect(&eeprom);
  core.set_xdata_bus(&bus);
  core.load_program(mcu::BootRom::image(cfg));

  mcu::Assembler as;
  const auto app = as.assemble("done: SJMP done").image;
  eeprom.program(0, mcu::BootRom::eeprom_image(app));

  FunctionTracker t(v.statics("bootrom"));
  core.set_profiler(&t);
  long guard = 20'000'000;
  while (core.pc() < cfg.prog_base && guard-- > 0) core.step();
  core.set_profiler(nullptr);

  Observed entry;
  entry.note(t.busy());
  for (const auto& f : v.statics("bootrom").functions)
    if (f.kind == analysis::FunctionWcet::Kind::TopLevel)
      v.check_one("bootrom", "boot path (eeprom)", f.entry, entry,
                  analysis::FunctionWcet::Kind::TopLevel);
  v.check("bootrom", t);
}

/// Boot ROM, UART path: no EEPROM magic, host downloads over the link
/// (including one NAK retry). The download spin is all wait context.
void drive_bootrom_uart(Validator& v) {
  mcu::BootRomConfig cfg;
  mcu::Core8051 core;
  mcu::BridgedBus bus(4096);
  mcu::SpiMaster spi;
  mcu::SpiEeprom eeprom;  // left blank: probe fails, ROM falls back to UART
  mcu::HostLink host;
  bus.map(&spi, cfg.spi_base, 3, "spi");
  bus.map_program_ram(cfg.prog_base, 0x7F00, &core);
  spi.connect(&eeprom);
  core.set_xdata_bus(&bus);
  host.attach(core);
  core.load_program(mcu::BootRom::image(cfg));

  FunctionTracker t(v.statics("bootrom"));
  core.set_profiler(&t);
  // A corrupt download first (bad checksum -> NAK -> resync), then a good one.
  mcu::Assembler as;
  const auto app = as.assemble("done: SJMP done").image;
  host.send(0xA5);
  host.send(0);
  host.send(1);
  host.send(0x80);  // one byte, checksum deliberately wrong
  host.send(0x55);
  host.send_download(app);
  long guard = 20'000'000;
  while (core.pc() < cfg.prog_base && guard-- > 0) {
    core.step();
    host.pump(core);
  }
  core.set_profiler(nullptr);
  Observed entry;
  entry.note(t.busy());
  for (const auto& f : v.statics("bootrom").functions)
    if (f.kind == analysis::FunctionWcet::Kind::TopLevel)
      v.check_one("bootrom", "boot path (uart)", f.entry, entry,
                  analysis::FunctionWcet::Kind::TopLevel);
  v.check("bootrom", t);
}

/// Monitor ROM under host transactions: ping, reads, writes, and an unknown
/// command (the '?' reply arm).
void drive_monitor_rom(Validator& v) {
  mcu::Core8051 core;
  mcu::BridgedBus bus(4096);
  mcu::HostLink link;
  core.set_xdata_bus(&bus);
  link.attach(core);
  core.load_program(mcu::MonitorRom::image());

  FunctionTracker t(v.statics("monitor_rom"));
  core.set_profiler(&t);
  mcu::MonitorHost host(core, link);
  bool ok = host.ping();
  ok = host.write_byte(0x0123, 0xA7) && ok;
  ok = host.read_byte(0x0123) == 0xA7 && ok;
  ok = host.write_word(0x0200, 0xBEEF) && ok;
  ok = host.read_word(0x0200) == 0xBEEF && ok;
  // Unknown command exercises the '?' reply arm.
  link.clear_received();
  link.send(0x5A);
  for (long i = 0; i < 200'000 && link.received().empty(); ++i) {
    core.step();
    link.pump(core);
  }
  ok = !link.received().empty() && link.received().front() == '?' && ok;
  core.set_profiler(nullptr);
  if (!ok) {
    std::printf("FAIL monitor_rom: host transactions failed under profiling\n");
    ++v.failures;
  }
  v.check("monitor_rom", t);
}

/// Diagnostic / telemetry monitors on the full platform: firmware runs in
/// per-sample slices while the conditioning pipeline produces real data.
void drive_platform_monitor(Validator& v, const char* name, double seconds) {
  auto cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.with_mcu = true;
  cfg.with_safety = true;
  core::GyroSystem gyro(cfg);
  const auto& map = gyro.platform().config().map;
  const mcu::AsmResult fw = std::strcmp(name, "diag_monitor") == 0
                                ? analysis::corpus::assemble_diag_monitor(map)
                                : analysis::corpus::assemble_telemetry_monitor(map);
  gyro.platform().load_firmware(fw.image);

  FunctionTracker t(v.statics(name));
  gyro.platform().cpu().set_profiler(&t);
  gyro.power_on(/*seed=*/7);
  gyro.run(sensor::Profile::constant(30.0), sensor::Profile::constant(25.0), seconds,
           nullptr);
  gyro.platform().cpu().set_profiler(nullptr);
  v.check(name, t);
}

/// Watchdog kicker: pure kick loop on a bare core (the kick stores miss the
/// bus — only the cycle stream matters here).
void drive_watchdog_kicker(Validator& v) {
  mcu::Core8051 core;
  mcu::BridgedBus bus(4096);
  core.set_xdata_bus(&bus);
  core.load_program(
      analysis::corpus::assemble_watchdog_kicker(platform::BridgeMap{}).image);
  FunctionTracker t(v.statics("watchdog_kicker"));
  core.set_profiler(&t);
  core.run_cycles(5000);
  core.set_profiler(nullptr);
  v.check("watchdog_kicker", t);
}

/// Greeting app at its ORG 8000h load address: two transmits, then parks.
void drive_greeting(Validator& v, const std::vector<analysis::FirmwareImage>& corpus) {
  const auto& fw = corpus_image(corpus, "greeting_app");
  mcu::Core8051 core;
  core.load_program(fw.image, fw.base);
  core.set_pc(fw.entry);
  FunctionTracker t(v.statics("greeting_app"));
  core.set_profiler(&t);
  core.run_cycles(20'000);  // two ~3200-cycle transmits + parked rounds
  core.set_profiler(nullptr);
  v.check("greeting_app", t);
}

/// RS-485 node: select it on a 9-bit address frame, query the rate word.
void drive_rs485(Validator& v, const std::vector<analysis::FirmwareImage>& corpus) {
  const auto& fw = corpus_image(corpus, "rs485_node");
  mcu::Core8051 core;
  mcu::BridgedBus bus(4096);
  core.set_xdata_bus(&bus);
  core.load_program(fw.image, fw.base);
  FunctionTracker t(v.statics("rs485_node"));
  core.set_profiler(&t);
  core.run_cycles(2000);           // reach the wait loop
  core.inject_rx9(0x10, true);     // our address
  core.run_cycles(2000);
  core.inject_rx9('Q', false);     // query -> two-byte reply
  core.run_cycles(20'000);
  core.inject_rx9(0x10, true);     // second transaction exercises re-arm
  core.run_cycles(2000);
  core.inject_rx9('X', false);     // unknown command arm
  core.run_cycles(20'000);
  core.set_profiler(nullptr);
  v.check("rs485_node", t);
}

/// Conformance-corpus replay: every scenario that loads shipped firmware
/// runs with a tracker attached; ISS-class scenarios additionally get host
/// transactions so the monitor actually serves commands.
void drive_corpus_replay(Validator& v, bool smoke) {
#ifndef ASCP_CORPUS_DIR
  std::printf("note: built without ASCP_CORPUS_DIR — corpus replay skipped\n");
  (void)v;
  (void)smoke;
#else
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const auto& e : fs::directory_iterator(ASCP_CORPUS_DIR))
    if (e.path().extension() == ".scenario") paths.push_back(e.path());
  std::sort(paths.begin(), paths.end());

  int replayed = 0;
  for (const auto& p : paths) {
    const conformance::Scenario s = conformance::load_scenario(p.string());
    const bool iss = s.cls == conformance::ScenarioClass::Iss;
    bool hang = false;
    for (const auto& f : s.faults)
      if (f.kind == conformance::FaultKind::FirmwareHang) hang = true;
    if (!iss && !hang) continue;  // no shipped firmware under test
    const char* fw_name = iss ? "monitor_rom" : "watchdog_kicker";
    if (smoke && replayed >= 2) break;
    ++replayed;

    engine::ChannelConfig cc = conformance::channel_config(s);
    engine::ConditioningChannel ch(cc);
    core::GyroSystem* gyro = ch.gyro();
    if (!gyro) continue;
    FunctionTracker t(v.statics(fw_name));
    gyro->platform().cpu().set_profiler(&t);
    ch.advance(smoke ? 40'000 : 200'000);
    if (iss) {
      mcu::MonitorHost host(gyro->platform().cpu(), gyro->platform().host());
      if (!host.ping()) {
        std::printf("FAIL corpus %s: monitor did not answer ping\n",
                    p.filename().string().c_str());
        ++v.failures;
      }
      host.read_word(gyro->platform().config().map.regfile);
    }
    gyro->platform().cpu().set_profiler(nullptr);
    std::printf("replayed %-32s (%s)\n", p.filename().string().c_str(), fw_name);
    v.check(fw_name, t);
  }
  std::printf("corpus replay: %d scenario(s) exercised firmware\n", replayed);
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  // Statics for the whole corpus, same model platform_lint proves.
  const platform::BridgeMap map{};
  const auto corpus = analysis::corpus::shipped_firmware(map);
  Validator v;
  int static_errors = 0;
  for (const auto& fw : corpus) {
    v.wcet.emplace(fw.name, analysis::analyze_wcet(fw, timing_options(map)));
    static_errors += v.wcet.at(fw.name).report.errors();
  }
  if (static_errors) {
    std::printf("FAIL: static analysis reports %d error(s) on the shipped corpus\n",
                static_errors);
    for (const auto& [name, w] : v.wcet)
      for (const auto& f : w.report.findings())
        if (f.severity == analysis::Severity::Error)
          std::printf("  %s\n", f.format().c_str());
    return 1;
  }

  drive_bootrom_eeprom(v);
  drive_bootrom_uart(v);
  drive_monitor_rom(v);
  // The telemetry monitor blocks on PLL+AGC lock (~0.25 s) before its first
  // round, so its run must outlast locking to observe any busy work.
  drive_platform_monitor(v, "diag_monitor", smoke ? 0.05 : 0.2);
  drive_platform_monitor(v, "telemetry_monitor", smoke ? 0.35 : 0.5);
  drive_watchdog_kicker(v);
  drive_greeting(v, corpus);
  drive_rs485(v, corpus);
  drive_corpus_replay(v, smoke);

  // Tightness table + BENCH JSON.
  std::printf("\n%-18s %-14s %10s %10s %8s %10s\n", "firmware", "function", "static",
              "observed", "samples", "tightness");
  for (const auto& r : v.rows) {
    const double tight =
        r.observed_max > 0 ? static_cast<double>(r.static_cycles) / r.observed_max : 0.0;
    std::printf("%-18s %-14s %10ld %10ld %8ld %10.2f\n", r.firmware.c_str(),
                r.function.c_str(), r.static_cycles, r.observed_max, r.samples, tight);
  }
  if (FILE* f = std::fopen("BENCH_wcet.json", "w")) {
    std::fprintf(f, "{\n  \"failures\": %d,\n  \"functions\": [\n", v.failures);
    for (std::size_t i = 0; i < v.rows.size(); ++i) {
      const Row& r = v.rows[i];
      const double tight =
          r.observed_max > 0 ? static_cast<double>(r.static_cycles) / r.observed_max : 0.0;
      std::fprintf(f,
                   "    {\"firmware\": \"%s\", \"function\": \"%s\", \"static\": %ld, "
                   "\"observed_max\": %ld, \"samples\": %ld, \"tightness\": %.3f}%s\n",
                   r.firmware.c_str(), r.function.c_str(), r.static_cycles,
                   r.observed_max, r.samples, tight, i + 1 < v.rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_wcet.json (%zu function(s), %d failure(s))\n",
                v.rows.size(), v.failures);
  }

  if (v.failures) {
    std::printf("wcet_validation: %d soundness failure(s)\n", v.failures);
    return 1;
  }
  std::printf("wcet_validation: static bounds hold for every observed function\n");
  return 0;
}
