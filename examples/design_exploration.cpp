// design_exploration — the paper's §2 flow in action: "Through simulations,
// design iterations and functional blocks refinements a project space
// exploration can be performed", fixing the partitioning and dimensioning
// before anything is committed to silicon.
//
// Three exploration questions a conditioning-ASIC architect actually asks,
// answered by simulation sweeps on the platform model:
//   1. How high a Q should the MEMS ring target? (noise vs turn-on trade)
//   2. Which loop mode ships? (open vs closed: linearity/bandwidth/noise)
//   3. How many ADC bits are enough? (the sub-LSB carrier cliff)
#include <cmath>
#include <cstdio>

#include "common/math.hpp"
#include "common/spectrum.hpp"
#include "core/gyro_system.hpp"
#include "core/metrics.hpp"

using namespace ascp;
using namespace ascp::core;

namespace {

struct Sweep {
  double noise_dps;
  double turn_on_ms;
  double nonlin_pct;
};

Sweep evaluate(GyroSystemConfig cfg) {
  Sweep s{};
  GyroSystem sys(cfg);
  s.turn_on_ms = measure_turn_on(sys, 1, 25.0, 10e-3, 2.0) * 1e3;
  sys.power_on(1);
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.2, nullptr);

  std::vector<double> rates, outs;
  for (double r : {-300.0, -150.0, 0.0, 150.0, 300.0}) {
    std::vector<double> o;
    sys.run(sensor::Profile::constant(r), sensor::Profile::constant(25.0), 0.25, &o);
    rates.push_back(r);
    outs.push_back(mean(std::span(o).subspan(o.size() / 2)));
  }
  const auto fit = fit_line(rates, outs);
  s.nonlin_pct = fit.max_abs_residual / (std::abs(fit.slope) * 300.0) * 100.0;

  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.3, nullptr);
  std::vector<double> z;
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 4.0, &z);
  const auto psd = welch_psd(z, sys.output_rate_hz(), 1024);
  s.noise_dps = std::sqrt(psd.band_mean(4.0, 20.0)) / std::abs(fit.slope);
  return s;
}

}  // namespace

int main() {
  std::printf("=== Design-space exploration (paper sec. 2 flow) ===\n");
  std::printf("(each row is a full mixed-signal simulation; ~2 min total)\n\n");

  std::printf("[Q1] ring quality factor: Brownian noise vs turn-on time\n");
  std::printf("      Q     noise[deg/s/rtHz]   turn-on[ms]\n");
  for (double q : {1500.0, 3000.0, 5000.0, 8000.0}) {
    auto cfg = default_gyro_system(Fidelity::Full);
    cfg.mems.q_drive = q;
    cfg.mems.q_sense = q;
    // Keep the drive within the DAC rail: amplitude target scales with Q.
    cfg.drive.agc.target = std::min(1.0, q / 5000.0);
    const auto s = evaluate(cfg);
    std::printf("  %6.0f   %12.4f %15.0f\n", q, s.noise_dps, s.turn_on_ms);
  }
  std::printf("  -> the paper's choice (high-Q ring, ~500 ms turn-on) buys its\n");
  std::printf("     0.09 deg/s/rtHz noise floor with start-up time.\n\n");

  std::printf("[Q2] loop mode: linearity is the closed-loop argument\n");
  std::printf("      mode     nonlin[%%FS]   noise[deg/s/rtHz]\n");
  for (auto mode : {SenseMode::OpenLoop, SenseMode::ClosedLoop}) {
    auto cfg = default_gyro_system(Fidelity::Full);
    cfg.sense.mode = mode;
    const auto s = evaluate(cfg);
    std::printf("  %8s   %10.3f   %14.4f\n",
                mode == SenseMode::OpenLoop ? "open" : "closed", s.nonlin_pct, s.noise_dps);
  }
  std::printf("\n");

  std::printf("[Q3] ADC resolution: the sub-LSB carrier cliff\n");
  std::printf("      bits   noise[deg/s/rtHz]\n");
  for (int bits : {12, 13, 14, 15}) {
    auto cfg = default_gyro_system(Fidelity::Full);
    cfg.adc.bits = bits;
    const auto s = evaluate(cfg);
    std::printf("  %6d   %12.4f\n", bits, s.noise_dps);
  }
  std::printf("  -> 14 bits is the knee; the platform ships 14-bit SAR converters.\n");
  return 0;
}
