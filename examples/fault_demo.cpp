// fault_demo — a field fault as the service tool would see it.
//
// The safety supervisor latches diagnostic trouble codes into the
// bridge-mapped DIAG register block, which makes them visible to the same
// 8051 that the paper has "constantly check the system status by accessing
// the several readable registers spread along the processing chain" (§4.2).
// This demo runs the Full-fidelity chain with the MCU in the loop: the
// firmware polls the DIAG block and streams a frame over the UART every time
// the DTC mask or the safety state changes, while a transient stuck-code
// fault is injected into the primary ADC mid-run. The decoded UART timeline
// shows the whole arc — NOMINAL, the latch and degradation when the ADC
// freezes, SAFE_STATE while the drive loop is down, and the walk back to
// NOMINAL after the fault clears, with the DTCs still latched for the
// service tool.
#include <cstdio>

#include "analysis/firmware_corpus.hpp"
#include "core/gyro_system.hpp"
#include "safety/standard_faults.hpp"
#include "safety/supervisor.hpp"

using namespace ascp;
using namespace ascp::core;

int main() {
  std::printf("=== Fault demo: DTC timeline through the 8051's eyes ===\n\n");

  auto cfg = default_gyro_system(Fidelity::Full);
  cfg.with_mcu = true;
  cfg.with_safety = true;
  GyroSystem gyro(cfg);

  // DIAG monitor firmware from the shipped corpus: polls the DTC mask and
  // safety state, streams a 'D' frame on any change, kicks the watchdog.
  const auto fw =
      analysis::corpus::assemble_diag_monitor(gyro.platform().config().map);
  std::printf("DIAG monitor firmware: %zu bytes of 8051 code\n", fw.image.size());
  gyro.platform().load_firmware(fw.image);
  gyro.power_on(1);
  gyro.platform().watchdog()->write_reg(1, 60000);
  gyro.platform().watchdog()->write_reg(2, 1);

  // Let the loop lock, settle and arm the monitors.
  std::printf("running Full-fidelity chain + CPU until the monitors arm...\n");
  auto* sup = gyro.supervisor();
  for (int i = 0; i < 30 && !sup->armed(); ++i)
    gyro.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0),
             0.1, nullptr);
  if (!sup->armed()) {
    std::printf("ERROR: supervisor never armed\n");
    return 1;
  }

  // Transient stuck-code fault on the primary ADC: freezes for 0.2 s, then
  // the converter comes back and the recovery path walks home.
  safety::FaultCampaign campaign;
  const long inject_at = gyro.dsp_samples() + 1000;
  safety::faults::add_primary_adc_stuck(campaign, gyro, inject_at,
                                        /*code=*/1234,
                                        /*clear_after=*/48000);
  gyro.set_fault_campaign(&campaign);
  std::printf("injecting 'primary ADC stuck code' at DSP sample %ld "
              "(clears after 48000 samples)...\n\n", inject_at);
  gyro.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0),
           2.5, nullptr);

  // Decode the UART stream: one frame per DIAG change the firmware saw.
  const auto& rx = gyro.platform().host().received();
  std::printf("host received %zu bytes — DIAG timeline as polled by the 8051:\n",
              rx.size());
  std::printf("  frame   DTC mask  latched DTCs                       state\n");
  int frames = 0;
  for (std::size_t i = 0; i + 3 < rx.size(); ) {
    if (rx[i] != 'D') { ++i; continue; }
    const std::uint16_t dtc = static_cast<std::uint16_t>(rx[i + 1]) << 8 | rx[i + 2];
    const auto state = static_cast<safety::SafetyState>(rx[i + 3]);
    std::printf("  %5d     0x%04X  %-34s %s\n", frames, dtc,
                safety::describe_dtcs(dtc).c_str(), safety::state_name(state));
    ++frames;
    i += 4;
  }

  const long detect = sup->first_latch_fast(safety::kDtcAdcStuck);
  std::printf("\nsupervisor: detected at sample %ld (latency %ld samples), "
              "returned to NOMINAL at %ld\n", detect, detect - inject_at,
              sup->nominal_return_fast());
  std::printf("final state %s with DTCs %s still latched for the service tool\n",
              safety::state_name(sup->state()),
              safety::describe_dtcs(sup->dtcs()).c_str());

  const bool ok = frames >= 3 && sup->state() == safety::SafetyState::Nominal &&
                  (sup->dtcs() & safety::kDtcAdcStuck) != 0 &&
                  sup->nominal_return_fast() > inject_at;
  std::printf("\n%s\n", ok ? "demo PASSED: fault seen by firmware, system recovered"
                           : "demo FAILED");
  return ok ? 0 : 1;
}
