// firmware_monitor — the paper's software story, for real.
//
// §4.2: "Control and monitoring are performed real-time by the processor …
// a routine constantly checks the system status by accessing the several
// readable registers spread along the processing chain (for example makes
// sure that the PLL is locked). Meanwhile other routines handle
// communication services, providing status and output data to the user."
//
// This example assembles that firmware from 8051 source, runs it on the
// platform's Oregano-class core *while the conditioning chain runs*, and
// decodes the telemetry the firmware streams over the UART to the "PC".
#include <cstdio>

#include "analysis/firmware_corpus.hpp"
#include "core/calibration.hpp"
#include "core/gyro_system.hpp"

using namespace ascp;
using namespace ascp::core;

int main() {
  std::printf("=== 8051 monitor firmware on the live platform ===\n\n");

  auto cfg = default_gyro_system(Fidelity::Ideal);
  cfg.with_mcu = true;
  GyroSystem gyro(cfg);

  // Monitor firmware from the shipped corpus, assembled against the
  // platform's register map: wait for lock, send 'L', then stream the rate
  // register (big-endian mV) forever, kicking the watchdog each round.
  const auto fw = analysis::corpus::assemble_telemetry_monitor(
      gyro.platform().config().map);
  std::printf("monitor firmware: %zu bytes of 8051 code\n", fw.image.size());
  gyro.platform().load_firmware(fw.image);

  // Arm the watchdog: if the monitor ever stops kicking, the CPU reboots.
  gyro.platform().watchdog()->write_reg(1, 60000);
  gyro.platform().watchdog()->write_reg(2, 1);

  // Calibrate the device so the register telemetry decodes at 5 mV/deg/s.
  // The monitor streams during the soak too; restart it afterwards so the
  // session log starts at the real power-on.
  gyro.power_on(3);
  gyro.set_compensation(run_calibration(gyro));
  gyro.power_on(3);
  gyro.platform().cpu().reset();
  gyro.platform().load_firmware(fw.image);
  gyro.platform().host().clear_received();
  std::printf("running chain + CPU (20 MHz / 12 cycles per machine cycle)...\n\n");
  gyro.run(sensor::Profile::step(120.0, 0.8), sensor::Profile::constant(25.0), 1.6, nullptr);

  const auto& rx = gyro.platform().host().received();
  std::printf("host received %zu bytes of telemetry\n", rx.size());
  if (rx.empty() || rx[0] != 'L') {
    std::printf("ERROR: no lock marker from firmware\n");
    return 1;
  }
  std::printf("firmware reported lock ('L'), then streamed rate samples:\n");
  std::printf("  sample   register[mV]   decoded rate[deg/s]\n");
  const std::size_t pairs = (rx.size() - 1) / 2;
  for (std::size_t k = 0; k < pairs; k += pairs / 12 + 1) {
    const unsigned mv = static_cast<unsigned>(rx[1 + 2 * k]) << 8 | rx[2 + 2 * k];
    std::printf("  %6zu   %12u   %+12.1f\n", k, mv, (mv / 1000.0 - 2.5) / 5e-3);
  }
  std::printf("\nexpected: ~0 deg/s early, ~+120 deg/s (3.1 V) after the step at 0.8 s.\n");
  std::printf("watchdog bitten: %s (monitor kept kicking it)\n",
              gyro.platform().watchdog()->bitten() ? "yes - BUG" : "no");
  return 0;
}
