// firmware_monitor — the paper's software story, for real.
//
// §4.2: "Control and monitoring are performed real-time by the processor …
// a routine constantly checks the system status by accessing the several
// readable registers spread along the processing chain (for example makes
// sure that the PLL is locked). Meanwhile other routines handle
// communication services, providing status and output data to the user."
//
// This example assembles that firmware from 8051 source, runs it on the
// platform's Oregano-class core *while the conditioning chain runs*, and
// decodes the telemetry the firmware streams over the UART to the "PC".
#include <cstdio>

#include "core/calibration.hpp"
#include "core/gyro_system.hpp"
#include "mcu/assembler.hpp"

using namespace ascp;
using namespace ascp::core;

namespace {

/// Monitor firmware: wait for lock, send 'L', then stream the rate register
/// (big-endian mV) forever, kicking the watchdog each round.
constexpr const char* kMonitorSource = R"(
        ORG 0
start:  MOV SP,#40h
        MOV SCON,#50h        ; UART mode 1
        MOV TMOD,#20h
        MOV TH1,#0FFh        ; fastest baud
        SETB TR1

waitlk: MOV DPTR,#WDKICKLO   ; keep the dog fed while waiting for lock
        MOV A,#5Ah
        MOVX @DPTR,A
        INC DPTR
        MOVX @DPTR,A
        MOV DPTR,#LOCKREG
        MOVX A,@DPTR
        ANL A,#3             ; bit0 PLL, bit1 AGC
        CJNE A,#3,waitlk
        MOV A,#'L'
        LCALL tx

loop:   MOV DPTR,#RATELO     ; low-byte read latches the word coherently
        MOVX A,@DPTR
        MOV R2,A
        INC DPTR
        MOVX A,@DPTR         ; latched high byte
        LCALL tx             ; stream big-endian
        MOV A,R2
        LCALL tx
        MOV DPTR,#WDKICKLO   ; feed the watchdog: magic 5A5Ah
        MOV A,#5Ah
        MOVX @DPTR,A
        INC DPTR
        MOVX @DPTR,A
        MOV R3,#60           ; pace the stream
d1:     MOV R4,#250
d2:     DJNZ R4,d2
        DJNZ R3,d1
        SJMP loop

tx:     MOV SBUF,A
txw:    JNB TI,txw
        CLR TI
        RET
)";

}  // namespace

int main() {
  std::printf("=== 8051 monitor firmware on the live platform ===\n\n");

  auto cfg = default_gyro_system(Fidelity::Ideal);
  cfg.with_mcu = true;
  GyroSystem gyro(cfg);

  // Assemble the monitor against the platform's register map.
  const auto& map = gyro.platform().config().map;
  mcu::Assembler as;
  as.define("LOCKREG", static_cast<std::uint16_t>(map.regfile + 2 * reg::kLock));
  as.define("RATELO", static_cast<std::uint16_t>(map.regfile + 2 * reg::kRateOut));
  as.define("RATEHI", static_cast<std::uint16_t>(map.regfile + 2 * reg::kRateOut + 1));
  as.define("WDKICKLO", map.watchdog);
  const auto fw = as.assemble(kMonitorSource);
  std::printf("monitor firmware: %zu bytes of 8051 code\n", fw.image.size());
  gyro.platform().load_firmware(fw.image);

  // Arm the watchdog: if the monitor ever stops kicking, the CPU reboots.
  gyro.platform().watchdog()->write_reg(1, 60000);
  gyro.platform().watchdog()->write_reg(2, 1);

  // Calibrate the device so the register telemetry decodes at 5 mV/deg/s.
  // The monitor streams during the soak too; restart it afterwards so the
  // session log starts at the real power-on.
  gyro.power_on(3);
  gyro.set_compensation(run_calibration(gyro));
  gyro.power_on(3);
  gyro.platform().cpu().reset();
  gyro.platform().load_firmware(fw.image);
  gyro.platform().host().clear_received();
  std::printf("running chain + CPU (20 MHz / 12 cycles per machine cycle)...\n\n");
  gyro.run(sensor::Profile::step(120.0, 0.8), sensor::Profile::constant(25.0), 1.6, nullptr);

  const auto& rx = gyro.platform().host().received();
  std::printf("host received %zu bytes of telemetry\n", rx.size());
  if (rx.empty() || rx[0] != 'L') {
    std::printf("ERROR: no lock marker from firmware\n");
    return 1;
  }
  std::printf("firmware reported lock ('L'), then streamed rate samples:\n");
  std::printf("  sample   register[mV]   decoded rate[deg/s]\n");
  const std::size_t pairs = (rx.size() - 1) / 2;
  for (std::size_t k = 0; k < pairs; k += pairs / 12 + 1) {
    const unsigned mv = static_cast<unsigned>(rx[1 + 2 * k]) << 8 | rx[2 + 2 * k];
    std::printf("  %6zu   %12u   %+12.1f\n", k, mv, (mv / 1000.0 - 2.5) / 5e-3);
  }
  std::printf("\nexpected: ~0 deg/s early, ~+120 deg/s (3.1 V) after the step at 0.8 s.\n");
  std::printf("watchdog bitten: %s (monitor kept kicking it)\n",
              gyro.platform().watchdog()->bitten() ? "yes - BUG" : "no");
  return 0;
}
