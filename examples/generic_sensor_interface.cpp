// generic_sensor_interface — the platform's §3 claim: the same block
// portfolio conditions very different sensor classes.
//
// Three customizations from the same IPs:
//   * capacitive pressure sensor — excitation carrier, charge amp, ADC,
//     coherent demodulation, two-point calibration;
//   * resistive Wheatstone bridge — DC excitation, PGA, ADC, offset/span
//     calibration with temperature compensation;
//   * LVDT position sensor — carrier excitation, synchronous demodulation
//     (the same modulator/demodulator IPs the gyro chain uses).
#include <cmath>
#include <cstdio>

#include "afe/charge_amp.hpp"
#include "afe/frontend.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "dsp/compensation.hpp"
#include "dsp/modem.hpp"
#include "dsp/nco.hpp"
#include "sensor/generic.hpp"

using namespace ascp;

namespace {

// ---------------------------------------------------------------------------
// Capacitive pressure channel: C(P) modulates a 10 kHz excitation; the
// charge amp converts ΔC·Vexc to volts; demodulation recovers ΔC.
// ---------------------------------------------------------------------------
struct PressureChannel {
  PressureChannel()
      : sensor([] {
          sensor::CapacitivePressureSensor::Config cfg;
          return cfg;
        }(), Rng(11)),
        champ([] {
          afe::ChargeAmpConfig cfg;
          cfg.c_feedback_farads = 10e-12;
          cfg.hp_corner_hz = 50.0;
          return cfg;
        }(), Rng(12)),
        acq([] {
          afe::FrontendConfig cfg;
          cfg.amp.gain = 1.0;
          cfg.aa_corner_hz = 40e3;
          return cfg;
        }(), Rng(13)),
        nco(240e3, 10e3),
        demod(240e3, 100.0) {}

  /// Measure the demodulated carrier amplitude at a given pressure [kPa].
  double raw(double pressure_kpa) {
    double last = 0.0;
    for (int i = 0; i < 480000; ++i) {  // 0.25 s at 1.92 MHz
      // Excitation applied to the sense capacitor: ΔC·sin(wt) reaches the
      // charge amp virtual ground (C0 is nulled by a matched reference).
      const double c = sensor.capacitance(pressure_kpa) - 10e-12;
      if (i % 8 == 0) nco.step();
      const double v = champ.step(c * 0.2 * nco.sine());
      if (const auto s = acq.step(v)) {
        const auto bb = demod.step(*s, nco.sine(), nco.cosine());
        last = bb.i;
      }
    }
    return last;
  }

  sensor::CapacitivePressureSensor sensor;
  afe::ChargeAmp champ;
  afe::AcquisitionChannel acq;
  dsp::Nco nco;
  dsp::IqDemodulator demod;
};

// ---------------------------------------------------------------------------
// Resistive bridge channel: DC excitation, PGA, ADC, compensation block.
// ---------------------------------------------------------------------------
struct BridgeChannel {
  BridgeChannel()
      : sensor([] {
          sensor::ResistiveBridgeSensor::Config cfg;
          return cfg;
        }(), Rng(21)),
        acq([] {
          afe::FrontendConfig cfg;
          cfg.amp.gain = 100.0;  // millivolt bridge signals
          cfg.aa_corner_hz = 1e3;
          return cfg;
        }(), Rng(22)) {}

  double raw(double load, double temp_c = 25.0) {
    double acc = 0.0;
    int n = 0;
    for (int i = 0; i < 192000; ++i) {
      const double v = sensor.output(load, 5.0, temp_c);
      if (const auto s = acq.step(v, temp_c)) {
        acc += *s;
        ++n;
      }
    }
    return acc / n;
  }

  sensor::ResistiveBridgeSensor sensor;
  afe::AcquisitionChannel acq;
};

}  // namespace

int main() {
  std::printf("=== Generic sensor interface: three customizations, one portfolio ===\n\n");

  // ---- capacitive pressure -------------------------------------------------
  std::printf("[capacitive pressure]\n");
  PressureChannel pressure;
  // Two-point calibration at 0 and 400 kPa, then digital linearization: the
  // diaphragm response is x = s·P/(1−P/Pc), so the conditioning chain
  // inverts it, P = x/(s + x/Pc) — "all non-trivial signal processing … in
  // the digital domain" (paper sec. 3).
  const double r0 = pressure.raw(0.0);
  const double r400 = pressure.raw(400.0);
  const double s = 2e-3, pc = 800.0;  // design values stored with the cal
  const double k = (s * 400.0 / (1.0 - 400.0 / pc)) / (r400 - r0);
  std::printf("  calibration: raw(0)=%.4f V raw(400 kPa)=%.4f V\n", r0, r400);
  std::printf("  pressure sweep (with digital linearization):\n");
  std::printf("    true[kPa]  measured[kPa]\n");
  for (double p : {50.0, 150.0, 250.0, 350.0}) {
    const double x = (pressure.raw(p) - r0) * k;
    const double measured = x / (s + x / pc);
    std::printf("    %8.0f  %12.1f\n", p, measured);
  }

  // ---- resistive bridge -----------------------------------------------------
  std::printf("\n[resistive Wheatstone bridge]\n");
  BridgeChannel bridge;
  // Two-point cal at 25 degC plus a hot-point for span drift.
  const double b0 = bridge.raw(0.0);
  const double b1 = bridge.raw(1.0);
  std::printf("  calibration: offset=%.4f V span=%.4f V\n", b0, b1 - b0);
  std::printf("  load sweep:\n    true[%%FS]  measured[%%FS]\n");
  for (double load : {-0.75, -0.25, 0.25, 0.75}) {
    const double measured = (bridge.raw(load) - b0) / (b1 - b0);
    std::printf("    %8.0f  %12.1f\n", load * 100.0, measured * 100.0);
  }

  // ---- LVDT -----------------------------------------------------------------
  std::printf("\n[LVDT position]\n");
  sensor::LvdtSensor::Config lcfg;
  sensor::LvdtSensor lvdt(lcfg, Rng(31));
  dsp::Nco nco(240e3, 5e3);
  dsp::IqDemodulator demod(240e3, 100.0);
  std::printf("    true[mm]  demod I (position signal)\n");
  for (double pos : {-4.0, -2.0, 0.0, 2.0, 4.0}) {
    dsp::Iq bb{};
    for (int i = 0; i < 48000; ++i) {
      nco.step();
      bb = demod.step(lvdt.output(nco.sine(), nco.cosine(), pos), nco.sine(), nco.cosine());
    }
    std::printf("    %8.1f  %+10.4f\n", pos, bb.i);
  }
  std::printf("\nsame ADCs, charge amps, PGAs, NCO and demodulator IPs in every chain —\n");
  std::printf("only the selection differs (the paper's platform customization flow).\n");
  return 0;
}
