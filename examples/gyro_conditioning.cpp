// gyro_conditioning — the paper's case study end to end (§4).
//
// Reproduces the full development story on the simulated platform:
// power-on lock (Fig. 5/6), per-device calibration, a realistic driving
// scenario (lane change + roundabout at varying die temperature), and a
// look at the chain's internal observables along the way.
#include <cmath>
#include <cstdio>

#include "common/math.hpp"
#include "common/trace.hpp"
#include "core/calibration.hpp"
#include "core/gyro_system.hpp"

using namespace ascp;
using namespace ascp::core;

namespace {

/// A driving scenario: straight, lane change (S-curve), straight,
/// roundabout (sustained 45 deg/s), straight.
sensor::Profile driving_scenario() {
  return sensor::Profile([](double t) {
    if (t < 0.3) return 0.0;
    if (t < 0.7) return 25.0 * std::sin(kTwoPi * (t - 0.3) / 0.4);  // lane change
    if (t < 1.0) return 0.0;
    if (t < 1.8) return 45.0;  // roundabout
    return 0.0;
  });
}

}  // namespace

int main() {
  std::printf("=== Gyro conditioning case study (paper sec. 4) ===\n\n");

  GyroSystem gyro(default_gyro_system(Fidelity::Full));
  TraceRecorder trace;
  gyro.set_trace(&trace, 64);
  gyro.power_on(7);

  // --- power-on & lock -----------------------------------------------------
  std::printf("[1] power-on transient\n");
  double t_lock = -1.0;
  for (double t = 0.0; t < 0.8; t += 0.02) {
    gyro.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.02, nullptr);
    if (t_lock < 0 && gyro.locked()) t_lock = t + 0.02;
  }
  std::printf("    drive loops locked after ~%.0f ms at %.1f Hz, drive gain %.2f V\n\n",
              t_lock * 1e3, gyro.drive().frequency(), gyro.drive().amplitude_control());

  // --- calibration ---------------------------------------------------------
  std::printf("[2] factory calibration (3-temperature soak)\n");
  const auto comp = run_calibration(gyro);
  gyro.set_compensation(comp);
  std::printf("    offset poly: %+.4f %+.2e*dT %+.2e*dT^2\n", comp.offset[0], comp.offset[1],
              comp.offset[2]);
  std::printf("    scale: s0=%.3f, tempco %+.2e/degC\n\n", comp.s0, comp.s1);

  // --- the drive ------------------------------------------------------------
  std::printf("[3] driving scenario (die warming 25->45 degC)\n");
  std::vector<double> out;
  gyro.run(driving_scenario(), sensor::Profile::ramp(25.0, 45.0, 0.0, 2.2), 2.2, &out);
  const double fs = gyro.output_rate_hz();
  std::printf("    t[s]   measured[deg/s]   truth[deg/s]\n");
  const auto scenario = driving_scenario();
  double worst = 0.0;
  for (double t = 0.1; t < 2.2; t += 0.2) {
    const std::size_t i = static_cast<std::size_t>(t * fs);
    // Average 40 ms around the probe point.
    const std::size_t w = static_cast<std::size_t>(0.02 * fs);
    const double v = mean(std::span(out).subspan(i - w, 2 * w));
    const double measured = (v - gyro.nominal_null()) / gyro.nominal_sensitivity();
    const double truth = scenario.at(t);
    worst = std::max(worst, std::abs(measured - truth));
    std::printf("    %4.1f   %+15.2f   %+12.2f\n", t, measured, truth);
  }
  std::printf("    worst probe error: %.2f deg/s over a 20 degC warm-up\n\n", worst);

  // --- internal observability ------------------------------------------------
  std::printf("[4] chain internals (the 'readable registers spread along the chain')\n");
  for (const auto& e : gyro.regs().dump())
    std::printf("    reg[%2u] %-10s = %5u\n", e.addr, e.name.c_str(), e.value);
  std::printf("\n[5] rate output waveform\n%s", trace.render_ascii("rate_out").c_str());
  trace.write_csv("gyro_conditioning_traces.csv");
  std::printf("\ntraces written to gyro_conditioning_traces.csv\n");
  return 0;
}
