// prototyping_session — the paper's §4.2 development workflow on the
// simulated prototype: UART firmware download through the boot ROM, EEPROM
// reboot, JTAG manual trimming with full read-back, and a real-time SRAM
// capture of a chain node read back for analysis.
#include <cmath>
#include <cstdio>

#include "analysis/firmware_corpus.hpp"
#include "common/math.hpp"
#include "core/gyro_system.hpp"
#include "mcu/bootrom.hpp"
#include "platform/selftest.hpp"

using namespace ascp;
using namespace ascp::core;

int main() {
  std::printf("=== Prototyping session (paper sec. 4.2 workflow) ===\n\n");

  auto cfg = default_gyro_system(Fidelity::Ideal);
  cfg.with_mcu = true;
  GyroSystem gyro(cfg);
  auto& mcu = gyro.platform();

  // ---- [1] software download over the UART (boot ROM flow) ----------------
  std::printf("[1] UART software download via the 1 KB boot ROM\n");
  mcu::BootRomConfig boot_cfg;
  boot_cfg.spi_base = mcu.config().map.spi;
  boot_cfg.prog_base = mcu.config().map.prog_ram;
  mcu.load_firmware(mcu::BootRom::image(boot_cfg));

  // The greeting application from the shipped firmware corpus (ORG 8000h).
  const auto app = analysis::corpus::assemble_greeting_app().image;
  const std::vector<std::uint8_t> payload(app.begin() + 0x8000, app.end());
  std::printf("    application: %zu bytes, framed for download\n", payload.size());
  mcu.host().send_download(payload);
  mcu.run_cpu(3000000);
  std::printf("    MCU answered: \"%s\" (ACK 0x06 + greeting)\n",
              mcu.host().received_text().c_str() + 1);

  // ---- [2] store to EEPROM and reboot from it ------------------------------
  std::printf("\n[2] store image to SPI EEPROM, reboot without a host\n");
  mcu.eeprom()->program(0, mcu::BootRom::eeprom_image(payload));
  mcu.host().clear_received();
  mcu.cpu().reset();
  mcu.load_firmware(mcu::BootRom::image(boot_cfg));
  mcu.run_cpu(3000000);
  std::printf("    after reboot MCU sent: \"%s\" (booted from EEPROM)\n",
              mcu.host().received_text().c_str());

  // ---- [3] JTAG manual trimming with read-back ------------------------------
  std::printf("\n[3] JTAG configuration + full read-back\n");
  auto& jtag = mcu.jtag();
  jtag.reset();
  std::printf("    IDCODE: 0x%08X\n", jtag.read_idcode(0));
  const auto gain_before = jtag.read_register(0, reg::kSenseGain);
  jtag.write_register(0, reg::kSenseGain, 10 * 16);  // PGA gain 8 -> 10
  std::printf("    sense PGA gain trim: %.1f -> %.1f (read back %.1f)\n", gain_before / 16.0,
              10.0, jtag.read_register(0, reg::kSenseGain) / 16.0);
  std::printf("    full register read-back over JTAG:\n");
  for (const auto& e : gyro.regs().dump())
    std::printf("      reg[%2u] %-10s = %5u\n", e.addr, e.name.c_str(),
                jtag.read_register(0, e.addr));

  // ---- [3b] self-checking tests (paper sec. 2) -------------------------------
  std::printf("\n[3b] platform self-test ('strict self-checking tests concerning\n");
  std::printf("     full hardware read-back capability'):\n");
  std::printf("%s", ascp::platform::run_self_test(mcu).report().c_str());

  // ---- [4] real-time SRAM capture of a chain node ----------------------------
  std::printf("\n[4] 512 Kb SRAM capture of the raw rate node, read back\n");
  gyro.power_on(5);  // apply the new trim on a cold boot
  gyro.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.9, nullptr);
  auto* sram = mcu.sram_trace();
  sram->write_reg(1, 0);  // node 0: raw rate
  sram->write_reg(2, 1);  // no decimation
  sram->write_reg(0, 3);  // reset + arm
  gyro.run(sensor::Profile::sine(100.0, 5.0), sensor::Profile::constant(25.0), 0.6, nullptr);
  const auto capture = sram->snapshot();
  std::printf("    captured %zu samples while the rate table ran a 5 Hz sine\n",
              capture.size());
  std::vector<double> v(capture.size());
  for (std::size_t i = 0; i < capture.size(); ++i)
    v[i] = static_cast<std::int16_t>(capture[i]) / 8192.0;
  std::printf("    analysis: mean %+0.4f V, rms %.4f V, min %+.4f, max %+.4f\n", mean(v), rms(v),
              *std::min_element(v.begin(), v.end()), *std::max_element(v.begin(), v.end()));
  std::printf("    (a clean +/-100 deg/s sine at the raw node, as expected)\n");
  return 0;
}
