// quickstart — the five-minute tour of the public API.
//
//   1. build the platform's gyro customization,
//   2. power on and wait for the drive loops to lock,
//   3. calibrate (the factory trim flow),
//   4. measure a yaw-rate manoeuvre.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/calibration.hpp"
#include "core/gyro_system.hpp"

using namespace ascp;
using namespace ascp::core;

int main() {
  // 1. The platform customization for a vibrating-ring gyro. Fidelity::Full
  //    simulates the whole mixed-signal chain (ADCs, DACs, noise);
  //    Fidelity::Ideal is the fast float model for algorithm work.
  GyroSystem gyro(default_gyro_system(Fidelity::Full));

  // 2. Cold power-on of device #42 (each seed is a different die).
  gyro.power_on(42);
  std::printf("powering on ... ");
  gyro.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.8, nullptr);
  std::printf("PLL %s at %.1f Hz, AGC %s\n", gyro.drive().pll_locked() ? "locked" : "NOT locked",
              gyro.drive().frequency(), gyro.locked() ? "settled" : "settling");

  // 3. Factory calibration: temperature soak, offset/scale fit, coefficients
  //    into the compensation block. (Takes a minute of simulated soak.)
  std::printf("calibrating ... ");
  gyro.set_compensation(run_calibration(gyro));
  std::printf("done (scale s0=%.3f)\n", gyro.sense().compensation().coeffs().s0);

  // The calibration flow leaves the die soaked at its last temperature;
  // give it a moment back at 25 degC before measuring.
  gyro.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.5, nullptr);

  // 4. A manoeuvre: 90 deg/s step turn at t=0.1 s, read the output stream.
  std::vector<double> out;
  gyro.run(sensor::Profile::step(90.0, 0.1), sensor::Profile::constant(25.0), 0.4, &out);
  const double fs = gyro.output_rate_hz();
  std::printf("\n  t[ms]   output[V]   rate[deg/s]\n");
  for (std::size_t i = 0; i < out.size(); i += static_cast<std::size_t>(fs * 0.05)) {
    const double rate = (out[i] - gyro.nominal_null()) / gyro.nominal_sensitivity();
    std::printf("  %5.0f   %9.4f   %+9.1f\n", 1e3 * static_cast<double>(i) / fs, out[i], rate);
  }
  std::printf("\nexpected: ~0 before 100 ms, ~90 deg/s (2.95 V) after.\n");
  return 0;
}
