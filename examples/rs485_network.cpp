// rs485_network — several conditioning chips on one differential pair.
//
// The paper's motivation is a car with "more than 100" sensors (§1), and
// its platform therefore ships an RS485 option (§4.2) so conditioning chips
// can share a bus instead of each owning a UART line to the ECU. This
// example puts three platform MCUs on one Rs485Bus, each running firmware
// that answers to its node address with the live contents of its rate
// register — the ECU-side polling loop of a real vehicle network.
#include <cstdio>

#include "analysis/firmware_corpus.hpp"
#include "mcu/rs485.hpp"
#include "platform/platform.hpp"

using namespace ascp;
using namespace ascp::mcu;

namespace {

// Node firmware comes from the shipped corpus: 9-bit multiprocessor mode; on
// its address frame it drops SM2, takes one command byte, replies with the
// two bytes of the rate register (word-coherent via the bridge read latch),
// then re-arms SM2.
struct Node {
  explicit Node(std::uint8_t address) : address_(address) {
    sys.regs().define("rate_mv", 0, platform::RegKind::Status, 2500);
    sys.load_firmware(
        analysis::corpus::assemble_rs485_node(address, sys.config().map).image);
  }

  std::uint8_t address_;
  platform::McuSubsystem sys;
};

}  // namespace

int main() {
  std::printf("=== RS485 sensor network: one bus, three conditioning chips ===\n\n");

  Node yaw(0x10), roll(0x11), pitch(0x12);
  Rs485Bus bus;
  bus.attach(yaw.sys.cpu());
  bus.attach(roll.sys.cpu());
  bus.attach(pitch.sys.cpu());

  // The chains post their current rate registers (here: static test values
  // standing in for three live conditioning chains).
  yaw.sys.regs().post_status(0, 2500 + 450);   // +90 deg/s at 5 mV/deg/s
  roll.sys.regs().post_status(0, 2500 - 125);  // −25 deg/s
  pitch.sys.regs().post_status(0, 2500 + 15);  // +3 deg/s

  auto run_all = [&](long cycles) {
    long used = 0;
    while (used < cycles) {
      used += yaw.sys.cpu().step();
      roll.sys.cpu().step();
      pitch.sys.cpu().step();
      bus.pump();
    }
  };
  run_all(5000);  // all nodes reach their address-wait loops

  std::printf("ECU polling loop:\n  node  addr  reply[mV]  rate[deg/s]\n");
  const char* names[] = {"yaw", "roll", "pitch"};
  for (std::uint8_t n = 0; n < 3; ++n) {
    bus.clear_log();
    bus.send_address(static_cast<std::uint8_t>(0x10 + n));
    bus.send_data('Q');
    run_all(120000);
    if (bus.master_log().size() != 2) {
      std::printf("  %-5s  0x%02X  NO REPLY (%zu bytes)\n", names[n], 0x10 + n,
                  bus.master_log().size());
      continue;
    }
    const unsigned mv = static_cast<unsigned>(bus.master_log()[0].byte) << 8 |
                        bus.master_log()[1].byte;
    std::printf("  %-5s  0x%02X  %9u  %+10.1f\n", names[n], 0x10 + n, mv,
                (mv / 1000.0 - 2.5) / 5e-3);
  }
  std::printf("\nfour wires total on the harness — versus three UART pairs — and every\n");
  std::printf("node ignores traffic addressed elsewhere (SM2 hardware filtering).\n");
  return 0;
}
