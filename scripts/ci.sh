#!/usr/bin/env bash
# ci.sh — the single CI entry point.
#
# With no argument, runs the full pipeline: builds every preset, runs the
# tier-1 test suite on the default and ubsan builds, runs the static
# verification driver (platform_lint) over the shipped platform plus both
# negative fixtures, and finishes with the conformance-fuzzer stages (a
# deterministic smoke sweep plus corpus replay under ASAN). clang-tidy (the
# lint preset) runs only when the tool is installed, so the script works in
# minimal containers too.
#
# Individual stages can be run by name:
#   ci.sh coverage     — ASCP_COVERAGE build, tier-1 + fuzz smoke, then the
#                        aggregated line-coverage summary (coverage_report.py)
#   ci.sh fuzz-smoke   — deterministic conformance smoke: 200 randomized
#                        scenarios from --seed 2026, zero violations required
#   ci.sh fuzz-corpus  — replay every checked-in .scenario under ASAN
#   ci.sh chaos-smoke  — deterministic seeded fleet-chaos run (stalls,
#                        exceptions, checkpoint corruption; zero lost
#                        channels required) plus a checkpoint round-trip
#                        replay under ASAN
#   ci.sh wcet         — static timing proof: platform_lint --timing must be
#                        error-free on the shipped platform, the unbounded-
#                        loop fixture must be flagged, and the differential
#                        WCET validation bench (static >= ISS-observed for
#                        every corpus function) must pass in smoke mode
#   ci.sh replay       — stimulus record/replay proof: stimulus_tool
#                        record→replay hash round-trip on two corpus
#                        scenarios (one under ASAN), a stimulus_tool diff
#                        self-check on the recorded traces, and the
#                        queue/recorded channel-farm tests under TSan
#   ci.sh blackbox     — crash-forensics proof under ASAN: chaos smoke with
#                        --blackbox-dir, blackbox_tool inspect/export/replay
#                        round-trip on a dumped image, and a bit-flipped
#                        image must fail replay with the distinct blackbox
#                        CRC error
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
stage="${1:-all}"

build_preset() {
  echo "== configure + build: $1 =="
  cmake --preset "$1" >/dev/null
  cmake --build --preset "$1" -j "$jobs" "${@:2}"
}

stage_fuzz_smoke() {
  build_preset default --target scenario_fuzz
  echo "== conformance fuzz: deterministic smoke (seed 2026, 200 scenarios) =="
  ./build/tools/scenario_fuzz --smoke --seed 2026 --runs 200
}

stage_fuzz_corpus() {
  build_preset asan --target scenario_fuzz
  echo "== conformance fuzz: corpus replay under ASAN =="
  ./build-asan/tools/scenario_fuzz --corpus tests/conformance/corpus
}

stage_chaos_smoke() {
  build_preset default --target fleet_chaos
  echo "== fleet chaos: deterministic smoke (seed 2026) =="
  ./build/bench/fleet_chaos --smoke --seed 2026
  build_preset asan --target test_checkpoint
  echo "== checkpoint round-trip replay under ASAN (corpus subset) =="
  ./build-asan/tests/test_checkpoint \
    --gtest_filter='Corpus/CorpusCheckpoint.ResumeAtKBitExactWithStraightRun/*:CheckpointFrame.*'
}

stage_wcet() {
  build_preset default --target platform_lint --target wcet_validation
  echo "== platform_lint --timing: shipped platform real-time budget =="
  ./build/tools/platform_lint --timing
  echo "== platform_lint --timing: unbounded loop must be flagged =="
  if ./build/tools/platform_lint --timing --asm tests/analysis/fixtures/unbounded_loop.asm; then
    echo "ERROR: unbounded_loop.asm was not flagged" >&2
    exit 1
  fi
  echo "== wcet_validation: static WCET >= ISS-observed (smoke) =="
  ./build/bench/wcet_validation --smoke
}

stage_replay() {
  build_preset default --target stimulus_tool
  build_preset asan --target stimulus_tool
  local tmp
  tmp=$(mktemp -d)
  echo "== stimulus record→replay round-trip: vibration_shock (default build) =="
  ./build/tools/stimulus_tool record tests/conformance/corpus/vibration_shock.scenario \
    "$tmp/vibration_shock.strace"
  ./build/tools/stimulus_tool replay tests/conformance/corpus/vibration_shock.scenario \
    "$tmp/vibration_shock.strace"
  echo "== stimulus record→replay round-trip: trace_segment_replay (ASAN) =="
  ./build-asan/tools/stimulus_tool record tests/conformance/corpus/trace_segment_replay.scenario \
    "$tmp/trace_segment_replay.strace"
  ./build-asan/tools/stimulus_tool replay tests/conformance/corpus/trace_segment_replay.scenario \
    "$tmp/trace_segment_replay.strace"
  echo "== stimulus_tool diff: self vs self must be identical, cross must not =="
  ./build/tools/stimulus_tool diff "$tmp/vibration_shock.strace" "$tmp/vibration_shock.strace"
  if ./build/tools/stimulus_tool diff "$tmp/vibration_shock.strace" \
      "$tmp/trace_segment_replay.strace"; then
    echo "ERROR: diff of two different traces reported identical" >&2
    exit 1
  fi
  rm -rf "$tmp"
  echo "== tsan: queue-fed + recorded-trace channel farms =="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$jobs" --target test_engine
  ./build-tsan/tests/test_engine --gtest_filter='FarmStimulus.*'
}

stage_blackbox() {
  build_preset asan --target fleet_chaos --target blackbox_tool
  local tmp
  tmp=$(mktemp -d)
  echo "== fleet chaos under ASAN, dumping .blackbox crash images =="
  (cd "$tmp" && "$OLDPWD"/build-asan/bench/fleet_chaos --smoke --seed 2026 \
    --blackbox-dir "$tmp/bb")
  local image
  image=$(ls "$tmp"/bb/*.blackbox | head -1)
  echo "== blackbox_tool round-trip on $(basename "$image") =="
  ./build-asan/tools/blackbox_tool inspect "$image"
  ./build-asan/tools/blackbox_tool export "$image" --json "$tmp/bb.json" \
    --trace "$tmp/bb_trace.json"
  python3 -c "import json,sys; json.load(open(sys.argv[1])); json.load(open(sys.argv[2]))" \
    "$tmp/bb.json" "$tmp/bb_trace.json"
  ./build-asan/tools/blackbox_tool replay "$image"
  echo "== corrupted image must fail replay with the blackbox CRC error =="
  python3 - "$image" "$tmp/corrupt.blackbox" <<'EOF'
import sys
data = bytearray(open(sys.argv[1], 'rb').read())
data[28 + (len(data) - 28) // 3] ^= 0x01  # flip one payload bit past the header
open(sys.argv[2], 'wb').write(data)
EOF
  if ./build-asan/tools/blackbox_tool replay "$tmp/corrupt.blackbox" 2>"$tmp/err.txt"; then
    echo "ERROR: corrupted .blackbox image replayed successfully" >&2
    exit 1
  fi
  if ! grep -q "blackbox CRC mismatch" "$tmp/err.txt"; then
    echo "ERROR: corrupted image did not fail with the blackbox CRC error:" >&2
    cat "$tmp/err.txt" >&2
    exit 1
  fi
  rm -rf "$tmp"
}

stage_coverage() {
  build_preset coverage
  echo "== tier-1 tests (coverage build) =="
  ctest --preset coverage
  echo "== conformance fuzz smoke (coverage build, reduced sweep) =="
  ./build-coverage/tools/scenario_fuzz --smoke --seed 2026 --runs 40
  echo "== line coverage =="
  python3 scripts/coverage_report.py build-coverage
}

case "$stage" in
  fuzz-smoke)  stage_fuzz_smoke;  echo "CI STAGE fuzz-smoke PASSED";  exit 0 ;;
  fuzz-corpus) stage_fuzz_corpus; echo "CI STAGE fuzz-corpus PASSED"; exit 0 ;;
  chaos-smoke) stage_chaos_smoke; echo "CI STAGE chaos-smoke PASSED"; exit 0 ;;
  wcet)        stage_wcet;        echo "CI STAGE wcet PASSED";        exit 0 ;;
  replay)      stage_replay;      echo "CI STAGE replay PASSED";      exit 0 ;;
  blackbox)    stage_blackbox;    echo "CI STAGE blackbox PASSED";    exit 0 ;;
  coverage)    stage_coverage;    echo "CI STAGE coverage PASSED";    exit 0 ;;
  all) ;;
  *) echo "usage: ci.sh [coverage|fuzz-smoke|fuzz-corpus|chaos-smoke|wcet|replay|blackbox]" >&2; exit 2 ;;
esac

build_preset default
build_preset ubsan
build_preset asan

if command -v clang-tidy >/dev/null 2>&1; then
  build_preset lint
else
  echo "== lint preset skipped: clang-tidy not installed =="
fi

echo "== configure + build: tsan (channel-farm engine) =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs" --target test_engine

echo "== tsan: channel-farm tests =="
./build-tsan/tests/test_engine

echo "== tier-1 tests (default) =="
ctest --preset default

echo "== tier-1 tests (ubsan) =="
ctest --preset ubsan

echo "== channel-farm smoke (4 channels, 0.1 s) =="
./build/bench/perf_channel_farm --smoke

echo "== observability: unit tests =="
./build/tests/test_obs

echo "== observability: golden bit-identity (obs on vs off) =="
./build/tests/test_obs --gtest_filter='ObsBitIdentity.*'

echo "== observability: platform_top smoke =="
./build/tools/platform_top --smoke --json /tmp/ci_obs_snapshot.json

echo "== observability: platform_top fleet health table =="
./build/tools/platform_top --fleet --smoke

echo "== observability: record-path cost + zero-allocation proof =="
./build/bench/perf_obs --smoke --json /tmp/ci_perf_obs.json

echo "== platform_lint: event-category coverage =="
./build/tools/platform_lint --events

echo "== platform_lint: shipped platform must be error-free =="
./build/tools/platform_lint

echo "== platform_lint: negative fixtures must be flagged =="
if ./build/tools/platform_lint --map tests/analysis/fixtures/overlapping_map.regmap; then
  echo "ERROR: overlapping_map.regmap was not flagged" >&2
  exit 1
fi
if ./build/tools/platform_lint --asm tests/analysis/fixtures/broken_firmware.asm; then
  echo "ERROR: broken_firmware.asm was not flagged" >&2
  exit 1
fi

stage_wcet
stage_fuzz_smoke
stage_fuzz_corpus
stage_chaos_smoke
stage_replay
stage_blackbox

echo "CI PASSED"
