#!/usr/bin/env bash
# ci.sh — the single CI entry point.
#
# Builds every preset, runs the tier-1 test suite on the default and ubsan
# builds, and runs the static verification driver (platform_lint) over the
# shipped platform plus both negative fixtures. clang-tidy (the lint preset)
# runs only when the tool is installed, so the script works in minimal
# containers too.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== configure + build: default =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"

echo "== configure + build: ubsan =="
cmake --preset ubsan >/dev/null
cmake --build --preset ubsan -j "$jobs"

echo "== configure + build: asan =="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "$jobs"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== configure + build: lint (clang-tidy) =="
  cmake --preset lint >/dev/null
  cmake --build --preset lint -j "$jobs"
else
  echo "== lint preset skipped: clang-tidy not installed =="
fi

echo "== configure + build: tsan (channel-farm engine) =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs" --target test_engine

echo "== tsan: channel-farm tests =="
./build-tsan/tests/test_engine

echo "== tier-1 tests (default) =="
ctest --preset default

echo "== tier-1 tests (ubsan) =="
ctest --preset ubsan

echo "== channel-farm smoke (4 channels, 0.1 s) =="
./build/bench/perf_channel_farm --smoke

echo "== observability: unit tests =="
./build/tests/test_obs

echo "== observability: golden bit-identity (obs on vs off) =="
./build/tests/test_obs --gtest_filter='ObsBitIdentity.*'

echo "== observability: platform_top smoke =="
./build/tools/platform_top --smoke --json /tmp/ci_obs_snapshot.json

echo "== platform_lint: event-category coverage =="
./build/tools/platform_lint --events

echo "== platform_lint: shipped platform must be error-free =="
./build/tools/platform_lint

echo "== platform_lint: negative fixtures must be flagged =="
if ./build/tools/platform_lint --map tests/analysis/fixtures/overlapping_map.regmap; then
  echo "ERROR: overlapping_map.regmap was not flagged" >&2
  exit 1
fi
if ./build/tools/platform_lint --asm tests/analysis/fixtures/broken_firmware.asm; then
  echo "ERROR: broken_firmware.asm was not flagged" >&2
  exit 1
fi

echo "CI PASSED"
