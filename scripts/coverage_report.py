#!/usr/bin/env python3
"""Aggregate gcov line coverage for an ASCP_COVERAGE build tree.

Usage: coverage_report.py <build-dir> [--filter PREFIX]

Walks <build-dir> for .gcda counter files, runs `gcov -n` on each (no .gcov
files are written), and aggregates "Lines executed" per source file. Only
files whose path contains PREFIX (default "/src/") are reported, so headers
from the toolchain and the test harness don't dilute the number.

Exit status is 0 when any covered line was found, 1 otherwise — a coverage
stage that measured nothing is a broken stage, not 100% coverage.
"""

import os
import re
import subprocess
import sys


def collect_gcda(build_dir):
    for root, _dirs, files in os.walk(os.path.abspath(build_dir)):
        for f in files:
            if f.endswith(".gcda"):
                yield os.path.join(root, f)


def parse_gcov_output(text):
    """Yield (source_path, percent, total_lines) triples from `gcov -n`."""
    current = None
    for line in text.splitlines():
        m = re.match(r"File '(.*)'", line)
        if m:
            current = m.group(1)
            continue
        m = re.match(r"Lines executed:\s*([0-9.]+)% of (\d+)", line)
        if m and current is not None:
            yield current, float(m.group(1)), int(m.group(2))
            current = None


def main():
    args = sys.argv[1:]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    build_dir = args[0]
    prefix = "/src/"
    if "--filter" in args:
        prefix = args[args.index("--filter") + 1]

    gcda = sorted(collect_gcda(build_dir))
    if not gcda:
        print(f"coverage: no .gcda files under {build_dir} (run the tests first)",
              file=sys.stderr)
        return 1

    # One gcov invocation per object dir keeps the command lines short; the
    # same source seen from several test binaries gets max-merged below
    # (counts are already merged inside the shared .gcda of each object).
    by_file = {}  # source path -> (covered_lines, total_lines)
    for path in gcda:
        proc = subprocess.run(
            ["gcov", "-n", path],
            capture_output=True,
            text=True,
            check=False,
        )
        for src, pct, total in parse_gcov_output(proc.stdout):
            if prefix not in src or total == 0:
                continue
            covered = round(pct * total / 100.0)
            prev = by_file.get(src)
            if prev is None or covered > prev[0]:
                by_file[src] = (covered, total)

    if not by_file:
        print(f"coverage: no sources matching '{prefix}' were exercised",
              file=sys.stderr)
        return 1

    # Per-directory rollup, then the total line.
    by_dir = {}
    for src, (covered, total) in sorted(by_file.items()):
        rel = src[src.find(prefix) + 1:] if prefix in src else src
        d = os.path.dirname(rel)
        c, t = by_dir.get(d, (0, 0))
        by_dir[d] = (c + covered, t + total)

    width = max(len(d) for d in by_dir)
    print(f"{'directory':<{width}}  lines  covered      %")
    for d, (c, t) in sorted(by_dir.items()):
        print(f"{d:<{width}}  {t:5d}  {c:7d}  {100.0 * c / t:5.1f}")
    c_all = sum(c for c, _t in by_file.values())
    t_all = sum(t for _c, t in by_file.values())
    print("-" * (width + 26))
    print(f"{'TOTAL':<{width}}  {t_all:5d}  {c_all:7d}  {100.0 * c_all / t_all:5.1f}")
    print(f"line coverage: {100.0 * c_all / t_all:.1f}% ({c_all}/{t_all} lines)")
    return 0 if c_all > 0 else 1


if __name__ == "__main__":
    sys.exit(main())
