#include "afe/adc.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math.hpp"

namespace ascp::afe {

SarAdc::SarAdc(const AdcConfig& cfg, ascp::Rng rng)
    : cfg_(cfg), noise_(NoiseSpec{cfg.noise_density, 0.0}, cfg.fs, rng.fork(7)) {
  assert(cfg_.bits >= 6 && cfg_.bits <= 16);
  const std::int64_t half = std::int64_t{1} << (cfg_.bits - 1);
  code_min_ = static_cast<std::int32_t>(-half);
  code_max_ = static_cast<std::int32_t>(half - 1);
  lsb_ = cfg_.vref / static_cast<double>(half);

  // Die-specific static errors: offset and gain mismatch draws.
  offset_ = cfg_.offset_volts + rng.gaussian(0.25 * lsb_);
  gain_ = (1.0 + cfg_.gain_error) * (1.0 + rng.gaussian(1e-4));

  // INL: smooth bowing (2nd/3rd order) plus integrated per-code DNL noise —
  // the signature of a binary-weighted SAR capacitor array.
  const std::size_t ncodes = static_cast<std::size_t>(code_max_ - code_min_ + 1);
  inl_.resize(ncodes);
  const double bow2 = rng.uniform(-1.0, 1.0) * cfg_.inl_lsb;
  const double bow3 = rng.uniform(-1.0, 1.0) * cfg_.inl_lsb * 0.5;
  double walk = 0.0;
  const double dnl_step = cfg_.dnl_sigma_lsb / std::sqrt(static_cast<double>(ncodes));
  for (std::size_t i = 0; i < ncodes; ++i) {
    const double x = 2.0 * static_cast<double>(i) / static_cast<double>(ncodes - 1) - 1.0;  // −1..1
    walk += rng.gaussian(dnl_step);
    inl_[i] = bow2 * (1.0 - x * x) + bow3 * x * (1.0 - x * x) + walk;
  }
  // Remove endpoint line so INL is endpoint-referenced.
  const double i0 = inl_.front(), i1 = inl_.back();
  for (std::size_t i = 0; i < ncodes; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(ncodes - 1);
    inl_[i] -= i0 + t * (i1 - i0);
  }
}

std::int32_t SarAdc::convert(double vin, double temp_c) {
  if (stuck_) return stuck_code_;

  const double dt = temp_c - 25.0;
  double v = vin + offset_ + cfg_.offset_drift * dt;
  v *= gain_ * (1.0 + cfg_.gain_drift * dt);
  v += noise_.sample(temp_c);

  // Ideal quantization first, then displace by the local INL. A shifted
  // reference scales the real LSB; the digital side keeps the nominal one.
  double code_f = v / (lsb_ * (1.0 + ref_shift_));
  const double idx = std::clamp(code_f - static_cast<double>(code_min_), 0.0,
                                static_cast<double>(inl_.size() - 1));
  code_f += inl_[static_cast<std::size_t>(idx)];

  const double rounded = std::nearbyint(code_f);
  return static_cast<std::int32_t>(
      std::clamp(rounded, static_cast<double>(code_min_), static_cast<double>(code_max_)));
}

double SarAdc::convert_volts(double vin, double temp_c) {
  return static_cast<double>(convert(vin, temp_c)) * lsb_;
}

double SarAdc::inl_at(std::int32_t code) const {
  const std::int64_t idx = static_cast<std::int64_t>(code) - code_min_;
  if (idx < 0 || idx >= static_cast<std::int64_t>(inl_.size())) return 0.0;
  return inl_[static_cast<std::size_t>(idx)];
}

}  // namespace ascp::afe
