// adc.hpp — SAR ADC behavioral model.
//
// Paper §4.2: "performing signal acquisition (by means of SAR ADCs,
// amplifiers and basic filters)". The model captures everything that matters
// to the digital chain: sample/hold, quantization, INL/DNL from a per-device
// mismatch draw, input-referred thermal noise, offset/gain error with
// temperature drift, and saturation at the rails. Resolution is a register-
// programmable platform parameter ("number of ADC bits", paper §3).
#pragma once

#include <cstdint>
#include <vector>

#include "afe/noise.hpp"
#include "common/rng.hpp"

namespace ascp::afe {

struct AdcConfig {
  int bits = 12;                  ///< resolution (programmable, 6..16)
  double vref = 2.5;              ///< full scale is ±vref (differential input)
  double noise_density = 50e-9;   ///< input-referred white noise [V/√Hz]
  double offset_volts = 0.0;      ///< static offset (before mismatch draw)
  double offset_drift = 2e-6;     ///< offset tempco [V/°C]
  double gain_error = 0.0;        ///< static gain error (fraction)
  double gain_drift = 10e-6;      ///< gain tempco [1/°C]
  double inl_lsb = 0.5;           ///< peak INL bowing [LSB]
  double dnl_sigma_lsb = 0.2;     ///< per-code DNL mismatch sigma [LSB]
  double fs = 240e3;              ///< sample rate [Hz]
};

/// Behavioral SAR ADC. Each instance draws its own static nonlinearity from
/// the RNG, modelling die-to-die mismatch; conversions are deterministic
/// given the seed.
class SarAdc {
 public:
  SarAdc(const AdcConfig& cfg, ascp::Rng rng);

  /// Convert one sample taken at ambient `temp_c`; returns the signed output
  /// code in [−2^(bits−1), 2^(bits−1)−1].
  std::int32_t convert(double vin, double temp_c = 25.0);

  /// Convert and rescale back to volts (code · LSB) — the value the digital
  /// chain sees after the interface scaling.
  double convert_volts(double vin, double temp_c = 25.0);

  double lsb() const { return lsb_; }
  int bits() const { return cfg_.bits; }
  const AdcConfig& config() const { return cfg_; }

  /// Static transfer-curve deviation at a given code [LSB] (INL read-back,
  /// used by the self-test bench).
  double inl_at(std::int32_t code) const;

  // ---- fault injection -----------------------------------------------------
  /// Comparator/SAR-logic failure: every conversion returns `code`.
  void inject_stuck_code(std::int32_t code) {
    stuck_ = true;
    stuck_code_ = code;
  }
  /// Reference drift: the actual full scale becomes vref·(1+frac) while the
  /// digital side keeps assuming the nominal LSB — codes shrink by 1/(1+frac).
  void inject_reference_shift(double frac) { ref_shift_ = frac; }
  void clear_faults() {
    stuck_ = false;
    ref_shift_ = 0.0;
  }

  void serialize_state(StateArchive& ar) {
    // Mismatch draws (offset_, gain_, inl_) reproduce from the same seed at
    // construction; only the noise stream and fault latches evolve.
    noise_.serialize_state(ar);
    ar.value(stuck_);
    ar.value(stuck_code_);
    ar.value(ref_shift_);
  }

 private:
  AdcConfig cfg_;
  double lsb_;
  std::int32_t code_min_, code_max_;
  double offset_;  ///< drawn offset including mismatch
  double gain_;    ///< drawn gain including mismatch
  std::vector<double> inl_;  ///< per-code INL [LSB]
  NoiseSource noise_;
  bool stuck_ = false;
  std::int32_t stuck_code_ = 0;
  double ref_shift_ = 0.0;
};

}  // namespace ascp::afe
