#include "afe/amplifier.hpp"

#include <algorithm>
#include <cmath>

#include "common/math.hpp"

namespace ascp::afe {

namespace {
double pole_alpha(double bw_hz, double fs) {
  // Exact ZOH discretization of a single pole at bw_hz.
  return 1.0 - std::exp(-kTwoPi * bw_hz / fs);
}
}  // namespace

Amplifier::Amplifier(const AmplifierConfig& cfg, ascp::Rng rng)
    : cfg_(cfg),
      offset_(rng.gaussian(cfg.offset_volts)),
      alpha_(pole_alpha(cfg.bandwidth_hz, cfg.fs)),
      noise_(cfg.noise, cfg.fs, rng.fork(3)) {}

void Amplifier::set_bandwidth(double bw_hz) {
  cfg_.bandwidth_hz = bw_hz;
  alpha_ = pole_alpha(bw_hz, cfg_.fs);
}

double Amplifier::step(double vin, double temp_c) {
  const double v_in_eff = vin + offset_ + cfg_.offset_drift * (temp_c - 25.0) + noise_.sample(temp_c);
  const double target = cfg_.gain * v_in_eff;
  state_ += alpha_ * (target - state_);
  return std::clamp(state_, -cfg_.vsat, cfg_.vsat);
}

}  // namespace ascp::afe
