// amplifier.hpp — programmable gain amplifier (PGA).
//
// Paper §3: "programming main components parameters (such as amplifier gains
// and bandwidth …) through the digital part allows a more accurate adaptation
// of the front end circuitry" — gain and bandwidth are register-writable at
// run time (the JTAG config path). The model is a one-pole amplifier with
// offset/drift, input-referred noise and supply-rail saturation.
#pragma once

#include "afe/noise.hpp"
#include "common/rng.hpp"

namespace ascp::afe {

struct AmplifierConfig {
  double gain = 1.0;             ///< nominal gain (programmable)
  double bandwidth_hz = 1e6;     ///< −3 dB bandwidth (programmable)
  double vsat = 2.5;             ///< output saturation rails ±vsat
  double offset_volts = 100e-6;  ///< input-referred offset 1σ mismatch draw
  double offset_drift = 1e-6;    ///< offset tempco [V/°C]
  NoiseSpec noise{10e-9, 100.0}; ///< input-referred: 10 nV/√Hz, 100 Hz corner
  double fs = 1.92e6;            ///< simulation step rate [Hz]
};

/// One-pole PGA evaluated at the analog simulation rate.
class Amplifier {
 public:
  Amplifier(const AmplifierConfig& cfg, ascp::Rng rng);

  /// Advance one analog time step with input vin at ambient temp_c.
  double step(double vin, double temp_c = 25.0);

  /// Register-programmable controls (write path from the digital section).
  void set_gain(double g) { cfg_.gain = g; }
  void set_bandwidth(double bw_hz);
  double gain() const { return cfg_.gain; }
  double bandwidth() const { return cfg_.bandwidth_hz; }

  void reset() { state_ = 0.0; }

  void serialize_state(StateArchive& ar) {
    // Gain/bandwidth are register-writable at run time, so they travel with
    // the state even though they look like config.
    ar.value(cfg_.gain);
    ar.value(cfg_.bandwidth_hz);
    ar.value(alpha_);
    ar.value(state_);
    noise_.serialize_state(ar);
  }

 private:
  AmplifierConfig cfg_;
  double offset_;
  double alpha_;
  double state_ = 0.0;
  NoiseSource noise_;
};

}  // namespace ascp::afe
