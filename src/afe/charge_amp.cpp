#include "afe/charge_amp.hpp"

#include <algorithm>
#include <cmath>

#include "common/math.hpp"

namespace ascp::afe {

ChargeAmp::ChargeAmp(const ChargeAmpConfig& cfg, ascp::Rng rng)
    : cfg_(cfg),
      lp_alpha_(1.0 - std::exp(-kTwoPi * cfg.bandwidth_hz / cfg.fs)),
      hp_alpha_(1.0 - std::exp(-kTwoPi * cfg.hp_corner_hz / cfg.fs)),
      noise_(cfg.noise, cfg.fs, rng.fork(5)) {}

double ChargeAmp::step(double dc_farads, double temp_c) {
  const double v_ideal = open_wire_ ? 0.0 : gain() * dc_farads;
  // Bandwidth-limited low-pass stage.
  lp_state_ += lp_alpha_ * (v_ideal - lp_state_);
  // DC-servo high-pass: subtract a slow tracking of the output. The gyro
  // carrier (~15 kHz) passes untouched; electrode bias drift does not.
  hp_state_ += hp_alpha_ * (lp_state_ - hp_state_);
  const double v = lp_state_ - hp_state_ + noise_.sample(temp_c);
  return std::clamp(v, -cfg_.vsat, cfg_.vsat);
}

void ChargeAmp::reset() {
  lp_state_ = 0.0;
  hp_state_ = 0.0;
}

}  // namespace ascp::afe
