// charge_amp.hpp — capacitance-to-voltage converter for capacitive pickoff.
//
// The vibrating-ring gyro is read out capacitively (paper §4.1: the
// secondary vibration "can be capacitively detected through the sense
// electrodes"). A charge amplifier converts the time-varying sense
// capacitance (biased at Vbias) into a voltage: Vout ≈ −Vbias · ΔC / Cf.
// Modelled with feedback-capacitor gain, a high-pass corner from the DC
// servo (bias resistor), bandwidth limit and kTC-style noise.
#pragma once

#include "afe/noise.hpp"
#include "common/rng.hpp"

namespace ascp::afe {

struct ChargeAmpConfig {
  double c_feedback_farads = 1e-12;  ///< feedback capacitor Cf
  double v_bias = 5.0;               ///< electrode bias voltage [V]
  double hp_corner_hz = 100.0;       ///< DC-servo high-pass corner
  double bandwidth_hz = 500e3;       ///< closed-loop bandwidth
  double vsat = 2.5;                 ///< output rails
  NoiseSpec noise{20e-9, 200.0};     ///< output-referred noise
  double fs = 1.92e6;                ///< simulation step rate [Hz]
};

/// Converts a differential capacitance deviation ΔC [F] into volts.
class ChargeAmp {
 public:
  ChargeAmp(const ChargeAmpConfig& cfg, ascp::Rng rng);

  /// One analog step with instantaneous capacitance deviation dc_farads.
  double step(double dc_farads, double temp_c = 25.0);

  /// Conversion gain [V/F].
  double gain() const { return cfg_.v_bias / cfg_.c_feedback_farads; }

  /// Fault injection: input bond wire open — the amplifier sees no charge
  /// and its output servos to the baseline (plus noise).
  void inject_open_wire(bool open) { open_wire_ = open; }

  void reset();

  void serialize_state(StateArchive& ar) {
    ar.value(lp_state_);
    ar.value(hp_state_);
    noise_.serialize_state(ar);
    ar.value(open_wire_);
  }

 private:
  ChargeAmpConfig cfg_;
  double lp_alpha_;
  double hp_alpha_;
  double lp_state_ = 0.0;
  double hp_state_ = 0.0;
  NoiseSource noise_;
  bool open_wire_ = false;
};

}  // namespace ascp::afe
