#include "afe/dac.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ascp::afe {

Dac::Dac(const DacConfig& cfg, ascp::Rng rng) : cfg_(cfg) {
  assert(cfg_.bits >= 6 && cfg_.bits <= 16);
  const std::int64_t half = std::int64_t{1} << (cfg_.bits - 1);
  code_min_ = static_cast<std::int32_t>(-half);
  code_max_ = static_cast<std::int32_t>(half - 1);
  lsb_ = cfg_.vref / static_cast<double>(half);
  offset_ = rng.gaussian(0.25 * lsb_);
  gain_ = 1.0 + rng.gaussian(1e-4);
  bow_ = rng.uniform(-0.5, 0.5) * lsb_;
}

void Dac::write_code(std::int32_t code) {
  code = std::clamp(code, code_min_, code_max_);
  // Glitch energy proportional to the number of switching MSBs — largest at
  // the mid-scale transition, standard R-2R/binary-array behaviour.
  const std::uint32_t toggled = static_cast<std::uint32_t>(code ^ code_);
  if (toggled != 0) {
    int msb = 31;
    while (msb > 0 && !(toggled & (1u << msb))) --msb;
    glitch_ += cfg_.glitch_volts * static_cast<double>(msb + 1) / static_cast<double>(cfg_.bits) *
               ((code > code_) ? 1.0 : -1.0);
  }
  code_ = code;
  const double x = static_cast<double>(code_) / static_cast<double>(code_max_);  // −1..1
  target_ = gain_ * static_cast<double>(code_) * lsb_ + offset_ + bow_ * (1.0 - x * x);
}

void Dac::write_volts(double v) {
  write_code(static_cast<std::int32_t>(std::nearbyint(v / lsb_)));
}

double Dac::output(double dt, double temp_c) {
  // One-pole settling toward the latched target, plus a decaying glitch.
  const double alpha = 1.0 - std::exp(-dt / cfg_.settle_tau_s);
  out_ += alpha * (target_ - out_);
  const double g = glitch_;
  glitch_ *= std::exp(-dt / (cfg_.settle_tau_s * 0.25));
  return out_ + g + cfg_.offset_drift * (temp_c - 25.0);
}

}  // namespace ascp::afe
