// dac.hpp — DAC behavioral model.
//
// Paper §4.2: the AFE drives the sensor electrodes "through couples of DACs
// for each loop". The model includes quantization, zero-order hold with
// first-order settling, static mismatch (offset/gain/INL bow), and glitch
// energy at major code transitions — the artefacts that leak into the
// resonator drive and must be tolerated by the loops.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace ascp::afe {

struct DacConfig {
  int bits = 12;              ///< resolution
  double vref = 2.5;          ///< output range ±vref
  double settle_tau_s = 1e-6; ///< output RC settling time constant [s]
  double glitch_volts = 1e-4; ///< glitch impulse amplitude at MSB transitions
  double offset_drift = 2e-6; ///< offset tempco [V/°C]
  double update_rate = 240e3; ///< sample update rate [Hz]
};

/// Behavioral DAC: write codes at the update rate, read the settled analog
/// output at any (higher) simulation rate via output().
class Dac {
 public:
  Dac(const DacConfig& cfg, ascp::Rng rng);

  /// Latch a signed code (clamped to the code range).
  void write_code(std::int32_t code);

  /// Convenience: latch the code nearest to `v` volts.
  void write_volts(double v);

  /// Advance the analog output by dt seconds and return it.
  double output(double dt, double temp_c = 25.0);

  /// Instantaneous settled target (ideal value the output approaches).
  double target() const { return target_; }

  double lsb() const { return lsb_; }
  int bits() const { return cfg_.bits; }

  void serialize_state(StateArchive& ar) {
    ar.value(code_);
    ar.value(target_);
    ar.value(out_);
    ar.value(glitch_);
  }

 private:
  DacConfig cfg_;
  double lsb_;
  std::int32_t code_min_, code_max_;
  double offset_;
  double gain_;
  double bow_;
  std::int32_t code_ = 0;
  double target_ = 0.0;
  double out_ = 0.0;
  double glitch_ = 0.0;
};

}  // namespace ascp::afe
