#include "afe/frontend.hpp"

#include <cmath>

#include "common/math.hpp"

namespace ascp::afe {

AcquisitionChannel::AcquisitionChannel(const FrontendConfig& cfg, ascp::Rng rng)
    : cfg_([&] {
        FrontendConfig c = cfg;
        c.amp.fs = cfg.analog_fs;
        c.adc.fs = cfg.analog_fs / cfg.decimation;
        return c;
      }()),
      amp_(cfg_.amp, rng.fork(21)),
      adc_(cfg_.adc, rng.fork(22)),
      aa_alpha_(1.0 - std::exp(-kTwoPi * cfg.aa_corner_hz / cfg.analog_fs)) {}

std::optional<double> AcquisitionChannel::step(double vin, double temp_c) {
  const double amplified = amp_.step(vin, temp_c);
  aa_state_ += aa_alpha_ * (amplified - aa_state_);
  if (++phase_ < cfg_.decimation) return std::nullopt;
  phase_ = 0;
  return adc_.convert_volts(aa_state_, temp_c);
}

void AcquisitionChannel::reset() {
  amp_.reset();
  aa_state_ = 0.0;
  phase_ = 0;
}

}  // namespace ascp::afe
