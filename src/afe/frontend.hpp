// frontend.hpp — composable analog acquisition channel.
//
// One AFE channel = PGA → anti-aliasing filter → SAR ADC, evaluated at the
// analog simulation rate and sampled down to the DSP rate. This is the
// "essential circuitry" of the paper's analog section (§3: "the analog
// front-end only consists of ADCs, DACs, amplifiers and voltage/current
// sources"); everything else lives in the digital domain. All channel
// parameters are register-programmable (the platform customization knobs).
#pragma once

#include <optional>

#include "afe/adc.hpp"
#include "afe/amplifier.hpp"
#include "common/rng.hpp"

namespace ascp::afe {

struct FrontendConfig {
  AmplifierConfig amp{};
  AdcConfig adc{};
  double analog_fs = 1.92e6;  ///< analog evaluation rate [Hz]
  int decimation = 8;         ///< analog steps per ADC sample (fs_adc = analog_fs/decimation)
  double aa_corner_hz = 60e3; ///< anti-aliasing one-pole corner
};

/// Acquisition channel: feed analog samples at analog_fs; an ADC code (in
/// volts) pops out every `decimation` steps.
class AcquisitionChannel {
 public:
  AcquisitionChannel(const FrontendConfig& cfg, ascp::Rng rng);

  /// One analog step; returns the converted sample when the ADC fires.
  std::optional<double> step(double vin, double temp_c = 25.0);

  Amplifier& amplifier() { return amp_; }
  SarAdc& adc() { return adc_; }
  const FrontendConfig& config() const { return cfg_; }

  /// ADC sample rate [Hz].
  double sample_rate() const { return cfg_.analog_fs / cfg_.decimation; }

  void reset();

  void serialize_state(StateArchive& ar) {
    amp_.serialize_state(ar);
    adc_.serialize_state(ar);
    ar.value(aa_state_);
    std::int32_t p = phase_;
    ar.value(p);
    phase_ = p;
  }

 private:
  FrontendConfig cfg_;
  Amplifier amp_;
  SarAdc adc_;
  double aa_alpha_;
  double aa_state_ = 0.0;
  int phase_ = 0;
};

}  // namespace ascp::afe
