#include "afe/noise.hpp"

#include <cmath>

namespace ascp::afe {

double thermal_noise_scale(double temp_c) {
  const double t_kelvin = temp_c + 273.15;
  return std::sqrt(t_kelvin / 298.15);
}

NoiseSource::NoiseSource(const NoiseSpec& spec, double fs, ascp::Rng rng)
    : spec_(spec),
      // Sampled white noise of density d [units/√Hz] has per-sample sigma
      // d·√(fs/2) (one-sided bandwidth fs/2).
      sigma_white_(spec.white_density * std::sqrt(fs / 2.0)),
      rng_(rng),
      // Flicker RMS chosen so its density crosses the white density at the
      // corner frequency (standard corner definition). The Voss-bank RMS over
      // fs/2 bandwidth ≈ white sigma scaled by √(corner · ln(fs/2) / fs·2)…
      // we use the simpler calibrated form: corner density matching.
      flicker_([&] {
        const double corner = spec.flicker_corner_hz;
        if (corner <= 0.0) return ascp::FlickerNoise(rng_.fork(1), 0.0);
        // Total 1/f power between f_lo and fs/2 with density d²·fc/f:
        // P = d²·fc·ln((fs/2)/f_lo); take f_lo = fs/2^20 (sim-length floor).
        const double f_hi = fs / 2.0;
        const double f_lo = f_hi / 1048576.0;
        const double power =
            spec.white_density * spec.white_density * corner * std::log(f_hi / f_lo);
        return ascp::FlickerNoise(rng_.fork(1), std::sqrt(power), 20);
      }()),
      has_flicker_(spec.flicker_corner_hz > 0.0) {}

double NoiseSource::sample(double temp_c) {
  double n = rng_.gaussian(sigma_white_) * thermal_noise_scale(temp_c);
  if (has_flicker_) n += flicker_.next();
  return n;
}

}  // namespace ascp::afe
