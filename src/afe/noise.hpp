// noise.hpp — analog noise processes.
//
// The platform's analog cells each carry a thermal (white) and a flicker
// (1/f) component; the automotive temperature range (−40..+125 °C) makes the
// thermal component temperature-dependent (∝ √T). NoiseSource packages both
// so every AFE model declares its noise with two numbers: a density and a
// corner frequency — the way an analog datasheet specifies it.
#pragma once

#include "common/rng.hpp"

namespace ascp::afe {

struct NoiseSpec {
  /// White-noise density [units/√Hz] referenced at 25 °C.
  double white_density = 0.0;
  /// 1/f corner frequency [Hz]; 0 disables the flicker component.
  double flicker_corner_hz = 0.0;
};

/// Sampled noise process at a fixed simulation rate.
class NoiseSource {
 public:
  /// `fs` sample rate the process is evaluated at [Hz].
  NoiseSource(const NoiseSpec& spec, double fs, ascp::Rng rng);

  /// One sample of noise at ambient temperature `temp_c`.
  double sample(double temp_c = 25.0);

  const NoiseSpec& spec() const { return spec_; }

  void serialize_state(StateArchive& ar) {
    rng_.serialize_state(ar);
    flicker_.serialize_state(ar);
  }

 private:
  NoiseSpec spec_;
  double sigma_white_;  ///< white sigma at 25 °C for this fs
  ascp::Rng rng_;
  ascp::FlickerNoise flicker_;
  bool has_flicker_;
};

/// Thermal scaling factor √(T/T0) with T in kelvin, T0 = 298.15 K.
double thermal_noise_scale(double temp_c);

}  // namespace ascp::afe
