#include "afe/reference.hpp"

namespace ascp::afe {

VoltageReference::VoltageReference(double nominal_volts, double tempco_ppm, double curvature_ppm,
                                   ascp::Rng rng)
    : nominal_(nominal_volts),
      tempco_(tempco_ppm * 1e-6),
      curvature_(curvature_ppm * 1e-6),
      trim_error_(rng.gaussian(100e-6)),  // ±100 ppm 1σ trim accuracy
      noise_(rng.fork(11), nominal_volts * 2e-6, 16) {}

double VoltageReference::value(double temp_c) {
  const double dt = temp_c - 25.0;
  const double rel = 1.0 + tempco_ * dt + curvature_ * dt * dt / 100.0 + trim_error_;
  return nominal_ * rel + noise_.next();
}

Oscillator::Oscillator(double nominal_hz, double tempco_ppm, double jitter_ppm, ascp::Rng rng)
    : nominal_(nominal_hz), tempco_(tempco_ppm * 1e-6), jitter_(jitter_ppm * 1e-6), rng_(rng) {}

double Oscillator::frequency(double temp_c) {
  const double dt = temp_c - 25.0;
  return nominal_ * (1.0 + tempco_ * dt + rng_.gaussian(jitter_));
}

TempSensor::TempSensor(double gain_error_pct, double offset_c, ascp::Rng rng)
    : gain_(1.0 + rng.gaussian(gain_error_pct / 100.0)), offset_(rng.gaussian(offset_c)), rng_(rng) {}

double TempSensor::read(double true_temp_c) {
  // PTAT slope error is relative to absolute zero, not 0 °C.
  const double kelvin = true_temp_c + 273.15;
  return gain_ * kelvin - 273.15 + offset_ + rng_.gaussian(0.05);
}

}  // namespace ascp::afe
