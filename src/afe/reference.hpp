// reference.hpp — voltage reference and system oscillator models.
//
// Paper §4.2: the AFE "provides stable power supply and clock to the digital
// section". Reference drift directly becomes null/sensitivity drift of the
// whole chain, and clock drift detunes every digital frequency — both are
// first-order contributors to the over-temperature rows of Table 1, so they
// are modelled explicitly.
#pragma once

#include "common/rng.hpp"

namespace ascp::afe {

/// Bandgap-style voltage reference: nominal value, curvature-type tempco,
/// and low-frequency noise.
class VoltageReference {
 public:
  /// `tempco_ppm` linear drift [ppm/°C], `curvature_ppm` quadratic bowing
  /// over the automotive range.
  VoltageReference(double nominal_volts, double tempco_ppm, double curvature_ppm, ascp::Rng rng);

  /// Value at ambient temp_c (deterministic part + slow noise sample).
  double value(double temp_c);

  double nominal() const { return nominal_; }

 private:
  double nominal_;
  double tempco_;
  double curvature_;
  double trim_error_;  ///< one-time trim inaccuracy draw
  ascp::FlickerNoise noise_;
};

/// System oscillator: nominal frequency with tempco and period jitter.
class Oscillator {
 public:
  Oscillator(double nominal_hz, double tempco_ppm, double jitter_ppm, ascp::Rng rng);

  /// Effective frequency at temp_c including one jitter draw.
  double frequency(double temp_c);

  double nominal() const { return nominal_; }

 private:
  double nominal_;
  double tempco_;
  double jitter_;
  ascp::Rng rng_;
};

/// On-chip temperature sensor: proportional-to-absolute-temperature output
/// with gain/offset error — the input of the compensation block, which
/// therefore sees a slightly wrong temperature (a real effect the paper's
/// calibration had to absorb).
class TempSensor {
 public:
  TempSensor(double gain_error_pct, double offset_c, ascp::Rng rng);

  /// Measured temperature given true ambient.
  double read(double true_temp_c);

  void serialize_state(StateArchive& ar) { rng_.serialize_state(ar); }

 private:
  double gain_;
  double offset_;
  ascp::Rng rng_;
};

}  // namespace ascp::afe
