#include "analysis/cfg.hpp"

#include <cstdio>
#include <deque>

namespace ascp::analysis {
namespace {

std::string hex16(std::uint16_t v) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%04X", v);
  return buf;
}

}  // namespace

Cfg build_cfg(const FirmwareImage& fw, Report* rep) {
  Cfg cfg;
  cfg.base = fw.base;
  cfg.entry = fw.entry;
  cfg.size = fw.image.size();

  const auto at = [&fw](std::uint16_t addr) { return fw.name + ":" + hex16(addr); };
  const auto report = [rep](Severity sev, std::string loc, std::string msg) {
    if (rep) rep->add(sev, "firmware", std::move(loc), std::move(msg));
  };

  if (!cfg.in_image(fw.entry)) {
    report(Severity::Error, fw.name,
           "entry point " + hex16(fw.entry) + " lies outside the image");
    return cfg;
  }
  cfg.entry_ok = true;

  std::deque<std::uint16_t> work{fw.entry};
  while (!work.empty()) {
    const std::uint16_t addr = work.front();
    work.pop_front();
    if (cfg.insns.contains(addr)) continue;
    const Insn in = decode(fw.image.data(), fw.image.size(), fw.base, addr);
    cfg.insns.emplace(addr, in);
    if (in.truncated) {
      report(Severity::Error, at(addr),
             "instruction " + in.text() + " runs past the end of the image");
      continue;
    }
    const auto next = static_cast<std::uint16_t>(addr + in.length);
    const auto follow = [&](std::uint16_t t) {
      if (cfg.in_image(t)) {
        cfg.succ[addr].push_back(t);
        work.push_back(t);
      } else if (cfg.external_exits.insert(t).second) {
        report(Severity::Info, at(addr),
               "control transfers outside the image to " + hex16(t) +
                   " (external code)");
      }
    };
    const auto fallthrough = [&] {
      if (!cfg.in_image(next)) {
        report(Severity::Error, at(addr),
               "execution can fall off the end of the image after " + in.text());
      } else {
        cfg.succ[addr].push_back(next);
        work.push_back(next);
      }
    };
    switch (in.flow) {
      case Flow::Seq: fallthrough(); break;
      case Flow::Jump: follow(in.target); break;
      case Flow::CondJump:
        follow(in.target);
        fallthrough();
        break;
      case Flow::Call:
        cfg.call_sites[addr] = in.target;
        if (cfg.in_image(in.target)) {
          cfg.routine_entries.insert(in.target);
          work.push_back(in.target);
        } else if (cfg.external_exits.insert(in.target).second) {
          report(Severity::Info, at(addr),
                 "call to code outside the image at " + hex16(in.target));
        }
        fallthrough();
        break;
      case Flow::Ret:
      case Flow::Reti:
        break;
      case Flow::IndirectJump:
        cfg.indirect_jumps.insert(addr);
        report(Severity::Warning, at(addr),
               "computed jump (JMP @A+DPTR) — control flow not statically resolved");
        break;
    }
  }
  return cfg;
}

std::vector<std::set<std::uint16_t>> strongly_connected(
    const std::set<std::uint16_t>& nodes,
    const std::map<std::uint16_t, std::vector<std::uint16_t>>& succ) {
  std::vector<std::set<std::uint16_t>> sccs;
  std::map<std::uint16_t, int> index, low;
  std::set<std::uint16_t> on_stack;
  std::vector<std::uint16_t> stack;
  int counter = 0;

  struct Frame {
    std::uint16_t node;
    std::size_t child = 0;
  };
  for (const std::uint16_t root : nodes) {
    if (index.contains(root)) continue;
    std::vector<Frame> frames{{root}};
    index[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack.insert(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto s = succ.find(f.node);
      const std::size_t nsucc = s == succ.end() ? 0 : s->second.size();
      if (f.child < nsucc) {
        const std::uint16_t w = s->second[f.child++];
        if (!nodes.contains(w)) continue;
        if (!index.contains(w)) {
          index[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack.insert(w);
          frames.push_back({w});
        } else if (on_stack.contains(w)) {
          low[f.node] = std::min(low[f.node], index[w]);
        }
      } else {
        if (low[f.node] == index[f.node]) {
          std::set<std::uint16_t> scc;
          std::uint16_t w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            scc.insert(w);
          } while (w != f.node);
          sccs.push_back(std::move(scc));
        }
        const std::uint16_t done = f.node;
        frames.pop_back();
        if (!frames.empty())
          low[frames.back().node] = std::min(low[frames.back().node], low[done]);
      }
    }
  }
  return sccs;
}

std::map<std::uint16_t, std::uint16_t> resolve_movx_stores(const Cfg& cfg) {
  // Basic-block leaders: branch targets plus the instruction after any
  // non-sequential flow (the state also resets after calls, because the
  // callee may clobber DPTR — the leader after a Call handles that).
  std::set<std::uint16_t> leaders{cfg.entry};
  for (const auto& [addr, in] : cfg.insns) {
    if (in.flow == Flow::Jump || in.flow == Flow::CondJump || in.flow == Flow::Call)
      if (cfg.in_image(in.target)) leaders.insert(in.target);
    if (in.flow != Flow::Seq)
      leaders.insert(static_cast<std::uint16_t>(addr + in.length));
  }

  std::map<std::uint16_t, std::uint16_t> stores;
  int dpl = -1, dph = -1;  // tracked DPTR halves, -1 = unknown
  std::uint16_t prev_end = 0;
  bool first = true;
  for (const auto& [addr, in] : cfg.insns) {
    if (first || addr != prev_end || leaders.contains(addr)) dpl = dph = -1;
    first = false;
    prev_end = static_cast<std::uint16_t>(addr + in.length);

    if (in.opcode() == 0xF0 && dpl >= 0 && dph >= 0)  // MOVX @DPTR,A
      stores[addr] = static_cast<std::uint16_t>(dph << 8 | dpl);

    switch (in.opcode()) {
      case 0x90:  // MOV DPTR,#imm16
        dph = in.bytes[1];
        dpl = in.bytes[2];
        break;
      case 0xA3:  // INC DPTR
        if (dpl >= 0 && dph >= 0) {
          const auto v = static_cast<std::uint16_t>((dph << 8 | dpl) + 1);
          dpl = v & 0xFF;
          dph = v >> 8;
        }
        break;
      case 0x75:  // MOV dir,#imm
        if (in.bytes[1] == 0x82) dpl = in.bytes[2];
        if (in.bytes[1] == 0x83) dph = in.bytes[2];
        break;
      default: {
        // Any other write to DPL/DPH makes the half unknown. The opcodes
        // that can write a direct address with the operand in bytes[1]:
        const std::uint8_t op = in.opcode();
        const bool dir_write =
            op == 0x05 || op == 0x15 || op == 0x42 || op == 0x43 || op == 0x52 ||
            op == 0x53 || op == 0x62 || op == 0x63 || op == 0xC5 || op == 0xD0 ||
            op == 0xD5 || op == 0xF5 || op == 0x86 || op == 0x87 ||
            (op & 0xF8) == 0x88;
        if (dir_write) {
          if (in.bytes[1] == 0x82) dpl = -1;
          if (in.bytes[1] == 0x83) dph = -1;
        }
        if (op == 0x85) {  // MOV dst,src — dst encoded second
          if (in.bytes[2] == 0x82) dpl = -1;
          if (in.bytes[2] == 0x83) dph = -1;
        }
        break;
      }
    }
  }
  return stores;
}

}  // namespace ascp::analysis
