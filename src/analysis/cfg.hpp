// cfg.hpp — shared control-flow-graph construction over firmware images.
//
// Both static passes that walk assembled 8051 code — the firmware analyzer
// (firmware_lint: stack bounds, store legality, watchdog liveness) and the
// timing analyzer (timing_lint: WCET, schedulability) — need the same
// reachable-instruction discovery: decode from the entry point, follow
// resolved branch/call targets, record call sites and external exits. This
// module is that single CFG builder, plus the graph utilities layered on it
// (Tarjan SCCs over arbitrary node subsets, block-local DPTR constant
// propagation for MOVX destinations).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "analysis/disasm.hpp"
#include "analysis/findings.hpp"
#include "analysis/firmware_lint.hpp"

namespace ascp::analysis {

/// Reachable-instruction CFG of one firmware image. Successor edges exist
/// only between in-image instructions; a CALL contributes its fall-through
/// edge here and its callee in `call_sites` (the call graph is composed
/// interprocedurally by the analyses, mirroring the hardware's stack).
struct Cfg {
  std::map<std::uint16_t, Insn> insns;                       ///< reachable, by address
  std::map<std::uint16_t, std::vector<std::uint16_t>> succ;  ///< intra-routine edges
  std::map<std::uint16_t, std::uint16_t> call_sites;         ///< call addr -> callee
  std::set<std::uint16_t> routine_entries;                   ///< in-image call targets
  std::set<std::uint16_t> external_exits;                    ///< out-of-image targets
  std::set<std::uint16_t> indirect_jumps;                    ///< JMP @A+DPTR sites
  std::uint16_t base = 0;
  std::uint16_t entry = 0;
  std::size_t size = 0;
  bool entry_ok = false;  ///< entry point lies inside the image

  bool in_image(std::uint16_t addr) const {
    return addr >= base && static_cast<std::size_t>(addr - base) < size;
  }
};

/// Build the CFG for `fw`. When `rep` is non-null, discovery diagnostics
/// (truncated instructions, fall-off-the-end, computed jumps, external
/// transfers) are reported into it with firmware_lint's wording; passing
/// null builds the same graph silently (for a second pass over an image the
/// firmware analyzer already diagnosed).
Cfg build_cfg(const FirmwareImage& fw, Report* rep);

/// Tarjan's algorithm (iterative) over the subgraph induced by `nodes`:
/// edges of `succ` whose endpoints both lie in `nodes`. Returns every SCC,
/// including trivial single-node ones (callers decide whether a singleton
/// with a self-edge is a loop).
std::vector<std::set<std::uint16_t>> strongly_connected(
    const std::set<std::uint16_t>& nodes,
    const std::map<std::uint16_t, std::vector<std::uint16_t>>& succ);

/// Statically resolved MOVX @DPTR stores: block-local DPTR constant
/// propagation (MOV DPTR,#imm16 / MOV DPL|DPH,#imm / INC DPTR survive
/// straight-line fall-through; state resets at branch targets and after
/// calls). Returns store address -> resolved XDATA destination.
std::map<std::uint16_t, std::uint16_t> resolve_movx_stores(const Cfg& cfg);

}  // namespace ascp::analysis
