#include "analysis/disasm.hpp"

#include <cstdio>

namespace ascp::analysis {
namespace {

// Instruction length per opcode (standard MCS-51 map; 0xA5 is reserved and
// treated as a 1-byte NOP-alike so decoding can continue past it).
constexpr std::uint8_t kLength[256] = {
    // 0    1  2  3  4  5  6  7  8  9  A  B  C  D  E  F
    /*0x*/ 1, 2, 3, 1, 1, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    /*1x*/ 3, 2, 3, 1, 1, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    /*2x*/ 3, 2, 1, 1, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    /*3x*/ 3, 2, 1, 1, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    /*4x*/ 2, 2, 2, 3, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    /*5x*/ 2, 2, 2, 3, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    /*6x*/ 2, 2, 2, 3, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    /*7x*/ 2, 2, 2, 1, 2, 3, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2,
    /*8x*/ 2, 2, 2, 1, 1, 3, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2,
    /*9x*/ 3, 2, 2, 1, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    /*Ax*/ 2, 2, 2, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2,
    /*Bx*/ 2, 2, 2, 1, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3,
    /*Cx*/ 2, 2, 2, 1, 1, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    /*Dx*/ 2, 2, 2, 1, 1, 3, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2,
    /*Ex*/ 1, 2, 1, 1, 1, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    /*Fx*/ 1, 2, 1, 1, 1, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
};

std::string hex8(std::uint8_t v) {
  char buf[6];
  std::snprintf(buf, sizeof(buf), "%02Xh", v);
  return buf;
}

std::string hex16(std::uint16_t v) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%04X", v);
  return buf;
}

std::string bit_operand(std::uint8_t bit) {
  // Bit space: 0x00-0x7F index IRAM 0x20-0x2F; 0x80-0xFF index the
  // bit-addressable SFRs (bit addr & 0xF8 is the SFR).
  const std::uint8_t base = bit < 0x80 ? static_cast<std::uint8_t>(0x20 + bit / 8)
                                       : static_cast<std::uint8_t>(bit & 0xF8);
  return hex8(base) + "." + std::to_string(bit & 7);
}

}  // namespace

Insn decode(const std::uint8_t* code, std::size_t size, std::uint16_t load_base,
            std::uint16_t addr) {
  Insn in;
  in.addr = addr;
  const std::size_t off = static_cast<std::size_t>(addr - load_base);
  in.bytes[0] = code[off];
  in.length = kLength[in.bytes[0]];
  for (int i = 1; i < in.length; ++i) {
    if (off + i >= size) {
      in.truncated = true;
      break;
    }
    in.bytes[i] = code[off + i];
  }

  const std::uint8_t op = in.bytes[0];
  const auto next = static_cast<std::uint16_t>(addr + in.length);
  const auto rel_target = [&] {
    return static_cast<std::uint16_t>(next + static_cast<std::int8_t>(in.bytes[in.length - 1]));
  };

  if ((op & 0x1F) == 0x01) {  // AJMP: target in current 2 KB page
    in.flow = Flow::Jump;
    in.target = static_cast<std::uint16_t>((next & 0xF800) | ((op >> 5) << 8) | in.bytes[1]);
  } else if ((op & 0x1F) == 0x11) {  // ACALL
    in.flow = Flow::Call;
    in.target = static_cast<std::uint16_t>((next & 0xF800) | ((op >> 5) << 8) | in.bytes[1]);
  } else {
    switch (op) {
      case 0x02:  // LJMP
        in.flow = Flow::Jump;
        in.target = static_cast<std::uint16_t>(in.bytes[1] << 8 | in.bytes[2]);
        break;
      case 0x12:  // LCALL
        in.flow = Flow::Call;
        in.target = static_cast<std::uint16_t>(in.bytes[1] << 8 | in.bytes[2]);
        break;
      case 0x80:  // SJMP
        in.flow = Flow::Jump;
        in.target = rel_target();
        break;
      case 0x22: in.flow = Flow::Ret; break;
      case 0x32: in.flow = Flow::Reti; break;
      case 0x73: in.flow = Flow::IndirectJump; break;
      case 0x10: case 0x20: case 0x30:  // JBC/JB/JNB bit,rel
      case 0x40: case 0x50:             // JC/JNC rel
      case 0x60: case 0x70:             // JZ/JNZ rel
      case 0xB4: case 0xB5: case 0xB6: case 0xB7:  // CJNE …,rel
      case 0xB8: case 0xB9: case 0xBA: case 0xBB:
      case 0xBC: case 0xBD: case 0xBE: case 0xBF:
      case 0xD5:                                   // DJNZ dir,rel
      case 0xD8: case 0xD9: case 0xDA: case 0xDB:  // DJNZ Rn,rel
      case 0xDC: case 0xDD: case 0xDE: case 0xDF:
        in.flow = Flow::CondJump;
        in.target = rel_target();
        break;
      default: break;
    }
  }
  return in;
}

std::string Insn::text() const {
  const std::uint8_t op = bytes[0];
  const std::uint8_t b1 = bytes[1], b2 = bytes[2];
  const std::string rn = "R" + std::to_string(op & 7);
  const std::string ri = "@R" + std::to_string(op & 1);
  const std::string tgt = hex16(target);

  if ((op & 0x1F) == 0x01) return "AJMP " + tgt;
  if ((op & 0x1F) == 0x11) return "ACALL " + tgt;

  switch (op & 0xF8) {
    case 0x08: return "INC " + rn;
    case 0x18: return "DEC " + rn;
    case 0x28: return "ADD A," + rn;
    case 0x38: return "ADDC A," + rn;
    case 0x48: return "ORL A," + rn;
    case 0x58: return "ANL A," + rn;
    case 0x68: return "XRL A," + rn;
    case 0x78: return "MOV " + rn + ",#" + hex8(b1);
    case 0x88: return "MOV " + hex8(b1) + "," + rn;
    case 0x98: return "SUBB A," + rn;
    case 0xA8: return "MOV " + rn + "," + hex8(b1);
    case 0xB8: return "CJNE " + rn + ",#" + hex8(b1) + "," + tgt;
    case 0xC8: return "XCH A," + rn;
    case 0xD8: return "DJNZ " + rn + "," + tgt;
    case 0xE8: return "MOV A," + rn;
    case 0xF8: return "MOV " + rn + ",A";
    default: break;
  }

  switch (op) {
    case 0x00: return "NOP";
    case 0x02: return "LJMP " + tgt;
    case 0x03: return "RR A";
    case 0x04: return "INC A";
    case 0x05: return "INC " + hex8(b1);
    case 0x06: case 0x07: return "INC " + ri;
    case 0x10: return "JBC " + bit_operand(b1) + "," + tgt;
    case 0x12: return "LCALL " + tgt;
    case 0x13: return "RRC A";
    case 0x14: return "DEC A";
    case 0x15: return "DEC " + hex8(b1);
    case 0x16: case 0x17: return "DEC " + ri;
    case 0x20: return "JB " + bit_operand(b1) + "," + tgt;
    case 0x22: return "RET";
    case 0x23: return "RL A";
    case 0x24: return "ADD A,#" + hex8(b1);
    case 0x25: return "ADD A," + hex8(b1);
    case 0x26: case 0x27: return "ADD A," + ri;
    case 0x30: return "JNB " + bit_operand(b1) + "," + tgt;
    case 0x32: return "RETI";
    case 0x33: return "RLC A";
    case 0x34: return "ADDC A,#" + hex8(b1);
    case 0x35: return "ADDC A," + hex8(b1);
    case 0x36: case 0x37: return "ADDC A," + ri;
    case 0x40: return "JC " + tgt;
    case 0x42: return "ORL " + hex8(b1) + ",A";
    case 0x43: return "ORL " + hex8(b1) + ",#" + hex8(b2);
    case 0x44: return "ORL A,#" + hex8(b1);
    case 0x45: return "ORL A," + hex8(b1);
    case 0x46: case 0x47: return "ORL A," + ri;
    case 0x50: return "JNC " + tgt;
    case 0x52: return "ANL " + hex8(b1) + ",A";
    case 0x53: return "ANL " + hex8(b1) + ",#" + hex8(b2);
    case 0x54: return "ANL A,#" + hex8(b1);
    case 0x55: return "ANL A," + hex8(b1);
    case 0x56: case 0x57: return "ANL A," + ri;
    case 0x60: return "JZ " + tgt;
    case 0x62: return "XRL " + hex8(b1) + ",A";
    case 0x63: return "XRL " + hex8(b1) + ",#" + hex8(b2);
    case 0x64: return "XRL A,#" + hex8(b1);
    case 0x65: return "XRL A," + hex8(b1);
    case 0x66: case 0x67: return "XRL A," + ri;
    case 0x70: return "JNZ " + tgt;
    case 0x72: return "ORL C," + bit_operand(b1);
    case 0x73: return "JMP @A+DPTR";
    case 0x74: return "MOV A,#" + hex8(b1);
    case 0x75: return "MOV " + hex8(b1) + ",#" + hex8(b2);
    case 0x76: case 0x77: return "MOV " + ri + ",#" + hex8(b1);
    case 0x80: return "SJMP " + tgt;
    case 0x82: return "ANL C," + bit_operand(b1);
    case 0x83: return "MOVC A,@A+PC";
    case 0x84: return "DIV AB";
    case 0x85: return "MOV " + hex8(b2) + "," + hex8(b1);  // src encoded first
    case 0x86: case 0x87: return "MOV " + hex8(b1) + "," + ri;
    case 0x90: return "MOV DPTR,#" + hex16(static_cast<std::uint16_t>(b1 << 8 | b2));
    case 0x92: return "MOV " + bit_operand(b1) + ",C";
    case 0x93: return "MOVC A,@A+DPTR";
    case 0x94: return "SUBB A,#" + hex8(b1);
    case 0x95: return "SUBB A," + hex8(b1);
    case 0x96: case 0x97: return "SUBB A," + ri;
    case 0xA0: return "ORL C,/" + bit_operand(b1);
    case 0xA2: return "MOV C," + bit_operand(b1);
    case 0xA3: return "INC DPTR";
    case 0xA4: return "MUL AB";
    case 0xA5: return "DB 0A5h";  // reserved opcode
    case 0xA6: case 0xA7: return "MOV " + ri + "," + hex8(b1);
    case 0xB0: return "ANL C,/" + bit_operand(b1);
    case 0xB2: return "CPL " + bit_operand(b1);
    case 0xB3: return "CPL C";
    case 0xB4: return "CJNE A,#" + hex8(b1) + "," + tgt;
    case 0xB5: return "CJNE A," + hex8(b1) + "," + tgt;
    case 0xB6: case 0xB7: return "CJNE " + ri + ",#" + hex8(b1) + "," + tgt;
    case 0xC0: return "PUSH " + hex8(b1);
    case 0xC2: return "CLR " + bit_operand(b1);
    case 0xC3: return "CLR C";
    case 0xC4: return "SWAP A";
    case 0xC5: return "XCH A," + hex8(b1);
    case 0xC6: case 0xC7: return "XCH A," + ri;
    case 0xD0: return "POP " + hex8(b1);
    case 0xD2: return "SETB " + bit_operand(b1);
    case 0xD3: return "SETB C";
    case 0xD4: return "DA A";
    case 0xD5: return "DJNZ " + hex8(b1) + "," + tgt;
    case 0xD6: case 0xD7: return "XCHD A," + ri;
    case 0xE0: return "MOVX A,@DPTR";
    case 0xE2: case 0xE3: return "MOVX A," + ri;
    case 0xE4: return "CLR A";
    case 0xE5: return "MOV A," + hex8(b1);
    case 0xE6: case 0xE7: return "MOV A," + ri;
    case 0xF0: return "MOVX @DPTR,A";
    case 0xF2: case 0xF3: return "MOVX " + ri + ",A";
    case 0xF4: return "CPL A";
    case 0xF5: return "MOV " + hex8(b1) + ",A";
    case 0xF6: case 0xF7: return "MOV " + ri + ",A";
    default: return "DB " + hex8(op);
  }
}

}  // namespace ascp::analysis
