// disasm.hpp — table-driven MCS-51 instruction decoder.
//
// The firmware analyzer (firmware_lint) needs to walk assembled images the
// way the silicon would: instruction lengths to find boundaries, control-flow
// kind and resolved targets to build the CFG, and raw operand bytes for the
// constant propagation that resolves MOVX/SFR destinations. This decoder
// covers the full 256-entry MCS-51 opcode map (one reserved slot, 0xA5), so
// it is not limited to what the repo's assembler happens to emit — firmware
// may arrive from the SPI EEPROM or the UART download path too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ascp::analysis {

/// Control-flow effect of one instruction.
enum class Flow {
  Seq,           ///< falls through only
  Jump,          ///< unconditional, resolved target (LJMP/AJMP/SJMP)
  CondJump,      ///< resolved target + fall-through
  Call,          ///< resolved target + fall-through (returns)
  Ret,           ///< RET
  Reti,          ///< RETI
  IndirectJump,  ///< JMP @A+DPTR — target not statically resolved
};

struct Insn {
  std::uint16_t addr = 0;
  std::uint8_t bytes[3] = {0, 0, 0};  ///< opcode + operand bytes
  int length = 1;                     ///< 1..3
  Flow flow = Flow::Seq;
  std::uint16_t target = 0;  ///< valid for Jump/CondJump/Call
  bool truncated = false;    ///< instruction runs past the end of the image

  std::uint8_t opcode() const { return bytes[0]; }
  /// Human-readable form, e.g. "MOV DPTR,#0x4002" or "JNB 98h.1,0x0012".
  std::string text() const;
};

/// Decode the instruction at `addr` (an offset into `code`, which holds
/// `size` bytes loaded at address `load_base`). Branch targets are returned
/// as absolute code addresses. `addr` is the absolute address too.
Insn decode(const std::uint8_t* code, std::size_t size, std::uint16_t load_base,
            std::uint16_t addr);

}  // namespace ascp::analysis
