#include "analysis/findings.hpp"

namespace ascp::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string Finding::format() const {
  return std::string(severity_name(severity)) + " [" + analyzer + "] " + location + ": " +
         message;
}

void Report::add(Severity sev, std::string analyzer, std::string location, std::string message) {
  if (sev == Severity::Error) ++errors_;
  if (sev == Severity::Warning) ++warnings_;
  findings_.push_back(
      Finding{sev, std::move(analyzer), std::move(location), std::move(message)});
}

void Report::merge(const Report& other) {
  for (const Finding& f : other.findings_) findings_.push_back(f);
  errors_ += other.errors_;
  warnings_ += other.warnings_;
}

bool Report::mentions(const std::string& needle) const {
  for (const Finding& f : findings_)
    if (f.message.find(needle) != std::string::npos ||
        f.location.find(needle) != std::string::npos)
      return true;
  return false;
}

std::string Report::format() const {
  std::string out;
  for (const Finding& f : findings_) {
    out += f.format();
    out += '\n';
  }
  out += std::to_string(errors_) + " error(s), " + std::to_string(warnings_) + " warning(s)\n";
  return out;
}

}  // namespace ascp::analysis
