#include "analysis/findings.hpp"

#include <cstdio>

namespace ascp::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string Finding::format() const {
  return std::string(severity_name(severity)) + " [" + analyzer + "] " + location + ": " +
         message;
}

void Report::add(Severity sev, std::string analyzer, std::string location, std::string message) {
  if (sev == Severity::Error) ++errors_;
  if (sev == Severity::Warning) ++warnings_;
  findings_.push_back(
      Finding{sev, std::move(analyzer), std::move(location), std::move(message)});
}

void Report::merge(const Report& other) {
  for (const Finding& f : other.findings_) findings_.push_back(f);
  errors_ += other.errors_;
  warnings_ += other.warnings_;
}

bool Report::mentions(const std::string& needle) const {
  for (const Finding& f : findings_)
    if (f.message.find(needle) != std::string::npos ||
        f.location.find(needle) != std::string::npos)
      return true;
  return false;
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string to_json(const Report& rep) {
  std::string out = "{\n  \"errors\": " + std::to_string(rep.errors()) +
                    ",\n  \"warnings\": " + std::to_string(rep.warnings()) +
                    ",\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : rep.findings()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += std::string("    {\"severity\": \"") + severity_name(f.severity) +
           "\", \"analyzer\": \"" + json_escape(f.analyzer) +
           "\", \"location\": \"" + json_escape(f.location) +
           "\", \"message\": \"" + json_escape(f.message) + "\"}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string Report::format() const {
  std::string out;
  for (const Finding& f : findings_) {
    out += f.format();
    out += '\n';
  }
  out += std::to_string(errors_) + " error(s), " + std::to_string(warnings_) + " warning(s)\n";
  return out;
}

}  // namespace ascp::analysis
