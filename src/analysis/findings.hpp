// findings.hpp — common result vocabulary of the static verification suite.
//
// Every analyzer in src/analysis (register-map checker, 8051 firmware
// analyzer, fixed-point range analyzer) reports through the same structured
// Finding so the CLI driver (tools/platform_lint), CI and the tier-1 tests
// can consume one format. A Finding pins the object being checked
// (block/image/stage), a severity, and an actionable message; a Report is an
// ordered collection with the error/warning bookkeeping the drivers need.
#pragma once

#include <string>
#include <vector>

namespace ascp::analysis {

enum class Severity {
  Info,     ///< proof artifacts and bounds worth surfacing (never fails CI)
  Warning,  ///< suspicious but possibly intentional (dead bytes, kick-free loop)
  Error,    ///< a property violation — platform_lint exits non-zero
};

const char* severity_name(Severity s);

struct Finding {
  Severity severity = Severity::Error;
  std::string analyzer;  ///< "regmap" / "firmware" / "range"
  std::string location;  ///< block/register, image name + address, chain stage
  std::string message;   ///< what is wrong and where, actionable

  /// "error [regmap] diag: ..." one-line rendering.
  std::string format() const;
};

class Report {
 public:
  void add(Severity sev, std::string analyzer, std::string location, std::string message);
  void merge(const Report& other);

  const std::vector<Finding>& findings() const { return findings_; }
  int errors() const { return errors_; }
  int warnings() const { return warnings_; }
  bool clean() const { return errors_ == 0; }

  /// True when any finding's message contains `needle` (test convenience).
  bool mentions(const std::string& needle) const;

  /// Multi-line rendering of every finding plus a summary line.
  std::string format() const;

 private:
  std::vector<Finding> findings_;
  int errors_ = 0;
  int warnings_ = 0;
};

/// Machine-readable rendering for `platform_lint --json`: an object with a
/// summary and one entry per finding, stable key order, no dependencies.
std::string to_json(const Report& rep);

}  // namespace ascp::analysis
