#include "analysis/firmware_corpus.hpp"

#include "core/gyro_system.hpp"
#include "mcu/bootrom.hpp"
#include "mcu/monitor_rom.hpp"
#include "safety/supervisor.hpp"

namespace ascp::analysis::corpus {

std::string diag_monitor_source() {
  return R"(
        ORG 0
start:  MOV SP,#40h
        MOV SCON,#50h        ; UART mode 1
        MOV TMOD,#20h
        MOV TH1,#0FFh        ; fastest baud
        SETB TR1
        MOV R6,#0            ; last reported DTC low byte
        MOV R7,#0            ; last reported DTC high byte
        MOV R5,#0FFh         ; last reported state (invalid: force 1st frame)

poll:   MOV DPTR,#WDKICK     ; feed the watchdog: magic 5A5Ah
        MOV A,#5Ah
        MOVX @DPTR,A
        INC DPTR
        MOVX @DPTR,A
        MOV DPTR,#DTCLO      ; low-byte read latches the 16-bit DTC word
        MOVX A,@DPTR
        MOV R2,A
        INC DPTR
        MOVX A,@DPTR         ; latched high byte
        MOV R3,A
        MOV DPTR,#STATE
        MOVX A,@DPTR
        MOV R4,A
        MOV A,R2             ; anything new since the last frame?
        XRL A,R6
        JNZ report
        MOV A,R3
        XRL A,R7
        JNZ report
        MOV A,R4
        XRL A,R5
        JNZ report
        SJMP poll

report: MOV A,R2
        MOV R6,A
        MOV A,R3
        MOV R7,A
        MOV A,R4
        MOV R5,A
        MOV A,#'D'           ; frame: 'D' dtc_hi dtc_lo state
        LCALL tx
        MOV A,R7
        LCALL tx
        MOV A,R6
        LCALL tx
        MOV A,R5
        LCALL tx
        SJMP poll

tx:     MOV SBUF,A
txw:    JNB TI,txw           ;@loop-wait
        CLR TI
        RET
)";
}

std::string telemetry_monitor_source() {
  return R"(
        ORG 0
start:  MOV SP,#40h
        MOV SCON,#50h        ; UART mode 1
        MOV TMOD,#20h
        MOV TH1,#0FFh        ; fastest baud
        SETB TR1

waitlk: MOV DPTR,#WDKICKLO   ; keep the dog fed while waiting for lock
        MOV A,#5Ah
        MOVX @DPTR,A
        INC DPTR
        MOVX @DPTR,A
        MOV DPTR,#LOCKREG
        MOVX A,@DPTR
        ANL A,#3             ; bit0 PLL, bit1 AGC
        CJNE A,#3,waitlk     ;@loop-wait ; lock is plant-paced, not CPU work
        MOV A,#'L'
        LCALL tx

loop:   MOV DPTR,#RATELO     ; low-byte read latches the word coherently
        MOVX A,@DPTR
        MOV R2,A
        INC DPTR
        MOVX A,@DPTR         ; latched high byte
        LCALL tx             ; stream big-endian
        MOV A,R2
        LCALL tx
        MOV DPTR,#WDKICKLO   ; feed the watchdog: magic 5A5Ah
        MOV A,#5Ah
        MOVX @DPTR,A
        INC DPTR
        MOVX @DPTR,A
        MOV R3,#60           ; pace the stream
d1:     MOV R4,#250
d2:     DJNZ R4,d2
        DJNZ R3,d1
        SJMP loop

tx:     MOV SBUF,A
txw:    JNB TI,txw           ;@loop-wait
        CLR TI
        RET
)";
}

std::string watchdog_kicker_source() {
  return R"(
loop:   MOV DPTR,#WDKICK
        MOV A,#5Ah
        MOVX @DPTR,A
        INC DPTR
        MOVX @DPTR,A
        SJMP loop
)";
}

std::string greeting_app_source() {
  return R"(
        ORG 8000h
        MOV SCON,#50h
        MOV TMOD,#20h
        MOV TH1,#0FFh
        SETB TR1
        MOV A,#'H'
        LCALL tx
        MOV A,#'I'
        LCALL tx
        done: SJMP done
tx:     MOV SBUF,A
txw:    JNB TI,txw           ;@loop-wait
        CLR TI
        RET
)";
}

std::string rs485_node_source() {
  return R"(
        MOV SCON,#0F0h       ; mode 3, SM2, REN
        MOV TMOD,#20h
        MOV TH1,#0FFh
        SETB TR1
wait:   JNB RI,wait          ;@loop-wait
        MOV A,SBUF
        CLR RI
        CJNE A,#MYADDR,wait
        CLR SCON.5           ; selected: accept data frames
cmd:    JNB RI,cmd           ;@loop-wait
        MOV A,SBUF
        CLR RI
        SETB SCON.5          ; single-command protocol: re-arm immediately
        CJNE A,#'Q',wait     ; only 'Q'uery is implemented
        MOV DPTR,#RATELO
        MOVX A,@DPTR         ; low byte (latches the word)
        MOV R2,A
        INC DPTR
        MOVX A,@DPTR         ; coherent high byte
        CLR SCON.3           ; replies carry TB8 = 0
        MOV SBUF,A
t1:     JNB TI,t1            ;@loop-wait
        CLR TI
        MOV A,R2
        MOV SBUF,A
t2:     JNB TI,t2            ;@loop-wait
        CLR TI
        SJMP wait
)";
}

mcu::AsmResult assemble_diag_monitor(const platform::BridgeMap& map) {
  mcu::Assembler as;
  as.define("DTCLO", static_cast<std::uint16_t>(
                         map.regfile +
                         2 * (core::reg::kDiag + safety::diag::kDtcReg)));
  as.define("STATE", static_cast<std::uint16_t>(
                         map.regfile +
                         2 * (core::reg::kDiag + safety::diag::kState)));
  as.define("WDKICK", map.watchdog);
  return as.assemble(diag_monitor_source());
}

mcu::AsmResult assemble_telemetry_monitor(const platform::BridgeMap& map) {
  mcu::Assembler as;
  as.define("LOCKREG",
            static_cast<std::uint16_t>(map.regfile + 2 * core::reg::kLock));
  as.define("RATELO",
            static_cast<std::uint16_t>(map.regfile + 2 * core::reg::kRateOut));
  as.define("RATEHI", static_cast<std::uint16_t>(map.regfile +
                                                 2 * core::reg::kRateOut + 1));
  as.define("WDKICKLO", map.watchdog);
  return as.assemble(telemetry_monitor_source());
}

mcu::AsmResult assemble_watchdog_kicker(const platform::BridgeMap& map) {
  mcu::Assembler as;
  as.define("WDKICK", map.watchdog);
  return as.assemble(watchdog_kicker_source());
}

mcu::AsmResult assemble_greeting_app() {
  mcu::Assembler as;
  return as.assemble(greeting_app_source());
}

mcu::AsmResult assemble_rs485_node(std::uint8_t address,
                                   const platform::BridgeMap& map) {
  mcu::Assembler as;
  as.define("MYADDR", address);
  as.define("RATELO", map.regfile);
  return as.assemble(rs485_node_source());
}

std::vector<FirmwareImage> shipped_firmware(const platform::BridgeMap& map) {
  std::vector<FirmwareImage> out;
  auto add = [&out](std::string name, mcu::AsmResult r) {
    FirmwareImage fw;
    fw.name = std::move(name);
    fw.base = r.entry;  // strip the ORG padding: keep only emitted bytes
    fw.entry = r.entry;
    fw.image.assign(r.image.begin() + r.entry, r.image.end());
    for (const auto& [addr, a] : r.loop_annots)
      fw.loop_annots[addr] = LoopAnnot{a.bound, a.wait};
    out.push_back(std::move(fw));
  };

  mcu::BootRomConfig boot_cfg;
  boot_cfg.spi_base = map.spi;
  boot_cfg.prog_base = map.prog_ram;
  {
    // Same symbol bindings BootRom::image() uses.
    mcu::Assembler as;
    as.define("PROGRAM", boot_cfg.prog_base);
    as.define("SPIDATA", boot_cfg.spi_base);
    as.define("SPICTRL", static_cast<std::uint16_t>(boot_cfg.spi_base + 2));
    add("bootrom", as.assemble(mcu::BootRom::source(boot_cfg)));
  }
  {
    mcu::Assembler as;
    add("monitor_rom", as.assemble(mcu::MonitorRom::source()));
  }
  add("diag_monitor", assemble_diag_monitor(map));
  add("telemetry_monitor", assemble_telemetry_monitor(map));
  add("watchdog_kicker", assemble_watchdog_kicker(map));
  add("greeting_app", assemble_greeting_app());
  add("rs485_node", assemble_rs485_node(0x10, map));
  return out;
}

}  // namespace ascp::analysis::corpus
