// firmware_corpus.hpp — every firmware image the platform ships, in one place.
//
// The examples and benches used to embed their 8051 sources as local string
// literals, which meant the static firmware analyzer could not enumerate
// them. This module is the single home for those sources: the examples
// assemble from here, and platform_lint / the tier-1 tests analyze exactly
// the corpus that runs on the simulated silicon — no drift possible.
//
// Each `*_source()` returns the raw assembly; the matching `assemble_*()`
// binds the platform-map symbols the source references and assembles it.
// `shipped_firmware()` enumerates everything (including the boot ROM and the
// resident monitor ROM, whose sources live with their protocol drivers in
// mcu/) as analyzer-ready images.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/firmware_lint.hpp"
#include "mcu/assembler.hpp"
#include "platform/platform.hpp"

namespace ascp::analysis::corpus {

/// DIAG-block monitor (fault_demo): polls the DTC mask and safety state,
/// streams a 'D' frame over the UART on any change, kicks the watchdog
/// every round. Symbols: DTCLO, STATE, WDKICK.
std::string diag_monitor_source();

/// Telemetry monitor (firmware_monitor): waits for PLL+AGC lock, sends 'L',
/// then streams the rate register big-endian forever, kicking the watchdog
/// each round. Symbols: LOCKREG, RATELO, WDKICKLO.
std::string telemetry_monitor_source();

/// Minimal liveness firmware (fault_campaign bench): kicks the watchdog in
/// an eternal loop. Symbol: WDKICK.
std::string watchdog_kicker_source();

/// UART greeting application (prototyping_session): the payload downloaded
/// through the boot ROM. ORG 8000h; no platform symbols.
std::string greeting_app_source();

/// RS485 node (rs485_network): 9-bit multiprocessor slave that answers a
/// 'Q'uery to its address with the rate register. Symbols: MYADDR, RATELO.
std::string rs485_node_source();

mcu::AsmResult assemble_diag_monitor(const platform::BridgeMap& map);
mcu::AsmResult assemble_telemetry_monitor(const platform::BridgeMap& map);
mcu::AsmResult assemble_watchdog_kicker(const platform::BridgeMap& map);
mcu::AsmResult assemble_greeting_app();
mcu::AsmResult assemble_rs485_node(std::uint8_t address,
                                   const platform::BridgeMap& map);

/// The complete shipped corpus, assembled against the given map: the boot
/// ROM, the resident monitor ROM, and all five application images above,
/// packaged for check_firmware(). The greeting app is rebased to its ORG so
/// the image holds only real bytes.
std::vector<FirmwareImage> shipped_firmware(const platform::BridgeMap& map = {});

}  // namespace ascp::analysis::corpus
