#include "analysis/firmware_lint.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "analysis/cfg.hpp"

namespace ascp::analysis {
namespace {

std::string hex16(std::uint16_t v) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%04X", v);
  return buf;
}

std::string hex8(std::uint8_t v) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%02X", v);
  return buf;
}

/// SFRs implemented by Core8051 itself (core8051.hpp sfr namespace).
constexpr std::uint8_t kCoreSfrs[] = {
    0x80, 0x81, 0x82, 0x83, 0x87,              // P0 SP DPL DPH PCON
    0x88, 0x89, 0x8A, 0x8B, 0x8C, 0x8D,        // TCON TMOD TL0 TL1 TH0 TH1
    0x90, 0x98, 0x99, 0xA0, 0xA8, 0xB0, 0xB8,  // P1 SCON SBUF P2 IE P3 IP
    0xD0, 0xE0, 0xF0,                          // PSW ACC B
};

/// Direct-address destination of an instruction, if it writes one.
std::optional<std::uint8_t> direct_write_dest(const Insn& in) {
  switch (in.opcode()) {
    case 0x05: case 0x15:  // INC/DEC dir
    case 0x42: case 0x43:  // ORL dir,…
    case 0x52: case 0x53:  // ANL dir,…
    case 0x62: case 0x63:  // XRL dir,…
    case 0x75:             // MOV dir,#imm
    case 0xC5:             // XCH A,dir
    case 0xD0:             // POP dir
    case 0xD5:             // DJNZ dir,rel
    case 0xF5:             // MOV dir,A
      return in.bytes[1];
    case 0x85:             // MOV dst,src — src is encoded first
      return in.bytes[2];
    default:
      if ((in.opcode() & 0xF8) == 0x88) return in.bytes[1];  // MOV dir,Rn
      if (in.opcode() == 0x86 || in.opcode() == 0x87) return in.bytes[1];  // MOV dir,@Ri
      return std::nullopt;
  }
}

/// Bit-address destination of an instruction, if it writes one.
std::optional<std::uint8_t> bit_write_dest(const Insn& in) {
  switch (in.opcode()) {
    case 0x10:  // JBC bit,rel (clears the bit)
    case 0x92:  // MOV bit,C
    case 0xB2:  // CPL bit
    case 0xC2:  // CLR bit
    case 0xD2:  // SETB bit
      return in.bytes[1];
    default: return std::nullopt;
  }
}

int stack_push_bytes(std::uint8_t op) {
  if (op == 0xC0) return 1;                              // PUSH
  if (op == 0xD0) return -1;                             // POP
  if (op == 0x12 || (op & 0x1F) == 0x11) return 2;       // LCALL/ACALL
  return 0;
}

/// Byte-level view of the register map for MOVX store checking.
struct ByteMap {
  struct Slot {
    const BlockSpec* block = nullptr;
    const RegSpec* reg = nullptr;  ///< nullptr: offset unpopulated in block
  };
  std::map<std::uint32_t, Slot> slots;  ///< only window bytes present
  std::vector<std::pair<std::uint32_t, std::uint32_t>> memories;  ///< [lo, hi)
  std::set<std::uint16_t> kick_bytes;  ///< byte addresses of watchdog KICK

  explicit ByteMap(const RegMapSpec& map) {
    for (const MemRegion& m : map.memories) memories.push_back({m.base, m.base + m.bytes});
    for (const BlockSpec& b : map.blocks) {
      for (std::uint32_t w = 0; w < b.num_regs; ++w) {
        const RegSpec* r = map.reg_at(b, static_cast<std::uint16_t>(w));
        slots[b.base + 2 * w] = Slot{&b, r};
        slots[b.base + 2 * w + 1] = Slot{&b, r};
        if (r && r->name.find("KICK") != std::string::npos) {
          kick_bytes.insert(static_cast<std::uint16_t>(b.base + 2 * w));
          kick_bytes.insert(static_cast<std::uint16_t>(b.base + 2 * w + 1));
        }
      }
    }
  }

  bool in_memory(std::uint16_t addr) const {
    for (const auto& [lo, hi] : memories)
      if (addr >= lo && addr < hi) return true;
    return false;
  }
};

class FirmwareAnalysis {
 public:
  FirmwareAnalysis(const FirmwareImage& fw, const FirmwareLintOptions& opt)
      : fw_(fw), opt_(opt) {
    known_sfrs_.insert(std::begin(kCoreSfrs), std::end(kCoreSfrs));
    known_sfrs_.insert(opt.extra_sfrs.begin(), opt.extra_sfrs.end());
    if (opt.map) bytemap_.emplace(*opt.map);
  }

  Report run() {
    if (fw_.image.empty()) {
      rep_.add(Severity::Error, "firmware", fw_.name, "empty firmware image");
      return std::move(rep_);
    }
    cfg_ = build_cfg(fw_, &rep_);
    report_unreachable();
    analyze_stack();
    analyze_stores();
    analyze_liveness();
    return std::move(rep_);
  }

 private:
  bool in_image(std::uint16_t addr) const { return cfg_.in_image(addr); }

  std::string at(std::uint16_t addr) const { return fw_.name + ":" + hex16(addr); }

  // ---- phase 2: unreachable bytes ------------------------------------------
  void report_unreachable() {
    std::vector<bool> covered(fw_.image.size(), false);
    bool has_movc = false;
    for (const auto& [addr, in] : cfg_.insns) {
      for (int i = 0; i < in.length; ++i) {
        const std::size_t off = static_cast<std::size_t>(addr - fw_.base) + i;
        if (off < covered.size()) covered[off] = true;
      }
      if (in.opcode() == 0x83 || in.opcode() == 0x93) has_movc = true;
    }
    // Code tables read through MOVC are legitimately unreachable as
    // instructions, so their presence softens the verdict.
    const Severity sev = has_movc ? Severity::Info : Severity::Warning;
    for (std::size_t i = 0; i < covered.size();) {
      if (covered[i]) {
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < covered.size() && !covered[j]) ++j;
      rep_.add(sev, "firmware", at(static_cast<std::uint16_t>(fw_.base + i)),
               std::to_string(j - i) + " byte(s) unreachable from the entry point" +
                   (has_movc ? " (image uses MOVC — possibly data)" : ""));
      i = j;
    }
  }

  // ---- phase 3: call/ret discipline + stack-depth bound --------------------
  struct RoutineResult {
    int max_extra = 0;    ///< worst-case bytes pushed above entry depth
    bool recursive = false;
  };

  int routine_extra(std::uint16_t entry, std::set<std::uint16_t>& on_stack) {
    if (const auto it = routines_.find(entry); it != routines_.end())
      return it->second.max_extra;
    if (on_stack.contains(entry)) {
      if (recursion_reported_.insert(entry).second)
        rep_.add(Severity::Warning, "firmware", at(entry),
                 "recursive call chain — stack bound assumes one activation");
      return 0;
    }
    on_stack.insert(entry);

    std::map<std::uint16_t, int> depth;  // bytes pushed before executing addr
    std::deque<std::uint16_t> work{entry};
    depth[entry] = 0;
    int peak = 0;
    bool unbounded = false, mismatch = false;
    const bool top_level = entry == fw_.entry && !cfg_.routine_entries.contains(entry);

    while (!work.empty() && !unbounded) {
      const std::uint16_t addr = work.front();
      work.pop_front();
      const auto it = cfg_.insns.find(addr);
      if (it == cfg_.insns.end()) continue;
      const Insn& in = it->second;
      const int d = depth[addr];
      int d_out = d;

      if (const int push = stack_push_bytes(in.opcode()); push != 0) {
        if (in.flow == Flow::Call) {
          int extra = 2;
          if (in_image(in.target)) extra += routine_extra(in.target, on_stack);
          peak = std::max(peak, d + extra);
        } else {
          d_out = d + push;
          peak = std::max(peak, d_out);
          if (d_out < 0 && stack_warned_.insert(addr).second)
            rep_.add(Severity::Warning, "firmware", at(addr),
                     "POP below the routine's entry stack depth");
        }
      }
      if (in.opcode() == 0x75 && in.bytes[1] == 0x81) {  // MOV SP,#imm
        if (addr == fw_.entry || d == 0)
          sp_explicit_ = in.bytes[2];
        else if (stack_warned_.insert(addr).second)
          rep_.add(Severity::Warning, "firmware", at(addr),
                   "SP rewritten mid-flow — stack bound unreliable");
      }
      if (in.flow == Flow::IndirectJump && stack_warned_.insert(addr).second) {
        // The CFG has no edge to follow here, so the depth reached at this
        // instruction is the last the walk can account for on this path.
        rep_.add(Severity::Warning, "firmware", at(addr),
                 "unresolved-jump: " + in.text() +
                     " target not statically known — stack walk cannot follow "
                     "the edge, bound excludes whatever runs there");
      }
      if (in.flow == Flow::Ret || in.flow == Flow::Reti) {
        if (top_level)
          rep_.add(Severity::Error, "firmware", at(addr),
                   "RET with empty call stack — return address underflows into "
                   "register-bank bytes");
        else if (d != 0 && stack_warned_.insert(addr).second)
          rep_.add(Severity::Error, "firmware", at(addr),
                   "RET with unbalanced PUSH/POP (net " + std::to_string(d) +
                       " byte(s) still pushed) — returns to a data byte");
        continue;
      }
      const auto sit = cfg_.succ.find(addr);
      if (sit == cfg_.succ.end()) continue;
      for (const std::uint16_t s : sit->second) {
        const auto dit = depth.find(s);
        if (dit == depth.end()) {
          depth[s] = d_out;
          work.push_back(s);
        } else if (d_out > dit->second) {
          if (d_out > 256) {
            rep_.add(Severity::Error, "firmware", at(s),
                     "stack grows without bound around this loop");
            unbounded = true;
            break;
          }
          dit->second = d_out;
          work.push_back(s);
        } else if (d_out < dit->second && !mismatch) {
          mismatch = true;
          rep_.add(Severity::Warning, "firmware", at(s),
                   "paths reach this instruction with different stack depths (" +
                       std::to_string(d_out) + " vs " + std::to_string(dit->second) + ")");
        }
      }
    }
    on_stack.erase(entry);
    routines_[entry] = RoutineResult{peak, false};
    return peak;
  }

  void analyze_stack() {
    if (cfg_.insns.empty()) return;
    std::set<std::uint16_t> on_stack;
    const int extra = routine_extra(fw_.entry, on_stack);
    const int sp_start = sp_explicit_ ? *sp_explicit_ : opt_.sp_reset;
    const int worst = sp_start + extra;  // PUSH pre-increments; SP points at top
    if (worst > 0xFF)
      rep_.add(Severity::Error, "firmware", fw_.name,
               "worst-case stack depth overflows IDATA: SP start " +
                   hex8(static_cast<std::uint8_t>(sp_start)) + " + " +
                   std::to_string(extra) + " byte(s) pushed exceeds 0xFF");
    else
      rep_.add(Severity::Info, "firmware", fw_.name,
               "worst-case stack: SP start " + hex8(static_cast<std::uint8_t>(sp_start)) +
                   " + " + std::to_string(extra) + " byte(s) = " +
                   hex8(static_cast<std::uint8_t>(worst)) + " (IDATA ceiling 0xFF)");
  }

  // ---- phase 4: MOVX / SFR store checking ----------------------------------
  void analyze_stores() {
    // Block-local DPTR constant propagation: state survives straight-line
    // fall-through, resets at branch targets and after calls (the callee may
    // clobber DPTR).
    std::set<std::uint16_t> leaders{fw_.entry};
    for (const auto& [addr, in] : cfg_.insns) {
      if (in.flow == Flow::Jump || in.flow == Flow::CondJump || in.flow == Flow::Call)
        if (in_image(in.target)) leaders.insert(in.target);
      if (in.flow != Flow::Seq)
        leaders.insert(static_cast<std::uint16_t>(addr + in.length));
    }

    int dpl = -1, dph = -1;  // tracked DPTR halves, -1 = unknown
    std::uint16_t prev_end = 0;
    bool first = true;
    for (const auto& [addr, in] : cfg_.insns) {
      if (first || addr != prev_end || leaders.contains(addr)) dpl = dph = -1;
      first = false;
      prev_end = static_cast<std::uint16_t>(addr + in.length);

      // SFR-space direct/bit writes.
      if (const auto dest = direct_write_dest(in); dest && *dest >= 0x80)
        check_sfr_write(addr, in, *dest, /*bit=*/false);
      if (const auto bit = bit_write_dest(in); bit && *bit >= 0x80)
        check_sfr_write(addr, in, static_cast<std::uint8_t>(*bit & 0xF8), /*bit=*/true);

      // MOVX stores through a tracked DPTR.
      if (in.opcode() == 0xF0 && dpl >= 0 && dph >= 0)
        check_movx_store(addr, static_cast<std::uint16_t>(dph << 8 | dpl));

      // DPTR tracking.
      switch (in.opcode()) {
        case 0x90:  // MOV DPTR,#imm16
          dph = in.bytes[1];
          dpl = in.bytes[2];
          break;
        case 0xA3:  // INC DPTR
          if (dpl >= 0 && dph >= 0) {
            const auto v = static_cast<std::uint16_t>((dph << 8 | dpl) + 1);
            dpl = v & 0xFF;
            dph = v >> 8;
          }
          break;
        case 0x75:  // MOV dir,#imm
          if (in.bytes[1] == 0x82) dpl = in.bytes[2];
          if (in.bytes[1] == 0x83) dph = in.bytes[2];
          break;
        default:
          if (const auto dest = direct_write_dest(in)) {
            if (*dest == 0x82) dpl = -1;
            if (*dest == 0x83) dph = -1;
          }
          break;
      }
    }
  }

  void check_sfr_write(std::uint16_t addr, const Insn& in, std::uint8_t sfr, bool bit) {
    if (sfr == 0x81) return;  // SP — handled by the stack phase
    if (!known_sfrs_.contains(sfr))
      rep_.add(Severity::Warning, "firmware", at(addr),
               in.text() + " writes unimplemented SFR " + hex8(sfr) +
                   " — silently absorbed by the core");
    else if (bit && (sfr & 0x07) != 0)
      rep_.add(Severity::Error, "firmware", at(addr),
               in.text() + " bit-addresses SFR " + hex8(sfr) +
                   ", which is not bit-addressable");
  }

  void check_movx_store(std::uint16_t addr, std::uint16_t dest) {
    if (!bytemap_) return;
    if (bytemap_->kick_bytes.contains(dest)) kick_insns_.insert(addr);
    const auto it = bytemap_->slots.find(dest);
    if (it == bytemap_->slots.end()) {
      if (!bytemap_->in_memory(dest))
        rep_.add(Severity::Warning, "firmware", at(addr),
                 "MOVX store to unmapped bus address " + hex16(dest) + " (open bus)");
      return;
    }
    const auto& slot = it->second;
    if (!slot.reg) {
      if (!slot.block->regs.empty())
        rep_.add(Severity::Warning, "firmware", at(addr),
                 "MOVX store to unpopulated offset in block '" + slot.block->name +
                     "' at " + hex16(dest) + " — write is dropped");
      return;
    }
    if (!slot.reg->writable)
      rep_.add(Severity::Error, "firmware", at(addr),
               "MOVX store to read-only register " + slot.block->name + "." +
                   slot.reg->name + " at " + hex16(dest) +
                   " — the bridge drops the write");
  }

  // ---- phase 5: watchdog liveness over exit-free SCCs ----------------------
  void analyze_liveness() {
    if (!opt_.check_watchdog_liveness || !bytemap_ || bytemap_->kick_bytes.empty())
      return;

    // May-kick per routine, propagated through the call graph to a fixpoint.
    std::map<std::uint16_t, std::set<std::uint16_t>> routine_body;  // entry -> insns
    std::set<std::uint16_t> entries = cfg_.routine_entries;
    entries.insert(fw_.entry);
    for (const std::uint16_t e : entries) {
      std::set<std::uint16_t>& body = routine_body[e];
      std::deque<std::uint16_t> work{e};
      while (!work.empty()) {
        const std::uint16_t a = work.front();
        work.pop_front();
        if (!cfg_.insns.contains(a) || !body.insert(a).second) continue;
        if (const auto s = cfg_.succ.find(a); s != cfg_.succ.end())
          for (const std::uint16_t n : s->second) work.push_back(n);
      }
    }
    std::set<std::uint16_t> kicking_routines;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [e, body] : routine_body) {
        if (kicking_routines.contains(e)) continue;
        for (const std::uint16_t a : body) {
          const bool kicks = kick_insns_.contains(a) ||
                             (cfg_.call_sites.contains(a) &&
                              kicking_routines.contains(cfg_.call_sites.at(a)));
          if (kicks) {
            kicking_routines.insert(e);
            changed = true;
            break;
          }
        }
      }
    }

    std::set<std::uint16_t> nodes;
    for (const auto& [a, unused] : cfg_.insns) nodes.insert(a);
    for (const auto& scc : strongly_connected(nodes, cfg_.succ)) {
      if (scc.size() == 1) {
        const std::uint16_t a = *scc.begin();
        const auto s = cfg_.succ.find(a);
        const bool self_loop =
            s != cfg_.succ.end() && std::count(s->second.begin(), s->second.end(), a) > 0;
        if (!self_loop) continue;
      }
      bool escapes = false, kicks = false;
      for (const std::uint16_t a : scc) {
        if (const auto s = cfg_.succ.find(a); s != cfg_.succ.end())
          for (const std::uint16_t n : s->second)
            if (!scc.contains(n)) escapes = true;
        if (kick_insns_.contains(a)) kicks = true;
        if (const auto c = cfg_.call_sites.find(a); c != cfg_.call_sites.end())
          if (kicking_routines.contains(c->second)) kicks = true;
      }
      if (!escapes && !kicks)
        rep_.add(Severity::Warning, "firmware", at(*scc.begin()),
                 "exit-free loop never kicks the watchdog — a bite here resets the "
                 "platform with no recovery");
    }
  }

  const FirmwareImage& fw_;
  const FirmwareLintOptions& opt_;
  Report rep_;

  Cfg cfg_;  ///< shared reachable-instruction CFG (analysis/cfg.hpp)
  std::set<std::uint8_t> known_sfrs_;
  std::optional<ByteMap> bytemap_;
  std::set<std::uint16_t> kick_insns_;  ///< MOVX stores hitting watchdog KICK

  std::map<std::uint16_t, RoutineResult> routines_;
  std::set<std::uint16_t> recursion_reported_;
  std::set<std::uint16_t> stack_warned_;
  std::optional<std::uint8_t> sp_explicit_;
};

}  // namespace

Report check_firmware(const FirmwareImage& fw, const FirmwareLintOptions& opt) {
  return FirmwareAnalysis(fw, opt).run();
}

}  // namespace ascp::analysis
