// firmware_lint.hpp — static analyzer for assembled 8051 firmware images.
//
// The paper's prototype flow downloads firmware into program RAM and lets it
// drive the whole conditioning platform through MOVX — which means a bad
// store can silently hit a read-only status register, a missed watchdog kick
// can reset the chip mid-measurement, and a stack that creeps past IDATA
// corrupts the register banks. All of that is decidable *before* simulation
// for the structured firmware this platform runs, and this analyzer decides
// it:
//
//   * CFG construction over the image (full opcode map, resolved branch
//     targets; out-of-image targets — e.g. the boot ROM's LJMP into program
//     RAM — are treated as external exits, not errors)
//   * unreachable code: bytes never reached from the entry point
//   * CALL/RET discipline: RET at top level (return-address underflow),
//     RET with unbalanced PUSH/POP inside a routine, recursion
//   * worst-case stack-depth bound: SP start (reset value or the image's own
//     MOV SP,#imm) plus the deepest PUSH/CALL chain, checked against the
//     256-byte IDATA ceiling; loops that grow the stack are unbounded
//   * MOVX write legality: DPTR constants are propagated through each basic
//     block so stores land on a known map address — writes to read-only
//     registers are errors, writes to unmapped bridge space are warnings
//   * SFR writes: direct/bit stores to SFR space are checked against the
//     core's implemented SFR set (plus device-claimed addresses)
//   * watchdog liveness: every exit-free cycle (SCC with no escaping edge)
//     must reach a kick of the watchdog KICK register, directly or through
//     a called routine
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/findings.hpp"
#include "analysis/regmap_lint.hpp"

namespace ascp::analysis {

/// Loop annotation carried over from assembly source (mcu::AsmResult):
/// `bound` > 0 caps the iterations of the loop whose back edge sits at the
/// annotated address; `wait` marks an external-event poll loop whose
/// spinning the timing analyzer excludes from busy-time WCET.
struct LoopAnnot {
  long bound = 0;
  bool wait = false;
};

/// One firmware image to analyze, as produced by the assembler.
struct FirmwareImage {
  std::string name;                 ///< used in finding locations
  std::vector<std::uint8_t> image;  ///< raw bytes
  std::uint16_t base = 0;           ///< load address of image[0]
  std::uint16_t entry = 0;          ///< execution entry point (absolute)
  std::map<std::uint16_t, LoopAnnot> loop_annots;  ///< back-edge addr -> annotation
};

struct FirmwareLintOptions {
  /// Register map the MOVX stores are checked against. When null, only the
  /// control-flow and SFR checks run.
  const RegMapSpec* map = nullptr;
  /// Extra SFR addresses implemented by attached SfrDevices (e.g. the cache
  /// controller's CBANK..CSTAT block). The core's own set is built in.
  std::vector<std::uint8_t> extra_sfrs;
  /// Check that exit-free loops kick the watchdog. Leave on even for images
  /// that never enable it — the check only fires when a KICK register exists
  /// in the map.
  bool check_watchdog_liveness = true;
  /// SP reset value when the image does not set SP itself.
  std::uint8_t sp_reset = 0x07;
};

Report check_firmware(const FirmwareImage& fw, const FirmwareLintOptions& opt = {});

}  // namespace ascp::analysis
