#include "analysis/obs_lint.hpp"

namespace ascp::analysis {

Report check_event_coverage(const ascp::obs::EventLog& log) {
  Report report;
  for (obs::EventCategory cat : obs::kAllEventCategories) {
    const char* name = obs::category_name(cat);
    if (!log.emitter_declared(cat)) {
      report.add(Severity::Error, "events", name,
                 "no component declares itself an emitter of this category — dead "
                 "vocabulary (removed emitter, kept enum?)");
      continue;
    }
    std::string who;
    for (const auto& e : log.emitters(cat)) {
      if (!who.empty()) who += ", ";
      who += e;
    }
    report.add(Severity::Info, "events", name, "emitted by " + who);
  }
  return report;
}

}  // namespace ascp::analysis
