// obs_lint.hpp — static coverage check for the structured-event vocabulary.
//
// Every EventCategory enumerator is API surface: digests group by it, the
// Chrome-trace exporter tracks it, operators filter on it. A category no
// component can ever emit is dead vocabulary — usually a refactor that
// removed the emitter but kept the enum. Instrumented components declare
// the categories they emit when an event sink is attached
// (EventLog::declare_emitter), so assembling the full platform with a sink
// and then walking the declarations proves coverage without simulating a
// sample — the same zero-sample philosophy as the register-map checker.
#pragma once

#include "analysis/findings.hpp"
#include "obs/events.hpp"

namespace ascp::analysis {

/// Check that every EventCategory enumerator has at least one declared
/// emitter in `log` (error per uncovered category, info listing claimants).
Report check_event_coverage(const ascp::obs::EventLog& log);

}  // namespace ascp::analysis
