#include "analysis/range_lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/fixed.hpp"
#include "dsp/biquad.hpp"
#include "dsp/cic.hpp"
#include "dsp/fir.hpp"

namespace ascp::analysis {
namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

/// L1 norm of a biquad's impulse response — the adversarial gain bound.
/// Stable sections decay geometrically, so the truncated sum converges; the
/// iteration cap guards against (mis)designed marginally-stable sections.
double biquad_l1(const dsp::BiquadCoeffs& c) {
  dsp::Biquad bq(c);
  double sum = 0.0;
  double x = 1.0;
  for (int n = 0; n < 200000; ++n) {
    const double h = bq.process(x);
    x = 0.0;
    sum += std::abs(h);
    if (n > 64 && std::abs(h) < 1e-14 * std::max(sum, 1.0)) break;
  }
  return sum;
}

/// Peak magnitude response max_f |H(f)| on a dense grid over [0, fs/2].
double biquad_peak(const dsp::BiquadCoeffs& c, double fs) {
  double peak = 0.0;
  for (int k = 0; k <= 4096; ++k)
    peak = std::max(peak, dsp::biquad_magnitude(c, fs / 2.0 * k / 4096.0, fs));
  return peak;
}

/// Peak of the composed response max_f |H1(f)·H2(f)| — NOT the product of
/// the per-section peaks: cascaded sections peak at different frequencies
/// (a 4th-order Butterworth is flat even though its Q=1.3 section peaks at
/// √2 alone).
double biquad_cascade_peak(const dsp::BiquadCoeffs& c1, const dsp::BiquadCoeffs& c2,
                           double fs) {
  double peak = 0.0;
  for (int k = 0; k <= 4096; ++k) {
    const double f = fs / 2.0 * k / 4096.0;
    peak = std::max(peak,
                    dsp::biquad_magnitude(c1, f, fs) * dsp::biquad_magnitude(c2, f, fs));
  }
  return peak;
}

double fir_l1(std::span<const double> taps) {
  double sum = 0.0;
  for (const double t : taps) sum += std::abs(t);
  return sum;
}

double fir_peak(std::span<const double> taps, double fs) {
  double peak = 0.0;
  for (int k = 0; k <= 4096; ++k)
    peak = std::max(peak, dsp::fir_magnitude(taps, fs / 2.0 * k / 4096.0, fs));
  return peak;
}

template <typename Q>
constexpr double format_max() {
  return static_cast<double>(Q::kRawMax) / Q::kScale;
}

struct StageList {
  std::vector<StageRange> stages;

  void add(std::string stage, std::string format, double bound, double limit,
           double l1, std::string note) {
    stages.push_back(StageRange{std::move(stage), std::move(format), bound, limit, l1,
                                std::move(note)});
  }
};

}  // namespace

double StageRange::headroom_db() const {
  if (bound <= 0.0) return 99.0;
  return 20.0 * std::log10(limit / bound);
}

std::vector<StageRange> sense_chain_ranges(const core::SenseChainConfig& cfg,
                                           const dsp::CompensationCoeffs& comp,
                                           const RangeInputSpec& in) {
  StageList out;
  const double vref = in.vref_v;
  const double a_fs = in.adc_rail_v / vref;  // pickoff bound [FS]
  constexpr double q1_14 = format_max<fx::Q1_14>();
  constexpr double q1_22 = format_max<fx::Q1_22>();
  constexpr double q4_18 = format_max<fx::Q4_18>();

  out.add("sense.adc", "Q1_14", a_fs, q1_14, a_fs,
          "SAR ADC clamps at the ±" + fmt(in.adc_rail_v) + " V reference rail");

  // ---- demodulator ---------------------------------------------------------
  // Mixer: 2·x·carrier — instantaneous peak 2A with unit carriers.
  out.add("sense.demod.mixer", "Q4_18", 2.0 * a_fs, q4_18, 2.0 * a_fs,
          "×2 mixer product of a rail-bounded pickoff and a unit carrier");

  // Post-mixer low-pass: carrier-structured input is DC (≤A) plus a 2f tone
  // (≤A); the steady-state bound sums |H| at those frequencies.
  const auto lpf = dsp::design_biquad_lowpass(cfg.demod_bw, 0.707, cfg.fs);
  const double h0 = dsp::biquad_magnitude(lpf, 0.0, cfg.fs);
  const double h2f = dsp::biquad_magnitude(lpf, 2.0 * in.carrier_min_hz, cfg.fs);
  const double bb = a_fs * (h0 + h2f);
  out.add("sense.demod.lpf", "Q1_22", bb, q1_22, 2.0 * a_fs * biquad_l1(lpf),
          "|H(0)|=" + fmt(h0) + " on the DC product + |H(2f)|=" + fmt(h2f) +
              " leakage at 2×" + fmt(in.carrier_min_hz) + " Hz");

  // Direct-form-II-transposed state registers of the demod low-pass.
  {
    const double x_peak = 2.0 * a_fs;
    const double y_peak = 2.0 * a_fs * biquad_l1(lpf);
    const double s2 = std::abs(lpf.b2) * x_peak + std::abs(lpf.a2) * y_peak;
    const double s1 = std::abs(lpf.b1) * x_peak + std::abs(lpf.a1) * y_peak + s2;
    out.add("sense.demod.lpf.state", "Q4_18", std::max(s1, s2), q4_18,
            std::max(s1, s2),
            "DF2T states: |b1|x+|a1|y+s2 with b1=" + fmt(lpf.b1) + ", a1=" + fmt(lpf.a1));
  }

  const bool closed = cfg.mode == core::SenseMode::ClosedLoop;
  const double ctrl = cfg.ctrl_limit / vref;
  if (closed) {
    out.add("sense.servo.integrator", "Q4_18", ctrl, q4_18, ctrl,
            "explicitly clamped to ±ctrl_limit = ±" + fmt(cfg.ctrl_limit) + " V");
    out.add("sense.servo.output", "Q1_22", ctrl, q1_22, ctrl,
            "integrator + kp·error, clamped to ±ctrl_limit");
    const double mod = std::sqrt(2.0) * ctrl;
    out.add("sense.modulator", "Q1_14", mod, q1_14, 2.0 * ctrl,
            "√(u_rate²+u_quad²)·1 = √2·ctrl_limit with unit carriers (control-DAC "
            "word)");
  }

  // ---- decimation ----------------------------------------------------------
  // The CIC input register is itself a saturating rail, so the propagated
  // bound clips there; in closed loop the servo clamp keeps it well inside.
  const double cic_in_raw = closed ? ctrl : bb;
  const double cic_in = std::min(cic_in_raw, 1.0);
  out.add("sense.cic.input", "Q(16)@vref", cic_in, 1.0, cic_in,
          closed ? "servo clamp ±" + fmt(cfg.ctrl_limit) + " V inside the ±vref register"
                 : "input register rail-clamps at ±vref");

  // Hogenauer bit growth: the int64 integrators rely on modular wrap, which
  // is exact iff the register is at least B_in + N·ceil(log2 R) bits wide.
  const int growth =
      16 + cfg.cic_stages * static_cast<int>(std::ceil(std::log2(cfg.cic_ratio)));
  out.add("sense.cic.accumulator", "int64", static_cast<double>(growth), 64.0,
          static_cast<double>(growth),
          "required width B_in + N·log2(R) = 16 + " + std::to_string(cfg.cic_stages) +
              "·log2(" + std::to_string(cfg.cic_ratio) + ") bits (modular-wrap "
              "correctness condition)");
  out.add("sense.cic.output", "Q1_22", cic_in, q1_22, cic_in,
          "R^N gain normalized out; DC gain exactly 1");

  // ---- clean-up FIR --------------------------------------------------------
  const double fout = cfg.fs / cfg.cic_ratio;
  const auto taps = dsp::design_lowpass(cfg.fir_taps, cfg.fir_corner, fout);
  const double fpk = fir_peak(taps, fout);
  std::size_t dom = 0;
  for (std::size_t i = 1; i < taps.size(); ++i)
    if (std::abs(taps[i]) > std::abs(taps[dom])) dom = i;
  const double fir_out = cic_in * fpk;
  out.add("sense.fir", "Q1_22", fir_out, q1_22, cic_in * fir_l1(taps),
          "peak |H|=" + fmt(fpk) + " over [0, f_out/2]; dominant tap h[" +
              std::to_string(dom) + "]=" + fmt(taps[dom]));

  // ---- output Butterworth cascade -----------------------------------------
  // Same section design design_butterworth_lowpass() uses internally. The
  // node between the sections sees H1 alone; the cascade output is bounded
  // by the composed peak max_f |H1·H2| (flat for Butterworth), because the
  // Q=1.3 section's lone √2 resonance is cancelled by the Q=0.54 section's
  // droop at that frequency.
  const double fir_l1_out = cic_in * fir_l1(taps);
  const double qs[2] = {0.5412, 1.3066};  // 4th-order Butterworth pole-pair Qs
  const auto c0 = dsp::design_biquad_lowpass(cfg.output_bw_hz, qs[0], fout);
  const auto c1 = dsp::design_biquad_lowpass(cfg.output_bw_hz, qs[1], fout);
  const double pk0 = biquad_peak(c0, fout), l1_0 = biquad_l1(c0);
  const double pk01 = biquad_cascade_peak(c0, c1, fout), l1_1 = biquad_l1(c1);
  const double mid = fir_out * pk0;
  const double mid_l1 = fir_l1_out * l1_0;
  out.add("sense.output_lpf[0]", "Q1_22", mid, q1_22, mid_l1,
          "Butterworth section Q=" + fmt(qs[0]) + ": peak |H|=" + fmt(pk0) +
              ", L1=" + fmt(l1_0));
  double y = fir_out * pk01;
  double y_l1 = fir_l1_out * l1_0 * l1_1;
  out.add("sense.output_lpf[1]", "Q1_22", y, q1_22, y_l1,
          "Butterworth section Q=" + fmt(qs[1]) + ": cascade peak |H1·H2|=" +
              fmt(pk01) + " (composed, not per-section product)");
  const auto state_node = [&](int s, const dsp::BiquadCoeffs& c, double xb, double yb,
                              double xl, double yl) {
    const double s2 = std::abs(c.b2) * xb + std::abs(c.a2) * yb;
    const double s1 = std::abs(c.b1) * xb + std::abs(c.a1) * yb + s2;
    const double s2l = std::abs(c.b2) * xl + std::abs(c.a2) * yl;
    const double s1l = std::abs(c.b1) * xl + std::abs(c.a1) * yl + s2l;
    out.add("sense.output_lpf[" + std::to_string(s) + "].state", "Q4_18",
            std::max(s1, s2), q4_18, std::max(s1l, s2l),
            "DF2T states with a1=" + fmt(c.a1) + ", a2=" + fmt(c.a2));
  };
  state_node(0, c0, fir_out, mid, fir_l1_out, mid_l1);
  state_node(1, c1, mid, y, mid_l1, y_l1);

  // ---- compensation + null offset -----------------------------------------
  const double dt_max =
      std::max(std::abs(in.temp_lo_c - 25.0), std::abs(in.temp_hi_c - 25.0));
  const double off_max = std::abs(comp.offset[0]) + std::abs(comp.offset[1]) * dt_max +
                         std::abs(comp.offset[2]) * dt_max * dt_max;
  const double scale_max = std::abs(comp.s0) *
                           (1.0 + std::abs(comp.s1) * dt_max +
                            std::abs(comp.s2) * dt_max * dt_max);
  const double comp_out = (y + off_max / vref) * scale_max;
  out.add("sense.compensation", "Q1_22", comp_out, q1_22,
          (y_l1 + off_max / vref) * scale_max,
          "(x + |offset(T)|)·|scale(T)| over T ∈ [" + fmt(in.temp_lo_c) + ", " +
              fmt(in.temp_hi_c) + "] °C: |offset|≤" + fmt(off_max) + " V, |scale|≤" +
              fmt(scale_max));
  const double final_out = comp_out + cfg.output_offset / vref;
  out.add("sense.output", "Q1_22", final_out, q1_22,
          (y_l1 + off_max / vref) * scale_max + cfg.output_offset / vref,
          "compensated rate + " + fmt(cfg.output_offset) + " V null offset");

  return std::move(out.stages);
}

std::vector<StageRange> drive_loop_ranges(const core::DriveLoopConfig& cfg,
                                          const RangeInputSpec& in) {
  StageList out;
  const double vref = in.vref_v;
  const double a_fs = in.adc_rail_v / vref;
  constexpr double q1_14 = format_max<fx::Q1_14>();
  constexpr double q1_22 = format_max<fx::Q1_22>();

  out.add("drive.adc", "Q1_14", a_fs, q1_14, a_fs,
          "primary-pickoff ADC clamps at the reference rail");
  out.add("drive.nco.carrier", "Q1_14", 1.0, q1_14, 1.0,
          "unit-amplitude sine/cosine lookup");

  // PD correlators: pickoff × unit carrier, then the 400 Hz low-pass.
  const auto lpf = dsp::design_biquad_lowpass(cfg.pll.pd_lpf_hz, 0.707, cfg.pll.fs);
  const double h0 = dsp::biquad_magnitude(lpf, 0.0, cfg.pll.fs);
  const double h2f = dsp::biquad_magnitude(lpf, 2.0 * cfg.pll.f_min, cfg.pll.fs);
  const double corr = a_fs / 2.0 * (h0 + h2f);
  out.add("drive.pll.correlator", "Q1_22", corr, q1_22, a_fs * biquad_l1(lpf),
          "A/2·(|H(0)|+|H(2f_min)|) with |H(2f)|=" + fmt(h2f));
  out.add("drive.pll.pd", "Q1_22", 1.0, q1_22, 1.0,
          "amplitude-normalized phase detector: |i_f| / hypot(i_f, q_f) ≤ 1");
  out.add("drive.pll.amplitude", "Q1_22", 2.0 * corr, q1_22, 2.0 * corr,
          "2·hypot of the two correlators");

  // Loop integrator and tuning word live in cycles-per-sample units (f/fs).
  const double tune_max =
      std::max(std::abs(cfg.pll.f_min - cfg.pll.f_center),
               std::abs(cfg.pll.f_max - cfg.pll.f_center)) /
      cfg.pll.fs;
  out.add("drive.pll.integrator", "Q1_22", tune_max, q1_22, tune_max,
          "clamped to [f_min−f_center, f_max−f_center] = ±" +
              fmt(std::abs(cfg.pll.f_max - cfg.pll.f_center)) + " Hz");
  out.add("drive.pll.tuning_word", "Q1_22", cfg.pll.f_max / cfg.pll.fs, q1_22,
          cfg.pll.f_max / cfg.pll.fs,
          "NCO increment clamped to f_max/fs = " + fmt(cfg.pll.f_max / cfg.pll.fs));

  const double err_max = std::max(std::abs(cfg.agc.target - in.adc_rail_v * (1.0 + h2f)),
                                  std::abs(cfg.agc.target)) /
                         vref;
  out.add("drive.agc.error", "Q1_22", err_max, q1_22, err_max,
          "target − detected amplitude, amplitude ≤ rail");
  out.add("drive.agc.integrator", "Q1_22", cfg.agc.gain_max / vref, q1_22,
          cfg.agc.gain_max / vref,
          "anti-windup clamp to [gain_min, gain_max] = [" + fmt(cfg.agc.gain_min) +
              ", " + fmt(cfg.agc.gain_max) + "]");
  out.add("drive.agc.gain", "Q1_22", cfg.agc.gain_max / vref, q1_22,
          cfg.agc.gain_max / vref, "actuator clamp at the drive-DAC rail");
  out.add("drive.output", "Q1_14", cfg.agc.gain_max / vref, q1_14,
          cfg.agc.gain_max / vref,
          "gain_max × unit carrier = " + fmt(cfg.agc.gain_max) + " V ≤ " +
              fmt(in.adc_rail_v) + " V DAC reference");

  return std::move(out.stages);
}

Report check_ranges(const core::SenseChainConfig& sense,
                    const core::DriveLoopConfig& drive,
                    const dsp::CompensationCoeffs& comp, const RangeInputSpec& in) {
  Report rep;
  auto emit = [&rep](const std::vector<StageRange>& stages) {
    for (const StageRange& s : stages) {
      if (s.saturates()) {
        rep.add(Severity::Error, "range", s.stage,
                "worst-case bound " + fmt(s.bound) + " reaches " + s.format +
                    " full scale " + fmt(s.limit) + " — " + s.note);
      } else {
        char head[32];
        std::snprintf(head, sizeof(head), "%.1f dB", s.headroom_db());
        rep.add(Severity::Info, "range", s.stage,
                "bound " + fmt(s.bound) + " of " + s.format + " ±" + fmt(s.limit) +
                    " (" + head + " headroom; adversarial L1 bound " + fmt(s.l1_bound) +
                    ") — " + s.note);
      }
    }
  };
  emit(sense_chain_ranges(sense, comp, in));
  emit(drive_loop_ranges(drive, in));
  rep.add(Severity::Info, "range", "drive.nco.phase",
          "phase accumulator wraps modulo 2π by design (not an overflow)");
  return rep;
}

}  // namespace ascp::analysis
