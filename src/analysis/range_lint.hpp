// range_lint.hpp — static fixed-point range analyzer for the DSP chain.
//
// The paper's flow dimensions every datapath register during the MATLAB
// exploration; the fx:: formats in common/fixed.hpp record that dimensioning
// (Q1_14 ADC/carriers, Q1_22 filter nodes, Q4_18 accumulators, wide CIC
// integrators). This analyzer closes the loop statically: it propagates
// worst-case amplitude bounds through the *actual* shipped chain — the same
// coefficient generators (design_lowpass, design_butterworth_lowpass, RBJ
// biquads) and the same clamps the runtime uses — and proves each node stays
// inside its declared format, or pinpoints the stage and coefficient that
// can saturate. No samples are simulated.
//
// Two bounds are computed per LTI stage:
//   * tone bound — peak gain max_f |H(f)|: the steady-state bound for the
//     sinusoidal/step rate profiles the datasheet characterizes with. This
//     is the bound the saturation-free verdict uses.
//   * L1 bound — sum |h[n]|: the adversarial bound over all bounded inputs,
//     reported as headroom information (an input crafted to match the
//     impulse-response signs could reach it).
//
// Nonlinear/clamped nodes (servo integrators, AGC, PLL tuning) use their
// explicit clamp rails — the clamps make the proof compositional.
#pragma once

#include <string>
#include <vector>

#include "analysis/findings.hpp"
#include "core/drive_loop.hpp"
#include "core/sense_chain.hpp"
#include "dsp/compensation.hpp"

namespace ascp::analysis {

/// Operating conditions the bounds are proven over (datasheet limits).
struct RangeInputSpec {
  double adc_rail_v = 2.5;     ///< sense/primary ADC clamp (= reference) [V]
  double vref_v = 2.5;         ///< full-scale voltage one fx FS unit maps to
  double temp_lo_c = -40.0;    ///< compensation proven over this temperature…
  double temp_hi_c = 85.0;     ///< …range (paper Table 1 operating range)
  double carrier_min_hz = 13e3;///< lowest drive frequency (PLL rail) — sets
                               ///< the worst-case 2f mixer-leakage frequency
};

/// Worst-case bound at one chain node, against its declared format.
struct StageRange {
  std::string stage;     ///< e.g. "sense.fir"
  std::string format;    ///< declared fx format, e.g. "Q1_22"
  double bound = 0.0;    ///< proven worst-case |value| [FS units of vref]
  double limit = 0.0;    ///< format positive full scale [FS units]
  double l1_bound = 0.0; ///< adversarial (L1) bound, 0 when not applicable
  std::string note;      ///< what the bound rests on (clamp, norm, …)

  bool saturates() const { return bound >= limit; }
  double headroom_db() const;
};

/// Bound every node of the sense chain for the given configuration.
std::vector<StageRange> sense_chain_ranges(const core::SenseChainConfig& cfg,
                                           const dsp::CompensationCoeffs& comp,
                                           const RangeInputSpec& in = {});

/// Bound every node of the drive loop (PLL + AGC + NCO + drive DAC).
std::vector<StageRange> drive_loop_ranges(const core::DriveLoopConfig& cfg,
                                          const RangeInputSpec& in = {});

/// Run both and convert to findings: Error for any node whose tone bound
/// reaches its format limit (message names the stage and the dominant
/// coefficient), Info otherwise (bound + headroom).
Report check_ranges(const core::SenseChainConfig& sense,
                    const core::DriveLoopConfig& drive,
                    const dsp::CompensationCoeffs& comp,
                    const RangeInputSpec& in = {});

}  // namespace ascp::analysis
