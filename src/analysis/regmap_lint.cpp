#include "analysis/regmap_lint.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "platform/platform.hpp"

namespace ascp::analysis {
namespace {

std::string hex4(std::uint32_t v) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%04X", v & 0xFFFF);
  return std::string("0x") + buf;
}

/// Half-open byte range on the XDATA bus, used for overlap checks across
/// both register windows and plain memories.
struct Range {
  std::string what;
  std::uint32_t lo = 0;  // inclusive
  std::uint32_t hi = 0;  // exclusive
};

void check_fields(const BlockSpec& b, const RegSpec& r, Report& rep) {
  const std::string loc = b.name + "." + r.name;
  std::uint16_t used = 0;
  std::set<std::string> names;
  for (const FieldSpec& f : r.fields) {
    if (f.width <= 0) {
      rep.add(Severity::Error, "regmap", loc,
              "zero-width field '" + f.name + "' declares no bits");
      continue;
    }
    if (f.lsb < 0 || f.lsb + f.width > 16) {
      rep.add(Severity::Error, "regmap", loc,
              "field '" + f.name + "' spans bits " + std::to_string(f.lsb) + ".." +
                  std::to_string(f.lsb + f.width - 1) + ", outside the 16-bit register");
      continue;
    }
    const auto mask = static_cast<std::uint16_t>(((1u << f.width) - 1u) << f.lsb);
    if (used & mask)
      rep.add(Severity::Error, "regmap", loc,
              "field '" + f.name + "' overlaps a previously declared field");
    used |= mask;
    if (!names.insert(f.name).second)
      rep.add(Severity::Error, "regmap", loc, "duplicate field name '" + f.name + "'");
    if (f.reserved && f.writable)
      rep.add(Severity::Error, "regmap", loc,
              "reserved field '" + f.name + "' must not be writable");
    if (!r.writable && f.writable && !f.reserved)
      rep.add(Severity::Error, "regmap", loc,
              "writable field '" + f.name + "' inside read-only register — host writes "
              "would be silently dropped by the bridge");
  }
}

}  // namespace

const BlockSpec* RegMapSpec::block_at(std::uint16_t byte_addr) const {
  for (const BlockSpec& b : blocks) {
    const std::uint32_t end = b.base + 2u * b.num_regs;
    if (byte_addr >= b.base && byte_addr < end) return &b;
  }
  return nullptr;
}

const RegSpec* RegMapSpec::reg_at(const BlockSpec& block, std::uint16_t word_offset) const {
  for (const RegSpec& r : block.regs)
    if (r.offset == word_offset) return &r;
  return nullptr;
}

Report check_regmap(const RegMapSpec& map) {
  Report rep;

  // ---- window-level checks -------------------------------------------------
  std::vector<Range> ranges;
  std::set<std::string> block_names;
  for (const MemRegion& m : map.memories) {
    if (m.bytes == 0) continue;
    if (m.base + m.bytes > 0x10000u)
      rep.add(Severity::Error, "regmap", m.name,
              "memory region " + hex4(m.base) + "+" + std::to_string(m.bytes) +
                  " wraps past the 16-bit XDATA space");
    ranges.push_back(Range{"memory '" + m.name + "'", m.base, m.base + m.bytes});
  }
  for (const BlockSpec& b : map.blocks) {
    if (!block_names.insert(b.name).second)
      rep.add(Severity::Error, "regmap", b.name, "duplicate block name");
    if (b.num_regs == 0) {
      rep.add(Severity::Error, "regmap", b.name, "window maps zero registers");
      continue;
    }
    if (b.base & 1)
      rep.add(Severity::Error, "regmap", b.name,
              "window base " + hex4(b.base) +
                  " is odd — 16-bit bridge registers must be word aligned");
    const std::uint32_t end = b.base + 2u * b.num_regs;
    if (end > 0x10000u)
      rep.add(Severity::Error, "regmap", b.name,
              "window " + hex4(b.base) + "+" + std::to_string(2 * b.num_regs) +
                  " bytes wraps past the 16-bit XDATA space");
    for (const Range& other : ranges) {
      if (b.base < other.hi && other.lo < end)
        rep.add(Severity::Error, "regmap", b.name,
                "window [" + hex4(b.base) + ", " + hex4(end) + ") overlaps " + other.what);
    }
    ranges.push_back(Range{"block '" + b.name + "'", b.base, end});
  }

  // ---- register-level checks ----------------------------------------------
  std::map<std::string, std::string> global_names;  // reg name -> block
  for (const BlockSpec& b : map.blocks) {
    std::set<std::uint16_t> offsets;
    std::set<std::string> names;
    for (const RegSpec& r : b.regs) {
      const std::string loc = b.name + "." + r.name;
      if (r.offset >= b.num_regs)
        rep.add(Severity::Error, "regmap", loc,
                "register at word offset " + std::to_string(r.offset) +
                    " lies outside the " + std::to_string(b.num_regs) + "-register window");
      if (!offsets.insert(r.offset).second)
        rep.add(Severity::Error, "regmap", loc,
                "two registers share word offset " + std::to_string(r.offset));
      if (!names.insert(r.name).second)
        rep.add(Severity::Error, "regmap", loc, "duplicate register name in block");
      const auto [it, fresh] = global_names.try_emplace(r.name, b.name);
      if (!fresh && it->second != b.name)
        rep.add(Severity::Warning, "regmap", loc,
                "register name also used by block '" + it->second +
                    "' — ambiguous in symbol tables");
      check_fields(b, r, rep);
    }
  }
  return rep;
}

RegMapSpec platform_regmap(platform::McuSubsystem& sys) {
  RegMapSpec map;

  // Memories first: XDATA RAM from 0 and (prototype builds) the program RAM.
  map.memories.push_back(
      MemRegion{"xdata_ram", 0, static_cast<std::uint32_t>(sys.bus().ram_size())});
  if (sys.bus().program_size())
    map.memories.push_back(
        MemRegion{"prog_ram", sys.bus().program_base(), sys.bus().program_size()});

  // Fixed peripheral register layouts (the hardware truth, from the block
  // headers — keep in sync with spi.hpp / timer16.hpp / watchdog.hpp /
  // sram_ctrl.hpp).
  const auto rw = [](std::string n, std::uint16_t off,
                     std::vector<FieldSpec> f = {}) {
    return RegSpec{std::move(n), off, true, std::move(f)};
  };
  const auto ro = [](std::string n, std::uint16_t off,
                     std::vector<FieldSpec> f = {}) {
    return RegSpec{std::move(n), off, false, std::move(f)};
  };
  const auto status_bit = [](std::string n, int lsb) {
    return FieldSpec{std::move(n), lsb, 1, false, false};
  };

  std::map<std::string, std::vector<RegSpec>> peripheral_regs;
  peripheral_regs["spi"] = {
      rw("SPI_DATA", 0),
      rw("SPI_CTRL", 1, {FieldSpec{"CS", 0, 1, true, false}}),
      ro("SPI_STATUS", 2, {status_bit("DONE", 0)}),
  };
  peripheral_regs["timer"] = {
      rw("TMR_COUNT", 0),
      rw("TMR_RELOAD", 1),
      rw("TMR_CTRL", 2,
         {FieldSpec{"RUN", 0, 1, true, false}, FieldSpec{"CLR_EXPIRED", 1, 1, true, false}}),
      ro("TMR_STATUS", 3, {status_bit("EXPIRED", 0)}),
  };
  peripheral_regs["watchdog"] = {
      rw("WDT_KICK", 0),
      rw("WDT_PERIOD", 1),
      rw("WDT_CTRL", 2, {FieldSpec{"ENABLE", 0, 1, true, false}}),
      ro("WDT_STATUS", 3, {status_bit("BITTEN", 0)}),
  };
  peripheral_regs["sram"] = {
      rw("TRC_CTRL", 0,
         {FieldSpec{"ARM", 0, 1, true, false}, FieldSpec{"RST_WPTR", 1, 1, true, false}}),
      rw("TRC_NODE", 1),
      rw("TRC_DECIM", 2),
      ro("TRC_COUNT", 3),
      rw("TRC_RDPTR", 4),
      ro("TRC_DATA", 5),
      ro("TRC_STATUS", 6, {status_bit("FULL", 0), status_bit("ARMED", 1)}),
  };

  for (const auto& w : sys.bus().mapped_windows()) {
    BlockSpec block;
    block.name = w.name;
    block.base = w.base;
    block.num_regs = static_cast<std::uint16_t>(w.bytes / 2);
    if (w.name == "regfile") {
      // Populate from the live RegisterFile, including declared bit fields.
      for (const auto& e : sys.regs().dump()) {
        RegSpec r;
        r.name = e.name;
        r.offset = e.addr;
        r.writable = e.kind == platform::RegKind::Config;
        if (e.fields)
          for (const auto& f : *e.fields)
            r.fields.push_back(FieldSpec{f.name, f.lsb, f.width, f.writable, f.reserved});
        block.regs.push_back(std::move(r));
      }
    } else if (const auto it = peripheral_regs.find(w.name); it != peripheral_regs.end()) {
      block.regs = it->second;
    }
    map.blocks.push_back(std::move(block));
  }
  return map;
}

RegMapSpec parse_regmap(const std::string& text, Report& diags) {
  RegMapSpec map;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  BlockSpec* block = nullptr;
  RegSpec* reg = nullptr;

  const auto where = [&] { return "line " + std::to_string(lineno); };
  const auto parse_num = [&](const std::string& tok, std::uint32_t& out) {
    try {
      std::size_t used = 0;
      out = static_cast<std::uint32_t>(std::stoul(tok, &used, 0));
      if (used != tok.size()) throw std::invalid_argument(tok);
      return true;
    } catch (const std::exception&) {
      diags.add(Severity::Error, "regmap", where(), "bad number '" + tok + "'");
      return false;
    }
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;

    if (kw == "block") {
      std::string name, base, nregs;
      std::uint32_t b = 0, n = 0;
      if (!(ls >> name >> base >> nregs) || !parse_num(base, b) || !parse_num(nregs, n)) {
        diags.add(Severity::Error, "regmap", where(), "expected: block <name> <base> <num_regs>");
        continue;
      }
      map.blocks.push_back(BlockSpec{name, static_cast<std::uint16_t>(b),
                                     static_cast<std::uint16_t>(n), {}});
      block = &map.blocks.back();
      reg = nullptr;
    } else if (kw == "mem") {
      std::string name, base, bytes;
      std::uint32_t b = 0, n = 0;
      if (!(ls >> name >> base >> bytes) || !parse_num(base, b) || !parse_num(bytes, n)) {
        diags.add(Severity::Error, "regmap", where(), "expected: mem <name> <base> <bytes>");
        continue;
      }
      map.memories.push_back(MemRegion{name, b, n});
    } else if (kw == "reg") {
      std::string name, off, access;
      std::uint32_t o = 0;
      if (!block) {
        diags.add(Severity::Error, "regmap", where(), "'reg' before any 'block'");
        continue;
      }
      if (!(ls >> name >> off >> access) || !parse_num(off, o) ||
          (access != "rw" && access != "ro")) {
        diags.add(Severity::Error, "regmap", where(), "expected: reg <name> <offset> rw|ro");
        continue;
      }
      block->regs.push_back(
          RegSpec{name, static_cast<std::uint16_t>(o), access == "rw", {}});
      reg = &block->regs.back();
    } else if (kw == "field") {
      std::string name, lsb, width, access;
      std::uint32_t l = 0, w = 0;
      if (!reg) {
        diags.add(Severity::Error, "regmap", where(), "'field' before any 'reg'");
        continue;
      }
      if (!(ls >> name >> lsb >> width >> access) || !parse_num(lsb, l) ||
          !parse_num(width, w) || (access != "rw" && access != "ro" && access != "rsvd")) {
        diags.add(Severity::Error, "regmap", where(),
                  "expected: field <name> <lsb> <width> rw|ro|rsvd");
        continue;
      }
      reg->fields.push_back(FieldSpec{name, static_cast<int>(l), static_cast<int>(w),
                                      access == "rw", access == "rsvd"});
    } else {
      diags.add(Severity::Error, "regmap", where(), "unknown directive '" + kw + "'");
    }
  }
  return map;
}

}  // namespace ascp::analysis
