// regmap_lint.hpp — static register-map checker.
//
// The paper's platform lives or dies on its register fabric: analog trims,
// DSP configuration, safety DTCs and the bridge peripherals are all reached
// through memory-mapped registers, from C++, from the 8051 and over JTAG.
// A map mistake (two blocks claiming the same bridge addresses, a register
// declared outside its window, a field wider than its register) is an
// integration bug the paper's "pre-verified platform" flow is supposed to
// exclude *before* anything is simulated. This checker makes that claim
// real: it walks a declarative RegMapSpec — built from the live platform's
// bridge windows and RegisterFile contents, or parsed from a fixture file —
// and verifies the whole map without touching a single sample.
//
// Checked properties:
//   * windows: non-empty, word-aligned base, no wrap past the 16-bit XDATA
//     space, no overlap with each other or with RAM / program-RAM regions
//   * registers: inside their window, unique offsets and names per block,
//     globally unique names (warning), access kind consistent with fields
//   * fields: non-zero width, within 16 bits, non-overlapping, no writable
//     field inside a read-only (status) register, reserved fields never
//     writable
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/findings.hpp"

namespace ascp::platform {
class McuSubsystem;
}

namespace ascp::analysis {

struct FieldSpec {
  std::string name;
  int lsb = 0;
  int width = 1;
  bool writable = true;
  bool reserved = false;
};

struct RegSpec {
  std::string name;
  std::uint16_t offset = 0;  ///< word index inside the block window
  bool writable = true;      ///< false: STATUS register (hardware-owned)
  std::vector<FieldSpec> fields;
};

struct BlockSpec {
  std::string name;
  std::uint16_t base = 0;      ///< byte address on the bridged XDATA bus
  std::uint16_t num_regs = 0;  ///< window size in 16-bit word registers
  std::vector<RegSpec> regs;
};

/// Plain memory region (XDATA RAM, program RAM) competing for the same
/// address space as the register windows.
struct MemRegion {
  std::string name;
  std::uint32_t base = 0;
  std::uint32_t bytes = 0;
};

struct RegMapSpec {
  std::vector<BlockSpec> blocks;
  std::vector<MemRegion> memories;

  const BlockSpec* block_at(std::uint16_t byte_addr) const;  ///< nullptr when unmapped
  const RegSpec* reg_at(const BlockSpec& block, std::uint16_t word_offset) const;
};

/// Snapshot the live platform: every bridge window mapped on the bus, the
/// RegisterFile contents (with declared fields) for the "regfile" window,
/// the known peripheral register layouts (SPI/timer/watchdog/SRAM), and the
/// RAM / program-RAM regions.
RegMapSpec platform_regmap(platform::McuSubsystem& sys);

/// Run every static check over the map.
Report check_regmap(const RegMapSpec& map);

/// Parse the fixture format used by tests/analysis/fixtures and the CLI's
/// --map mode. Line-oriented, '#' comments:
///   block <name> <base> <num_regs>
///   reg   <name> <offset> rw|ro
///   field <name> <lsb> <width> rw|ro|rsvd
///   mem   <name> <base> <bytes>
/// reg lines attach to the last block, field lines to the last reg.
/// Syntax problems are reported into `diags` as errors.
RegMapSpec parse_regmap(const std::string& text, Report& diags);

}  // namespace ascp::analysis
