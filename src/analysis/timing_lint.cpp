#include "analysis/timing_lint.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <numeric>
#include <optional>

#include "analysis/cfg.hpp"

namespace ascp::analysis {
namespace {

constexpr long kUnbounded = -1;
/// Clamp for bound × body products so pathological nests cannot overflow.
constexpr long kCycleCeiling = 1'000'000'000'000L;

std::string hex16(std::uint16_t v) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%04X", v);
  return buf;
}

/// Direct-address destination of an instruction, if it writes one (the
/// firmware analyzer has the same table for its store checks).
std::optional<std::uint8_t> direct_write_dest(const Insn& in) {
  switch (in.opcode()) {
    case 0x05: case 0x15:  // INC/DEC dir
    case 0x42: case 0x43:  // ORL dir,…
    case 0x52: case 0x53:  // ANL dir,…
    case 0x62: case 0x63:  // XRL dir,…
    case 0x75:             // MOV dir,#imm
    case 0xC5:             // XCH A,dir
    case 0xD0:             // POP dir
    case 0xD5:             // DJNZ dir,rel
    case 0xF5:             // MOV dir,A
      return in.bytes[1];
    case 0x85:             // MOV dst,src — src is encoded first
      return in.bytes[2];
    default:
      if ((in.opcode() & 0xF8) == 0x88) return in.bytes[1];  // MOV dir,Rn
      if (in.opcode() == 0x86 || in.opcode() == 0x87) return in.bytes[1];  // MOV dir,@Ri
      return std::nullopt;
  }
}

/// Does the instruction read or write direct address `dir` (operand view —
/// bit accesses are excluded; the cache data window is not bit-addressable)?
bool touches_direct(const Insn& in, std::uint8_t dir) {
  const std::uint8_t op = in.opcode();
  switch (op) {
    case 0x05: case 0x15: case 0x25: case 0x35:  // INC/DEC/ADD/ADDC dir
    case 0x42: case 0x43: case 0x45:             // ORL
    case 0x52: case 0x53: case 0x55:             // ANL
    case 0x62: case 0x63: case 0x65:             // XRL
    case 0x75: case 0x86: case 0x87:             // MOV dir,#imm / dir,@Ri
    case 0xB5:                                   // CJNE A,dir,rel
    case 0xC0: case 0xC5: case 0xD0: case 0xD5:  // PUSH/XCH/POP/DJNZ dir
    case 0xE5: case 0xF5:                        // MOV A,dir / dir,A
      if (in.bytes[1] == dir) return true;
      break;
    case 0x85:  // MOV dst,src — both operands are direct
      if (in.bytes[1] == dir || in.bytes[2] == dir) return true;
      break;
    default:
      if ((op & 0xF8) == 0x88 && in.bytes[1] == dir) return true;  // MOV dir,Rn
      if ((op & 0xF8) == 0xA8 && in.bytes[1] == dir) return true;  // MOV Rn,dir
      if ((op == 0xA6 || op == 0xA7) && in.bytes[1] == dir) return true;  // MOV @Ri,dir
      break;
  }
  return false;
}

/// Does the instruction write register-bank slot `n` (bank 0)?
bool writes_rn(const Insn& in, int n) {
  const std::uint8_t op = in.opcode();
  const int low = op & 0x07;
  if (low == n) {
    const std::uint8_t hi = op & 0xF8;
    if (hi == 0x78 || hi == 0xA8 || hi == 0x08 || hi == 0x18 || hi == 0xC8 ||
        hi == 0xD8 || hi == 0xF8)
      return true;
  }
  if (const auto d = direct_write_dest(in); d && *d == n) return true;  // bank 0 alias
  return false;
}

long lcm_capped(long a, long b, long cap) {
  const long g = std::gcd(a, b);
  const long l = (a / g) * b;
  return (l > cap || l <= 0) ? cap + 1 : l;
}

/// One region of code: a node set plus the successor edges inside it.
struct Region {
  std::set<std::uint16_t> nodes;
  std::map<std::uint16_t, std::vector<std::uint16_t>> succ;
};

class TimingAnalysis {
 public:
  TimingAnalysis(const FirmwareImage& fw, const TimingOptions& opt)
      : fw_(fw), opt_(opt) {}

  WcetResult run() {
    if (fw_.image.empty()) {
      res_.report.add(Severity::Error, "timing", fw_.name, "empty firmware image");
      return std::move(res_);
    }
    // The firmware analyzer already diagnoses CFG-level problems; build the
    // same graph silently and only add timing findings on top.
    cfg_ = build_cfg(fw_, nullptr);
    if (!cfg_.entry_ok) {
      res_.report.add(Severity::Error, "timing", fw_.name,
                      "entry point outside the image — timing analysis skipped");
      return std::move(res_);
    }
    movx_dests_ = resolve_movx_stores(cfg_);
    recover_uart_config();

    const Region top = routine_region(fw_.entry);
    classify_main_loops(top);

    // Routines first (bottom-up memoization), then the init path and the
    // main-loop rounds, then interrupt paths.
    for (const std::uint16_t e : cfg_.routine_entries) {
      const long c = routine_metric(e, kMetricCycles);
      add_function(FunctionWcet::Kind::Routine, "sub_" + hex16(e), e, c);
    }

    const long init = region_metric(top, fw_.entry, kMetricCycles);
    add_function(FunctionWcet::Kind::TopLevel, "entry", fw_.entry, init);

    for (const auto& [header, scc] : main_loops_) analyze_main_loop(header, scc, top);
    analyze_interrupts();

    std::sort(res_.functions.begin(), res_.functions.end(),
              [](const FunctionWcet& a, const FunctionWcet& b) { return a.entry < b.entry; });
    return std::move(res_);
  }

 private:
  static constexpr int kMetricCycles = 0;  ///< busy machine cycles
  static constexpr int kMetricSbuf = 1;    ///< SBUF (UART TX) stores

  std::string at(std::uint16_t addr) const { return fw_.name + ":" + hex16(addr); }

  void add_function(FunctionWcet::Kind kind, std::string name, std::uint16_t entry,
                    long cycles) {
    FunctionWcet f;
    f.kind = kind;
    f.name = std::move(name);
    f.entry = entry;
    f.bounded = cycles >= 0;
    f.cycles = cycles < 0 ? 0 : cycles;
    if (f.bounded)
      res_.report.add(Severity::Info, "timing", at(entry),
                      "WCET " + f.name + " = " + std::to_string(f.cycles) +
                          " busy cycle(s)");
    res_.functions.push_back(std::move(f));
  }

  // ---- per-instruction costs ----------------------------------------------
  long insn_cost(const Insn& in, int metric) const {
    if (metric == kMetricSbuf) {
      const auto d = direct_write_dest(in);
      return d && *d == 0x99 ? 1 : 0;  // SBUF
    }
    long c = opcode_cycles(in.opcode());
    if (opt_.cache_miss_penalty > 0 && touches_direct(in, opt_.cache_data_sfr))
      c += opt_.cache_miss_penalty;  // assume every access misses
    return c;
  }

  /// Node cost including the callee for CALL nodes; kUnbounded propagates.
  long node_cost(std::uint16_t addr, const Insn& in, int metric) {
    long c = insn_cost(in, metric);
    if (in.flow == Flow::Call) {
      if (cfg_.in_image(in.target)) {
        const long callee = routine_metric(in.target, metric);
        if (callee == kUnbounded) return kUnbounded;
        c += callee;
      } else if (metric == kMetricCycles && external_call_warned_.insert(addr).second) {
        res_.report.add(Severity::Warning, "timing", at(addr),
                        "call to code outside the image at " + hex16(in.target) +
                            " — WCET excludes the callee");
      }
    }
    return c;
  }

  // ---- regions -------------------------------------------------------------
  Region routine_region(std::uint16_t entry) const {
    Region rg;
    std::deque<std::uint16_t> work{entry};
    while (!work.empty()) {
      const std::uint16_t a = work.front();
      work.pop_front();
      if (!cfg_.insns.contains(a) || !rg.nodes.insert(a).second) continue;
      if (const auto s = cfg_.succ.find(a); s != cfg_.succ.end())
        for (const std::uint16_t n : s->second) work.push_back(n);
    }
    for (const std::uint16_t a : rg.nodes)
      if (const auto s = cfg_.succ.find(a); s != cfg_.succ.end())
        for (const std::uint16_t n : s->second)
          if (rg.nodes.contains(n)) rg.succ[a].push_back(n);
    return rg;
  }

  long routine_metric(std::uint16_t entry, int metric) {
    const std::uint32_t key = (static_cast<std::uint32_t>(entry) << 1) | metric;
    if (const auto it = routine_memo_.find(key); it != routine_memo_.end())
      return it->second;
    if (routines_on_stack_.contains(entry)) {
      if (metric == kMetricCycles && recursion_reported_.insert(entry).second)
        res_.report.add(Severity::Error, "timing", at(entry),
                        "recursive call chain — WCET unbounded");
      return kUnbounded;
    }
    routines_on_stack_.insert(entry);
    const Region rg = routine_region(entry);
    const long c = region_metric(rg, entry, metric);
    routines_on_stack_.erase(entry);
    routine_memo_[key] = c;
    return c;
  }

  /// Unique loop header of `scc` within a region entered at `entry`:
  /// the target of every edge entering the SCC from outside (plus the
  /// region entry itself when it lies inside).
  std::optional<std::uint16_t> unique_header(const std::set<std::uint16_t>& scc,
                                             const Region& rg, std::uint16_t entry) {
    std::set<std::uint16_t> headers;
    if (scc.contains(entry)) headers.insert(entry);
    for (const std::uint16_t a : rg.nodes) {
      if (scc.contains(a)) continue;
      if (const auto s = rg.succ.find(a); s != rg.succ.end())
        for (const std::uint16_t n : s->second)
          if (scc.contains(n)) headers.insert(n);
    }
    if (headers.size() != 1) return std::nullopt;
    return *headers.begin();
  }

  /// Longest-path metric over the region's SCC condensation; loops collapse
  /// to bound × body. kUnbounded when any loop lacks a bound.
  long region_metric(const Region& rg, std::uint16_t entry, int metric) {
    const bool report = metric == kMetricCycles;  // findings once, not per metric
    for (const std::uint16_t a : rg.nodes) {
      const Insn& in = cfg_.insns.at(a);
      if (in.flow == Flow::IndirectJump) {
        if (report && indirect_reported_.insert(a).second)
          res_.report.add(Severity::Error, "timing", at(a),
                          "computed jump (JMP @A+DPTR) — WCET cannot be bounded");
        return kUnbounded;
      }
    }

    const auto sccs = strongly_connected(rg.nodes, rg.succ);
    std::map<std::uint16_t, std::size_t> scc_of;
    for (std::size_t i = 0; i < sccs.size(); ++i)
      for (const std::uint16_t a : sccs[i]) scc_of[a] = i;

    std::vector<long> cost(sccs.size(), 0);
    bool unbounded = false;
    for (std::size_t i = 0; i < sccs.size(); ++i) {
      const auto& scc = sccs[i];
      const std::uint16_t first = *scc.begin();
      bool is_loop = scc.size() > 1;
      if (!is_loop) {
        if (const auto s = rg.succ.find(first); s != rg.succ.end())
          is_loop = std::count(s->second.begin(), s->second.end(), first) > 0;
      }
      if (!is_loop) {
        const long c = node_cost(first, cfg_.insns.at(first), metric);
        if (c == kUnbounded) unbounded = true;
        cost[i] = c;
        continue;
      }
      if (main_loops_.contains(*scc.begin()) ||
          (scc.size() > 1 && !main_loops_.empty() &&
           std::any_of(scc.begin(), scc.end(),
                       [this](std::uint16_t a) { return main_loops_.contains(a); }))) {
        cost[i] = 0;  // main loops are terminal; their rounds are bounded apart
        continue;
      }
      const long c = loop_cost(scc, rg, entry, metric, report);
      if (c == kUnbounded) unbounded = true;
      cost[i] = c;
    }
    if (unbounded) return kUnbounded;

    // Condensation DAG longest path from the entry's SCC.
    std::vector<std::set<std::size_t>> dag(sccs.size());
    for (const auto& [a, ss] : rg.succ)
      for (const std::uint16_t n : ss)
        if (scc_of.at(a) != scc_of.at(n)) dag[scc_of.at(a)].insert(scc_of.at(n));

    std::vector<long> dist(sccs.size(), kUnbounded);  // kUnbounded = unreached
    // Process in reverse-topological discovery order: Tarjan emits SCCs in
    // reverse topological order of the condensation, so iterate backwards.
    dist[scc_of.at(entry)] = cost[scc_of.at(entry)];
    long best = dist[scc_of.at(entry)];
    for (std::size_t idx = sccs.size(); idx-- > 0;) {
      if (dist[idx] == kUnbounded) continue;
      best = std::max(best, dist[idx]);
      for (const std::size_t t : dag[idx]) {
        const long d = std::min(dist[idx] + cost[t], kCycleCeiling);
        if (d > dist[t]) dist[t] = d;
      }
    }
    return best;
  }

  /// Cost of one loop SCC: bound × body, where body is the SCC with its back
  /// edges to the header removed. Wait loops cost zero and export their PCs.
  long loop_cost(const std::set<std::uint16_t>& scc, const Region& rg,
                 std::uint16_t region_entry, int metric, bool report) {
    const auto header = unique_header(scc, rg, region_entry);
    if (!header) {
      if (report && irreducible_reported_.insert(*scc.begin()).second)
        res_.report.add(Severity::Error, "timing", at(*scc.begin()),
                        "irreducible loop (multiple entry points) — WCET cannot "
                        "be bounded");
      return kUnbounded;
    }

    std::vector<std::uint16_t> back_srcs;
    for (const std::uint16_t a : scc)
      if (const auto s = rg.succ.find(a); s != rg.succ.end())
        if (std::count(s->second.begin(), s->second.end(), *header) > 0)
          back_srcs.push_back(a);

    long bound_total = 0;
    int waits = 0;
    bool missing = false;
    for (const std::uint16_t src : back_srcs) {
      long bound = kUnbounded;
      bool wait = false;
      if (const auto it = fw_.loop_annots.find(src); it != fw_.loop_annots.end()) {
        wait = it->second.wait;
        bound = it->second.bound;
      } else {
        bound = infer_counted_bound(scc, src, *header);
      }
      if (wait) {
        ++waits;
        continue;
      }
      if (bound <= 0) {
        missing = true;
        if (report && unbounded_reported_.insert(src).second)
          res_.report.add(
              Severity::Error, "timing", at(src),
              "unbounded loop: back edge " + cfg_.insns.at(src).text() + " -> " +
                  hex16(*header) +
                  " has neither a counted DJNZ/CJNE idiom nor a ;@loop-bound/"
                  ";@loop-wait annotation");
        continue;
      }
      bound_total = std::min(bound_total + bound, kCycleCeiling);
    }

    if (waits == static_cast<int>(back_srcs.size()) && waits > 0) {
      // Pure wait loop: spinning is I/O wait, not busy time. Everything the
      // loop encloses (including retries of bounded work, e.g. the boot
      // ROM's download-retry cycle) is excluded with it.
      res_.wait_pcs.insert(scc.begin(), scc.end());
      return 0;
    }
    if (waits > 0) {
      if (report && mixed_reported_.insert(*header).second)
        res_.report.add(Severity::Error, "timing", at(*header),
                        "loop mixes ;@loop-wait and counted back edges — "
                        "annotate all back edges consistently");
      return kUnbounded;
    }
    if (missing) return kUnbounded;

    Region body;
    body.nodes = scc;
    for (const std::uint16_t a : scc)
      if (const auto s = rg.succ.find(a); s != rg.succ.end())
        for (const std::uint16_t n : s->second)
          if (scc.contains(n) && n != *header) body.succ[a].push_back(n);
    const long body_cost = region_metric(body, *header, metric);
    if (body_cost == kUnbounded) return kUnbounded;
    const long total = bound_total * std::max(body_cost, 0L);
    return std::min(total, kCycleCeiling);
  }

  /// Counted-loop inference for DJNZ Rn / DJNZ dir / CJNE Rn,#imm back
  /// edges: find the initializing MOV before the header, require the
  /// counter untouched inside the loop (no calls — a callee could clobber
  /// it). Returns the iteration bound or kUnbounded.
  long infer_counted_bound(const std::set<std::uint16_t>& scc, std::uint16_t src,
                           std::uint16_t header) {
    const Insn& br = cfg_.insns.at(src);
    const std::uint8_t op = br.opcode();
    for (const std::uint16_t a : scc)
      if (cfg_.insns.at(a).flow == Flow::Call) return kUnbounded;

    // Nearest initializer strictly before the header and outside the loop.
    const auto find_init = [&](auto&& matches) -> std::optional<int> {
      std::optional<int> init;
      for (const auto& [a, in] : cfg_.insns) {
        if (a >= header) break;
        if (scc.contains(a)) continue;
        if (const auto v = matches(in)) init = *v;
      }
      return init;
    };

    if ((op & 0xF8) == 0xD8) {  // DJNZ Rn,rel
      const int n = op & 0x07;
      for (const std::uint16_t a : scc)
        if (a != src && writes_rn(cfg_.insns.at(a), n)) return kUnbounded;
      const auto init = find_init([n](const Insn& in) -> std::optional<int> {
        if (in.opcode() == (0x78 | n)) return in.bytes[1];  // MOV Rn,#imm
        return std::nullopt;
      });
      if (!init) return kUnbounded;
      return *init == 0 ? 256 : *init;
    }
    if (op == 0xD5) {  // DJNZ dir,rel
      const std::uint8_t dir = br.bytes[1];
      for (const std::uint16_t a : scc) {
        if (a == src) continue;
        if (const auto d = direct_write_dest(cfg_.insns.at(a)); d && *d == dir)
          return kUnbounded;
      }
      const auto init = find_init([dir](const Insn& in) -> std::optional<int> {
        if (in.opcode() == 0x75 && in.bytes[1] == dir) return in.bytes[2];
        return std::nullopt;
      });
      if (!init) return kUnbounded;
      return *init == 0 ? 256 : *init;
    }
    if ((op & 0xF8) == 0xB8) {  // CJNE Rn,#imm,rel
      const int n = op & 0x07;
      const int target = br.bytes[1];
      int incs = 0, decs = 0;
      for (const std::uint16_t a : scc) {
        const Insn& in = cfg_.insns.at(a);
        if (a == src) continue;
        if (in.opcode() == (0x08 | n)) { ++incs; continue; }  // INC Rn
        if (in.opcode() == (0x18 | n)) { ++decs; continue; }  // DEC Rn
        if (writes_rn(in, n)) return kUnbounded;
      }
      if (incs + decs != 1) return kUnbounded;
      const auto init = find_init([n](const Insn& in) -> std::optional<int> {
        if (in.opcode() == (0x78 | n)) return in.bytes[1];
        return std::nullopt;
      });
      if (!init) return kUnbounded;
      const int dist = incs ? (target - *init) & 0xFF : (*init - target) & 0xFF;
      return dist == 0 ? 256 : dist;
    }
    return kUnbounded;
  }

  // ---- main loops ----------------------------------------------------------
  void classify_main_loops(const Region& top) {
    for (const auto& scc : strongly_connected(top.nodes, top.succ)) {
      bool is_loop = scc.size() > 1;
      const std::uint16_t first = *scc.begin();
      if (!is_loop) {
        if (const auto s = top.succ.find(first); s != top.succ.end())
          is_loop = std::count(s->second.begin(), s->second.end(), first) > 0;
      }
      if (!is_loop) continue;
      bool escapes = false;
      for (const std::uint16_t a : scc)
        if (const auto s = top.succ.find(a); s != top.succ.end())
          for (const std::uint16_t n : s->second)
            if (!scc.contains(n)) escapes = true;
      if (escapes) continue;
      const auto header = unique_header(scc, top, fw_.entry);
      if (!header) {
        res_.report.add(Severity::Error, "timing", at(first),
                        "irreducible main loop (multiple entry points) — "
                        "round WCET cannot be bounded");
        continue;
      }
      main_loops_[*header] = scc;
      res_.loop_headers.insert(*header);
    }
  }

  void analyze_main_loop(std::uint16_t header, const std::set<std::uint16_t>& scc,
                         const Region& top) {
    // Round body: the SCC with its back edges to the header removed. A
    // ;@loop-wait back edge (e.g. an RI poll that *is* the loop header)
    // additionally exports its source PC as wait time.
    Region body;
    body.nodes = scc;
    for (const std::uint16_t a : scc) {
      const auto s = top.succ.find(a);
      if (s == top.succ.end()) continue;
      bool is_back = false;
      for (const std::uint16_t n : s->second) {
        if (n == header && scc.contains(a)) is_back = true;
        if (scc.contains(n) && n != header) body.succ[a].push_back(n);
      }
      if (is_back) {
        if (const auto it = fw_.loop_annots.find(a);
            it != fw_.loop_annots.end() && it->second.wait)
          res_.wait_pcs.insert(a);
      }
    }

    const long round = region_metric(body, header, kMetricCycles);
    add_function(FunctionWcet::Kind::MainLoop, "loop_" + hex16(header), header, round);
    if (round == kUnbounded) return;

    // UART bytes per round (worst path), for the bandwidth budget.
    const long bytes = region_metric(body, header, kMetricSbuf);
    if (bytes >= 0) {
      res_.uart_bytes_per_round = std::max(res_.uart_bytes_per_round, bytes);
      if (bytes > 0 && res_.uart_byte_cycles > 0) {
        const long serial = bytes * res_.uart_byte_cycles;
        res_.report.add(Severity::Info, "timing", at(header),
                        "UART budget: " + std::to_string(bytes) +
                            " byte(s) per round x " +
                            std::to_string(res_.uart_byte_cycles) +
                            " cycle(s)/frame = " + std::to_string(serial) +
                            " cycle(s) of serialization per round");
      }
    }

    // Watchdog kick interval: if every circuit of the loop passes a kick
    // store, consecutive kicks are at most two rounds apart.
    if (!opt_.kick_addrs.empty()) {
      std::set<std::uint16_t> kick_nodes;
      for (const std::uint16_t a : scc)
        if (const auto it = movx_dests_.find(a);
            it != movx_dests_.end() && opt_.kick_addrs.contains(it->second))
          kick_nodes.insert(a);
      if (!kick_nodes.empty()) {
        // Can a circuit avoid every kick? BFS from the header through the
        // body avoiding kick nodes; reaching a back-edge source means yes.
        std::set<std::uint16_t> back_srcs;
        for (const std::uint16_t a : scc)
          if (const auto s = top.succ.find(a); s != top.succ.end())
            if (std::count(s->second.begin(), s->second.end(), header) > 0)
              back_srcs.insert(a);
        std::set<std::uint16_t> seen;
        std::deque<std::uint16_t> work;
        if (!kick_nodes.contains(header)) work.push_back(header);
        bool avoidable = false;
        while (!work.empty()) {
          const std::uint16_t a = work.front();
          work.pop_front();
          if (!seen.insert(a).second) continue;
          if (back_srcs.contains(a)) avoidable = true;
          if (const auto s = body.succ.find(a); s != body.succ.end())
            for (const std::uint16_t n : s->second)
              if (!kick_nodes.contains(n)) work.push_back(n);
        }
        if (avoidable) {
          res_.report.add(Severity::Warning, "timing", at(header),
                          "main loop kicks the watchdog only conditionally — "
                          "no static kick-interval bound");
        } else {
          const long interval = std::min(2 * round, kCycleCeiling);
          res_.kick_interval_cycles = std::max(res_.kick_interval_cycles, interval);
          res_.report.add(Severity::Info, "timing", at(header),
                          "worst-case watchdog kick interval <= " +
                              std::to_string(interval) + " cycle(s) (2 rounds)");
          if (opt_.watchdog_period_cycles > 0 &&
              interval > opt_.watchdog_period_cycles)
            res_.report.add(Severity::Error, "timing", at(header),
                            "watchdog can bite: kick interval " +
                                std::to_string(interval) + " > period " +
                                std::to_string(opt_.watchdog_period_cycles));
        }
      }
    }
  }

  // ---- interrupts ----------------------------------------------------------
  void analyze_interrupts() {
    // Vectors the image can enable: MOV/ORL IE,#imm and SETB on IE bits.
    std::uint8_t enabled = 0;
    for (const auto& [a, in] : cfg_.insns) {
      if ((in.opcode() == 0x75 || in.opcode() == 0x43) && in.bytes[1] == 0xA8)
        enabled |= in.bytes[2];
      if (in.opcode() == 0xD2 && in.bytes[1] >= 0xA8 && in.bytes[1] <= 0xAF)
        enabled |= static_cast<std::uint8_t>(1u << (in.bytes[1] - 0xA8));
    }
    for (int bit = 0; bit < 5; ++bit) {
      if (!(enabled & (1u << bit))) continue;
      const auto vector = static_cast<std::uint16_t>(0x0003 + 8 * bit);
      if (!cfg_.in_image(vector)) {
        res_.report.add(Severity::Warning, "timing", at(vector),
                        "interrupt enabled but its vector lies outside the image");
        continue;
      }
      // Analyze the handler as its own entry point on a fresh CFG (vectors
      // are not reachable from the reset entry by normal flow).
      FirmwareImage isr_fw = fw_;
      isr_fw.entry = vector;
      TimingAnalysis sub(isr_fw, opt_);
      sub.cfg_ = build_cfg(isr_fw, nullptr);
      sub.movx_dests_ = resolve_movx_stores(sub.cfg_);
      const Region rg = sub.routine_region(vector);
      const long body = sub.region_metric(rg, vector, kMetricCycles);
      res_.report.merge(sub.res_.report);
      res_.wait_pcs.insert(sub.res_.wait_pcs.begin(), sub.res_.wait_pcs.end());
      add_function(FunctionWcet::Kind::Isr, "isr_" + hex16(vector), vector,
                   body == kUnbounded ? kUnbounded : body + 2 /* dispatch */);
    }
  }

  // ---- UART configuration recovery ----------------------------------------
  void recover_uart_config() {
    std::optional<int> scon, th1, tmod;
    for (const auto& [a, in] : cfg_.insns) {
      if (in.opcode() != 0x75) continue;  // MOV dir,#imm
      if (in.bytes[1] == 0x98 && !scon) scon = in.bytes[2];
      if (in.bytes[1] == 0x8D && !th1) th1 = in.bytes[2];
      if (in.bytes[1] == 0x89 && !tmod) tmod = in.bytes[2];
    }
    if (!scon) return;
    const int mode = (*scon >> 6) & 0x03;
    res_.uart_frame_bits = mode == 1 ? 10 : (mode >= 2 ? 11 : 8);
    // Timer-1 mode 2 derives the baud from TH1; otherwise the core uses its
    // fixed fallback bit time (core8051.cpp).
    const bool t1_mode2 = tmod && ((*tmod & 0x30) == 0x20);
    const long bit_cycles = t1_mode2 && th1 ? 32L * (256 - *th1) : 102;
    res_.uart_byte_cycles = res_.uart_frame_bits * bit_cycles;
  }

  const FirmwareImage& fw_;
  const TimingOptions& opt_;
  WcetResult res_;
  Cfg cfg_;
  std::map<std::uint16_t, std::uint16_t> movx_dests_;
  std::map<std::uint16_t, std::set<std::uint16_t>> main_loops_;  ///< header -> SCC

  std::map<std::uint32_t, long> routine_memo_;  ///< (entry<<1|metric) -> cost
  std::set<std::uint16_t> routines_on_stack_;
  std::set<std::uint16_t> recursion_reported_;
  std::set<std::uint16_t> unbounded_reported_;
  std::set<std::uint16_t> irreducible_reported_;
  std::set<std::uint16_t> mixed_reported_;
  std::set<std::uint16_t> indirect_reported_;
  std::set<std::uint16_t> external_call_warned_;
};

}  // namespace

int opcode_cycles(std::uint8_t op) {
  if (op == 0xA4 || op == 0x84) return 4;                    // MUL, DIV
  if ((op & 0x1F) == 0x01 || (op & 0x1F) == 0x11) return 2;  // AJMP, ACALL
  if ((op & 0xF8) == 0xB8) return 2;                         // CJNE Rn,#imm
  if ((op & 0xF8) == 0xD8) return 2;                         // DJNZ Rn
  if ((op & 0xF8) == 0x88) return 2;                         // MOV dir,Rn
  if ((op & 0xF8) == 0xA8) return 2;                         // MOV Rn,dir
  switch (op) {
    case 0x02: case 0x12: case 0x22: case 0x32:  // LJMP LCALL RET RETI
    case 0x80: case 0x73:                        // SJMP, JMP @A+DPTR
    case 0x10: case 0x20: case 0x30:             // JBC JB JNB
    case 0x40: case 0x50: case 0x60: case 0x70:  // JC JNC JZ JNZ
    case 0xB4: case 0xB5: case 0xB6: case 0xB7:  // CJNE A/@Ri forms
    case 0xD5:                                   // DJNZ dir
    case 0xE0: case 0xE2: case 0xE3:             // MOVX A,…
    case 0xF0: case 0xF2: case 0xF3:             // MOVX …,A
    case 0x83: case 0x93:                        // MOVC
    case 0x90: case 0xA3:                        // MOV DPTR,# / INC DPTR
    case 0xC0: case 0xD0:                        // PUSH, POP
    case 0x43: case 0x53: case 0x63:             // ORL/ANL/XRL dir,#imm
    case 0x75: case 0x85: case 0x86: case 0x87:  // MOV dir,# / dir,dir / dir,@Ri
    case 0xA6: case 0xA7:                        // MOV @Ri,dir
    case 0x72: case 0x82: case 0xA0: case 0xB0:  // ORL/ANL C,bit (and /bit)
    case 0x92:                                   // MOV bit,C
      return 2;
    default:
      return 1;
  }
}

const FunctionWcet* WcetResult::find(std::uint16_t entry) const {
  for (const auto& f : functions)
    if (f.entry == entry) return &f;
  return nullptr;
}

WcetResult analyze_wcet(const FirmwareImage& fw, const TimingOptions& opt) {
  return TimingAnalysis(fw, opt).run();
}

Report check_schedule(const ScheduleSpec& spec) {
  Report rep;
  const std::string& loc = spec.name;
  if (spec.cycles_per_tick <= 0) {
    rep.add(Severity::Error, "timing", loc, "schedule has no per-tick cycle budget");
    return rep;
  }
  if (spec.tasks.empty()) {
    rep.add(Severity::Info, "timing", loc, "no tasks registered — trivially schedulable");
    return rep;
  }

  double util = 0.0;
  for (const TaskSpec& t : spec.tasks) {
    if (t.divider < 1 || t.phase < 0 || t.phase >= t.divider) {
      rep.add(Severity::Error, "timing", loc + "/" + t.name,
              "invalid divider/phase (" + std::to_string(t.divider) + "," +
                  std::to_string(t.phase) + ")");
      continue;
    }
    const long period_budget = t.divider * spec.cycles_per_tick;
    util += static_cast<double>(t.cycles) / static_cast<double>(period_budget);
    if (t.cycles > period_budget)
      rep.add(Severity::Error, "timing", loc + "/" + t.name,
              "task demands " + std::to_string(t.cycles) + " cycle(s) per firing but "
              "its period grants only " + std::to_string(period_budget) +
              " — slot overrun");
  }

  char buf[160];
  std::snprintf(buf, sizeof(buf), "utilization %.1f%% of %ld cycle(s)/tick (%zu task(s))",
                100.0 * util, spec.cycles_per_tick, spec.tasks.size());
  rep.add(Severity::Info, "timing", loc, buf);
  if (util > 1.0)
    rep.add(Severity::Error, "timing", loc,
            "task set over-subscribed: total utilization exceeds 100%");
  else if (util > 0.85)
    rep.add(Severity::Warning, "timing", loc,
            "task set within 15% of saturation — no headroom for jitter");

  // Worst-case phase alignment across the hyperperiod.
  constexpr long kHyperCap = 1L << 16;
  long hyper = 1;
  for (const TaskSpec& t : spec.tasks)
    if (t.divider >= 1) hyper = lcm_capped(hyper, t.divider, kHyperCap);
  long peak = 0, peak_tick = 0;
  if (hyper > kHyperCap) {
    for (const TaskSpec& t : spec.tasks) peak += t.cycles;  // assume all align
    rep.add(Severity::Info, "timing", loc,
            "hyperperiod exceeds " + std::to_string(kHyperCap) +
                " ticks — assuming full phase alignment");
  } else {
    for (long tick = 0; tick < hyper; ++tick) {
      long demand = 0;
      for (const TaskSpec& t : spec.tasks)
        if (t.divider >= 1 && t.phase < t.divider && tick % t.divider == t.phase)
          demand += t.cycles;
      if (demand > peak) {
        peak = demand;
        peak_tick = tick;
      }
    }
  }
  std::snprintf(buf, sizeof(buf),
                "worst-case phase alignment: %ld cycle(s) demanded in one tick "
                "(tick %ld of %ld) against a %ld-cycle budget",
                peak, peak_tick, std::min(hyper, kHyperCap), spec.cycles_per_tick);
  rep.add(Severity::Info, "timing", loc, buf);
  if (peak > spec.cycles_per_tick && util <= 1.0)
    rep.add(Severity::Warning, "timing", loc,
            "transient tick overrun at worst alignment — backlog of " +
                std::to_string(peak - spec.cycles_per_tick) +
                " cycle(s) must drain in following ticks");
  return rep;
}

}  // namespace ascp::analysis
