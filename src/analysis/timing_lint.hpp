// timing_lint.hpp — static WCET and schedulability analysis.
//
// The paper's platform runs hard real time: a ~1.92 MHz analog base tick, a
// 240 kHz DSP rate, decimated outputs, and an MCS-51 supervisor earning a
// fixed machine-cycle slice per output sample (20 MHz / 12 clocks per
// cycle). The dynamic profilers (obs::McuProfiler, obs::TaskProfiler)
// *observe* those budgets; this analyzer *proves* them before anything runs:
//
//   * per-opcode machine-cycle table mirroring core8051's execute() exactly
//     (verified instruction-by-instruction by the tier-1 tests)
//   * loop bounds: counted DJNZ/CJNE idioms are inferred from the
//     initializing MOV; every other back edge needs a `;@loop-bound N` or
//     `;@loop-wait` assembler annotation, and a back edge with neither is a
//     hard error — no silent unbounded loops
//   * wait loops (`;@loop-wait`, e.g. UART RI/TI polls) contribute zero
//     busy cycles; their PCs are exported in `wait_pcs` so the dynamic
//     validation harness (bench/wcet_validation) excludes the same spinning
//     when it measures observed costs
//   * interprocedural CALL/RET composition with memoized per-routine WCETs
//     (recursion is diagnosed, mirroring the stack-bound walk)
//   * the top-level's exit-free SCC is classified as the firmware's main
//     loop: its per-round WCET, worst-case watchdog-kick spacing and UART
//     bytes-per-round are bounded instead of demanding a loop bound
//   * interrupt-path WCET for every vector the image enables (2-cycle
//     dispatch + handler-to-RETI longest path)
//   * cache-miss penalties: accesses to the cache controller's CDATA SFR
//     are charged `miss_penalty_cycles` each (the static model assumes
//     every access misses — a sound over-approximation of cache_ctrl)
//
// The schedulability half takes explicit task specs (rate dividers, phase
// offsets, worst-case cycle demand per firing) against a per-tick cycle
// budget: per-task and total utilization, plus the worst-case phase
// alignment over the hyperperiod.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/findings.hpp"
#include "analysis/firmware_lint.hpp"

namespace ascp::analysis {

/// Machine cycles consumed by `opcode`, exactly as core8051::step() accounts
/// them (fixed per opcode — branch outcome and operand values never change
/// the cost on this core, which is what makes the static table exact).
int opcode_cycles(std::uint8_t opcode);

struct TimingOptions {
  /// Cycles charged per access to the cache controller's data-window SFR
  /// (CacheConfig::miss_penalty_cycles). 0 disables the model.
  int cache_miss_penalty = 0;
  /// SFR address of the cache data window (CacheConfig sfr_base + 3).
  std::uint8_t cache_data_sfr = 0xA4;
  /// XDATA byte addresses of the watchdog KICK register. Statically
  /// resolved MOVX stores to these count as kicks for the main-loop
  /// kick-interval bound.
  std::set<std::uint16_t> kick_addrs;
  /// Watchdog period in machine cycles; > 0 turns the kick-interval bound
  /// into a hard check (Error when the main loop can exceed it).
  long watchdog_period_cycles = 0;
};

/// WCET of one analyzed code object.
struct FunctionWcet {
  enum class Kind {
    TopLevel,  ///< entry point up to the main loop (init path)
    Routine,   ///< CALL target, entry to RET (RET included, CALL excluded)
    MainLoop,  ///< exit-free top-level SCC: cycles = one worst-case round
    Isr,       ///< vector dispatch (2 cycles) + handler to RETI
  };
  Kind kind = Kind::Routine;
  std::string name;        ///< "entry", "sub_0x0030", "loop_0x0007", "isr_0x000B"
  std::uint16_t entry = 0;
  bool bounded = false;
  long cycles = 0;         ///< busy-cycle WCET, valid when bounded
};

struct WcetResult {
  Report report;
  std::vector<FunctionWcet> functions;
  /// PCs inside `;@loop-wait` loops: spinning there is I/O wait, not busy
  /// time. The validation harness subtracts cycles retired at these PCs
  /// before comparing observed costs against the static bounds.
  std::set<std::uint16_t> wait_pcs;
  /// Main-loop header PCs (round boundaries for dynamic round measurement).
  std::set<std::uint16_t> loop_headers;

  // UART link budget, statically recovered from the image's init code:
  int uart_frame_bits = 0;        ///< 10 (mode 1) / 11 (modes 2,3), 0 unknown
  long uart_byte_cycles = 0;      ///< machine cycles per frame at the set baud
  long uart_bytes_per_round = -1; ///< max SBUF stores in one main-loop round
  long kick_interval_cycles = -1; ///< worst watchdog-kick spacing, -1 unknown

  const FunctionWcet* find(std::uint16_t entry) const;
};

/// Analyze `fw` bottom-up: CFG (analysis/cfg.hpp), SCC condensation with
/// loop collapsing, longest-path composition. Unbounded constructs produce
/// Error findings and the affected functions report bounded = false.
WcetResult analyze_wcet(const FirmwareImage& fw, const TimingOptions& opt = {});

// ---- schedulability --------------------------------------------------------

/// One periodic obligation: fires every `divider` base ticks at offset
/// `phase`, demanding up to `cycles` machine cycles per firing.
struct TaskSpec {
  std::string name;
  long divider = 1;
  long phase = 0;
  long cycles = 0;
};

struct ScheduleSpec {
  std::string name;          ///< used in finding locations
  double base_rate_hz = 0;   ///< informational (findings quote real time)
  long cycles_per_tick = 0;  ///< cycle budget granted per base tick
  std::vector<TaskSpec> tasks;
};

/// Prove the task set fits its budget: per-task demand vs period budget
/// (Error on overrun), total utilization (Error > 100%, Warning > 85%),
/// worst-case phase alignment over the hyperperiod (Warning when a single
/// tick transiently over-commits).
Report check_schedule(const ScheduleSpec& spec);

}  // namespace ascp::analysis
