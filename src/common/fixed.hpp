// fixed.hpp — compile-time Q-format fixed-point arithmetic.
//
// The paper's DSP chain is hardwired VHDL: every register has a word length
// chosen during the MATLAB design-space exploration. fx::Fixed<I,F> models a
// two's-complement signed value with I integer bits (excluding sign) and F
// fractional bits, with saturating arithmetic — the behaviour a synthesized
// datapath with output saturation exhibits.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace ascp::fx {

/// Rounding applied when discarding fractional bits.
enum class Round {
  Truncate,  ///< floor — cheapest hardware, biased
  Nearest,   ///< round-half-up — one adder, unbiased for typical signals
};

/// Overflow behaviour when a value exceeds the representable range.
enum class Overflow {
  Saturate,  ///< clamp to min/max — standard for signal datapaths
  Wrap,      ///< discard MSBs — models an unprotected accumulator
};

namespace detail {

/// Smallest signed integer type holding at least Bits bits.
template <int Bits>
using int_for = std::conditional_t<
    (Bits <= 8), std::int8_t,
    std::conditional_t<(Bits <= 16), std::int16_t,
                       std::conditional_t<(Bits <= 32), std::int32_t, std::int64_t>>>;

constexpr std::int64_t shift_left(std::int64_t v, int n) {
  return n >= 0 ? static_cast<std::int64_t>(static_cast<std::uint64_t>(v) << n) : v >> -n;
}

/// Arithmetic right shift with round-to-nearest (half away from zero towards +inf).
constexpr std::int64_t shift_right_round(std::int64_t v, int n, Round r) {
  if (n <= 0) return shift_left(v, -n);
  if (r == Round::Nearest) {
    const std::int64_t half = std::int64_t{1} << (n - 1);
    return (v + half) >> n;
  }
  return v >> n;
}

constexpr std::int64_t clamp_to(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace detail

/// Signed fixed-point number: 1 sign bit + I integer bits + F fractional bits.
/// Total width W = 1 + I + F must fit in 63 bits so products are computable
/// in int64 (a product of two 31-bit operands needs 62 bits).
template <int I, int F, Round R = Round::Nearest, Overflow O = Overflow::Saturate>
class Fixed {
  static_assert(I >= 0 && F >= 0, "negative field widths");
  static_assert(1 + I + F <= 32, "width must allow int64 products");

 public:
  static constexpr int kIntBits = I;
  static constexpr int kFracBits = F;
  static constexpr int kWidth = 1 + I + F;
  static constexpr std::int64_t kRawMax = (std::int64_t{1} << (I + F)) - 1;
  static constexpr std::int64_t kRawMin = -(std::int64_t{1} << (I + F));
  static constexpr double kScale = static_cast<double>(std::int64_t{1} << F);
  static constexpr double kLsb = 1.0 / kScale;

  using raw_type = detail::int_for<kWidth>;

  constexpr Fixed() = default;

  /// Quantize a real value. Saturates (or wraps) per policy.
  constexpr explicit Fixed(double v) : raw_(quantize(v)) {}

  /// Reinterpret a raw integer as a fixed-point value (no scaling).
  static constexpr Fixed from_raw(std::int64_t raw) {
    Fixed f;
    f.raw_ = static_cast<raw_type>(handle_overflow(raw));
    return f;
  }

  constexpr double to_double() const { return static_cast<double>(raw_) / kScale; }
  constexpr std::int64_t raw() const { return raw_; }

  static constexpr Fixed max() { return from_raw(kRawMax); }
  static constexpr Fixed min() { return from_raw(kRawMin); }

  friend constexpr Fixed operator+(Fixed a, Fixed b) {
    return from_raw(static_cast<std::int64_t>(a.raw_) + b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) {
    return from_raw(static_cast<std::int64_t>(a.raw_) - b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a) { return from_raw(-static_cast<std::int64_t>(a.raw_)); }

  /// Full-precision product renormalized back to this format.
  friend constexpr Fixed operator*(Fixed a, Fixed b) {
    const std::int64_t p = static_cast<std::int64_t>(a.raw_) * b.raw_;
    return from_raw(detail::shift_right_round(p, F, R));
  }

  friend constexpr bool operator==(Fixed a, Fixed b) { return a.raw_ == b.raw_; }
  friend constexpr auto operator<=>(Fixed a, Fixed b) { return a.raw_ <=> b.raw_; }

  constexpr Fixed& operator+=(Fixed b) { return *this = *this + b; }
  constexpr Fixed& operator-=(Fixed b) { return *this = *this - b; }
  constexpr Fixed& operator*=(Fixed b) { return *this = *this * b; }

  /// Convert to a different Q format with rounding/saturation.
  template <int I2, int F2, Round R2 = R, Overflow O2 = O>
  constexpr Fixed<I2, F2, R2, O2> convert() const {
    const std::int64_t shifted = detail::shift_right_round(raw_, F - F2, R2);
    return Fixed<I2, F2, R2, O2>::from_raw(shifted);
  }

 private:
  static constexpr std::int64_t handle_overflow(std::int64_t raw) {
    if constexpr (O == Overflow::Saturate) {
      return detail::clamp_to(raw, kRawMin, kRawMax);
    } else {
      // Keep the low kWidth bits, sign-extended: modular wrap-around.
      const std::uint64_t mask = (std::uint64_t{1} << kWidth) - 1;
      std::uint64_t u = static_cast<std::uint64_t>(raw) & mask;
      if (u & (std::uint64_t{1} << (kWidth - 1))) u |= ~mask;
      return static_cast<std::int64_t>(u);
    }
  }

  static constexpr raw_type quantize(double v) {
    // Round-half-away-from-zero without <cmath> (keeps this constexpr-friendly).
    const double scaled = v * kScale;
    const double adj = (R == Round::Nearest) ? (scaled >= 0 ? 0.5 : -0.5) : 0.0;
    // Clamp in the double domain first so the int64 cast itself is safe even
    // for wildly out-of-range inputs (cast of out-of-range double is UB).
    double d = scaled + adj;
    const double lo = static_cast<double>(kRawMin);
    const double hi = static_cast<double>(kRawMax);
    if (d < lo) d = lo;
    if (d > hi) d = hi;
    return static_cast<raw_type>(handle_overflow(static_cast<std::int64_t>(d)));
  }

  raw_type raw_{0};
};

/// Chain-standard formats used by the gyro DSP datapath (chosen in the
/// "MATLAB exploration" — here: by the tests in tests/dsp).
using Q1_14 = Fixed<1, 14>;   ///< ±2, ADC samples and unit-amplitude carriers
using Q1_22 = Fixed<1, 22>;   ///< ±2, filter states / high-resolution outputs
using Q4_18 = Fixed<4, 18>;   ///< ±16, accumulators and loop-filter integrators
using Q8_23 = Fixed<8, 23>;   ///< ±256, wide accumulator (CIC stages)

}  // namespace ascp::fx
