#include "common/math.hpp"

#include <algorithm>
#include <cassert>

namespace ascp {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = kPi * x;
  return std::sin(px) / px;
}

double polyval(std::span<const double> coeffs, double x) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

std::vector<double> hann_window(std::size_t n) {
  std::vector<double> w(n, 1.0);
  if (n < 2) return w;
  for (std::size_t i = 0; i < n; ++i)
    w[i] = 0.5 - 0.5 * std::cos(kTwoPi * static_cast<double>(i) / static_cast<double>(n - 1));
  return w;
}

std::vector<double> hamming_window(std::size_t n) {
  std::vector<double> w(n, 1.0);
  if (n < 2) return w;
  for (std::size_t i = 0; i < n; ++i)
    w[i] = 0.54 - 0.46 * std::cos(kTwoPi * static_cast<double>(i) / static_cast<double>(n - 1));
  return w;
}

std::vector<double> blackman_window(std::size_t n) {
  std::vector<double> w(n, 1.0);
  if (n < 2) return w;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = kTwoPi * static_cast<double>(i) / static_cast<double>(n - 1);
    w[i] = 0.42 - 0.5 * std::cos(t) + 0.08 * std::cos(2.0 * t);
  }
  return w;
}

double bessel_i0(double x) {
  // Power series sum_k ((x/2)^k / k!)^2; converges quickly for |x| < ~20.
  const double half = x / 2.0;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k < 64; ++k) {
    term *= (half / k) * (half / k);
    sum += term;
    if (term < 1e-18 * sum) break;
  }
  return sum;
}

std::vector<double> kaiser_window(std::size_t n, double beta) {
  std::vector<double> w(n, 1.0);
  if (n < 2) return w;
  const double denom = bessel_i0(beta);
  const double half = static_cast<double>(n - 1) / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = (static_cast<double>(i) - half) / half;
    w[i] = bessel_i0(beta * std::sqrt(std::max(0.0, 1.0 - r * r))) / denom;
  }
  return w;
}

LineFit fit_line(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size() && x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  LineFit fit;
  const double denom = n * sxx - sx * sx;
  fit.slope = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
  fit.offset = (sy - fit.slope * sx) / n;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.slope * x[i] + fit.offset);
    fit.max_abs_residual = std::max(fit.max_abs_residual, std::abs(r));
    sum_sq += r * r;
  }
  fit.rms_residual = std::sqrt(sum_sq / n);
  return fit;
}

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double rms(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s / static_cast<double>(v.size()));
}

double wrap_phase(double phi) {
  phi = std::fmod(phi + kPi, kTwoPi);
  if (phi < 0) phi += kTwoPi;
  const double r = phi - kPi;
  // fmod lands exactly on 0 for odd multiples of pi: map -pi to +pi so the
  // documented range (-pi, pi] holds.
  return r <= -kPi ? kPi : r;
}

double interp1(std::span<const double> x, std::span<const double> y, double xq) {
  assert(x.size() == y.size() && !x.empty());
  if (xq <= x.front()) return y.front();
  if (xq >= x.back()) return y.back();
  const auto it = std::upper_bound(x.begin(), x.end(), xq);
  const std::size_t i = static_cast<std::size_t>(it - x.begin());
  const double t = (xq - x[i - 1]) / (x[i] - x[i - 1]);
  return y[i - 1] + t * (y[i] - y[i - 1]);
}

}  // namespace ascp
