// math.hpp — small numeric helpers shared by the DSP designers and the
// metrology code: window functions, polynomial evaluation, dB conversions,
// and least-squares line fitting (used for sensitivity/nonlinearity metrics).
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace ascp {

constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;

inline double db20(double ratio) { return 20.0 * std::log10(ratio); }
inline double db10(double ratio) { return 10.0 * std::log10(ratio); }
inline double from_db20(double db) { return std::pow(10.0, db / 20.0); }

/// sinc(x) = sin(pi x)/(pi x), the ideal-lowpass impulse response kernel.
double sinc(double x);

/// Horner evaluation of c[0] + c[1] x + c[2] x^2 + ...
double polyval(std::span<const double> coeffs, double x);

/// Hann window of length n (periodic=false gives the symmetric analysis window).
std::vector<double> hann_window(std::size_t n);

/// Hamming window of length n.
std::vector<double> hamming_window(std::size_t n);

/// Blackman window of length n.
std::vector<double> blackman_window(std::size_t n);

/// Kaiser window with shape parameter beta.
std::vector<double> kaiser_window(std::size_t n, double beta);

/// Modified Bessel function of the first kind, order zero (series expansion).
double bessel_i0(double x);

/// Result of an ordinary least-squares straight-line fit y = slope*x + offset.
struct LineFit {
  double slope = 0.0;
  double offset = 0.0;
  /// Largest |residual| over the fitted points.
  double max_abs_residual = 0.0;
  /// RMS residual.
  double rms_residual = 0.0;
};

/// Least-squares fit of y against x. Requires x.size() == y.size() >= 2.
LineFit fit_line(std::span<const double> x, std::span<const double> y);

/// Mean of a sample.
double mean(std::span<const double> v);

/// Unbiased standard deviation of a sample.
double stddev(std::span<const double> v);

/// Root-mean-square of a sample.
double rms(std::span<const double> v);

/// Wrap an angle into (-pi, pi].
double wrap_phase(double phi);

/// Linear interpolation on a tabulated monotone-x curve; clamps outside the
/// table. Used for temperature-dependence lookup tables.
double interp1(std::span<const double> x, std::span<const double> y, double xq);

}  // namespace ascp
