// quantizer.hpp — runtime-configurable quantization.
//
// The platform's word lengths are *parameters* explored at design time
// (paper §2: "sub-blocks dimensioning are derived from the MATLAB model").
// Quantizer models an arbitrary signed fixed-point register whose width and
// binary point are set at run time, so benches can sweep datapath precision.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace ascp {

/// Signed mid-tread quantizer with runtime word length and full-scale range.
/// quantize() maps a real value onto the nearest representable code and back,
/// saturating at the rails — exactly what a W-bit datapath register does.
class Quantizer {
 public:
  /// `bits` total width including sign (2..63), `full_scale` the magnitude
  /// mapped to the most positive code.
  Quantizer(int bits, double full_scale)
      : bits_(std::clamp(bits, 2, 63)),
        full_scale_(full_scale),
        levels_(std::int64_t{1} << (bits_ - 1)),
        lsb_(full_scale / static_cast<double>(levels_)) {}

  int bits() const { return bits_; }
  double full_scale() const { return full_scale_; }
  double lsb() const { return lsb_; }

  /// Real value -> integer code (two's-complement range).
  std::int64_t to_code(double v) const {
    const double scaled = std::nearbyint(v / lsb_);
    const double hi = static_cast<double>(levels_ - 1);
    const double lo = static_cast<double>(-levels_);
    return static_cast<std::int64_t>(std::clamp(scaled, lo, hi));
  }

  /// Integer code -> real value.
  double from_code(std::int64_t code) const { return static_cast<double>(code) * lsb_; }

  /// Round-trip: the value the datapath actually carries.
  double quantize(double v) const { return from_code(to_code(v)); }

 private:
  int bits_;
  double full_scale_;
  std::int64_t levels_;
  double lsb_;
};

}  // namespace ascp
