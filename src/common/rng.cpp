#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace ascp {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::gaussian() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  // Box–Muller; reject u1 == 0 to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_ = r * std::sin(theta);
  has_cached_ = true;
  return r * std::cos(theta);
}

Rng Rng::fork(std::uint64_t tag) {
  std::uint64_t mix = next_u64() ^ (tag * 0xD1342543DE82EF95ull);
  return Rng(splitmix64(mix));
}

FlickerNoise::FlickerNoise(Rng rng, double sigma, int num_octaves)
    : rng_(rng), stages_(num_octaves) {
  if (stages_ < 1) stages_ = 1;
  if (stages_ > 24) stages_ = 24;
  // Independent octave sources of equal variance: total variance is
  // stages · per-stage variance.
  per_stage_sigma_ = sigma / std::sqrt(static_cast<double>(stages_));
  for (int k = 0; k < stages_; ++k) state_[k] = rng_.gaussian(per_stage_sigma_);
  sum_ = 0.0;
  for (int k = 0; k < stages_; ++k) sum_ += state_[k];
}

double FlickerNoise::next() {
  // Stage k redraws when bit k of the counter toggles low→(trailing-zero
  // rule): on average two redraws per call, independent of stage count.
  const std::uint64_t n = counter_++;
  std::uint64_t changed = n ^ (n + 1);  // trailing ones of n plus next bit
  for (int k = 0; k < stages_ && (changed >> k) & 1; ++k) {
    sum_ -= state_[k];
    state_[k] = rng_.gaussian(per_stage_sigma_);
    sum_ += state_[k];
  }
  return sum_;
}

}  // namespace ascp
