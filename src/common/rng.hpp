// rng.hpp — deterministic random sources for noise modelling.
//
// Every stochastic block in the platform (ADC thermal noise, MEMS Brownian
// noise, amplifier flicker noise, mismatch draws) pulls from one of these so
// that a simulation is fully reproducible from a single master seed.
#pragma once

#include <array>
#include <cstdint>

#include "common/state_archive.hpp"

namespace ascp {

/// xoshiro256++ — small, fast, high-quality PRNG. We implement it directly
/// instead of using <random> engines so the bit stream is stable across
/// standard-library implementations (reproducible experiments).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (cached second deviate).
  double gaussian();

  /// Normal with given standard deviation.
  double gaussian(double sigma) { return sigma * gaussian(); }

  /// Derive an independent stream for a sub-block (splitmix of seed + tag).
  Rng fork(std::uint64_t tag);

  void serialize_state(StateArchive& ar) {
    for (auto& s : s_) ar.value(s);
    ar.value(has_cached_);
    ar.value(cached_);
  }

 private:
  std::uint64_t s_[4]{};
  bool has_cached_ = false;
  double cached_ = 0.0;
};

/// 1/f (flicker) noise generator — Voss–McCartney: octave-spaced sources
/// where stage k redraws every 2^k samples, so the amortized cost is ~2
/// Gaussian draws per sample regardless of octave count. The summed
/// spectrum approximates 1/f over num_octaves octaves below fs/2.
class FlickerNoise {
 public:
  /// `sigma` is the approximate RMS of the output process.
  FlickerNoise(Rng rng, double sigma, int num_octaves = 12);

  double next();

  void serialize_state(StateArchive& ar) {
    rng_.serialize_state(ar);
    for (auto& s : state_) ar.value(s);
    ar.value(sum_);
    ar.value(counter_);
  }

 private:
  Rng rng_;
  double per_stage_sigma_;
  double state_[24]{};
  double sum_ = 0.0;
  std::uint64_t counter_ = 0;
  int stages_;
};

}  // namespace ascp
