#include "common/spectrum.hpp"

#include <cassert>
#include <cmath>

#include "common/math.hpp"

namespace ascp {

void fft(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  assert((n & (n - 1)) == 0 && "FFT length must be a power of two");
  if (n < 2) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 1.0 : -1.0) * kTwoPi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<std::complex<double>> fft_real(std::span<const double> x) {
  std::size_t n = 1;
  while (n < x.size()) n <<= 1;
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < x.size(); ++i) data[i] = x[i];
  fft(data);
  return data;
}

double Psd::band_mean(double f_lo, double f_hi) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    if (freq[i] >= f_lo && freq[i] <= f_hi) {
      sum += power[i];
      ++count;
    }
  }
  return count ? sum / static_cast<double>(count) : 0.0;
}

Psd welch_psd(std::span<const double> x, double fs, std::size_t nfft) {
  assert((nfft & (nfft - 1)) == 0 && nfft >= 8);
  Psd out;
  if (x.size() < nfft) return out;

  const auto window = hann_window(nfft);
  double win_power = 0.0;  // sum of w[i]^2 for PSD normalization
  for (double w : window) win_power += w * w;

  const std::size_t hop = nfft / 2;  // 50 % overlap
  const std::size_t nseg = (x.size() - nfft) / hop + 1;

  std::vector<double> acc(nfft / 2 + 1, 0.0);
  std::vector<std::complex<double>> buf(nfft);
  // Remove the global mean once: the DC bin would otherwise leak into the
  // low-frequency band used by the noise-density metric.
  const double m = mean(x);

  for (std::size_t s = 0; s < nseg; ++s) {
    const std::size_t base = s * hop;
    for (std::size_t i = 0; i < nfft; ++i) buf[i] = (x[base + i] - m) * window[i];
    fft(buf);
    for (std::size_t k = 0; k <= nfft / 2; ++k) acc[k] += std::norm(buf[k]);
  }

  out.freq.resize(nfft / 2 + 1);
  out.power.resize(nfft / 2 + 1);
  const double norm = 1.0 / (static_cast<double>(nseg) * fs * win_power);
  for (std::size_t k = 0; k <= nfft / 2; ++k) {
    out.freq[k] = static_cast<double>(k) * fs / static_cast<double>(nfft);
    // One-sided: double everything except DC and Nyquist.
    const double one_sided = (k == 0 || k == nfft / 2) ? 1.0 : 2.0;
    out.power[k] = one_sided * acc[k] * norm;
  }
  return out;
}

ToneEstimate estimate_tone(std::span<const double> x, double fs, double f) {
  ToneEstimate est;
  if (x.empty()) return est;
  const double w = kTwoPi * f / fs;
  double re = 0.0, im = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ph = w * static_cast<double>(i);
    re += x[i] * std::cos(ph);
    im -= x[i] * std::sin(ph);
  }
  const double scale = 2.0 / static_cast<double>(x.size());
  est.amplitude = scale * std::hypot(re, im);
  est.phase = std::atan2(im, re);
  return est;
}

}  // namespace ascp
