// spectrum.hpp — FFT and Welch power-spectral-density estimation.
//
// The paper reports rate-noise density in °/s/√Hz (Tables 1–3). That metric
// is the square root of the one-sided PSD of the rate output at 0 °/s input,
// so the metrology layer needs a PSD estimator; Welch averaging with a Hann
// window is the standard instrument-grade choice.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace ascp {

/// In-place radix-2 decimation-in-time FFT. data.size() must be a power of 2.
/// inverse=true computes the unnormalized inverse transform.
void fft(std::span<std::complex<double>> data, bool inverse = false);

/// Forward FFT of a real signal (zero-padded to the next power of two).
std::vector<std::complex<double>> fft_real(std::span<const double> x);

/// One-sided Welch PSD estimate.
struct Psd {
  std::vector<double> freq;  ///< bin centre frequencies [Hz]
  std::vector<double> power; ///< power density [units^2 / Hz]

  /// Mean density over [f_lo, f_hi]; returns 0 if the band is empty.
  double band_mean(double f_lo, double f_hi) const;
};

/// Welch estimator: Hann-windowed segments of length nfft (power of two),
/// 50 % overlap, one-sided normalization so that the integral of `power`
/// over frequency equals the signal variance.
Psd welch_psd(std::span<const double> x, double fs, std::size_t nfft);

/// Amplitude and phase of the component of x at frequency f (single-bin DFT,
/// a.k.a. Goertzel-style correlation). Used by the bandwidth measurement to
/// extract the response to a sinusoidal rate stimulus.
struct ToneEstimate {
  double amplitude = 0.0;
  double phase = 0.0;
};
ToneEstimate estimate_tone(std::span<const double> x, double fs, double f);

}  // namespace ascp
