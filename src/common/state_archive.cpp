#include "common/state_archive.hpp"

namespace ascp {

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  // Bitwise reflected CRC-32; no table keeps the hot loop cache-neutral and
  // the function header-independent. Checkpoints are O(100 KB), so the ~8
  // shifts per byte are invisible next to the simulation itself.
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b)
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
  }
  return crc ^ 0xFFFFFFFFu;
}

StateArchive StateArchive::saver() { return StateArchive(true); }

StateArchive StateArchive::loader(const std::uint8_t* data, std::size_t len) {
  StateArchive ar(false);
  ar.in_ = data;
  ar.size_ = len;
  return ar;
}

StateArchive StateArchive::loader(const std::vector<std::uint8_t>& bytes) {
  return loader(bytes.data(), bytes.size());
}

void StateArchive::put(const std::uint8_t* p, std::size_t n) {
  out_.insert(out_.end(), p, p + n);
  pos_ += n;
  size_ = out_.size();
}

void StateArchive::get(std::uint8_t* p, std::size_t n) {
  if (pos_ + n > limit())
    throw StateError("archive truncated: need " + std::to_string(n) +
                     " bytes at offset " + std::to_string(pos_) + ", have " +
                     std::to_string(limit() - pos_));
  std::memcpy(p, in_ + pos_, n);
  pos_ += n;
}

void StateArchive::guard_count(std::uint64_t n, std::size_t elem_size) const {
  // A corrupted length prefix must fail as StateError, not as a gigabyte
  // allocation. Every element needs at least one encoded byte.
  const std::size_t min_bytes = (elem_size == 0) ? 1 : 1;
  if (n * min_bytes > limit() - pos_)
    throw StateError("archive count " + std::to_string(n) +
                     " exceeds remaining bytes at offset " +
                     std::to_string(pos_));
}

void StateArchive::value(bool& v) {
  std::uint8_t b = v ? 1 : 0;
  scalar(b);
  if (!saving_) {
    if (b > 1)
      throw StateError("archive bool out of range at offset " +
                       std::to_string(pos_ - 1));
    v = (b != 0);
  }
}

void StateArchive::value(std::uint8_t& v) { scalar(v); }
void StateArchive::value(std::uint16_t& v) { scalar(v); }
void StateArchive::value(std::uint32_t& v) { scalar(v); }
void StateArchive::value(std::uint64_t& v) { scalar(v); }

void StateArchive::value(std::int32_t& v) {
  std::uint32_t u = static_cast<std::uint32_t>(v);
  scalar(u);
  if (!saving_) v = static_cast<std::int32_t>(u);
}

void StateArchive::value(std::int64_t& v) {
  std::uint64_t u = static_cast<std::uint64_t>(v);
  scalar(u);
  if (!saving_) v = static_cast<std::int64_t>(u);
}

void StateArchive::value(double& v) {
  // IEEE-754 bit pattern, not a decimal round-trip: restored state must be
  // the same 64 bits, or the replay hash diverges.
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  scalar(u);
  if (!saving_) std::memcpy(&v, &u, sizeof(v));
}

void StateArchive::bytes(std::uint8_t* p, std::size_t n) {
  if (saving_)
    put(p, n);
  else
    get(p, n);
}

void StateArchive::value(std::vector<std::uint8_t>& v) {
  std::uint64_t n = v.size();
  value(n);
  if (!saving_) {
    guard_count(n, 1);
    v.resize(static_cast<std::size_t>(n));
  }
  if (n) bytes(v.data(), static_cast<std::size_t>(n));
}

void StateArchive::value(std::optional<double>& v) {
  bool engaged = v.has_value();
  value(engaged);
  if (engaged) {
    double d = v.value_or(0.0);
    value(d);
    if (!saving_) v = d;
  } else if (!saving_) {
    v.reset();
  }
}

void StateArchive::value(std::deque<std::uint8_t>& v) {
  std::uint64_t n = v.size();
  value(n);
  if (!saving_) {
    guard_count(n, 1);
    v.resize(static_cast<std::size_t>(n));
  }
  for (auto& b : v) value(b);
}

void StateArchive::begin_section(const char* fourcc) {
  std::uint8_t tag[4];
  std::memcpy(tag, fourcc, 4);
  if (saving_) {
    put(tag, 4);
    patch_.push_back(out_.size());
    std::uint32_t placeholder = 0;
    value(placeholder);
  } else {
    std::uint8_t got[4];
    get(got, 4);
    if (std::memcmp(got, tag, 4) != 0)
      throw StateError(std::string("archive section mismatch: expected '") +
                       fourcc + "', found '" +
                       std::string(reinterpret_cast<char*>(got), 4) + "'");
    std::uint32_t len = 0;
    value(len);
    if (pos_ + len > limit())
      throw StateError(std::string("archive section '") + fourcc +
                       "' length " + std::to_string(len) +
                       " overruns the archive");
    limits_.push_back(pos_ + len);
  }
}

void StateArchive::end_section() {
  if (saving_) {
    const std::size_t at = patch_.back();
    patch_.pop_back();
    const std::uint32_t len = static_cast<std::uint32_t>(out_.size() - at - 4);
    out_[at + 0] = static_cast<std::uint8_t>(len & 0xFF);
    out_[at + 1] = static_cast<std::uint8_t>((len >> 8) & 0xFF);
    out_[at + 2] = static_cast<std::uint8_t>((len >> 16) & 0xFF);
    out_[at + 3] = static_cast<std::uint8_t>((len >> 24) & 0xFF);
  } else {
    const std::size_t end = limits_.back();
    limits_.pop_back();
    if (pos_ != end)
      throw StateError("archive section size mismatch: consumed to offset " +
                       std::to_string(pos_) + ", section ends at " +
                       std::to_string(end));
  }
}

std::vector<std::uint8_t> StateArchive::take() { return std::move(out_); }

}  // namespace ascp
