// state_archive.hpp — direction-tagged binary archive for bit-exact
// checkpoint/restore.
//
// Every stateful component implements one `serialize_state(StateArchive&)`
// member that lists its persistent fields once; the same statement sequence
// runs for save and load, so the two directions can never drift apart.
// Encoding is little-endian fixed-width; doubles round-trip through their
// IEEE-754 bit pattern, which is what makes a restored run bit-exact rather
// than merely close.
//
// Archives are section-framed: `begin_section("CHAN") … end_section()`
// brackets a component's fields with a fourcc tag and a byte length. On load
// the tag and length are verified, so a field added on one side of a
// save/load pair fails loudly (StateError) instead of silently shearing the
// byte stream. The framing also lets tools/checkpoint_tool walk a checkpoint
// without linking the whole platform.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ascp {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
/// Used by the checkpoint container to reject bit-flipped images.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

/// Any structural problem while loading: truncation, tag mismatch, length
/// disagreement, oversized counts. The message says what went wrong where.
class StateError : public std::runtime_error {
 public:
  explicit StateError(const std::string& what) : std::runtime_error(what) {}
};

class StateArchive {
 public:
  static StateArchive saver();
  static StateArchive loader(const std::uint8_t* data, std::size_t len);
  static StateArchive loader(const std::vector<std::uint8_t>& bytes);

  bool saving() const { return saving_; }

  // --- scalars (fixed-width little-endian) ------------------------------
  void value(bool& v);
  void value(std::uint8_t& v);
  void value(std::uint16_t& v);
  void value(std::uint32_t& v);
  void value(std::uint64_t& v);
  void value(std::int32_t& v);
  void value(std::int64_t& v);
  void value(double& v);

  /// Enums ride as u32 of their underlying value.
  template <typename E>
  void enum_value(E& e) {
    std::uint32_t raw = static_cast<std::uint32_t>(e);
    value(raw);
    if (!saving_) e = static_cast<E>(raw);
  }

  // --- raw buffers (bulk copy; for code/data memories) ------------------
  void bytes(std::uint8_t* p, std::size_t n);

  // --- containers -------------------------------------------------------
  void value(std::vector<std::uint8_t>& v);
  void value(std::optional<double>& v);
  void value(std::deque<std::uint8_t>& v);

  template <typename T>
  void value(std::vector<T>& v) {
    std::uint64_t n = v.size();
    value(n);
    if (!saving_) {
      guard_count(n, sizeof(T));
      v.resize(static_cast<std::size_t>(n));
    }
    for (auto& e : v) value(e);
  }

  template <typename T, std::size_t N>
  void value(std::array<T, N>& v) {
    for (auto& e : v) value(e);
  }

  // --- section framing --------------------------------------------------
  void begin_section(const char* fourcc);
  void end_section();

  // --- terminal ---------------------------------------------------------
  /// Save mode: hand over the encoded bytes.
  std::vector<std::uint8_t> take();
  /// Load mode: true once every byte has been consumed.
  bool exhausted() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  explicit StateArchive(bool saving) : saving_(saving) {}

  std::size_t limit() const { return limits_.empty() ? size_ : limits_.back(); }
  void put(const std::uint8_t* p, std::size_t n);
  void get(std::uint8_t* p, std::size_t n);
  void guard_count(std::uint64_t n, std::size_t elem_size) const;

  template <typename U>
  void scalar(U& v) {
    std::uint8_t buf[sizeof(U)];
    if (saving_) {
      U x = v;
      for (std::size_t i = 0; i < sizeof(U); ++i) {
        buf[i] = static_cast<std::uint8_t>(x & 0xFF);
        x = static_cast<U>(x >> 8);
      }
      put(buf, sizeof(U));
    } else {
      get(buf, sizeof(U));
      U x = 0;
      for (std::size_t i = sizeof(U); i-- > 0;)
        x = static_cast<U>((x << 8) | buf[i]);
      v = x;
    }
  }

  bool saving_;
  std::vector<std::uint8_t> out_;               // save mode
  const std::uint8_t* in_ = nullptr;            // load mode
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  std::vector<std::size_t> patch_;              // save: length-field offsets
  std::vector<std::size_t> limits_;             // load: section end offsets
};

}  // namespace ascp
