#include "common/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ascp {

void TraceRecorder::open(std::string_view name, double dt, std::size_t decimate) {
  auto [it, inserted] = channels_.try_emplace(std::string(name));
  if (inserted) {
    it->second.data.dt = dt * static_cast<double>(std::max<std::size_t>(decimate, 1));
    it->second.decimate = std::max<std::size_t>(decimate, 1);
  }
}

void TraceRecorder::push(std::string_view name, double value) {
  const auto it = channels_.find(name);
  if (it == channels_.end()) throw std::out_of_range("trace channel not open: " + std::string(name));
  Slot& slot = it->second;
  if (slot.counter++ % slot.decimate == 0) slot.data.samples.push_back(value);
}

bool TraceRecorder::has(std::string_view name) const { return channels_.contains(name); }

const TraceChannel& TraceRecorder::channel(std::string_view name) const {
  const auto it = channels_.find(name);
  if (it == channels_.end()) throw std::out_of_range("trace channel not found: " + std::string(name));
  return it->second.data;
}

std::vector<std::string> TraceRecorder::names() const {
  std::vector<std::string> out;
  out.reserve(channels_.size());
  for (const auto& [name, slot] : channels_) out.push_back(name);
  return out;
}

void TraceRecorder::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open trace CSV for writing: " + path);
  // Always emit a summary line so the file is valid (and non-empty) even for a
  // recorder with zero channels or channels that never received a sample.
  f << "# trace: " << channels_.size() << " channel(s)\n";
  for (const auto& [name, slot] : channels_) {
    f << "# channel: " << name << " dt=" << slot.data.dt << "\n";
    f << "t," << name << "\n";
    for (std::size_t i = 0; i < slot.data.samples.size(); ++i)
      f << static_cast<double>(i) * slot.data.dt << "," << slot.data.samples[i] << "\n";
    f << "\n";
  }
}

std::string TraceRecorder::render_ascii(std::string_view name, std::size_t width,
                                        std::size_t height) const {
  const TraceChannel& ch = channel(name);
  std::ostringstream out;
  if (ch.samples.empty() || width == 0 || height < 2) return out.str();

  const auto [mn_it, mx_it] = std::minmax_element(ch.samples.begin(), ch.samples.end());
  double lo = *mn_it, hi = *mx_it;
  if (hi - lo < 1e-300) hi = lo + 1.0;

  // Column i shows the mean of the samples mapped onto it.
  std::vector<double> col(width, 0.0);
  std::vector<std::size_t> cnt(width, 0);
  for (std::size_t i = 0; i < ch.samples.size(); ++i) {
    const std::size_t c = std::min(width - 1, i * width / ch.samples.size());
    col[c] += ch.samples[i];
    ++cnt[c];
  }
  std::vector<int> row(width, 0);
  for (std::size_t c = 0; c < width; ++c) {
    const double v = cnt[c] ? col[c] / static_cast<double>(cnt[c]) : lo;
    row[c] = static_cast<int>(std::lround((v - lo) / (hi - lo) * static_cast<double>(height - 1)));
  }

  out << name << "  [" << lo << " .. " << hi << "]  n=" << ch.samples.size()
      << " span=" << static_cast<double>(ch.samples.size()) * ch.dt << " s\n";
  for (int r = static_cast<int>(height) - 1; r >= 0; --r) {
    out << "  |";
    for (std::size_t c = 0; c < width; ++c) out << (row[c] == r ? '*' : (r == 0 ? '.' : ' '));
    out << "\n";
  }
  return out.str();
}

void TraceRecorder::clear() { channels_.clear(); }

}  // namespace ascp
