// trace.hpp — waveform trace recorder.
//
// The paper's prototype stores chain-internal data into a 512 Kb SRAM in real
// time for later read-back and analysis (§4.2). TraceRecorder is the
// simulation-side equivalent: named channels, decimated capture, CSV export
// for plotting, and summary statistics for the benches.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ascp {

/// One recorded waveform: sample period and values.
struct TraceChannel {
  double dt = 0.0;
  std::vector<double> samples;
};

/// Collects named sampled waveforms during a simulation run.
class TraceRecorder {
 public:
  /// Create (or fetch) a channel; `dt` is the spacing between pushed samples.
  /// `decimate` keeps every Nth pushed value (N>=1) so megahertz-rate nodes
  /// can be traced for seconds without exhausting memory.
  void open(std::string_view name, double dt, std::size_t decimate = 1);

  /// Append a sample to the channel (must be open).
  void push(std::string_view name, double value);

  bool has(std::string_view name) const;
  const TraceChannel& channel(std::string_view name) const;
  std::vector<std::string> names() const;

  /// Write all channels to a CSV file: time column per channel block.
  void write_csv(const std::string& path) const;

  /// ASCII-art render of one channel (rows = amplitude bins) — lets the
  /// figure benches show waveform shape directly on stdout, the way the
  /// paper shows scope screenshots.
  std::string render_ascii(std::string_view name, std::size_t width = 72,
                           std::size_t height = 12) const;

  void clear();

 private:
  struct Slot {
    TraceChannel data;
    std::size_t decimate = 1;
    std::size_t counter = 0;
  };
  std::map<std::string, Slot, std::less<>> channels_;
};

}  // namespace ascp
