// units.hpp — strong types for the physical quantities flowing through the
// platform. A conditioning chain mixes volts, farads, °/s and °C in the same
// expressions; wrapping them prevents the classic "passed mV where V was
// expected" unit bug while staying zero-cost.
#pragma once

#include <compare>

namespace ascp {

/// CRTP base for a dimensioned scalar. Derived types are regular, totally
/// ordered value types supporting the affine/vector operations that make
/// sense for a physical quantity.
template <class Derived>
struct Quantity {
  double value{0.0};

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value(v) {}

  friend constexpr Derived operator+(Derived a, Derived b) { return Derived{a.value + b.value}; }
  friend constexpr Derived operator-(Derived a, Derived b) { return Derived{a.value - b.value}; }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.value}; }
  friend constexpr Derived operator*(Derived a, double k) { return Derived{a.value * k}; }
  friend constexpr Derived operator*(double k, Derived a) { return Derived{a.value * k}; }
  friend constexpr Derived operator/(Derived a, double k) { return Derived{a.value / k}; }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) { return a.value / b.value; }
  friend constexpr auto operator<=>(Derived a, Derived b) { return a.value <=> b.value; }
  friend constexpr bool operator==(Derived a, Derived b) { return a.value == b.value; }

  constexpr Derived& operator+=(Derived b) {
    value += b.value;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived b) {
    value -= b.value;
    return static_cast<Derived&>(*this);
  }
};

struct Volts : Quantity<Volts> {
  using Quantity::Quantity;
};
struct Seconds : Quantity<Seconds> {
  using Quantity::Quantity;
};
struct Hertz : Quantity<Hertz> {
  using Quantity::Quantity;
};
/// Angular rate in degrees per second (the gyro's measurand).
struct DegPerSec : Quantity<DegPerSec> {
  using Quantity::Quantity;
};
struct Celsius : Quantity<Celsius> {
  using Quantity::Quantity;
};
struct Farads : Quantity<Farads> {
  using Quantity::Quantity;
};

namespace literals {
constexpr Volts operator""_V(long double v) { return Volts{static_cast<double>(v)}; }
constexpr Volts operator""_mV(long double v) { return Volts{static_cast<double>(v) * 1e-3}; }
constexpr Seconds operator""_s(long double v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_ms(long double v) { return Seconds{static_cast<double>(v) * 1e-3}; }
constexpr Seconds operator""_us(long double v) { return Seconds{static_cast<double>(v) * 1e-6}; }
constexpr Hertz operator""_Hz(long double v) { return Hertz{static_cast<double>(v)}; }
constexpr Hertz operator""_kHz(long double v) { return Hertz{static_cast<double>(v) * 1e3}; }
constexpr Hertz operator""_MHz(long double v) { return Hertz{static_cast<double>(v) * 1e6}; }
constexpr DegPerSec operator""_dps(long double v) { return DegPerSec{static_cast<double>(v)}; }
constexpr Celsius operator""_degC(long double v) { return Celsius{static_cast<double>(v)}; }
constexpr Farads operator""_pF(long double v) { return Farads{static_cast<double>(v) * 1e-12}; }
constexpr Farads operator""_fF(long double v) { return Farads{static_cast<double>(v) * 1e-15}; }
}  // namespace literals

/// Period of a frequency.
constexpr Seconds period(Hertz f) { return Seconds{1.0 / f.value}; }

}  // namespace ascp
