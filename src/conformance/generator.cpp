#include "conformance/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "core/gyro_system.hpp"

namespace ascp::conformance {

namespace {

constexpr double kDspFs = 240e3;  ///< analog_fs / adc_div at the shipped operating point

Segment draw_rate_segment(Rng& r, double dur, double amp_cap) {
  Segment g;
  g.duration = dur;
  switch (r.next_u64() % 5) {
    case 0:
      g.kind = SegKind::Constant;
      g.a = r.uniform(-amp_cap, amp_cap);
      break;
    case 1:
      g.kind = SegKind::Sine;
      g.a = r.uniform(0.1 * amp_cap, 0.6 * amp_cap);
      g.b = r.uniform(-0.3 * amp_cap, 0.3 * amp_cap);
      g.f0 = r.uniform(0.5, 40.0);
      break;
    case 2:
      g.kind = SegKind::Ramp;
      g.a = r.uniform(-amp_cap, amp_cap);
      g.b = r.uniform(-amp_cap, amp_cap);
      break;
    case 3:
      g.kind = SegKind::Chirp;
      g.a = r.uniform(0.1 * amp_cap, 0.5 * amp_cap);
      g.b = r.uniform(-0.3 * amp_cap, 0.3 * amp_cap);
      g.f0 = r.uniform(1.0, 10.0);
      g.f1 = r.uniform(10.0, 30.0);
      break;
    default: {
      // Recorded-trace fixture: a bounded random walk "field capture" played
      // back at a modest sample rate (kept short so .scenario files stay
      // reviewable; RecordedSource replay covers the high-rate case).
      g.kind = SegKind::Trace;
      g.f0 = r.uniform(200.0, 2000.0);
      const std::size_t n = std::min<std::size_t>(
          256, std::max<std::size_t>(2, static_cast<std::size_t>(dur * g.f0)));
      double v = r.uniform(-0.5 * amp_cap, 0.5 * amp_cap);
      g.samples.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        g.samples.push_back(v);
        v = std::clamp(v + r.uniform(-0.05 * amp_cap, 0.05 * amp_cap), -amp_cap, amp_cap);
      }
      break;
    }
  }
  return g;
}

void draw_temperature(Rng& r, Scenario& s) {
  Segment g;
  g.duration = s.duration_s;
  if (r.uniform() < 0.8) {
    g.kind = SegKind::Constant;
    g.a = r.uniform(-30.0, 80.0);
  } else {
    g.kind = SegKind::Ramp;
    g.a = r.uniform(-30.0, 60.0);
    g.b = std::min(85.0, g.a + r.uniform(-25.0, 25.0));
  }
  s.temp.push_back(g);
}

void draw_registers(Rng& r, Scenario& s) {
  // Values stay inside the declared field widths (gain_x16 is an 8-bit
  // field; adc_bits a 5-bit field) *and* inside the range the analog model
  // behaves sensibly over — the legality cross-check test pins both.
  if (r.uniform() < 0.35) {
    // DSP sense-gain register: PGA gain 4..12 (×16 encoding 64..192).
    s.regs.push_back({false, core::reg::kSenseGain,
                      static_cast<std::uint16_t>(64 + r.next_u64() % 129)});
  }
  if (r.uniform() < 0.25) {
    // AFE primary PGA: gain 1.5..2.5 (×16 encoding 24..40).
    s.regs.push_back({true, core::reg::kAfePgaPrimary,
                      static_cast<std::uint16_t>(24 + r.next_u64() % 17)});
  }
  if (r.uniform() < 0.25 && s.full_fidelity) {
    // SAR resolution 12..16 bits.
    s.regs.push_back({true, core::reg::kAfeAdcBits,
                      static_cast<std::uint16_t>(12 + r.next_u64() % 5)});
  }
}

void draw_bursts(Rng& r, Scenario& s, const GeneratorConfig& cfg) {
  const int n = static_cast<int>(r.next_u64() % 3);  // 0..2
  for (int i = 0; i < n; ++i) {
    Burst b;
    b.duration = r.uniform(0.005, 0.03);
    b.t0 = r.uniform(0.0, std::max(0.0, s.duration_s - b.duration));
    b.amplitude = r.uniform(10.0, cfg.max_burst_dps);
    // 50/50 vibration tone (automotive band) vs half-sine shock.
    b.freq = r.uniform() < 0.5 ? r.uniform(50.0, 2000.0) : 0.0;
    s.bursts.push_back(b);
  }
}

FaultEvent draw_fault(Rng& r, const GeneratorConfig& cfg, double& duration_s) {
  static constexpr FaultKind kAll[] = {
      FaultKind::DriveElectrodeOpen, FaultKind::DriveElectrodeStuck, FaultKind::QuadratureStep,
      FaultKind::PrimaryAdcStuck,    FaultKind::SenseAdcStuckNull,   FaultKind::ReferenceDrift,
      FaultKind::PgaGainError,       FaultKind::ChargeAmpOpen,       FaultKind::NcoPhaseJump,
      FaultKind::RegisterBitFlip,    FaultKind::FirmwareHang,        FaultKind::EepromCalCorruption,
  };
  // Full-fidelity AFE faults cost ~4× the wall-clock of Ideal-layer ones:
  // keep them to a modest share of the fault band so the smoke stage fits
  // its time budget while still covering every catalogue row.
  FaultKind k;
  do {
    k = kAll[r.next_u64() % std::size(kAll)];
  } while (fault_requires_full(k) && r.uniform() < 0.75);

  FaultEvent f;
  f.kind = k;
  const double inject_s = cfg.min_inject_s + r.uniform(0.0, 0.1);
  f.inject_at = static_cast<long>(std::lround(inject_s * kDspFs));
  duration_s = inject_s + cfg.post_inject_s;
  // A hang rides through watchdog bite + MCU recovery + PLL reacquisition
  // (~0.21 s cold): give the relock oracle room to see the recovered state.
  if (k == FaultKind::FirmwareHang) duration_s = inject_s + std::max(cfg.post_inject_s, 0.55);
  switch (k) {
    case FaultKind::DriveElectrodeStuck: f.param = r.uniform(0.8, 1.6); break;
    // Below ~3e6 N/m the quad servo absorbs the step without tripping the
    // range comparator — stay at catalogue magnitude and above.
    case FaultKind::QuadratureStep: f.param = r.uniform(3.0e6, 4.5e6); break;
    case FaultKind::PrimaryAdcStuck:
      f.param = std::floor(r.uniform(500.0, 3000.0));
      if (r.uniform() < 0.4)
        f.clear_after = static_cast<long>(std::lround(r.uniform(2000.0, 20000.0)));
      break;
    case FaultKind::ReferenceDrift: f.param = r.uniform(-0.55, -0.40); break;
    case FaultKind::PgaGainError: f.param = r.uniform(1.8, 2.5); break;
    case FaultKind::NcoPhaseJump: f.param = r.uniform(0.8, 2.4); break;
    case FaultKind::RegisterBitFlip:
      f.param = static_cast<double>(std::uint16_t{1} << (4 + r.next_u64() % 4));  // bits 4..7
      break;
    default: break;  // catalogue default magnitudes
  }
  return f;
}

}  // namespace

Scenario generate_scenario(std::uint64_t seed, const GeneratorConfig& cfg) {
  // Fork per concern so adding a draw to one section never shifts another's
  // stream (scenario shape stays stable under generator evolution).
  Rng root(seed ^ 0xC0FFEE5EEDull);
  Rng rcls = root.fork(1), rdur = root.fork(2), rstim = root.fork(3), rreg = root.fork(4),
      rflt = root.fork(5), rmisc = root.fork(6);

  Scenario s;
  s.seed = seed;

  const double wsum = cfg.w_invariant + cfg.w_diff + cfg.w_fault + cfg.w_iss;
  const double u = rcls.uniform() * (wsum > 0.0 ? wsum : 1.0);
  if (u < cfg.w_invariant)
    s.cls = ScenarioClass::Invariant;
  else if (u < cfg.w_invariant + cfg.w_diff)
    s.cls = ScenarioClass::DiffIdeal;
  else if (u < cfg.w_invariant + cfg.w_diff + cfg.w_fault)
    s.cls = ScenarioClass::Fault;
  else
    s.cls = ScenarioClass::Iss;

  // MEMS corner draw — tolerance-band quadrature and drift.
  s.quad_scale = rmisc.uniform(0.5, 1.5);
  s.drift_scale = rmisc.uniform(0.5, 1.5);
  // Programmable output bandwidth (Table 1: 25..75 Hz).
  s.output_bw_hz = rmisc.uniform() < 0.4 ? rmisc.uniform(25.0, 75.0) : 75.0;

  switch (s.cls) {
    case ScenarioClass::Invariant:
      s.full_fidelity = rdur.uniform() < 0.6;
      s.duration_s = rdur.uniform(0.05, 0.18);
      s.open_loop = rdur.uniform() < 0.3;
      // Wordlength-ablation corner: a finite RTL datapath now and then.
      if (rmisc.uniform() < 0.1) s.datapath_bits = 16 + static_cast<int>(rmisc.next_u64() % 9);
      break;
    case ScenarioClass::DiffIdeal:
      s.full_fidelity = true;  // the differential is full-vs-ideal by definition
      s.duration_s = rdur.uniform(0.08, 0.13);
      s.open_loop = rdur.uniform() < 0.25;
      break;
    case ScenarioClass::Fault: {
      double dur = 0.0;
      FaultEvent f = draw_fault(rflt, cfg, dur);
      s.full_fidelity = fault_requires_full(f.kind) || rflt.uniform() < 0.1;
      s.duration_s = dur;
      s.faults.push_back(f);
      break;
    }
    case ScenarioClass::Iss:
      s.full_fidelity = rdur.uniform() < 0.3;
      s.duration_s = rdur.uniform(0.10, 0.18);
      break;
  }

  // Stimulus. Fault scenarios keep a benign constant-rate base so the only
  // disturbances during the supervisor's arming warmup are the ones the
  // catalogue injects.
  if (s.cls == ScenarioClass::Fault) {
    Segment g;
    g.kind = SegKind::Constant;
    g.duration = s.duration_s;
    g.a = rstim.uniform(-60.0, 60.0);
    s.rate.push_back(g);
    Segment t;
    t.kind = SegKind::Constant;
    t.duration = s.duration_s;
    t.a = rstim.uniform(0.0, 50.0);
    s.temp.push_back(t);
  } else {
    const int nseg = 1 + static_cast<int>(rstim.next_u64() % 3);  // 1..3
    for (int i = 0; i < nseg; ++i)
      s.rate.push_back(draw_rate_segment(rstim, s.duration_s / nseg, cfg.max_base_dps));
    draw_temperature(rstim, s);
    draw_bursts(rstim, s, cfg);
  }

  // Register configuration draws (legal field ranges only). Skipped for
  // fault runs: the campaign's detection thresholds are characterized at the
  // shipped gain settings.
  if (s.cls != ScenarioClass::Fault) draw_registers(rreg, s);

  return s;
}

}  // namespace ascp::conformance
