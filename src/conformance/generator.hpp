// generator.hpp — seeded random scenario generator.
//
// Draws Scenarios from the legal operating space: stimulus segments inside
// the ±300 °/s full scale and the −40..85 °C Table 1 range, register values
// inside the RegisterFile's declared field widths, fault schedules from the
// PR-1 catalogue with injection instants placed after the supervisor's
// arming warmup. Generation is a pure function of the seed — the same seed
// always yields byte-identical scenario text, which is what makes the smoke
// stage (`scenario_fuzz --smoke --seed 2026`) deterministic in CI.
#pragma once

#include <cstdint>

#include "conformance/scenario.hpp"

namespace ascp::conformance {

/// Class-mix and range knobs. Defaults implement the smoke-budget mix
/// (mostly cheap invariant runs, a differential band, a fault band sized so
/// the expensive Full-fidelity AFE faults stay rare, and an ISS band).
struct GeneratorConfig {
  double w_invariant = 0.46;
  double w_diff = 0.20;
  double w_fault = 0.22;
  double w_iss = 0.12;
  /// Stimulus caps (generator guarantees base + burst stays inside the
  /// supervisor's plausibility span so fault-free runs can't trip RATE_RANGE).
  double max_base_dps = 200.0;
  double max_burst_dps = 100.0;
  /// Fault scenarios inject only after the supervisor has armed (measured
  /// ≈0.43 s at the shipped operating point, up to ≈0.60 s at cold-temp
  /// corners where the drive resonance shift slows PLL acquisition).
  double min_inject_s = 0.65;
  double post_inject_s = 0.30;  ///< detection + recovery window after injection
};

/// Generate the scenario for `seed` (deterministic, side-effect free).
Scenario generate_scenario(std::uint64_t seed, const GeneratorConfig& cfg = {});

}  // namespace ascp::conformance
