#include "conformance/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string_view>

#include "analysis/firmware_corpus.hpp"
#include "analysis/range_lint.hpp"
#include "core/gyro_system.hpp"
#include "mcu/monitor_rom.hpp"
#include "safety/cal_store.hpp"
#include "safety/standard_faults.hpp"
#include "sensor/stimulus_source.hpp"

namespace ascp::conformance {

namespace {

constexpr double kNullV = 2.5;

bool has_fault(const Scenario& s, FaultKind k) {
  for (const auto& f : s.faults)
    if (f.kind == k) return true;
  return false;
}

bool needs_mcu(const Scenario& s) {
  if (s.cls == ScenarioClass::Iss) return true;
  for (const auto& f : s.faults)
    if (fault_needs_mcu(f.kind)) return true;
  return false;
}

/// The GyroSystemConfig mutations the configure hook applies — also used
/// standalone by the envelope derivation (range bounds depend on the realized
/// sense-chain dimensioning, not on the constructed system).
void apply_scenario_config(const Scenario& s, core::GyroSystemConfig& cfg) {
  cfg.mems.quad_stiffness *= s.quad_scale;
  cfg.mems.f0_tempco *= s.drift_scale;
  cfg.mems.q_tempco *= s.drift_scale;
  cfg.mems.force_tempco *= s.drift_scale;
  cfg.mems.cap_tempco *= s.drift_scale;
  cfg.mems.quad_tempco *= s.drift_scale;
  cfg.sense.output_bw_hz = s.output_bw_hz;
  cfg.sense.datapath_bits = s.datapath_bits;
  if (needs_mcu(s)) cfg.with_mcu = true;
}

void add_fault(safety::FaultCampaign& c, core::GyroSystem& g, const FaultEvent& f) {
  namespace sf = safety::faults;
  const long at = f.inject_at;
  const bool p = f.param != 0.0;
  switch (f.kind) {
    case FaultKind::DriveElectrodeOpen: sf::add_drive_electrode_open(c, g, at); break;
    case FaultKind::DriveElectrodeStuck:
      sf::add_drive_electrode_stuck(c, g, at, p ? f.param : 1.2);
      break;
    case FaultKind::QuadratureStep: sf::add_quadrature_step(c, g, at, p ? f.param : 3.0e6); break;
    case FaultKind::PrimaryAdcStuck:
      sf::add_primary_adc_stuck(c, g, at, p ? static_cast<std::int32_t>(f.param) : 1234,
                                f.clear_after);
      break;
    case FaultKind::SenseAdcStuckNull: sf::add_sense_adc_stuck_null(c, g, at); break;
    case FaultKind::ReferenceDrift: sf::add_reference_drift(c, g, at, p ? f.param : -0.45); break;
    case FaultKind::PgaGainError: sf::add_pga_gain_error(c, g, at, p ? f.param : 2.0); break;
    case FaultKind::ChargeAmpOpen: sf::add_charge_amp_open(c, g, at); break;
    case FaultKind::NcoPhaseJump:
      sf::add_nco_phase_jump(c, g, at, p ? f.param : 1.5707963267948966);
      break;
    case FaultKind::RegisterBitFlip:
      sf::add_register_bit_flip(c, g, at, core::reg::kSenseGain,
                                p ? static_cast<std::uint16_t>(f.param) : 0x80);
      break;
    case FaultKind::FirmwareHang: sf::add_firmware_hang(c, g, at); break;
    case FaultKind::EepromCalCorruption: sf::add_eeprom_cal_corruption(c, g, at); break;
  }
}

engine::ChannelConfig make_config(const Scenario& s, bool full_fidelity, bool with_safety,
                                  bool with_obs) {
  engine::ChannelConfig cc;
  cc.kind = full_fidelity ? engine::ChannelKind::GyroFull : engine::ChannelKind::GyroIdeal;
  cc.seed = s.seed;
  cc.with_safety = with_safety;
  cc.with_obs = with_obs;
  cc.rate_profile = rate_profile(s);
  cc.temp_profile = temp_profile(s);
  cc.configure = [s](core::GyroSystemConfig& cfg) { apply_scenario_config(s, cfg); };
  cc.customize = [s](core::GyroSystem& g) {
    // Register configuration before power_on: the config hooks bake the new
    // values into the cold build, exactly like a host trimming over JTAG.
    for (const auto& r : s.regs) (r.afe ? g.afe_regs() : g.regs()).write(r.addr, r.value);
    if (s.open_loop) g.regs().write(core::reg::kMode, 0);
    if (s.cls == ScenarioClass::Iss)
      g.platform().load_firmware(mcu::MonitorRom::image());
    if (has_fault(s, FaultKind::FirmwareHang)) {
      // The hang is detected by the watchdog, so the firmware must actually
      // kick it: liveness kicker + armed watchdog (period ≈ 10 ms of CPU).
      g.platform().load_firmware(
          analysis::corpus::assemble_watchdog_kicker(g.platform().config().map).image);
      if (auto* wd = g.platform().watchdog()) {
        wd->write_reg(1, 16000);  // PERIOD [machine cycles]
        wd->write_reg(2, 1);      // CTRL: enable
      }
    }
    if (has_fault(s, FaultKind::EepromCalCorruption)) {
      // The CRC audit needs a valid record to corrupt.
      if (auto* spi = g.platform().spi()) safety::store_calibration(*spi, g.config().comp);
    }
  };
  if (!s.faults.empty()) {
    cc.campaign_factory = [s](core::GyroSystem& g) {
      auto campaign = std::make_unique<safety::FaultCampaign>();
      for (const auto& f : s.faults) add_fault(*campaign, g, f);
      return campaign;
    };
  }
  return cc;
}

void run_channel(engine::ConditioningChannel& ch, double seconds) {
  ch.advance(std::llround(seconds * ch.base_rate_hz()));
}

struct Checker {
  std::vector<Violation>* out;
  void fail(std::string check, std::string detail) {
    out->push_back({std::move(check), std::move(detail)});
  }
};

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

}  // namespace

std::string ScenarioReport::summary() const {
  std::string s;
  for (const auto& v : violations) {
    s += v.check;
    s += ": ";
    s += v.detail;
    s += '\n';
  }
  return s;
}

engine::ChannelConfig channel_config(const Scenario& s) {
  return make_config(s, s.full_fidelity, /*with_safety=*/true, /*with_obs=*/true);
}

double derive_output_envelope_v(const Scenario& s) {
  auto cfg = core::default_gyro_system(s.full_fidelity ? core::Fidelity::Full
                                                       : core::Fidelity::Ideal);
  apply_scenario_config(s, cfg);
  if (s.open_loop) cfg.sense.mode = core::SenseMode::OpenLoop;
  const auto ranges = analysis::sense_chain_ranges(cfg.sense, cfg.comp);
  for (const auto& r : ranges) {
    if (r.stage != "sense.output") continue;
    // The adversarial (L1) bound holds for any rail-bounded ADC stream, so it
    // covers transients the steady-state tone bound does not; the format
    // limit caps it where the datapath clamps anyway.
    const double fs_units = std::min(r.l1_bound > 0.0 ? r.l1_bound : r.bound, r.limit);
    return fs_units * 2.5;  // FS units are referred to vref = 2.5 V
  }
  return 5.0;  // Q1_22 format rail — unreachable fallback
}

ScenarioReport run_scenario(const Scenario& s, const OracleConfig& ocfg) {
  ScenarioReport rep;
  Checker chk{&rep.violations};

  engine::ConditioningChannel ch(channel_config(s));
  run_channel(ch, s.duration_s);
  rep.output_hash = ch.output_hash();
  rep.outputs = ch.outputs().size();

  auto* g = ch.gyro();
  auto* sup = g ? g->supervisor() : nullptr;
  if (!g || !sup) {
    chk.fail("setup", "scenario channel has no gyro/supervisor");
    return rep;
  }

  // ---- output stream: count, finiteness, envelope --------------------------
  const long base_ticks = ch.ticks_advanced();
  const auto& sys = g->config();
  const long expected = base_ticks / sys.adc_div / sys.sense.cic_ratio;
  const long n = static_cast<long>(rep.outputs);
  if (std::labs(n - expected) > 1)
    chk.fail("output_count",
             "got " + std::to_string(n) + " decimated samples, expected ~" +
                 std::to_string(expected) + " (CIC completion accounting)");

  const bool fault_free = s.faults.empty();
  rep.envelope_v = fault_free ? derive_output_envelope_v(s) + ocfg.envelope_margin_v : 0.0;
  for (std::size_t i = 0; i < ch.outputs().size(); ++i) {
    const double v = ch.outputs()[i];
    if (!std::isfinite(v)) {
      chk.fail("finite", "output[" + std::to_string(i) + "] is not finite");
      break;
    }
    // Faults may legitimately rail the chain; the range proof only covers the
    // healthy datapath, so the envelope applies to fault-free runs.
    if (fault_free && std::abs(v) > rep.envelope_v) {
      chk.fail("envelope", "output[" + std::to_string(i) + "] = " + fmt(v) +
                               " V exceeds range-analysis bound " + fmt(rep.envelope_v) + " V");
      break;
    }
  }

  // ---- supervisor + event-log invariants -----------------------------------
  const auto events = ch.observability()->events.events();

  // State machine legality: transitions recorded by the supervisor may only
  // move between adjacent degradation levels.
  for (const auto& e : events) {
    if (e.category != obs::EventCategory::Supervisor ||
        std::string_view(e.name) != "state_transition")
      continue;
    double from = 0, to = 0;
    for (const auto& kv : e.kv) {
      if (!kv.key) continue;
      if (std::string_view(kv.key) == "from") from = kv.value;
      if (std::string_view(kv.key) == "to") to = kv.value;
    }
    if (std::abs(to - from) != 1.0)
      chk.fail("state_machine", "non-adjacent transition " + e.detail + " at t=" + fmt(e.t_sim));
  }

  auto count_events = [&](obs::EventCategory cat, std::string_view name) {
    long c = 0;
    for (const auto& e : events)
      if (e.category == cat && std::string_view(e.name) == name) ++c;
    return c;
  };

  if (fault_free) {
    if (sup->dtcs() != 0)
      chk.fail("false_positive",
               "DTC mask " + std::to_string(sup->dtcs()) + " latched with no fault injected");
    if (sup->state() != safety::SafetyState::Nominal)
      chk.fail("false_positive", "supervisor left NOMINAL with no fault injected");
    // The lock detector can chatter while the drive loop is still acquiring
    // (~0.21 s from cold, longer at MEMS corners), which is legitimate. After
    // the acquisition window a fault-free loss is a real violation, and any
    // run long enough to have acquired must end locked.
    constexpr double kAcquireWindowS = 0.35;
    long late_losses = 0;
    for (const auto& e : events)
      if (e.category == obs::EventCategory::Pll && std::string_view(e.name) == "pll_lock_loss" &&
          e.t_sim > kAcquireWindowS)
        ++late_losses;
    if (late_losses > 0)
      chk.fail("pll", std::to_string(late_losses) +
                          " lock losses after acquisition with no fault injected");
    if (s.duration_s >= kAcquireWindowS + 0.1 && !g->locked())
      chk.fail("pll", "not locked at end of a fault-free run");
  } else {
    long min_inject = s.faults.front().inject_at;
    for (const auto& f : s.faults) min_inject = std::min(min_inject, f.inject_at);

    // Pre-injection latches are false positives regardless of what happens
    // later (first_latch_fast and inject_at share the DSP-sample time base).
    for (int bit = 0; bit < 13; ++bit) {
      const auto mask = static_cast<std::uint16_t>(1u << bit);
      const long fl = sup->first_latch_fast(mask);
      if (fl >= 0 && fl < min_inject)
        chk.fail("false_positive", "DTC bit " + std::to_string(bit) + " latched at fast sample " +
                                       std::to_string(fl) + ", before first injection at " +
                                       std::to_string(min_inject));
    }

    if (!sup->armed())
      chk.fail("setup", "supervisor never armed — fault injected into an unsettled chain "
                        "(generator must schedule injections after the warmup)");

    // Every injected fault must appear in the event log...
    const long inject_events = count_events(obs::EventCategory::Fault, "fault_inject");
    if (inject_events != static_cast<long>(s.faults.size()))
      chk.fail("fault_events", std::to_string(inject_events) + " fault_inject events for " +
                                   std::to_string(s.faults.size()) + " scheduled faults");

    // ...and every detectable one must latch its catalogue DTC after its
    // injection instant (collateral DTCs after injection are legitimate —
    // real faults cascade).
    bool any_detectable = false;
    for (const auto& f : s.faults) {
      const std::uint16_t dtc = fault_expected_dtc(f.kind);
      if (dtc == 0) continue;
      any_detectable = true;
      const long fl = sup->first_latch_fast(dtc);
      if (fl < f.inject_at)
        chk.fail("dtc_missing",
                 std::string(fault_kind_name(f.kind)) + " did not latch its DTC (first latch " +
                     std::to_string(fl) + ", injected at " + std::to_string(f.inject_at) + ")");
      if (count_events(obs::EventCategory::Dtc, "dtc_latch") == 0)
        chk.fail("dtc_events", "no dtc_latch event recorded for a detectable fault");
    }
    if (!any_detectable && s.faults.size() == 1 && sup->dtcs() != 0)
      chk.fail("undetectable",
               std::string(fault_kind_name(s.faults.front().kind)) +
                   " is documented undetectable but latched DTC mask " +
                   std::to_string(sup->dtcs()));

    // PLL relock after every injected lock-loss.
    bool want_relock = false;
    for (const auto& f : s.faults) want_relock |= fault_expects_relock(f.kind);
    if (want_relock) {
      const long losses = count_events(obs::EventCategory::Pll, "pll_lock_loss");
      const long relocks = count_events(obs::EventCategory::Pll, "pll_relock");
      if (losses > 0 && (relocks < losses || !g->locked()))
        chk.fail("pll_relock", std::to_string(losses) + " lock losses but " +
                                   std::to_string(relocks) +
                                   " relocks (locked at end: " + (g->locked() ? "yes" : "no") + ")");
    }
  }

  // ---- recorded-trace replay (stimulus-seam round-trip) --------------------
  // Scenarios carrying a Trace segment also prove the record → replay seam:
  // a probed re-run must be bit-identical (probes are read-only), and feeding
  // the captured stimulus back through a RecordedSource must reproduce the
  // synthetic run's output hash exactly (the trace is captured at the base
  // rate, so replay takes the integer-indexed bit-exact path).
  const bool has_trace =
      std::any_of(s.rate.begin(), s.rate.end(),
                  [](const Segment& g) { return g.kind == SegKind::Trace; }) ||
      std::any_of(s.temp.begin(), s.temp.end(),
                  [](const Segment& g) { return g.kind == SegKind::Trace; });
  if (has_trace) {
    auto rec_cfg = channel_config(s);
    sensor::StimulusRecorder recorder(ch.base_rate_hz());
    rec_cfg.probe = &recorder;
    engine::ConditioningChannel probed(rec_cfg);
    run_channel(probed, s.duration_s);
    if (probed.output_hash() != rep.output_hash)
      chk.fail("probe_neutrality", "attaching the stimulus recorder changed the output stream");

    auto trace = std::make_shared<sensor::StimulusTrace>(recorder.take());
    auto replay_cfg = channel_config(s);
    replay_cfg.stimulus_factory = [trace](double base_rate_hz) {
      return std::make_unique<sensor::RecordedSource>(trace, base_rate_hz);
    };
    engine::ConditioningChannel replay(replay_cfg);
    run_channel(replay, s.duration_s);
    if (replay.output_hash() != rep.output_hash)
      chk.fail("trace_replay",
               "replaying the captured stimulus diverges from the synthetic run (hash " +
                   std::to_string(replay.output_hash()) + " vs " +
                   std::to_string(rep.output_hash) + ")");
  }

  // ---- class-specific differential references ------------------------------
  switch (s.cls) {
    case ScenarioClass::Invariant: {
      if (s.open_loop && fault_free) {
        // Composite neutrality check: without supervisor and observability the
        // open-loop chain takes the batched block path — supervisor
        // pass-through, observer read-onlyness and batch-vs-serial equivalence
        // must each be bit-exact, so their composition must be too.
        engine::ConditioningChannel ref(
            make_config(s, s.full_fidelity, /*with_safety=*/false, /*with_obs=*/false));
        run_channel(ref, s.duration_s);
        if (ref.output_hash() != rep.output_hash)
          chk.fail("neutrality",
                   "bare batched run diverges from the supervised+observed serial run");
      }
      break;
    }
    case ScenarioClass::DiffIdeal: {
      engine::ConditioningChannel ref(
          make_config(s, /*full_fidelity=*/false, /*with_safety=*/true, /*with_obs=*/false));
      run_channel(ref, s.duration_s);
      const auto& fo = ch.outputs();
      const auto& io = ref.outputs();
      if (fo.size() != io.size()) {
        chk.fail("diff_ideal", "sample counts differ: full " + std::to_string(fo.size()) +
                                   " vs ideal " + std::to_string(io.size()));
        break;
      }
      const std::size_t start = static_cast<std::size_t>(ocfg.settle_frac * fo.size());
      for (std::size_t i = start; i < fo.size(); ++i) {
        const double tol = ocfg.diff_offset_v + ocfg.diff_scale_frac * std::abs(io[i] - kNullV);
        if (std::abs(fo[i] - io[i]) > tol) {
          chk.fail("diff_ideal", "sample " + std::to_string(i) + ": full " + fmt(fo[i]) +
                                     " vs ideal " + fmt(io[i]) + " exceeds tolerance " + fmt(tol));
          break;
        }
      }
      break;
    }
    case ScenarioClass::Iss: {
      // The monitor firmware only *reads*: running it must not perturb the
      // numeric chain by a single bit.
      Scenario bare = s;
      bare.cls = ScenarioClass::Invariant;  // drops with_mcu + firmware load
      engine::ConditioningChannel ref(
          make_config(bare, s.full_fidelity, /*with_safety=*/true, /*with_obs=*/false));
      run_channel(ref, s.duration_s);
      if (ref.output_hash() != rep.output_hash)
        chk.fail("iss_neutrality", "output stream differs with the 8051 monitor running");

      // Drive the resident monitor over the UART host link and cross-check
      // firmware-visible register state against the C++-visible fabric.
      auto& plat = g->platform();
      mcu::MonitorHost host(plat.cpu(), plat.host());
      if (!host.ping()) {
        chk.fail("iss_monitor", "monitor firmware did not answer ping");
        break;
      }
      const auto map = plat.config().map;
      auto check_reg = [&](std::uint16_t reg, const char* name) {
        const auto fw = host.read_word(static_cast<std::uint16_t>(map.regfile + 2 * reg));
        const std::uint16_t cpp = plat.regs().read(reg);
        if (!fw)
          chk.fail("iss_monitor", std::string("monitor read of ") + name + " timed out");
        else if (*fw != cpp)
          chk.fail("iss_monitor", std::string(name) + ": firmware read " + std::to_string(*fw) +
                                      " but fabric holds " + std::to_string(cpp));
      };
      check_reg(core::reg::kRateOut, "rate_out");
      check_reg(core::reg::kQuad, "quad");
      check_reg(static_cast<std::uint16_t>(core::reg::kDiag + safety::diag::kDtcReg), "diag_dtc");
      check_reg(static_cast<std::uint16_t>(core::reg::kDiag + safety::diag::kState), "diag_state");
      break;
    }
    case ScenarioClass::Fault:
      break;  // fault invariants already checked above
  }

  return rep;
}

}  // namespace ascp::conformance
