// oracle.hpp — differential conformance oracle for randomized scenarios.
//
// Runs a Scenario through the implementations the platform claims agree —
// the fixed-point GyroSystem pipeline, the ideal (MATLAB-level) chain, and
// firmware-driven runs on the MCS-51 ISS — and asserts:
//
//   * tolerance envelopes: every output sample is finite, and for fault-free
//     scenarios stays inside the bound the static fixed-point range analyzer
//     proves for the "sense.output" node (the analyzer is the oracle's
//     source of truth for "how big can this legally get");
//   * platform invariants: no DTC latches before the first injected fault,
//     every detectable injected fault latches its catalogue DTC, the
//     documented undetectable fault latches nothing, supervisor state
//     transitions only move between adjacent states, and the PLL relocks
//     after every injected lock-loss;
//   * event-log completeness: every injected fault produces its
//     `fault_inject` event and every detectable one a Dtc latch event;
//   * differential agreement: fixed-point vs ideal outputs agree within a
//     settling-aware envelope; with-MCU runs are bit-identical to
//     MCU-less runs and the monitor firmware's register reads match the
//     C++-visible register fabric;
//   * replay determinism: the report carries the FNV-1a output hash so
//     callers can assert same-seed ⇒ same-trace (solo, replay, farm).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "conformance/scenario.hpp"
#include "platform/engine/conditioning_channel.hpp"

namespace ascp::conformance {

/// Oracle tolerance knobs. Defaults are calibrated against the shipped
/// operating point and documented where they are derived (see oracle.cpp).
struct OracleConfig {
  /// Fixed-point vs ideal per-sample agreement in the settled tail:
  /// |full − ideal| ≤ diff_offset_v + diff_scale_frac·|ideal − null|.
  double diff_offset_v = 0.05;
  double diff_scale_frac = 0.10;
  /// Fraction of the output stream treated as settling transient and
  /// excluded from the differential comparison.
  double settle_frac = 0.5;
  /// Extra margin on the range-analyzer output envelope [V].
  double envelope_margin_v = 1e-6;
};

struct Violation {
  std::string check;   ///< stable check identifier, e.g. "envelope", "dtc_missing"
  std::string detail;  ///< human-readable specifics (sample index, values)
};

struct ScenarioReport {
  std::vector<Violation> violations;
  std::uint64_t output_hash = 0;  ///< FNV-1a over the SUT output stream
  std::size_t outputs = 0;        ///< decimated samples produced
  double envelope_v = 0.0;        ///< derived |output| bound (0 = not applied)

  bool ok() const { return violations.empty(); }
  /// One line per violation (empty string when ok).
  std::string summary() const;
};

/// Engine configuration for the scenario's system under test. Public so the
/// fuzz tool can batch the same configs through a ChannelFarm (ChannelFarm is
/// the execution backend for fuzz batches; with FarmConfig::reseed_channels
/// = false the farm reproduces solo-run streams bit-exactly).
engine::ChannelConfig channel_config(const Scenario& s);

/// |output| envelope for a fault-free run of this scenario, derived from the
/// static range analyzer ("sense.output" adversarial bound, in volts).
double derive_output_envelope_v(const Scenario& s);

/// Run the scenario through the SUT (plus reference runs demanded by its
/// class) and check every applicable invariant.
ScenarioReport run_scenario(const Scenario& s, const OracleConfig& cfg = {});

}  // namespace ascp::conformance
