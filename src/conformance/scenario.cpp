#include "conformance/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "safety/dtc.hpp"

namespace ascp::conformance {

namespace {

double eval_segments(const std::vector<Segment>& segs, double fallback, double t) {
  if (segs.empty()) return fallback;
  double start = 0.0;
  double last = 0.0;
  for (const auto& seg : segs) {
    const double end = start + seg.duration;
    const bool inside = t < end || &seg == &segs.back();
    const double tl = inside ? (t - start) : seg.duration;
    switch (seg.kind) {
      case SegKind::Constant:
        last = seg.a;
        break;
      case SegKind::Sine:
        last = seg.b + seg.a * std::sin(2.0 * std::numbers::pi * seg.f0 * tl);
        break;
      case SegKind::Ramp: {
        const double u = seg.duration > 0.0 ? std::clamp(tl / seg.duration, 0.0, 1.0) : 1.0;
        last = seg.a + (seg.b - seg.a) * u;
        break;
      }
      case SegKind::Chirp: {
        // Linear-frequency sweep: phase(t) = 2π (f0 t + (f1−f0) t² / 2T).
        const double T = seg.duration > 0.0 ? seg.duration : 1.0;
        const double phase =
            2.0 * std::numbers::pi * (seg.f0 * tl + (seg.f1 - seg.f0) * tl * tl / (2.0 * T));
        last = seg.b + seg.a * std::sin(phase);
        break;
      }
      case SegKind::Trace: {
        // Zero-order hold over the recorded samples (RecordedSource's Hold
        // interpolation); the final sample holds past the recording's end.
        if (seg.samples.empty()) {
          last = 0.0;
          break;
        }
        const double pos = seg.f0 > 0.0 ? tl * seg.f0 : 0.0;
        const double n = static_cast<double>(seg.samples.size());
        last = seg.samples[pos >= n ? seg.samples.size() - 1
                                    : static_cast<std::size_t>(pos < 0.0 ? 0.0 : pos)];
        break;
      }
    }
    if (t < end) return last;
    start = end;
  }
  // Past the last segment: hold its final value.
  return last;
}

double eval_bursts(const std::vector<Burst>& bursts, double t) {
  double v = 0.0;
  for (const auto& b : bursts) {
    if (t < b.t0 || t >= b.t0 + b.duration || b.duration <= 0.0) continue;
    const double tl = t - b.t0;
    if (b.freq > 0.0)
      v += b.amplitude * std::sin(2.0 * std::numbers::pi * b.freq * tl);
    else
      v += b.amplitude * std::sin(std::numbers::pi * tl / b.duration);  // half-sine shock
  }
  return v;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

[[noreturn]] void parse_fail(int line, const std::string& what) {
  throw std::runtime_error("scenario parse error at line " + std::to_string(line) + ": " + what);
}

}  // namespace

sensor::Profile rate_profile(const Scenario& s) {
  auto segs = s.rate;
  auto bursts = s.bursts;
  return sensor::Profile([segs = std::move(segs), bursts = std::move(bursts)](double t) {
    return eval_segments(segs, 0.0, t) + eval_bursts(bursts, t);
  });
}

sensor::Profile temp_profile(const Scenario& s) {
  auto segs = s.temp;
  return sensor::Profile([segs = std::move(segs)](double t) {
    return eval_segments(segs, 25.0, t);
  });
}

bool fault_requires_full(FaultKind k) {
  switch (k) {
    case FaultKind::PrimaryAdcStuck:
    case FaultKind::SenseAdcStuckNull:
    case FaultKind::ReferenceDrift:
    case FaultKind::PgaGainError:
    case FaultKind::ChargeAmpOpen:
      return true;
    default:
      return false;
  }
}

bool fault_needs_mcu(FaultKind k) { return k == FaultKind::FirmwareHang; }

std::uint16_t fault_expected_dtc(FaultKind k) {
  // Mirrors the expected_dtc of each safety::faults:: builder.
  switch (k) {
    case FaultKind::DriveElectrodeOpen: return safety::kDtcDriveCollapse;
    case FaultKind::DriveElectrodeStuck: return safety::kDtcDriveCollapse;
    case FaultKind::QuadratureStep: return safety::kDtcQuadRange;
    case FaultKind::PrimaryAdcStuck: return safety::kDtcAdcStuck;
    case FaultKind::SenseAdcStuckNull: return 0;  // undetectable by design
    case FaultKind::ReferenceDrift: return safety::kDtcGainAnomaly;
    case FaultKind::PgaGainError: return safety::kDtcGainAnomaly;
    case FaultKind::ChargeAmpOpen: return safety::kDtcDriveCollapse;
    case FaultKind::NcoPhaseJump: return safety::kDtcPllUnlock;
    case FaultKind::RegisterBitFlip: return safety::kDtcCfgCorrupt;
    case FaultKind::FirmwareHang: return safety::kDtcWatchdogBite;
    case FaultKind::EepromCalCorruption: return safety::kDtcCalCrc;
  }
  return 0;
}

bool fault_expects_relock(FaultKind k) {
  // The two catalogue faults that disturb the drive loop and then leave the
  // hardware healthy: the phase jump itself, and the watchdog recovery path
  // (which resets and re-acquires the loops).
  return k == FaultKind::NcoPhaseJump || k == FaultKind::FirmwareHang;
}

const char* class_name(ScenarioClass c) {
  switch (c) {
    case ScenarioClass::Invariant: return "invariant";
    case ScenarioClass::DiffIdeal: return "diff_ideal";
    case ScenarioClass::Fault: return "fault";
    case ScenarioClass::Iss: return "iss";
  }
  return "?";
}

const char* seg_kind_name(SegKind k) {
  switch (k) {
    case SegKind::Constant: return "const";
    case SegKind::Sine: return "sine";
    case SegKind::Ramp: return "ramp";
    case SegKind::Chirp: return "chirp";
    case SegKind::Trace: return "trace";
  }
  return "?";
}

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::DriveElectrodeOpen: return "drive_electrode_open";
    case FaultKind::DriveElectrodeStuck: return "drive_electrode_stuck";
    case FaultKind::QuadratureStep: return "quadrature_step";
    case FaultKind::PrimaryAdcStuck: return "primary_adc_stuck";
    case FaultKind::SenseAdcStuckNull: return "sense_adc_stuck_null";
    case FaultKind::ReferenceDrift: return "reference_drift";
    case FaultKind::PgaGainError: return "pga_gain_error";
    case FaultKind::ChargeAmpOpen: return "charge_amp_open";
    case FaultKind::NcoPhaseJump: return "nco_phase_jump";
    case FaultKind::RegisterBitFlip: return "register_bit_flip";
    case FaultKind::FirmwareHang: return "firmware_hang";
    case FaultKind::EepromCalCorruption: return "eeprom_cal_corruption";
  }
  return "?";
}

bool parse_class(std::string_view text, ScenarioClass& out) {
  for (auto c : {ScenarioClass::Invariant, ScenarioClass::DiffIdeal, ScenarioClass::Fault,
                 ScenarioClass::Iss})
    if (text == class_name(c)) {
      out = c;
      return true;
    }
  return false;
}

bool parse_seg_kind(std::string_view text, SegKind& out) {
  for (auto k : {SegKind::Constant, SegKind::Sine, SegKind::Ramp, SegKind::Chirp, SegKind::Trace})
    if (text == seg_kind_name(k)) {
      out = k;
      return true;
    }
  return false;
}

bool parse_fault_kind(std::string_view text, FaultKind& out) {
  for (auto k :
       {FaultKind::DriveElectrodeOpen, FaultKind::DriveElectrodeStuck, FaultKind::QuadratureStep,
        FaultKind::PrimaryAdcStuck, FaultKind::SenseAdcStuckNull, FaultKind::ReferenceDrift,
        FaultKind::PgaGainError, FaultKind::ChargeAmpOpen, FaultKind::NcoPhaseJump,
        FaultKind::RegisterBitFlip, FaultKind::FirmwareHang, FaultKind::EepromCalCorruption})
    if (text == fault_kind_name(k)) {
      out = k;
      return true;
    }
  return false;
}

std::string to_text(const Scenario& s) {
  std::ostringstream os;
  os << "ascp-scenario v1\n";
  os << "seed " << s.seed << "\n";
  os << "class " << class_name(s.cls) << "\n";
  os << "fidelity " << (s.full_fidelity ? "full" : "ideal") << "\n";
  os << "duration " << fmt_double(s.duration_s) << "\n";
  os << "quad_scale " << fmt_double(s.quad_scale) << "\n";
  os << "drift_scale " << fmt_double(s.drift_scale) << "\n";
  os << "output_bw " << fmt_double(s.output_bw_hz) << "\n";
  os << "datapath_bits " << s.datapath_bits << "\n";
  os << "open_loop " << (s.open_loop ? 1 : 0) << "\n";
  auto dump_segs = [&](const char* tag, const std::vector<Segment>& segs) {
    for (const auto& g : segs) {
      os << tag << ' ' << seg_kind_name(g.kind) << ' ' << fmt_double(g.duration) << ' '
         << fmt_double(g.a) << ' ' << fmt_double(g.b) << ' ' << fmt_double(g.f0) << ' '
         << fmt_double(g.f1);
      // Trace segments append their sample count and literal values.
      if (g.kind == SegKind::Trace) {
        os << ' ' << g.samples.size();
        for (double v : g.samples) os << ' ' << fmt_double(v);
      }
      os << "\n";
    }
  };
  dump_segs("rate", s.rate);
  dump_segs("temp", s.temp);
  for (const auto& b : s.bursts)
    os << "burst " << fmt_double(b.t0) << ' ' << fmt_double(b.duration) << ' '
       << fmt_double(b.amplitude) << ' ' << fmt_double(b.freq) << "\n";
  for (const auto& r : s.regs)
    os << "reg " << (r.afe ? "afe" : "dsp") << ' ' << r.addr << ' ' << r.value << "\n";
  for (const auto& f : s.faults)
    os << "fault " << fault_kind_name(f.kind) << ' ' << f.inject_at << ' ' << f.clear_after << ' '
       << fmt_double(f.param) << "\n";
  os << "end\n";
  return os.str();
}

Scenario from_text(std::string_view text) {
  Scenario s;
  s.rate.clear();
  s.temp.clear();
  std::istringstream is{std::string(text)};
  std::string line;
  int lineno = 0;
  bool saw_header = false, saw_end = false;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments and blank lines.
    if (auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    if (!saw_header) {
      std::string ver;
      if (key != "ascp-scenario" || !(ls >> ver) || ver != "v1")
        parse_fail(lineno, "expected 'ascp-scenario v1' header");
      saw_header = true;
      continue;
    }
    auto need = [&](auto&... vals) {
      if (!((ls >> vals) && ...)) parse_fail(lineno, "malformed '" + key + "' record");
    };
    if (key == "seed") {
      need(s.seed);
    } else if (key == "class") {
      std::string v;
      need(v);
      if (!parse_class(v, s.cls)) parse_fail(lineno, "unknown class '" + v + "'");
    } else if (key == "fidelity") {
      std::string v;
      need(v);
      if (v != "full" && v != "ideal") parse_fail(lineno, "unknown fidelity '" + v + "'");
      s.full_fidelity = v == "full";
    } else if (key == "duration") {
      need(s.duration_s);
    } else if (key == "quad_scale") {
      need(s.quad_scale);
    } else if (key == "drift_scale") {
      need(s.drift_scale);
    } else if (key == "output_bw") {
      need(s.output_bw_hz);
    } else if (key == "datapath_bits") {
      need(s.datapath_bits);
    } else if (key == "open_loop") {
      int v = 0;
      need(v);
      s.open_loop = v != 0;
    } else if (key == "rate" || key == "temp") {
      Segment g;
      std::string kind;
      need(kind);
      if (!parse_seg_kind(kind, g.kind)) parse_fail(lineno, "unknown segment kind '" + kind + "'");
      need(g.duration, g.a, g.b, g.f0, g.f1);
      if (g.kind == SegKind::Trace) {
        std::size_t count = 0;
        need(count);
        if (count > (1u << 24)) parse_fail(lineno, "trace sample count implausible");
        g.samples.resize(count);
        for (auto& v : g.samples) need(v);
      }
      (key == "rate" ? s.rate : s.temp).push_back(g);
    } else if (key == "burst") {
      Burst b;
      need(b.t0, b.duration, b.amplitude, b.freq);
      s.bursts.push_back(b);
    } else if (key == "reg") {
      RegWrite r;
      std::string file;
      need(file);
      if (file != "dsp" && file != "afe") parse_fail(lineno, "unknown register file '" + file + "'");
      r.afe = file == "afe";
      need(r.addr, r.value);
      s.regs.push_back(r);
    } else if (key == "fault") {
      FaultEvent f;
      std::string kind;
      need(kind);
      if (!parse_fault_kind(kind, f.kind)) parse_fail(lineno, "unknown fault kind '" + kind + "'");
      need(f.inject_at, f.clear_after, f.param);
      s.faults.push_back(f);
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      parse_fail(lineno, "unknown record '" + key + "'");
    }
  }
  if (!saw_header) parse_fail(lineno, "missing 'ascp-scenario v1' header");
  if (!saw_end) parse_fail(lineno, "missing 'end' record");
  return s;
}

bool save_scenario(const std::string& path, const Scenario& s) {
  std::ofstream f(path);
  if (!f) return false;
  f << to_text(s);
  return static_cast<bool>(f);
}

Scenario load_scenario(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open scenario file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return from_text(buf.str());
}

}  // namespace ascp::conformance
