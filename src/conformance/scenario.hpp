// scenario.hpp — the conformance fuzzer's unit of work.
//
// A Scenario is a complete, self-contained description of one randomized
// platform run: stimulus profiles (rate/temperature segments plus
// vibration/shock bursts), MEMS quadrature/drift scaling, register
// configuration writes drawn from the legal RegisterFile field ranges, and a
// fault-campaign schedule from the PR-1 standard catalogue. Scenarios are
// pure data — deterministically replayable from their text form — so a
// failing case can be auto-shrunk, written to a `.scenario` file, checked
// into the corpus, and re-run bit-identically by `scenario_fuzz --replay`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sensor/environment.hpp"

namespace ascp::conformance {

/// Which oracle tier the scenario exercises (generation-time decision; the
/// oracle derives its check set from this plus the fault list).
enum class ScenarioClass {
  Invariant,  ///< fixed-point pipeline alone: envelopes + supervisor legality
  DiffIdeal,  ///< fixed-point vs ideal (MATLAB-level) differential
  Fault,      ///< fault campaign: detection events, DTCs, relock, recovery
  Iss,        ///< firmware-driven: MCU monitor vs chain, bit-identity with MCU
};

/// Piecewise stimulus segment, evaluated in segment-local time. Trace plays
/// back literal samples (recorded data embedded in the scenario): f0 is the
/// sample rate, samples are held zero-order in segment-local time and the
/// last one holds past the end — exactly RecordedSource's Hold semantics, so
/// a `.strace` capture drops into a scenario loss-free.
enum class SegKind { Constant, Sine, Ramp, Chirp, Trace };

struct Segment {
  SegKind kind = SegKind::Constant;
  double duration = 0.1;  ///< seconds
  double a = 0.0;         ///< Constant: value; Sine/Chirp: amplitude; Ramp: start value
  double b = 0.0;         ///< Ramp: end value; Sine/Chirp: baseline offset
  double f0 = 0.0;        ///< Sine: frequency; Chirp: start frequency; Trace: sample rate [Hz]
  double f1 = 0.0;        ///< Chirp: end frequency [Hz]
  std::vector<double> samples;  ///< Trace: recorded values (empty for other kinds)
};

/// Additive rate disturbance: freq > 0 is a vibration burst
/// amplitude·sin(2π·freq·(t−t0)); freq == 0 is a half-sine shock pulse.
struct Burst {
  double t0 = 0.0;
  double duration = 0.01;
  double amplitude = 0.0;  ///< °/s
  double freq = 0.0;       ///< Hz
};

/// The PR-1 standard fault catalogue, by stable serialization name.
enum class FaultKind {
  DriveElectrodeOpen,
  DriveElectrodeStuck,
  QuadratureStep,
  PrimaryAdcStuck,
  SenseAdcStuckNull,
  ReferenceDrift,
  PgaGainError,
  ChargeAmpOpen,
  NcoPhaseJump,
  RegisterBitFlip,
  FirmwareHang,
  EepromCalCorruption,
};

struct FaultEvent {
  FaultKind kind = FaultKind::NcoPhaseJump;
  long inject_at = 0;      ///< DSP-sample index
  long clear_after = -1;   ///< samples until auto-clear (−1 = permanent)
  double param = 0.0;      ///< kind-specific magnitude (0 = catalogue default)
};

/// One configuration write into the platform's register fabric, applied
/// before power-on (`afe` selects the analog-die file behind the second TAP).
struct RegWrite {
  bool afe = false;
  std::uint16_t addr = 0;
  std::uint16_t value = 0;
};

struct Scenario {
  std::uint64_t seed = 1;
  ScenarioClass cls = ScenarioClass::Invariant;
  bool full_fidelity = true;  ///< pipeline under test: Full (AFE + quantization) vs Ideal
  double duration_s = 0.2;
  double quad_scale = 1.0;    ///< MEMS quadrature-stiffness multiplier
  double drift_scale = 1.0;   ///< MEMS temperature-coefficient multiplier
  double output_bw_hz = 75.0; ///< Table 1 programmable output bandwidth
  int datapath_bits = 0;      ///< 0 = float datapath; else RTL wordlength
  bool open_loop = false;     ///< sense mode (realized through the mode register)
  std::vector<Segment> rate;
  std::vector<Segment> temp;
  std::vector<Burst> bursts;
  std::vector<RegWrite> regs;
  std::vector<FaultEvent> faults;
};

// ---- realization -----------------------------------------------------------

/// Rate stimulus: concatenated segments (last value held past the end) plus
/// every active burst.
sensor::Profile rate_profile(const Scenario& s);
/// Temperature stimulus: concatenated segments, 25 °C when empty.
sensor::Profile temp_profile(const Scenario& s);

// ---- fault metadata --------------------------------------------------------

/// AFE-layer faults reach into charge amps / PGAs / ADCs, which only exist at
/// Full fidelity.
bool fault_requires_full(FaultKind k);
/// Faults that only make sense with the 8051 subsystem running.
bool fault_needs_mcu(FaultKind k);
/// The catalogue DTC the supervisor must latch (0 = documented undetectable).
std::uint16_t fault_expected_dtc(FaultKind k);
/// Faults whose injected disturbance the platform must fully recover the
/// drive loop from (the "PLL relock after every injected lock-loss" check).
bool fault_expects_relock(FaultKind k);

// ---- names -----------------------------------------------------------------

const char* class_name(ScenarioClass c);
const char* seg_kind_name(SegKind k);
const char* fault_kind_name(FaultKind k);
bool parse_class(std::string_view text, ScenarioClass& out);
bool parse_seg_kind(std::string_view text, SegKind& out);
bool parse_fault_kind(std::string_view text, FaultKind& out);

// ---- serialization ---------------------------------------------------------

/// Text form of the `.scenario` format (round-trip stable: parse(to_text(s))
/// reproduces s exactly, including float bit patterns).
std::string to_text(const Scenario& s);
/// Parse a `.scenario` text. Throws std::runtime_error with a line-numbered
/// message on malformed input.
Scenario from_text(std::string_view text);

/// File helpers; save returns false on I/O failure, load throws on parse or
/// I/O failure.
bool save_scenario(const std::string& path, const Scenario& s);
Scenario load_scenario(const std::string& path);

}  // namespace ascp::conformance
