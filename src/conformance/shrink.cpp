#include "conformance/shrink.hpp"

#include <algorithm>

namespace ascp::conformance {

namespace {

constexpr double kDspFs = 240e3;

/// Shortest duration that still covers every remaining fault's detection
/// window (injection + 0.25 s), or 0.05 s for fault-free scenarios.
double min_duration(const Scenario& s) {
  double need = 0.05;
  for (const auto& f : s.faults)
    need = std::max(need, static_cast<double>(f.inject_at) / kDspFs + 0.25);
  return need;
}

void clamp_stimulus(Scenario& s) {
  // Keep segment bookkeeping consistent with a shortened run: stretch the
  // final (or only) segment so the stimulus still spans the duration.
  if (!s.rate.empty()) s.rate.back().duration = std::max(s.rate.back().duration, s.duration_s);
  if (!s.temp.empty()) s.temp.back().duration = std::max(s.temp.back().duration, s.duration_s);
  // Bursts past the new end are dead weight; the drop pass removes them, but
  // pruning here keeps intermediate candidates canonical.
  std::erase_if(s.bursts, [&](const Burst& b) { return b.t0 >= s.duration_s; });
}

}  // namespace

Scenario shrink_scenario(Scenario failing, const StillFails& still_fails, int max_attempts,
                         ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;

  auto try_edit = [&](Scenario candidate) {
    if (st.attempts >= max_attempts) return false;
    ++st.attempts;
    clamp_stimulus(candidate);
    if (!still_fails(candidate)) return false;
    ++st.accepted;
    failing = std::move(candidate);
    return true;
  };

  bool progress = true;
  while (progress && st.attempts < max_attempts) {
    progress = false;

    // Drop faults one at a time (a multi-fault repro is rarely minimal).
    for (std::size_t i = 0; i < failing.faults.size();) {
      Scenario c = failing;
      c.faults.erase(c.faults.begin() + static_cast<long>(i));
      if (try_edit(std::move(c)))
        progress = true;
      else
        ++i;
    }
    // Drop bursts.
    for (std::size_t i = 0; i < failing.bursts.size();) {
      Scenario c = failing;
      c.bursts.erase(c.bursts.begin() + static_cast<long>(i));
      if (try_edit(std::move(c)))
        progress = true;
      else
        ++i;
    }
    // Drop register writes.
    for (std::size_t i = 0; i < failing.regs.size();) {
      Scenario c = failing;
      c.regs.erase(c.regs.begin() + static_cast<long>(i));
      if (try_edit(std::move(c)))
        progress = true;
      else
        ++i;
    }
    // Drop trailing stimulus segments (keep at least one of each).
    while (failing.rate.size() > 1) {
      Scenario c = failing;
      c.rate.pop_back();
      if (!try_edit(std::move(c))) break;
      progress = true;
    }
    while (failing.temp.size() > 1) {
      Scenario c = failing;
      c.temp.pop_back();
      if (!try_edit(std::move(c))) break;
      progress = true;
    }
    // Truncate recorded traces (halve the sample tail — a shorter recording
    // that still reproduces is a much smaller repro artifact).
    for (std::size_t i = 0; i < failing.rate.size(); ++i) {
      while (failing.rate[i].kind == SegKind::Trace && failing.rate[i].samples.size() > 2) {
        Scenario c = failing;
        auto& g = c.rate[i];
        g.samples.resize(std::max<std::size_t>(2, g.samples.size() / 2));
        if (!try_edit(std::move(c))) break;
        progress = true;
      }
    }
    // Simplify the surviving stimulus to constants. A trace collapses to its
    // first sample (its b slot is meaningless); other kinds prefer their
    // baseline offset.
    for (std::size_t i = 0; i < failing.rate.size(); ++i) {
      if (failing.rate[i].kind == SegKind::Constant) continue;
      Scenario c = failing;
      auto& g = c.rate[i];
      const double level = g.kind == SegKind::Trace
                               ? (g.samples.empty() ? 0.0 : g.samples.front())
                               : (g.b != 0.0 ? g.b : g.a);
      g = Segment{SegKind::Constant, g.duration, level, 0.0, 0.0, 0.0};
      if (try_edit(std::move(c))) progress = true;
    }
    // Halve the duration toward the detection-window floor.
    while (failing.duration_s > min_duration(failing) + 1e-9) {
      Scenario c = failing;
      c.duration_s = std::max(min_duration(c), c.duration_s / 2.0);
      if (!try_edit(std::move(c))) break;
      progress = true;
    }
    // Neutralize the MEMS corner and the wordlength ablation.
    if (failing.quad_scale != 1.0 || failing.drift_scale != 1.0 || failing.datapath_bits != 0) {
      Scenario c = failing;
      c.quad_scale = 1.0;
      c.drift_scale = 1.0;
      c.datapath_bits = 0;
      if (try_edit(std::move(c))) progress = true;
    }
  }
  return failing;
}

}  // namespace ascp::conformance
