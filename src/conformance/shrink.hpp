// shrink.hpp — automatic minimization of failing scenarios.
//
// When the oracle flags a scenario, the raw random case is usually noisy:
// extra bursts, multi-segment stimulus, register writes that have nothing to
// do with the failure. The shrinker greedily applies structure-reducing
// candidate edits — drop faults, drop bursts, drop register writes, drop
// trailing stimulus segments, halve the duration, neutralize the MEMS
// corner — keeping an edit only if the caller-supplied predicate confirms
// the scenario *still fails*. The result is the minimal `.scenario` repro
// that ships in a bug report and replays via `scenario_fuzz --replay`.
#pragma once

#include <functional>

#include "conformance/scenario.hpp"

namespace ascp::conformance {

/// Returns true when the candidate scenario still reproduces the failure.
using StillFails = std::function<bool(const Scenario&)>;

struct ShrinkStats {
  int attempts = 0;  ///< candidate scenarios tried (predicate invocations)
  int accepted = 0;  ///< edits that kept the failure and were retained
};

/// Greedy fixed-point shrink: cycles through the edit passes until a full
/// cycle makes no progress or `max_attempts` predicate calls are spent.
/// `failing` must satisfy the predicate on entry; the returned scenario
/// always does.
Scenario shrink_scenario(Scenario failing, const StillFails& still_fails, int max_attempts = 200,
                         ShrinkStats* stats = nullptr);

}  // namespace ascp::conformance
