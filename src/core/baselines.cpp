#include "core/baselines.hpp"

#include <chrono>
#include <cmath>

#include "common/math.hpp"
#include "dsp/modem.hpp"

namespace ascp::core {

BaselineConfig adxrs300_like() {
  BaselineConfig cfg;
  // Low-Q resonator: surface-micromachined polysilicon in air — this is
  // what buys the 35 ms turn-on (envelope τ = 2Q/ω0 ≈ 8.5 ms).
  cfg.mems.f0_hz = 14e3;
  cfg.mems.q_drive = 400.0;
  cfg.mems.q_sense = 400.0;
  // Low-Q element needs a stronger electrostatic drive to reach the same
  // amplitude (F = x·ω0²/Q quadruples vs the high-Q ring).
  cfg.mems.force_per_volt = 4.0;
  cfg.mems.brownian_accel_density = 1.5e-5;
  // Split-mode operation: the sense resonance sits 200 Hz above the drive,
  // so the rate response is stiffness-dominated and flat across the output
  // filter's 40 Hz — the analog way to buy bandwidth (at a gain penalty).
  cfg.mems.mode_split_hz = 200.0;
  cfg.drive.pll.f_center = 14e3;
  cfg.drive.pll.f_min = 12e3;
  cfg.drive.pll.f_max = 16e3;
  // Continuous-time AGC/PLL settle much faster than the platform's digital
  // loops — part of how the analog part reaches its 35 ms turn-on.
  cfg.drive.agc.kp = 2.0;
  cfg.drive.agc.ki = 600.0;
  cfg.drive.agc.settle_count = 500;
  cfg.drive.pll.ki = 12000.0;
  cfg.drive.pll.lock_count = 500;
  cfg.nominal_sensitivity = 5e-3;   // Table 2: 5 mV/°/s typ
  cfg.trim_sigma = 0.04;            // 4.6–5.4 mV/°/s initial spread
  cfg.sens_tempco = -4e-4;
  cfg.null_v = 2.5;
  cfg.null_sigma_v = 0.15;          // 2.3–2.7 V initial nulls
  cfg.null_tempco_v = 1.5e-3;
  cfg.output_lpf_hz = 40.0;         // Table 2: 40 Hz bandwidth
  cfg.output_lpf_poles = 1;
  cfg.noise_dps_rt_hz = 0.1;        // Table 2: 0.1 °/s/√Hz
  cfg.full_scale_dps = 300.0;
  return cfg;
}

BaselineConfig gyrostar_like() {
  BaselineConfig cfg;
  // Piezoelectric tuning-fork element (ENV-05 class): moderate Q, very low
  // transduction, loose factory trim, narrow temperature window.
  cfg.mems.f0_hz = 15e3;
  cfg.mems.q_drive = 2000.0;
  cfg.mems.q_sense = 2000.0;
  cfg.mems.brownian_accel_density = 2e-5;
  cfg.mems.mode_split_hz = 120.0;
  cfg.drive = default_drive_loop();
  cfg.nominal_sensitivity = 0.67e-3;  // Table 3: 0.67 mV/°/s
  cfg.trim_sigma = 0.10;              // 0.54–0.80 spread
  cfg.sens_tempco = 1.0e-3;           // ±5 % over −5..+75 °C
  cfg.null_v = 1.35;
  cfg.null_sigma_v = 0.05;
  cfg.null_tempco_v = 2.0e-3;
  cfg.demod_phase_err_sigma = 0.05;
  cfg.output_lpf_hz = 50.0;           // Table 3: < 50 Hz
  cfg.output_lpf_poles = 2;
  cfg.noise_dps_rt_hz = 0.15;
  cfg.full_scale_dps = 300.0;
  return cfg;
}

AnalogGyroBaseline::AnalogGyroBaseline(const BaselineConfig& cfg) : cfg_(cfg) {
  build(1);
}

void AnalogGyroBaseline::build(std::uint64_t seed) {
  Rng rng(seed);
  sensor::GyroMemsConfig mems_cfg = cfg_.mems;
  mems_cfg.sim_fs = cfg_.analog_fs;
  mems_ = std::make_unique<sensor::GyroMems>(mems_cfg, rng.fork(1));

  DriveLoopConfig drive_cfg = cfg_.drive;
  const double loop_fs = cfg_.analog_fs / cfg_.loop_div;
  drive_cfg.pll.fs = loop_fs;
  drive_cfg.agc.fs = loop_fs;
  drive_ = std::make_unique<DriveLoop>(drive_cfg);
  demod_ = std::make_unique<dsp::IqDemodulator>(loop_fs, cfg_.demod_bw_hz);

  trim_gain_ = 1.0 + rng.gaussian(cfg_.trim_sigma);
  null_draw_ = rng.gaussian(cfg_.null_sigma_v);
  phase_err_ = rng.gaussian(cfg_.demod_phase_err_sigma);
  noise_rng_ = rng.fork(9);
  noise_sigma_ = cfg_.noise_dps_rt_hz * cfg_.nominal_sensitivity * std::sqrt(loop_fs / 2.0);

  // Factory scaling: demod volts per °/s from the element physics at the
  // AGC operating point (the trim station sets the final analog gain).
  // The split-mode sense response to a drive-frequency force is
  // H(jωd) = 1/((ωs²−ωd²) + jωd·ωs/Qs): magnitude sets the gain, and its
  // phase φH sets where the Coriolis signal lands in the I/Q plane — the
  // analog demodulator is built rotated to that angle.
  const double x_amp = drive_cfg.agc.target / cfg_.sense_gain_v_per_m;
  const double w0d = kTwoPi * cfg_.mems.f0_hz;
  const double w0s = kTwoPi * (cfg_.mems.f0_hz + cfg_.mems.mode_split_hz);
  const double split_term = w0s * w0s - w0d * w0d;
  const double damp_term = w0d * w0s / cfg_.mems.q_sense;
  const double h_mag = 1.0 / std::hypot(split_term, damp_term);
  demod_angle_ = std::atan2(damp_term, split_term);
  const double omega_per_dps = kPi / 180.0;
  const double raw_v_per_dps = 2.0 * cfg_.mems.angular_gain * omega_per_dps * w0d * x_amp *
                               h_mag * cfg_.sense_gain_v_per_m;
  scale_v_per_demod_ = cfg_.nominal_sensitivity / raw_v_per_dps;

  lpf_state_[0] = lpf_state_[1] = 0.0;
  lpf_alpha_ = 1.0 - std::exp(-kTwoPi * cfg_.output_lpf_hz / loop_fs);
  v_per_m_ = cfg_.sense_gain_v_per_m / cfg_.mems.cap_per_meter;  // V per farad
  drive_v_ = 0.0;

  // Multi-rate pipeline on a fresh scheduler (a new die powers on with its
  // decimators at phase zero). The conditioning fires on the last analog
  // step of each loop_div cycle; the DAQ samples the analog output on the
  // last conditioning sample of each out_div cycle.
  const int out_div = static_cast<int>(loop_fs / cfg_.output_rate_hz + 0.5);
  const long out_period = static_cast<long>(cfg_.loop_div) * out_div;
  sched_ = std::make_unique<platform::Scheduler>(cfg_.analog_fs);

  sched_->every(
      1,
      [this] {
        // ticks() here is the global index of the current tick; the active
        // source maps it to its own time base (SyntheticSource applies the
        // run-origin offset for local-time runs, bit-identical to the
        // historical (ticks − run_origin)·dt arithmetic).
        const sensor::StimulusSample smp = run_src_->sample(sched_->ticks());
        tick_temp_ = smp.temp_c;

        sensor::GyroInputs in;
        in.v_drive = drive_v_;
        in.rate_dps = smp.rate_dps;
        in.temp_c = tick_temp_;
        pick_ = mems_->step(in);
        if (probe_) {
          using sensor::ProbePoint;
          if (probe_stim_)
            probe_->on_frame({ProbePoint::Stimulus, sched_->ticks(), smp.rate_dps, smp.temp_c});
          if (probe_mems_)
            probe_->on_frame(
                {ProbePoint::PostMems, sched_->ticks(), pick_.dc_primary, pick_.dc_sense});
        }
      },
      "analog");

  sched_->every(
      cfg_.loop_div, cfg_.loop_div - 1,
      [this] {
        // ---- analog conditioning at the loop rate ----
        const double vp = v_per_m_ * pick_.dc_primary;
        const double vs = v_per_m_ * pick_.dc_sense;
        drive_v_ = drive_->step(vp);
        const auto bb = demod_->step(vs, drive_->carrier_i(), drive_->carrier_q());

        // Fixed analog demodulation phase, built at φH + trim error, drifting
        // with temperature; residual misalignment leaks quadrature into rate.
        const double phi =
            demod_angle_ + phase_err_ + cfg_.demod_phase_tempco * (tick_temp_ - 25.0);
        const double rate_demod = bb.q * std::sin(phi) - bb.i * std::cos(phi);

        const double dtc = tick_temp_ - 25.0;
        const double gain = scale_v_per_demod_ * trim_gain_ * (1.0 + cfg_.sens_tempco * dtc);
        double v = gain * rate_demod + noise_rng_.gaussian(noise_sigma_);

        // Output RC filter.
        lpf_state_[0] += lpf_alpha_ * (v - lpf_state_[0]);
        v = lpf_state_[0];
        if (cfg_.output_lpf_poles >= 2) {
          lpf_state_[1] += lpf_alpha_ * (v - lpf_state_[1]);
          v = lpf_state_[1];
        }
      },
      "conditioning");

  sched_->every(
      out_period, out_period - 1,
      [this] {
        if (!run_out_ && !(probe_ && probe_out_)) return;
        const double v = cfg_.output_lpf_poles >= 2 ? lpf_state_[1] : lpf_state_[0];
        const double null =
            cfg_.null_v + null_draw_ + cfg_.null_tempco_v * (tick_temp_ - 25.0);
        if (run_out_) run_out_->push_back(null + v);
        if (probe_ && probe_out_)
          probe_->on_frame(
              {sensor::ProbePoint::DecimatedOutput, sched_->ticks(), null + v, tick_temp_});
      },
      "daq_output");
}

void AnalogGyroBaseline::power_on(std::uint64_t seed) {
  build(seed);
  // build() replaced the scheduler; re-attach the profiler to the new one.
  if (obs_.tasks) sched_->set_profiler(obs_.tasks);
}

void AnalogGyroBaseline::set_observability(const obs::ObsSink& sink) {
  obs_ = sink;
  sched_->set_profiler(obs_.tasks);
}

void AnalogGyroBaseline::serialize_state(StateArchive& ar) {
  ar.begin_section("BASE");
  mems_->serialize_state(ar);
  drive_->serialize_state(ar);
  demod_->serialize_state(ar);
  std::int64_t ticks = sched_->ticks();
  ar.value(ticks);
  if (!ar.saving()) sched_->set_ticks(static_cast<long>(ticks));
  ar.value(tick_temp_);
  ar.value(pick_.dc_primary);
  ar.value(pick_.dc_sense);
  noise_rng_.serialize_state(ar);
  ar.value(lpf_state_[0]);
  ar.value(lpf_state_[1]);
  ar.value(drive_v_);
  ar.end_section();
}

void AnalogGyroBaseline::run(const sensor::Profile& rate, const sensor::Profile& temp,
                             double seconds, std::vector<double>* out) {
  // Profiles are evaluated from t = 0 at the start of this call (the
  // RateSensor contract) unless the owner pinned the stimulus to the global
  // tick axis; the origin makes the wrapper bit-identical to the historical
  // (ticks − run_origin)·dt evaluation.
  sensor::SyntheticSource src(rate, temp, cfg_.analog_fs,
                              cfg_.stimulus_global_time ? 0 : sched_->ticks());
  run(src, seconds, out);
}

void AnalogGyroBaseline::run(sensor::StimulusSource& src, double seconds,
                             std::vector<double>* out) {
  // The scheduler — and with it the conditioning and DAQ decimation phase —
  // persists across calls like the hardware would.
  run_src_ = &src;
  run_out_ = out;
  const auto wall0 = std::chrono::steady_clock::now();
  sched_->run_seconds(seconds);
  if (obs_.tasks)
    obs_.tasks->record_run(
        seconds, std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count());
  run_src_ = nullptr;
  run_out_ = nullptr;
}

void AnalogGyroBaseline::set_probe(sensor::Probe* probe) {
  probe_ = probe;
  probe_stim_ = probe_ && probe_->wants(sensor::ProbePoint::Stimulus);
  probe_mems_ = probe_ && probe_->wants(sensor::ProbePoint::PostMems);
  probe_out_ = probe_ && probe_->wants(sensor::ProbePoint::DecimatedOutput);
}

}  // namespace ascp::core
