// baselines.hpp — behavioral models of the paper's commercial comparators.
//
// Tables 2 and 3 compare the platform against the Analog Devices ADXRS300
// and Murata's Gyrostar (ENV-05 class). Both are *analog-conditioned* gyros:
// the rate signal is demodulated, filtered and scaled in the continuous
// domain, with laser/factory trim at room temperature only — no digital
// temperature compensation, no resonance-tracked demodulation phase, no
// configurable bandwidth. AnalogGyroBaseline models that architecture on
// top of the same MEMS substrate:
//
//   MEMS ─► pickoff ─► analog AGC/PLL drive ─► analog demod (fixed phase
//   error, drifts with temp) ─► RC low-pass ─► gain+offset trim ─► output
//
// The structural consequences reproduce the table shapes: low-Q elements
// ring up fast (35 ms turn-on vs our 500 ms), but initial tolerances are
// wide (trim-limited), nulls drift with temperature (no compensation), and
// the bandwidth is whatever the RC made it.
#pragma once

#include <memory>

#include "common/state_archive.hpp"
#include "core/drive_loop.hpp"
#include "core/rate_sensor.hpp"
#include "dsp/modem.hpp"
#include "obs/observability.hpp"
#include "platform/scheduler.hpp"
#include "sensor/gyro_mems.hpp"

namespace ascp::core {

struct BaselineConfig {
  sensor::GyroMemsConfig mems{};
  DriveLoopConfig drive = default_drive_loop();
  double analog_fs = 1.92e6;
  int loop_div = 8;  ///< conditioning evaluated at analog_fs / loop_div

  double sense_gain_v_per_m = 4e6;   ///< pickoff + front-end gain
  double demod_bw_hz = 400.0;

  double nominal_sensitivity = 5e-3; ///< V per °/s after trim
  double trim_sigma = 0.05;          ///< 1σ relative trim error (laser trim)
  double sens_tempco = -4e-4;        ///< relative sensitivity drift per °C
  double null_v = 2.5;
  double null_sigma_v = 0.15;        ///< 1σ initial null error
  double null_tempco_v = 1.5e-3;     ///< null drift [V/°C]
  double demod_phase_err_sigma = 0.03;  ///< [rad] fixed analog phase error
  double demod_phase_tempco = 5e-4;     ///< [rad/°C]

  double output_lpf_hz = 40.0;       ///< analog RC bandwidth
  int output_lpf_poles = 2;
  double noise_dps_rt_hz = 0.1;      ///< electronics-limited noise floor

  double full_scale_dps = 300.0;
  double output_rate_hz = 1875.0;    ///< DAQ sampling of the analog output
  /// Evaluate profiles on the device's global tick axis instead of
  /// restarting t at 0 each run() (see GyroSystemConfig::stimulus_global_time).
  bool stimulus_global_time = false;
};

/// ADXRS300-class configuration (Table 2).
BaselineConfig adxrs300_like();
/// Gyrostar-class configuration (Table 3).
BaselineConfig gyrostar_like();

class AnalogGyroBaseline : public RateSensor {
 public:
  explicit AnalogGyroBaseline(const BaselineConfig& cfg);

  void power_on(std::uint64_t seed) override;
  double output_rate_hz() const override { return cfg_.output_rate_hz; }
  void run(const sensor::Profile& rate, const sensor::Profile& temp, double seconds,
           std::vector<double>* out) override;
  void run(sensor::StimulusSource& src, double seconds, std::vector<double>* out) override;
  double nominal_sensitivity() const override { return cfg_.nominal_sensitivity; }
  double nominal_null() const override { return cfg_.null_v; }
  double full_scale_dps() const override { return cfg_.full_scale_dps; }

  bool locked() const { return drive_->locked(); }

  /// Attach a read-only chain probe (stimulus, post-MEMS, decimated output —
  /// an analog baseline has no AFE or ADC taps). Same discipline as the
  /// platform's: bit-identical attached or detached. Survives power_on.
  void set_probe(sensor::Probe* probe);

  /// Attach an observability sink (profiler-only: an analog baseline has no
  /// PLL registers or DTCs to report, but its multi-rate kernel profiles the
  /// same way the platform's does). Survives power_on.
  void set_observability(const obs::ObsSink& sink);

  /// Checkpoint path: dynamic state only — trim/phase draws reproduce from
  /// the power-on seed, and the persistent scheduler's tick counter travels
  /// so decimation phase resumes exactly.
  void serialize_state(StateArchive& ar);

 private:
  void build(std::uint64_t seed);

  obs::ObsSink obs_{};

  BaselineConfig cfg_;
  std::unique_ptr<sensor::GyroMems> mems_;
  std::unique_ptr<DriveLoop> drive_;
  std::unique_ptr<dsp::IqDemodulator> demod_;

  // Multi-rate kernel: the analog tick, the conditioning rate (analog_fs /
  // loop_div, phase-aligned with the conditioning electronics settling on
  // the last analog step of each cycle) and the DAQ output decimation are
  // scheduler tasks registered at build(). The scheduler persists across
  // run() calls, so decimation phase carries over exactly as the analog
  // hardware's would.
  std::unique_ptr<platform::Scheduler> sched_;
  sensor::StimulusSource* run_src_ = nullptr;
  std::vector<double>* run_out_ = nullptr;

  // Probe taps are inline guards (the scheduler persists across attach).
  sensor::Probe* probe_ = nullptr;
  bool probe_stim_ = false, probe_mems_ = false, probe_out_ = false;

  // Per-tick state flowing between scheduler tasks.
  double tick_temp_ = 25.0;
  sensor::GyroOutputs pick_{};

  // Device draws.
  double trim_gain_ = 1.0;
  double null_draw_ = 0.0;
  double phase_err_ = 0.0;
  double demod_angle_ = 0.0;  ///< φH: where the Coriolis response lands
  Rng noise_rng_{1};
  double noise_sigma_ = 0.0;

  // Output RC filter state (up to 2 poles).
  double lpf_state_[2] = {0.0, 0.0};
  double lpf_alpha_ = 0.0;
  double scale_v_per_demod_ = 1.0;  ///< analog gain: demod volts → output volts
  double v_per_m_ = 0.0;            ///< pickoff transduction gain [V per farad]
  double drive_v_ = 0.0;
};

}  // namespace ascp::core
