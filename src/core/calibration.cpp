#include "core/calibration.hpp"

#include "common/math.hpp"

namespace ascp::core {

namespace {
double mean_output(GyroSystem& sys, double rate_dps, double temp_c, double seconds) {
  std::vector<double> samples;
  sys.run(sensor::Profile::constant(rate_dps), sensor::Profile::constant(temp_c), seconds,
          &samples);
  const std::size_t half = samples.size() / 2;
  return mean(std::span(samples).subspan(half));
}
}  // namespace

dsp::CompensationCoeffs run_calibration(GyroSystem& sys, const CalibrationConfig& cfg) {
  // Measure through an identity compensation so the output exposes the raw
  // chain (output = raw + null offset).
  const dsp::CompensationCoeffs saved = sys.sense().compensation().coeffs();
  sys.set_compensation(dsp::CompensationCoeffs{});
  const double null_offset = sys.config().sense.output_offset;

  std::vector<double> temps, offsets, gains;
  for (double t : cfg.temps) {
    sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(t), cfg.warmup_s, nullptr);
    const double at_zero = mean_output(sys, 0.0, t, cfg.dwell_s) - null_offset;
    const double at_pos = mean_output(sys, cfg.cal_rate_dps, t, cfg.dwell_s) - null_offset;
    const double at_neg = mean_output(sys, -cfg.cal_rate_dps, t, cfg.dwell_s) - null_offset;
    temps.push_back(t);
    offsets.push_back(at_zero);
    gains.push_back((at_pos - at_neg) / (2.0 * cfg.cal_rate_dps));
  }

  sys.set_compensation(saved);  // leave the device as found
  return dsp::fit_compensation(temps, offsets, gains, cfg.target_v_per_dps);
}

}  // namespace ascp::core
