// calibration.hpp — per-device temperature calibration flow.
//
// The paper's platform trims every device (paper §3: "on-line trimming",
// §4.2: "manual trimming can be performed" over the PC link; the shipped
// chip carries its coefficients). The flow soaks the device at a set of
// temperatures, measures the raw chain null and scale at each, fits the
// quadratic compensation polynomials and writes them into the compensation
// block — turning the drifting raw chain into the 5 mV/°/s ±0 null device
// of Table 1.
#pragma once

#include <vector>

#include "core/gyro_system.hpp"
#include "dsp/compensation.hpp"

namespace ascp::core {

struct CalibrationConfig {
  // Production soak points: slightly inside the -40..+85 spec range, so
  // the spec extremes exercise the fitted polynomial's extrapolation.
  std::vector<double> temps{-30.0, 25.0, 75.0};
  double warmup_s = 1.2;     ///< lock + thermal settle per soak
  double dwell_s = 0.4;      ///< measurement time per rate point
  double cal_rate_dps = 100.0;
  double target_v_per_dps = 5e-3;  ///< Table 1 sensitivity
};

/// Run the flow on `sys` (must be powered on). Returns the fitted
/// coefficients; the caller (or factory_calibrate) writes them back.
dsp::CompensationCoeffs run_calibration(GyroSystem& sys, const CalibrationConfig& cfg = {});

}  // namespace ascp::core
