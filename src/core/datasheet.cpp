#include "core/datasheet.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ascp::core {

namespace {

std::string cell(const std::optional<double>& v, int precision = 2) {
  if (!v) return "";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, *v);
  return buf;
}

void print_row(std::ostringstream& out, const std::string& name, const Row& row,
               int precision = 2) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-22s %10s %10s %10s  %s\n", name.c_str(),
                cell(row.min, precision).c_str(), cell(row.typ, precision).c_str(),
                cell(row.max, precision).c_str(), row.units.c_str());
  out << buf;
}

Row aggregate(std::vector<double> values, std::string units) {
  Row row;
  row.units = std::move(units);
  if (values.empty()) return row;
  std::sort(values.begin(), values.end());
  row.min = values.front();
  row.max = values.back();
  row.typ = values[values.size() / 2];
  return row;
}

}  // namespace

std::string Datasheet::format() const {
  std::ostringstream out;
  out << device_name << "\n";
  out << "  Parameter                    Min        Typ        Max  Units\n";
  out << "  Sensitivity\n";
  print_row(out, "  Dynamic Range", dynamic_range, 0);
  print_row(out, "  Initial", sensitivity_initial);
  print_row(out, "  Over Temperature", sensitivity_over_t);
  print_row(out, "  Non Linearity", nonlinearity);
  out << "  Null\n";
  print_row(out, "  Initial", null_initial);
  print_row(out, "  Over Temperature", null_over_t);
  print_row(out, "  Turn On Time", turn_on_ms, 0);
  out << "  Noise\n";
  print_row(out, "  Rate Noise Dens.", noise_density, 3);
  out << "  Freq. Response\n";
  print_row(out, "  3 dB Bandwidth", bandwidth_hz, 1);
  out << "  Temp. Ranges\n";
  print_row(out, "  Operating Temp.", temp_range, 0);
  return out.str();
}

Datasheet characterize(RateSensor& dut, const std::string& device_name,
                       const CharacterizationConfig& cfg) {
  Datasheet ds;
  ds.device_name = device_name;
  ds.dynamic_range.min = -dut.full_scale_dps();
  ds.dynamic_range.max = dut.full_scale_dps();
  ds.dynamic_range.units = "deg/s";
  ds.temp_range.min = cfg.temp_lo;
  ds.temp_range.max = cfg.temp_hi;
  ds.temp_range.units = "degC";

  std::vector<double> sens25, sens_all, nonlin_all, null25, null_all, turn_on, noise;
  std::vector<double> bandwidth;

  const auto warm_up = [&](double temp_c) {
    dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(temp_c), cfg.warmup_s,
            nullptr);
  };

  for (std::uint64_t seed : cfg.seeds) {
    dut.power_on(seed);
    dut.factory_calibrate();
    dut.power_on(seed);  // characterization starts from a fresh boot
    warm_up(25.0);

    // Room-temperature characterization.
    const auto s25 = measure_sensitivity(dut, 25.0);
    sens25.push_back(s25.mv_per_dps);
    sens_all.push_back(s25.mv_per_dps);
    nonlin_all.push_back(s25.nonlinearity_pct_fs);
    null25.push_back(s25.null_v);
    null_all.push_back(s25.null_v);
    noise.push_back(measure_noise_density(dut, 25.0, cfg.noise_seconds));

    // Temperature extremes.
    for (double t : {cfg.temp_lo, cfg.temp_hi}) {
      warm_up(t);
      const auto st = measure_sensitivity(dut, t, /*points=*/5);
      sens_all.push_back(st.mv_per_dps);
      nonlin_all.push_back(st.nonlinearity_pct_fs);
      null_all.push_back(st.null_v);
    }

    // Turn-on: fresh cold start of the same die.
    turn_on.push_back(measure_turn_on(dut, seed, 25.0, cfg.turn_on_tol_v) * 1e3);

    if (cfg.measure_bandwidth_flag && seed == cfg.seeds.front()) {
      warm_up(25.0);
      bandwidth.push_back(measure_bandwidth(dut, 25.0));
    }
  }

  // Report magnitudes: the electrical sign convention is not a datasheet
  // parameter.
  for (auto* v : {&sens25, &sens_all})
    for (double& x : *v) x = std::abs(x);

  ds.sensitivity_initial = aggregate(sens25, "mV/deg/s");
  ds.sensitivity_over_t = aggregate(sens_all, "mV/deg/s");
  ds.nonlinearity = aggregate(nonlin_all, "% of FS");
  ds.null_initial = aggregate(null25, "V");
  ds.null_over_t = aggregate(null_all, "V");
  ds.turn_on_ms = aggregate(turn_on, "ms");
  ds.noise_density = aggregate(noise, "deg/s/rtHz");
  ds.bandwidth_hz = aggregate(bandwidth, "Hz");
  return ds;
}

}  // namespace ascp::core
