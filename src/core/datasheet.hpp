// datasheet.hpp — characterization campaign and paper-style table output.
//
// Runs the metrology of metrics.hpp over several devices (seeds) and the
// specified temperature range, aggregates min/typ/max, and renders a table
// in the shape of the paper's Tables 1–3.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/rate_sensor.hpp"

namespace ascp::core {

/// One datasheet row: any of the three columns may be absent (the paper's
/// tables leave cells blank).
struct Row {
  std::optional<double> min, typ, max;
  std::string units;
};

struct Datasheet {
  std::string device_name;
  Row dynamic_range;       ///< °/s (specified, not measured)
  Row sensitivity_initial; ///< mV/°/s across devices at 25 °C
  Row sensitivity_over_t;  ///< mV/°/s across devices and temperature
  Row nonlinearity;        ///< % of FS
  Row null_initial;        ///< V at 25 °C
  Row null_over_t;         ///< V over temperature
  Row turn_on_ms;          ///< ms
  Row noise_density;       ///< °/s/√Hz
  Row bandwidth_hz;        ///< Hz (−3 dB)
  Row temp_range;          ///< °C (specified)

  /// Paper-style rendering.
  std::string format() const;
};

struct CharacterizationConfig {
  std::vector<std::uint64_t> seeds{1, 2, 3};
  double temp_lo = -40.0;
  double temp_hi = 85.0;
  double warmup_s = 1.2;
  bool measure_bandwidth_flag = true;  ///< bandwidth sweep is the slowest step
  double turn_on_tol_v = 5e-3;
  double noise_seconds = 6.0;
};

/// Full campaign on one DUT type. The DUT is powered on and factory-
/// calibrated per seed.
Datasheet characterize(RateSensor& dut, const std::string& device_name,
                       const CharacterizationConfig& cfg = {});

}  // namespace ascp::core
