#include "core/drive_loop.hpp"

namespace ascp::core {

DriveLoopConfig default_drive_loop(double fs) {
  DriveLoopConfig cfg;
  cfg.pll.fs = fs;
  cfg.pll.f_center = 15e3;
  cfg.pll.f_min = 13e3;
  cfg.pll.f_max = 17e3;
  cfg.pll.kp = 40.0;
  cfg.pll.ki = 4000.0;
  cfg.pll.pd_lpf_hz = 400.0;

  cfg.agc.fs = fs;
  cfg.agc.target = 1.0;   // pickoff amplitude at the ADC [V]
  cfg.agc.kp = 0.5;
  cfg.agc.ki = 60.0;
  cfg.agc.gain_min = 0.0;
  cfg.agc.gain_max = 2.4;  // drive-DAC rail
  return cfg;
}

DriveLoop::DriveLoop(const DriveLoopConfig& cfg) : pll_(cfg.pll), agc_(cfg.agc) {}

double DriveLoop::step(double pickoff) {
  const double carrier = pll_.step(pickoff);
  const double gain = agc_.step(pll_.amplitude());
  return gain * carrier;
}

void DriveLoop::reset() {
  pll_.reset();
  agc_.reset();
}

}  // namespace ascp::core
