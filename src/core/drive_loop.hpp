// drive_loop.hpp — primary-mode control: PLL resonance tracking + AGC.
//
// Paper §4.1: the gyro needs "a PLL (for primary drive), which has to keep
// the ring in resonance (at a frequency of approximately 15 KHz), an AGC
// (to control the amplitude of this vibration)". DriveLoop composes the two
// hardwired IPs around the shared NCO and produces the drive-DAC voltage
// from the primary-pickoff ADC samples. Its observables are exactly the
// four traces of the paper's Fig. 5.
#pragma once

#include "dsp/agc.hpp"
#include "dsp/pll.hpp"

namespace ascp::core {

struct DriveLoopConfig {
  dsp::PllConfig pll{};
  dsp::AgcConfig agc{};
};

/// Default tuning for the 15 kHz ring sampled at 240 kHz with the platform's
/// AFE scaling (pickoff amplitude ≈ 1 V at target drive).
DriveLoopConfig default_drive_loop(double fs = 240e3);

class DriveLoop {
 public:
  explicit DriveLoop(const DriveLoopConfig& cfg);

  /// One DSP sample: primary pickoff in, drive voltage out.
  double step(double pickoff);

  /// Phase-coherent carriers for the sense-chain demodulators.
  double carrier_i() const { return pll_.nco().sine(); }
  double carrier_q() const { return pll_.nco().cosine(); }

  // Fig. 5 observables.
  double amplitude_control() const { return agc_.gain(); }   ///< AGC actuator
  double phase_error() const { return pll_.phase_error(); }  ///< PLL PD
  double amplitude_error() const { return agc_.error(); }    ///< AGC error
  double vco_control() const { return pll_.vco_control(); }  ///< loop integrator

  double frequency() const { return pll_.frequency(); }
  double amplitude() const { return pll_.amplitude(); }
  bool locked() const { return pll_.locked() && agc_.settled(); }
  bool pll_locked() const { return pll_.locked(); }

  /// Component access (fault injection / tests).
  dsp::Pll& pll() { return pll_; }
  dsp::Agc& agc() { return agc_; }

  void reset();

  void serialize_state(StateArchive& ar) {
    pll_.serialize_state(ar);
    agc_.serialize_state(ar);
  }

 private:
  dsp::Pll pll_;
  dsp::Agc agc_;
};

}  // namespace ascp::core
