#include "core/gyro_system.hpp"

#include <chrono>
#include <cmath>

#include "core/calibration.hpp"
#include "platform/selftest.hpp"
#include "safety/cal_store.hpp"

namespace ascp::core {

GyroSystemConfig default_gyro_system(Fidelity fidelity) {
  GyroSystemConfig cfg;
  cfg.fidelity = fidelity;

  // Drive-loop servo tuning (see DESIGN.md "simulation-rate architecture").
  cfg.drive = default_drive_loop(240e3);

  // Force-feedback servo: plant envelope pole at ω0/2Q ≈ 1.5 Hz and
  // baseband gain ≈ 2.2 V/V require a strong PD zero for a ~100 Hz loop.
  cfg.sense.fs = 240e3;
  cfg.sense.rate_kp = 30.0;
  cfg.sense.rate_ki = 4000.0;
  cfg.sense.quad_kp = 30.0;
  cfg.sense.quad_ki = 4000.0;

  // Design-space-exploration outcome (see bench/ablation_partitioning): the
  // Brownian-excited sense carrier is sub-LSB at 12 bits, and quantizing a
  // narrowband sub-LSB signal folds correlated noise into the rate band —
  // 14-bit SAR converters restore the Brownian-limited floor.
  cfg.adc.bits = 14;
  cfg.adc.vref = 2.5;
  cfg.dac.bits = 12;
  cfg.dac.vref = 2.5;
  cfg.dac.update_rate = 240e3;
  return cfg;
}

GyroSystem::GyroSystem(const GyroSystemConfig& cfg) : cfg_(cfg) {
  // Area bookkeeping: the DSP IPs this customization instantiates on top of
  // the MCU subsystem (paper §4.3: ≈200 Kgates total digital).
  auto& area = platform_.area();
  for (const char* ip : {"nco", "pll_loop", "agc_loop", "iq_mod", "compensation",
                         "biquad_bank", "chain_ctrl", "fir"})
    area.instantiate(ip);
  area.instantiate("iq_demod", 2);
  area.instantiate("cic_decim", 2);
  area.instantiate("jtag_tap");  // analog die TAP
  for (const char* ip : {"charge_amp", "pga", "sar_adc12"}) area.instantiate(ip, 2);
  area.instantiate("dac12", 4);  // paper: couples of DACs per loop
  for (const char* ip : {"vref", "osc", "temp_sensor", "pad_ring"}) area.instantiate(ip);
  if (cfg.with_safety) area.instantiate("safety_monitor");

  define_registers();

  if (cfg.with_safety) {
    safety::SupervisorConfig sup;
    sup.fs = cfg_.analog_fs / cfg_.adc_div;
    sup.null_v = cfg_.sense.output_offset;
    sup.adc_vref = cfg_.adc.vref;
    sup.agc_gain_max = cfg_.drive.agc.gain_max;
    sup.ctrl_limit_v = cfg_.sense.ctrl_limit;
    sup.drive_amplitude_target = cfg_.drive.agc.target;
    supervisor_ = std::make_unique<safety::SafetySupervisor>(sup);
    supervisor_->attach(&platform_.regs(), reg::kDiag);
    if (auto* spi = platform_.spi())
      supervisor_->set_calibration_audit([spi] { return safety::audit_calibration(*spi); });
  }
  platform_.set_reset_hook([this] { recover_from_watchdog(); });

  build(cfg.seed);
}

void GyroSystem::define_registers() {
  using platform::RegKind;
  auto& rf = platform_.regs();
  rf.define("lock", reg::kLock, RegKind::Status);
  rf.declare_fields(reg::kLock, {{"pll_locked", 0, 1, /*writable=*/false, false},
                                 {"agc_settled", 1, 1, /*writable=*/false, false}});
  rf.define("freq", reg::kFreq, RegKind::Status);
  rf.define("agc_gain", reg::kAgcGain, RegKind::Status);
  rf.define("rate_out", reg::kRateOut, RegKind::Status);
  rf.define("quad", reg::kQuad, RegKind::Status);
  rf.define("temp", reg::kTemp, RegKind::Status);
  rf.define("mode", reg::kMode, RegKind::Config,
            cfg_.sense.mode == SenseMode::ClosedLoop ? 1 : 0, [this](std::uint16_t v) {
              cfg_.sense.mode = v ? SenseMode::ClosedLoop : SenseMode::OpenLoop;
            });
  rf.declare_fields(reg::kMode, {{"closed_loop", 0, 1, /*writable=*/true, false}});
  rf.define("sense_gain", reg::kSenseGain, RegKind::Config,
            static_cast<std::uint16_t>(cfg_.sense_pga_gain * 16.0), [this](std::uint16_t v) {
              cfg_.sense_pga_gain = static_cast<double>(v) / 16.0;
            });
  rf.declare_fields(reg::kSenseGain, {{"gain_x16", 0, 8, /*writable=*/true, false}});

  // Analog-die registers behind the second TAP (Fig. 2: JTAG on both dies).
  afe_regs_.define("pga_primary", reg::kAfePgaPrimary, RegKind::Config,
                   static_cast<std::uint16_t>(cfg_.primary_pga_gain * 16.0),
                   [this](std::uint16_t v) { cfg_.primary_pga_gain = v / 16.0; });
  afe_regs_.define("pga_sense", reg::kAfePgaSense, RegKind::Config,
                   static_cast<std::uint16_t>(cfg_.sense_pga_gain * 16.0),
                   [this](std::uint16_t v) { cfg_.sense_pga_gain = v / 16.0; });
  afe_regs_.define("adc_bits", reg::kAfeAdcBits, RegKind::Config,
                   static_cast<std::uint16_t>(cfg_.adc.bits),
                   [this](std::uint16_t v) { cfg_.adc.bits = static_cast<int>(v); });
  afe_regs_.declare_fields(reg::kAfePgaPrimary, {{"gain_x16", 0, 8, /*writable=*/true, false}});
  afe_regs_.declare_fields(reg::kAfePgaSense, {{"gain_x16", 0, 8, /*writable=*/true, false}});
  afe_regs_.declare_fields(reg::kAfeAdcBits, {{"bits", 0, 5, /*writable=*/true, false}});
  platform_.jtag_chain().add(&afe_tap_);
}

void GyroSystem::build(std::uint64_t seed) {
  Rng rng(seed);

  sensor::GyroMemsConfig mems_cfg = cfg_.mems;
  mems_cfg.sim_fs = cfg_.analog_fs;
  mems_ = std::make_unique<sensor::GyroMems>(mems_cfg, rng.fork(1));

  afe::ChargeAmpConfig champ = cfg_.charge_amp;
  champ.fs = cfg_.analog_fs;
  champ_primary_ = std::make_unique<afe::ChargeAmp>(champ, rng.fork(2));
  champ_sense_ = std::make_unique<afe::ChargeAmp>(champ, rng.fork(3));

  afe::FrontendConfig fe;
  fe.analog_fs = cfg_.analog_fs;
  fe.decimation = cfg_.adc_div;
  fe.adc = cfg_.adc;
  fe.amp.vsat = cfg_.adc.vref;
  fe.amp.gain = cfg_.primary_pga_gain;
  acq_primary_ = std::make_unique<afe::AcquisitionChannel>(fe, rng.fork(4));
  fe.amp.gain = cfg_.sense_pga_gain;
  acq_sense_ = std::make_unique<afe::AcquisitionChannel>(fe, rng.fork(5));

  dac_drive_ = std::make_unique<afe::Dac>(cfg_.dac, rng.fork(6));
  dac_ctrl_ = std::make_unique<afe::Dac>(cfg_.dac, rng.fork(7));
  temp_sensor_ = std::make_unique<afe::TempSensor>(0.3, 0.5, rng.fork(8));

  drive_ = std::make_unique<DriveLoop>(cfg_.drive);
  SenseChainConfig sense_cfg = cfg_.sense;
  sense_ = std::make_unique<SenseChain>(sense_cfg);
  sense_->set_compensation(cfg_.comp);

  // Ideal transduction gains mirror the Full chain's nominal gains so both
  // fidelities share servo tunings and calibration scale.
  const double champ_gain = champ.v_bias / champ.c_feedback_farads;  // V/F
  ideal_gain_primary_ = champ_gain * cfg_.primary_pga_gain;
  ideal_gain_sense_ = champ_gain * cfg_.sense_pga_gain;

  drive_v_ = ctrl_v_ = 0.0;
  last_output_ = cfg_.sense.output_offset;
  base_ticks_ = 0;
  dsp_samples_ = 0;
  blk_ss_.clear();
  blk_ci_.clear();
  blk_cq_.clear();
  blk_target_ = 0;
  obs_pll_prev_ = obs_agc_prev_ = obs_pll_ever_ = false;
  if (supervisor_) supervisor_->reset();
}

void GyroSystem::power_on(std::uint64_t seed) {
  cfg_.seed = seed;
  build(seed);
}

void GyroSystem::factory_calibrate() {
  set_compensation(run_calibration(*this));
  // Persist the trim in the boot EEPROM so the recovery path can replay it.
  if (auto* spi = platform_.spi()) safety::store_calibration(*spi, cfg_.comp);
  // The flow leaves the device soaked at the last calibration temperature;
  // re-arm it cold so characterization starts from a clean power-on.
  build(cfg_.seed);
}

void GyroSystem::set_observability(const obs::ObsSink& sink) {
  obs_ = sink;
  if (obs_.events) {
    obs_.events->declare_emitter(obs::EventCategory::Pll, "GyroSystem");
    obs_.events->declare_emitter(obs::EventCategory::Agc, "GyroSystem");
    obs_.events->declare_emitter(obs::EventCategory::Scheduler, "GyroSystem");
    obs_.events->declare_emitter(obs::EventCategory::Mcu, "GyroSystem");
    // The Probe category is claimed by whoever attaches a probe; when one is
    // already attached the declaration lands here too.
    if (probe_) obs_.events->declare_emitter(obs::EventCategory::Probe, "GyroSystem");
    if (obs_.spans) obs_.events->declare_emitter(obs::EventCategory::Trace, "GyroSystem");
  }
  // Sampled scheduler-task invocations double as Scheduler-category spans,
  // parented to the enclosing gyro.run span.
  if (obs_.tasks) obs_.tasks->set_span_log(obs_.spans);
  if (obs_.metrics) {
    obs_m_outputs_ = obs_.metrics->counter("gyro.output_samples");
    obs_m_dsp_ = obs_.metrics->counter("gyro.dsp_samples");
    obs_m_runs_ = obs_.metrics->counter("gyro.runs");
    obs_h_output_v_ = obs_.metrics->histogram("gyro.output_v");
  }
  if (supervisor_) supervisor_->set_obs(obs_);
  if (campaign_) campaign_->set_obs(obs_, cfg_.analog_fs / cfg_.adc_div);
  platform_.cpu().set_profiler(obs_.mcu);
}

void GyroSystem::recover_from_watchdog() {
  if (obs_.events)
    obs_.events->emit(static_cast<double>(dsp_samples_) / (cfg_.analog_fs / cfg_.adc_div),
                      obs::EventSeverity::Warn, obs::EventCategory::Mcu, "mcu_recovery",
                      "watchdog reset: self-test + cal replay + reacquire");
  if (supervisor_) supervisor_->notify_watchdog_bite();

  // Boot-flow replay, the §4.2 reboot-from-EEPROM story: self-test first,
  // then calibration coefficients, then drive-loop re-acquisition.
  const auto st = platform::run_self_test(platform_);
  if (supervisor_) supervisor_->notify_selftest(st.all_passed());

  if (auto* spi = platform_.spi()) {
    const auto cal = safety::load_calibration(*spi);
    if (cal.status == safety::CalRecord::Status::Ok) {
      set_compensation(cal.coeffs);
      if (supervisor_) supervisor_->notify_cal_replay(true);
    } else if (cal.status == safety::CalRecord::Status::Corrupt) {
      // Corrupt trim image: condition with unity/zero safe defaults rather
      // than whatever stale coefficients the chain was running with — a
      // known-pessimistic output beats a plausible-but-wrong one.
      set_compensation(dsp::CompensationCoeffs{});
      if (supervisor_) supervisor_->notify_cal_replay(false);
    }
  }

  // The analog die was never reset; only the loops restart and re-acquire.
  drive_->reset();
  sense_->reset();

  // Re-arm the watchdog the way restarted boot firmware would: a PERIOD
  // rewrite clears the sticky bite flag, then CTRL re-enables.
  if (auto* wd = platform_.watchdog()) {
    wd->write_reg(1, wd->read_reg(1));
    wd->write_reg(2, 1);
  }
}

double GyroSystem::output_rate_hz() const {
  return cfg_.analog_fs / cfg_.adc_div / cfg_.sense.cic_ratio;
}

void GyroSystem::set_compensation(const dsp::CompensationCoeffs& c) {
  cfg_.comp = c;
  sense_->set_compensation(c);
}

void GyroSystem::set_trace(TraceRecorder* trace, std::size_t decimate) {
  trace_ = trace;
  trace_decimate_ = decimate;
  if (!trace_) return;
  const double fs_dsp = cfg_.analog_fs / cfg_.adc_div;
  for (const char* name : {"amplitude_control", "phase_error", "amplitude_error", "vco_control",
                           "pickoff"})
    trace_->open(name, 1.0 / fs_dsp, decimate);
  trace_->open("rate_out", 1.0 / output_rate_hz());
}

void GyroSystem::set_probe(sensor::Probe* probe) {
  probe_ = probe;
  if (probe_ && obs_.events) {
    obs_.events->declare_emitter(obs::EventCategory::Probe, "GyroSystem");
    obs_.events->emit(static_cast<double>(dsp_samples_) / (cfg_.analog_fs / cfg_.adc_div),
                      obs::EventSeverity::Debug, obs::EventCategory::Probe, "probe_attach");
  }
}

void GyroSystem::post_status(double measured_temp) {
  auto& rf = platform_.regs();
  rf.post_status(reg::kLock, static_cast<std::uint16_t>((drive_->pll_locked() ? 1 : 0) |
                                                        (drive_->locked() ? 2 : 0)));
  rf.post_status(reg::kFreq, static_cast<std::uint16_t>(drive_->frequency() / 4.0));
  rf.post_status(reg::kAgcGain, static_cast<std::uint16_t>(drive_->amplitude_control() * 1000.0));
  rf.post_status(reg::kRateOut, static_cast<std::uint16_t>(last_output_ * 1000.0));
  rf.post_status(reg::kQuad,
                 static_cast<std::uint16_t>(static_cast<std::int16_t>(sense_->raw_quad() * 1000.0)));
  rf.post_status(reg::kTemp,
                 static_cast<std::uint16_t>(static_cast<std::int16_t>(measured_temp * 8.0)));
}

bool GyroSystem::can_batch_sense() {
  // Closed loop feeds the control effort back into the plant every sample;
  // a supervisor, fault campaign, trace tap or firmware monitor observes
  // per-sample state. Any of those forces the sample-serial path.
  return sense_->config().mode == SenseMode::OpenLoop && !supervisor_ && !campaign_ &&
         !trace_ && !cfg_.with_mcu;
}

void GyroSystem::flush_sense_block() {
  if (blk_ss_.empty()) return;
  sense_->step_block(blk_ss_, blk_ci_, blk_cq_);
  blk_ss_.clear();
  blk_ci_.clear();
  blk_cq_.clear();
}

void GyroSystem::schedule_pipeline(platform::Scheduler& sched, TickState& st,
                                   sensor::StimulusSource& src, std::vector<double>* out) {
  const bool full = cfg_.fidelity == Fidelity::Full;
  const double dt = 1.0 / cfg_.analog_fs;
  st.cpu_cycles_per_slow = cfg_.with_mcu ? platform_.cycles_per_sample(output_rate_hz()) : 0;

  // ---- analog tick (1.92 MHz): environment, MEMS, charge amps, AFE -------
  sched.every(
      1,
      [this, &st, &src, dt, full] {
        st.sp.reset();
        st.ss.reset();
        // base_ticks_ increments at the end of this task, so here it equals
        // the global index of the current tick — the axis every source
        // samples on (SyntheticSource applies its own origin for local-time
        // runs, reproducing the historical sched.ticks()·dt arithmetic).
        st.tick = base_ticks_;
        const sensor::StimulusSample smp = src.sample(base_ticks_);
        st.temp_c = smp.temp_c;
        st.rate_dps = smp.rate_dps;

        sensor::GyroInputs in;
        in.rate_dps = smp.rate_dps;
        in.temp_c = st.temp_c;
        if (full) {
          in.v_drive = dac_drive_->output(dt, st.temp_c);
          in.v_control = dac_ctrl_->output(dt, st.temp_c);
        } else {
          in.v_drive = drive_v_;
          in.v_control = ctrl_v_;
        }
        st.pick = mems_->step(in);

        if (full) {
          // The SAR converters decimate internally: an ADC code pops out of
          // the acquisition channel every adc_div analog steps.
          st.vp = champ_primary_->step(st.pick.dc_primary, st.temp_c);
          st.vs = champ_sense_->step(st.pick.dc_sense, st.temp_c);
          st.sp = acq_primary_->step(st.vp, st.temp_c);
          st.ss = acq_sense_->step(st.vs, st.temp_c);
        }
        ++base_ticks_;
      },
      "analog");

  // ---- ideal sampling (240 kHz): the MATLAB level has no AFE, so the
  // scheduler provides the ADC cadence (phase-aligned with a SAR finishing
  // its conversion cycle on the adc_div-th clock) -------------------------
  // The phase keeps the *global* conversion cadence (g % adc_div ==
  // adc_div-1) even when one timeline is split across several run() calls
  // (checkpoint resume): base_ticks_ here is this run's tick origin. From a
  // cold start the expression reduces to the historical adc_div-1.
  if (!full)
    sched.every(
        cfg_.adc_div,
        (cfg_.adc_div - 1 - base_ticks_ % cfg_.adc_div + cfg_.adc_div) % cfg_.adc_div,
        [this, &st] {
          st.sp = ideal_gain_primary_ * st.pick.dc_primary;
          st.ss = ideal_gain_sense_ * st.pick.dc_sense;
        },
        "adc_ideal");

  // ---- probe taps (per analog tick) -------------------------------------
  // Registered only when a probe is attached AND wants a tap this pipeline
  // produces, so the detached configuration schedules exactly the same task
  // set as before probes existed (the obs-layer zero-cost discipline). The
  // frames read state the pipeline computes anyway — nothing is perturbed.
  if (probe_) {
    const bool w_stim = probe_->wants(sensor::ProbePoint::Stimulus);
    const bool w_mems = probe_->wants(sensor::ProbePoint::PostMems);
    const bool w_afe = full && probe_->wants(sensor::ProbePoint::PostAfe);
    const bool w_adc = probe_->wants(sensor::ProbePoint::PostAdc);
    if (w_stim || w_mems || w_afe || w_adc)
      sched.every(
          1,
          [this, &st, w_stim, w_mems, w_afe, w_adc] {
            using sensor::ProbePoint;
            if (w_stim)
              probe_->on_frame({ProbePoint::Stimulus, st.tick, st.rate_dps, st.temp_c});
            if (w_mems)
              probe_->on_frame(
                  {ProbePoint::PostMems, st.tick, st.pick.dc_primary, st.pick.dc_sense});
            if (w_afe) probe_->on_frame({ProbePoint::PostAfe, st.tick, st.vp, st.vs});
            if (w_adc && st.sp)
              probe_->on_frame({ProbePoint::PostAdc, st.tick, *st.sp, st.ss ? *st.ss : 0.0});
          },
          "probe");
  }

  // ---- fault campaign (per DSP sample): the sample counter is the fault
  // time base, so it advances here even with no campaign attached ---------
  sched.every(
      1,
      [this, &st] {
        if (!st.sp) return;
        ++dsp_samples_;
        if (obs_.metrics) obs_.metrics->add(obs_m_dsp_);
        if (campaign_) campaign_->step(dsp_samples_);
      },
      "fault_campaign");

  // ---- DSP sample rate (240 kHz): drive servo + sense conditioning ------
  if (can_batch_sense()) {
    // Open-loop batched path: the sense chain has no feedback into the
    // plant, so pickoff/carrier samples accumulate and flush through the
    // kernels' block variants. Blocks are sized so every flush lands
    // exactly on a CIC completion — the output stage below then sees slow
    // samples on the same ticks as the sample-serial path (bit-identical).
    sched.every(
        1,
        [this, &st, full] {
          if (!st.sp) return;
          drive_v_ = drive_->step(*st.sp);
          if (blk_ss_.empty()) blk_target_ = sense_->samples_until_slow();
          blk_ss_.push_back(*st.ss);
          blk_ci_.push_back(drive_->carrier_i());
          blk_cq_.push_back(drive_->carrier_q());
          ctrl_v_ = 0.0;  // open loop: the force-feedback servo is disengaged
          if (full) {
            dac_drive_->write_volts(drive_v_);
            dac_ctrl_->write_volts(ctrl_v_);
          }
          if (static_cast<long>(blk_ss_.size()) == blk_target_) flush_sense_block();
        },
        "dsp_batched");
  } else {
    sched.every(
        1,
        [this, &st, full] {
          if (!st.sp) return;
          drive_v_ = drive_->step(*st.sp);
          const auto fast = sense_->step(*st.ss, drive_->carrier_i(), drive_->carrier_q());
          ctrl_v_ = fast.control_v;
          if (full) {
            dac_drive_->write_volts(drive_v_);
            dac_ctrl_->write_volts(ctrl_v_);
          }
        },
        "dsp");
  }

  // ---- safety supervisor (per DSP sample) -------------------------------
  if (supervisor_)
    sched.every(
        1,
        [this, &st] {
          if (!st.sp) return;
          safety::FastSample fsmp;
          fsmp.primary_adc_v = *st.sp;
          fsmp.sense_adc_v = st.ss ? *st.ss : 0.0;
          fsmp.pll_locked = drive_->pll_locked();
          fsmp.loop_settled = drive_->locked();
          fsmp.agc_gain = drive_->amplitude_control();
          fsmp.amplitude = drive_->amplitude();
          fsmp.control_v = ctrl_v_;
          supervisor_->on_fast(fsmp);
        },
        "supervisor");

  // ---- observability edge detectors (per DSP sample) --------------------
  // Read-only taps on the drive loop: PLL lock / lock-loss / relock and AGC
  // settle / unsettle become structured events. Registered only when an
  // event sink is attached, so the disabled configuration schedules exactly
  // the same task set as before the telemetry subsystem existed.
  if (obs_.events)
    sched.every(
        1,
        [this, &st] {
          if (!st.sp) return;
          const double t = static_cast<double>(dsp_samples_) / (cfg_.analog_fs / cfg_.adc_div);
          const bool pll = drive_->pll_locked();
          if (pll != obs_pll_prev_) {
            if (pll) {
              obs_.events->emit(t, obs::EventSeverity::Info, obs::EventCategory::Pll,
                                obs_pll_ever_ ? "pll_relock" : "pll_lock", {},
                                {{"freq_hz", drive_->frequency()}});
              obs_pll_ever_ = true;
            } else {
              obs_.events->emit(t, obs::EventSeverity::Warn, obs::EventCategory::Pll,
                                "pll_lock_loss");
            }
            obs_pll_prev_ = pll;
          }
          const bool settled = drive_->locked();
          if (settled != obs_agc_prev_) {
            obs_.events->emit(t, obs::EventSeverity::Info, obs::EventCategory::Agc,
                              settled ? "agc_settled" : "agc_unsettled", {},
                              {{"gain", drive_->amplitude_control()},
                               {"amplitude", drive_->amplitude()}});
            obs_agc_prev_ = settled;
          }
        },
        "obs_events");

  // ---- trace tap (per DSP sample) ---------------------------------------
  if (trace_)
    sched.every(
        1,
        [this, &st] {
          if (!st.sp) return;
          trace_->push("amplitude_control", drive_->amplitude_control());
          trace_->push("phase_error", drive_->phase_error());
          trace_->push("amplitude_error", drive_->amplitude_error());
          trace_->push("vco_control", drive_->vco_control());
          trace_->push("pickoff", *st.sp);
        },
        "trace");

  // ---- decimated output rate (1.875 kHz) + MCU monitor slice ------------
  const bool probe_out = probe_ && probe_->wants(sensor::ProbePoint::DecimatedOutput);
  sched.every(
      1,
      [this, &st, out, probe_out] {
        if (!st.sp) return;
        // The temperature sensor is read every DSP sample (its noise stream
        // is part of the sample clock domain); the CIC decides when a slow
        // sample completes.
        const double measured_temp = temp_sensor_ ? temp_sensor_->read(st.temp_c) : st.temp_c;
        const double comp_temp =
            supervisor_ ? supervisor_->comp_temp(measured_temp) : measured_temp;
        const auto slow = sense_->slow_output(comp_temp);
        if (!slow) return;
        double out_v = slow->rate;
        if (supervisor_) {
          const auto decision = supervisor_->on_slow({slow->rate, slow->quad, measured_temp});
          out_v = decision.output_v;
        }
        last_output_ = out_v;
        if (out) out->push_back(out_v);
        if (probe_out)
          probe_->on_frame(
              {sensor::ProbePoint::DecimatedOutput, st.tick, out_v, measured_temp});
        if (obs_.metrics) {
          obs_.metrics->add(obs_m_outputs_);
          obs_.metrics->observe(obs_h_output_v_, out_v);
        }
        if (trace_) trace_->push("rate_out", out_v);
        post_status(measured_temp);
        if (cfg_.with_mcu && st.cpu_cycles_per_slow > 0) platform_.run_cpu(st.cpu_cycles_per_slow);
        if (auto* sram = platform_.sram_trace()) {
          // Selectable chain nodes (paper §4.2: "digital data coming from any
          // node of the DSP chain"), Q3.12 signed format.
          const auto q312 = [](double v) {
            return static_cast<std::uint16_t>(static_cast<std::int32_t>(v * 8192.0) & 0xFFFF);
          };
          sram->push(0, q312(sense_->raw_rate()));
          sram->push(1, q312(sense_->raw_quad()));
          sram->push(2, q312(drive_->amplitude()));
          sram->push(3, q312(drive_->amplitude_control()));
          sram->push(4, q312(drive_->vco_control() / 16.0));
        }
      },
      "output");
}

void GyroSystem::serialize_state(StateArchive& ar) {
  ar.begin_section("GSYS");
  // Runtime-mutable config knobs. Register hooks mutate cfg_ when firmware
  // or JTAG writes config registers mid-run; the raw register restore below
  // deliberately does not re-fire hooks, so the knobs travel explicitly.
  std::int32_t mode = static_cast<std::int32_t>(cfg_.sense.mode);
  ar.value(mode);
  if (!ar.saving()) cfg_.sense.mode = static_cast<SenseMode>(mode);
  ar.value(cfg_.primary_pga_gain);
  ar.value(cfg_.sense_pga_gain);
  std::int32_t adc_bits = cfg_.adc.bits;
  ar.value(adc_bits);
  if (!ar.saving()) cfg_.adc.bits = adc_bits;
  for (auto& o : cfg_.comp.offset) ar.value(o);
  ar.value(cfg_.comp.s0);
  ar.value(cfg_.comp.s1);
  ar.value(cfg_.comp.s2);
  if (!ar.saving()) sense_->set_compensation(cfg_.comp);

  // Components, in pipeline order. All exist at every fidelity (build()
  // constructs them unconditionally).
  mems_->serialize_state(ar);
  champ_primary_->serialize_state(ar);
  champ_sense_->serialize_state(ar);
  acq_primary_->serialize_state(ar);
  acq_sense_->serialize_state(ar);
  dac_drive_->serialize_state(ar);
  dac_ctrl_->serialize_state(ar);
  temp_sensor_->serialize_state(ar);
  drive_->serialize_state(ar);
  sense_->serialize_state(ar);

  ar.value(drive_v_);
  ar.value(ctrl_v_);
  ar.value(last_output_);
  std::int64_t base = base_ticks_, dsp = dsp_samples_;
  ar.value(base);
  ar.value(dsp);
  if (!ar.saving()) {
    base_ticks_ = static_cast<long>(base);
    dsp_samples_ = static_cast<long>(dsp);
  }
  ar.value(obs_pll_prev_);
  ar.value(obs_agc_prev_);
  ar.value(obs_pll_ever_);

  bool has_sup = supervisor_ != nullptr;
  ar.value(has_sup);
  if (has_sup != (supervisor_ != nullptr))
    throw StateError("checkpoint safety-supervisor presence mismatch");
  if (supervisor_) supervisor_->serialize_state(ar);

  platform_.serialize_state(ar);
  afe_regs_.serialize_values(ar);
  ar.end_section();
}

std::vector<platform::Scheduler::TaskInfo> GyroSystem::schedule_tasks() {
  // Register the real pipeline on a throwaway scheduler and enumerate it.
  // Nothing ticks, so the captured references to these locals never dangle.
  platform::Scheduler sched(cfg_.analog_fs);
  TickState st;
  sensor::SyntheticSource src({}, {}, cfg_.analog_fs);
  schedule_pipeline(sched, st, src, nullptr);
  return sched.tasks();
}

void GyroSystem::run(const sensor::Profile& rate, const sensor::Profile& temp, double seconds,
                     std::vector<double>* out) {
  // Profiles are evaluated from t = 0 at the start of this call (the
  // RateSensor contract) unless the owner pinned the stimulus to the global
  // tick axis; either way the arithmetic inside SyntheticSource is exactly
  // the historical tick·dt evaluation, so this wrapper is bit-identical to
  // the pre-seam hard-wired path.
  sensor::SyntheticSource src(rate, temp, cfg_.analog_fs,
                              cfg_.stimulus_global_time ? 0 : base_ticks_);
  run(src, seconds, out);
}

void GyroSystem::run(sensor::StimulusSource& src, double seconds, std::vector<double>* out) {
  // One pipeline instance per run() call; the scheduler's tick origin is
  // this call's first tick. All multi-rate structure lives in the Scheduler
  // and in the hardware models' own decimators — there is no divider
  // arithmetic here.
  platform::Scheduler sched(cfg_.analog_fs);
  TickState st;
  const long tick_origin = base_ticks_;
  schedule_pipeline(sched, st, src, out);
  if (obs_.tasks) {
    // Scheduler instances are per-run; the profiler accumulates across them.
    // The tick origin maps this run's local ticks onto the channel's global
    // tick axis so exported slice timestamps stay monotonic.
    obs_.tasks->set_tick_origin(tick_origin);
    sched.set_profiler(obs_.tasks);
  }
  if (obs_.events)
    obs_.events->emit(static_cast<double>(dsp_samples_) / (cfg_.analog_fs / cfg_.adc_div),
                      obs::EventSeverity::Debug, obs::EventCategory::Scheduler, "run_begin",
                      {}, {{"seconds", seconds}});
  const double t_sim0 = static_cast<double>(tick_origin) / cfg_.analog_fs;
  if (obs_.spans && obs_.events && !obs_trace_announced_) {
    obs_trace_announced_ = true;
    obs_.events->emit(t_sim0, obs::EventSeverity::Debug, obs::EventCategory::Trace,
                      "trace_begin", {},
                      {{"trace_id", static_cast<double>(obs_.spans->trace_id())}});
  }
  obs::SpanScope run_span(obs_.spans, "gyro.run", obs::SpanCategory::Scheduler, t_sim0);
  const auto wall0 = std::chrono::steady_clock::now();
  sched.run_seconds(seconds);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
  // Batched open-loop runs may end mid-block; push the tail through so the
  // chain's observable state matches the sample-serial path at return.
  flush_sense_block();
  run_span.close(t_sim0 + seconds, wall * 1e6);
  if (obs_.tasks) obs_.tasks->record_run(seconds, wall);
  if (obs_.metrics) obs_.metrics->add(obs_m_runs_);
  if (obs_.events)
    obs_.events->emit(static_cast<double>(dsp_samples_) / (cfg_.analog_fs / cfg_.adc_div),
                      obs::EventSeverity::Debug, obs::EventCategory::Scheduler, "run_end", {},
                      {{"seconds", seconds}, {"wall_s", wall}});
}

}  // namespace ascp::core
