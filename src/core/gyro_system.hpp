// gyro_system.hpp — the complete conditioned gyro (paper §4).
//
// Assembles the platform customization end to end:
//
//   GyroMems ──ΔC──► charge amps ──► PGA+AA+SAR ADC ──► DriveLoop / SenseChain
//      ▲                                                    │
//      └──────────── drive & control DACs ◄─────────────────┘
//
// Two fidelity levels reproduce the paper's two validation stages:
//   * Ideal — the MATLAB system model: float DSP, ideal transduction, no
//     electronics noise/quantization (Fig. 5).
//   * Full  — the emulation/measured configuration: charge amps, PGAs,
//     anti-aliasing, SAR ADCs, DACs with settling and glitch, reference and
//     temperature-sensor errors (Fig. 6, Table 1).
//
// The platform fabric is attached: status registers updated every decimated
// sample (readable over JTAG and by the 8051 through the bridge), and an
// optional MCU monitor slice runs the paper's control/monitoring firmware.
#pragma once

#include <memory>
#include <optional>

#include "afe/charge_amp.hpp"
#include "afe/dac.hpp"
#include "afe/frontend.hpp"
#include "afe/reference.hpp"
#include "common/state_archive.hpp"
#include "common/trace.hpp"
#include "core/drive_loop.hpp"
#include "obs/observability.hpp"
#include "core/rate_sensor.hpp"
#include "core/sense_chain.hpp"
#include "platform/platform.hpp"
#include "platform/scheduler.hpp"
#include "safety/fault_injection.hpp"
#include "safety/supervisor.hpp"
#include "sensor/gyro_mems.hpp"

namespace ascp::core {

enum class Fidelity { Ideal, Full };

/// Status-register addresses in the platform register file.
namespace reg {
constexpr std::uint16_t kLock = 0;      ///< bit0 PLL locked, bit1 AGC settled
// Analog-die register file (second TAP in the chain):
constexpr std::uint16_t kAfePgaPrimary = 0;  ///< config: primary PGA gain ×16
constexpr std::uint16_t kAfePgaSense = 1;    ///< config: sense PGA gain ×16
constexpr std::uint16_t kAfeAdcBits = 2;     ///< config: SAR resolution
constexpr std::uint16_t kFreq = 1;      ///< drive frequency [Hz/4]
constexpr std::uint16_t kAgcGain = 2;   ///< AGC gain [mV/V × 1000]
constexpr std::uint16_t kRateOut = 3;   ///< rate output [mV]
constexpr std::uint16_t kQuad = 4;      ///< quadrature monitor [mV, signed]
constexpr std::uint16_t kTemp = 5;      ///< measured temperature [°C × 8, signed]
constexpr std::uint16_t kMode = 16;     ///< config: 0 open loop, 1 closed loop
constexpr std::uint16_t kSenseGain = 17;///< config: sense PGA gain [×16]
constexpr std::uint16_t kDiag = 24;     ///< base of the safety DIAG block
}  // namespace reg

struct GyroSystemConfig {
  Fidelity fidelity = Fidelity::Full;
  sensor::GyroMemsConfig mems{};
  DriveLoopConfig drive = default_drive_loop();
  SenseChainConfig sense{};
  double analog_fs = 1.92e6;
  int adc_div = 8;  ///< ADC/DSP rate = analog_fs / adc_div (240 kHz)

  double primary_pga_gain = 2.0;
  double sense_pga_gain = 8.0;
  afe::ChargeAmpConfig charge_amp{};  ///< shared template for both channels
  afe::AdcConfig adc{};
  afe::DacConfig dac{};

  bool with_mcu = false;  ///< instantiate the 8051 monitor subsystem
  /// Evaluate the rate/temperature profiles on the channel's global tick
  /// axis instead of restarting t at 0 each run() call. Set by owners (the
  /// fleet engine) that advance one continuous timeline through many run()
  /// calls — required for checkpoint resume to be bit-exact, because a
  /// resumed run must see the stimulus continue, not restart.
  bool stimulus_global_time = false;
  /// Instantiate the safety supervisor + DIAG register block. The nominal
  /// numeric path is bit-identical with or without it (pass-through until a
  /// monitor trips).
  bool with_safety = false;
  dsp::CompensationCoeffs comp{};
  std::uint64_t seed = 1;
};

/// Factory defaults tuned to the paper's operating point (see DESIGN.md).
GyroSystemConfig default_gyro_system(Fidelity fidelity = Fidelity::Full);

class GyroSystem : public RateSensor {
 public:
  explicit GyroSystem(const GyroSystemConfig& cfg = default_gyro_system());

  // ---- RateSensor ---------------------------------------------------------
  void power_on(std::uint64_t seed) override;
  /// Runs the temperature-calibration flow and stores the coefficients.
  void factory_calibrate() override;
  double output_rate_hz() const override;
  void run(const sensor::Profile& rate, const sensor::Profile& temp, double seconds,
           std::vector<double>* out) override;
  void run(sensor::StimulusSource& src, double seconds, std::vector<double>* out) override;
  double nominal_sensitivity() const override { return 5e-3; }  // 5 mV/°/s, Table 1
  double nominal_null() const override { return cfg_.sense.output_offset; }
  double full_scale_dps() const override { return 300.0; }

  // ---- observability ------------------------------------------------------
  DriveLoop& drive() { return *drive_; }
  SenseChain& sense() { return *sense_; }
  sensor::GyroMems& mems() { return *mems_; }
  platform::RegisterFile& regs() { return platform_.regs(); }
  /// Analog-die configuration registers (paper Fig. 2 shows a TAP on each
  /// die): PGA gains and ADC resolution, applied at the next power_on.
  platform::RegisterFile& afe_regs() { return afe_regs_; }
  platform::McuSubsystem& platform() { return platform_; }
  bool locked() const { return drive_->locked(); }
  double last_output() const { return last_output_; }

  // ---- safety / fault injection -------------------------------------------
  /// Present only when cfg.with_safety (nullptr otherwise).
  safety::SafetySupervisor* supervisor() { return supervisor_.get(); }
  /// Campaign stepped once per DSP sample inside run() (nullptr = none).
  void set_fault_campaign(safety::FaultCampaign* campaign) {
    campaign_ = campaign;
    if (campaign_ && obs_.enabled())
      campaign_->set_obs(obs_, cfg_.analog_fs / cfg_.adc_div);
  }

  /// Attach an observability sink and propagate it to the supervisor, the
  /// fault campaign and the MCU core. Read-only observers: the numeric
  /// output is bit-identical with the sink attached or not.
  void set_observability(const obs::ObsSink& sink);
  const obs::ObsSink& observability() const { return obs_; }
  /// DSP samples elapsed since power-on — the fault-injection time base.
  long dsp_samples() const { return dsp_samples_; }
  afe::AcquisitionChannel* acq_primary() { return acq_primary_.get(); }
  afe::AcquisitionChannel* acq_sense() { return acq_sense_.get(); }
  afe::ChargeAmp* champ_primary() { return champ_primary_.get(); }
  afe::ChargeAmp* champ_sense() { return champ_sense_.get(); }

  /// Attach a read-only probe on the chain taps (stimulus, post-MEMS,
  /// post-AFE, post-ADC, decimated output — see sensor::ProbePoint). Probes
  /// follow the obs discipline: the numeric output is bit-identical with a
  /// probe attached or not, and when detached (or for rejected points) no
  /// task is even scheduled. nullptr detaches.
  void set_probe(sensor::Probe* probe);
  sensor::Probe* probe() const { return probe_; }

  /// Attach a trace recorder: Fig. 5/6 channels (amplitude_control,
  /// phase_error, amplitude_error, vco_control, pickoff) at fs/`decimate`
  /// plus rate_out at the decimated rate.
  void set_trace(TraceRecorder* trace, std::size_t decimate = 16);

  void set_compensation(const dsp::CompensationCoeffs& c);
  const GyroSystemConfig& config() const { return cfg_; }

  /// Enumerate the scheduler task graph run() would register (names, rate
  /// dividers, phases) without advancing a single tick — the input the
  /// static schedulability analysis (analysis/timing_lint) checks against
  /// the per-sample CPU budget.
  std::vector<platform::Scheduler::TaskInfo> schedule_tasks();

  /// Checkpoint path: runtime-mutable config knobs, both register files and
  /// every stateful component. Wiring (obs sink, trace, campaign pointer,
  /// register hook closures) stays as constructed — restore into a system
  /// built from the same config.
  void serialize_state(StateArchive& ar);

 private:
  /// State shared between the scheduler tasks of one pipeline instance:
  /// the current tick's environment and the (optional) ADC sample pair
  /// flowing from the analog stage into the digital stages.
  struct TickState {
    long tick = 0;         ///< global index of the current analog tick
    double temp_c = 25.0;
    double rate_dps = 0.0;
    sensor::GyroOutputs pick{};
    double vp = 0.0, vs = 0.0;  ///< charge-amp outputs (Full fidelity)
    std::optional<double> sp, ss;
    long cpu_cycles_per_slow = 0;
  };

  void build(std::uint64_t seed);
  void define_registers();
  void post_status(double measured_temp);
  /// Registers the multi-rate conditioning pipeline on `sched`: analog tick
  /// → ADC sampling → fault campaign → DSP → supervisor → trace → decimated
  /// output + MCU slice, one scheduler task per stage, in that order.
  void schedule_pipeline(platform::Scheduler& sched, TickState& st,
                         sensor::StimulusSource& src, std::vector<double>* out);
  /// True when the open-loop batched sense path applies (no per-sample
  /// observers: supervisor, campaign, trace, MCU).
  bool can_batch_sense();
  void flush_sense_block();
  /// Watchdog-bite recovery: self-test, calibration replay from EEPROM,
  /// drive re-acquisition, watchdog re-arm. Chained off the platform reset
  /// hook — fires right after the watchdog has reset the CPU.
  void recover_from_watchdog();

  GyroSystemConfig cfg_;
  platform::McuSubsystem platform_;
  platform::RegisterFile afe_regs_;
  platform::JtagDevice afe_tap_{0x1A5CA002, &afe_regs_};  // analog die

  // Rebuilt on every power_on (a fresh die + cold electronics).
  std::unique_ptr<sensor::GyroMems> mems_;
  std::unique_ptr<afe::ChargeAmp> champ_primary_, champ_sense_;
  std::unique_ptr<afe::AcquisitionChannel> acq_primary_, acq_sense_;
  std::unique_ptr<afe::Dac> dac_drive_, dac_ctrl_;
  std::unique_ptr<afe::TempSensor> temp_sensor_;
  std::unique_ptr<DriveLoop> drive_;
  std::unique_ptr<SenseChain> sense_;

  double ideal_gain_primary_ = 0.0;  ///< V per farad, Ideal fidelity
  double ideal_gain_sense_ = 0.0;
  double drive_v_ = 0.0;  ///< latched DSP outputs (Ideal path / DAC targets)
  double ctrl_v_ = 0.0;
  double last_output_ = 2.5;
  long base_ticks_ = 0;
  long dsp_samples_ = 0;

  std::unique_ptr<safety::SafetySupervisor> supervisor_;
  safety::FaultCampaign* campaign_ = nullptr;

  obs::ObsSink obs_{};
  // Edge detectors for the PLL/AGC event emitters (per power-on).
  bool obs_pll_prev_ = false, obs_agc_prev_ = false, obs_pll_ever_ = false;
  // One-shot trace_begin announcement when spans are attached.
  bool obs_trace_announced_ = false;
  // Metric ids interned once at attach time (recording must not hit the
  // registry's name table).
  obs::MetricRegistry::Id obs_m_outputs_ = 0, obs_m_dsp_ = 0, obs_m_runs_ = 0;
  obs::MetricRegistry::Id obs_h_output_v_ = 0;

  TraceRecorder* trace_ = nullptr;
  std::size_t trace_decimate_ = 16;
  sensor::Probe* probe_ = nullptr;

  // Open-loop batched sense path: pending (pickoff, carrier) samples and the
  // block size that makes the next flush coincide with a CIC completion.
  std::vector<double> blk_ss_, blk_ci_, blk_cq_;
  long blk_target_ = 0;
};

}  // namespace ascp::core
