#include "core/metrics.hpp"

#include <cmath>
#include <vector>

#include "common/math.hpp"
#include "common/spectrum.hpp"

namespace ascp::core {

namespace {
/// Mean of the last `fraction` of a sample vector.
double tail_mean(const std::vector<double>& v, double fraction) {
  if (v.empty()) return 0.0;
  const std::size_t start = static_cast<std::size_t>(static_cast<double>(v.size()) * (1.0 - fraction));
  return mean(std::span(v).subspan(start));
}
}  // namespace

SensitivityResult measure_sensitivity(RateSensor& dut, double temp_c, int points,
                                      double dwell_s) {
  const double fs = dut.full_scale_dps();
  std::vector<double> rates, outputs;
  const auto temp = sensor::Profile::constant(temp_c);
  for (int i = 0; i < points; ++i) {
    const double rate = -fs + 2.0 * fs * static_cast<double>(i) / (points - 1);
    std::vector<double> samples;
    dut.run(sensor::Profile::constant(rate), temp, dwell_s, &samples);
    rates.push_back(rate);
    outputs.push_back(tail_mean(samples, 0.5));
  }
  const auto fit = fit_line(rates, outputs);
  SensitivityResult r;
  r.mv_per_dps = fit.slope * 1e3;
  const double fs_output_span = std::abs(fit.slope) * fs;
  r.nonlinearity_pct_fs = fs_output_span > 0 ? fit.max_abs_residual / fs_output_span * 100.0 : 0.0;
  r.null_v = fit.offset;
  return r;
}

double measure_null(RateSensor& dut, double temp_c, double settle_s, double measure_s) {
  const auto zero = sensor::Profile::constant(0.0);
  const auto temp = sensor::Profile::constant(temp_c);
  dut.run(zero, temp, settle_s, nullptr);
  std::vector<double> samples;
  dut.run(zero, temp, measure_s, &samples);
  return mean(samples);
}

double measure_turn_on(RateSensor& dut, std::uint64_t seed, double temp_c, double tol_v,
                       double max_s) {
  // Time-to-valid-output: power on with a reference rate applied (a third
  // of full scale) and find when the output holds its final value — this
  // captures drive ring-up, AGC settling and filter transients, which a
  // zero-rate capture of a drift-free device would miss.
  dut.power_on(seed);
  const double ref_rate = dut.full_scale_dps() / 3.0;
  std::vector<double> samples;
  dut.run(sensor::Profile::constant(ref_rate), sensor::Profile::constant(temp_c), max_s,
          &samples);
  if (samples.size() < 64) return max_s;
  // Smooth over ~50 ms windows so broadband output noise doesn't mask the
  // settling transient (a rate-table readout would average the same way).
  const std::size_t win = std::max<std::size_t>(4, static_cast<std::size_t>(
                                                       0.05 * dut.output_rate_hz()));
  std::vector<double> smooth;
  smooth.reserve(samples.size() / win);
  for (std::size_t i = 0; i + win <= samples.size(); i += win)
    smooth.push_back(mean(std::span(samples).subspan(i, win)));
  const double final_value = tail_mean(smooth, 0.1);
  // Two consecutive out-of-tolerance windows mark the transient; a single
  // isolated noise excursion does not re-arm the timer.
  std::size_t last_bad = 0;
  bool prev_bad = false;
  for (std::size_t i = 0; i < smooth.size(); ++i) {
    const bool bad = std::abs(smooth[i] - final_value) > tol_v;
    if (bad && (prev_bad || i == 0)) last_bad = i + 1;
    prev_bad = bad;
  }
  return static_cast<double>(last_bad * win) / dut.output_rate_hz();
}

double measure_noise_density(RateSensor& dut, double temp_c, double seconds, double band_lo,
                             double band_hi) {
  std::vector<double> samples;
  dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(temp_c), seconds, &samples);
  const double fs_out = dut.output_rate_hz();
  // nfft sized for ≥4 Hz-resolution bins inside the band.
  std::size_t nfft = 1;
  while (nfft * 2 <= samples.size() / 4 && nfft < 4096) nfft <<= 1;
  const auto psd = welch_psd(samples, fs_out, nfft);
  const double v_density = std::sqrt(psd.band_mean(band_lo, band_hi));  // V/√Hz
  return v_density / std::abs(dut.nominal_sensitivity());
}

double measure_bandwidth(RateSensor& dut, double temp_c, double amp_dps, double f_ref_hz,
                         double f_max_hz) {
  const auto temp = sensor::Profile::constant(temp_c);
  const auto response_at = [&](double f) {
    // Settle one stimulus period (min 0.2 s), then measure over an integer
    // number of periods ≥ 1 s.
    dut.run(sensor::Profile::sine(amp_dps, f), temp, std::max(0.2, 1.0 / f), nullptr);
    const double measure_s = std::max(1.0, std::ceil(f) / f);
    std::vector<double> samples;
    dut.run(sensor::Profile::sine(amp_dps, f), temp, measure_s, &samples);
    return estimate_tone(samples, dut.output_rate_hz(), f).amplitude;
  };

  const double ref = response_at(f_ref_hz);
  if (ref <= 0.0) return 0.0;
  const double target = ref / std::sqrt(2.0);

  double f_lo = f_ref_hz, a_lo = ref;
  double f = f_ref_hz * 2.0;
  while (f <= f_max_hz) {
    const double a = response_at(f);
    if (a < target) {
      // Log-domain interpolation between the straddling points.
      const double t = (std::log(a_lo) - std::log(target)) / (std::log(a_lo) - std::log(a));
      return std::exp(std::log(f_lo) + t * (std::log(f) - std::log(f_lo)));
    }
    f_lo = f;
    a_lo = a;
    f *= std::sqrt(2.0);
  }
  return f_max_hz;
}

}  // namespace ascp::core
