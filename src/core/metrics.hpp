// metrics.hpp — datasheet metrology.
//
// Tables 1–3 of the paper are gyro datasheets: sensitivity, nonlinearity,
// null, turn-on time, rate-noise density and −3 dB bandwidth, with min/typ/
// max columns over devices and temperature. These functions measure each
// figure on anything implementing RateSensor, the way an evaluation lab
// would: rate-table staircases, power-on step captures, PSD estimation at
// zero rate, and sinusoidal rate sweeps.
#pragma once

#include "core/rate_sensor.hpp"

namespace ascp::core {

struct SensitivityResult {
  double mv_per_dps = 0.0;          ///< fitted scale factor [mV/°/s]
  double nonlinearity_pct_fs = 0.0; ///< max deviation from best line [% of FS]
  double null_v = 0.0;              ///< output at 0 °/s [V]
};

/// Rate-table staircase at fixed temperature. The device must already be
/// warmed up (run ≥ warm-up time after power_on). `points` levels spanning
/// ±full_scale; each level dwells `dwell_s` and the last half is averaged.
SensitivityResult measure_sensitivity(RateSensor& dut, double temp_c, int points = 9,
                                      double dwell_s = 0.25);

/// Output at zero rate after `settle_s`, averaged over `measure_s`.
double measure_null(RateSensor& dut, double temp_c, double settle_s = 0.5,
                    double measure_s = 0.5);

/// Cold-start to valid output: power the DUT on, run at 0 °/s and find when
/// the output stays within `tol_v` of its final value. Returns seconds (or
/// max_s if it never settles).
double measure_turn_on(RateSensor& dut, std::uint64_t seed, double temp_c, double tol_v = 5e-3,
                       double max_s = 2.0);

/// Rate-noise density [°/s/√Hz], averaged over [band_lo, band_hi] Hz of the
/// zero-rate output PSD. Device must be warm.
double measure_noise_density(RateSensor& dut, double temp_c, double seconds = 6.0,
                             double band_lo = 4.0, double band_hi = 20.0);

/// −3 dB bandwidth [Hz]: sinusoidal rate stimulus amplitude `amp_dps`,
/// response referenced to `f_ref_hz`, frequency raised until the response
/// drops below 1/√2 (log interpolation between the straddling points).
double measure_bandwidth(RateSensor& dut, double temp_c, double amp_dps = 50.0,
                         double f_ref_hz = 4.0, double f_max_hz = 400.0);

}  // namespace ascp::core
