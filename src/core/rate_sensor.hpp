// rate_sensor.hpp — common interface for anything that measures yaw rate.
//
// The metrology layer (metrics.hpp) characterizes a device through this
// interface only, so the same code produces Table 1 (our platform), Table 2
// (the ADXRS300-like baseline) and Table 3 (the Gyrostar-like baseline).
#pragma once

#include <cstdint>
#include <vector>

#include "sensor/environment.hpp"
#include "sensor/stimulus_source.hpp"

namespace ascp::core {

class RateSensor {
 public:
  virtual ~RateSensor() = default;

  /// Cold power-on. `seed` selects the device (mismatch draws): different
  /// seeds are different dies off the same wafer.
  virtual void power_on(std::uint64_t seed) = 0;

  /// Factory trim: whatever per-device calibration this product gets before
  /// it ships. Analog baselines are laser-trimmed at build time (no-op
  /// here); the platform runs its temperature-calibration flow.
  virtual void factory_calibrate() {}

  /// Rate of the samples appended by run() [Hz].
  virtual double output_rate_hz() const = 0;

  /// Simulate `seconds`, driving the sensor with the given rate [°/s] and
  /// temperature [°C] profiles (evaluated from 0 at the start of this call),
  /// appending every output sample [V] to `out` (if non-null). Simulation
  /// state persists across calls.
  virtual void run(const sensor::Profile& rate, const sensor::Profile& temp, double seconds,
                   std::vector<double>* out) = 0;

  /// Source-fed run: sample `src` once per analog tick on the device's
  /// global tick axis (the axis checkpoints resume on), appending output
  /// samples to `out`. The Profile overload above is a convenience wrapper
  /// that builds a SyntheticSource — both paths are bit-identical.
  virtual void run(sensor::StimulusSource& src, double seconds, std::vector<double>* out) = 0;

  /// Datasheet scale factor the device is calibrated to [V per °/s].
  virtual double nominal_sensitivity() const = 0;

  /// Datasheet null level [V].
  virtual double nominal_null() const = 0;

  /// Specified dynamic range [°/s] (full scale used by the metrology).
  virtual double full_scale_dps() const = 0;
};

}  // namespace ascp::core
