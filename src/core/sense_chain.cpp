#include "core/sense_chain.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ascp::core {

SenseChain::SenseChain(const SenseChainConfig& cfg)
    : cfg_(cfg),
      demod_(cfg.fs, cfg.demod_bw),
      mod_(1.0),
      cic_rate_(cfg.cic_stages, cfg.cic_ratio, 16, 2.5),
      cic_quad_(cfg.cic_stages, cfg.cic_ratio, 16, 2.5),
      fir_(dsp::design_lowpass(cfg.fir_taps, cfg.fir_corner, cfg.fs / cfg.cic_ratio)),
      out_lpf_(dsp::design_butterworth_lowpass(4, cfg.output_bw_hz, cfg.fs / cfg.cic_ratio)),
      dp_q_(cfg.datapath_bits > 0 ? std::optional<Quantizer>(Quantizer(cfg.datapath_bits, 2.5))
                                  : std::nullopt),
      cos_d_(std::cos(cfg.demod_phase_trim)),
      sin_d_(std::sin(cfg.demod_phase_trim)),
      cos_f_(std::cos(cfg.fb_phase_trim)),
      sin_f_(std::sin(cfg.fb_phase_trim)) {}

SenseFastOut SenseChain::step(double pickoff, double carrier_i, double carrier_q) {
  // Phase-trimmed references: rotate the carrier pair by the configured
  // trims so detection and actuation align with the physical path delays.
  const double ci_d = cos_d_ * carrier_i + sin_d_ * carrier_q;
  const double cq_d = cos_d_ * carrier_q - sin_d_ * carrier_i;
  bb_ = demod_.step(pickoff, ci_d, cq_d);
  if (dp_q_) {
    bb_.i = dp_q_->quantize(bb_.i);
    bb_.q = dp_q_->quantize(bb_.q);
  }

  SenseFastOut out;
  double rate_fast = bb_.q;   // Coriolis lands in the cosine channel
  const double quad_fast = bb_.i;

  if (cfg_.mode == SenseMode::ClosedLoop) {
    const double dt = 1.0 / cfg_.fs;
    // Servo signs follow the plant: a sine-phase control force moves the
    // cosine demod output negatively; a cosine-phase force moves the sine
    // output positively.
    rate_integ_ += cfg_.rate_ki * bb_.q * dt;
    quad_integ_ -= cfg_.quad_ki * bb_.i * dt;
    rate_integ_ = std::clamp(rate_integ_, -cfg_.ctrl_limit, cfg_.ctrl_limit);
    quad_integ_ = std::clamp(quad_integ_, -cfg_.ctrl_limit, cfg_.ctrl_limit);
    if (dp_q_) {
      // Integrators live in wider registers in hardware; model one extra
      // octave of headroom bits beyond the datapath word.
      const Quantizer integ_q(cfg_.datapath_bits + 4, 2.5);
      rate_integ_ = integ_q.quantize(rate_integ_);
      quad_integ_ = integ_q.quantize(quad_integ_);
    }
    const double u_rate =
        std::clamp(rate_integ_ + cfg_.rate_kp * bb_.q, -cfg_.ctrl_limit, cfg_.ctrl_limit);
    const double u_quad =
        std::clamp(quad_integ_ - cfg_.quad_kp * bb_.i, -cfg_.ctrl_limit, cfg_.ctrl_limit);
    const double ci_f = cos_f_ * carrier_i + sin_f_ * carrier_q;
    const double cq_f = cos_f_ * carrier_q - sin_f_ * carrier_i;
    out.control_v = mod_.step(dsp::Iq{u_rate, u_quad}, ci_f, cq_f);
    // In closed loop the measurement is the feedback effort, not the
    // residual — that is what makes the loop linearizing (paper §4.1).
    rate_fast = u_rate;
  }

  if (const auto y = cic_rate_.push(rate_fast)) pending_rate_ = *y;
  if (const auto y = cic_quad_.push(quad_fast)) pending_quad_ = *y;
  return out;
}

void SenseChain::step_block(std::span<const double> pickoff, std::span<const double> carrier_i,
                            std::span<const double> carrier_q) {
  assert(cfg_.mode == SenseMode::OpenLoop);
  const std::size_t n = pickoff.size();
  if (n == 0) return;
  blk_ci_.resize(n);
  blk_cq_.resize(n);
  blk_i_.resize(n);
  blk_q_.resize(n);

  for (std::size_t k = 0; k < n; ++k) {
    blk_ci_[k] = cos_d_ * carrier_i[k] + sin_d_ * carrier_q[k];
    blk_cq_[k] = cos_d_ * carrier_q[k] - sin_d_ * carrier_i[k];
  }
  demod_.step_block(pickoff, blk_ci_, blk_cq_, blk_i_, blk_q_);

  for (std::size_t k = 0; k < n; ++k) {
    dsp::Iq bb{blk_i_[k], blk_q_[k]};
    if (dp_q_) {
      bb.i = dp_q_->quantize(bb.i);
      bb.q = dp_q_->quantize(bb.q);
    }
    bb_ = bb;
    if (const auto y = cic_rate_.push(bb.q)) pending_rate_ = *y;
    if (const auto y = cic_quad_.push(bb.i)) pending_quad_ = *y;
  }
}

std::optional<SenseSlowOut> SenseChain::slow_output(double measured_temp_c) {
  if (!pending_rate_) return std::nullopt;
  raw_rate_ = out_lpf_.process(fir_.process(*pending_rate_));
  raw_quad_ = pending_quad_.value_or(raw_quad_);
  pending_rate_.reset();
  pending_quad_.reset();
  SenseSlowOut out;
  out.rate = comp_.apply(raw_rate_, measured_temp_c) + cfg_.output_offset;
  out.quad = raw_quad_;
  return out;
}

void SenseChain::reset() {
  demod_.reset();
  cic_rate_.reset();
  cic_quad_.reset();
  fir_.reset();
  out_lpf_.reset();
  bb_ = {};
  rate_integ_ = quad_integ_ = 0.0;
  raw_rate_ = raw_quad_ = 0.0;
  pending_rate_.reset();
  pending_quad_.reset();
}

}  // namespace ascp::core
