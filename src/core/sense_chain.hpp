// sense_chain.hpp — secondary (rate) channel conditioning.
//
// Paper §4.1: "a chain including demodulators, filters, temperature/offset
// compensation and modulators for secondary drive and rate sensing", with
// open-loop and closed-loop (force-feedback) configurations. The structure:
//
//  sense ADC ──► I/Q demod ──► [closed loop: PI servos ──► I/Q modulator ──► control DAC]
//                  │
//                  └─► rate & quadrature baseband ──► CIC ÷128 ──► FIR ──► compensation ──► output
//
// With the drive convention carrier_i = sin (drive phase), the Coriolis
// response lands in the cosine demodulator output and the mechanical
// quadrature error in the sine output.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/quantizer.hpp"
#include "dsp/cic.hpp"
#include "dsp/compensation.hpp"
#include "dsp/fir.hpp"
#include "dsp/modem.hpp"

namespace ascp::core {

enum class SenseMode { OpenLoop, ClosedLoop };

struct SenseChainConfig {
  double fs = 240e3;           ///< DSP sample rate
  double demod_bw = 400.0;     ///< demodulator low-pass corner [Hz]
  int cic_ratio = 128;         ///< decimation to the output rate
  int cic_stages = 3;
  std::size_t fir_taps = 33;   ///< decimation clean-up FIR length
  double fir_corner = 200.0;   ///< clean-up FIR corner (CIC droop region)
  /// Output −3 dB bandwidth [Hz] (paper Table 1: 25..75 Hz, programmable).
  /// Realized by a 4th-order Butterworth biquad pair at the output rate —
  /// the hardware-cheap way to get sharp low corners at 1.875 kHz.
  double output_bw_hz = 75.0;
  SenseMode mode = SenseMode::ClosedLoop;
  // Force-feedback servo gains (closed loop).
  double rate_ki = 800.0;      ///< integral gain [ctrl-V per demod-V-second]
  double rate_kp = 0.3;
  double quad_ki = 800.0;
  double quad_kp = 0.3;
  double ctrl_limit = 2.4;     ///< control-DAC rail
  double output_offset = 2.5;  ///< null voltage added after compensation (Table 1)
  /// Carrier phase trim [rad] applied to the demodulator reference — the
  /// register-programmable knob that aligns detection with the actual
  /// AFE path delay (charge amp + AA filter + DAC). Calibrated per design.
  double demod_phase_trim = 0.0;
  /// Phase trim for the feedback modulator carriers (control-path delay).
  double fb_phase_trim = 0.0;
  /// Hardwired-datapath word length (the "RTL dimensioning" of paper §2).
  /// 0 = ideal float (the MATLAB level); otherwise every baseband node
  /// (demod outputs, servo integrators, control word) is held in a
  /// `datapath_bits`-wide register. The wordlength ablation sweeps this.
  int datapath_bits = 0;
};

/// Per-sample result of the fast section.
struct SenseFastOut {
  double control_v = 0.0;  ///< control-DAC voltage (0 in open loop)
};

/// Produced every cic_ratio samples.
struct SenseSlowOut {
  double rate = 0.0;   ///< compensated rate output [V] (includes null offset)
  double quad = 0.0;   ///< quadrature monitor (raw, decimated)
};

class SenseChain {
 public:
  explicit SenseChain(const SenseChainConfig& cfg);

  /// Fast path, once per DSP sample. `pickoff` is the sense-ADC sample,
  /// carriers come from the drive loop.
  SenseFastOut step(double pickoff, double carrier_i, double carrier_q);

  /// Batched fast path, open-loop mode only (closed loop feeds control back
  /// into the plant every sample, so it cannot batch). Processes the block
  /// through the kernels' block variants — bit-identical to calling step()
  /// per sample. Callers that need every slow sample must size blocks with
  /// samples_until_slow() so each CIC completion lands on a block end, then
  /// poll slow_output() there.
  void step_block(std::span<const double> pickoff, std::span<const double> carrier_i,
                  std::span<const double> carrier_q);

  /// DSP samples left until the rate CIC completes its next decimation
  /// cycle (the engine's batch-sizing query).
  long samples_until_slow() const { return cic_rate_.ticks_until_output(); }

  /// Slow output, valid when the CIC completes a decimation cycle; the
  /// compensation uses the measured die temperature.
  std::optional<SenseSlowOut> slow_output(double measured_temp_c);

  /// Raw (pre-compensation) rate signal at the decimated rate — the
  /// calibration observable.
  double raw_rate() const { return raw_rate_; }
  double raw_quad() const { return raw_quad_; }

  /// Demodulator baseband (monitor registers).
  dsp::Iq baseband() const { return bb_; }

  void set_compensation(const dsp::CompensationCoeffs& c) { comp_.set_coeffs(c); }
  const dsp::Compensation& compensation() const { return comp_; }
  const SenseChainConfig& config() const { return cfg_; }
  double output_rate_hz() const { return cfg_.fs / cfg_.cic_ratio; }

  void reset();

  void serialize_state(StateArchive& ar) {
    demod_.serialize_state(ar);
    cic_rate_.serialize_state(ar);
    cic_quad_.serialize_state(ar);
    fir_.serialize_state(ar);
    out_lpf_.serialize_state(ar);
    // Compensation coefficients are runtime-written (cal replay, trim), so
    // they travel with the state. blk_* scratch is per-call and skipped.
    dsp::CompensationCoeffs c = comp_.coeffs();
    for (auto& o : c.offset) ar.value(o);
    ar.value(c.s0);
    ar.value(c.s1);
    ar.value(c.s2);
    if (!ar.saving()) comp_.set_coeffs(c);
    ar.value(bb_.i);
    ar.value(bb_.q);
    ar.value(rate_integ_);
    ar.value(quad_integ_);
    ar.value(raw_rate_);
    ar.value(raw_quad_);
    ar.value(pending_rate_);
    ar.value(pending_quad_);
  }

 private:
  SenseChainConfig cfg_;
  dsp::IqDemodulator demod_;
  dsp::IqModulator mod_;
  dsp::CicDecimator cic_rate_;
  dsp::CicDecimator cic_quad_;
  dsp::FirFilter fir_;
  dsp::BiquadCascade out_lpf_;
  dsp::Compensation comp_;
  dsp::Iq bb_;
  std::optional<Quantizer> dp_q_;  ///< datapath register model (RTL level)
  double cos_d_ = 1.0, sin_d_ = 0.0;
  double cos_f_ = 1.0, sin_f_ = 0.0;
  double rate_integ_ = 0.0;
  double quad_integ_ = 0.0;
  double raw_rate_ = 0.0;
  double raw_quad_ = 0.0;
  std::optional<double> pending_rate_;
  std::optional<double> pending_quad_;
  // Block-path scratch (rotated carriers and baseband), reused across calls.
  std::vector<double> blk_ci_, blk_cq_, blk_i_, blk_q_;
};

}  // namespace ascp::core
