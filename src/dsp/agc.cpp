// agc.cpp — Agc is header-only (small PI loop); this TU anchors the target.
#include "dsp/agc.hpp"
