// agc.hpp — automatic gain control for the primary-mode vibration amplitude.
//
// Paper §4.1: the drive loop needs "an AGC (to control the amplitude of this
// vibration)". The AGC holds the primary-mode displacement at a fixed set
// point — the Coriolis scale factor is proportional to drive velocity, so
// amplitude regulation is what makes the rate output's sensitivity stable.
#pragma once

#include <algorithm>

#include "common/state_archive.hpp"

namespace ascp::dsp {

struct AgcConfig {
  double fs = 240e3;        ///< sample rate [Hz]
  double target = 1.0;      ///< desired detected amplitude
  double kp = 2.0;          ///< proportional gain [gain units per amplitude unit]
  double ki = 200.0;        ///< integral gain [gain units per amplitude-second]
  double gain_min = 0.0;    ///< actuator lower rail
  double gain_max = 8.0;    ///< actuator upper rail
  double settle_tol = 0.02; ///< |error|/target for "settled" detection
  int settle_count = 2000;  ///< consecutive in-tolerance samples
};

/// PI amplitude regulator. Feed it the measured carrier amplitude each
/// sample (typically Pll::amplitude()); multiply the NCO carrier by gain().
class Agc {
 public:
  explicit Agc(const AgcConfig& cfg) : cfg_(cfg), gain_(cfg.gain_min) {}

  /// One control step; returns the updated drive gain.
  double step(double measured_amplitude) {
    error_ = cfg_.target - measured_amplitude;
    const double dt = 1.0 / cfg_.fs;
    integ_ += cfg_.ki * error_ * dt;
    integ_ = std::clamp(integ_, cfg_.gain_min, cfg_.gain_max);  // anti-windup
    gain_ = std::clamp(integ_ + cfg_.kp * error_, cfg_.gain_min, cfg_.gain_max);

    if (std::abs(error_) < cfg_.settle_tol * cfg_.target) {
      if (settle_counter_ < cfg_.settle_count) ++settle_counter_;
    } else {
      settle_counter_ = 0;
    }
    return gain_;
  }

  /// Current actuator output (the "amplitude control" trace of Fig. 5).
  double gain() const { return gain_; }

  /// Current amplitude error (the "amplitude error" trace of Fig. 5).
  double error() const { return error_; }

  /// Amplitude held at target for settle_count consecutive samples.
  bool settled() const { return settle_counter_ >= cfg_.settle_count; }

  void reset() {
    gain_ = cfg_.gain_min;
    integ_ = 0.0;
    error_ = 0.0;
    settle_counter_ = 0;
  }

  void serialize_state(StateArchive& ar) {
    ar.value(gain_);
    ar.value(integ_);
    ar.value(error_);
    std::int32_t sc = settle_counter_;
    ar.value(sc);
    settle_counter_ = sc;
  }

 private:
  AgcConfig cfg_;
  double gain_;
  double integ_ = 0.0;
  double error_ = 0.0;
  int settle_counter_ = 0;
};

}  // namespace ascp::dsp
