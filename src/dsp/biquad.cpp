#include "dsp/biquad.hpp"

#include <cassert>
#include <cmath>
#include <complex>

#include "common/math.hpp"

namespace ascp::dsp {

namespace {
struct RbjIntermediates {
  double w0, cw, sw, alpha;
};

RbjIntermediates rbj(double fc, double q, double fs) {
  assert(fc > 0.0 && fc < fs / 2.0 && q > 0.0);
  RbjIntermediates r{};
  r.w0 = kTwoPi * fc / fs;
  r.cw = std::cos(r.w0);
  r.sw = std::sin(r.w0);
  r.alpha = r.sw / (2.0 * q);
  return r;
}

BiquadCoeffs normalize(double b0, double b1, double b2, double a0, double a1, double a2) {
  return BiquadCoeffs{b0 / a0, b1 / a0, b2 / a0, a1 / a0, a2 / a0};
}
}  // namespace

BiquadCoeffs design_biquad_lowpass(double fc, double q, double fs) {
  const auto r = rbj(fc, q, fs);
  return normalize((1 - r.cw) / 2, 1 - r.cw, (1 - r.cw) / 2, 1 + r.alpha, -2 * r.cw, 1 - r.alpha);
}

BiquadCoeffs design_biquad_highpass(double fc, double q, double fs) {
  const auto r = rbj(fc, q, fs);
  return normalize((1 + r.cw) / 2, -(1 + r.cw), (1 + r.cw) / 2, 1 + r.alpha, -2 * r.cw,
                   1 - r.alpha);
}

BiquadCoeffs design_biquad_bandpass(double fc, double q, double fs) {
  const auto r = rbj(fc, q, fs);
  // Constant 0 dB peak gain variant.
  return normalize(r.alpha, 0.0, -r.alpha, 1 + r.alpha, -2 * r.cw, 1 - r.alpha);
}

BiquadCoeffs design_biquad_notch(double fc, double q, double fs) {
  const auto r = rbj(fc, q, fs);
  return normalize(1.0, -2 * r.cw, 1.0, 1 + r.alpha, -2 * r.cw, 1 - r.alpha);
}

BiquadCascade::BiquadCascade(std::vector<BiquadCoeffs> sections) {
  sections_.reserve(sections.size());
  for (const auto& c : sections) sections_.emplace_back(c);
}

void Biquad::process_block(std::span<double> xy) {
  const double b0 = c_.b0, b1 = c_.b1, b2 = c_.b2, a1 = c_.a1, a2 = c_.a2;
  double s1 = s1_, s2 = s2_;
  for (double& v : xy) {
    const double x = v;
    const double y = b0 * x + s1;
    s1 = b1 * x - a1 * y + s2;
    s2 = b2 * x - a2 * y;
    v = y;
  }
  s1_ = s1;
  s2_ = s2;
}

double BiquadCascade::process(double x) {
  for (auto& s : sections_) x = s.process(x);
  return x;
}

void BiquadCascade::process_block(std::span<double> xy) {
  for (auto& s : sections_) s.process_block(xy);
}

void BiquadCascade::reset() {
  for (auto& s : sections_) s.reset();
}

BiquadCascade design_butterworth_lowpass(int order, double fc, double fs) {
  assert(order >= 2 && order % 2 == 0);
  BiquadCascade cascade;
  const int pairs = order / 2;
  for (int k = 0; k < pairs; ++k) {
    // Pole-pair Q for Butterworth: 1 / (2 sin((2k+1) pi / (2 order))).
    const double q = 1.0 / (2.0 * std::sin((2.0 * k + 1.0) * kPi / (2.0 * order)));
    cascade.append(design_biquad_lowpass(fc, q, fs));
  }
  return cascade;
}

double biquad_magnitude(const BiquadCoeffs& c, double f, double fs) {
  const double w = kTwoPi * f / fs;
  const std::complex<double> z1(std::cos(w), -std::sin(w));
  const std::complex<double> z2 = z1 * z1;
  const std::complex<double> num = c.b0 + c.b1 * z1 + c.b2 * z2;
  const std::complex<double> den = 1.0 + c.a1 * z1 + c.a2 * z2;
  return std::abs(num / den);
}

}  // namespace ascp::dsp
