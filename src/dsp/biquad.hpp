// biquad.hpp — IIR biquad section and cascade (RBJ cookbook designs).
//
// IIR sections implement the chain's narrow low-pass and notch functions far
// cheaper than equivalent FIRs — the hardwired "IIR filter" IP of the paper's
// DSP portfolio. Direct form II transposed is used for its better numerical
// behaviour at high Q.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "common/state_archive.hpp"

namespace ascp::dsp {

/// Normalized biquad coefficients: H(z) = (b0 + b1 z^-1 + b2 z^-2) /
/// (1 + a1 z^-1 + a2 z^-2).
struct BiquadCoeffs {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
};

/// RBJ cookbook designs (fc and fs in Hz).
BiquadCoeffs design_biquad_lowpass(double fc, double q, double fs);
BiquadCoeffs design_biquad_highpass(double fc, double q, double fs);
BiquadCoeffs design_biquad_bandpass(double fc, double q, double fs);
BiquadCoeffs design_biquad_notch(double fc, double q, double fs);

/// Single second-order section, direct form II transposed.
class Biquad {
 public:
  explicit Biquad(BiquadCoeffs c) : c_(c) {}

  double process(double x) {
    const double y = c_.b0 * x + s1_;
    s1_ = c_.b1 * x - c_.a1 * y + s2_;
    s2_ = c_.b2 * x - c_.a2 * y;
    return y;
  }

  /// Batched in-place variant: filters `xy` as if process() were called on
  /// each element in order (bit-identical), with the recurrence state held
  /// in registers across the block — the form the engine's hot loops use.
  void process_block(std::span<double> xy);

  void reset() { s1_ = s2_ = 0.0; }
  const BiquadCoeffs& coeffs() const { return c_; }

  void serialize_state(StateArchive& ar) {
    ar.value(s1_);
    ar.value(s2_);
  }

 private:
  BiquadCoeffs c_;
  double s1_ = 0.0, s2_ = 0.0;
};

/// Cascade of second-order sections.
class BiquadCascade {
 public:
  BiquadCascade() = default;
  explicit BiquadCascade(std::vector<BiquadCoeffs> sections);

  void append(BiquadCoeffs c) { sections_.emplace_back(c); }
  double process(double x);
  /// Batched in-place variant: each section sweeps the whole block before
  /// the next section runs. Bit-identical to per-sample process() — every
  /// (section, sample) value sees exactly the same operands either way.
  void process_block(std::span<double> xy);
  void reset();
  std::size_t size() const { return sections_.size(); }

  void serialize_state(StateArchive& ar) {
    // Section count is structural (set at design time), so only the
    // recurrence states travel; a count mismatch means the wrong config.
    std::uint32_t n = static_cast<std::uint32_t>(sections_.size());
    ar.value(n);
    if (n != sections_.size())
      throw StateError("BiquadCascade section count mismatch");
    for (auto& s : sections_) s.serialize_state(ar);
  }

 private:
  std::vector<Biquad> sections_;
};

/// Butterworth low-pass of even order `order` as a cascade of biquads
/// (order/2 sections with the classic pole-pair Q values).
BiquadCascade design_butterworth_lowpass(int order, double fc, double fs);

/// Magnitude response of a biquad at frequency f.
double biquad_magnitude(const BiquadCoeffs& c, double f, double fs);

}  // namespace ascp::dsp
