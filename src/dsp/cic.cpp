#include "dsp/cic.hpp"

#include <cassert>
#include <cmath>

#include "common/math.hpp"

namespace ascp::dsp {

CicDecimator::CicDecimator(int stages, int ratio, int input_bits, double full_scale)
    : stages_(stages), ratio_(ratio) {
  assert(stages >= 1 && stages <= 6);
  assert(ratio >= 1);
  assert(input_bits >= 2 && input_bits <= 24);
  // Input LSB: full_scale over 2^(bits-1). Accumulators grow by
  // N log2(R) bits — with int64 this never overflows for our dimensions
  // (24 input bits + 6*log2(4096) = 96... so constrain: we assert below).
  lsb_ = full_scale / static_cast<double>(std::int64_t{1} << (input_bits - 1));
  [[maybe_unused]] const double growth_bits = stages * std::log2(static_cast<double>(ratio));
  assert(input_bits + growth_bits < 62.0 && "CIC accumulator would overflow int64");
  inv_gain_ = 1.0 / raw_gain();
  integ_.assign(static_cast<std::size_t>(stages), 0);
  comb_.assign(static_cast<std::size_t>(stages), 0);
}

std::optional<double> CicDecimator::push(double x) {
  // Quantize input onto the integer grid; integrators wrap modulo 2^64,
  // which is exact for CIC because the comb differences cancel overflow.
  auto v = static_cast<std::int64_t>(std::llround(x / lsb_));
  for (auto& acc : integ_) {
    acc = static_cast<std::int64_t>(static_cast<std::uint64_t>(acc) + static_cast<std::uint64_t>(v));
    v = acc;
  }
  if (++phase_ < ratio_) return std::nullopt;
  phase_ = 0;
  // Comb section at the low rate.
  std::int64_t y = integ_.back();
  for (auto& prev : comb_) {
    const std::int64_t d =
        static_cast<std::int64_t>(static_cast<std::uint64_t>(y) - static_cast<std::uint64_t>(prev));
    prev = y;
    y = d;
  }
  return static_cast<double>(y) * lsb_ * inv_gain_;
}

std::size_t CicDecimator::push_block(std::span<const double> in, std::span<double> out) {
  std::size_t produced = 0;
  for (double x : in) {
    if (const auto y = push(x)) {
      assert(produced < out.size());
      out[produced++] = *y;
    }
  }
  return produced;
}

double CicDecimator::raw_gain() const {
  double g = 1.0;
  for (int i = 0; i < stages_; ++i) g *= static_cast<double>(ratio_);
  return g;
}

double CicDecimator::magnitude(double f, double fs) const {
  if (f <= 0.0) return 1.0;
  const double num = std::sin(kPi * f * ratio_ / fs);
  const double den = ratio_ * std::sin(kPi * f / fs);
  if (std::abs(den) < 1e-15) return 1.0;
  return std::pow(std::abs(num / den), stages_);
}

void CicDecimator::reset() {
  std::fill(integ_.begin(), integ_.end(), 0);
  std::fill(comb_.begin(), comb_.end(), 0);
  phase_ = 0;
}

}  // namespace ascp::dsp
