// cic.hpp — cascaded integrator-comb decimator.
//
// The demodulated rate signal lives below ~100 Hz but is produced at the
// 240 kHz DSP rate; a CIC stage is the canonical hardware-cheap way to
// decimate it before the sharper FIR clean-up filter. Modelled with wide
// integer accumulators exactly as the hardware would be built (CIC
// integrators rely on modular wrap-around arithmetic being exact).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/state_archive.hpp"

namespace ascp::dsp {

/// N-stage CIC decimator with decimation ratio R and differential delay 1.
/// push() accepts one input sample and yields an output sample every R
/// inputs. Gain R^N is normalized out at the output.
class CicDecimator {
 public:
  /// `stages` N (1..6 typical), `ratio` R >= 1, `input_bits` the quantization
  /// applied to the input (models the B_in-wide input register).
  CicDecimator(int stages, int ratio, int input_bits = 16, double full_scale = 1.0);

  /// Push one high-rate sample; returns the decimated sample when one
  /// completes, std::nullopt otherwise.
  std::optional<double> push(double x);

  /// Batched variant: pushes every element of `in`, appending each completed
  /// decimated sample to `out`. Returns the number of outputs produced.
  /// Bit-identical to per-sample push() — the integer datapath is exact.
  std::size_t push_block(std::span<const double> in, std::span<double> out);

  int stages() const { return stages_; }
  int ratio() const { return ratio_; }

  /// Inputs still to push before the next decimated output completes —
  /// how the engine sizes batches so block boundaries land on outputs.
  int ticks_until_output() const { return ratio_ - phase_; }

  /// DC gain before normalization: R^N.
  double raw_gain() const;

  /// Magnitude response at frequency f (input rate fs): |sin(pi f R/fs) /
  /// (R sin(pi f/fs))|^N.
  double magnitude(double f, double fs) const;

  void reset();

  void serialize_state(StateArchive& ar) {
    for (auto& v : integ_) ar.value(v);
    for (auto& v : comb_) ar.value(v);
    std::int32_t p = phase_;
    ar.value(p);
    phase_ = p;
  }

 private:
  int stages_;
  int ratio_;
  double lsb_;
  double inv_gain_;
  std::vector<std::int64_t> integ_;
  std::vector<std::int64_t> comb_;
  int phase_ = 0;
};

}  // namespace ascp::dsp
