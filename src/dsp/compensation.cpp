#include "dsp/compensation.hpp"

#include <cassert>
#include <cmath>
#include <vector>

namespace ascp::dsp {

namespace {
/// Least-squares quadratic fit y = c0 + c1 x + c2 x² via normal equations
/// (3×3 Gaussian elimination — small and self-contained).
std::array<double, 3> fit_quadratic(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size() && x.size() >= 3);
  double s[5] = {0, 0, 0, 0, 0};  // sums of x^0..x^4
  double t[3] = {0, 0, 0};        // sums of y·x^0..x^2
  for (std::size_t i = 0; i < x.size(); ++i) {
    double xp = 1.0;
    for (int p = 0; p <= 4; ++p) {
      s[p] += xp;
      if (p <= 2) t[p] += y[i] * xp;
      xp *= x[i];
    }
  }
  double a[3][4] = {{s[0], s[1], s[2], t[0]}, {s[1], s[2], s[3], t[1]}, {s[2], s[3], s[4], t[2]}};
  // Gaussian elimination with partial pivoting.
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    for (int c = 0; c < 4; ++c) std::swap(a[col][c], a[pivot][c]);
    assert(std::abs(a[col][col]) > 1e-12 && "singular normal equations");
    for (int r = 0; r < 3; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      for (int c = col; c < 4; ++c) a[r][c] -= f * a[col][c];
    }
  }
  return {a[0][3] / a[0][0], a[1][3] / a[1][1], a[2][3] / a[2][2]};
}
}  // namespace

double Compensation::offset_at(double temp_c) const {
  const double dt = temp_c - 25.0;
  return c_.offset[0] + dt * (c_.offset[1] + dt * c_.offset[2]);
}

double Compensation::scale_at(double temp_c) const {
  const double dt = temp_c - 25.0;
  return c_.s0 * (1.0 + dt * (c_.s1 + dt * c_.s2));
}

namespace {
/// Degree-adaptive fit: quadratic needs 3 points, linear 2, constant 1.
std::array<double, 3> fit_poly(std::span<const double> x, std::span<const double> y) {
  if (x.size() >= 3) return fit_quadratic(x, y);
  if (x.size() == 2) {
    const double slope = (y[1] - y[0]) / (x[1] - x[0]);
    return {y[0] - slope * x[0], slope, 0.0};
  }
  return {y.empty() ? 0.0 : y[0], 0.0, 0.0};
}
}  // namespace

CompensationCoeffs fit_compensation(std::span<const double> temps,
                                    std::span<const double> offsets,
                                    std::span<const double> gains,
                                    double target_sensitivity) {
  assert(temps.size() == offsets.size() && temps.size() == gains.size());
  CompensationCoeffs c;

  std::vector<double> dt(temps.size());
  for (std::size_t i = 0; i < temps.size(); ++i) dt[i] = temps[i] - 25.0;

  c.offset = fit_poly(dt, offsets);

  // scale(T) must equal target_sensitivity / gain(T). Fit the required scale
  // directly, then factor into s0·(1 + s1 dT + s2 dT²).
  std::vector<double> req(gains.size());
  for (std::size_t i = 0; i < gains.size(); ++i) {
    assert(std::abs(gains[i]) > 1e-12 && "zero calibration gain");
    req[i] = target_sensitivity / gains[i];
  }
  const auto sc = fit_poly(dt, req);
  c.s0 = sc[0];
  c.s1 = sc[0] != 0.0 ? sc[1] / sc[0] : 0.0;
  c.s2 = sc[0] != 0.0 ? sc[2] / sc[0] : 0.0;
  return c;
}

}  // namespace ascp::dsp
