// compensation.hpp — offset / sensitivity / temperature compensation block.
//
// The last hardwired stage of the sense chain (paper §4.1 lists
// "temperature/offset compensation" explicitly). It applies the calibration
// coefficients written by the trim procedure over JTAG/registers:
//
//   y = (x − offset(T)) · scale(T)
//
// where offset(T) and scale(T) are low-order polynomials in (T − T_ref).
#pragma once

#include <array>
#include <span>

namespace ascp::dsp {

/// Calibration coefficient set. Polynomials are in dT = T − 25 °C.
struct CompensationCoeffs {
  /// offset(T) = o0 + o1·dT + o2·dT²  [chain units]
  std::array<double, 3> offset{0.0, 0.0, 0.0};
  /// scale(T)  = s0 · (1 + s1·dT + s2·dT²)  [output units per chain unit]
  double s0 = 1.0;
  double s1 = 0.0;
  double s2 = 0.0;
};

/// Stateless compensation datapath; temperature is provided by the on-chip
/// temperature sensor channel each update.
class Compensation {
 public:
  Compensation() = default;
  explicit Compensation(const CompensationCoeffs& c) : c_(c) {}

  void set_coeffs(const CompensationCoeffs& c) { c_ = c; }
  const CompensationCoeffs& coeffs() const { return c_; }

  double offset_at(double temp_c) const;
  double scale_at(double temp_c) const;

  /// Apply compensation to one sample.
  double apply(double x, double temp_c) const {
    return (x - offset_at(temp_c)) * scale_at(temp_c);
  }

 private:
  CompensationCoeffs c_;
};

/// Fit compensation coefficients from calibration measurements:
/// `temps` [°C], `offsets` raw chain output at 0 rate per temperature, and
/// `gains` raw chain units per °/s per temperature. Produces coefficients
/// such that apply() yields 0 at zero rate and `target_sensitivity` per °/s
/// across the calibrated range (least-squares quadratic fits).
CompensationCoeffs fit_compensation(std::span<const double> temps,
                                    std::span<const double> offsets,
                                    std::span<const double> gains,
                                    double target_sensitivity);

}  // namespace ascp::dsp
