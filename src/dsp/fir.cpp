#include "dsp/fir.hpp"

#include <cassert>
#include <cmath>
#include <complex>

#include "common/math.hpp"

namespace ascp::dsp {

FirFilter::FirFilter(std::vector<double> taps) : taps_(std::move(taps)) {
  assert(!taps_.empty());
  delay_.assign(taps_.size(), 0.0);
}

double FirFilter::process(double x) {
  delay_[head_] = x;
  double acc = 0.0;
  std::size_t idx = head_;
  for (double tap : taps_) {
    acc += tap * delay_[idx];
    idx = (idx == 0) ? delay_.size() - 1 : idx - 1;
  }
  head_ = (head_ + 1) % delay_.size();
  return acc;
}

void FirFilter::process_block(std::span<const double> in, std::span<double> out) {
  assert(in.size() == out.size());
  // Same per-sample MAC ordering as process(); hoisting head_ and the size
  // into locals is what the compiler needs to keep the ring index in
  // registers across the block.
  const std::size_t n = delay_.size();
  std::size_t head = head_;
  for (std::size_t k = 0; k < in.size(); ++k) {
    delay_[head] = in[k];
    double acc = 0.0;
    std::size_t idx = head;
    for (double tap : taps_) {
      acc += tap * delay_[idx];
      idx = (idx == 0) ? n - 1 : idx - 1;
    }
    head = (head + 1) % n;
    out[k] = acc;
  }
  head_ = head;
}

void FirFilter::reset() {
  std::fill(delay_.begin(), delay_.end(), 0.0);
  head_ = 0;
}

FirFilterFx::FirFilterFx(std::vector<double> taps, int coeff_bits, int data_bits, int acc_bits,
                         double full_scale)
    : taps_q_(std::move(taps)),
      data_q_(data_bits, full_scale),
      acc_q_(acc_bits, full_scale * 8.0) {
  assert(!taps_q_.empty());
  // Coefficients live in their own registers with unit full-scale (taps of a
  // unity-gain low-pass are < 1 in magnitude; larger taps saturate, which is
  // exactly the failure a designer would catch during exploration).
  const Quantizer cq(coeff_bits, 1.0);
  for (double& t : taps_q_) t = cq.quantize(t);
  delay_.assign(taps_q_.size(), 0.0);
}

double FirFilterFx::process(double x) {
  delay_[head_] = data_q_.quantize(x);
  double acc = 0.0;
  std::size_t idx = head_;
  for (double tap : taps_q_) {
    acc = acc_q_.quantize(acc + tap * delay_[idx]);
    idx = (idx == 0) ? delay_.size() - 1 : idx - 1;
  }
  head_ = (head_ + 1) % delay_.size();
  return data_q_.quantize(acc);
}

void FirFilterFx::reset() {
  std::fill(delay_.begin(), delay_.end(), 0.0);
  head_ = 0;
}

std::vector<double> design_lowpass(std::size_t taps, double fc, double fs) {
  assert(taps >= 3 && fc > 0.0 && fc < fs / 2.0);
  std::vector<double> h(taps);
  const auto w = hamming_window(taps);
  const double norm_fc = fc / fs;  // cycles per sample
  const double centre = static_cast<double>(taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t n = 0; n < taps; ++n) {
    const double t = static_cast<double>(n) - centre;
    h[n] = 2.0 * norm_fc * sinc(2.0 * norm_fc * t) * w[n];
    sum += h[n];
  }
  // Normalize to exactly unity DC gain — the chain's scale calibration
  // assumes low-pass stages are transparent at DC.
  for (double& v : h) v /= sum;
  return h;
}

std::vector<double> design_bandpass(std::size_t taps, double f1, double f2, double fs) {
  assert(taps >= 3 && f1 > 0.0 && f2 > f1 && f2 < fs / 2.0);
  std::vector<double> h(taps);
  const auto w = hamming_window(taps);
  const double n1 = f1 / fs, n2 = f2 / fs;
  const double centre = static_cast<double>(taps - 1) / 2.0;
  for (std::size_t n = 0; n < taps; ++n) {
    const double t = static_cast<double>(n) - centre;
    h[n] = (2.0 * n2 * sinc(2.0 * n2 * t) - 2.0 * n1 * sinc(2.0 * n1 * t)) * w[n];
  }
  // Normalize to unity gain at the geometric band centre.
  const double fc = std::sqrt(f1 * f2);
  const double g = fir_magnitude(h, fc, fs);
  if (g > 1e-12)
    for (double& v : h) v /= g;
  return h;
}

std::vector<double> design_highpass(std::size_t taps, double fc, double fs) {
  assert(taps % 2 == 1 && "high-pass needs odd length (type-I)");
  auto h = design_lowpass(taps, fc, fs);
  // Spectral inversion: delta[centre] - h_lp.
  for (double& v : h) v = -v;
  h[(taps - 1) / 2] += 1.0;
  return h;
}

double fir_magnitude(std::span<const double> taps, double f, double fs) {
  const double w = kTwoPi * f / fs;
  std::complex<double> acc(0.0, 0.0);
  for (std::size_t n = 0; n < taps.size(); ++n)
    acc += taps[n] * std::complex<double>(std::cos(w * static_cast<double>(n)),
                                          -std::sin(w * static_cast<double>(n)));
  return std::abs(acc);
}

}  // namespace ascp::dsp
