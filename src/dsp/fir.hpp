// fir.hpp — FIR filter IP and window-method designer.
//
// The DSP block's IP portfolio (paper §3: "FIR/IIR filters, modulator,
// demodulator, etc.") includes a generic transversal FIR. Two execution
// models are provided: a double-precision reference (the "MATLAB" behavioural
// level) and a quantized datapath (the "RTL" level) where both coefficients
// and data path are held in runtime-configurable fixed-point registers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/quantizer.hpp"
#include "common/state_archive.hpp"

namespace ascp::dsp {

/// Double-precision transversal FIR filter (direct form).
class FirFilter {
 public:
  explicit FirFilter(std::vector<double> taps);

  double process(double x);
  /// Batched variant: `out[k]` is the response to `in[k]`, bit-identical to
  /// calling process() per sample. `in` and `out` may alias element-wise.
  void process_block(std::span<const double> in, std::span<double> out);
  void reset();

  std::size_t order() const { return taps_.size() - 1; }
  std::span<const double> taps() const { return taps_; }

  /// Group delay in samples (linear-phase symmetric designs): (N-1)/2.
  double group_delay() const { return static_cast<double>(taps_.size() - 1) / 2.0; }

  void serialize_state(StateArchive& ar) {
    for (auto& v : delay_) ar.value(v);
    std::uint64_t h = head_;
    ar.value(h);
    head_ = static_cast<std::size_t>(h);
  }

 private:
  std::vector<double> taps_;
  std::vector<double> delay_;
  std::size_t head_ = 0;
};

/// Fixed-point FIR: coefficients quantized once at construction, data path
/// and accumulator quantized per sample. Models a synthesized MAC datapath.
class FirFilterFx {
 public:
  /// `coeff_bits` coefficient register width, `data_bits` input/output width,
  /// `acc_bits` accumulator width; full_scale maps the analog ±FS range.
  FirFilterFx(std::vector<double> taps, int coeff_bits, int data_bits, int acc_bits,
              double full_scale = 1.0);

  double process(double x);
  void reset();

  std::size_t order() const { return taps_q_.size() - 1; }

  void serialize_state(StateArchive& ar) {
    for (auto& v : delay_) ar.value(v);
    std::uint64_t h = head_;
    ar.value(h);
    head_ = static_cast<std::size_t>(h);
  }

 private:
  std::vector<double> taps_q_;
  std::vector<double> delay_;
  std::size_t head_ = 0;
  Quantizer data_q_;
  Quantizer acc_q_;
};

/// Window-method low-pass FIR design: cutoff fc (Hz) at sample rate fs,
/// length `taps` (odd lengths give a type-I linear-phase filter).
std::vector<double> design_lowpass(std::size_t taps, double fc, double fs);

/// Window-method band-pass design between f1 and f2.
std::vector<double> design_bandpass(std::size_t taps, double f1, double f2, double fs);

/// High-pass design with cutoff fc (spectral inversion of the low-pass).
std::vector<double> design_highpass(std::size_t taps, double fc, double fs);

/// Magnitude response |H(e^{j 2 pi f / fs})| of a tap set.
double fir_magnitude(std::span<const double> taps, double f, double fs);

}  // namespace ascp::dsp
