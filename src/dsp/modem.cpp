#include "dsp/modem.hpp"

namespace ascp::dsp {

IqDemodulator::IqDemodulator(double fs, double bw)
    : lpf_i_(design_biquad_lowpass(bw, 0.707, fs)),
      lpf_q_(design_biquad_lowpass(bw, 0.707, fs)) {}

Iq IqDemodulator::step(double x, double carrier_i, double carrier_q) {
  // Factor 2 restores the baseband amplitude lost in the mixer product
  // (sin·sin = ½(1 − cos 2ω)).
  out_.i = lpf_i_.process(2.0 * x * carrier_i);
  out_.q = lpf_q_.process(2.0 * x * carrier_q);
  return out_;
}

void IqDemodulator::reset() {
  lpf_i_.reset();
  lpf_q_.reset();
  out_ = {};
}

}  // namespace ascp::dsp
