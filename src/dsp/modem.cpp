#include "dsp/modem.hpp"

namespace ascp::dsp {

IqDemodulator::IqDemodulator(double fs, double bw)
    : lpf_i_(design_biquad_lowpass(bw, 0.707, fs)),
      lpf_q_(design_biquad_lowpass(bw, 0.707, fs)) {}

Iq IqDemodulator::step(double x, double carrier_i, double carrier_q) {
  // Factor 2 restores the baseband amplitude lost in the mixer product
  // (sin·sin = ½(1 − cos 2ω)).
  out_.i = lpf_i_.process(2.0 * x * carrier_i);
  out_.q = lpf_q_.process(2.0 * x * carrier_q);
  return out_;
}

void IqDemodulator::step_block(std::span<const double> x, std::span<const double> carrier_i,
                               std::span<const double> carrier_q, std::span<double> out_i,
                               std::span<double> out_q) {
  const std::size_t n = x.size();
  for (std::size_t k = 0; k < n; ++k) {
    out_i[k] = 2.0 * x[k] * carrier_i[k];
    out_q[k] = 2.0 * x[k] * carrier_q[k];
  }
  lpf_i_.process_block(out_i.first(n));
  lpf_q_.process_block(out_q.first(n));
  if (n > 0) out_ = Iq{out_i[n - 1], out_q[n - 1]};
}

void IqDemodulator::reset() {
  lpf_i_.reset();
  lpf_q_.reset();
  out_ = {};
}

}  // namespace ascp::dsp
