// modem.hpp — coherent modulator / demodulator IPs.
//
// The sense chain (paper §4.1: "a chain including demodulators, filters,
// temperature/offset compensation and modulators for secondary drive and
// rate sensing") detects the Coriolis signal as an amplitude modulation of
// the drive carrier. The demodulator mixes with the PLL's phase-coherent
// carriers and low-passes the products; the modulator re-impresses a
// baseband correction onto the carrier for closed-loop force feedback.
#pragma once

#include <span>

#include "dsp/biquad.hpp"

namespace ascp::dsp {

/// I/Q pair: in-phase (rate) and quadrature (mechanical quadrature error).
struct Iq {
  double i = 0.0;
  double q = 0.0;
};

/// Coherent quadrature demodulator: two mixers and matched 2nd-order
/// low-pass filters. The carrier inputs come from the drive NCO so the
/// detection is phase-locked to the resonator.
class IqDemodulator {
 public:
  /// `fs` sample rate, `bw` post-mixer low-pass corner [Hz].
  IqDemodulator(double fs, double bw);

  /// One sample: signal plus the in-phase/quadrature carrier pair.
  Iq step(double x, double carrier_i, double carrier_q);

  /// Batched variant: demodulates x[k] against (carrier_i[k], carrier_q[k]),
  /// writing the baseband pair into out_i/out_q. Bit-identical to per-sample
  /// step(): the mixer products and each low-pass recurrence see the same
  /// operands in the same order; output() afterwards reports the last sample.
  void step_block(std::span<const double> x, std::span<const double> carrier_i,
                  std::span<const double> carrier_q, std::span<double> out_i,
                  std::span<double> out_q);

  Iq output() const { return out_; }
  void reset();

  void serialize_state(StateArchive& ar) {
    lpf_i_.serialize_state(ar);
    lpf_q_.serialize_state(ar);
    ar.value(out_.i);
    ar.value(out_.q);
  }

 private:
  Biquad lpf_i_;
  Biquad lpf_q_;
  Iq out_;
};

/// Coherent modulator: y = (i · carrier_i + q · carrier_q) · scale.
/// Used for secondary (force-feedback) drive synthesis.
class IqModulator {
 public:
  explicit IqModulator(double scale = 1.0) : scale_(scale) {}

  double step(Iq baseband, double carrier_i, double carrier_q) const {
    return scale_ * (baseband.i * carrier_i + baseband.q * carrier_q);
  }

  void set_scale(double s) { scale_ = s; }
  double scale() const { return scale_; }

 private:
  double scale_;
};

}  // namespace ascp::dsp
