#include "dsp/nco.hpp"

#include <cassert>
#include <cmath>

#include "common/math.hpp"

namespace ascp::dsp {

namespace {
/// Shared quarter-symmetric sine table, built once. A hardware DDS stores a
/// quarter wave; here we store the full wave for clarity — behaviourally
/// identical, and the table is shared by every NCO instance.
const std::array<double, 1 << 10>& sine_table() {
  static const auto table = [] {
    std::array<double, 1 << 10> t{};
    for (std::size_t i = 0; i < t.size(); ++i)
      t[i] = std::sin(kTwoPi * static_cast<double>(i) / static_cast<double>(t.size()));
    return t;
  }();
  return table;
}
}  // namespace

Nco::Nco(double fs, double f0) : fs_(fs) {
  assert(fs > 0.0);
  set_frequency(f0);
}

double Nco::lut_lookup(std::uint32_t acc) const {
  const auto& lut = sine_table();
  // Top kLutBits address the table; the residual phase linearly interpolates
  // between entries (matching a DDS with phase dithering / interpolation).
  const std::uint32_t idx = acc >> (32 - kLutBits);
  const double frac =
      static_cast<double>(acc & ((1u << (32 - kLutBits)) - 1)) / static_cast<double>(1u << (32 - kLutBits));
  const double a = lut[idx];
  const double b = lut[(idx + 1) & (kLutSize - 1)];
  return a + frac * (b - a);
}

double Nco::step() {
  acc_ += fcw_;
  sin_ = lut_lookup(acc_);
  cos_ = lut_lookup(acc_ + (1u << 30));  // +90 degrees
  return sin_;
}

void Nco::step_block(std::span<double> sin_out, std::span<double> cos_out) {
  assert(sin_out.size() == cos_out.size());
  std::uint32_t acc = acc_;
  const std::uint32_t fcw = fcw_;
  for (std::size_t k = 0; k < sin_out.size(); ++k) {
    acc += fcw;
    sin_out[k] = lut_lookup(acc);
    cos_out[k] = lut_lookup(acc + (1u << 30));
  }
  acc_ = acc;
  if (!sin_out.empty()) {
    sin_ = sin_out.back();
    cos_ = cos_out.back();
  }
}

double Nco::frequency() const {
  return static_cast<double>(fcw_) * fs_ / 4294967296.0;
}

void Nco::set_frequency(double f) {
  if (f < 0.0) f = 0.0;
  const double nyquist = fs_ * 0.5;
  if (f >= nyquist) f = nyquist * (1.0 - 1e-9);
  fcw_ = static_cast<std::uint32_t>(f / fs_ * 4294967296.0);
}

double Nco::phase() const {
  return static_cast<double>(acc_) / 4294967296.0 * kTwoPi;
}

double Nco::resolution() const { return fs_ / 4294967296.0; }

void Nco::advance_phase(double radians) {
  const double turns = radians / kTwoPi;
  acc_ += static_cast<std::uint32_t>(
      static_cast<std::int64_t>(turns * 4294967296.0));
}

}  // namespace ascp::dsp
