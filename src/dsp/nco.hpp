// nco.hpp — numerically controlled oscillator (phase accumulator + sine LUT).
//
// The NCO is the heart of the drive loop: the PLL steers its frequency word
// so the generated carrier tracks the MEMS resonance, and the demodulators
// reuse its phase for coherent detection. Modelled as the standard hardware
// structure — a W-bit phase accumulator addressing a quarter-wave sine table.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/state_archive.hpp"

namespace ascp::dsp {

/// Phase-accumulator NCO with a 1024-entry sine lookup table and 32-bit
/// phase accumulator (the dimensioning typical of a small hardwired DDS IP).
class Nco {
 public:
  /// `fs` DSP sample rate [Hz], `f0` initial output frequency [Hz].
  Nco(double fs, double f0);

  /// Advance one sample; returns sin(phase). Call cos()/sin_out() afterwards
  /// for the quadrature pair belonging to the same sample.
  double step();

  /// Batched variant at a fixed frequency word: fills the quadrature pair
  /// for the next sin_out.size() samples. Bit-identical to repeated step();
  /// the accumulator wrap is exact integer arithmetic.
  void step_block(std::span<double> sin_out, std::span<double> cos_out);

  /// Outputs of the current sample (valid after step()).
  double sine() const { return sin_; }
  double cosine() const { return cos_; }

  /// Current frequency [Hz].
  double frequency() const;

  /// Retune; frequency clamps to [0, fs/2).
  void set_frequency(double f);

  /// Frequency adjustment in Hz (the PLL loop-filter output path).
  void adjust_frequency(double df) { set_frequency(frequency() + df); }

  /// Current phase in radians [0, 2pi).
  double phase() const;

  void reset_phase() { acc_ = 0; }

  /// Fault injection: instantaneous phase jump [radians] — an SEU in the
  /// phase-accumulator flops. The PLL must re-acquire from the new phase.
  void advance_phase(double radians);

  /// Tuning resolution [Hz]: fs / 2^32.
  double resolution() const;

  void serialize_state(StateArchive& ar) {
    ar.value(acc_);
    ar.value(fcw_);
    ar.value(sin_);
    ar.value(cos_);
  }

 private:
  static constexpr int kLutBits = 10;
  static constexpr std::size_t kLutSize = std::size_t{1} << kLutBits;

  double lut_lookup(std::uint32_t acc) const;

  double fs_;
  std::uint32_t acc_ = 0;
  std::uint32_t fcw_ = 0;  ///< frequency control word
  double sin_ = 0.0, cos_ = 1.0;
};

}  // namespace ascp::dsp
