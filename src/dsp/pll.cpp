#include "dsp/pll.hpp"

#include <algorithm>
#include <cmath>

namespace ascp::dsp {

Pll::Pll(const PllConfig& cfg)
    : cfg_(cfg),
      nco_(cfg.fs, cfg.f_center),
      pd_lpf_(design_biquad_lowpass(cfg.pd_lpf_hz, 0.707, cfg.fs)),
      q_lpf_(design_biquad_lowpass(cfg.pd_lpf_hz, 0.707, cfg.fs)) {}

double Pll::step(double pickoff) {
  const double drive = nco_.step();

  // Quadrature correlators. At resonance the resonator responds −90° from
  // the drive, so the in-phase correlation (× sin) is the phase error and
  // the quadrature correlation (× cos) carries the amplitude.
  const double i_raw = pickoff * nco_.sine();
  const double q_raw = pickoff * nco_.cosine();
  const double i_f = pd_lpf_.process(i_raw);
  const double q_f = q_lpf_.process(q_raw);

  amplitude_ = 2.0 * std::hypot(i_f, q_f);

  // Normalize the PD by the measured amplitude so loop gain is independent
  // of the AGC settling point; hold the PD at zero when there is no signal.
  const double denom = std::max(amplitude_ / 2.0, 1e-4);
  pd_filtered_ = (amplitude_ > 1e-3) ? (i_f / denom) : 0.0;

  // PI loop filter in the frequency domain: Δf = kp·e + ∫ ki·e dt.
  const double dt = 1.0 / cfg_.fs;
  integ_ += cfg_.ki * pd_filtered_ * dt;
  integ_ = std::clamp(integ_, cfg_.f_min - cfg_.f_center, cfg_.f_max - cfg_.f_center);
  double f = cfg_.f_center + integ_ + cfg_.kp * pd_filtered_;
  f = std::clamp(f, cfg_.f_min, cfg_.f_max);
  nco_.set_frequency(f);

  // Lock detector: sustained small normalized phase error with real signal.
  if (amplitude_ > 1e-3 && std::abs(pd_filtered_) < cfg_.lock_threshold) {
    if (lock_counter_ < cfg_.lock_count) ++lock_counter_;
  } else {
    lock_counter_ = 0;
  }
  return drive;
}

void Pll::reset() {
  nco_.set_frequency(cfg_.f_center);
  nco_.reset_phase();
  pd_lpf_.reset();
  q_lpf_.reset();
  pd_filtered_ = 0.0;
  integ_ = 0.0;
  amplitude_ = 0.0;
  lock_counter_ = 0;
}

}  // namespace ascp::dsp
