// pll.hpp — digital phase-locked loop for primary-mode resonance tracking.
//
// Paper §4.1: "Such sensors basically require a PLL (for primary drive),
// which has to keep the ring in resonance (at a frequency of approximately
// 15 KHz)". The loop is the classic multiplying-PD type-II structure:
//
//   pickoff ──► mixer (× NCO cos) ──► LPF ──► PI loop filter ──► NCO Δf
//
// At resonance the resonator contributes exactly −90° of phase, so driving
// with the NCO sine and correlating the pickoff against the NCO sine
// (quadrature of the −90°-shifted response) yields a zero-crossing phase
// detector with sign discrimination.
#pragma once

#include "dsp/biquad.hpp"
#include "dsp/nco.hpp"

namespace ascp::dsp {

/// Loop configuration. Defaults tuned for a 15 kHz resonator sampled at
/// 240 kHz with a ~100 Hz loop bandwidth — the paper's operating point.
struct PllConfig {
  double fs = 240e3;          ///< sample rate [Hz]
  double f_center = 15e3;     ///< NCO start frequency [Hz]
  double f_min = 10e3;        ///< lower tuning rail [Hz]
  double f_max = 20e3;        ///< upper tuning rail [Hz]
  double kp = 40.0;           ///< proportional gain [Hz per unit PD output]
  double ki = 4000.0;         ///< integral gain [Hz/s per unit PD output]
  double pd_lpf_hz = 400.0;   ///< phase-detector post-mixer low-pass corner
  double lock_threshold = 0.02;  ///< |PD| level below which lock is declared
  int lock_count = 2000;      ///< consecutive samples under threshold for lock
};

/// Type-II digital PLL. Call step(pickoff) once per DSP sample; use the NCO
/// outputs to drive the resonator and demodulate the sense channel.
class Pll {
 public:
  explicit Pll(const PllConfig& cfg);

  /// One sample: updates the NCO and loop state from the pickoff sample.
  /// Returns the current NCO sine (the drive carrier).
  double step(double pickoff);

  const Nco& nco() const { return nco_; }
  Nco& nco() { return nco_; }

  /// Filtered phase-detector output (the "phase error" trace of Fig. 5).
  double phase_error() const { return pd_filtered_; }

  /// Loop-filter integrator state = frequency offset from centre [Hz]
  /// (the "VCO control" trace of Fig. 5).
  double vco_control() const { return integ_; }

  double frequency() const { return nco_.frequency(); }

  /// Measured pickoff carrier amplitude (the AGC's detector input).
  double amplitude() const { return amplitude_; }

  /// Lock detector: PD output persistently under threshold.
  bool locked() const { return lock_counter_ >= cfg_.lock_count; }

  void reset();

  void serialize_state(StateArchive& ar) {
    nco_.serialize_state(ar);
    pd_lpf_.serialize_state(ar);
    q_lpf_.serialize_state(ar);
    ar.value(pd_filtered_);
    ar.value(integ_);
    ar.value(amplitude_);
    std::int32_t lc = lock_counter_;
    ar.value(lc);
    lock_counter_ = lc;
  }

 private:
  PllConfig cfg_;
  Nco nco_;
  Biquad pd_lpf_;
  Biquad q_lpf_;
  double pd_filtered_ = 0.0;
  double integ_ = 0.0;
  double amplitude_ = 0.0;
  int lock_counter_ = 0;
};

}  // namespace ascp::dsp
