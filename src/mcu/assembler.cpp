#include "mcu/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <optional>

namespace ascp::mcu {

namespace {

std::string upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

/// Case-fold an operand without touching character literals ('w' stays 'w').
std::string upper_outside_quotes(std::string_view s) {
  std::string out(s);
  bool in_char = false;
  for (char& c : out) {
    if (c == '\'') in_char = !in_char;
    if (!in_char) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string trim(std::string_view s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string_view::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return std::string(s.substr(begin, end - begin + 1));
}

bool is_reg(const std::string& op, int& n) {
  if (op.size() == 2 && op[0] == 'R' && op[1] >= '0' && op[1] <= '7') {
    n = op[1] - '0';
    return true;
  }
  return false;
}

bool is_ind(const std::string& op, int& n) {
  if (op.size() == 3 && op[0] == '@' && op[1] == 'R' && (op[2] == '0' || op[2] == '1')) {
    n = op[2] - '0';
    return true;
  }
  return false;
}

bool is_imm(const std::string& op) { return !op.empty() && op[0] == '#'; }

}  // namespace

Assembler::Assembler() {
  // Standard SFR byte symbols.
  const std::pair<const char*, std::uint16_t> sfrs[] = {
      {"P0", 0x80},  {"SP", 0x81},   {"DPL", 0x82},  {"DPH", 0x83}, {"PCON", 0x87},
      {"TCON", 0x88}, {"TMOD", 0x89}, {"TL0", 0x8A}, {"TL1", 0x8B}, {"TH0", 0x8C},
      {"TH1", 0x8D}, {"P1", 0x90},   {"SCON", 0x98}, {"SBUF", 0x99}, {"P2", 0xA0},
      {"IE", 0xA8},  {"P3", 0xB0},   {"IP", 0xB8},   {"PSW", 0xD0}, {"ACC", 0xE0},
      {"B", 0xF0}};
  for (const auto& [name, value] : sfrs) symbols_[name] = value;

  // Standard bit symbols.
  const std::pair<const char*, std::uint8_t> bits[] = {
      {"IT0", 0x88}, {"IE0", 0x89}, {"IT1", 0x8A}, {"IE1", 0x8B},
      {"TR0", 0x8C}, {"TF0", 0x8D}, {"TR1", 0x8E}, {"TF1", 0x8F},
      {"RI", 0x98},  {"TI", 0x99},  {"RB8", 0x9A}, {"TB8", 0x9B},
      {"REN", 0x9C}, {"SM2", 0x9D}, {"SM1", 0x9E}, {"SM0", 0x9F},
      {"EX0", 0xA8}, {"ET0", 0xA9}, {"EX1", 0xAA}, {"ET1", 0xAB},
      {"ES", 0xAC},  {"EA", 0xAF},
      {"CY", 0xD7},  {"AC", 0xD6},  {"F0", 0xD5},  {"RS1", 0xD4},
      {"RS0", 0xD3}, {"OV", 0xD2}};
  for (const auto& [name, value] : bits) bit_symbols_[name] = value;
}

void Assembler::define(const std::string& name, std::uint16_t value) {
  symbols_[upper(name)] = value;
}

std::vector<Assembler::Line> Assembler::parse(std::string_view source) {
  std::vector<Line> lines;
  int number = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const auto eol = source.find('\n', pos);
    std::string raw(source.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                                     : eol - pos));
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    ++number;

    // Strip comments (respecting character literals like #';'), keeping the
    // comment text so ;@loop-… annotations survive parsing.
    std::string text, comment;
    bool in_char = false;
    std::size_t cut = raw.size();
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      if (c == '\'') in_char = !in_char;
      if (c == ';' && !in_char) {
        cut = i;
        break;
      }
      text += c;
    }
    if (cut < raw.size()) comment = trim(raw.substr(cut + 1));
    text = trim(text);

    Line line;
    line.number = number;

    // Loop annotations: ";@loop-bound N" / ";@loop-wait". Anything else
    // beginning with "@loop-" is a typo the analyzer must not silently skip.
    // A second ';' ends the annotation and starts an ordinary comment.
    if (const auto annot_end = comment.find(';'); annot_end != std::string::npos)
      if (comment.rfind("@loop-", 0) == 0) comment = trim(comment.substr(0, annot_end));
    if (comment.rfind("@loop-", 0) == 0) {
      if (comment.rfind("@loop-wait", 0) == 0 &&
          trim(comment.substr(10)).empty()) {
        line.annot = 2;
      } else if (comment.rfind("@loop-bound", 0) == 0) {
        const std::string arg = trim(comment.substr(11));
        char* end = nullptr;
        const long n = std::strtol(arg.c_str(), &end, 10);
        if (arg.empty() || end == nullptr || *end != '\0' || n < 1)
          throw AsmError(number,
                         "malformed ;@loop-bound annotation: expected a positive "
                         "iteration count, got '" + arg + "'");
        line.annot = 1;
        line.annot_bound = n;
      } else {
        throw AsmError(number, "unknown loop annotation ';" + comment +
                                   "' (expected ;@loop-bound N or ;@loop-wait)");
      }
    }

    if (text.empty()) {
      if (line.annot != 0) lines.push_back(line);  // binds to the next insn
      continue;
    }

    // Labels (several may share one line: "ok: done: SJMP done").
    for (;;) {
      const auto colon = text.find(':');
      if (colon == std::string::npos) break;
      const std::string head = trim(text.substr(0, colon));
      // Only treat as a label if the head is a bare identifier.
      const bool ident = !head.empty() && std::all_of(head.begin(), head.end(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
      });
      if (!ident || std::isdigit(static_cast<unsigned char>(head[0]))) break;
      if (!line.label.empty()) {
        // Emit the previous label as its own empty line so both resolve.
        Line extra;
        extra.number = number;
        extra.label = line.label;
        lines.push_back(extra);
      }
      line.label = upper(head);
      text = trim(text.substr(colon + 1));
    }

    if (!text.empty()) {
      const auto space = text.find_first_of(" \t");
      line.mnemonic = upper(trim(text.substr(0, space)));
      if (space != std::string::npos) {
        std::string rest = trim(text.substr(space));
        // EQU appears after the symbol name: "FOO EQU 5".
        const std::string rest_u = upper(rest);
        if (rest_u.rfind("EQU ", 0) == 0 || rest_u == "EQU") {
          line.label = line.mnemonic;  // the "mnemonic" was actually the name
          line.mnemonic = "EQU";
          rest = trim(rest.substr(3));
        }
        // Split operands on commas (respecting char literals).
        std::string cur;
        bool in_char2 = false;
        for (char c : rest) {
          if (c == '\'') in_char2 = !in_char2;
          if (c == ',' && !in_char2) {
            line.operands.push_back(upper_outside_quotes(trim(cur)));
            cur.clear();
          } else {
            cur += c;
          }
        }
        if (!trim(cur).empty()) line.operands.push_back(upper_outside_quotes(trim(cur)));
      }
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

std::uint16_t Assembler::eval(const std::string& expr, int line) const {
  // Sum of +/- separated terms; each term is a literal or symbol.
  std::size_t i = 0;
  long total = 0;
  int sign = 1;
  bool any = false;

  // Strict literal parse: the whole body must be consumed, so "12Q4" or
  // "0x12G" is a diagnostic instead of a silently truncated value.
  auto parse_literal = [&](const std::string& digits, int base,
                           const std::string& term) -> long {
    std::size_t used = 0;
    long v = 0;
    try {
      v = std::stol(digits, &used, base);
    } catch (const std::exception&) {
      throw AsmError(line, "malformed numeric literal '" + term + "'");
    }
    if (used != digits.size())
      throw AsmError(line, "malformed numeric literal '" + term + "' (stray '" +
                               digits.substr(used) + "')");
    return v;
  };

  auto parse_term = [&](std::size_t& idx) -> long {
    std::string term;
    while (idx < expr.size() && expr[idx] != '+' && expr[idx] != '-') term += expr[idx++];
    term = trim(term);
    if (term.empty()) throw AsmError(line, "empty term in expression '" + expr + "'");
    // Character literal.
    if (term.size() == 3 && term.front() == '\'' && term.back() == '\'')
      return static_cast<unsigned char>(term[1]);
    // Dollar = current address is handled by the caller (not supported here).
    // Hex 0x…
    if (term.size() >= 2 && term[0] == '0' && term[1] == 'X')
      return parse_literal(term.substr(2), 16, term);
    // Suffix forms: …H hex, …B binary (must start with a digit).
    if (std::isdigit(static_cast<unsigned char>(term[0]))) {
      if (term.back() == 'H') return parse_literal(term.substr(0, term.size() - 1), 16, term);
      if (term.back() == 'B' && term.find_first_not_of("01B") == std::string::npos)
        return parse_literal(term.substr(0, term.size() - 1), 2, term);
      return parse_literal(term, 10, term);
    }
    const auto it = symbols_.find(term);
    if (it == symbols_.end())
      throw AsmError(line, "undefined symbol '" + term + "' (no matching label, EQU or define)");
    return it->second;
  };

  while (i < expr.size()) {
    if (expr[i] == '+') {
      sign = 1;
      ++i;
      continue;
    }
    if (expr[i] == '-') {
      sign = -1;
      ++i;
      continue;
    }
    total += sign * parse_term(i);
    sign = 1;
    any = true;
  }
  if (!any) throw AsmError(line, "empty expression");
  return static_cast<std::uint16_t>(total & 0xFFFF);
}

std::uint8_t Assembler::eval8(const std::string& expr, int line) const {
  return static_cast<std::uint8_t>(eval(expr, line) & 0xFF);
}

std::uint8_t Assembler::eval_bit(const std::string& expr, int line) const {
  const auto it = bit_symbols_.find(expr);
  if (it != bit_symbols_.end()) return it->second;
  // Dotted syntax: BYTE.N
  const auto dot = expr.rfind('.');
  if (dot != std::string::npos) {
    const std::uint16_t byte = eval(expr.substr(0, dot), line);
    const std::string bitstr = expr.substr(dot + 1);
    if (bitstr.empty() || bitstr.find_first_not_of("0123456789") != std::string::npos)
      throw AsmError(line, "malformed bit index in '" + expr + "'");
    const int bit = bitstr.size() == 1 ? bitstr[0] - '0' : 8;  // multi-digit > 7
    if (bit > 7) throw AsmError(line, "bit index out of range in '" + expr + "'");
    if (byte >= 0x80) {
      if (byte % 8 != 0) throw AsmError(line, "SFR not bit-addressable: '" + expr + "'");
      return static_cast<std::uint8_t>(byte + bit);
    }
    if (byte < 0x20 || byte > 0x2F)
      throw AsmError(line, "iram byte not bit-addressable: '" + expr + "'");
    return static_cast<std::uint8_t>((byte - 0x20) * 8 + bit);
  }
  return static_cast<std::uint8_t>(eval(expr, line) & 0xFF);
}

int Assembler::instruction_size(const Line& l) const {
  const std::string& m = l.mnemonic;
  const auto& ops = l.operands;
  int n = 0;

  auto op_is = [&](std::size_t i, const char* s) { return i < ops.size() && ops[i] == s; };

  if (m == "NOP" || m == "RET" || m == "RETI") return 1;
  if (m == "AJMP" || m == "ACALL") return 2;
  if (m == "LJMP" || m == "LCALL") return 3;
  if (m == "SJMP") return 2;
  if (m == "JMP") return 1;  // JMP @A+DPTR
  if (m == "JC" || m == "JNC" || m == "JZ" || m == "JNZ") return 2;
  if (m == "JB" || m == "JNB" || m == "JBC") return 3;
  if (m == "RR" || m == "RRC" || m == "RL" || m == "RLC" || m == "SWAP" || m == "DA") return 1;
  if (m == "MUL" || m == "DIV") return 1;
  if (m == "XCHD") return 1;
  if (m == "INC" || m == "DEC") {
    if (op_is(0, "A") || op_is(0, "DPTR")) return 1;
    if (!ops.empty() && (is_reg(ops[0], n) || is_ind(ops[0], n))) return 1;
    return 2;  // direct
  }
  if (m == "ADD" || m == "ADDC" || m == "SUBB") {
    // ADD A,src
    if (ops.size() == 2 && (is_reg(ops[1], n) || is_ind(ops[1], n))) return 1;
    return 2;  // #imm or direct
  }
  if (m == "ORL" || m == "ANL" || m == "XRL") {
    if (ops.size() == 2 && ops[0] == "A") {
      if (is_reg(ops[1], n) || is_ind(ops[1], n)) return 1;
      return 2;
    }
    if (ops.size() == 2 && ops[0] == "C") return 2;  // ORL/ANL C,bit
    // dir,A = 2 bytes; dir,#imm = 3 bytes
    if (ops.size() == 2 && ops[1] == "A") return 2;
    return 3;
  }
  if (m == "MOV") {
    if (ops.size() != 2) throw AsmError(l.number, "MOV needs two operands");
    const std::string& d = ops[0];
    const std::string& s = ops[1];
    if (d == "DPTR") return 3;
    if (d == "C" || s == "C") return 2;  // MOV C,bit / MOV bit,C
    if (d == "A") {
      if (is_reg(s, n) || is_ind(s, n)) return 1;
      return 2;  // #imm or direct
    }
    if (is_reg(d, n)) {
      if (s == "A") return 1;
      return 2;  // #imm or direct
    }
    if (is_ind(d, n)) {
      if (s == "A") return 1;
      return 2;
    }
    // direct destination
    if (s == "A") return 2;
    if (is_reg(s, n) || is_ind(s, n)) return 2;
    return 3;  // dir,dir or dir,#imm
  }
  if (m == "MOVC") return 1;
  if (m == "MOVX") return 1;
  if (m == "PUSH" || m == "POP") return 2;
  if (m == "XCH") {
    if (ops.size() == 2 && (is_reg(ops[1], n) || is_ind(ops[1], n))) return 1;
    return 2;
  }
  if (m == "CJNE") return 3;
  if (m == "DJNZ") {
    if (!ops.empty() && is_reg(ops[0], n)) return 2;
    return 3;
  }
  if (m == "CLR" || m == "SETB" || m == "CPL") {
    if (op_is(0, "A") || op_is(0, "C")) return 1;
    return 2;  // bit
  }
  throw AsmError(l.number, "unknown mnemonic '" + m + "'");
}

void Assembler::encode(const Line& l, std::uint16_t addr, std::vector<std::uint8_t>& out) const {
  const std::string& m = l.mnemonic;
  const auto& ops = l.operands;
  const int ln = l.number;
  int n = 0;

  auto emit = [&](int b) { out.push_back(static_cast<std::uint8_t>(b & 0xFF)); };
  auto need = [&](std::size_t count) {
    if (ops.size() != count)
      throw AsmError(ln, m + " expects " + std::to_string(count) + " operand(s)");
  };
  auto rel_to = [&](const std::string& target, std::uint16_t end_addr) {
    const int delta = static_cast<int>(eval(target, ln)) - static_cast<int>(end_addr);
    if (delta < -128 || delta > 127)
      throw AsmError(ln, "relative branch out of range (" + std::to_string(delta) + ")");
    return delta & 0xFF;
  };
  auto imm_of = [&](const std::string& op) { return eval8(op.substr(1), ln); };

  if (m == "NOP") { emit(0x00); return; }
  if (m == "RET") { emit(0x22); return; }
  if (m == "RETI") { emit(0x32); return; }

  if (m == "LJMP") { need(1); const auto t = eval(ops[0], ln); emit(0x02); emit(t >> 8); emit(t); return; }
  if (m == "LCALL") { need(1); const auto t = eval(ops[0], ln); emit(0x12); emit(t >> 8); emit(t); return; }
  if (m == "AJMP" || m == "ACALL") {
    need(1);
    const auto t = eval(ops[0], ln);
    const std::uint16_t end_addr = static_cast<std::uint16_t>(addr + 2);
    if ((t & 0xF800) != (end_addr & 0xF800))
      throw AsmError(ln, m + " target outside the current 2K page");
    emit(((t >> 3) & 0xE0) | (m == "AJMP" ? 0x01 : 0x11));
    emit(t & 0xFF);
    return;
  }
  if (m == "SJMP") { need(1); emit(0x80); emit(rel_to(ops[0], addr + 2)); return; }
  if (m == "JMP") { emit(0x73); return; }
  if (m == "JC") { need(1); emit(0x40); emit(rel_to(ops[0], addr + 2)); return; }
  if (m == "JNC") { need(1); emit(0x50); emit(rel_to(ops[0], addr + 2)); return; }
  if (m == "JZ") { need(1); emit(0x60); emit(rel_to(ops[0], addr + 2)); return; }
  if (m == "JNZ") { need(1); emit(0x70); emit(rel_to(ops[0], addr + 2)); return; }
  if (m == "JB" || m == "JNB" || m == "JBC") {
    need(2);
    emit(m == "JB" ? 0x20 : (m == "JNB" ? 0x30 : 0x10));
    emit(eval_bit(ops[0], ln));
    emit(rel_to(ops[1], addr + 3));
    return;
  }

  if (m == "RR") { emit(0x03); return; }
  if (m == "RRC") { emit(0x13); return; }
  if (m == "RL") { emit(0x23); return; }
  if (m == "RLC") { emit(0x33); return; }
  if (m == "SWAP") { emit(0xC4); return; }
  if (m == "DA") { emit(0xD4); return; }
  if (m == "MUL") { emit(0xA4); return; }
  if (m == "DIV") { emit(0x84); return; }
  if (m == "XCHD") { need(2); is_ind(ops[1], n); emit(0xD6 | n); return; }

  if (m == "INC" || m == "DEC") {
    need(1);
    const int base = m == "INC" ? 0x04 : 0x14;
    if (ops[0] == "A") { emit(base); return; }
    if (m == "INC" && ops[0] == "DPTR") { emit(0xA3); return; }
    if (is_reg(ops[0], n)) { emit(base + 4 + n); return; }
    if (is_ind(ops[0], n)) { emit(base + 2 + n); return; }
    emit(base + 1);
    emit(eval8(ops[0], ln));
    return;
  }

  if (m == "ADD" || m == "ADDC" || m == "SUBB") {
    need(2);
    if (ops[0] != "A") throw AsmError(ln, m + " destination must be A");
    const int base = m == "ADD" ? 0x24 : (m == "ADDC" ? 0x34 : 0x94);
    if (is_imm(ops[1])) { emit(base); emit(imm_of(ops[1])); return; }
    if (is_reg(ops[1], n)) { emit(base + 4 + n); return; }
    if (is_ind(ops[1], n)) { emit(base + 2 + n); return; }
    emit(base + 1);
    emit(eval8(ops[1], ln));
    return;
  }

  if (m == "ORL" || m == "ANL" || m == "XRL") {
    need(2);
    const int base = m == "ORL" ? 0x40 : (m == "ANL" ? 0x50 : 0x60);
    if (ops[0] == "C") {
      if (m == "XRL") throw AsmError(ln, "XRL C,bit does not exist");
      const bool inverted = !ops[1].empty() && ops[1][0] == '/';
      const std::string bit = inverted ? trim(ops[1].substr(1)) : ops[1];
      emit(m == "ORL" ? (inverted ? 0xA0 : 0x72) : (inverted ? 0xB0 : 0x82));
      emit(eval_bit(bit, ln));
      return;
    }
    if (ops[0] == "A") {
      if (is_imm(ops[1])) { emit(base + 4); emit(imm_of(ops[1])); return; }
      if (is_reg(ops[1], n)) { emit(base + 8 + n); return; }
      if (is_ind(ops[1], n)) { emit(base + 6 + n); return; }
      emit(base + 5);
      emit(eval8(ops[1], ln));
      return;
    }
    // direct destination
    if (ops[1] == "A") { emit(base + 2); emit(eval8(ops[0], ln)); return; }
    if (is_imm(ops[1])) { emit(base + 3); emit(eval8(ops[0], ln)); emit(imm_of(ops[1])); return; }
    throw AsmError(ln, "bad operands for " + m);
  }

  if (m == "CLR" || m == "SETB" || m == "CPL") {
    need(1);
    if (ops[0] == "A") {
      if (m == "CLR") { emit(0xE4); return; }
      if (m == "CPL") { emit(0xF4); return; }
      throw AsmError(ln, "SETB A does not exist");
    }
    if (ops[0] == "C") {
      emit(m == "CLR" ? 0xC3 : (m == "SETB" ? 0xD3 : 0xB3));
      return;
    }
    emit(m == "CLR" ? 0xC2 : (m == "SETB" ? 0xD2 : 0xB2));
    emit(eval_bit(ops[0], ln));
    return;
  }

  if (m == "MOV") {
    need(2);
    const std::string& d = ops[0];
    const std::string& s = ops[1];
    if (d == "DPTR") {
      if (!is_imm(s)) throw AsmError(ln, "MOV DPTR needs immediate");
      const auto v = eval(s.substr(1), ln);
      emit(0x90); emit(v >> 8); emit(v);
      return;
    }
    if (d == "C") { emit(0xA2); emit(eval_bit(s, ln)); return; }
    if (s == "C") { emit(0x92); emit(eval_bit(d, ln)); return; }
    if (d == "A") {
      if (is_imm(s)) { emit(0x74); emit(imm_of(s)); return; }
      if (is_reg(s, n)) { emit(0xE8 + n); return; }
      if (is_ind(s, n)) { emit(0xE6 + n); return; }
      emit(0xE5); emit(eval8(s, ln));
      return;
    }
    if (is_reg(d, n)) {
      if (s == "A") { emit(0xF8 + n); return; }
      if (is_imm(s)) { emit(0x78 + n); emit(imm_of(s)); return; }
      emit(0xA8 + n); emit(eval8(s, ln));
      return;
    }
    if (is_ind(d, n)) {
      if (s == "A") { emit(0xF6 + n); return; }
      if (is_imm(s)) { emit(0x76 + n); emit(imm_of(s)); return; }
      emit(0xA6 + n); emit(eval8(s, ln));
      return;
    }
    // direct destination
    if (s == "A") { emit(0xF5); emit(eval8(d, ln)); return; }
    if (is_reg(s, n)) { emit(0x88 + n); emit(eval8(d, ln)); return; }
    if (is_ind(s, n)) { emit(0x86 + n); emit(eval8(d, ln)); return; }
    if (is_imm(s)) { emit(0x75); emit(eval8(d, ln)); emit(imm_of(s)); return; }
    // MOV dir,dir: source byte first.
    emit(0x85); emit(eval8(s, ln)); emit(eval8(d, ln));
    return;
  }

  if (m == "MOVC") {
    need(2);
    if (ops[1] == "@A+DPTR") { emit(0x93); return; }
    if (ops[1] == "@A+PC") { emit(0x83); return; }
    throw AsmError(ln, "MOVC source must be @A+DPTR or @A+PC");
  }
  if (m == "MOVX") {
    need(2);
    if (ops[0] == "A") {
      if (ops[1] == "@DPTR") { emit(0xE0); return; }
      if (is_ind(ops[1], n)) { emit(0xE2 + n); return; }
    } else if (ops[1] == "A") {
      if (ops[0] == "@DPTR") { emit(0xF0); return; }
      if (is_ind(ops[0], n)) { emit(0xF2 + n); return; }
    }
    throw AsmError(ln, "bad MOVX operands");
  }

  if (m == "PUSH") { need(1); emit(0xC0); emit(eval8(ops[0], ln)); return; }
  if (m == "POP") { need(1); emit(0xD0); emit(eval8(ops[0], ln)); return; }

  if (m == "XCH") {
    need(2);
    if (ops[0] != "A") throw AsmError(ln, "XCH destination must be A");
    if (is_reg(ops[1], n)) { emit(0xC8 + n); return; }
    if (is_ind(ops[1], n)) { emit(0xC6 + n); return; }
    emit(0xC5); emit(eval8(ops[1], ln));
    return;
  }

  if (m == "CJNE") {
    need(3);
    const std::uint16_t end_addr = static_cast<std::uint16_t>(addr + 3);
    if (ops[0] == "A") {
      if (is_imm(ops[1])) { emit(0xB4); emit(imm_of(ops[1])); }
      else { emit(0xB5); emit(eval8(ops[1], ln)); }
      emit(rel_to(ops[2], end_addr));
      return;
    }
    if (!is_imm(ops[1])) throw AsmError(ln, "CJNE Rn/@Ri needs immediate comparand");
    if (is_reg(ops[0], n)) { emit(0xB8 + n); }
    else if (is_ind(ops[0], n)) { emit(0xB6 + n); }
    else throw AsmError(ln, "bad CJNE operands");
    emit(imm_of(ops[1]));
    emit(rel_to(ops[2], end_addr));
    return;
  }

  if (m == "DJNZ") {
    need(2);
    if (is_reg(ops[0], n)) {
      emit(0xD8 + n);
      emit(rel_to(ops[1], addr + 2));
      return;
    }
    emit(0xD5);
    emit(eval8(ops[0], ln));
    emit(rel_to(ops[1], addr + 3));
    return;
  }

  throw AsmError(ln, "unknown mnemonic '" + m + "'");
}

AsmResult Assembler::assemble(std::string_view source) {
  const auto lines = parse(source);

  // Pass 1: resolve label addresses and EQUs; compute total extent.
  std::uint16_t addr = 0;
  std::uint16_t lowest = 0xFFFF, highest = 0;
  bool emitted = false;
  for (const Line& l : lines) {
    if (!l.label.empty() && l.mnemonic != "EQU") {
      if (symbols_.contains(l.label))
        throw AsmError(l.number, "duplicate symbol '" + l.label + "'");
      symbols_[l.label] = addr;
    }
    if (l.mnemonic.empty()) continue;
    if (l.mnemonic == "EQU") {
      if (l.operands.size() != 1) throw AsmError(l.number, "EQU needs one value");
      symbols_[l.label] = eval(l.operands[0], l.number);
      continue;
    }
    if (l.mnemonic == "ORG") {
      if (l.operands.size() != 1) throw AsmError(l.number, "ORG needs one value");
      addr = eval(l.operands[0], l.number);
      continue;
    }
    if (l.mnemonic == "END") break;
    int size = 0;
    if (l.mnemonic == "DB") size = static_cast<int>(l.operands.size());
    else if (l.mnemonic == "DW") size = static_cast<int>(l.operands.size()) * 2;
    else if (l.mnemonic == "DS") size = eval(l.operands.at(0), l.number);
    else size = instruction_size(l);
    lowest = std::min(lowest, addr);
    addr = static_cast<std::uint16_t>(addr + size);
    highest = std::max(highest, addr);
    emitted = true;
  }

  AsmResult result;
  if (!emitted) return result;
  result.entry = lowest;
  result.image.assign(highest, 0x00);

  // Pass 2: encode. Loop annotations bind to the instruction emitted on
  // their line, or (for comment-only lines) to the next emitted instruction.
  addr = 0;
  struct PendingAnnot {
    LoopAnnot annot;
    int line;
  };
  std::optional<PendingAnnot> pending;
  const auto take_annot = [&pending](const Line& l) {
    if (l.annot == 0) return;
    if (pending)
      throw AsmError(l.number, "loop annotation shadows the unbound one on line " +
                                   std::to_string(pending->line));
    pending = PendingAnnot{LoopAnnot{l.annot_bound, l.annot == 2}, l.number};
  };
  for (const Line& l : lines) {
    take_annot(l);
    if (l.mnemonic.empty() || l.mnemonic == "EQU") continue;
    if (l.mnemonic == "ORG") {
      addr = eval(l.operands[0], l.number);
      continue;
    }
    if (l.mnemonic == "END") break;
    if (pending && (l.mnemonic == "DB" || l.mnemonic == "DW" || l.mnemonic == "DS"))
      throw AsmError(pending->line,
                     "loop annotation must precede an instruction, not data");
    std::vector<std::uint8_t> bytes;
    if (l.mnemonic == "DB") {
      for (const auto& op : l.operands) bytes.push_back(eval8(op, l.number));
    } else if (l.mnemonic == "DW") {
      for (const auto& op : l.operands) {
        const auto v = eval(op, l.number);
        bytes.push_back(static_cast<std::uint8_t>(v >> 8));
        bytes.push_back(static_cast<std::uint8_t>(v & 0xFF));
      }
    } else if (l.mnemonic == "DS") {
      bytes.assign(eval(l.operands.at(0), l.number), 0x00);
    } else {
      encode(l, addr, bytes);
      if (static_cast<int>(bytes.size()) != instruction_size(l))
        throw AsmError(l.number, "internal: size mismatch for '" + l.mnemonic + "'");
      if (pending) {
        result.loop_annots[addr] = pending->annot;
        pending.reset();
      }
    }
    std::copy(bytes.begin(), bytes.end(), result.image.begin() + addr);
    addr = static_cast<std::uint16_t>(addr + bytes.size());
  }
  if (pending)
    throw AsmError(pending->line, "loop annotation binds to no instruction");

  result.symbols = symbols_;
  return result;
}

}  // namespace ascp::mcu
