// assembler.hpp — two-pass MCS-51 assembler.
//
// The paper's software deliverable is 8051 firmware (boot loader, monitor,
// communication routines). To make that firmware first-class in this
// reproduction, programs are written in assembly source, assembled by this
// class and executed on the ISS — no hand-maintained byte arrays.
//
// Supported: the full MCS-51 mnemonic set, labels, EQU, ORG, DB, DW, DS,
// numeric literals (decimal, 0x…/…h hex, …b binary, 'c' char), +/- constant
// expressions, predefined SFR and SFR-bit symbols, and dotted bit syntax
// (P1.3, ACC.7, 20h.0).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ascp::mcu {

/// Error with source line context.
class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

struct AsmResult {
  std::vector<std::uint8_t> image;           ///< code image from address 0
  std::uint16_t entry = 0;                   ///< ORG of the first emitted byte
  std::map<std::string, std::uint16_t> symbols;  ///< resolved label/EQU values
};

class Assembler {
 public:
  Assembler();

  /// Assemble a full source text. Throws AsmError on any syntax problem.
  AsmResult assemble(std::string_view source);

  /// Define an external symbol before assembly (e.g. platform register
  /// addresses shared between C++ and firmware).
  void define(const std::string& name, std::uint16_t value);

 private:
  struct Line {
    int number;
    std::string label;
    std::string mnemonic;
    std::vector<std::string> operands;
  };

  std::map<std::string, std::uint16_t> symbols_;
  std::map<std::string, std::uint8_t> bit_symbols_;

  static std::vector<Line> parse(std::string_view source);
  int instruction_size(const Line& line) const;
  void encode(const Line& line, std::uint16_t addr, std::vector<std::uint8_t>& out) const;

  std::uint16_t eval(const std::string& expr, int line) const;
  std::uint8_t eval_bit(const std::string& expr, int line) const;
  std::uint8_t eval8(const std::string& expr, int line) const;
};

}  // namespace ascp::mcu
