// assembler.hpp — two-pass MCS-51 assembler.
//
// The paper's software deliverable is 8051 firmware (boot loader, monitor,
// communication routines). To make that firmware first-class in this
// reproduction, programs are written in assembly source, assembled by this
// class and executed on the ISS — no hand-maintained byte arrays.
//
// Supported: the full MCS-51 mnemonic set, labels, EQU, ORG, DB, DW, DS,
// numeric literals (decimal, 0x…/…h hex, …b binary, 'c' char), +/- constant
// expressions, predefined SFR and SFR-bit symbols, and dotted bit syntax
// (P1.3, ACC.7, 20h.0).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ascp::mcu {

/// Error with source line context.
class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Loop annotation attached to a back-edge instruction via an assembler
/// comment. `;@loop-bound N` asserts the loop whose back edge is on that
/// line executes its body at most N times per entry; `;@loop-wait` marks an
/// external-event poll loop (UART RI/TI, hardware status) whose spinning is
/// excluded from busy-time WCET and accounted as I/O wait instead. A comment
/// starting with `;@loop-` that matches neither form is an AsmError, as is
/// an annotation that does not bind to an instruction.
struct LoopAnnot {
  long bound = 0;     ///< max body executions per loop entry (0 with wait)
  bool wait = false;  ///< external-event wait loop
};

struct AsmResult {
  std::vector<std::uint8_t> image;           ///< code image from address 0
  std::uint16_t entry = 0;                   ///< ORG of the first emitted byte
  std::map<std::string, std::uint16_t> symbols;  ///< resolved label/EQU values
  std::map<std::uint16_t, LoopAnnot> loop_annots;  ///< back-edge address -> annotation
};

class Assembler {
 public:
  Assembler();

  /// Assemble a full source text. Throws AsmError on any syntax problem.
  AsmResult assemble(std::string_view source);

  /// Define an external symbol before assembly (e.g. platform register
  /// addresses shared between C++ and firmware).
  void define(const std::string& name, std::uint16_t value);

 private:
  struct Line {
    int number;
    std::string label;
    std::string mnemonic;
    std::vector<std::string> operands;
    int annot = 0;         ///< 0 none, 1 ;@loop-bound, 2 ;@loop-wait
    long annot_bound = 0;  ///< iterations for annot == 1
  };

  std::map<std::string, std::uint16_t> symbols_;
  std::map<std::string, std::uint8_t> bit_symbols_;

  static std::vector<Line> parse(std::string_view source);
  int instruction_size(const Line& line) const;
  void encode(const Line& line, std::uint16_t addr, std::vector<std::uint8_t>& out) const;

  std::uint16_t eval(const std::string& expr, int line) const;
  std::uint8_t eval_bit(const std::string& expr, int line) const;
  std::uint8_t eval8(const std::string& expr, int line) const;
};

}  // namespace ascp::mcu
