#include "mcu/bootrom.hpp"

#include "mcu/assembler.hpp"

namespace ascp::mcu {

std::string BootRom::source(const BootRomConfig& cfg) {
  (void)cfg;  // addresses are injected as symbols in image()
  // R2:R3 = remaining byte count, R4 = running checksum, R5 = scratch byte,
  // R6:R7 = saved DPTR across spi_xfer.
  return R"(
        ORG 0
start:  MOV SP,#40h
        MOV SCON,#50h        ; UART mode 1, receiver enabled
        MOV TMOD,#20h        ; timer 1: 8-bit auto-reload (baud generator)
        MOV TH1,#0FDh
        SETB TR1

        ; ---- probe the SPI EEPROM (channel auto-detection) ----
        LCALL cs_on
        MOV A,#03h           ; READ
        LCALL spi_xfer
        CLR A
        LCALL spi_xfer       ; address 0x0000
        CLR A
        LCALL spi_xfer
        MOV A,#0FFh
        LCALL spi_xfer       ; magic byte
        CJNE A,#0A5h,no_eeprom

        ; ---- copy the EEPROM image into program RAM ----
        MOV A,#0FFh
        LCALL spi_xfer
        MOV R2,A             ; length high
        MOV A,#0FFh
        LCALL spi_xfer
        MOV R3,A             ; length low
        MOV DPTR,#PROGRAM
        MOV R4,#0
ecopy:  MOV A,R2
        ORL A,R3
        JZ edone
        MOV A,#0FFh
        LCALL spi_xfer
        MOV R5,A
        MOVX @DPTR,A
        INC DPTR
        MOV A,R4
        ADD A,R5
        MOV R4,A
        MOV A,R3
        JNZ enolo
        DEC R2
enolo:  DEC R3
        SJMP ecopy           ;@loop-bound 65535 ; 16-bit length counter R2:R3
edone:  MOV A,#0FFh
        LCALL spi_xfer       ; stored checksum
        XRL A,R4
        JNZ no_eeprom        ; corrupt image: fall back to UART
        LCALL cs_off
        LJMP PROGRAM

        ; ---- UART download ----
no_eeprom:
        LCALL cs_off
magic:  LCALL uart_rx
        CJNE A,#0A5h,magic   ;@loop-wait ; host-paced: resync until magic byte
        LCALL uart_rx
        MOV R2,A
        LCALL uart_rx
        MOV R3,A
        MOV DPTR,#PROGRAM
        MOV R4,#0
ucopy:  MOV A,R2
        ORL A,R3
        JZ udone
        LCALL uart_rx
        MOV R5,A
        MOVX @DPTR,A
        INC DPTR
        MOV A,R4
        ADD A,R5
        MOV R4,A
        MOV A,R3
        JNZ unolo
        DEC R2
unolo:  DEC R3
        SJMP ucopy
udone:  LCALL uart_rx        ; checksum
        XRL A,R4
        JNZ bad
        MOV A,#06h           ; ACK
        LCALL uart_tx
        LJMP PROGRAM
bad:    MOV A,#15h           ; NAK
        LCALL uart_tx
        SJMP magic           ;@loop-wait ; retries are host-paced too

        ; ---- helpers ----
uart_rx:
        JNB RI,uart_rx       ;@loop-wait
        MOV A,SBUF           ; read before releasing RI: the host may refill
        CLR RI               ; the receive buffer the moment RI drops
        RET
uart_tx:
        MOV SBUF,A
waitti: JNB TI,waitti        ;@loop-wait
        CLR TI
        RET
cs_on:  MOV DPTR,#SPICTRL
        MOV A,#1
        MOVX @DPTR,A
        INC DPTR
        CLR A
        MOVX @DPTR,A
        RET
cs_off: MOV DPTR,#SPICTRL
        CLR A
        MOVX @DPTR,A
        INC DPTR
        CLR A
        MOVX @DPTR,A
        RET
spi_xfer:
        MOV R6,DPL
        MOV R7,DPH
        MOV DPTR,#SPIDATA
        MOVX @DPTR,A         ; latch low byte
        INC DPTR
        CLR A
        MOVX @DPTR,A         ; commit: transfer fires
        MOV DPTR,#SPIDATA
        MOVX A,@DPTR         ; received byte
        MOV DPL,R6
        MOV DPH,R7
        RET
)";
}

std::vector<std::uint8_t> BootRom::image(const BootRomConfig& cfg) {
  Assembler as;
  as.define("PROGRAM", cfg.prog_base);
  as.define("SPIDATA", cfg.spi_base);                                   // word reg 0
  as.define("SPICTRL", static_cast<std::uint16_t>(cfg.spi_base + 2));   // word reg 1
  return as.assemble(source(cfg)).image;
}

std::vector<std::uint8_t> BootRom::eeprom_image(const std::vector<std::uint8_t>& program) {
  std::vector<std::uint8_t> out;
  out.reserve(program.size() + 4);
  out.push_back(kMagic);
  out.push_back(static_cast<std::uint8_t>(program.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(program.size() & 0xFF));
  std::uint8_t checksum = 0;
  for (std::uint8_t b : program) {
    out.push_back(b);
    checksum = static_cast<std::uint8_t>(checksum + b);
  }
  out.push_back(checksum);
  return out;
}

}  // namespace ascp::mcu
