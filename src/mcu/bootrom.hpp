// bootrom.hpp — the platform's boot flows (paper §4.2).
//
// "in a 'prototype' version, a big RAM would be instantiated and used as
// Program Storage (while the boot placed in a small 1 Kb ROM would perform
// software download via UART) … moreover it's possible to store the
// downloaded software into an external SPI EEPROM, and so reboot directly
// from EEPROM instead of downloading each time after reset."
//
// BootRom produces the boot firmware as real 8051 assembly: on reset it
// probes the SPI EEPROM for a valid framed image (auto-detection of the
// connected channel), copies it into program RAM and jumps; otherwise it
// falls back to the UART download protocol (0xA5, 16-bit length, payload,
// mod-256 checksum; ACK 0x06 / NAK 0x15).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ascp::mcu {

struct BootRomConfig {
  std::uint16_t spi_base = 0xFF00;   ///< SPI master window on the bridge
  std::uint16_t prog_base = 0x8000;  ///< program RAM base (= code entry)
};

class BootRom {
 public:
  /// Assembly source of the boot loader.
  static std::string source(const BootRomConfig& cfg = {});

  /// Assembled boot image (ORG 0).
  static std::vector<std::uint8_t> image(const BootRomConfig& cfg = {});

  /// Frame a program for EEPROM storage: magic, length, payload, checksum.
  static std::vector<std::uint8_t> eeprom_image(const std::vector<std::uint8_t>& program);

  static constexpr std::uint8_t kMagic = 0xA5;
  static constexpr std::uint8_t kAck = 0x06;
  static constexpr std::uint8_t kNak = 0x15;
};

}  // namespace ascp::mcu
