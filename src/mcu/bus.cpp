#include "mcu/bus.hpp"

#include <stdexcept>

namespace ascp::mcu {

BridgedBus::BridgedBus(std::size_t ram_bytes) : ram_(ram_bytes, 0) {}

void BridgedBus::map(BridgeDevice* dev, std::uint16_t base, std::uint16_t num_regs,
                     std::string name) {
  const std::uint16_t size = static_cast<std::uint16_t>(num_regs * 2);
  if (base < ram_.size())
    throw std::invalid_argument("bridge window '" + name + "' overlaps XDATA RAM");
  if (prog_size_ && base < prog_base_ + prog_size_ && prog_base_ < base + size)
    throw std::invalid_argument("bridge window '" + name + "' overlaps program RAM");
  for (const Window& w : windows_) {
    const bool overlap = base < w.base + w.size && w.base < base + size;
    if (overlap)
      throw std::invalid_argument("bridge window '" + name + "' overlaps '" + w.name + "'");
  }
  windows_.push_back(Window{dev, base, size, std::move(name)});
}

const BridgedBus::Window* BridgedBus::find(std::uint16_t addr) const {
  for (const Window& w : windows_)
    if (addr >= w.base && addr < w.base + w.size) return &w;
  return nullptr;
}

void BridgedBus::map_program_ram(std::uint16_t base, std::uint32_t size, Core8051* core) {
  if (base < ram_.size()) throw std::invalid_argument("program RAM overlaps XDATA RAM");
  for (const Window& w : windows_) {
    if (base < static_cast<std::uint32_t>(w.base) + w.size && w.base < base + size)
      throw std::invalid_argument("program RAM overlaps bridge window '" + w.name + "'");
  }
  prog_base_ = base;
  prog_size_ = size;
  prog_ram_.assign(size, 0);
  prog_core_ = core;
}

std::uint8_t BridgedBus::read(std::uint16_t addr) {
  if (addr < ram_.size()) return ram_[addr];
  if (prog_size_ && addr >= prog_base_ && addr < prog_base_ + prog_size_)
    return prog_ram_[addr - prog_base_];
  if (const Window* w = find(addr)) {
    const std::uint16_t offset = static_cast<std::uint16_t>(addr - w->base);
    if ((offset & 1) == 0) {
      // Low-byte read latches the whole word so the subsequent high-byte
      // read is coherent — an 8-bit CPU cannot read 16 bits atomically.
      const std::uint16_t value = w->dev->read_reg(offset / 2);
      read_latch_high_ = static_cast<std::uint8_t>(value >> 8);
      return static_cast<std::uint8_t>(value & 0xFF);
    }
    return read_latch_high_;
  }
  return 0xFF;  // open bus
}

void BridgedBus::write(std::uint16_t addr, std::uint8_t value) {
  if (addr < ram_.size()) {
    ram_[addr] = value;
    return;
  }
  if (prog_size_ && addr >= prog_base_ && addr < prog_base_ + prog_size_) {
    prog_ram_[addr - prog_base_] = value;
    if (prog_core_) prog_core_->poke_code(addr, value);  // identity mapping
    return;
  }
  if (const Window* w = find(addr)) {
    const std::uint16_t offset = static_cast<std::uint16_t>(addr - w->base);
    if ((offset & 1) == 0) {
      // Low byte: latch only; the register commits on the high-byte write.
      latched_low_ = value;
    } else {
      w->dev->write_reg(offset / 2,
                        static_cast<std::uint16_t>(value << 8 | latched_low_));
    }
  }
}

std::vector<BridgedBus::WindowInfo> BridgedBus::mapped_windows() const {
  std::vector<WindowInfo> out;
  out.reserve(windows_.size());
  for (const Window& w : windows_) out.push_back(WindowInfo{w.name, w.base, w.size});
  return out;
}

std::uint16_t BridgedBus::read_word(std::uint16_t addr) {
  return static_cast<std::uint16_t>(read(addr) | (read(static_cast<std::uint16_t>(addr + 1)) << 8));
}

void BridgedBus::write_word(std::uint16_t addr, std::uint16_t value) {
  write(addr, static_cast<std::uint8_t>(value & 0xFF));
  write(static_cast<std::uint16_t>(addr + 1), static_cast<std::uint8_t>(value >> 8));
}

}  // namespace ascp::mcu
