// bus.hpp — XDATA bus with region-mapped devices and the 16-bit bridge.
//
// Paper Fig. 4: "Cache controller and UART are located on the 8051 SFR bus
// (8-bit), while the other peripherals (SPI, timer, watchdog, and SRAM
// controller) are accessed via a custom bridge by means of a 16-bit bus."
// BridgedBus implements the MOVX-visible side: devices claim address ranges;
// 16-bit peripheral registers are accessed as little-endian byte pairs, and
// the bridge latches the low byte so a 16-bit register updates atomically on
// the high-byte write — the way a real 8-to-16-bit bridge behaves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mcu/core8051.hpp"

namespace ascp::mcu {

/// A peripheral on the bridged 16-bit bus.
class BridgeDevice {
 public:
  virtual ~BridgeDevice() = default;
  /// Word-register access: `reg` is the 16-bit register index inside the
  /// device's window.
  virtual std::uint16_t read_reg(std::uint16_t reg) = 0;
  virtual void write_reg(std::uint16_t reg, std::uint16_t value) = 0;
};

/// XDATA bus: plain RAM backing plus device windows.
class BridgedBus : public XdataBus {
 public:
  /// `ram_bytes` of ordinary XDATA RAM mapped from address 0.
  explicit BridgedBus(std::size_t ram_bytes = 4096);

  /// Map `dev` at [base, base + 2*num_regs): each word register occupies two
  /// byte addresses (little endian). Windows must not overlap RAM or each
  /// other (checked).
  void map(BridgeDevice* dev, std::uint16_t base, std::uint16_t num_regs,
           std::string name = {});

  std::uint8_t read(std::uint16_t addr) override;
  void write(std::uint16_t addr, std::uint8_t value) override;

  /// Word-level convenience for host-side tests.
  std::uint16_t read_word(std::uint16_t addr);
  void write_word(std::uint16_t addr, std::uint16_t value);

  /// Map program RAM at [base, base+size): byte writes land in XDATA *and*
  /// mirror into the core's code memory at the same address — the paper's
  /// "big RAM … used as Program Storage" configuration that makes firmware
  /// download-and-execute possible on a Harvard core.
  void map_program_ram(std::uint16_t base, std::uint32_t size, Core8051* core);

  std::size_t ram_size() const { return ram_.size(); }

  /// Introspection for the static register-map checker: every mapped device
  /// window (name, byte base, byte size) plus the program-RAM region.
  struct WindowInfo {
    std::string name;
    std::uint16_t base;
    std::uint16_t bytes;
  };
  std::vector<WindowInfo> mapped_windows() const;
  std::uint16_t program_base() const { return prog_base_; }
  std::uint32_t program_size() const { return prog_size_; }

  void serialize_state(StateArchive& ar) {
    ar.value(ram_);
    ar.value(latched_low_);
    ar.value(read_latch_high_);
    ar.value(prog_ram_);
  }

 private:
  struct Window {
    BridgeDevice* dev;
    std::uint16_t base;
    std::uint16_t size;  // bytes
    std::string name;
  };

  const Window* find(std::uint16_t addr) const;

  std::vector<std::uint8_t> ram_;
  std::vector<Window> windows_;
  std::uint8_t latched_low_ = 0;      // bridge write latch
  std::uint8_t read_latch_high_ = 0;  // bridge read latch (word coherence)

  // Program-RAM window.
  std::uint16_t prog_base_ = 0;
  std::uint32_t prog_size_ = 0;
  std::vector<std::uint8_t> prog_ram_;
  Core8051* prog_core_ = nullptr;
};

}  // namespace ascp::mcu
