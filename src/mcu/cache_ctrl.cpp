#include "mcu/cache_ctrl.hpp"

#include <cassert>
#include <cstring>

namespace ascp::mcu {

CacheController::CacheController(const CacheConfig& cfg)
    : cfg_(cfg),
      external_(cfg.external_bytes, 0xFF),
      data_(static_cast<std::size_t>(cfg.lines) * cfg.line_bytes, 0),
      tags_(static_cast<std::size_t>(cfg.lines), -1) {
  assert((cfg.lines & (cfg.lines - 1)) == 0);
  assert((cfg.line_bytes & (cfg.line_bytes - 1)) == 0);
}

bool CacheController::owns(std::uint8_t addr) const {
  return addr >= cfg_.sfr_base && addr < cfg_.sfr_base + 5;
}

std::uint32_t CacheController::address() const {
  return (static_cast<std::uint32_t>(bank_) << 16 | static_cast<std::uint32_t>(ahi_) << 8 |
          alo_) %
         static_cast<std::uint32_t>(external_.size());
}

void CacheController::post_increment() {
  if (++alo_ == 0) {
    if (++ahi_ == 0) ++bank_;
  }
}

std::uint8_t* CacheController::lookup(std::uint32_t addr) {
  const std::uint32_t line_addr = addr / cfg_.line_bytes;
  const std::uint32_t index = line_addr % cfg_.lines;
  const auto tag = static_cast<std::int64_t>(line_addr / cfg_.lines);
  std::uint8_t* line = &data_[static_cast<std::size_t>(index) * cfg_.line_bytes];
  if (tags_[index] == tag) {
    last_missed_ = false;
    ++hits_;
  } else {
    last_missed_ = true;
    ++misses_;
    // Fill over the 2-wire link (write-through cache: no dirty write-back).
    std::memcpy(line, &external_[static_cast<std::size_t>(line_addr) * cfg_.line_bytes],
                static_cast<std::size_t>(cfg_.line_bytes));
    tags_[index] = tag;
  }
  return &line[addr % cfg_.line_bytes];
}

std::uint8_t CacheController::read(std::uint8_t addr) {
  switch (addr - cfg_.sfr_base) {
    case 0: return bank_;
    case 1: return ahi_;
    case 2: return alo_;
    case 3: {
      const std::uint8_t v = *lookup(address());
      post_increment();
      return v;
    }
    case 4: return last_missed_ ? 1 : 0;
    default: return 0xFF;
  }
}

void CacheController::write(std::uint8_t addr, std::uint8_t value) {
  switch (addr - cfg_.sfr_base) {
    case 0: bank_ = value; break;
    case 1: ahi_ = value; break;
    case 2: alo_ = value; break;
    case 3: {
      const std::uint32_t a = address();
      *lookup(a) = value;
      external_[a] = value;  // write-through over the 2-wire link
      post_increment();
      break;
    }
    case 4:
      hits_ = misses_ = 0;
      break;
    default:
      break;
  }
}

void CacheController::load(std::uint32_t addr, const std::vector<std::uint8_t>& data) {
  for (std::size_t i = 0; i < data.size(); ++i)
    external_[(addr + i) % external_.size()] = data[i];
  // Backing store changed behind the cache: invalidate.
  std::fill(tags_.begin(), tags_.end(), -1);
}

std::uint8_t CacheController::peek(std::uint32_t addr) const {
  return external_[addr % external_.size()];
}

}  // namespace ascp::mcu
