// cache_ctrl.hpp — cache controller for big external RAM (paper Fig. 4).
//
// §4.2: "ROM/RAM memories and cache controller … the cache (which is
// conceived to access big external RAM with a custom 2-wire protocol)".
// The controller sits on the 8051 SFR bus and fronts an external memory
// larger than the 64 KB XDATA space. It is a direct-mapped, write-through
// cache; the serial 2-wire link makes misses expensive, which is exactly
// what the cache exists to hide.
//
// SFR map (five registers on the SFR bus):
//   CBANK  — external-address bits 23..16
//   CAHI   — external-address bits 15..8
//   CALO   — external-address bits 7..0
//   CDATA  — read/write at the composed address; post-increments CALO/CAHI
//   CSTAT  — bit0: last access missed; write any value to reset statistics
#pragma once

#include <cstdint>
#include <vector>

#include "mcu/core8051.hpp"

namespace ascp::mcu {

struct CacheConfig {
  std::uint8_t sfr_base = 0xA1;     ///< CBANK; the next four SFRs follow
  std::size_t external_bytes = 128 * 1024;
  int lines = 16;                   ///< direct-mapped line count (power of 2)
  int line_bytes = 16;              ///< bytes per line (power of 2)
  long miss_penalty_cycles = 34;    ///< 2-wire fill: 2 bits/byte + handshake
};

class CacheController : public SfrDevice {
 public:
  explicit CacheController(const CacheConfig& cfg = {});

  // ---- SfrDevice -----------------------------------------------------------
  bool owns(std::uint8_t addr) const override;
  std::uint8_t read(std::uint8_t addr) override;
  void write(std::uint8_t addr, std::uint8_t value) override;

  // ---- host-side (factory programming / verification) -----------------------
  void load(std::uint32_t addr, const std::vector<std::uint8_t>& data);
  std::uint8_t peek(std::uint32_t addr) const;

  // ---- statistics ------------------------------------------------------------
  long hits() const { return hits_; }
  long misses() const { return misses_; }
  /// Cycles the 2-wire link has cost so far (miss count × penalty).
  long stall_cycles() const { return misses_ * cfg_.miss_penalty_cycles; }
  void reset_stats() { hits_ = misses_ = 0; }

  const CacheConfig& config() const { return cfg_; }

  void serialize_state(StateArchive& ar) {
    ar.value(external_);
    ar.value(data_);
    for (auto& t : tags_) ar.value(t);
    ar.value(bank_);
    ar.value(ahi_);
    ar.value(alo_);
    ar.value(last_missed_);
    std::int64_t h = hits_, m = misses_;
    ar.value(h);
    ar.value(m);
    hits_ = static_cast<long>(h);
    misses_ = static_cast<long>(m);
  }

 private:
  std::uint32_t address() const;
  void post_increment();
  std::uint8_t* lookup(std::uint32_t addr);  ///< cached byte (fills on miss)

  CacheConfig cfg_;
  std::vector<std::uint8_t> external_;
  std::vector<std::uint8_t> data_;   ///< lines × line_bytes
  std::vector<std::int64_t> tags_;   ///< -1 = invalid
  std::uint8_t bank_ = 0, ahi_ = 0, alo_ = 0;
  bool last_missed_ = false;
  long hits_ = 0, misses_ = 0;
};

}  // namespace ascp::mcu
