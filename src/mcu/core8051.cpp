#include "mcu/core8051.hpp"

#include "obs/mcu_profile.hpp"

namespace ascp::mcu {

namespace {
// PSW flag bit positions.
constexpr int kCy = 7, kAc = 6, kOv = 2, kP = 0;

constexpr bool parity_of(std::uint8_t v) {
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return v & 1;
}
}  // namespace

Core8051::Core8051() { reset(); }

void Core8051::reset() {
  iram_.fill(0);
  sfrs_.fill(0);
  sfr_raw_set(sfr::SP, 0x07);
  sfr_raw_set(sfr::P0, 0xFF);
  sfr_raw_set(sfr::P1, 0xFF);
  sfr_raw_set(sfr::P2, 0xFF);
  sfr_raw_set(sfr::P3, 0xFF);
  pc_ = 0;
  cycles_ = 0;
  halted_ = false;
  jammed_ = false;
  in_isr_low_ = in_isr_high_ = false;
  int0_prev_ = int1_prev_ = false;
  tx_countdown_ = -1;
}

void Core8051::load_program(const std::vector<std::uint8_t>& image, std::uint16_t base) {
  for (std::size_t i = 0; i < image.size() && base + i < code_.size(); ++i)
    code_[base + i] = image[i];
}

std::uint8_t Core8051::reg_addr(int n) const {
  const int bank = (sfr_raw(sfr::PSW) >> 3) & 0x03;
  return static_cast<std::uint8_t>(bank * 8 + n);
}

std::uint8_t Core8051::reg(int n) const { return iram_[reg_addr(n)]; }

std::uint16_t Core8051::dptr() const {
  return static_cast<std::uint16_t>(sfr_raw(sfr::DPH) << 8 | sfr_raw(sfr::DPL));
}

void Core8051::set_dptr(std::uint16_t v) {
  sfr_raw_set(sfr::DPH, static_cast<std::uint8_t>(v >> 8));
  sfr_raw_set(sfr::DPL, static_cast<std::uint8_t>(v & 0xFF));
}

void Core8051::push(std::uint8_t v) {
  const std::uint8_t sp = static_cast<std::uint8_t>(sfr_raw(sfr::SP) + 1);
  sfr_raw_set(sfr::SP, sp);
  iram_[sp] = v;
}

std::uint8_t Core8051::pop() {
  const std::uint8_t sp = sfr_raw(sfr::SP);
  sfr_raw_set(sfr::SP, static_cast<std::uint8_t>(sp - 1));
  return iram_[sp];
}

void Core8051::set_flag(int bit, bool v) {
  std::uint8_t p = sfr_raw(sfr::PSW);
  p = static_cast<std::uint8_t>(v ? (p | (1u << bit)) : (p & ~(1u << bit)));
  sfr_raw_set(sfr::PSW, p);
}

void Core8051::update_parity() { set_flag(kP, parity_of(a())); }

std::uint8_t Core8051::sfr_read(std::uint8_t addr) {
  if (addr == sfr::PSW) update_parity();
  if (addr == sfr::SBUF) return rx_buf_;
  // Core-owned SFRs read from the backing store; anything else is offered to
  // the attached devices first.
  switch (addr) {
    case sfr::P0: case sfr::SP: case sfr::DPL: case sfr::DPH: case sfr::PCON:
    case sfr::TCON: case sfr::TMOD: case sfr::TL0: case sfr::TL1: case sfr::TH0: case sfr::TH1:
    case sfr::P1: case sfr::SCON: case sfr::P2: case sfr::IE: case sfr::P3: case sfr::IP:
    case sfr::PSW: case sfr::ACC: case sfr::B:
      return sfr_raw(addr);
    default:
      for (SfrDevice* dev : sfr_devices_)
        if (dev->owns(addr)) return dev->read(addr);
      return sfr_raw(addr);
  }
}

void Core8051::sfr_write(std::uint8_t addr, std::uint8_t value) {
  if (addr == sfr::SBUF) {
    // Start a transmission: frame time from timer-1 mode-2 reload when
    // configured (bit time = 32·(256−TH1) machine cycles, SMOD=0), else a
    // nominal 1024-cycle frame. Modes 2/3 append TB8 as the ninth bit.
    tx_shift_ = value;
    tx_shift_bit9_ = (sfr_raw(sfr::SCON) & 0x08) != 0;  // TB8
    const std::uint8_t tmod = sfr_raw(sfr::TMOD);
    const bool t1_mode2 = ((tmod >> 4) & 0x03) == 2;
    const int bit_cycles = t1_mode2 ? 32 * (256 - sfr_raw(sfr::TH1)) : 102;
    tx_countdown_ = 10 * (bit_cycles > 0 ? bit_cycles : 102);
    return;
  }
  switch (addr) {
    case sfr::P0: case sfr::SP: case sfr::DPL: case sfr::DPH: case sfr::PCON:
    case sfr::TCON: case sfr::TMOD: case sfr::TL0: case sfr::TL1: case sfr::TH0: case sfr::TH1:
    case sfr::P1: case sfr::SCON: case sfr::P2: case sfr::IE: case sfr::P3: case sfr::IP:
    case sfr::PSW: case sfr::ACC: case sfr::B:
      sfr_raw_set(addr, value);
      return;
    default:
      for (SfrDevice* dev : sfr_devices_) {
        if (dev->owns(addr)) {
          dev->write(addr, value);
          return;
        }
      }
      sfr_raw_set(addr, value);
  }
}

std::uint8_t Core8051::direct_read(std::uint8_t addr) {
  return addr < 0x80 ? iram_[addr] : sfr_read(addr);
}

void Core8051::direct_write(std::uint8_t addr, std::uint8_t value) {
  if (addr < 0x80)
    iram_[addr] = value;
  else
    sfr_write(addr, value);
}

bool Core8051::bit_read(std::uint8_t bit_addr) {
  if (bit_addr < 0x80) {
    const std::uint8_t byte = iram_[0x20 + (bit_addr >> 3)];
    return (byte >> (bit_addr & 7)) & 1;
  }
  const std::uint8_t sfr_addr = bit_addr & 0xF8;
  return (sfr_read(sfr_addr) >> (bit_addr & 7)) & 1;
}

void Core8051::bit_write(std::uint8_t bit_addr, bool value) {
  if (bit_addr < 0x80) {
    std::uint8_t& byte = iram_[0x20 + (bit_addr >> 3)];
    byte = static_cast<std::uint8_t>(value ? (byte | (1u << (bit_addr & 7)))
                                           : (byte & ~(1u << (bit_addr & 7))));
    return;
  }
  const std::uint8_t sfr_addr = bit_addr & 0xF8;
  std::uint8_t byte = sfr_read(sfr_addr);
  byte = static_cast<std::uint8_t>(value ? (byte | (1u << (bit_addr & 7)))
                                         : (byte & ~(1u << (bit_addr & 7))));
  sfr_write(sfr_addr, byte);
}

std::uint8_t Core8051::xdata_read(std::uint16_t addr) {
  return xdata_ ? xdata_->read(addr) : 0xFF;
}

void Core8051::xdata_write(std::uint16_t addr, std::uint8_t value) {
  if (xdata_) xdata_->write(addr, value);
}

void Core8051::do_add(std::uint8_t operand, bool with_carry) {
  const int c = with_carry && flag(kCy) ? 1 : 0;
  const int lhs = a();
  const int sum = lhs + operand + c;
  const int half = (lhs & 0x0F) + (operand & 0x0F) + c;
  set_flag(kCy, sum > 0xFF);
  set_flag(kAc, half > 0x0F);
  const int signed_sum = static_cast<std::int8_t>(lhs) + static_cast<std::int8_t>(operand) + c;
  set_flag(kOv, signed_sum < -128 || signed_sum > 127);
  set_a(static_cast<std::uint8_t>(sum));
}

void Core8051::do_subb(std::uint8_t operand) {
  const int c = flag(kCy) ? 1 : 0;
  const int lhs = a();
  const int diff = lhs - operand - c;
  const int half = (lhs & 0x0F) - (operand & 0x0F) - c;
  set_flag(kCy, diff < 0);
  set_flag(kAc, half < 0);
  const int signed_diff = static_cast<std::int8_t>(lhs) - static_cast<std::int8_t>(operand) - c;
  set_flag(kOv, signed_diff < -128 || signed_diff > 127);
  set_a(static_cast<std::uint8_t>(diff & 0xFF));
}

bool Core8051::inject_rx(std::uint8_t byte) { return inject_rx9(byte, true); }

bool Core8051::inject_rx9(std::uint8_t byte, bool bit9) {
  const std::uint8_t scon = sfr_raw(sfr::SCON);
  if (!(scon & 0x10)) return false;  // REN clear — receiver disabled
  const bool nine_bit_mode = (scon & 0x80) != 0;  // SM0: modes 2 and 3
  if ((scon & 0x20) && nine_bit_mode && !bit9) {
    // SM2 address filtering: the frame is on the wire but this node stays
    // silent — no RI, no buffer update.
    return true;
  }
  if (scon & 0x01) return false;  // RI still set — overrun refused
  rx_buf_ = byte;
  std::uint8_t next = static_cast<std::uint8_t>(scon | 0x01);  // RI
  if (nine_bit_mode)
    next = static_cast<std::uint8_t>(bit9 ? (next | 0x04) : (next & ~0x04));  // RB8
  sfr_raw_set(sfr::SCON, next);
  return true;
}

void Core8051::tick_timer(int idx, int cycles) {
  const std::uint8_t tcon = sfr_raw(sfr::TCON);
  const bool running = idx == 0 ? (tcon & 0x10) : (tcon & 0x40);
  if (!running) return;
  const std::uint8_t tmod = sfr_raw(sfr::TMOD);
  const int mode = (idx == 0 ? tmod : tmod >> 4) & 0x03;
  const std::uint8_t tl_addr = idx == 0 ? sfr::TL0 : sfr::TL1;
  const std::uint8_t th_addr = idx == 0 ? sfr::TH0 : sfr::TH1;
  const std::uint8_t tf_mask = idx == 0 ? 0x20 : 0x80;

  if (mode == 2) {
    // 8-bit auto-reload from TH.
    int tl = sfr_raw(tl_addr);
    for (int i = 0; i < cycles; ++i) {
      if (++tl > 0xFF) {
        tl = sfr_raw(th_addr);
        sfr_raw_set(sfr::TCON, static_cast<std::uint8_t>(sfr_raw(sfr::TCON) | tf_mask));
      }
    }
    sfr_raw_set(tl_addr, static_cast<std::uint8_t>(tl));
    return;
  }
  // Modes 0/1/3 approximated as the 16-bit counter (mode 1) — the form the
  // platform firmware uses.
  long count = (sfr_raw(th_addr) << 8) | sfr_raw(tl_addr);
  count += cycles;
  if (count > 0xFFFF) {
    count &= 0xFFFF;
    sfr_raw_set(sfr::TCON, static_cast<std::uint8_t>(sfr_raw(sfr::TCON) | tf_mask));
  }
  sfr_raw_set(th_addr, static_cast<std::uint8_t>(count >> 8));
  sfr_raw_set(tl_addr, static_cast<std::uint8_t>(count & 0xFF));
}

void Core8051::tick_peripherals(int machine_cycles) {
  tick_timer(0, machine_cycles);
  tick_timer(1, machine_cycles);

  // Serial transmit completion.
  if (tx_countdown_ >= 0) {
    tx_countdown_ -= machine_cycles;
    if (tx_countdown_ < 0) {
      sfr_raw_set(sfr::SCON, static_cast<std::uint8_t>(sfr_raw(sfr::SCON) | 0x02));  // TI
      last_tx_bit9_ = tx_shift_bit9_;
      if (on_tx_) on_tx_(tx_shift_);
    }
  }

  // External interrupt pins: IT0/IT1 select edge (1) or level (0) mode.
  const std::uint8_t tcon = sfr_raw(sfr::TCON);
  const bool it0 = tcon & 0x01, it1 = tcon & 0x04;
  std::uint8_t new_tcon = tcon;
  if (it0) {
    if (int0_pin_ && !int0_prev_) new_tcon |= 0x02;  // IE0 on asserting edge
  } else {
    new_tcon = static_cast<std::uint8_t>(int0_pin_ ? (new_tcon | 0x02) : (new_tcon & ~0x02));
  }
  if (it1) {
    if (int1_pin_ && !int1_prev_) new_tcon |= 0x08;  // IE1
  } else {
    new_tcon = static_cast<std::uint8_t>(int1_pin_ ? (new_tcon | 0x08) : (new_tcon & ~0x08));
  }
  sfr_raw_set(sfr::TCON, new_tcon);
  int0_prev_ = int0_pin_;
  int1_prev_ = int1_pin_;
}

void Core8051::jump_to_isr(std::uint16_t vector, bool high_priority) {
  push(static_cast<std::uint8_t>(pc_ & 0xFF));
  push(static_cast<std::uint8_t>(pc_ >> 8));
  pc_ = vector;
  if (high_priority)
    in_isr_high_ = true;
  else
    in_isr_low_ = true;
  halted_ = false;  // an interrupt wakes a spinning idle loop
  if (profiler_) profiler_->record_isr_enter(vector, static_cast<std::uint64_t>(cycles_));
}

bool Core8051::service_interrupts() {
  const std::uint8_t ie = sfr_raw(sfr::IE);
  if (!(ie & 0x80)) return false;  // EA
  if (in_isr_high_) return false;

  const std::uint8_t ip = sfr_raw(sfr::IP);
  const std::uint8_t tcon = sfr_raw(sfr::TCON);
  const std::uint8_t scon = sfr_raw(sfr::SCON);

  struct Source {
    bool enabled, pending, high;
    std::uint16_t vector;
    std::uint8_t clear_mask;  // TCON flag cleared by hardware (0 = none)
  };
  const Source sources[5] = {
      {(ie & 0x01) != 0, (tcon & 0x02) != 0, (ip & 0x01) != 0, vect::EXT0,
       static_cast<std::uint8_t>((tcon & 0x01) ? 0x02 : 0x00)},
      {(ie & 0x02) != 0, (tcon & 0x20) != 0, (ip & 0x02) != 0, vect::TIMER0, 0x20},
      {(ie & 0x04) != 0, (tcon & 0x08) != 0, (ip & 0x04) != 0, vect::EXT1,
       static_cast<std::uint8_t>((tcon & 0x04) ? 0x08 : 0x00)},
      {(ie & 0x08) != 0, (tcon & 0x80) != 0, (ip & 0x08) != 0, vect::TIMER1, 0x80},
      {(ie & 0x10) != 0, (scon & 0x03) != 0, (ip & 0x10) != 0, vect::SERIAL, 0x00},
  };

  // High-priority pass first, then low (only if not already in a low ISR).
  for (int pass = 0; pass < 2; ++pass) {
    const bool want_high = pass == 0;
    if (!want_high && in_isr_low_) break;
    for (const Source& s : sources) {
      if (!s.enabled || !s.pending || s.high != want_high) continue;
      if (s.clear_mask)
        sfr_raw_set(sfr::TCON, static_cast<std::uint8_t>(sfr_raw(sfr::TCON) & ~s.clear_mask));
      jump_to_isr(s.vector, want_high);
      return true;
    }
  }
  return false;
}

int Core8051::step() {
  if (jammed_) {
    // Crashed core: time advances, peripherals tick, nothing executes.
    cycles_ += 1;
    tick_peripherals(1);
    return 1;
  }
  if (service_interrupts()) {
    sfr_raw_set(sfr::PCON, static_cast<std::uint8_t>(sfr_raw(sfr::PCON) & ~0x01));  // wake
    cycles_ += 2;
    tick_peripherals(2);
    return 2;
  }
  if (sfr_raw(sfr::PCON) & 0x01) {
    // IDL: the CPU clock is gated; peripherals keep running until an
    // enabled interrupt clears the idle latch.
    cycles_ += 1;
    tick_peripherals(1);
    return 1;
  }
  const std::uint16_t pc_before = pc_;
  const std::uint8_t opcode = code_[pc_before];
  const int c = execute();
  cycles_ += c;
  if (profiler_)
    profiler_->record_exec(pc_before, opcode, c, static_cast<std::uint64_t>(cycles_));
  tick_peripherals(c);
  return c;
}

long Core8051::run_cycles(long cycles) {
  long used = 0;
  while (used < cycles) used += step();
  return used;
}

int Core8051::execute() {
  const std::uint16_t op_pc = pc_;
  const std::uint8_t op = fetch();
  int cycles = 1;

  switch (op) {
    case 0x00:  // NOP
      break;

    // ---- jumps / calls --------------------------------------------------
    case 0x01: case 0x21: case 0x41: case 0x61:
    case 0x81: case 0xA1: case 0xC1: case 0xE1: {  // AJMP addr11
      const std::uint8_t lo = fetch();
      const std::uint16_t target =
          static_cast<std::uint16_t>((pc_ & 0xF800) | ((op & 0xE0) << 3) | lo);
      halted_ = target == op_pc;
      pc_ = target;
      cycles = 2;
      break;
    }
    case 0x11: case 0x31: case 0x51: case 0x71:
    case 0x91: case 0xB1: case 0xD1: case 0xF1: {  // ACALL addr11
      const std::uint8_t lo = fetch();
      push(static_cast<std::uint8_t>(pc_ & 0xFF));
      push(static_cast<std::uint8_t>(pc_ >> 8));
      pc_ = static_cast<std::uint16_t>((pc_ & 0xF800) | ((op & 0xE0) << 3) | lo);
      cycles = 2;
      break;
    }
    case 0x02: {  // LJMP addr16
      const std::uint8_t hi = fetch(), lo = fetch();
      const std::uint16_t target = static_cast<std::uint16_t>(hi << 8 | lo);
      halted_ = target == op_pc;
      pc_ = target;
      cycles = 2;
      break;
    }
    case 0x12: {  // LCALL addr16
      const std::uint8_t hi = fetch(), lo = fetch();
      push(static_cast<std::uint8_t>(pc_ & 0xFF));
      push(static_cast<std::uint8_t>(pc_ >> 8));
      pc_ = static_cast<std::uint16_t>(hi << 8 | lo);
      cycles = 2;
      break;
    }
    case 0x22: {  // RET
      const std::uint8_t hi = pop(), lo = pop();
      pc_ = static_cast<std::uint16_t>(hi << 8 | lo);
      cycles = 2;
      break;
    }
    case 0x32: {  // RETI
      const std::uint8_t hi = pop(), lo = pop();
      pc_ = static_cast<std::uint16_t>(hi << 8 | lo);
      if (in_isr_high_)
        in_isr_high_ = false;
      else
        in_isr_low_ = false;
      cycles = 2;
      break;
    }
    case 0x80: {  // SJMP rel
      const auto rel = static_cast<std::int8_t>(fetch());
      const std::uint16_t target = static_cast<std::uint16_t>(pc_ + rel);
      halted_ = target == op_pc;
      pc_ = target;
      cycles = 2;
      break;
    }
    case 0x73:  // JMP @A+DPTR
      pc_ = static_cast<std::uint16_t>(dptr() + a());
      cycles = 2;
      break;

    // ---- conditional branches -------------------------------------------
    case 0x10: {  // JBC bit,rel
      const std::uint8_t bit = fetch();
      const auto rel = static_cast<std::int8_t>(fetch());
      if (bit_read(bit)) {
        bit_write(bit, false);
        pc_ = static_cast<std::uint16_t>(pc_ + rel);
      }
      cycles = 2;
      break;
    }
    case 0x20: {  // JB bit,rel
      const std::uint8_t bit = fetch();
      const auto rel = static_cast<std::int8_t>(fetch());
      if (bit_read(bit)) pc_ = static_cast<std::uint16_t>(pc_ + rel);
      cycles = 2;
      break;
    }
    case 0x30: {  // JNB bit,rel
      const std::uint8_t bit = fetch();
      const auto rel = static_cast<std::int8_t>(fetch());
      if (!bit_read(bit)) pc_ = static_cast<std::uint16_t>(pc_ + rel);
      cycles = 2;
      break;
    }
    case 0x40: {  // JC rel
      const auto rel = static_cast<std::int8_t>(fetch());
      if (flag(kCy)) pc_ = static_cast<std::uint16_t>(pc_ + rel);
      cycles = 2;
      break;
    }
    case 0x50: {  // JNC rel
      const auto rel = static_cast<std::int8_t>(fetch());
      if (!flag(kCy)) pc_ = static_cast<std::uint16_t>(pc_ + rel);
      cycles = 2;
      break;
    }
    case 0x60: {  // JZ rel
      const auto rel = static_cast<std::int8_t>(fetch());
      if (a() == 0) pc_ = static_cast<std::uint16_t>(pc_ + rel);
      cycles = 2;
      break;
    }
    case 0x70: {  // JNZ rel
      const auto rel = static_cast<std::int8_t>(fetch());
      if (a() != 0) pc_ = static_cast<std::uint16_t>(pc_ + rel);
      cycles = 2;
      break;
    }

    // ---- INC / DEC -------------------------------------------------------
    case 0x04: set_a(static_cast<std::uint8_t>(a() + 1)); break;
    case 0x05: {
      const std::uint8_t d = fetch();
      direct_write(d, static_cast<std::uint8_t>(direct_read(d) + 1));
      break;
    }
    case 0x06: case 0x07: {
      const std::uint8_t addr = r(op & 1);
      iram_[addr] = static_cast<std::uint8_t>(iram_[addr] + 1);
      break;
    }
    case 0x08: case 0x09: case 0x0A: case 0x0B:
    case 0x0C: case 0x0D: case 0x0E: case 0x0F:
      set_r(op & 7, static_cast<std::uint8_t>(r(op & 7) + 1));
      break;
    case 0x14: set_a(static_cast<std::uint8_t>(a() - 1)); break;
    case 0x15: {
      const std::uint8_t d = fetch();
      direct_write(d, static_cast<std::uint8_t>(direct_read(d) - 1));
      break;
    }
    case 0x16: case 0x17: {
      const std::uint8_t addr = r(op & 1);
      iram_[addr] = static_cast<std::uint8_t>(iram_[addr] - 1);
      break;
    }
    case 0x18: case 0x19: case 0x1A: case 0x1B:
    case 0x1C: case 0x1D: case 0x1E: case 0x1F:
      set_r(op & 7, static_cast<std::uint8_t>(r(op & 7) - 1));
      break;
    case 0xA3:  // INC DPTR
      set_dptr(static_cast<std::uint16_t>(dptr() + 1));
      cycles = 2;
      break;

    // ---- rotates ----------------------------------------------------------
    case 0x03: set_a(static_cast<std::uint8_t>((a() >> 1) | (a() << 7))); break;  // RR
    case 0x23: set_a(static_cast<std::uint8_t>((a() << 1) | (a() >> 7))); break;  // RL
    case 0x13: {  // RRC
      const bool c = flag(kCy);
      set_flag(kCy, a() & 1);
      set_a(static_cast<std::uint8_t>((a() >> 1) | (c ? 0x80 : 0)));
      break;
    }
    case 0x33: {  // RLC
      const bool c = flag(kCy);
      set_flag(kCy, a() & 0x80);
      set_a(static_cast<std::uint8_t>((a() << 1) | (c ? 1 : 0)));
      break;
    }
    case 0xC4:  // SWAP A
      set_a(static_cast<std::uint8_t>((a() << 4) | (a() >> 4)));
      break;

    // ---- arithmetic --------------------------------------------------------
    case 0x24: do_add(fetch(), false); break;
    case 0x25: do_add(direct_read(fetch()), false); break;
    case 0x26: case 0x27: do_add(iram_[r(op & 1)], false); break;
    case 0x28: case 0x29: case 0x2A: case 0x2B:
    case 0x2C: case 0x2D: case 0x2E: case 0x2F: do_add(r(op & 7), false); break;
    case 0x34: do_add(fetch(), true); break;
    case 0x35: do_add(direct_read(fetch()), true); break;
    case 0x36: case 0x37: do_add(iram_[r(op & 1)], true); break;
    case 0x38: case 0x39: case 0x3A: case 0x3B:
    case 0x3C: case 0x3D: case 0x3E: case 0x3F: do_add(r(op & 7), true); break;
    case 0x94: do_subb(fetch()); break;
    case 0x95: do_subb(direct_read(fetch())); break;
    case 0x96: case 0x97: do_subb(iram_[r(op & 1)]); break;
    case 0x98: case 0x99: case 0x9A: case 0x9B:
    case 0x9C: case 0x9D: case 0x9E: case 0x9F: do_subb(r(op & 7)); break;
    case 0xA4: {  // MUL AB
      const unsigned prod = a() * sfr_raw(sfr::B);
      set_a(static_cast<std::uint8_t>(prod & 0xFF));
      sfr_raw_set(sfr::B, static_cast<std::uint8_t>(prod >> 8));
      set_flag(kCy, false);
      set_flag(kOv, prod > 0xFF);
      cycles = 4;
      break;
    }
    case 0x84: {  // DIV AB
      const std::uint8_t divisor = sfr_raw(sfr::B);
      set_flag(kCy, false);
      if (divisor == 0) {
        set_flag(kOv, true);
      } else {
        const std::uint8_t q = static_cast<std::uint8_t>(a() / divisor);
        const std::uint8_t rem = static_cast<std::uint8_t>(a() % divisor);
        set_a(q);
        sfr_raw_set(sfr::B, rem);
        set_flag(kOv, false);
      }
      cycles = 4;
      break;
    }
    case 0xD4: {  // DA A
      int acc = a();
      if ((acc & 0x0F) > 9 || flag(kAc)) acc += 0x06;
      if (acc > 0xFF) set_flag(kCy, true);
      acc &= 0x1FF;
      if ((acc & 0xF0) > 0x90 || flag(kCy)) acc += 0x60;
      if (acc > 0xFF) set_flag(kCy, true);
      set_a(static_cast<std::uint8_t>(acc & 0xFF));
      break;
    }

    // ---- logic --------------------------------------------------------------
    case 0x42: { const std::uint8_t d = fetch(); direct_write(d, direct_read(d) | a()); break; }
    case 0x43: { const std::uint8_t d = fetch(); direct_write(d, direct_read(d) | fetch()); cycles = 2; break; }
    case 0x44: set_a(a() | fetch()); break;
    case 0x45: set_a(a() | direct_read(fetch())); break;
    case 0x46: case 0x47: set_a(a() | iram_[r(op & 1)]); break;
    case 0x48: case 0x49: case 0x4A: case 0x4B:
    case 0x4C: case 0x4D: case 0x4E: case 0x4F: set_a(a() | r(op & 7)); break;
    case 0x52: { const std::uint8_t d = fetch(); direct_write(d, direct_read(d) & a()); break; }
    case 0x53: { const std::uint8_t d = fetch(); direct_write(d, direct_read(d) & fetch()); cycles = 2; break; }
    case 0x54: set_a(a() & fetch()); break;
    case 0x55: set_a(a() & direct_read(fetch())); break;
    case 0x56: case 0x57: set_a(a() & iram_[r(op & 1)]); break;
    case 0x58: case 0x59: case 0x5A: case 0x5B:
    case 0x5C: case 0x5D: case 0x5E: case 0x5F: set_a(a() & r(op & 7)); break;
    case 0x62: { const std::uint8_t d = fetch(); direct_write(d, direct_read(d) ^ a()); break; }
    case 0x63: { const std::uint8_t d = fetch(); direct_write(d, direct_read(d) ^ fetch()); cycles = 2; break; }
    case 0x64: set_a(a() ^ fetch()); break;
    case 0x65: set_a(a() ^ direct_read(fetch())); break;
    case 0x66: case 0x67: set_a(a() ^ iram_[r(op & 1)]); break;
    case 0x68: case 0x69: case 0x6A: case 0x6B:
    case 0x6C: case 0x6D: case 0x6E: case 0x6F: set_a(a() ^ r(op & 7)); break;
    case 0xE4: set_a(0); break;                                     // CLR A
    case 0xF4: set_a(static_cast<std::uint8_t>(~a())); break;       // CPL A

    // ---- boolean (carry) ------------------------------------------------------
    case 0x72: { const std::uint8_t b = fetch(); set_flag(kCy, flag(kCy) || bit_read(b)); cycles = 2; break; }
    case 0x82: { const std::uint8_t b = fetch(); set_flag(kCy, flag(kCy) && bit_read(b)); cycles = 2; break; }
    case 0xA0: { const std::uint8_t b = fetch(); set_flag(kCy, flag(kCy) || !bit_read(b)); cycles = 2; break; }
    case 0xB0: { const std::uint8_t b = fetch(); set_flag(kCy, flag(kCy) && !bit_read(b)); cycles = 2; break; }
    case 0xA2: set_flag(kCy, bit_read(fetch())); break;       // MOV C,bit
    case 0x92: bit_write(fetch(), flag(kCy)); cycles = 2; break;  // MOV bit,C
    case 0xB2: { const std::uint8_t b = fetch(); bit_write(b, !bit_read(b)); break; }  // CPL bit
    case 0xB3: set_flag(kCy, !flag(kCy)); break;              // CPL C
    case 0xC2: bit_write(fetch(), false); break;              // CLR bit
    case 0xC3: set_flag(kCy, false); break;                   // CLR C
    case 0xD2: bit_write(fetch(), true); break;               // SETB bit
    case 0xD3: set_flag(kCy, true); break;                    // SETB C

    // ---- data moves --------------------------------------------------------------
    case 0x74: set_a(fetch()); break;
    case 0x75: { const std::uint8_t d = fetch(); direct_write(d, fetch()); cycles = 2; break; }
    case 0x76: case 0x77: iram_[r(op & 1)] = fetch(); break;
    case 0x78: case 0x79: case 0x7A: case 0x7B:
    case 0x7C: case 0x7D: case 0x7E: case 0x7F: set_r(op & 7, fetch()); break;
    case 0x85: {  // MOV dir,dir — source operand first in the encoding
      const std::uint8_t src = fetch(), dst = fetch();
      direct_write(dst, direct_read(src));
      cycles = 2;
      break;
    }
    case 0x86: case 0x87: { const std::uint8_t d = fetch(); direct_write(d, iram_[r(op & 1)]); cycles = 2; break; }
    case 0x88: case 0x89: case 0x8A: case 0x8B:
    case 0x8C: case 0x8D: case 0x8E: case 0x8F: {
      const std::uint8_t d = fetch();
      direct_write(d, r(op & 7));
      cycles = 2;
      break;
    }
    case 0x90: {  // MOV DPTR,#imm16
      const std::uint8_t hi = fetch(), lo = fetch();
      set_dptr(static_cast<std::uint16_t>(hi << 8 | lo));
      cycles = 2;
      break;
    }
    case 0xA6: case 0xA7: iram_[r(op & 1)] = direct_read(fetch()); cycles = 2; break;
    case 0xA8: case 0xA9: case 0xAA: case 0xAB:
    case 0xAC: case 0xAD: case 0xAE: case 0xAF:
      set_r(op & 7, direct_read(fetch()));
      cycles = 2;
      break;
    case 0xE5: set_a(direct_read(fetch())); break;
    case 0xE6: case 0xE7: set_a(iram_[r(op & 1)]); break;
    case 0xE8: case 0xE9: case 0xEA: case 0xEB:
    case 0xEC: case 0xED: case 0xEE: case 0xEF: set_a(r(op & 7)); break;
    case 0xF5: direct_write(fetch(), a()); break;
    case 0xF6: case 0xF7: iram_[r(op & 1)] = a(); break;
    case 0xF8: case 0xF9: case 0xFA: case 0xFB:
    case 0xFC: case 0xFD: case 0xFE: case 0xFF: set_r(op & 7, a()); break;

    // ---- code / external memory ----------------------------------------------------
    case 0x83:  // MOVC A,@A+PC
      set_a(code_[static_cast<std::uint16_t>(pc_ + a())]);
      cycles = 2;
      break;
    case 0x93:  // MOVC A,@A+DPTR
      set_a(code_[static_cast<std::uint16_t>(dptr() + a())]);
      cycles = 2;
      break;
    case 0xE0: set_a(xdata_read(dptr())); cycles = 2; break;  // MOVX A,@DPTR
    case 0xE2: case 0xE3:  // MOVX A,@Ri — P2 supplies the page
      set_a(xdata_read(static_cast<std::uint16_t>(sfr_raw(sfr::P2) << 8 | r(op & 1))));
      cycles = 2;
      break;
    case 0xF0: xdata_write(dptr(), a()); cycles = 2; break;   // MOVX @DPTR,A
    case 0xF2: case 0xF3:
      xdata_write(static_cast<std::uint16_t>(sfr_raw(sfr::P2) << 8 | r(op & 1)), a());
      cycles = 2;
      break;

    // ---- stack ------------------------------------------------------------------------
    case 0xC0: push(direct_read(fetch())); cycles = 2; break;
    case 0xD0: direct_write(fetch(), pop()); cycles = 2; break;

    // ---- exchanges ----------------------------------------------------------------------
    case 0xC5: {
      const std::uint8_t d = fetch();
      const std::uint8_t tmp = direct_read(d);
      direct_write(d, a());
      set_a(tmp);
      break;
    }
    case 0xC6: case 0xC7: {
      const std::uint8_t addr = r(op & 1);
      const std::uint8_t tmp = iram_[addr];
      iram_[addr] = a();
      set_a(tmp);
      break;
    }
    case 0xC8: case 0xC9: case 0xCA: case 0xCB:
    case 0xCC: case 0xCD: case 0xCE: case 0xCF: {
      const std::uint8_t tmp = r(op & 7);
      set_r(op & 7, a());
      set_a(tmp);
      break;
    }
    case 0xD6: case 0xD7: {  // XCHD A,@Ri — swap low nibbles
      const std::uint8_t addr = r(op & 1);
      const std::uint8_t mem = iram_[addr];
      iram_[addr] = static_cast<std::uint8_t>((mem & 0xF0) | (a() & 0x0F));
      set_a(static_cast<std::uint8_t>((a() & 0xF0) | (mem & 0x0F)));
      break;
    }

    // ---- compare / loop --------------------------------------------------------------------
    case 0xB4: {  // CJNE A,#imm,rel
      const std::uint8_t imm = fetch();
      const auto rel = static_cast<std::int8_t>(fetch());
      set_flag(kCy, a() < imm);
      if (a() != imm) pc_ = static_cast<std::uint16_t>(pc_ + rel);
      cycles = 2;
      break;
    }
    case 0xB5: {  // CJNE A,dir,rel
      const std::uint8_t val = direct_read(fetch());
      const auto rel = static_cast<std::int8_t>(fetch());
      set_flag(kCy, a() < val);
      if (a() != val) pc_ = static_cast<std::uint16_t>(pc_ + rel);
      cycles = 2;
      break;
    }
    case 0xB6: case 0xB7: {  // CJNE @Ri,#imm,rel
      const std::uint8_t val = iram_[r(op & 1)];
      const std::uint8_t imm = fetch();
      const auto rel = static_cast<std::int8_t>(fetch());
      set_flag(kCy, val < imm);
      if (val != imm) pc_ = static_cast<std::uint16_t>(pc_ + rel);
      cycles = 2;
      break;
    }
    case 0xB8: case 0xB9: case 0xBA: case 0xBB:
    case 0xBC: case 0xBD: case 0xBE: case 0xBF: {  // CJNE Rn,#imm,rel
      const std::uint8_t val = r(op & 7);
      const std::uint8_t imm = fetch();
      const auto rel = static_cast<std::int8_t>(fetch());
      set_flag(kCy, val < imm);
      if (val != imm) pc_ = static_cast<std::uint16_t>(pc_ + rel);
      cycles = 2;
      break;
    }
    case 0xD5: {  // DJNZ dir,rel
      const std::uint8_t d = fetch();
      const auto rel = static_cast<std::int8_t>(fetch());
      const std::uint8_t v = static_cast<std::uint8_t>(direct_read(d) - 1);
      direct_write(d, v);
      if (v != 0) pc_ = static_cast<std::uint16_t>(pc_ + rel);
      cycles = 2;
      break;
    }
    case 0xD8: case 0xD9: case 0xDA: case 0xDB:
    case 0xDC: case 0xDD: case 0xDE: case 0xDF: {  // DJNZ Rn,rel
      const auto rel = static_cast<std::int8_t>(fetch());
      const std::uint8_t v = static_cast<std::uint8_t>(r(op & 7) - 1);
      set_r(op & 7, v);
      if (v != 0) pc_ = static_cast<std::uint16_t>(pc_ + rel);
      cycles = 2;
      break;
    }

    case 0xA5:  // reserved — executes as NOP on most cores
      break;
  }
  return cycles;
}

}  // namespace ascp::mcu
