// core8051.hpp — MCS-51 instruction-set simulator.
//
// The paper's CPU core is the Oregano 8051 soft core (§4.2, [9]): it runs the
// monitoring/communication firmware, while the hardwired DSP does the signal
// processing. This ISS implements the full MCS-51 instruction set, the
// standard SFRs, both timers, the serial port and the five-source interrupt
// system, with machine-cycle accounting (12 clocks per cycle at the paper's
// 20 MHz). Platform peripherals attach through two hooks, matching Fig. 4:
//   * the SFR bus     — unclaimed SFR addresses go to an SfrDevice
//   * the XDATA bus   — MOVX traffic goes to an XdataBus (the 16-bit bridge)
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/state_archive.hpp"

namespace ascp::obs {
class McuProfiler;
}

namespace ascp::mcu {

/// Peripheral visible on the 8051 SFR bus (cache controller, UART extensions
/// — paper Fig. 4 places those on the SFR bus).
class SfrDevice {
 public:
  virtual ~SfrDevice() = default;
  virtual bool owns(std::uint8_t addr) const = 0;
  virtual std::uint8_t read(std::uint8_t addr) = 0;
  virtual void write(std::uint8_t addr, std::uint8_t value) = 0;
};

/// External-data bus (MOVX space). The platform's bridge, SRAM controller,
/// SPI, watchdog and DSP register window all live here.
class XdataBus {
 public:
  virtual ~XdataBus() = default;
  virtual std::uint8_t read(std::uint16_t addr) = 0;
  virtual void write(std::uint16_t addr, std::uint8_t value) = 0;
};

/// Standard SFR addresses used by the core.
namespace sfr {
constexpr std::uint8_t P0 = 0x80, SP = 0x81, DPL = 0x82, DPH = 0x83, PCON = 0x87;
constexpr std::uint8_t TCON = 0x88, TMOD = 0x89, TL0 = 0x8A, TL1 = 0x8B, TH0 = 0x8C, TH1 = 0x8D;
constexpr std::uint8_t P1 = 0x90, SCON = 0x98, SBUF = 0x99;
constexpr std::uint8_t P2 = 0xA0, IE = 0xA8, P3 = 0xB0, IP = 0xB8;
constexpr std::uint8_t PSW = 0xD0, ACC = 0xE0, B = 0xF0;
}  // namespace sfr

/// Interrupt vector addresses.
namespace vect {
constexpr std::uint16_t RESET = 0x00, EXT0 = 0x03, TIMER0 = 0x0B, EXT1 = 0x13, TIMER1 = 0x1B,
                        SERIAL = 0x23;
}

class Core8051 {
 public:
  Core8051();

  // ---- program loading -------------------------------------------------
  /// Copy a program image into code memory at `base`.
  void load_program(const std::vector<std::uint8_t>& image, std::uint16_t base = 0);
  std::uint8_t code_byte(std::uint16_t addr) const { return code_[addr]; }
  /// Writable code view — used by the program-RAM download path (the paper's
  /// "big RAM used as Program Storage" prototype configuration).
  void poke_code(std::uint16_t addr, std::uint8_t value) { code_[addr] = value; }

  // ---- execution -------------------------------------------------------
  /// Execute one instruction; returns machine cycles consumed (≥1).
  int step();
  /// Run until `cycles` machine cycles have elapsed; returns cycles used.
  long run_cycles(long cycles);
  /// Total machine cycles since reset.
  long cycle_count() const { return cycles_; }

  void reset();

  // ---- register access (tests / monitoring) -----------------------------
  std::uint16_t pc() const { return pc_; }
  void set_pc(std::uint16_t pc) { pc_ = pc; }
  std::uint8_t acc() const { return sfr_raw(sfr::ACC); }
  std::uint8_t psw() const { return sfr_raw(sfr::PSW); }
  std::uint8_t reg(int n) const;          ///< R0..R7 of the active bank
  std::uint8_t iram(std::uint8_t a) const { return iram_[a]; }
  void set_iram(std::uint8_t a, std::uint8_t v) { iram_[a] = v; }
  bool carry() const { return (psw() >> 7) & 1; }

  /// Direct SFR access from the outside (monitor / tests).
  std::uint8_t read_sfr(std::uint8_t addr) { return sfr_read(addr); }
  void write_sfr(std::uint8_t addr, std::uint8_t v) { sfr_write(addr, v); }

  // ---- platform attachment ----------------------------------------------
  void attach_sfr_device(SfrDevice* dev) { sfr_devices_.push_back(dev); }
  void set_xdata_bus(XdataBus* bus) { xdata_ = bus; }

  /// Serial-port host hooks: on_tx fires when the UART finishes sending a
  /// byte; inject_rx delivers one received byte (REN must be set).
  void set_on_tx(std::function<void(std::uint8_t)> cb) { on_tx_ = std::move(cb); }
  bool inject_rx(std::uint8_t byte);

  /// 9-bit reception for modes 2/3 (RS485 multiprocessor operation):
  /// `bit9` lands in RB8. With SM2 set, frames whose 9th bit is 0 are
  /// dropped silently (address filtering) — the call still returns true
  /// because the wire delivered the frame.
  bool inject_rx9(std::uint8_t byte, bool bit9);

  /// TB8 value attached to the byte most recently passed to on_tx (modes
  /// 2/3; always false in mode 1).
  bool last_tx_bit9() const { return last_tx_bit9_; }

  /// External interrupt pins (INT0/INT1, active level/edge per TCON).
  void set_int0(bool asserted) { int0_pin_ = asserted; }
  void set_int1(bool asserted) { int1_pin_ = asserted; }

  /// True when the CPU executed an instruction that looped to itself
  /// (SJMP $) — the conventional firmware "done/idle" marker.
  bool halted() const { return halted_; }

  /// Fault injection: crash the core. Time and peripherals keep running but
  /// no instruction executes (and no watchdog kick happens) until reset() —
  /// the fault the watchdog exists to catch.
  void jam() { jammed_ = true; }
  bool jammed() const { return jammed_; }

  /// Attach an execution profiler (null detaches). The core reports every
  /// retired instruction and interrupt dispatch; the profiler never feeds
  /// back, so firmware behaviour is unchanged.
  void set_profiler(obs::McuProfiler* profiler) { profiler_ = profiler; }
  obs::McuProfiler* profiler() const { return profiler_; }

  /// Architectural state for checkpoint/restore. Attached buses, devices and
  /// hooks are wiring, not state — the restorer re-attaches them.
  void serialize_state(StateArchive& ar) {
    ar.bytes(code_.data(), code_.size());
    ar.bytes(iram_.data(), iram_.size());
    ar.bytes(sfrs_.data(), sfrs_.size());
    ar.value(pc_);
    std::int64_t cyc = cycles_;
    ar.value(cyc);
    cycles_ = static_cast<long>(cyc);
    ar.value(halted_);
    ar.value(jammed_);
    ar.value(in_isr_low_);
    ar.value(in_isr_high_);
    ar.value(int0_pin_);
    ar.value(int1_pin_);
    ar.value(int0_prev_);
    ar.value(int1_prev_);
    std::int32_t txc = tx_countdown_;
    ar.value(txc);
    tx_countdown_ = txc;
    ar.value(tx_shift_);
    ar.value(tx_shift_bit9_);
    ar.value(last_tx_bit9_);
    ar.value(rx_buf_);
  }

 private:
  // Memory spaces.
  std::array<std::uint8_t, 65536> code_{};
  std::array<std::uint8_t, 256> iram_{};
  std::array<std::uint8_t, 128> sfrs_{};  // 0x80..0xFF backing store

  XdataBus* xdata_ = nullptr;
  std::vector<SfrDevice*> sfr_devices_;
  std::function<void(std::uint8_t)> on_tx_;

  std::uint16_t pc_ = 0;
  long cycles_ = 0;
  bool halted_ = false;
  bool jammed_ = false;
  obs::McuProfiler* profiler_ = nullptr;

  // Interrupt bookkeeping.
  bool in_isr_low_ = false, in_isr_high_ = false;
  bool int0_pin_ = false, int1_pin_ = false;
  bool int0_prev_ = false, int1_prev_ = false;

  // Serial engine.
  int tx_countdown_ = -1;
  std::uint8_t tx_shift_ = 0;
  bool tx_shift_bit9_ = false;
  bool last_tx_bit9_ = false;
  std::uint8_t rx_buf_ = 0;

  // ---- helpers -----------------------------------------------------------
  std::uint8_t sfr_raw(std::uint8_t addr) const { return sfrs_[addr - 0x80]; }
  void sfr_raw_set(std::uint8_t addr, std::uint8_t v) { sfrs_[addr - 0x80] = v; }

  std::uint8_t sfr_read(std::uint8_t addr);
  void sfr_write(std::uint8_t addr, std::uint8_t value);

  std::uint8_t direct_read(std::uint8_t addr);
  void direct_write(std::uint8_t addr, std::uint8_t value);

  bool bit_read(std::uint8_t bit_addr);
  void bit_write(std::uint8_t bit_addr, bool value);

  std::uint8_t fetch() { return code_[pc_++]; }
  std::uint16_t dptr() const;
  void set_dptr(std::uint16_t v);

  std::uint8_t a() const { return sfr_raw(sfr::ACC); }
  void set_a(std::uint8_t v) { sfr_raw_set(sfr::ACC, v); }

  std::uint8_t reg_addr(int n) const;
  std::uint8_t r(int n) { return iram_[reg_addr(n)]; }
  void set_r(int n, std::uint8_t v) { iram_[reg_addr(n)] = v; }

  void push(std::uint8_t v);
  std::uint8_t pop();

  void set_flag(int bit, bool v);
  bool flag(int bit) const { return (psw() >> bit) & 1; }

  void do_add(std::uint8_t operand, bool with_carry);
  void do_subb(std::uint8_t operand);
  void update_parity();

  std::uint8_t xdata_read(std::uint16_t addr);
  void xdata_write(std::uint16_t addr, std::uint8_t value);

  void tick_peripherals(int machine_cycles);
  void tick_timer(int idx, int cycles);
  bool service_interrupts();
  void jump_to_isr(std::uint16_t vector, bool high_priority);

  int execute();  ///< decode+execute one instruction, returns cycles
};

}  // namespace ascp::mcu
