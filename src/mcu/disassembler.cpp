#include "mcu/disassembler.hpp"

#include <cstdio>

namespace ascp::mcu {

namespace {

std::string hex8(std::uint8_t v) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "0x%02X", v);
  return buf;
}

std::string hex16(std::uint16_t v) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "0x%04X", v);
  return buf;
}

std::string reg(int n) { return "R" + std::string(1, static_cast<char>('0' + n)); }
std::string ind(int n) { return n ? "@R1" : "@R0"; }

}  // namespace

DisasmInsn disassemble_one(std::span<const std::uint8_t> code, std::uint16_t addr) {
  auto byte = [&](std::uint16_t a) -> std::uint8_t {
    return a < code.size() ? code[a] : 0;
  };
  const std::uint8_t op = byte(addr);
  const std::uint8_t b1 = byte(static_cast<std::uint16_t>(addr + 1));
  const std::uint8_t b2 = byte(static_cast<std::uint16_t>(addr + 2));

  DisasmInsn out;
  out.addr = addr;

  auto one = [&](std::string text) {
    out.size = 1;
    out.text = std::move(text);
  };
  auto two = [&](std::string text) {
    out.size = 2;
    out.text = std::move(text);
  };
  auto three = [&](std::string text) {
    out.size = 3;
    out.text = std::move(text);
  };
  // Branch target from a relative byte at the end of a `size`-byte insn.
  auto rel_target = [&](int size, std::uint8_t rel) {
    return hex16(static_cast<std::uint16_t>(addr + size + static_cast<std::int8_t>(rel)));
  };

  // AJMP / ACALL: 3 page bits live in the opcode.
  if ((op & 0x1F) == 0x01 || (op & 0x1F) == 0x11) {
    const std::uint16_t next = static_cast<std::uint16_t>(addr + 2);
    const std::uint16_t target =
        static_cast<std::uint16_t>((next & 0xF800) | (static_cast<std::uint16_t>(op & 0xE0) << 3) | b1);
    two(((op & 0x1F) == 0x01 ? "AJMP " : "ACALL ") + hex16(target));
    return out;
  }

  switch (op) {
    case 0x00: one("NOP"); break;
    case 0x02: three("LJMP " + hex16(static_cast<std::uint16_t>(b1 << 8 | b2))); break;
    case 0x03: one("RR A"); break;
    case 0x04: one("INC A"); break;
    case 0x05: two("INC " + hex8(b1)); break;
    case 0x06: case 0x07: one("INC " + ind(op & 1)); break;
    case 0x08: case 0x09: case 0x0A: case 0x0B:
    case 0x0C: case 0x0D: case 0x0E: case 0x0F: one("INC " + reg(op & 7)); break;

    case 0x10: three("JBC " + hex8(b1) + ", " + rel_target(3, b2)); break;
    case 0x12: three("LCALL " + hex16(static_cast<std::uint16_t>(b1 << 8 | b2))); break;
    case 0x13: one("RRC A"); break;
    case 0x14: one("DEC A"); break;
    case 0x15: two("DEC " + hex8(b1)); break;
    case 0x16: case 0x17: one("DEC " + ind(op & 1)); break;
    case 0x18: case 0x19: case 0x1A: case 0x1B:
    case 0x1C: case 0x1D: case 0x1E: case 0x1F: one("DEC " + reg(op & 7)); break;

    case 0x20: three("JB " + hex8(b1) + ", " + rel_target(3, b2)); break;
    case 0x22: one("RET"); break;
    case 0x23: one("RL A"); break;
    case 0x24: two("ADD A, #" + hex8(b1)); break;
    case 0x25: two("ADD A, " + hex8(b1)); break;
    case 0x26: case 0x27: one("ADD A, " + ind(op & 1)); break;
    case 0x28: case 0x29: case 0x2A: case 0x2B:
    case 0x2C: case 0x2D: case 0x2E: case 0x2F: one("ADD A, " + reg(op & 7)); break;

    case 0x30: three("JNB " + hex8(b1) + ", " + rel_target(3, b2)); break;
    case 0x32: one("RETI"); break;
    case 0x33: one("RLC A"); break;
    case 0x34: two("ADDC A, #" + hex8(b1)); break;
    case 0x35: two("ADDC A, " + hex8(b1)); break;
    case 0x36: case 0x37: one("ADDC A, " + ind(op & 1)); break;
    case 0x38: case 0x39: case 0x3A: case 0x3B:
    case 0x3C: case 0x3D: case 0x3E: case 0x3F: one("ADDC A, " + reg(op & 7)); break;

    case 0x40: two("JC " + rel_target(2, b1)); break;
    case 0x42: two("ORL " + hex8(b1) + ", A"); break;
    case 0x43: three("ORL " + hex8(b1) + ", #" + hex8(b2)); break;
    case 0x44: two("ORL A, #" + hex8(b1)); break;
    case 0x45: two("ORL A, " + hex8(b1)); break;
    case 0x46: case 0x47: one("ORL A, " + ind(op & 1)); break;
    case 0x48: case 0x49: case 0x4A: case 0x4B:
    case 0x4C: case 0x4D: case 0x4E: case 0x4F: one("ORL A, " + reg(op & 7)); break;

    case 0x50: two("JNC " + rel_target(2, b1)); break;
    case 0x52: two("ANL " + hex8(b1) + ", A"); break;
    case 0x53: three("ANL " + hex8(b1) + ", #" + hex8(b2)); break;
    case 0x54: two("ANL A, #" + hex8(b1)); break;
    case 0x55: two("ANL A, " + hex8(b1)); break;
    case 0x56: case 0x57: one("ANL A, " + ind(op & 1)); break;
    case 0x58: case 0x59: case 0x5A: case 0x5B:
    case 0x5C: case 0x5D: case 0x5E: case 0x5F: one("ANL A, " + reg(op & 7)); break;

    case 0x60: two("JZ " + rel_target(2, b1)); break;
    case 0x62: two("XRL " + hex8(b1) + ", A"); break;
    case 0x63: three("XRL " + hex8(b1) + ", #" + hex8(b2)); break;
    case 0x64: two("XRL A, #" + hex8(b1)); break;
    case 0x65: two("XRL A, " + hex8(b1)); break;
    case 0x66: case 0x67: one("XRL A, " + ind(op & 1)); break;
    case 0x68: case 0x69: case 0x6A: case 0x6B:
    case 0x6C: case 0x6D: case 0x6E: case 0x6F: one("XRL A, " + reg(op & 7)); break;

    case 0x70: two("JNZ " + rel_target(2, b1)); break;
    case 0x72: two("ORL C, " + hex8(b1)); break;
    case 0x73: one("JMP @A+DPTR"); break;
    case 0x74: two("MOV A, #" + hex8(b1)); break;
    case 0x75: three("MOV " + hex8(b1) + ", #" + hex8(b2)); break;
    case 0x76: case 0x77: two("MOV " + ind(op & 1) + ", #" + hex8(b1)); break;
    case 0x78: case 0x79: case 0x7A: case 0x7B:
    case 0x7C: case 0x7D: case 0x7E: case 0x7F:
      two("MOV " + reg(op & 7) + ", #" + hex8(b1));
      break;

    case 0x80: two("SJMP " + rel_target(2, b1)); break;
    case 0x82: two("ANL C, " + hex8(b1)); break;
    case 0x83: one("MOVC A, @A+PC"); break;
    case 0x84: one("DIV AB"); break;
    // MOV dir,dir encodes source first; text order is destination first.
    case 0x85: three("MOV " + hex8(b2) + ", " + hex8(b1)); break;
    case 0x86: case 0x87: two("MOV " + hex8(b1) + ", " + ind(op & 1)); break;
    case 0x88: case 0x89: case 0x8A: case 0x8B:
    case 0x8C: case 0x8D: case 0x8E: case 0x8F:
      two("MOV " + hex8(b1) + ", " + reg(op & 7));
      break;

    case 0x90: three("MOV DPTR, #" + hex16(static_cast<std::uint16_t>(b1 << 8 | b2))); break;
    case 0x92: two("MOV " + hex8(b1) + ", C"); break;
    case 0x93: one("MOVC A, @A+DPTR"); break;
    case 0x94: two("SUBB A, #" + hex8(b1)); break;
    case 0x95: two("SUBB A, " + hex8(b1)); break;
    case 0x96: case 0x97: one("SUBB A, " + ind(op & 1)); break;
    case 0x98: case 0x99: case 0x9A: case 0x9B:
    case 0x9C: case 0x9D: case 0x9E: case 0x9F: one("SUBB A, " + reg(op & 7)); break;

    case 0xA0: two("ORL C, /" + hex8(b1)); break;
    case 0xA2: two("MOV C, " + hex8(b1)); break;
    case 0xA3: one("INC DPTR"); break;
    case 0xA4: one("MUL AB"); break;
    case 0xA5: one("DB 0xA5"); break;  // the one undefined MCS-51 opcode
    case 0xA6: case 0xA7: two("MOV " + ind(op & 1) + ", " + hex8(b1)); break;
    case 0xA8: case 0xA9: case 0xAA: case 0xAB:
    case 0xAC: case 0xAD: case 0xAE: case 0xAF:
      two("MOV " + reg(op & 7) + ", " + hex8(b1));
      break;

    case 0xB0: two("ANL C, /" + hex8(b1)); break;
    case 0xB2: two("CPL " + hex8(b1)); break;
    case 0xB3: one("CPL C"); break;
    case 0xB4: three("CJNE A, #" + hex8(b1) + ", " + rel_target(3, b2)); break;
    case 0xB5: three("CJNE A, " + hex8(b1) + ", " + rel_target(3, b2)); break;
    case 0xB6: case 0xB7:
      three("CJNE " + ind(op & 1) + ", #" + hex8(b1) + ", " + rel_target(3, b2));
      break;
    case 0xB8: case 0xB9: case 0xBA: case 0xBB:
    case 0xBC: case 0xBD: case 0xBE: case 0xBF:
      three("CJNE " + reg(op & 7) + ", #" + hex8(b1) + ", " + rel_target(3, b2));
      break;

    case 0xC0: two("PUSH " + hex8(b1)); break;
    case 0xC2: two("CLR " + hex8(b1)); break;
    case 0xC3: one("CLR C"); break;
    case 0xC4: one("SWAP A"); break;
    case 0xC5: two("XCH A, " + hex8(b1)); break;
    case 0xC6: case 0xC7: one("XCH A, " + ind(op & 1)); break;
    case 0xC8: case 0xC9: case 0xCA: case 0xCB:
    case 0xCC: case 0xCD: case 0xCE: case 0xCF: one("XCH A, " + reg(op & 7)); break;

    case 0xD0: two("POP " + hex8(b1)); break;
    case 0xD2: two("SETB " + hex8(b1)); break;
    case 0xD3: one("SETB C"); break;
    case 0xD4: one("DA A"); break;
    case 0xD5: three("DJNZ " + hex8(b1) + ", " + rel_target(3, b2)); break;
    case 0xD6: case 0xD7: one("XCHD A, " + ind(op & 1)); break;
    case 0xD8: case 0xD9: case 0xDA: case 0xDB:
    case 0xDC: case 0xDD: case 0xDE: case 0xDF:
      two("DJNZ " + reg(op & 7) + ", " + rel_target(2, b1));
      break;

    case 0xE0: one("MOVX A, @DPTR"); break;
    case 0xE2: case 0xE3: one("MOVX A, " + ind(op & 1)); break;
    case 0xE4: one("CLR A"); break;
    case 0xE5: two("MOV A, " + hex8(b1)); break;
    case 0xE6: case 0xE7: one("MOV A, " + ind(op & 1)); break;
    case 0xE8: case 0xE9: case 0xEA: case 0xEB:
    case 0xEC: case 0xED: case 0xEE: case 0xEF: one("MOV A, " + reg(op & 7)); break;

    case 0xF0: one("MOVX @DPTR, A"); break;
    case 0xF2: case 0xF3: one("MOVX " + ind(op & 1) + ", A"); break;
    case 0xF4: one("CPL A"); break;
    case 0xF5: two("MOV " + hex8(b1) + ", A"); break;
    case 0xF6: case 0xF7: one("MOV " + ind(op & 1) + ", A"); break;
    case 0xF8: case 0xF9: case 0xFA: case 0xFB:
    case 0xFC: case 0xFD: case 0xFE: case 0xFF: one("MOV " + reg(op & 7) + ", A"); break;

    default: one("DB " + hex8(op)); break;  // unreachable; keeps the switch total
  }
  return out;
}

std::string disassemble_range(std::span<const std::uint8_t> code, std::uint16_t begin,
                              std::uint16_t end) {
  std::string out = "ORG " + hex16(begin) + "\n";
  std::uint32_t addr = begin;
  while (addr < end) {
    const DisasmInsn insn = disassemble_one(code, static_cast<std::uint16_t>(addr));
    if (addr + static_cast<std::uint32_t>(insn.size) > end) {
      // Trailing partial instruction (e.g. data appended to code): keep the
      // byte-for-byte contract by flushing what's left as data.
      for (; addr < end; ++addr)
        out += "DB " + hex8(addr < code.size() ? code[addr] : 0) + "\n";
      break;
    }
    out += insn.text + "\n";
    addr += static_cast<std::uint32_t>(insn.size);
  }
  return out;
}

}  // namespace ascp::mcu
