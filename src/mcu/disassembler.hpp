// disassembler.hpp — MCS-51 disassembler (inverse of Assembler).
//
// Decodes code images back into assembler-ready source: every line it emits
// re-assembles to the exact bytes it was decoded from, which is what the
// conformance fuzzer's assemble → disassemble → assemble round-trip checks.
// Branch targets are printed as absolute addresses (the assembler re-derives
// the relative/paged encodings), the one undefined opcode (0xA5) round-trips
// as a DB directive, and operands use plain hex so no symbol table is needed.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace ascp::mcu {

struct DisasmInsn {
  std::uint16_t addr = 0;  ///< address the instruction was decoded at
  int size = 1;            ///< encoded length in bytes (1..3)
  std::string text;        ///< assembler-ready line, e.g. "MOV A, #0x3F"
};

/// Decode one instruction at `addr`. Reads past the end of `code` yield 0
/// (matching the ISS's zero-initialized code store).
DisasmInsn disassemble_one(std::span<const std::uint8_t> code, std::uint16_t addr);

/// Disassemble [begin, end) into re-assemblable source, one instruction per
/// line, starting with an ORG directive. An instruction straddling `end` is
/// flushed as DB lines so the output always covers exactly [begin, end).
std::string disassemble_range(std::span<const std::uint8_t> code, std::uint16_t begin,
                              std::uint16_t end);

}  // namespace ascp::mcu
