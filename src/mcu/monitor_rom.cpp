#include "mcu/monitor_rom.hpp"

#include "mcu/assembler.hpp"

namespace ascp::mcu {

std::string MonitorRom::source() {
  // R2:R3 hold the address operand; A carries data. uart_rx preserves the
  // read-before-clear ordering required by the instantaneous host link.
  return R"(
        ORG 0
start:  MOV SP,#40h
        MOV SCON,#50h        ; UART mode 1, receiver enabled
        MOV TMOD,#20h
        MOV TH1,#0FDh
        SETB TR1

main:   LCALL uart_rx        ; command byte
        CJNE A,#'P',notping
        MOV A,#'p'
        LCALL uart_tx
        MOV A,#51h           ; 'Q'
        LCALL uart_tx
        SJMP main
notping:
        CJNE A,#'R',notread
        LCALL rx_addr
        MOVX A,@DPTR
        MOV R4,A
        MOV A,#'r'
        LCALL uart_tx
        MOV A,R4
        LCALL uart_tx
        SJMP main
notread:
        CJNE A,#'W',notwrite
        LCALL rx_addr
        LCALL uart_rx        ; data byte
        MOVX @DPTR,A
        MOV A,#'w'
        LCALL uart_tx
        SJMP main
notwrite:
        MOV A,#'?'
        LCALL uart_tx
        SJMP main

rx_addr:                      ; receive addr_hi addr_lo into DPTR
        LCALL uart_rx
        MOV DPH,A
        LCALL uart_rx
        MOV DPL,A
        RET

uart_rx:
        JNB RI,uart_rx       ;@loop-wait
        MOV A,SBUF           ; read before clearing RI (host may refill)
        CLR RI
        RET
uart_tx:
        MOV SBUF,A
txw:    JNB TI,txw           ;@loop-wait
        CLR TI
        RET
)";
}

std::vector<std::uint8_t> MonitorRom::image() {
  Assembler as;
  return as.assemble(source()).image;
}

std::optional<std::vector<std::uint8_t>> MonitorHost::transact(
    const std::vector<std::uint8_t>& tx, std::size_t reply_len) {
  const std::size_t base = link_.received().size();
  link_.send(tx);
  long used = 0;
  while (link_.received().size() < base + reply_len && used < timeout_) {
    used += core_.step();
    link_.pump(core_);
  }
  if (link_.received().size() < base + reply_len) return std::nullopt;
  return std::vector<std::uint8_t>(link_.received().begin() + static_cast<long>(base),
                                   link_.received().end());
}

bool MonitorHost::ping() {
  const auto reply = transact({'P'}, 2);
  return reply && (*reply)[0] == 'p' && (*reply)[1] == 0x51;
}

std::optional<std::uint8_t> MonitorHost::read_byte(std::uint16_t addr) {
  const auto reply = transact({'R', static_cast<std::uint8_t>(addr >> 8),
                               static_cast<std::uint8_t>(addr & 0xFF)},
                              2);
  if (!reply || (*reply)[0] != 'r') return std::nullopt;
  return (*reply)[1];
}

bool MonitorHost::write_byte(std::uint16_t addr, std::uint8_t value) {
  const auto reply = transact({'W', static_cast<std::uint8_t>(addr >> 8),
                               static_cast<std::uint8_t>(addr & 0xFF), value},
                              1);
  return reply && (*reply)[0] == 'w';
}

std::optional<std::uint16_t> MonitorHost::read_word(std::uint16_t addr) {
  const auto lo = read_byte(addr);  // latches the word in the bridge
  if (!lo) return std::nullopt;
  const auto hi = read_byte(static_cast<std::uint16_t>(addr + 1));
  if (!hi) return std::nullopt;
  return static_cast<std::uint16_t>(*hi << 8 | *lo);
}

bool MonitorHost::write_word(std::uint16_t addr, std::uint16_t value) {
  if (!write_byte(addr, static_cast<std::uint8_t>(value & 0xFF))) return false;
  return write_byte(static_cast<std::uint16_t>(addr + 1),
                    static_cast<std::uint8_t>(value >> 8));
}

}  // namespace ascp::mcu
