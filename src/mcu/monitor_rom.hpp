// monitor_rom.hpp — the resident monitor firmware and its host protocol.
//
// Paper §4.2: "during prototyping phase, the system can be linked to a PC
// and through a graphical interface manual trimming can be performed and
// all intermediate data of the chain can be accessed."  The GUI needs a
// wire protocol; this module provides both ends of it:
//
//   * MonitorRom — assembles the resident 8051 firmware: a command
//     interpreter on the UART that can read/write any XDATA address
//     (register fabric, bridge peripherals, SRAM trace) and report alive.
//   * MonitorHost — the PC side: typed helpers that frame commands, drive
//     the link and decode replies.
//
// Wire format (all multi-byte fields big-endian):
//   host → MCU : 'R' addr_hi addr_lo            read one XDATA byte
//                'W' addr_hi addr_lo data       write one XDATA byte
//                'P'                             ping
//   MCU → host : 'r' data        read reply
//                'w'             write acknowledge
//                'p' 0x51        ping reply ("Q")
// Unknown commands answer '?'. Word-register access is composed from two
// byte transactions by the host (low byte first — the bridge read latch
// keeps the pair coherent).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mcu/core8051.hpp"
#include "mcu/uart.hpp"

namespace ascp::mcu {

class MonitorRom {
 public:
  /// Assembly source of the monitor.
  static std::string source();
  /// Assembled image (ORG 0).
  static std::vector<std::uint8_t> image();
};

/// Host-side protocol driver. Owns no hardware: it frames bytes into the
/// HostLink and steps the core until the reply arrives.
class MonitorHost {
 public:
  MonitorHost(Core8051& core, HostLink& link) : core_(core), link_(link) {}

  /// Budget of machine cycles allowed per transaction before giving up.
  void set_timeout_cycles(long cycles) { timeout_ = cycles; }

  bool ping();
  std::optional<std::uint8_t> read_byte(std::uint16_t addr);
  bool write_byte(std::uint16_t addr, std::uint8_t value);

  /// 16-bit register access composed of coherent byte transactions
  /// (low byte first on read — the bridge latches the word).
  std::optional<std::uint16_t> read_word(std::uint16_t addr);
  bool write_word(std::uint16_t addr, std::uint16_t value);

 private:
  std::optional<std::vector<std::uint8_t>> transact(const std::vector<std::uint8_t>& tx,
                                                    std::size_t reply_len);

  Core8051& core_;
  HostLink& link_;
  long timeout_ = 2'000'000;
};

}  // namespace ascp::mcu
