#include "mcu/rs485.hpp"

namespace ascp::mcu {

std::size_t Rs485Bus::attach(Core8051& node) {
  const std::size_t index = nodes_.size();
  nodes_.push_back(&node);
  node.set_on_tx([this, index, &node](std::uint8_t byte) {
    log_.push_back(NodeByte{index, byte, node.last_tx_bit9()});
  });
  return index;
}

bool Rs485Bus::pump() {
  if (cooldown_ > 0) {
    --cooldown_;
    return false;
  }
  if (tx_queue_.empty()) return false;
  const Frame f = tx_queue_.front();
  // The wire is broadcast: all nodes must be able to take the frame (a node
  // with RI still set and SM2 clear would lose it — hold the frame until
  // every addressable receiver is ready, like a polled master would).
  for (Core8051* node : nodes_) {
    const std::uint8_t scon = node->read_sfr(sfr::SCON);
    const bool filtering = (scon & 0x20) && (scon & 0x80) && !f.bit9;
    if (!filtering && (scon & 0x10) && (scon & 0x01)) return false;  // busy
  }
  for (Core8051* node : nodes_) node->inject_rx9(f.byte, f.bit9);
  tx_queue_.pop_front();
  cooldown_ = frame_gap_;
  return true;
}

}  // namespace ascp::mcu
