// rs485.hpp — multi-drop serial bus (paper §4.2).
//
// "Software download is also possible by means of RS485 (in place of simple
// RS232 protocol implemented by the UART)" — several conditioning chips can
// hang off one differential pair, each with a node address, using the
// 8051's 9-bit multiprocessor mode: address frames carry the ninth bit set
// and wake every receiver; data frames (ninth bit clear) are only seen by
// the node that dropped SM2 after recognizing its address.
//
// Rs485Bus models the shared wire: every frame the master sends reaches
// every node; everything any node transmits reaches the master log (and is
// tagged with the transmitting node).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "mcu/core8051.hpp"

namespace ascp::mcu {

class Rs485Bus {
 public:
  /// Attach a node; installs its TX hook. Returns the node index.
  std::size_t attach(Core8051& node);

  /// Master-side transmit: address frame (9th bit set) to select a node…
  void send_address(std::uint8_t address) { tx_queue_.push_back({address, true}); }
  /// …then data frames (9th bit clear) only the selected node receives.
  void send_data(std::uint8_t byte) { tx_queue_.push_back({byte, false}); }
  void send_data(const std::vector<std::uint8_t>& bytes) {
    for (auto b : bytes) send_data(b);
  }

  /// Deliver the next queued frame to every node (a frame is consumed only
  /// when every listening node could accept it). Call once per node machine
  /// cycle (or simulation slice): a real frame occupies ~10 bit times on the
  /// wire, so deliveries are paced `frame_gap()` calls apart — without the
  /// gap, a data frame could land before the addressed node's firmware has
  /// had time to drop SM2.
  bool pump();

  int frame_gap() const { return frame_gap_; }
  void set_frame_gap(int calls) { frame_gap_ = calls; }

  /// Everything the nodes transmitted, in arrival order.
  struct NodeByte {
    std::size_t node;
    std::uint8_t byte;
    bool bit9;
  };
  const std::vector<NodeByte>& master_log() const { return log_; }
  void clear_log() { log_.clear(); }

  bool idle() const { return tx_queue_.empty(); }

 private:
  struct Frame {
    std::uint8_t byte;
    bool bit9;
  };

  std::vector<Core8051*> nodes_;
  std::deque<Frame> tx_queue_;
  std::vector<NodeByte> log_;
  int frame_gap_ = 320;  ///< ~one 9-bit frame at the fastest baud
  int cooldown_ = 0;
};

}  // namespace ascp::mcu
