#include "mcu/spi.hpp"

namespace ascp::mcu {

std::uint16_t SpiMaster::read_reg(std::uint16_t reg) {
  switch (reg) {
    case kRegData:
      done_ = false;
      return rx_;
    case kRegCtrl:
      return cs_ ? 1 : 0;
    case kRegStatus:
      return done_ ? 1 : 0;
    default:
      return 0xFFFF;
  }
}

void SpiMaster::write_reg(std::uint16_t reg, std::uint16_t value) {
  switch (reg) {
    case kRegData:
      if (slave_ && cs_) {
        rx_ = slave_->transfer(static_cast<std::uint8_t>(value & 0xFF));
      } else {
        rx_ = 0xFF;  // nothing on the bus
      }
      done_ = true;
      break;
    case kRegCtrl: {
      const bool new_cs = value & 1;
      if (slave_ && new_cs != cs_) slave_->select(new_cs);
      cs_ = new_cs;
      break;
    }
    default:
      break;
  }
}

SpiEeprom::SpiEeprom(std::size_t size_bytes) : mem_(size_bytes, 0xFF) {}

void SpiEeprom::select(bool asserted) {
  if (asserted) state_ = State::Idle;
  // Deassert completes any in-flight write page cycle (instantaneous here).
  if (!asserted) state_ = State::Idle;
}

std::uint8_t SpiEeprom::transfer(std::uint8_t mosi) {
  switch (state_) {
    case State::Idle:
      command_ = mosi;
      switch (command_) {
        case 0x06: write_enabled_ = true; return 0xFF;   // WREN
        case 0x04: write_enabled_ = false; return 0xFF;  // WRDI
        case 0x05: return write_enabled_ ? 0x02 : 0x00;  // RDSR: WEL bit
        case 0x02:                                        // WRITE
        case 0x03:                                        // READ
          state_ = State::Addr1;
          return 0xFF;
        default:
          return 0xFF;  // unknown command ignored
      }
    case State::Addr1:
      addr_ = static_cast<std::uint16_t>(mosi << 8);
      state_ = State::Addr2;
      return 0xFF;
    case State::Addr2:
      addr_ = static_cast<std::uint16_t>(addr_ | mosi);
      state_ = command_ == 0x03 ? State::Read : State::Write;
      return 0xFF;
    case State::Read: {
      const std::uint8_t out = mem_[addr_ % mem_.size()];
      addr_ = static_cast<std::uint16_t>(addr_ + 1);
      return out;
    }
    case State::Write:
      if (write_enabled_) {
        mem_[addr_ % mem_.size()] = mosi;
        addr_ = static_cast<std::uint16_t>(addr_ + 1);
      }
      return 0xFF;
  }
  return 0xFF;
}

void SpiEeprom::program(std::uint16_t addr, const std::vector<std::uint8_t>& data) {
  for (std::size_t i = 0; i < data.size(); ++i) mem_[(addr + i) % mem_.size()] = data[i];
}

}  // namespace ascp::mcu
