// spi.hpp — SPI master peripheral (bridge bus) and SPI EEPROM model.
//
// Paper §4.2: software can be stored "into an external SPI EEPROM, and so
// reboot directly from EEPROM instead of downloading each time after reset".
// The master exposes the classic DATA/CTRL/STATUS word registers; the EEPROM
// implements the 25xx command set subset the boot flow needs (READ, WRITE,
// WREN, RDSR) with page-write semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "mcu/bus.hpp"

namespace ascp::mcu {

/// Generic SPI slave: exchanges one byte per transfer.
class SpiSlave {
 public:
  virtual ~SpiSlave() = default;
  virtual void select(bool asserted) = 0;
  virtual std::uint8_t transfer(std::uint8_t mosi) = 0;
};

/// SPI master on the bridge bus. Register map (word registers):
///   0 DATA   — write: start a transfer; read: last received byte
///   1 CTRL   — bit0 chip-select (1 = asserted)
///   2 STATUS — bit0 transfer-done (cleared by DATA read)
class SpiMaster : public BridgeDevice {
 public:
  void connect(SpiSlave* slave) { slave_ = slave; }

  std::uint16_t read_reg(std::uint16_t reg) override;
  void write_reg(std::uint16_t reg, std::uint16_t value) override;

  static constexpr std::uint16_t kRegData = 0, kRegCtrl = 1, kRegStatus = 2;

  void serialize_state(StateArchive& ar) {
    ar.value(rx_);
    ar.value(done_);
    ar.value(cs_);
  }

 private:
  SpiSlave* slave_ = nullptr;
  std::uint8_t rx_ = 0xFF;
  bool done_ = false;
  bool cs_ = false;
};

/// 25xx-style SPI EEPROM (paper: boot storage). Commands: 0x06 WREN,
/// 0x04 WRDI, 0x05 RDSR, 0x02 WRITE (16-bit address), 0x03 READ.
class SpiEeprom : public SpiSlave {
 public:
  explicit SpiEeprom(std::size_t size_bytes = 8192);

  void select(bool asserted) override;
  std::uint8_t transfer(std::uint8_t mosi) override;

  /// Host-side (factory programming) access.
  void program(std::uint16_t addr, const std::vector<std::uint8_t>& data);
  std::uint8_t peek(std::uint16_t addr) const { return mem_.at(addr % mem_.size()); }
  /// Fault injection: flip bits of one cell (retention/read corruption).
  void corrupt(std::uint16_t addr, std::uint8_t xor_mask) {
    mem_.at(addr % mem_.size()) ^= xor_mask;
  }
  std::size_t size() const { return mem_.size(); }

  void serialize_state(StateArchive& ar) {
    ar.value(mem_);
    ar.enum_value(state_);
    ar.value(command_);
    ar.value(addr_);
    ar.value(write_enabled_);
  }

 private:
  enum class State { Idle, Addr1, Addr2, Read, Write };

  std::vector<std::uint8_t> mem_;
  State state_ = State::Idle;
  std::uint8_t command_ = 0;
  std::uint16_t addr_ = 0;
  bool write_enabled_ = false;
};

}  // namespace ascp::mcu
