#include "mcu/sram_ctrl.hpp"

namespace ascp::mcu {

SramController::SramController() : mem_(kSamples, 0) {}

std::uint16_t SramController::read_reg(std::uint16_t reg) {
  switch (reg) {
    case 1: return node_;
    case 2: return decim_;
    case 3: return static_cast<std::uint16_t>(count_ > 0xFFFF ? 0xFFFF : count_);
    case 4: return static_cast<std::uint16_t>(rdptr_);
    case 5: {
      const std::uint16_t v = mem_[rdptr_ % kSamples];
      rdptr_ = (rdptr_ + 1) % kSamples;
      return v;
    }
    case 6: return static_cast<std::uint16_t>((full() ? 1 : 0) | (armed_ ? 2 : 0));
    default: return 0;
  }
}

void SramController::write_reg(std::uint16_t reg, std::uint16_t value) {
  switch (reg) {
    case 0:
      if (value & 2) {
        count_ = 0;
        decim_phase_ = 0;
      }
      armed_ = value & 1;
      break;
    case 1: node_ = value; break;
    case 2: decim_ = value == 0 ? 1 : value; break;
    case 4: rdptr_ = value % kSamples; break;
    default: break;
  }
}

bool SramController::push(std::uint16_t node, std::uint16_t sample) {
  if (!armed_ || node != node_) return false;
  if (decim_phase_++ % decim_ != 0) return false;
  if (count_ >= kSamples) {
    armed_ = false;  // capture complete
    return false;
  }
  mem_[count_++] = sample;
  if (count_ >= kSamples) armed_ = false;
  return true;
}

std::vector<std::uint16_t> SramController::snapshot() const {
  return std::vector<std::uint16_t>(mem_.begin(), mem_.begin() + count_);
}

}  // namespace ascp::mcu
