// sram_ctrl.hpp — real-time chain-capture SRAM controller (paper §4.2).
//
// "SRAM controller is used during the prototyping phase, to store at
// real-time (into a 512 Kb SRAM) digital data coming from any node of the
// DSP chain, with chance of later read-back for analysis purposes."
//
// The DSP side pushes 16-bit samples from a selectable chain node; the CPU
// (or host) arms the capture, selects the node and decimation, and reads the
// buffer back through a read-pointer window. 512 Kbit = 64 KB = 32 K
// samples. Register map (word registers):
//   0 CTRL    — bit0 arm (self-clears when full), bit1 reset write pointer
//   1 NODE    — chain-node selector the capture listens to
//   2 DECIM   — keep every Nth pushed sample (0 → 1)
//   3 COUNT   — samples captured so far
//   4 RDPTR   — read pointer (auto-increments on DATA read)
//   5 DATA    — sample at RDPTR
//   6 STATUS  — bit0 full, bit1 armed
#pragma once

#include <cstdint>
#include <vector>

#include "mcu/bus.hpp"

namespace ascp::mcu {

class SramController : public BridgeDevice {
 public:
  static constexpr std::size_t kSamples = 32768;  // 512 Kbit of 16-bit words

  SramController();

  std::uint16_t read_reg(std::uint16_t reg) override;
  void write_reg(std::uint16_t reg, std::uint16_t value) override;

  /// DSP-side push: `node` identifies the producing chain node; the sample
  /// is stored only when armed, the node matches NODE and the decimator
  /// fires. Returns true when stored.
  bool push(std::uint16_t node, std::uint16_t sample);

  bool armed() const { return armed_; }
  bool full() const { return count_ >= kSamples; }
  std::uint32_t count() const { return count_; }
  std::uint16_t selected_node() const { return node_; }

  /// Host-side bulk read-back (the "analysis purposes" path).
  std::vector<std::uint16_t> snapshot() const;

  void serialize_state(StateArchive& ar) {
    for (auto& w : mem_) ar.value(w);
    ar.value(count_);
    ar.value(rdptr_);
    ar.value(node_);
    ar.value(decim_);
    ar.value(decim_phase_);
    ar.value(armed_);
  }

 private:
  std::vector<std::uint16_t> mem_;
  std::uint32_t count_ = 0;
  std::uint32_t rdptr_ = 0;
  std::uint16_t node_ = 0;
  std::uint16_t decim_ = 1;
  std::uint32_t decim_phase_ = 0;
  bool armed_ = false;
};

}  // namespace ascp::mcu
