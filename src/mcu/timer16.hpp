// timer16.hpp — 16-bit programmable timer on the bridge bus (paper Fig. 4).
//
// A free-running down-counter with reload and an overflow (expiry) sticky
// flag — the platform firmware uses it to pace its monitoring loop without
// burning the 8051's own timers (which serve the UART baud generator).
// Register map (word registers):
//   0 COUNT  — read current count; write = load immediately
//   1 RELOAD — value loaded on expiry (0 disables auto-reload)
//   2 CTRL   — bit0 run, bit1 clear-expired (write 1)
//   3 STATUS — bit0 expired (sticky)
#pragma once

#include <cstdint>

#include "mcu/bus.hpp"

namespace ascp::mcu {

class Timer16 : public BridgeDevice {
 public:
  std::uint16_t read_reg(std::uint16_t reg) override {
    switch (reg) {
      case 0: return count_;
      case 1: return reload_;
      case 2: return running_ ? 1 : 0;
      case 3: return expired_ ? 1 : 0;
      default: return 0xFFFF;
    }
  }

  void write_reg(std::uint16_t reg, std::uint16_t value) override {
    switch (reg) {
      case 0: count_ = value; break;
      case 1: reload_ = value; break;
      case 2:
        running_ = value & 1;
        if (value & 2) expired_ = false;
        break;
      default: break;
    }
  }

  /// Advance by `cycles` machine cycles (call from the platform scheduler).
  void tick(long cycles) {
    if (!running_) return;
    while (cycles-- > 0) {
      if (count_ == 0) {
        expired_ = true;
        if (reload_ == 0) {
          running_ = false;
          return;
        }
        count_ = reload_;
      } else {
        --count_;
      }
    }
  }

  bool expired() const { return expired_; }

  void serialize_state(StateArchive& ar) {
    ar.value(count_);
    ar.value(reload_);
    ar.value(running_);
    ar.value(expired_);
  }

 private:
  std::uint16_t count_ = 0;
  std::uint16_t reload_ = 0;
  bool running_ = false;
  bool expired_ = false;
};

}  // namespace ascp::mcu
