#include "mcu/uart.hpp"

namespace ascp::mcu {

void HostLink::attach(Core8051& core) {
  core.set_on_tx([this](std::uint8_t byte) { from_mcu_.push_back(byte); });
}

std::string HostLink::received_text() const {
  return std::string(from_mcu_.begin(), from_mcu_.end());
}

void HostLink::send(const std::vector<std::uint8_t>& bytes) {
  for (std::uint8_t b : bytes) to_mcu_.push_back(b);
}

void HostLink::send_text(const std::string& text) {
  for (char c : text) to_mcu_.push_back(static_cast<std::uint8_t>(c));
}

void HostLink::send_download(const std::vector<std::uint8_t>& program) {
  to_mcu_.push_back(0xA5);
  to_mcu_.push_back(static_cast<std::uint8_t>(program.size() >> 8));
  to_mcu_.push_back(static_cast<std::uint8_t>(program.size() & 0xFF));
  std::uint8_t checksum = 0;
  for (std::uint8_t b : program) {
    to_mcu_.push_back(b);
    checksum = static_cast<std::uint8_t>(checksum + b);
  }
  to_mcu_.push_back(checksum);
}

bool HostLink::pump(Core8051& core) {
  if (to_mcu_.empty()) return false;
  if (!core.inject_rx(to_mcu_.front())) return false;  // RI busy or REN off
  to_mcu_.pop_front();
  return true;
}

}  // namespace ascp::mcu
