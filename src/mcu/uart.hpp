// uart.hpp — host-side serial link (the "PC" of the prototyping setup).
//
// Paper §4.2: "during prototyping phase, the system can be linked to a PC
// and … all intermediate data of the chain can be accessed", and software
// download happens over the UART. HostLink is the PC end of the wire: it
// captures everything the 8051 transmits and queues bytes for the 8051 to
// receive, including the framed download protocol used by the boot ROM.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "mcu/core8051.hpp"

namespace ascp::mcu {

class HostLink {
 public:
  /// Wire this link to a core: installs the TX callback. Call pump() to move
  /// queued host->MCU bytes into the core as it drains them.
  void attach(Core8051& core);

  /// Bytes the MCU has sent to the host.
  const std::vector<std::uint8_t>& received() const { return from_mcu_; }
  /// Received bytes rendered as text (for firmware that prints messages).
  std::string received_text() const;
  void clear_received() { from_mcu_.clear(); }

  /// Queue bytes for the MCU.
  void send(std::uint8_t byte) { to_mcu_.push_back(byte); }
  void send(const std::vector<std::uint8_t>& bytes);
  void send_text(const std::string& text);

  /// Frame a program image with the boot-ROM download protocol:
  ///   0xA5  len_hi len_lo  payload…  checksum (mod-256 sum of payload)
  void send_download(const std::vector<std::uint8_t>& program);

  /// Try to deliver the next queued byte (respects RI/REN flow control).
  /// Returns true if a byte was consumed. Call once per simulation slice.
  bool pump(Core8051& core);

  bool idle() const { return to_mcu_.empty(); }

  void serialize_state(StateArchive& ar) {
    ar.value(from_mcu_);
    ar.value(to_mcu_);
  }

 private:
  std::vector<std::uint8_t> from_mcu_;
  std::deque<std::uint8_t> to_mcu_;
};

}  // namespace ascp::mcu
