#include "mcu/watchdog.hpp"

namespace ascp::mcu {

Watchdog::Watchdog(std::function<void()> on_bite) : on_bite_(std::move(on_bite)) {}

std::uint16_t Watchdog::read_reg(std::uint16_t reg) {
  switch (reg) {
    case 1: return static_cast<std::uint16_t>(period_);
    case 2: return enabled_ ? 1 : 0;
    case 3: return bitten_ ? 1 : 0;
    default: return 0;
  }
}

void Watchdog::write_reg(std::uint16_t reg, std::uint16_t value) {
  switch (reg) {
    case 0:
      if (value == kKickWord) remaining_ = period_;
      break;
    case 1:
      period_ = value;
      remaining_ = period_;
      bitten_ = false;
      break;
    case 2:
      enabled_ = value & 1;
      if (enabled_) remaining_ = period_;
      break;
    default:
      break;
  }
}

void Watchdog::tick(long cycles) {
  if (!enabled_ || bitten_) return;
  remaining_ -= cycles;
  if (remaining_ <= 0) {
    bitten_ = true;
    enabled_ = false;
    if (on_bite_) on_bite_();
  }
}

}  // namespace ascp::mcu
