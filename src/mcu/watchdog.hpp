// watchdog.hpp — watchdog peripheral on the bridge bus (paper Fig. 4).
//
// Automotive-grade conditioning chips must recover from firmware hangs: the
// watchdog counts machine cycles and, unless kicked with the magic word,
// signals a system reset. Register map (word registers):
//   0 KICK    — write 0x5A5A to restart the countdown
//   1 PERIOD  — countdown length in machine cycles (write restarts)
//   2 CTRL    — bit0 enable
//   3 STATUS  — bit0 bite occurred (sticky until PERIOD rewrite)
//
// STATUS stickiness (load-bearing for the recovery flow): once the watchdog
// has bitten, the flag survives KICK writes and CTRL re-enables — restarted
// boot firmware must be able to read *why* it is rebooting long after it has
// resumed kicking. Only an explicit PERIOD rewrite (the deliberate
// "reconfigure the watchdog" step of the boot sequence) clears it. While
// bitten, the countdown is frozen so the reset pulse cannot re-fire.
#pragma once

#include <cstdint>
#include <functional>

#include "mcu/bus.hpp"

namespace ascp::mcu {

class Watchdog : public BridgeDevice {
 public:
  static constexpr std::uint16_t kKickWord = 0x5A5A;

  /// `on_bite` fires once when the countdown expires (typically wired to
  /// Core8051::reset).
  explicit Watchdog(std::function<void()> on_bite = {});

  std::uint16_t read_reg(std::uint16_t reg) override;
  void write_reg(std::uint16_t reg, std::uint16_t value) override;

  /// Advance by machine cycles.
  void tick(long cycles);

  bool enabled() const { return enabled_; }
  bool bitten() const { return bitten_; }
  long remaining() const { return remaining_; }

  void serialize_state(StateArchive& ar) {
    std::int64_t p = period_, r = remaining_;
    ar.value(p);
    ar.value(r);
    period_ = static_cast<long>(p);
    remaining_ = static_cast<long>(r);
    ar.value(enabled_);
    ar.value(bitten_);
  }

 private:
  std::function<void()> on_bite_;
  long period_ = 20000;
  long remaining_ = 20000;
  bool enabled_ = false;
  bool bitten_ = false;
};

}  // namespace ascp::mcu
