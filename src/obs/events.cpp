#include "obs/events.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"

namespace ascp::obs {

const char* severity_name(EventSeverity s) {
  switch (s) {
    case EventSeverity::Debug: return "debug";
    case EventSeverity::Info: return "info";
    case EventSeverity::Warn: return "warn";
    case EventSeverity::Error: return "error";
  }
  return "?";
}

const char* category_name(EventCategory c) {
  switch (c) {
    case EventCategory::Pll: return "pll";
    case EventCategory::Agc: return "agc";
    case EventCategory::Supervisor: return "supervisor";
    case EventCategory::Dtc: return "dtc";
    case EventCategory::Watchdog: return "watchdog";
    case EventCategory::Fault: return "fault";
    case EventCategory::Scheduler: return "scheduler";
    case EventCategory::Mcu: return "mcu";
    case EventCategory::Engine: return "engine";
    case EventCategory::Probe: return "probe";
    case EventCategory::Trace: return "trace";
    case EventCategory::Recorder: return "recorder";
  }
  return "?";
}

EventLog::EventLog(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

void EventLog::emit(double t_sim, EventSeverity sev, EventCategory cat, const char* name,
                    std::string detail, std::initializer_list<Event::KV> kv) {
  Event e;
  e.t_sim = t_sim;
  e.severity = sev;
  e.category = cat;
  e.name = name;
  e.detail = std::move(detail);
  std::size_t i = 0;
  for (const auto& p : kv) {
    if (i >= e.kv.size()) break;
    e.kv[i++] = p;
  }

  if (recorder_)
    recorder_->record_event(t_sim, static_cast<std::uint8_t>(sev),
                            static_cast<std::uint8_t>(cat), name, e.detail.c_str(),
                            e.kv[0].key, e.kv[0].value, e.kv[1].key, e.kv[1].value);

  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[head_] = std::move(e);
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
  ++by_category_[static_cast<std::size_t>(cat)];
  ++by_severity_[static_cast<std::size_t>(sev)];
}

void EventLog::for_each(const std::function<void(const Event&)>& fn) const {
  for (std::size_t i = 0; i < ring_.size(); ++i)
    fn(ring_[(head_ + i) % ring_.size()]);
}

std::vector<Event> EventLog::events() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  for_each([&](const Event& e) { out.push_back(e); });
  return out;
}

void EventLog::clear() {
  ring_.clear();
  head_ = 0;
  total_ = 0;
  by_category_.fill(0);
  by_severity_.fill(0);
}

void EventLog::declare_emitter(EventCategory cat, const char* who) {
  auto& v = emitters_[static_cast<std::size_t>(cat)];
  if (std::find(v.begin(), v.end(), who) == v.end()) v.emplace_back(who);
}

}  // namespace ascp::obs
