// events.hpp — structured, sim-timestamped event log.
//
// Waveforms (TraceRecorder) answer "what did the signal do"; the event log
// answers "what *happened*": PLL lock/lock-loss/relock, AGC settling,
// supervisor state transitions, DTC latch/clear, watchdog bites, fault
// campaign inject/remove. Events carry the simulation timestamp, a severity,
// a category, a static name, an optional free-form detail string and up to
// four key/value payload numbers — enough structure for digests, JSON export
// and the Chrome-trace instant track without an allocation-per-field schema.
//
// The log is a fixed-capacity ring: a runaway emitter can never exhaust
// memory, and `dropped()` reports how many events the ring overwrote.
// Single-writer by design — each simulation channel owns its log (the farm
// gives every channel its own), so emission needs no synchronization.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

namespace ascp::obs {

class FlightRecorder;

enum class EventSeverity : std::uint8_t { Debug = 0, Info = 1, Warn = 2, Error = 3 };

enum class EventCategory : std::uint8_t {
  Pll = 0,         ///< lock / lock-loss / relock
  Agc = 1,         ///< amplitude-loop settling
  Supervisor = 2,  ///< arming, state transitions, self-test verdicts
  Dtc = 3,         ///< trouble-code latch / clear
  Watchdog = 4,    ///< watchdog bite
  Fault = 5,       ///< campaign inject / remove
  Scheduler = 6,   ///< run boundaries of the multi-rate kernel
  Mcu = 7,         ///< firmware-level events (recovery path, ISR anomalies)
  Engine = 8,      ///< fleet runtime: stall/crash detection, restart, quarantine
  Probe = 9,       ///< stimulus/probe seam: probe attach, ingestion underrun
  Trace = 10,      ///< causal-span layer: trace begin, span-ring pressure
  Recorder = 11,   ///< flight recorder: attach, blackbox dump
};

inline constexpr std::size_t kEventCategoryCount = 12;

inline constexpr std::array<EventCategory, kEventCategoryCount> kAllEventCategories = {
    EventCategory::Pll,      EventCategory::Agc,      EventCategory::Supervisor,
    EventCategory::Dtc,      EventCategory::Watchdog, EventCategory::Fault,
    EventCategory::Scheduler, EventCategory::Mcu,     EventCategory::Engine,
    EventCategory::Probe,    EventCategory::Trace,    EventCategory::Recorder};

const char* severity_name(EventSeverity s);
const char* category_name(EventCategory c);

struct Event {
  struct KV {
    const char* key = nullptr;  ///< static literal; nullptr = unused slot
    double value = 0.0;
  };

  double t_sim = 0.0;  ///< simulation time [s]
  EventSeverity severity = EventSeverity::Info;
  EventCategory category = EventCategory::Pll;
  const char* name = "";  ///< static literal naming the event type
  std::string detail;     ///< free-form (DTC mnemonic, fault name, …)
  std::array<KV, 4> kv{};
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 4096);

  void emit(double t_sim, EventSeverity sev, EventCategory cat, const char* name,
            std::string detail = {}, std::initializer_list<Event::KV> kv = {});

  std::size_t capacity() const { return capacity_; }
  /// Events currently retained in the ring.
  std::size_t size() const { return ring_.size(); }
  /// Events ever emitted (including overwritten ones).
  std::uint64_t total() const { return total_; }
  std::uint64_t dropped() const { return total_ - ring_.size(); }

  std::uint64_t count(EventCategory c) const {
    return by_category_[static_cast<std::size_t>(c)];
  }
  std::uint64_t count(EventSeverity s) const {
    return by_severity_[static_cast<std::size_t>(s)];
  }

  /// Visit retained events oldest → newest.
  void for_each(const std::function<void(const Event&)>& fn) const;
  /// Retained events oldest → newest (copy).
  std::vector<Event> events() const;

  void clear();

  // ---- flight-recorder tee -------------------------------------------------
  /// Every subsequent emit() is also written into `fr` (null detaches). This
  /// is how supervisor/DTC/engine transitions reach the black-box ring
  /// without a second emission site per event.
  void set_flight_recorder(FlightRecorder* fr) { recorder_ = fr; }
  FlightRecorder* flight_recorder() const { return recorder_; }

  // ---- emitter coverage (platform_lint --events) ---------------------------
  // Instrumented components declare, at attach time, which categories they
  // emit. The static checker verifies every enumerator has a claimant in the
  // fully assembled platform — an un-emittable category is dead vocabulary.
  void declare_emitter(EventCategory cat, const char* who);
  bool emitter_declared(EventCategory cat) const {
    return !emitters_[static_cast<std::size_t>(cat)].empty();
  }
  /// Claimants of a category ("GyroSystem", "SafetySupervisor", …).
  const std::vector<std::string>& emitters(EventCategory cat) const {
    return emitters_[static_cast<std::size_t>(cat)];
  }

 private:
  std::size_t capacity_;
  std::vector<Event> ring_;  ///< grows to capacity_, then wraps via head_
  std::size_t head_ = 0;     ///< index of the oldest event once wrapped
  std::uint64_t total_ = 0;
  FlightRecorder* recorder_ = nullptr;
  std::array<std::uint64_t, kEventCategoryCount> by_category_{};
  std::array<std::uint64_t, 4> by_severity_{};
  std::array<std::vector<std::string>, kEventCategoryCount> emitters_{};
};

}  // namespace ascp::obs
