#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

namespace ascp::obs {

namespace {

std::string num(double v) {
  // JSON has no NaN/Inf literals; clamp pathological values to null-ish 0.
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// text report
// ---------------------------------------------------------------------------

std::string text_report(const MetricsSnapshot& metrics, const EventLog* events,
                        const TaskProfiler* tasks, const McuProfiler* mcu,
                        const SpanLog* spans) {
  std::string out;

  if (!metrics.counters.empty() || !metrics.gauges.empty() || !metrics.histograms.empty()) {
    out += "== metrics ==\n";
    for (const auto& [name, v] : metrics.counters)
      appendf(out, "  counter  %-40s %.6g\n", name.c_str(), v);
    for (const auto& [name, v] : metrics.gauges)
      appendf(out, "  gauge    %-40s %.6g\n", name.c_str(), v);
    for (const auto& [name, st] : metrics.histograms)
      appendf(out,
              "  hist     %-40s n=%llu mean=%.4g p50=%.4g p95=%.4g p99=%.4g "
              "max=%.4g\n",
              name.c_str(), static_cast<unsigned long long>(st.count), st.mean(), st.p50,
              st.p95, st.p99, st.max);
  }

  if (events) {
    out += "== events ==\n";
    appendf(out, "  total=%llu retained=%zu dropped=%llu\n",
            static_cast<unsigned long long>(events->total()), events->size(),
            static_cast<unsigned long long>(events->dropped()));
    for (EventCategory c : kAllEventCategories) {
      if (events->count(c))
        appendf(out, "  %-10s %llu\n", category_name(c),
                static_cast<unsigned long long>(events->count(c)));
    }
    // Tail of the log — the most recent happenings.
    constexpr std::size_t kTail = 16;
    std::deque<const Event*> tail;
    events->for_each([&](const Event& e) {
      tail.push_back(&e);
      if (tail.size() > kTail) tail.pop_front();
    });
    for (const Event* e : tail) {
      appendf(out, "  [%12.6f] %-5s %-10s %s", e->t_sim, severity_name(e->severity),
              category_name(e->category), e->name);
      if (!e->detail.empty()) appendf(out, " (%s)", e->detail.c_str());
      for (const auto& kv : e->kv)
        if (kv.key) appendf(out, " %s=%.6g", kv.key, kv.value);
      out += "\n";
    }
  }

  if (tasks && tasks->task_count()) {
    out += "== scheduler ==\n";
    appendf(out, "  %-20s %10s %8s %12s %12s %10s\n", "task", "divider", "phase",
            "invocations", "wall[ms]", "us/call");
    for (const auto& t : tasks->stats()) {
      const double per_call_us =
          t.invocations ? t.wall_seconds / static_cast<double>(t.invocations) * 1e6 : 0.0;
      appendf(out, "  %-20s %10ld %8ld %12llu %12.3f %10.3f\n", t.name.c_str(), t.divider,
              t.phase, static_cast<unsigned long long>(t.invocations),
              t.wall_seconds * 1e3, per_call_us);
    }
    appendf(out, "  sim=%.6gs wall=%.6gs sim/wall=%.3f\n", tasks->sim_seconds(),
            tasks->wall_seconds(), tasks->sim_per_wall());
    if (tasks->slices_dropped())
      appendf(out, "  trace slices dropped: %llu\n",
              static_cast<unsigned long long>(tasks->slices_dropped()));
  }

  if (spans && spans->total()) {
    out += "== spans ==\n";
    appendf(out, "  total=%llu retained=%zu dropped=%llu open=%zu trace_id=%llu\n",
            static_cast<unsigned long long>(spans->total()), spans->size(),
            static_cast<unsigned long long>(spans->dropped()), spans->open_depth(),
            static_cast<unsigned long long>(spans->trace_id()));
    for (std::size_t c = 0; c < kSpanCategoryCount; ++c) {
      const auto cat = static_cast<SpanCategory>(c);
      if (spans->count(cat))
        appendf(out, "  %-10s %llu\n", span_category_name(cat),
                static_cast<unsigned long long>(spans->count(cat)));
    }
  }

  if (mcu && mcu->instructions()) {
    out += "== mcu ==\n";
    appendf(out, "  instructions=%llu cycles=%llu cpi=%.3f\n",
            static_cast<unsigned long long>(mcu->instructions()),
            static_cast<unsigned long long>(mcu->cycles()),
            static_cast<double>(mcu->cycles()) / static_cast<double>(mcu->instructions()));
    out += "  hot PCs:\n";
    for (const auto& p : mcu->top_pcs(10))
      appendf(out, "    0x%04X  %llu\n", p.pc, static_cast<unsigned long long>(p.count));
    out += "  hot opcodes (by cycles):\n";
    for (const auto& o : mcu->top_opcodes(10))
      appendf(out, "    0x%02X  n=%llu cycles=%llu\n", o.opcode,
              static_cast<unsigned long long>(o.count),
              static_cast<unsigned long long>(o.cycles));
    for (const auto& s : mcu->isr_stats())
      appendf(out, "  isr @0x%04X entries=%llu mean=%.1f max=%llu cycles\n", s.vector,
              static_cast<unsigned long long>(s.entries), s.mean_cycles(),
              static_cast<unsigned long long>(s.max_cycles));
  }

  return out;
}

// ---------------------------------------------------------------------------
// JSON snapshot
// ---------------------------------------------------------------------------

std::string json_snapshot(const MetricsSnapshot& metrics, const EventLog* events,
                          const TaskProfiler* tasks, const McuProfiler* mcu,
                          std::size_t event_tail) {
  std::string out = "{";

  out += "\"metrics\":{";
  out += "\"counters\":{";
  for (std::size_t i = 0; i < metrics.counters.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(metrics.counters[i].first) + "\":" + num(metrics.counters[i].second);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < metrics.gauges.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(metrics.gauges[i].first) + "\":" + num(metrics.gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < metrics.histograms.size(); ++i) {
    if (i) out += ",";
    const auto& [name, st] = metrics.histograms[i];
    out += "\"" + json_escape(name) + "\":{";
    out += "\"count\":" + std::to_string(st.count);
    out += ",\"sum\":" + num(st.sum);
    out += ",\"min\":" + num(st.min);
    out += ",\"max\":" + num(st.max);
    out += ",\"mean\":" + num(st.mean());
    out += ",\"p50\":" + num(st.p50);
    out += ",\"p95\":" + num(st.p95);
    out += ",\"p99\":" + num(st.p99);
    out += "}";
  }
  out += "}}";

  if (events) {
    out += ",\"events\":{";
    out += "\"total\":" + std::to_string(events->total());
    out += ",\"dropped\":" + std::to_string(events->dropped());
    out += ",\"by_category\":{";
    bool first = true;
    for (EventCategory c : kAllEventCategories) {
      if (!first) out += ",";
      first = false;
      out += "\"" + std::string(category_name(c)) + "\":" + std::to_string(events->count(c));
    }
    out += "},\"recent\":[";
    std::deque<const Event*> tail;
    events->for_each([&](const Event& e) {
      tail.push_back(&e);
      if (tail.size() > event_tail) tail.pop_front();
    });
    for (std::size_t i = 0; i < tail.size(); ++i) {
      if (i) out += ",";
      const Event& e = *tail[i];
      out += "{\"t\":" + num(e.t_sim);
      out += ",\"severity\":\"" + std::string(severity_name(e.severity)) + "\"";
      out += ",\"category\":\"" + std::string(category_name(e.category)) + "\"";
      out += ",\"name\":\"" + json_escape(e.name) + "\"";
      if (!e.detail.empty()) out += ",\"detail\":\"" + json_escape(e.detail) + "\"";
      std::string kvs;
      for (const auto& kv : e.kv) {
        if (!kv.key) continue;
        if (!kvs.empty()) kvs += ",";
        kvs += "\"" + json_escape(kv.key) + "\":" + num(kv.value);
      }
      if (!kvs.empty()) out += ",\"kv\":{" + kvs + "}";
      out += "}";
    }
    out += "]}";
  }

  if (tasks) {
    out += ",\"scheduler\":{";
    out += "\"sim_seconds\":" + num(tasks->sim_seconds());
    out += ",\"wall_seconds\":" + num(tasks->wall_seconds());
    out += ",\"sim_per_wall\":" + num(tasks->sim_per_wall());
    out += ",\"tasks\":[";
    const auto& stats = tasks->stats();
    for (std::size_t i = 0; i < stats.size(); ++i) {
      if (i) out += ",";
      const auto& t = stats[i];
      out += "{\"name\":\"" + json_escape(t.name) + "\"";
      out += ",\"divider\":" + std::to_string(t.divider);
      out += ",\"phase\":" + std::to_string(t.phase);
      out += ",\"invocations\":" + std::to_string(t.invocations);
      out += ",\"wall_seconds\":" + num(t.wall_seconds);
      out += "}";
    }
    out += "]}";
  }

  if (mcu) {
    out += ",\"mcu\":{";
    out += "\"instructions\":" + std::to_string(mcu->instructions());
    out += ",\"cycles\":" + std::to_string(mcu->cycles());
    out += ",\"top_pcs\":[";
    const auto pcs = mcu->top_pcs(10);
    for (std::size_t i = 0; i < pcs.size(); ++i) {
      if (i) out += ",";
      out += "{\"pc\":" + std::to_string(pcs[i].pc) +
             ",\"count\":" + std::to_string(pcs[i].count) + "}";
    }
    out += "],\"top_opcodes\":[";
    const auto ops = mcu->top_opcodes(10);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (i) out += ",";
      out += "{\"opcode\":" + std::to_string(ops[i].opcode) +
             ",\"count\":" + std::to_string(ops[i].count) +
             ",\"cycles\":" + std::to_string(ops[i].cycles) + "}";
    }
    out += "],\"isrs\":[";
    const auto isrs = mcu->isr_stats();
    for (std::size_t i = 0; i < isrs.size(); ++i) {
      if (i) out += ",";
      out += "{\"vector\":" + std::to_string(isrs[i].vector) +
             ",\"entries\":" + std::to_string(isrs[i].entries) +
             ",\"cycles\":" + std::to_string(isrs[i].cycles) +
             ",\"max_cycles\":" + std::to_string(isrs[i].max_cycles) + "}";
    }
    out += "]}";
  }

  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// Chrome trace_event JSON
// ---------------------------------------------------------------------------

std::string span_trace_event(const Span& s, int tid_base) {
  const double ts = s.t_begin * 1e6;
  const double dur = std::max(0.0, (s.t_end - s.t_begin) * 1e6);
  std::string args = "\"trace_id\":\"" + std::to_string(s.trace_id) + "\"";
  args += ",\"span_id\":\"" + std::to_string(s.span_id) + "\"";
  args += ",\"parent_id\":\"" + std::to_string(s.parent_id) + "\"";
  if (s.wall_us > 0.0) args += ",\"wall_us\":" + num(s.wall_us);
  if (s.k0) args += ",\"" + json_escape(s.k0) + "\":" + num(s.v0);
  if (s.k1) args += ",\"" + json_escape(s.k1) + "\":" + num(s.v1);
  return "{\"ph\":\"X\",\"name\":\"" + json_escape(s.name) + "\",\"cat\":\"span:" +
         span_category_name(s.category) + "\",\"pid\":1,\"tid\":" +
         std::to_string(tid_base + static_cast<int>(s.category)) + ",\"ts\":" + num(ts) +
         ",\"dur\":" + num(dur) + ",\"args\":{" + args + "}}";
}

std::string chrome_trace_json(const TaskProfiler& tasks, const EventLog* events,
                              const SpanLog* spans) {
  struct Entry {
    double ts;
    int order;  ///< secondary key: metadata first, then slices, then instants
    std::string json;
  };
  std::vector<Entry> entries;

  const double rate = tasks.base_rate() > 0.0 ? tasks.base_rate() : 1.0;
  const double tick_us = 1e6 / rate;

  // One trace "thread" per task, named via metadata events at ts 0.
  for (std::size_t id = 0; id < tasks.task_count(); ++id) {
    const auto& t = tasks.stats()[id];
    std::string j = "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" +
                    std::to_string(id + 1) + ",\"ts\":0,\"args\":{\"name\":\"" +
                    json_escape(t.name) + "\"}}";
    entries.push_back({0.0, 0, std::move(j)});
  }
  if (events)
    entries.push_back(
        {0.0, 0,
         "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":100,\"ts\":0,"
         "\"args\":{\"name\":\"events\"}}"});
  if (spans) {
    for (std::size_t c = 0; c < kSpanCategoryCount; ++c) {
      std::string j =
          "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" +
          std::to_string(200 + static_cast<int>(c)) + ",\"ts\":0,\"args\":{\"name\":\"spans:" +
          std::string(span_category_name(static_cast<SpanCategory>(c))) + "\"}}";
      entries.push_back({0.0, 0, std::move(j)});
    }
  }

  // Task invocations as duration slices. ts is the invocation's sim time; the
  // drawn duration is a fixed fraction of the task period so consecutive
  // slices on one track never overlap — the measured wall cost is in args.
  for (const auto& s : tasks.slices()) {
    const auto& t = tasks.stats()[static_cast<std::size_t>(s.task_id)];
    const double ts = static_cast<double>(s.tick) * tick_us;
    const double dur = 0.8 * static_cast<double>(t.divider) * tick_us;
    std::string j = "{\"ph\":\"X\",\"name\":\"" + json_escape(t.name) +
                    "\",\"cat\":\"task\",\"pid\":1,\"tid\":" +
                    std::to_string(s.task_id + 1) + ",\"ts\":" + num(ts) +
                    ",\"dur\":" + num(dur) +
                    ",\"args\":{\"wall_us\":" + num(s.wall_seconds * 1e6) + "}}";
    entries.push_back({ts, 1, std::move(j)});
  }

  // Structured events as instants on the shared "events" track.
  if (events) {
    events->for_each([&](const Event& e) {
      const double ts = e.t_sim * 1e6;
      std::string args = "\"severity\":\"" + std::string(severity_name(e.severity)) + "\"";
      if (!e.detail.empty()) args += ",\"detail\":\"" + json_escape(e.detail) + "\"";
      for (const auto& kv : e.kv)
        if (kv.key) args += ",\"" + json_escape(kv.key) + "\":" + num(kv.value);
      std::string j = "{\"ph\":\"i\",\"s\":\"g\",\"name\":\"" + json_escape(e.name) +
                      "\",\"cat\":\"" + category_name(e.category) +
                      "\",\"pid\":1,\"tid\":100,\"ts\":" + num(ts) + ",\"args\":{" + args +
                      "}}";
      entries.push_back({ts, 2, std::move(j)});
    });
  }

  // Causal spans as duration slices, one track per span category. The
  // trace/span/parent id triple rides in args so the causal chain can be
  // reconstructed even after Perfetto re-sorts the slices.
  if (spans) {
    spans->for_each([&](const Span& s) {
      entries.push_back({s.t_begin * 1e6, 1, span_trace_event(s)});
    });
  }

  std::stable_sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.order < b.order;
  });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i) out += ",\n";
    out += entries[i].json;
  }
  out += "]}\n";
  return out;
}

}  // namespace ascp::obs
