// export.hpp — serialize observability state for humans and tools.
//
// Three formats:
//   text_report       — human-readable digest (platform_top, CI logs)
//   json_snapshot     — machine-readable snapshot (bench BENCH_*.json embeds)
//   chrome_trace_json — Chrome trace_event array; load in Perfetto or
//                       chrome://tracing. Timestamps are *simulation* time in
//                       microseconds: scheduler task invocations become "X"
//                       duration slices (one track per task; the slice length
//                       is drawn from sim time, the measured wall cost rides
//                       in args), structured events become "i" instants.
//
// All emitters are pure functions of already-collected state; exporting
// never mutates the profilers.
#pragma once

#include <string>

#include "obs/events.hpp"
#include "obs/mcu_profile.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"

namespace ascp::obs {

/// Human-readable multi-section report. Null sections are omitted.
std::string text_report(const MetricsSnapshot& metrics, const EventLog* events = nullptr,
                        const TaskProfiler* tasks = nullptr,
                        const McuProfiler* mcu = nullptr, const SpanLog* spans = nullptr);

/// One JSON object: {"metrics":…, "events":…, "scheduler":…, "mcu":…}.
/// Null sections are omitted; `event_tail` bounds the "recent" event array.
std::string json_snapshot(const MetricsSnapshot& metrics, const EventLog* events = nullptr,
                          const TaskProfiler* tasks = nullptr,
                          const McuProfiler* mcu = nullptr, std::size_t event_tail = 32);

/// Chrome trace_event JSON ({"traceEvents":[…]}), sorted by ascending
/// timestamp (sim µs). Loadable by Perfetto / chrome://tracing. Spans
/// become "X" slices (one track per span category) carrying their
/// trace/span/parent ids in args — the causal chain of a fleet incident
/// reads straight off the trace.
std::string chrome_trace_json(const TaskProfiler& tasks, const EventLog* events = nullptr,
                              const SpanLog* spans = nullptr);

/// One Chrome trace_event "X" JSON object for a span (no trailing comma).
/// Shared by chrome_trace_json and the blackbox exporter so both render
/// spans identically.
std::string span_trace_event(const Span& s, int tid_base = 200);

/// Escape a string for embedding inside a JSON string literal.
std::string json_escape(std::string_view s);

}  // namespace ascp::obs
