#include "obs/flight_recorder.hpp"

#include <algorithm>

namespace ascp::obs {

const char* flight_kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::Event: return "event";
    case FlightKind::MetricDelta: return "metric";
    case FlightKind::ProbeSample: return "probe";
  }
  return "?";
}

namespace {

template <std::size_t N>
void copy_str(char (&dst)[N], const char* src) {
  if (!src) src = "";
  std::strncpy(dst, src, N - 1);
  dst[N - 1] = '\0';
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

FlightRecord& FlightRecorder::next_slot() {
  if (ring_.size() < capacity_) {
    ring_.emplace_back();
    ++total_;
    return ring_.back();
  }
  FlightRecord& slot = ring_[head_];
  head_ = (head_ + 1) % capacity_;
  ++total_;
  slot = FlightRecord{};
  return slot;
}

void FlightRecorder::record_event(double t_sim, std::uint8_t severity, std::uint8_t category,
                                  const char* name, const char* detail, const char* k0,
                                  double v0, const char* k1, double v1) {
  FlightRecord& r = next_slot();
  r.t_sim = t_sim;
  r.kind = FlightKind::Event;
  r.severity = severity;
  r.category = category;
  copy_str(r.name, name);
  copy_str(r.detail, detail);
  r.k0 = k0;
  r.v0 = v0;
  r.k1 = k1;
  r.v1 = v1;
  ++by_kind_[static_cast<std::size_t>(FlightKind::Event)];
}

void FlightRecorder::record_metric(double t_sim, const char* name, double delta) {
  FlightRecord& r = next_slot();
  r.t_sim = t_sim;
  r.kind = FlightKind::MetricDelta;
  copy_str(r.name, name);
  r.a = delta;
  ++by_kind_[static_cast<std::size_t>(FlightKind::MetricDelta)];
}

void FlightRecorder::record_probe(double t_sim, std::uint8_t point, std::int64_t tick,
                                  double a, double b) {
  FlightRecord& r = next_slot();
  r.t_sim = t_sim;
  r.kind = FlightKind::ProbeSample;
  r.category = point;
  r.tick = tick;
  r.a = a;
  r.b = b;
  ++by_kind_[static_cast<std::size_t>(FlightKind::ProbeSample)];
}

void FlightRecorder::for_each(const std::function<void(const FlightRecord&)>& fn) const {
  for (std::size_t i = 0; i < ring_.size(); ++i)
    fn(ring_[(head_ + i) % ring_.size()]);
}

void FlightRecorder::clear() {
  ring_.clear();
  head_ = 0;
  total_ = 0;
  by_kind_.fill(0);
}

}  // namespace ascp::obs
