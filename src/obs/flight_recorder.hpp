// flight_recorder.hpp — per-channel black-box ring: the last N things that
// happened, retained at crash time.
//
// The aggregate layers (metrics, profiler) answer "how much"; the flight
// recorder answers "what, just before it died". It is a fixed-capacity ring
// of POD records — structured events (teed from the channel's EventLog, so
// supervisor/DTC transitions land here automatically), per-advance metric
// deltas, and decimated probe-tap samples — cheap enough to leave armed on
// every channel of a fleet, like an automotive EDR.
//
// Record-path contract, proven by bench/perf_obs: zero allocations. The ring
// is pre-reserved at construction; names and details are copied into fixed
// in-record buffers (truncating, never pointing), so a record can outlive
// every object that produced it — which is exactly what a .blackbox dump
// needs.
//
// Single-writer, read-only, bit-neutral: same discipline as EventLog.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

namespace ascp::obs {

enum class FlightKind : std::uint8_t {
  Event = 0,        ///< teed structured event (severity/category preserved)
  MetricDelta = 1,  ///< per-advance counter delta (outputs, drops, underruns)
  ProbeSample = 2,  ///< decimated chain-tap sample (ProbePoint in `category`)
};

constexpr std::size_t kFlightKindCount = 3;
const char* flight_kind_name(FlightKind k);

struct FlightRecord {
  double t_sim = 0.0;
  FlightKind kind = FlightKind::Event;
  std::uint8_t severity = 0;  ///< EventSeverity (Event records)
  std::uint8_t category = 0;  ///< EventCategory (Event) / ProbePoint (ProbeSample)
  std::int64_t tick = 0;      ///< global base tick (ProbeSample records)
  char name[24] = {};         ///< event/metric name (truncated copy)
  char detail[40] = {};       ///< event detail (truncated copy)
  double a = 0.0;             ///< probe payload a / metric delta
  double b = 0.0;             ///< probe payload b
  /// First two event key/values (keys are static literals by the EventLog
  /// contract, so the pointers are safe to retain).
  const char* k0 = nullptr;
  double v0 = 0.0;
  const char* k1 = nullptr;
  double v1 = 0.0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 2048);

  void record_event(double t_sim, std::uint8_t severity, std::uint8_t category,
                    const char* name, const char* detail, const char* k0 = nullptr,
                    double v0 = 0.0, const char* k1 = nullptr, double v1 = 0.0);
  void record_metric(double t_sim, const char* name, double delta);
  void record_probe(double t_sim, std::uint8_t point, std::int64_t tick, double a, double b);

  std::size_t capacity() const { return capacity_; }
  /// Records currently retained in the ring.
  std::size_t size() const { return ring_.size(); }
  /// Records ever written (including overwritten ones).
  std::uint64_t total() const { return total_; }
  std::uint64_t dropped() const { return total_ - ring_.size(); }
  std::uint64_t count(FlightKind k) const {
    return by_kind_[static_cast<std::size_t>(k)];
  }

  /// Visit retained records oldest → newest.
  void for_each(const std::function<void(const FlightRecord&)>& fn) const;

  void clear();

 private:
  FlightRecord& next_slot();

  std::size_t capacity_;
  std::vector<FlightRecord> ring_;  ///< grows to capacity_, then wraps via head_
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kFlightKindCount> by_kind_{};
};

}  // namespace ascp::obs
