#include "obs/mcu_profile.hpp"

#include <algorithm>

namespace ascp::obs {

namespace {
constexpr std::uint8_t kOpReti = 0x32;
}

McuProfiler::McuProfiler()
    : pc_hist_(65536, 0), op_count_(256, 0), op_cycles_(256, 0) {}

void McuProfiler::record_exec(std::uint16_t pc, std::uint8_t opcode, int cycles,
                              std::uint64_t total_cycles) {
  ++pc_hist_[pc];
  ++op_count_[opcode];
  op_cycles_[opcode] += static_cast<std::uint64_t>(cycles);
  ++instructions_;
  cycles_ += static_cast<std::uint64_t>(cycles);

  if (opcode == kOpReti && !isr_stack_.empty()) {
    const IsrFrame frame = isr_stack_.back();
    isr_stack_.pop_back();
    for (auto& s : isr_) {
      if (s.vector == frame.vector) {
        const std::uint64_t cost = total_cycles - frame.entry_cycle;
        s.cycles += cost;
        s.max_cycles = std::max(s.max_cycles, cost);
        return;
      }
    }
  }
}

void McuProfiler::record_isr_enter(std::uint16_t vector, std::uint64_t total_cycles) {
  isr_stack_.push_back({vector, total_cycles});
  for (auto& s : isr_) {
    if (s.vector == vector) {
      ++s.entries;
      return;
    }
  }
  IsrStats s;
  s.vector = vector;
  s.entries = 1;
  isr_.push_back(s);
}

std::vector<McuProfiler::PcCount> McuProfiler::top_pcs(std::size_t n) const {
  std::vector<PcCount> all;
  for (std::size_t pc = 0; pc < pc_hist_.size(); ++pc)
    if (pc_hist_[pc]) all.push_back({static_cast<std::uint16_t>(pc), pc_hist_[pc]});
  std::sort(all.begin(), all.end(), [](const PcCount& a, const PcCount& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.pc < b.pc;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

std::vector<McuProfiler::OpcodeCount> McuProfiler::top_opcodes(std::size_t n) const {
  std::vector<OpcodeCount> all;
  for (std::size_t op = 0; op < op_count_.size(); ++op)
    if (op_count_[op])
      all.push_back({static_cast<std::uint8_t>(op), op_count_[op], op_cycles_[op]});
  std::sort(all.begin(), all.end(), [](const OpcodeCount& a, const OpcodeCount& b) {
    if (a.cycles != b.cycles) return a.cycles > b.cycles;
    return a.opcode < b.opcode;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

std::vector<McuProfiler::IsrStats> McuProfiler::isr_stats() const {
  std::vector<IsrStats> out = isr_;
  std::sort(out.begin(), out.end(),
            [](const IsrStats& a, const IsrStats& b) { return a.vector < b.vector; });
  return out;
}

void McuProfiler::reset() {
  std::fill(pc_hist_.begin(), pc_hist_.end(), 0);
  std::fill(op_count_.begin(), op_count_.end(), 0);
  std::fill(op_cycles_.begin(), op_cycles_.end(), 0);
  instructions_ = 0;
  cycles_ = 0;
  isr_stack_.clear();
  isr_.clear();
}

}  // namespace ascp::obs
