// mcu_profile.hpp — MCS-51 execution profiler.
//
// Answers "where does the firmware spend its cycles": a PC-resolution
// execution histogram over the 64 KiB CODE space, per-opcode instruction and
// machine-cycle accounting, and ISR entry/exit cost (cycles spent between
// vector entry and the matching RETI, nesting-aware).
//
// Attached to mcu::Core8051 via set_profiler(); the core reports each retired
// instruction and each interrupt dispatch. The profiler never feeds anything
// back into the core, so attaching it cannot change firmware behaviour.
#pragma once

#include <cstdint>
#include <vector>

namespace ascp::obs {

class McuProfiler {
 public:
  McuProfiler();
  virtual ~McuProfiler() = default;

  /// One retired instruction: opcode byte at `pc` costing `cycles` machine
  /// cycles; `total_cycles` is the core's cycle counter *after* retirement.
  /// Virtual so measurement harnesses (e.g. the WCET validation bench) can
  /// observe the retirement stream while keeping the histogram behaviour.
  virtual void record_exec(std::uint16_t pc, std::uint8_t opcode, int cycles,
                           std::uint64_t total_cycles);

  /// Interrupt dispatch to `vector` at core cycle `total_cycles`.
  virtual void record_isr_enter(std::uint16_t vector, std::uint64_t total_cycles);

  std::uint64_t instructions() const { return instructions_; }
  std::uint64_t cycles() const { return cycles_; }

  struct PcCount {
    std::uint16_t pc = 0;
    std::uint64_t count = 0;
  };
  /// Hottest program-counter values, descending by execution count (ties
  /// broken by ascending PC for determinism).
  std::vector<PcCount> top_pcs(std::size_t n) const;
  std::uint64_t pc_count(std::uint16_t pc) const { return pc_hist_[pc]; }

  struct OpcodeCount {
    std::uint8_t opcode = 0;
    std::uint64_t count = 0;
    std::uint64_t cycles = 0;
  };
  /// Hottest opcodes by cycle cost, descending (ties by ascending opcode).
  std::vector<OpcodeCount> top_opcodes(std::size_t n) const;
  std::uint64_t opcode_count(std::uint8_t op) const { return op_count_[op]; }

  struct IsrStats {
    std::uint16_t vector = 0;
    std::uint64_t entries = 0;
    std::uint64_t cycles = 0;  ///< total cycles from entry to matching RETI
    std::uint64_t max_cycles = 0;
    double mean_cycles() const {
      return entries ? static_cast<double>(cycles) / static_cast<double>(entries) : 0.0;
    }
  };
  /// Per-vector ISR cost, ascending by vector address. ISRs still in flight
  /// (entered, no RETI yet) count their entry but no cycles.
  std::vector<IsrStats> isr_stats() const;

  void reset();

 private:
  std::vector<std::uint64_t> pc_hist_;  ///< 65536 entries
  std::vector<std::uint64_t> op_count_;  ///< 256 entries
  std::vector<std::uint64_t> op_cycles_;  ///< 256 entries
  std::uint64_t instructions_ = 0;
  std::uint64_t cycles_ = 0;

  struct IsrFrame {
    std::uint16_t vector;
    std::uint64_t entry_cycle;
  };
  std::vector<IsrFrame> isr_stack_;
  std::vector<IsrStats> isr_;  ///< one slot per seen vector
};

}  // namespace ascp::obs
