#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ascp::obs {

namespace {

std::uint64_t next_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double MetricsSnapshot::counter_value(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0.0;
}

HistogramStats MetricsSnapshot::histogram_stats(std::string_view name) const {
  for (const auto& [n, s] : histograms)
    if (n == name) return s;
  return {};
}

MetricRegistry::MetricRegistry() : uid_(next_uid()) {}
MetricRegistry::~MetricRegistry() = default;

int MetricRegistry::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // ≤ 0 and NaN land in the underflow bucket
  int e = 0;
  std::frexp(v, &e);  // v = m·2^e with m ∈ [0.5, 1) ⇒ v ∈ [2^(e-1), 2^e)
  const int idx = e - kMinExp;
  return std::clamp(idx, 0, kBuckets - 1);
}

double MetricRegistry::bucket_floor(double v) {
  const int idx = bucket_index(v);
  if (idx == 0) return 0.0;
  return std::ldexp(1.0, idx + kMinExp - 1);
}

MetricRegistry::Id MetricRegistry::intern(std::vector<std::string>& names, std::string_view name,
                                          std::size_t cap, const char* kind) {
  std::lock_guard<std::mutex> lk(m_);
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return static_cast<Id>(i);
  if (names.size() >= cap)
    throw std::length_error(std::string("MetricRegistry: too many ") + kind + " metrics");
  names.emplace_back(name);
  return static_cast<Id>(names.size() - 1);
}

MetricRegistry::Id MetricRegistry::counter(std::string_view name) {
  return intern(counter_names_, name, kMaxCounters, "counter");
}

MetricRegistry::Id MetricRegistry::gauge(std::string_view name) {
  return intern(gauge_names_, name, kMaxGauges, "gauge");
}

MetricRegistry::Id MetricRegistry::histogram(std::string_view name) {
  return intern(hist_names_, name, kMaxHistograms, "histogram");
}

MetricRegistry::Shard* MetricRegistry::local_shard() {
  // Each thread caches (registry uid → shard) so the fast path is a linear
  // scan of a tiny vector with no locks. Registries are few and long-lived;
  // stale entries from destroyed registries are never matched (uids are
  // globally unique) and cost only their cache slot.
  struct CacheEntry {
    std::uint64_t uid;
    Shard* shard;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const auto& e : cache)
    if (e.uid == uid_) return e.shard;

  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    std::lock_guard<std::mutex> lk(m_);
    shards_.push_back(std::move(owned));
  }
  cache.push_back({uid_, shard});
  return shard;
}

void MetricRegistry::add(Id id, double delta) {
  atomic_add(local_shard()->counters[id], delta);
}

void MetricRegistry::set(Id id, double value) {
  gauges_[id].store(value, std::memory_order_relaxed);
}

void MetricRegistry::observe(Id id, double value) {
  Hist& h = local_shard()->hists[id];
  h.buckets[static_cast<std::size_t>(bucket_index(value))].fetch_add(1,
                                                                     std::memory_order_relaxed);
  const std::uint64_t n = h.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(h.sum, value);
  if (n == 0) {
    // First observation in this shard seeds min/max (they start at 0.0,
    // which would otherwise poison all-positive distributions).
    h.min.store(value, std::memory_order_relaxed);
    h.max.store(value, std::memory_order_relaxed);
  } else {
    atomic_min(h.min, value);
    atomic_max(h.max, value);
  }
}

MetricsSnapshot MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(m_);
  MetricsSnapshot snap;

  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    double total = 0.0;
    for (const auto& sh : shards_) total += sh->counters[i].load(std::memory_order_relaxed);
    snap.counters.emplace_back(counter_names_[i], total);
  }

  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i)
    snap.gauges.emplace_back(gauge_names_[i], gauges_[i].load(std::memory_order_relaxed));

  snap.histograms.reserve(hist_names_.size());
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    std::array<std::uint64_t, kBuckets> buckets{};
    HistogramStats st;
    bool first = true;
    for (const auto& sh : shards_) {
      const Hist& h = sh->hists[i];
      const std::uint64_t n = h.count.load(std::memory_order_relaxed);
      if (n == 0) continue;
      for (int b = 0; b < kBuckets; ++b)
        buckets[static_cast<std::size_t>(b)] += h.buckets[static_cast<std::size_t>(b)].load(
            std::memory_order_relaxed);
      st.count += n;
      st.sum += h.sum.load(std::memory_order_relaxed);
      const double mn = h.min.load(std::memory_order_relaxed);
      const double mx = h.max.load(std::memory_order_relaxed);
      if (first) {
        st.min = mn;
        st.max = mx;
        first = false;
      } else {
        st.min = std::min(st.min, mn);
        st.max = std::max(st.max, mx);
      }
    }
    if (st.count) {
      const auto percentile = [&](double q) {
        const std::uint64_t rank = static_cast<std::uint64_t>(
            std::ceil(q / 100.0 * static_cast<double>(st.count)));
        std::uint64_t cum = 0;
        for (int b = 0; b < kBuckets; ++b) {
          cum += buckets[static_cast<std::size_t>(b)];
          if (cum >= rank) {
            const double floor_v =
                b == 0 ? 0.0 : std::ldexp(1.0, b + kMinExp - 1);
            // The bucket edge can undershoot the exact extrema we track.
            return std::clamp(floor_v, st.min, st.max);
          }
        }
        return st.max;
      };
      st.p50 = percentile(50.0);
      st.p95 = percentile(95.0);
      st.p99 = percentile(99.0);
    }
    snap.histograms.emplace_back(hist_names_[i], st);
  }

  const auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricRegistry::reset_values() {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
  for (const auto& sh : shards_) {
    for (auto& c : sh->counters) c.store(0.0, std::memory_order_relaxed);
    for (auto& h : sh->hists) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.min.store(0.0, std::memory_order_relaxed);
      h.max.store(0.0, std::memory_order_relaxed);
    }
  }
}

}  // namespace ascp::obs
