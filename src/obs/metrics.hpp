// metrics.hpp — sharded metric registry: counters, gauges, log-bucketed
// histograms.
//
// The paper's FPGA prototype exists to observe the platform (§4.2 stores
// chain-internal data into SRAM in real time); MetricRegistry is the
// aggregate-statistics half of the simulation-side equivalent. Counters and
// histograms record into per-thread shards — one relaxed atomic op per
// record, no locks, no false sharing with other threads' shards — so
// ChannelFarm workers can instrument hot loops without serializing. A
// snapshot() merges every shard under the registry mutex.
//
// Zero-cost-when-disabled contract: instrumented components hold a
// `MetricRegistry*` that defaults to nullptr (the null sink); nothing in the
// numeric path reads metric state, so enabling metrics cannot perturb
// simulation output.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ascp::obs {

/// Merged view of one histogram. Percentiles are derived from the log-2
/// bucket layout: a recorded value is attributed to the bucket [2^(e-1), 2^e)
/// containing it, and percentile() reports that bucket's lower edge (exact
/// for values that sit on a bucket edge, ≤2× off otherwise); min and max are
/// tracked exactly.
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// Point-in-time merge of every shard, sorted by metric name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;

  /// Value of a counter by name (0 when absent).
  double counter_value(std::string_view name) const;
  /// Stats of a histogram by name (all-zero when absent).
  HistogramStats histogram_stats(std::string_view name) const;
};

class MetricRegistry {
 public:
  using Id = std::uint32_t;

  /// Fixed per-shard capacities: ids are dense indexes into shard arrays so
  /// recording never allocates. Creating more metrics than this throws.
  static constexpr std::size_t kMaxCounters = 192;
  static constexpr std::size_t kMaxGauges = 64;
  static constexpr std::size_t kMaxHistograms = 64;
  /// Histogram buckets: bucket 0 catches v < 2^kMinExp (and v ≤ 0); bucket
  /// i ≥ 1 covers [2^(kMinExp+i-1), 2^(kMinExp+i)).
  static constexpr int kBuckets = 88;
  static constexpr int kMinExp = -40;

  MetricRegistry();
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Get-or-create by name (same name → same id, any thread).
  Id counter(std::string_view name);
  Id gauge(std::string_view name);
  Id histogram(std::string_view name);

  /// Counter increment — one relaxed atomic add in this thread's shard.
  void add(Id id, double delta = 1.0);
  /// Gauge write — last value wins (registry-level, not sharded: gauges are
  /// "current state", which has no meaningful cross-thread merge).
  void set(Id id, double value);
  /// Histogram observation — bucket increment + sum/min/max in this
  /// thread's shard.
  void observe(Id id, double value);

  /// Merge every shard into one consistent view. Safe to call while other
  /// threads record (their in-flight updates land in the next snapshot).
  MetricsSnapshot snapshot() const;

  /// Zero all values (metric names/ids survive). Callers must quiesce
  /// recording threads first.
  void reset_values();

  /// Lower edge of the log bucket that `v` falls into — the value
  /// percentile() would report for a rank landing on `v`'s bucket. Exposed
  /// so tests can construct distributions with exact percentiles.
  static double bucket_floor(double v);
  /// Bucket index for `v` (0 .. kBuckets-1).
  static int bucket_index(double v);

 private:
  struct Hist {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
  };
  struct Shard {
    std::array<std::atomic<double>, kMaxCounters> counters{};
    std::array<Hist, kMaxHistograms> hists{};
  };

  Shard* local_shard();
  Id intern(std::vector<std::string>& names, std::string_view name, std::size_t cap,
            const char* kind);

  const std::uint64_t uid_;  ///< distinguishes registries in the TLS cache
  mutable std::mutex m_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ascp::obs
