// observability.hpp — the sink handed to instrumented components.
//
// ObsSink is a bundle of non-owning pointers; any member may be null and
// components must treat null as "that channel is disabled". The default
// ObsSink{} is the null sink — attaching it is a no-op, which is how the
// zero-cost-when-disabled contract is spelled: components guard every
// emission with a pointer test and never read observability state back into
// the numeric path.
//
// Observability is the owning counterpart for callers who just want "all of
// it": one registry, one event log, one task profiler, one MCU profiler, and
// a sink() view over them.
#pragma once

#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/mcu_profile.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"

namespace ascp::obs {

/// Non-owning view; null members disable the corresponding channel.
struct ObsSink {
  MetricRegistry* metrics = nullptr;
  EventLog* events = nullptr;
  TaskProfiler* tasks = nullptr;
  McuProfiler* mcu = nullptr;
  SpanLog* spans = nullptr;
  FlightRecorder* recorder = nullptr;

  bool enabled() const { return metrics || events || tasks || mcu || spans || recorder; }
};

/// Owning bundle of every observability component.
struct Observability {
  MetricRegistry metrics;
  EventLog events;
  TaskProfiler tasks;
  McuProfiler mcu;
  SpanLog spans;
  FlightRecorder recorder;

  ObsSink sink() { return {&metrics, &events, &tasks, &mcu, &spans, &recorder}; }
};

}  // namespace ascp::obs
