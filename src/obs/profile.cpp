#include "obs/profile.hpp"

#include "obs/span.hpp"

namespace ascp::obs {

TaskProfiler::TaskProfiler(std::size_t slice_capacity)
    : slice_capacity_(slice_capacity) {}

int TaskProfiler::register_task(std::string_view name, long divider, long phase) {
  std::string label(name);
  if (label.empty())
    label = "task@" + std::to_string(divider) + "+" + std::to_string(phase);
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const TaskStats& t = tasks_[i];
    if (t.name == label && t.divider == divider && t.phase == phase)
      return static_cast<int>(i);
  }
  TaskStats t;
  t.name = std::move(label);
  t.divider = divider;
  t.phase = phase;
  tasks_.push_back(std::move(t));
  timed_.push_back(0);
  return static_cast<int>(tasks_.size() - 1);
}

void TaskProfiler::record(int id, long tick, double wall_seconds, double weight) {
  TaskStats& t = tasks_[static_cast<std::size_t>(id)];
  ++t.invocations;
  ++timed_[static_cast<std::size_t>(id)];
  t.wall_seconds += wall_seconds * weight;
  if (slices_.size() < slice_capacity_) {
    slices_.push_back({id, tick_origin_ + tick, wall_seconds});
  } else {
    ++slices_dropped_;
  }
  if (span_log_) {
    const double t0 = base_rate_hz_ > 0.0
                          ? static_cast<double>(tick_origin_ + tick) / base_rate_hz_
                          : 0.0;
    span_log_->complete(t.name.c_str(), SpanCategory::Scheduler, t0, t0,
                        wall_seconds * 1e6);
  }
}

void TaskProfiler::count(int id) { ++tasks_[static_cast<std::size_t>(id)].invocations; }

void TaskProfiler::record_run(double sim_seconds, double wall_seconds) {
  sim_seconds_ += sim_seconds;
  wall_seconds_ += wall_seconds;
}

void TaskProfiler::reset() {
  for (auto& t : tasks_) {
    t.invocations = 0;
    t.wall_seconds = 0.0;
  }
  for (auto& n : timed_) n = 0;
  slices_.clear();
  slices_dropped_ = 0;
  tick_origin_ = 0;
  sim_seconds_ = 0.0;
  wall_seconds_ = 0.0;
}

}  // namespace ascp::obs
