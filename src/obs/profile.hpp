// profile.hpp — scheduler task profiler.
//
// Answers "where did the simulation time go": per-task invocation counts and
// accumulated wall time inside platform::Scheduler, plus a bounded ring of
// per-invocation slices (task, base tick, wall cost) for the Chrome-trace
// exporter, and the run-level sim-time/wall-time ratio.
//
// The profiler outlives individual Scheduler instances on purpose:
// GyroSystem builds a fresh Scheduler per run() call, so tasks are
// re-registered each run and deduplicated here by (name, divider, phase) —
// statistics accumulate across runs. set_tick_origin() maps each run's
// local tick 0 onto the channel's global tick axis so exported slice
// timestamps stay monotonic across runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ascp::obs {

class SpanLog;

class TaskProfiler {
 public:
  explicit TaskProfiler(std::size_t slice_capacity = 16384);

  /// Get-or-create the id for a task. Unnamed tasks profile under a
  /// synthesized "task@divider+phase" label.
  int register_task(std::string_view name, long divider, long phase);

  /// Base tick rate [Hz] of the scheduler feeding this profiler — set by
  /// Scheduler::set_profiler, used to convert ticks to sim seconds.
  void set_base_rate(double hz) { base_rate_hz_ = hz; }
  double base_rate() const { return base_rate_hz_; }

  /// Global tick corresponding to the *next* run's local tick 0.
  void set_tick_origin(long origin) { tick_origin_ = origin; }

  /// Clock-sampling stride. Timing every invocation costs two host clock
  /// reads per task per tick — at a 240 kHz base rate that is ~10x the work
  /// being measured. With stride N the scheduler wall-times every Nth
  /// invocation of each task and scales the sampled cost by N, so
  /// accumulated wall estimates stay unbiased while invocation counts stay
  /// exact. 0 (the default) means auto: the scheduler derives a per-task
  /// stride from its firing rate targeting ~kAutoSampleHz samples per
  /// simulated second. 1 restores exact per-invocation timing.
  void set_sample_stride(long stride) { sample_stride_ = stride < 0 ? 0 : stride; }
  long sample_stride() const { return sample_stride_; }

  /// Target per-task clock-sample rate [Hz] for auto stride.
  static constexpr double kAutoSampleHz = 2000.0;

  /// Also record every *timed* invocation as a completed Scheduler-category
  /// span in `log` (parented to whatever span is open — gyro.run /
  /// channel.advance — so task work hangs off the advance that caused it).
  /// Bounded by the same sampling stride that bounds clock reads. Null
  /// detaches.
  void set_span_log(SpanLog* log) { span_log_ = log; }

  /// One *timed* task invocation at scheduler-local `tick`, costing
  /// `wall_seconds`. `weight` is the sampling stride that selected it: the
  /// invocation stands in for `weight` firings in the wall accumulator.
  void record(int id, long tick, double wall_seconds, double weight = 1.0);

  /// One untimed (skipped-by-sampling) invocation: counts, no wall cost.
  void count(int id);

  /// One completed run of the owning system: `sim_seconds` of simulated time
  /// bought with `wall_seconds` of host time.
  void record_run(double sim_seconds, double wall_seconds);

  struct TaskStats {
    std::string name;
    long divider = 1;
    long phase = 0;
    std::uint64_t invocations = 0;
    double wall_seconds = 0.0;
  };
  const std::vector<TaskStats>& stats() const { return tasks_; }
  std::uint64_t timed_invocations(int id) const {
    return timed_[static_cast<std::size_t>(id)];
  }
  std::size_t task_count() const { return tasks_.size(); }
  const std::string& task_name(int id) const { return tasks_[static_cast<std::size_t>(id)].name; }

  /// Per-invocation slice on the global tick axis (for trace export).
  struct Slice {
    int task_id = 0;
    long tick = 0;  ///< global tick (origin + scheduler-local tick)
    double wall_seconds = 0.0;
  };
  const std::vector<Slice>& slices() const { return slices_; }
  std::uint64_t slices_dropped() const { return slices_dropped_; }

  double sim_seconds() const { return sim_seconds_; }
  double wall_seconds() const { return wall_seconds_; }
  /// Simulated seconds per host second across all recorded runs (0 when no
  /// wall time has been recorded).
  double sim_per_wall() const {
    return wall_seconds_ > 0.0 ? sim_seconds_ / wall_seconds_ : 0.0;
  }

  void reset();

 private:
  std::vector<TaskStats> tasks_;
  std::vector<std::uint64_t> timed_;
  SpanLog* span_log_ = nullptr;
  long sample_stride_ = 0;
  std::vector<Slice> slices_;
  std::size_t slice_capacity_;
  std::uint64_t slices_dropped_ = 0;
  double base_rate_hz_ = 0.0;
  long tick_origin_ = 0;
  double sim_seconds_ = 0.0;
  double wall_seconds_ = 0.0;
};

}  // namespace ascp::obs
