#include "obs/span.hpp"

#include <algorithm>

namespace ascp::obs {

const char* span_category_name(SpanCategory c) {
  switch (c) {
    case SpanCategory::Channel: return "channel";
    case SpanCategory::Scheduler: return "scheduler";
    case SpanCategory::Fleet: return "fleet";
  }
  return "?";
}

namespace {

void copy_name(char (&dst)[24], const char* src) {
  if (!src) src = "";
  std::strncpy(dst, src, sizeof dst - 1);
  dst[sizeof dst - 1] = '\0';
}

}  // namespace

SpanLog::SpanLog(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

std::uint64_t SpanLog::current() const {
  std::uint64_t best = 0, best_order = 0;
  for (const auto& s : open_) {
    if (!s.used) continue;
    if (s.order >= best_order) {
      best_order = s.order;
      best = s.span.span_id;
    }
  }
  return best;
}

std::uint64_t SpanLog::begin(const char* name, SpanCategory cat, double t_begin,
                             std::uint64_t parent) {
  OpenSlot* slot = nullptr;
  for (auto& s : open_) {
    if (!s.used) {
      slot = &s;
      break;
    }
  }
  if (!slot) {
    ++open_dropped_;
    return 0;
  }
  if (parent == kCurrentParent) parent = current();

  slot->used = true;
  slot->order = ++open_seq_;
  ++open_count_;
  Span& sp = slot->span;
  sp = Span{};
  sp.trace_id = trace_id_;
  sp.span_id = next_id_++;
  sp.parent_id = parent;
  copy_name(sp.name, name);
  sp.category = cat;
  sp.t_begin = t_begin;
  sp.t_end = t_begin;
  return sp.span_id;
}

bool SpanLog::end(std::uint64_t id, double t_end, double wall_us) {
  if (id == 0) return false;
  for (auto& s : open_) {
    if (!s.used || s.span.span_id != id) continue;
    s.used = false;
    --open_count_;
    Span sp = s.span;
    sp.t_end = t_end;
    sp.wall_us = wall_us;
    commit(std::move(sp));
    return true;
  }
  return false;
}

void SpanLog::annotate(std::uint64_t id, const char* key, double value) {
  if (id == 0) return;
  for (auto& s : open_) {
    if (!s.used || s.span.span_id != id) continue;
    if (!s.span.k0) {
      s.span.k0 = key;
      s.span.v0 = value;
    } else if (!s.span.k1) {
      s.span.k1 = key;
      s.span.v1 = value;
    }
    return;
  }
}

std::uint64_t SpanLog::complete(const char* name, SpanCategory cat, double t_begin,
                                double t_end, double wall_us, std::uint64_t parent) {
  if (parent == kCurrentParent) parent = current();
  Span sp;
  sp.trace_id = trace_id_;
  sp.span_id = next_id_++;
  sp.parent_id = parent;
  copy_name(sp.name, name);
  sp.category = cat;
  sp.t_begin = t_begin;
  sp.t_end = t_end;
  sp.wall_us = wall_us;
  const std::uint64_t id = sp.span_id;
  commit(std::move(sp));
  return id;
}

void SpanLog::commit(Span&& s) {
  ++by_category_[static_cast<std::size_t>(s.category)];
  if (ring_.size() < capacity_) {
    ring_.push_back(s);
  } else {
    ring_[head_] = s;
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

void SpanLog::for_each(const std::function<void(const Span&)>& fn) const {
  for (std::size_t i = 0; i < ring_.size(); ++i)
    fn(ring_[(head_ + i) % ring_.size()]);
}

void SpanLog::clear() {
  ring_.clear();
  head_ = 0;
  total_ = 0;
  open_dropped_ = 0;
  by_category_.fill(0);
  for (auto& s : open_) s.used = false;
  open_count_ = 0;
}

}  // namespace ascp::obs
