// span.hpp — causal spans: the "why did this happen" layer of the trace.
//
// Events (events.hpp) are points; spans are intervals with *ancestry*. Every
// span carries a (trace_id, span_id, parent_id) triple, so one Chrome trace
// can show the whole causal chain of a fleet incident: fleet.tick →
// channel_exception → incident → restart → restore_checkpoint → catch_up —
// each child hanging off the span that caused it.
//
// Discipline matches the rest of the obs layer:
//   * fixed-capacity ring, zero allocation on the record path (names are
//     copied into a fixed in-record buffer, never pointed at);
//   * single-writer — a SpanLog belongs to one simulation thread (each
//     channel owns one; the fleet supervisor owns another);
//   * read-only: nothing in the numeric path ever reads span state, so the
//     output stream is bit-identical with spans attached or detached.
//
// Open spans live in a small fixed table (not a stack): fleet incidents on
// different channels interleave, so end() addresses spans by id. When the
// table is full, begin() drops the span (counted) rather than allocating.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

namespace ascp::obs {

enum class SpanCategory : std::uint8_t {
  Channel = 0,    ///< channel.advance, gyro.run
  Scheduler = 1,  ///< sampled scheduler-task invocations
  Fleet = 2,      ///< fleet tick + supervisor lifecycle edges
};

constexpr std::size_t kSpanCategoryCount = 3;
const char* span_category_name(SpanCategory c);

struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root span
  char name[24] = {};           ///< truncated copy — no lifetime coupling
  SpanCategory category = SpanCategory::Channel;
  double t_begin = 0.0;  ///< simulation time [s]
  double t_end = 0.0;
  double wall_us = 0.0;  ///< measured host cost (0 when not timed)
  /// Up to two key/value payload numbers; keys must be static literals.
  const char* k0 = nullptr;
  double v0 = 0.0;
  const char* k1 = nullptr;
  double v1 = 0.0;
};

class SpanLog {
 public:
  /// Sentinel for begin()/complete() parent: "whatever span is innermost
  /// open right now". Pass 0 to force a root span.
  static constexpr std::uint64_t kCurrentParent = ~0ull;
  static constexpr std::size_t kMaxOpenSpans = 16;

  explicit SpanLog(std::size_t capacity = 2048);

  /// All spans recorded here share one trace id (the channel seed, the fleet
  /// root seed, …) so a merged export can tell whose causality is whose.
  void set_trace_id(std::uint64_t id) { trace_id_ = id; }
  std::uint64_t trace_id() const { return trace_id_; }

  /// Open a span. Returns its id (0 when the open table was full and the
  /// span was dropped — end(0) is a safe no-op).
  std::uint64_t begin(const char* name, SpanCategory cat, double t_begin,
                      std::uint64_t parent = kCurrentParent);
  /// Close an open span and commit it to the ring. False when `id` is 0 or
  /// unknown (already closed / dropped at begin).
  bool end(std::uint64_t id, double t_end, double wall_us = 0.0);
  /// Attach a key/value to a still-open span (first free of the two slots).
  void annotate(std::uint64_t id, const char* key, double value);
  /// One-shot completed span, committed immediately.
  std::uint64_t complete(const char* name, SpanCategory cat, double t_begin, double t_end,
                         double wall_us = 0.0, std::uint64_t parent = kCurrentParent);

  /// Innermost (most recently begun) span still open; 0 when none.
  std::uint64_t current() const;
  std::size_t open_depth() const { return open_count_; }

  std::size_t capacity() const { return capacity_; }
  /// Completed spans currently retained in the ring.
  std::size_t size() const { return ring_.size(); }
  /// Completed spans ever recorded (including overwritten ones).
  std::uint64_t total() const { return total_; }
  std::uint64_t dropped() const { return total_ - ring_.size(); }
  /// Spans begin() refused because the open table was full.
  std::uint64_t open_dropped() const { return open_dropped_; }
  std::uint64_t count(SpanCategory c) const {
    return by_category_[static_cast<std::size_t>(c)];
  }

  /// Visit retained completed spans oldest → newest.
  void for_each(const std::function<void(const Span&)>& fn) const;

  void clear();

 private:
  struct OpenSlot {
    Span span;
    std::uint64_t order = 0;  ///< begin sequence, for current()
    bool used = false;
  };

  void commit(Span&& s);

  std::uint64_t trace_id_ = 0;
  std::size_t capacity_;
  std::vector<Span> ring_;  ///< grows to capacity_, then wraps via head_
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t open_seq_ = 0;
  std::uint64_t open_dropped_ = 0;
  std::array<std::uint64_t, kSpanCategoryCount> by_category_{};
  std::array<OpenSlot, kMaxOpenSpans> open_{};
  std::size_t open_count_ = 0;
};

/// RAII guard around begin()/end(): exceptions inside the guarded region
/// still close the span (at its begin time), so repeated failures can never
/// leak the fixed open table. Null log → every operation is a no-op.
class SpanScope {
 public:
  SpanScope(SpanLog* log, const char* name, SpanCategory cat, double t_begin)
      : log_(log), t_begin_(t_begin) {
    if (log_) id_ = log_->begin(name, cat, t_begin);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() {
    if (log_ && id_) log_->end(id_, t_begin_);
  }

  std::uint64_t id() const { return id_; }
  void annotate(const char* key, double value) {
    if (log_ && id_) log_->annotate(id_, key, value);
  }
  /// Normal-path close with the real end time (and optional wall cost).
  void close(double t_end, double wall_us = 0.0) {
    if (log_ && id_) log_->end(id_, t_end, wall_us);
    id_ = 0;
  }

 private:
  SpanLog* log_;
  std::uint64_t id_ = 0;
  double t_begin_;
};

}  // namespace ascp::obs
