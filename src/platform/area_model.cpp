#include "platform/area_model.hpp"

#include <sstream>
#include <stdexcept>

namespace ascp::platform {

const std::map<std::string, IpCost>& ip_portfolio() {
  // kgates / analog mm² / mW. Digital figures are 0.35 µm estimates chosen
  // so the gyro customization totals ≈200 Kgates (paper §4.3); analog
  // figures sum to ≈12 mm² with pad ring and routing included.
  static const std::map<std::string, IpCost> portfolio = {
      // --- programmable digital ---
      {"cpu8051", {12.0, 0.0, 6.0}},
      {"rom16k", {2.0, 0.0, 0.8}},
      {"ram_ctrl", {2.0, 0.0, 0.6}},
      {"cache_ctrl", {8.0, 0.0, 2.0}},
      {"uart", {3.0, 0.0, 0.5}},
      {"spi", {2.5, 0.0, 0.4}},
      {"timer16", {1.5, 0.0, 0.2}},
      {"watchdog", {1.0, 0.0, 0.1}},
      {"bridge16", {2.0, 0.0, 0.3}},
      {"sram_ctrl", {4.0, 0.0, 1.0}},
      {"safety_monitor", {7.0, 0.0, 1.0}},
      {"jtag_tap", {1.5, 0.0, 0.2}},
      {"regfile", {5.0, 0.0, 0.5}},
      // --- hardwired DSP ---
      {"nco", {6.0, 0.0, 1.5}},
      {"pll_loop", {14.0, 0.0, 3.0}},
      {"agc_loop", {8.0, 0.0, 1.5}},
      {"iq_demod", {12.0, 0.0, 2.5}},
      {"iq_mod", {8.0, 0.0, 1.5}},
      {"cic_decim", {9.0, 0.0, 1.2}},
      {"fir", {25.0, 0.0, 4.0}},
      {"biquad_bank", {10.0, 0.0, 1.5}},
      {"compensation", {12.0, 0.0, 1.8}},
      {"chain_ctrl", {24.0, 0.0, 3.0}},
      // --- DSP blocks only other sensor classes need ---
      {"sigma_delta_dsp", {18.0, 0.0, 2.5}},
      {"bridge_readout_dsp", {15.0, 0.0, 2.0}},
      {"lvdt_demod_dsp", {14.0, 0.0, 2.0}},
      {"cap_cdc_dsp", {16.0, 0.0, 2.2}},
      // --- analog cells ---
      {"sar_adc12", {0.5, 0.8, 5.0}},
      {"dac12", {0.3, 0.5, 4.0}},
      {"pga", {0.1, 0.3, 2.0}},
      {"charge_amp", {0.1, 0.4, 3.0}},
      {"vref", {0.0, 0.2, 1.0}},
      {"osc", {0.1, 0.3, 2.0}},
      {"temp_sensor", {0.1, 0.15, 0.5}},
      {"wheatstone_exc", {0.0, 0.25, 1.5}},
      {"lvdt_driver", {0.0, 0.35, 2.5}},
      {"pad_ring", {0.0, 5.5, 3.0}},
  };
  return portfolio;
}

void AreaModel::instantiate(const std::string& ip_name, int count) {
  if (!ip_portfolio().contains(ip_name))
    throw std::invalid_argument("unknown IP '" + ip_name + "'");
  instances_[ip_name] += count;
}

double AreaModel::total_kgates() const {
  double sum = 0.0;
  for (const auto& [name, count] : instances_) sum += ip_portfolio().at(name).kgates * count;
  return sum;
}

double AreaModel::total_analog_mm2() const {
  double sum = 0.0;
  for (const auto& [name, count] : instances_) sum += ip_portfolio().at(name).analog_mm2 * count;
  return sum;
}

double AreaModel::total_power_mw() const {
  double sum = 0.0;
  for (const auto& [name, count] : instances_) sum += ip_portfolio().at(name).power_mw * count;
  return sum;
}

std::string AreaModel::report(const std::string& title) const {
  std::ostringstream out;
  out << title << "\n";
  out << "  IP                    x  Kgates  analog mm2  power mW\n";
  for (const auto& [name, count] : instances_) {
    const IpCost& c = ip_portfolio().at(name);
    char line[128];
    std::snprintf(line, sizeof(line), "  %-20s %2d  %6.1f  %10.2f  %8.2f\n", name.c_str(), count,
                  c.kgates * count, c.analog_mm2 * count, c.power_mw * count);
    out << line;
  }
  char totals[128];
  std::snprintf(totals, sizeof(totals), "  TOTAL                   %6.1f  %10.2f  %8.2f\n",
                total_kgates(), total_analog_mm2(), total_power_mw());
  out << totals;
  return out.str();
}

AreaModel AreaModel::universal() {
  // The universal chip must cover the worst-case demand of every sensor
  // class simultaneously: the multi-channel analog complement plus the
  // duplicated DSP blocks the gyro chain needs.
  static const std::map<std::string, int> multi = {
      {"sar_adc12", 4}, {"dac12", 4}, {"pga", 4}, {"charge_amp", 2},
      {"iq_demod", 2},  {"cic_decim", 2}, {"jtag_tap", 2}};
  AreaModel m;
  for (const auto& [name, cost] : ip_portfolio()) {
    const auto it = multi.find(name);
    m.instantiate(name, it == multi.end() ? 1 : it->second);
  }
  return m;
}

}  // namespace ascp::platform
