// area_model.hpp — silicon cost bookkeeping for instantiated IPs.
//
// The paper's central economic claim (§1, §3): the platform instantiates
// *only the required blocks*, so a per-sensor customization carries
// "practically no area overhead" compared with a dedicated design, while a
// Universal Sensor Interface ships every block to every customer. This
// model assigns each IP a gate count (digital), an analog area (mm²) and a
// power figure, and tallies a customization so the area bench can reproduce
// the §4.3 complexity claim (~200 Kgates digital for the gyro platform) and
// the platform-vs-universal ablation.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ascp::platform {

struct IpCost {
  double kgates = 0.0;      ///< digital complexity [Kgates]
  double analog_mm2 = 0.0;  ///< analog area [mm²], 0.35 µm CMOS
  double power_mw = 0.0;    ///< typical power at 20 MHz / 3.3 V [mW]
};

/// The platform's IP portfolio (paper §3: "a well-stocked IP portfolio").
/// Costs are calibrated engineering estimates for 0.35 µm, chosen so the
/// gyro customization totals ≈200 Kgates as reported in §4.3.
const std::map<std::string, IpCost>& ip_portfolio();

/// One customization = the subset of the portfolio actually instantiated.
class AreaModel {
 public:
  /// Add one instance of a portfolio IP (throws if unknown).
  void instantiate(const std::string& ip_name, int count = 1);

  double total_kgates() const;
  double total_analog_mm2() const;
  double total_power_mw() const;

  /// Formatted per-IP report.
  std::string report(const std::string& title) const;

  const std::map<std::string, int>& instances() const { return instances_; }

  /// A customization containing every portfolio IP (the Universal Sensor
  /// Interface strawman of §1).
  static AreaModel universal();

 private:
  std::map<std::string, int> instances_;
};

}  // namespace ascp::platform
