#include "platform/engine/blackbox.hpp"

#include <cstdio>
#include <cstring>

#include "platform/engine/checkpoint.hpp"

namespace ascp::engine {

namespace {

constexpr char kMagic[8] = {'A', 'S', 'C', 'P', 'B', 'B', 'O', 'X'};

void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& v, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return x;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return x;
}

/// StateArchive has no string field (checkpoints never carry text); blackbox
/// payloads do, so strings ride as u64 length + raw bytes.
void str_field(StateArchive& ar, std::string& s) {
  std::uint64_t n = s.size();
  ar.value(n);
  if (!ar.saving()) {
    if (n > (1ull << 24)) throw StateError("blackbox string length implausible");
    s.resize(static_cast<std::size_t>(n));
  }
  if (n) ar.bytes(reinterpret_cast<std::uint8_t*>(&s[0]), static_cast<std::size_t>(n));
}

template <typename T>
void vec_field(StateArchive& ar, std::vector<T>& v,
               const std::function<void(StateArchive&, T&)>& each) {
  std::uint64_t n = v.size();
  ar.value(n);
  if (!ar.saving()) {
    if (n > (1ull << 24)) throw StateError("blackbox element count implausible");
    v.resize(static_cast<std::size_t>(n));
  }
  for (auto& e : v) each(ar, e);
}

void record_field(StateArchive& ar, BlackboxFlightRecord& r) {
  ar.value(r.t_sim);
  ar.value(r.kind);
  ar.value(r.severity);
  ar.value(r.category);
  ar.value(r.tick);
  str_field(ar, r.name);
  str_field(ar, r.detail);
  ar.value(r.a);
  ar.value(r.b);
  str_field(ar, r.k0);
  ar.value(r.v0);
  str_field(ar, r.k1);
  ar.value(r.v1);
}

void span_field(StateArchive& ar, BlackboxSpan& s) {
  ar.value(s.trace_id);
  ar.value(s.span_id);
  ar.value(s.parent_id);
  str_field(ar, s.name);
  ar.value(s.category);
  ar.value(s.t_begin);
  ar.value(s.t_end);
  ar.value(s.wall_us);
  str_field(ar, s.k0);
  ar.value(s.v0);
  str_field(ar, s.k1);
  ar.value(s.v1);
}

void metric_field(StateArchive& ar, BlackboxMetricSample& m) {
  str_field(ar, m.name);
  ar.value(m.value);
}

/// The shared save/load field list (one sequence, both directions — the same
/// discipline every serialize_state in the codebase follows).
void serialize_image(StateArchive& ar, BlackboxImage& img) {
  ar.begin_section("BMET");
  ar.value(img.kind);
  ar.value(img.seed);
  ar.value(img.channel_index);
  ar.value(img.fleet_tick);
  str_field(ar, img.reason);
  ar.value(img.dtcs);
  ar.value(img.restarts);
  ar.value(img.health);
  ar.value(img.rate_dps);
  ar.value(img.temp_c);
  ar.value(img.with_safety);
  ar.value(img.with_faults);
  ar.value(img.crash_ticks);
  ar.value(img.crash_hash);
  ar.value(img.crash_outputs);
  ar.end_section();

  ar.begin_section("BCKP");
  ar.value(img.checkpoint_tick);
  ar.value(img.checkpoint);
  ar.end_section();

  ar.begin_section("BREC");
  vec_field<BlackboxFlightRecord>(ar, img.records, record_field);
  ar.end_section();

  ar.begin_section("BSPN");
  vec_field<BlackboxSpan>(ar, img.channel_spans, span_field);
  vec_field<BlackboxSpan>(ar, img.fleet_spans, span_field);
  ar.end_section();

  ar.begin_section("BMTR");
  vec_field<BlackboxMetricSample>(ar, img.counters, metric_field);
  vec_field<BlackboxMetricSample>(ar, img.gauges, metric_field);
  ar.end_section();
}

}  // namespace

std::vector<std::uint8_t> encode_blackbox(const BlackboxImage& img) {
  StateArchive ar = StateArchive::saver();
  serialize_image(ar, const_cast<BlackboxImage&>(img));
  const std::vector<std::uint8_t> payload = ar.take();

  std::vector<std::uint8_t> out;
  out.reserve(kBlackboxHeaderSize + payload.size());
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  put_u32(out, kBlackboxVersion);
  put_u32(out, img.kind);
  put_u64(out, payload.size());
  put_u32(out, crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

BlackboxImage decode_blackbox(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kBlackboxHeaderSize) throw StateError("blackbox truncated: no header");
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    throw StateError("blackbox bad magic");
  const std::uint32_t version = get_u32(bytes.data() + 8);
  if (version != kBlackboxVersion)
    throw StateError("blackbox version " + std::to_string(version) + " unsupported");
  const std::uint64_t payload_len = get_u64(bytes.data() + 16);
  if (bytes.size() < kBlackboxHeaderSize + payload_len)
    throw StateError("blackbox truncated: payload shorter than declared");
  const std::uint32_t want = get_u32(bytes.data() + 24);
  const std::uint32_t got =
      crc32(bytes.data() + kBlackboxHeaderSize, static_cast<std::size_t>(payload_len));
  if (want != got) throw StateError("blackbox CRC mismatch: payload corrupted");

  BlackboxImage img;
  StateArchive ar = StateArchive::loader(bytes.data() + kBlackboxHeaderSize,
                                         static_cast<std::size_t>(payload_len));
  serialize_image(ar, img);
  if (!ar.exhausted()) throw StateError("blackbox has trailing bytes");
  if (img.kind != get_u32(bytes.data() + 12))
    throw StateError("blackbox header/payload kind disagreement");
  return img;
}

bool inspect_blackbox(const std::vector<std::uint8_t>& bytes, BlackboxInfo* info) {
  if (bytes.size() < kBlackboxHeaderSize) return false;
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) return false;
  BlackboxInfo out;
  out.version = get_u32(bytes.data() + 8);
  out.kind = get_u32(bytes.data() + 12);
  out.payload_len = get_u64(bytes.data() + 16);
  out.crc = get_u32(bytes.data() + 24);
  out.crc_ok = bytes.size() >= kBlackboxHeaderSize + out.payload_len &&
               crc32(bytes.data() + kBlackboxHeaderSize,
                     static_cast<std::size_t>(out.payload_len)) == out.crc;
  if (info) *info = out;
  return true;
}

void capture_flight_records(const obs::FlightRecorder& rec,
                            std::vector<BlackboxFlightRecord>* out) {
  out->clear();
  out->reserve(rec.size());
  rec.for_each([out](const obs::FlightRecord& r) {
    BlackboxFlightRecord d;
    d.t_sim = r.t_sim;
    d.kind = static_cast<std::uint8_t>(r.kind);
    d.severity = r.severity;
    d.category = r.category;
    d.tick = r.tick;
    d.name = r.name;
    d.detail = r.detail;
    d.a = r.a;
    d.b = r.b;
    if (r.k0) d.k0 = r.k0;
    d.v0 = r.v0;
    if (r.k1) d.k1 = r.k1;
    d.v1 = r.v1;
    out->push_back(std::move(d));
  });
}

void capture_spans(const obs::SpanLog& log, std::vector<BlackboxSpan>* out) {
  out->clear();
  out->reserve(log.size());
  log.for_each([out](const obs::Span& s) {
    BlackboxSpan d;
    d.trace_id = s.trace_id;
    d.span_id = s.span_id;
    d.parent_id = s.parent_id;
    d.name = s.name;
    d.category = static_cast<std::uint8_t>(s.category);
    d.t_begin = s.t_begin;
    d.t_end = s.t_end;
    d.wall_us = s.wall_us;
    if (s.k0) d.k0 = s.k0;
    d.v0 = s.v0;
    if (s.k1) d.k1 = s.k1;
    d.v1 = s.v1;
    out->push_back(std::move(d));
  });
}

void capture_metrics(const obs::MetricRegistry& reg,
                     std::vector<BlackboxMetricSample>* counters,
                     std::vector<BlackboxMetricSample>* gauges) {
  const obs::MetricsSnapshot snap = reg.snapshot();
  counters->clear();
  gauges->clear();
  counters->reserve(snap.counters.size());
  for (const auto& [name, value] : snap.counters) counters->push_back({name, value});
  gauges->reserve(snap.gauges.size());
  for (const auto& [name, value] : snap.gauges) gauges->push_back({name, value});
}

BlackboxReplay replay_blackbox(const BlackboxImage& img, const ChannelConfig* base) {
  ChannelConfig cfg = base ? *base : ChannelConfig{};
  cfg.kind = static_cast<ChannelKind>(img.kind);
  cfg.seed = img.seed;
  if (!base) {
    cfg.rate_dps = img.rate_dps;
    cfg.temp_c = img.temp_c;
    cfg.with_safety = img.with_safety;
    cfg.with_faults = img.with_faults;
  }
  // Replay is a forensic rebuild, not a telemetry run: recorders/probes stay
  // off so the rebuilt channel is the minimal bit-exact twin.
  cfg.with_obs = false;
  cfg.with_flight_recorder = false;

  BlackboxReplay rep;
  auto channel = std::make_unique<ConditioningChannel>(cfg);
  std::int64_t from_tick = 0;
  if (!img.checkpoint.empty()) {
    try {
      channel->restore(img.checkpoint);
      rep.checkpoint_used = true;
      from_tick = channel->ticks_advanced();
    } catch (const StateError&) {
      // Same demotion the supervisor applies: detected corruption → cold
      // rebuild and full replay from tick zero.
      rep.checkpoint_corrupt = true;
      channel = std::make_unique<ConditioningChannel>(cfg);
      from_tick = 0;
    }
  }
  if (channel->ticks_advanced() > img.crash_ticks)
    throw StateError("blackbox checkpoint is beyond the crash tick");
  (void)from_tick;
  channel->advance(static_cast<long>(img.crash_ticks) - channel->ticks_advanced());
  rep.replay_ticks = channel->ticks_advanced();
  rep.replay_hash = channel->output_hash();
  rep.replay_outputs = channel->total_outputs();
  rep.hash_match =
      rep.replay_hash == img.crash_hash && rep.replay_ticks == img.crash_ticks;
  return rep;
}

void save_blackbox_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw StateError("cannot open blackbox file for writing: " + path);
  const std::size_t n = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (n != bytes.size()) throw StateError("short write to blackbox file: " + path);
}

std::vector<std::uint8_t> load_blackbox_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw StateError("cannot open blackbox file: " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return bytes;
}

}  // namespace ascp::engine
