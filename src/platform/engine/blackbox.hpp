// blackbox.hpp — versioned, CRC-framed crash image (`.blackbox`): the
// flight-recorder dump a supervisor writes when a channel dies.
//
// A checkpoint answers "resume from here"; a blackbox answers "what happened,
// and show me again". One image bundles everything needed for post-mortem
// *replay* of a single channel failure:
//
//   * identity + crash context — channel kind/seed/index, fleet tick, the
//     failure reason, DTCs, restart count, health at dump time;
//   * the crash-instant fingerprint — ticks advanced, streaming output hash,
//     lifetime output count of the wrecked instance (always a clean prefix:
//     the hash folds only after a successful sensor run, and chaos is
//     injected before the advance mutates anything);
//   * the last-good checkpoint image, carried verbatim — possibly corrupt,
//     replay detects that exactly like the supervisor did;
//   * the observability tail — flight-recorder ring, channel + fleet causal
//     spans, metric snapshot — decoded into owning structs so a tool can
//     render them long after the producing process is gone.
//
// Frame layout mirrors checkpoint.hpp on purpose (magic + version + kind +
// length + CRC, 28-byte header) with its own magic "ASCPBBOX" and its own
// distinct error messages, so a blackbox can never be mistaken for a
// checkpoint by either reader. Same versioning rules: any payload-layout
// change bumps the version; no cross-version migration.
//   v1  PR 9 original layout
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/state_archive.hpp"
#include "platform/engine/conditioning_channel.hpp"

namespace ascp::engine {

constexpr std::uint32_t kBlackboxVersion = 1;
constexpr std::size_t kBlackboxHeaderSize = 28;

/// Parsed frame header (blackbox_tool's inspect view).
struct BlackboxInfo {
  std::uint32_t version = 0;
  std::uint32_t kind = 0;  ///< engine::ChannelKind of the crashed channel
  std::uint64_t payload_len = 0;
  std::uint32_t crc = 0;
  bool crc_ok = false;
};

/// One flight-recorder record, decoded into owning strings (the in-process
/// FlightRecord holds static-literal pointers that do not survive export).
struct BlackboxFlightRecord {
  double t_sim = 0.0;
  std::uint8_t kind = 0;      ///< obs::FlightKind
  std::uint8_t severity = 0;  ///< obs::EventSeverity (Event records)
  std::uint8_t category = 0;  ///< obs::EventCategory / sensor::ProbePoint
  std::int64_t tick = 0;
  std::string name;
  std::string detail;
  double a = 0.0;
  double b = 0.0;
  std::string k0;
  double v0 = 0.0;
  std::string k1;
  double v1 = 0.0;
};

/// One causal span, decoded into owning strings.
struct BlackboxSpan {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::string name;
  std::uint8_t category = 0;  ///< obs::SpanCategory
  double t_begin = 0.0;
  double t_end = 0.0;
  double wall_us = 0.0;
  std::string k0;
  double v0 = 0.0;
  std::string k1;
  double v1 = 0.0;
};

struct BlackboxMetricSample {
  std::string name;
  double value = 0.0;
};

/// The decoded crash image.
struct BlackboxImage {
  // ---- identity + crash context -----------------------------------------
  std::uint32_t kind = 0;  ///< engine::ChannelKind
  std::uint64_t seed = 0;  ///< the channel's derived seed (restart recipe)
  std::uint64_t channel_index = 0;
  std::int64_t fleet_tick = 0;
  std::string reason;      ///< exception text / quarantine cause
  std::uint16_t dtcs = 0;
  std::int32_t restarts = 0;
  std::uint8_t health = 0;  ///< engine::ChannelHealth at dump time
  // Config knobs replay needs to rebuild an equivalent channel. Channels
  // with closure hooks (configure/customize/stimulus_factory) need the
  // caller to supply a base config — closures cannot travel in an image.
  double rate_dps = 30.0;
  double temp_c = 25.0;
  bool with_safety = false;
  bool with_faults = false;

  // ---- crash-instant fingerprint of the wrecked instance ----------------
  std::int64_t crash_ticks = 0;
  std::uint64_t crash_hash = 0;
  std::uint64_t crash_outputs = 0;

  // ---- last-good checkpoint, verbatim (possibly corrupt/empty) ----------
  std::int64_t checkpoint_tick = 0;
  std::vector<std::uint8_t> checkpoint;

  // ---- observability tail ------------------------------------------------
  std::vector<BlackboxFlightRecord> records;
  std::vector<BlackboxSpan> channel_spans;  ///< from the channel's SpanLog
  std::vector<BlackboxSpan> fleet_spans;    ///< from the supervisor's SpanLog
  std::vector<BlackboxMetricSample> counters;
  std::vector<BlackboxMetricSample> gauges;
};

/// Encode an image into a framed `.blackbox` byte stream.
std::vector<std::uint8_t> encode_blackbox(const BlackboxImage& img);

/// Decode a framed stream. Throws StateError on bad magic, unsupported
/// version, truncation or CRC mismatch — messages are distinct from the
/// checkpoint reader's ("blackbox …" vs "checkpoint …").
BlackboxImage decode_blackbox(const std::vector<std::uint8_t>& bytes);

/// Parse the header without throwing: false only when the stream is too
/// short for a header or the magic is wrong.
bool inspect_blackbox(const std::vector<std::uint8_t>& bytes, BlackboxInfo* info);

// ---- capture (producer side) --------------------------------------------
/// Snapshot a live obs bundle's tails into the image's owning vectors.
void capture_flight_records(const obs::FlightRecorder& rec,
                            std::vector<BlackboxFlightRecord>* out);
void capture_spans(const obs::SpanLog& log, std::vector<BlackboxSpan>* out);
void capture_metrics(const obs::MetricRegistry& reg,
                     std::vector<BlackboxMetricSample>* counters,
                     std::vector<BlackboxMetricSample>* gauges);

// ---- replay (forensics side) --------------------------------------------
struct BlackboxReplay {
  bool checkpoint_used = false;     ///< restored from the embedded image
  bool checkpoint_corrupt = false;  ///< embedded image rejected → cold replay
  std::int64_t replay_ticks = 0;
  std::uint64_t replay_hash = 0;
  std::uint64_t replay_outputs = 0;
  /// replay_hash == crash_hash — the failure state was reproduced bit-exactly.
  bool hash_match = false;
};

/// Rebuild the crashed channel (kind + seed + carried knobs, or `base` when
/// the original config had closure hooks), restore the embedded checkpoint
/// (a corrupt one is detected and demoted to a cold replay, exactly like the
/// supervisor's restart path), advance to the crash tick and compare the
/// output hash against the recorded crash fingerprint.
BlackboxReplay replay_blackbox(const BlackboxImage& img,
                               const ChannelConfig* base = nullptr);

// ---- file helpers --------------------------------------------------------
void save_blackbox_file(const std::string& path, const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> load_blackbox_file(const std::string& path);

}  // namespace ascp::engine
