#include "platform/engine/channel_farm.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace ascp::engine {

ChannelFarm::ChannelFarm(std::vector<ChannelConfig> specs, const FarmConfig& cfg) {
  Rng root(cfg.root_seed);
  channels_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].seed = root.fork(static_cast<std::uint64_t>(i) + 1).next_u64();
    channels_.push_back(std::make_unique<ConditioningChannel>(specs[i]));
  }

  threads_ = cfg.threads != 0 ? cfg.threads : std::max(1u, std::thread::hardware_concurrency());
  // A worker per channel is the useful maximum; a single worker is the
  // calling thread (no pool at all), which doubles as the reference
  // configuration the determinism tests compare against.
  const unsigned pool_size =
      static_cast<unsigned>(std::min<std::size_t>(threads_, channels_.size()));
  if (pool_size > 1) {
    pool_.reserve(pool_size);
    for (unsigned k = 0; k < pool_size; ++k) pool_.emplace_back([this] { worker_loop(); });
  }
}

ChannelFarm::~ChannelFarm() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : pool_) t.join();
}

void ChannelFarm::advance(double seconds) {
  // Each channel converts the common wall of simulated time to its own base
  // ticks (farms may mix base rates), exactly as a solo run would.
  auto advance_one = [seconds](ConditioningChannel& ch) {
    ch.advance(std::llround(seconds * ch.base_rate_hz()));
  };

  if (pool_.empty()) {
    for (auto& ch : channels_) advance_one(*ch);
    return;
  }

  {
    std::lock_guard<std::mutex> lk(m_);
    pending_seconds_ = seconds;
    cursor_.store(0, std::memory_order_relaxed);
    active_ = pool_.size();
    ++generation_;
  }
  cv_work_.notify_all();

  std::unique_lock<std::mutex> lk(m_);
  cv_done_.wait(lk, [this] { return active_ == 0; });
}

void ChannelFarm::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    double seconds;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      seconds = pending_seconds_;
    }

    std::size_t i;
    while ((i = cursor_.fetch_add(1, std::memory_order_relaxed)) < channels_.size()) {
      auto& ch = *channels_[i];
      ch.advance(std::llround(seconds * ch.base_rate_hz()));
    }

    {
      std::lock_guard<std::mutex> lk(m_);
      if (--active_ == 0) cv_done_.notify_one();
    }
  }
}

std::size_t ChannelFarm::total_samples() const {
  std::size_t n = 0;
  for (const auto& ch : channels_) n += ch->outputs().size();
  return n;
}

}  // namespace ascp::engine
