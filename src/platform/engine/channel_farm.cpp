#include "platform/engine/channel_farm.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace ascp::engine {

ChannelFarm::ChannelFarm(std::vector<ChannelConfig> specs, const FarmConfig& cfg) {
  metrics_ = cfg.shared_metrics;
  if (metrics_) {
    m_advances_ = metrics_->counter("farm.channel_advances");
    m_samples_ = metrics_->counter("farm.output_samples");
    m_exceptions_ = metrics_->counter("farm.channel_exceptions");
    h_ticks_ = metrics_->histogram("farm.advance_ticks");
  }
  Rng root(cfg.root_seed);
  channels_.reserve(specs.size());
  slots_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (cfg.reseed_channels)
      specs[i].seed = root.fork(static_cast<std::uint64_t>(i) + 1).next_u64();
    channels_.push_back(std::make_unique<ConditioningChannel>(specs[i]));
    slots_.push_back(std::make_unique<Slot>());
  }

  threads_ = cfg.threads != 0 ? cfg.threads : std::max(1u, std::thread::hardware_concurrency());
  // A worker per channel is the useful maximum; a single worker is the
  // calling thread (no pool at all), which doubles as the reference
  // configuration the determinism tests compare against.
  const unsigned pool_size =
      static_cast<unsigned>(std::min<std::size_t>(threads_, channels_.size()));
  if (pool_size > 1) {
    pool_.reserve(pool_size);
    for (unsigned k = 0; k < pool_size; ++k) pool_.emplace_back([this] { worker_loop(); });
  }
}

ChannelFarm::~ChannelFarm() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : pool_) t.join();
}

void ChannelFarm::advance_channel(std::size_t i, double seconds) {
  Slot& slot = *slots_[i];
  if (slot.failed.load(std::memory_order_acquire)) return;
  ConditioningChannel& ch = *channels_[i];
  // Each channel converts the common wall of simulated time to its own base
  // ticks (farms may mix base rates), exactly as a solo run would.
  const long ticks = std::llround(seconds * ch.base_rate_hz());
  const std::uint64_t before = ch.total_outputs();
  try {
    ch.advance(ticks);
  } catch (const std::exception& e) {
    // Contain the failure to this channel: the worker thread survives, the
    // siblings never notice, and the channel is skipped from here on.
    slot.error = e.what();
    slot.failed.store(true, std::memory_order_release);
    if (metrics_) metrics_->add(m_exceptions_);
    return;
  } catch (...) {
    slot.error = "unknown exception";
    slot.failed.store(true, std::memory_order_release);
    if (metrics_) metrics_->add(m_exceptions_);
    return;
  }
  if (metrics_) {
    // Sharded, commutative records only: the merged totals are independent
    // of which worker ran which channel. total_outputs() rather than queue
    // size: a bounded queue can shrink across an advance.
    metrics_->add(m_advances_);
    metrics_->add(m_samples_, static_cast<double>(ch.total_outputs() - before));
    metrics_->observe(h_ticks_, static_cast<double>(ticks));
  }
}

void ChannelFarm::advance(double seconds) {
  if (pool_.empty()) {
    for (std::size_t i = 0; i < channels_.size(); ++i) advance_channel(i, seconds);
    return;
  }

  {
    std::lock_guard<std::mutex> lk(m_);
    pending_seconds_ = seconds;
    cursor_.store(0, std::memory_order_relaxed);
    active_ = pool_.size();
    ++generation_;
  }
  cv_work_.notify_all();

  std::unique_lock<std::mutex> lk(m_);
  cv_done_.wait(lk, [this] { return active_ == 0; });
}

void ChannelFarm::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    double seconds;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      seconds = pending_seconds_;
    }

    std::size_t i;
    while ((i = cursor_.fetch_add(1, std::memory_order_relaxed)) < channels_.size())
      advance_channel(i, seconds);

    {
      std::lock_guard<std::mutex> lk(m_);
      if (--active_ == 0) cv_done_.notify_one();
    }
  }
}

std::size_t ChannelFarm::total_samples() const {
  std::size_t n = 0;
  for (const auto& ch : channels_) n += ch->outputs().size();
  return n;
}

std::size_t ChannelFarm::failed_channels() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (channel_failed(i)) ++n;
  return n;
}

}  // namespace ascp::engine
