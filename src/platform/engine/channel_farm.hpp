// channel_farm.hpp — parallel multi-channel simulation engine.
//
// Runs N independent ConditioningChannels across a fixed pool of worker
// threads: the scale-out layer that turns the single-device simulator into a
// characterization farm (Monte Carlo seed sweeps, mixed platform/baseline
// fleets, per-channel fault campaigns).
//
// Determinism: each channel's seed is forked from the farm's root seed by
// channel index, every channel is advanced by exactly one worker per
// advance() call, and channels share no mutable state — so the per-channel
// output streams are byte-identical whether the farm runs on 1 thread or 64.
// Result collection is lock-free: each channel appends to its own
// preallocated output vector; the pool synchronizes only on the work-queue
// cursor (one atomic fetch_add per channel per advance).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "platform/engine/conditioning_channel.hpp"

namespace ascp::engine {

struct FarmConfig {
  /// Root of the per-channel seed tree: channel i is powered on with
  /// Rng(root_seed).fork(i + 1).next_u64(), so one number reproduces the
  /// whole farm and channels stay decorrelated.
  std::uint64_t root_seed = 1;
  /// When false, each spec's own `seed` is kept instead of being forked from
  /// root_seed — the conformance fuzzer needs farm-run channels to reproduce
  /// the exact stream of a solo run of the same scenario.
  bool reseed_channels = true;
  /// Worker threads; 0 selects std::thread::hardware_concurrency(). The pool
  /// is created once at construction and reused by every advance() call.
  unsigned threads = 1;
  /// Optional farm-level metric registry (non-owning). Workers record
  /// per-channel progress into their thread's shard lock-free; because every
  /// recorded quantity is a commutative sum (counters, histogram buckets),
  /// the merged snapshot is identical for any thread count and any
  /// channel→worker assignment.
  obs::MetricRegistry* shared_metrics = nullptr;
};

class ChannelFarm {
 public:
  /// Builds one channel per spec. Each spec's `seed` field is overwritten
  /// with the farm-derived stream for its index (see FarmConfig::root_seed).
  ChannelFarm(std::vector<ChannelConfig> specs, const FarmConfig& cfg);
  ~ChannelFarm();

  ChannelFarm(const ChannelFarm&) = delete;
  ChannelFarm& operator=(const ChannelFarm&) = delete;

  /// Advance every channel by `seconds` of simulated base time. Blocks until
  /// all channels have caught up. Repeated calls accumulate, with decimation
  /// phase carrying across calls per channel.
  void advance(double seconds);

  std::size_t size() const { return channels_.size(); }
  unsigned threads() const { return threads_; }
  ConditioningChannel& channel(std::size_t i) { return *channels_[i]; }
  const ConditioningChannel& channel(std::size_t i) const { return *channels_[i]; }

  /// Total decimated output samples across all channels so far.
  std::size_t total_samples() const;

  // ---- exception containment ----------------------------------------------
  // A channel that throws mid-advance() is marked failed and skipped by
  // every later advance; the exception never crosses a worker thread
  // boundary, so the pool and the sibling channels are unaffected. The
  // failed channel's partial state is considered poisoned — a supervisor
  // layer (FleetSupervisor) decides whether to rebuild it.
  bool channel_failed(std::size_t i) const {
    return slots_[i]->failed.load(std::memory_order_acquire);
  }
  /// The captured exception message ("" while the channel is healthy).
  std::string channel_error(std::size_t i) const {
    return channel_failed(i) ? slots_[i]->error : std::string();
  }
  std::size_t failed_channels() const;
  /// Clear a channel's failed mark after replacing/repairing it in place.
  void clear_channel_failure(std::size_t i) {
    slots_[i]->error.clear();
    slots_[i]->failed.store(false, std::memory_order_release);
  }

 private:
  // One worker owns a channel for the duration of an advance, so `error` is
  // written by exactly one thread before the release-store on `failed`;
  // cross-thread readers pair it with the acquire-load above.
  struct Slot {
    std::atomic<bool> failed{false};
    std::string error;
  };

  void worker_loop();
  void advance_channel(std::size_t i, double seconds);

  std::vector<std::unique_ptr<ConditioningChannel>> channels_;
  std::vector<std::unique_ptr<Slot>> slots_;
  unsigned threads_ = 1;

  obs::MetricRegistry* metrics_ = nullptr;
  obs::MetricRegistry::Id m_advances_ = 0, m_samples_ = 0, m_exceptions_ = 0;
  obs::MetricRegistry::Id h_ticks_ = 0;

  // Pool coordination: advance() publishes the time quantum under the mutex
  // and bumps the generation; workers race down the atomic cursor, and the
  // last one out signals completion. Channel work runs with no lock held.
  std::vector<std::thread> pool_;
  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  double pending_seconds_ = 0.0;
  std::atomic<std::size_t> cursor_{0};
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace ascp::engine
