#include "platform/engine/checkpoint.hpp"

#include <cstring>

namespace ascp::engine {

namespace {

constexpr char kMagic[8] = {'A', 'S', 'C', 'P', 'C', 'K', 'P', 'T'};

void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& v, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return x;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return x;
}

}  // namespace

std::vector<std::uint8_t> wrap_checkpoint(std::uint32_t kind,
                                          const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> image;
  image.reserve(kCheckpointHeaderSize + payload.size());
  image.insert(image.end(), kMagic, kMagic + sizeof kMagic);
  put_u32(image, kCheckpointVersion);
  put_u32(image, kind);
  put_u64(image, payload.size());
  put_u32(image, crc32(payload.data(), payload.size()));
  image.insert(image.end(), payload.begin(), payload.end());
  return image;
}

bool inspect_checkpoint(const std::vector<std::uint8_t>& image, CheckpointInfo* info) {
  if (image.size() < kCheckpointHeaderSize) return false;
  if (std::memcmp(image.data(), kMagic, sizeof kMagic) != 0) return false;
  CheckpointInfo out;
  out.version = get_u32(image.data() + 8);
  out.kind = get_u32(image.data() + 12);
  out.payload_len = get_u64(image.data() + 16);
  out.crc = get_u32(image.data() + 24);
  out.crc_ok = image.size() >= kCheckpointHeaderSize + out.payload_len &&
               crc32(image.data() + kCheckpointHeaderSize,
                     static_cast<std::size_t>(out.payload_len)) == out.crc;
  if (info) *info = out;
  return true;
}

std::vector<std::uint8_t> unwrap_checkpoint(const std::vector<std::uint8_t>& image,
                                            std::uint32_t* kind_out) {
  if (image.size() < kCheckpointHeaderSize) throw StateError("checkpoint truncated: no header");
  if (std::memcmp(image.data(), kMagic, sizeof kMagic) != 0)
    throw StateError("checkpoint bad magic");
  const std::uint32_t version = get_u32(image.data() + 8);
  if (version != kCheckpointVersion)
    throw StateError("checkpoint version " + std::to_string(version) + " unsupported");
  const std::uint64_t payload_len = get_u64(image.data() + 16);
  if (image.size() < kCheckpointHeaderSize + payload_len)
    throw StateError("checkpoint truncated: payload shorter than declared");
  const std::uint32_t want = get_u32(image.data() + 24);
  const std::uint32_t got =
      crc32(image.data() + kCheckpointHeaderSize, static_cast<std::size_t>(payload_len));
  if (want != got) throw StateError("checkpoint CRC mismatch: payload corrupted");
  if (kind_out) *kind_out = get_u32(image.data() + 12);
  return std::vector<std::uint8_t>(image.begin() + kCheckpointHeaderSize,
                                   image.begin() + static_cast<std::ptrdiff_t>(
                                                       kCheckpointHeaderSize + payload_len));
}

}  // namespace ascp::engine
