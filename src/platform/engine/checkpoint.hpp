// checkpoint.hpp — versioned, CRC-framed container for channel checkpoints.
//
// A checkpoint is the serialized dynamic state of one ConditioningChannel
// (produced by StateArchive), wrapped in a small self-describing frame so a
// reader can reject garbage *before* interpreting any of it:
//
//   offset  size  field
//   0       8     magic "ASCPCKPT"
//   8       4     format version (u32 LE)
//   12      4     channel kind (u32 LE, engine::ChannelKind)
//   16      8     payload length (u64 LE)
//   24      4     CRC-32 of the payload (u32 LE, reflected 0xEDB88320)
//   28      n     payload (StateArchive stream)
//
// unwrap() distinguishes the two failure classes the chaos harness injects:
// truncation (frame or payload shorter than declared) and corruption (CRC
// mismatch), both reported as StateError with distinct messages.
//
// Versioning rules (shared with the `.strace` stimulus-trace container, see
// sensor/stimulus_source.hpp): any payload-layout change bumps the format
// version, readers reject versions they do not know, and there is no
// cross-version migration — a checkpoint is a point-in-time artifact of one
// build, not an interchange format. History:
//   v1  PR 6 original layout
//   v2  CHAN section gains the stimulus-source summary (kind u32 + cursor
//       i64 at payload offsets 20/24) and the embedded source state
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/state_archive.hpp"

namespace ascp::engine {

constexpr std::uint32_t kCheckpointVersion = 2;
constexpr std::size_t kCheckpointHeaderSize = 28;

/// Parsed frame header (checkpoint_tool's inspect view).
struct CheckpointInfo {
  std::uint32_t version = 0;
  std::uint32_t kind = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t crc = 0;
  bool crc_ok = false;
};

/// Frame a StateArchive payload into a checkpoint image.
std::vector<std::uint8_t> wrap_checkpoint(std::uint32_t kind,
                                          const std::vector<std::uint8_t>& payload);

/// Validate the frame and return the payload. Throws StateError on bad
/// magic, unsupported version, truncation or CRC mismatch.
std::vector<std::uint8_t> unwrap_checkpoint(const std::vector<std::uint8_t>& image,
                                            std::uint32_t* kind_out = nullptr);

/// Parse the header without throwing (inspect path): returns false only when
/// the image is too short to hold a header or the magic is wrong.
bool inspect_checkpoint(const std::vector<std::uint8_t>& image, CheckpointInfo* info);

}  // namespace ascp::engine
