#include "platform/engine/conditioning_channel.hpp"

#include <cstring>

#include "core/baselines.hpp"
#include "core/gyro_system.hpp"
#include "platform/engine/checkpoint.hpp"
#include "safety/standard_faults.hpp"

namespace ascp::engine {

/// Probe tee the channel interposes when the flight recorder is armed:
/// forwards frames the user's probe asked for untouched, and samples the
/// stimulus (strided — the analog tick rate would flood the ring) and every
/// decimated output into the recorder. Read-only like any probe, so the
/// bit-identity contract is preserved.
class ChannelRecorderProbe final : public sensor::Probe {
 public:
  /// Prime stride so the retained stimulus samples never beat against the
  /// chain's power-of-two decimators.
  static constexpr std::uint64_t kStimulusStride = 997;

  ChannelRecorderProbe(obs::FlightRecorder* rec, sensor::Probe* user, double base_rate_hz)
      : rec_(rec), user_(user), base_rate_hz_(base_rate_hz) {}

  bool wants(sensor::ProbePoint p) const override {
    if (p == sensor::ProbePoint::Stimulus || p == sensor::ProbePoint::DecimatedOutput)
      return true;
    return user_ && user_->wants(p);
  }

  void on_frame(const sensor::ProbeFrame& f) override {
    if (user_ && user_->wants(f.point)) user_->on_frame(f);
    if (f.point == sensor::ProbePoint::Stimulus) {
      if (stim_seen_++ % kStimulusStride != 0) return;
    } else if (f.point != sensor::ProbePoint::DecimatedOutput) {
      return;
    }
    rec_->record_probe(static_cast<double>(f.tick) / base_rate_hz_,
                       static_cast<std::uint8_t>(f.point), f.tick, f.a, f.b);
  }

 private:
  obs::FlightRecorder* rec_;
  sensor::Probe* user_;
  double base_rate_hz_;
  std::uint64_t stim_seen_ = 0;
};

ConditioningChannel::ConditioningChannel(const ChannelConfig& cfg) : cfg_(cfg) {
  // The recorder rides on the obs bundle (ring + event tee + span ids).
  if (cfg_.with_flight_recorder) cfg_.with_obs = true;
  switch (cfg_.kind) {
    case ChannelKind::GyroFull:
    case ChannelKind::GyroIdeal: {
      auto sys_cfg = core::default_gyro_system(
          cfg_.kind == ChannelKind::GyroFull ? core::Fidelity::Full : core::Fidelity::Ideal);
      sys_cfg.with_safety =
          cfg_.with_safety || cfg_.with_faults || static_cast<bool>(cfg_.campaign_factory);
      if (cfg_.configure) cfg_.configure(sys_cfg);
      // The channel owns one continuous timeline: profiles are evaluated on
      // the global tick axis, so advance(a); advance(b) — and a checkpoint
      // resume — see the stimulus continue rather than restart at t = 0.
      sys_cfg.stimulus_global_time = true;
      auto sys = std::make_unique<core::GyroSystem>(sys_cfg);
      gyro_ = sys.get();
      sensor_ = std::move(sys);
      base_rate_hz_ = sys_cfg.analog_fs;
      break;
    }
    case ChannelKind::Adxrs300: {
      auto bl_cfg = core::adxrs300_like();
      bl_cfg.stimulus_global_time = true;
      sensor_ = std::make_unique<core::AnalogGyroBaseline>(bl_cfg);
      base_rate_hz_ = bl_cfg.analog_fs;
      break;
    }
    case ChannelKind::Gyrostar: {
      auto bl_cfg = core::gyrostar_like();
      bl_cfg.stimulus_global_time = true;
      sensor_ = std::make_unique<core::AnalogGyroBaseline>(bl_cfg);
      base_rate_hz_ = bl_cfg.analog_fs;
      break;
    }
  }
  // Register writes and firmware loads land before power_on so config-hook
  // effects (PGA gains, ADC bits, sense mode) are baked into the cold build.
  if (gyro_ && cfg_.customize) cfg_.customize(*gyro_);
  sensor_->power_on(cfg_.seed);

  if (cfg_.with_obs) {
    obs_ = std::make_unique<obs::Observability>();
    // One causal trace per channel, keyed by its seed: every span emitted
    // into this bundle (advance wrappers, sampled scheduler tasks) shares it.
    obs_->spans.set_trace_id(cfg_.seed);
    if (cfg_.with_flight_recorder)
      obs_->events.set_flight_recorder(&obs_->recorder);
    if (gyro_)
      gyro_->set_observability(obs_->sink());
    else if (auto* bl = dynamic_cast<core::AnalogGyroBaseline*>(sensor_.get()))
      bl->set_observability(obs_->sink());
  }

  if (gyro_ && cfg_.with_trace) {
    trace_ = std::make_unique<TraceRecorder>();
    gyro_->set_trace(trace_.get(), /*decimate=*/64);
  }
  if (gyro_ && cfg_.campaign_factory) {
    campaign_ = cfg_.campaign_factory(*gyro_);
    if (campaign_) gyro_->set_fault_campaign(campaign_.get());
  } else if (gyro_ && cfg_.with_faults) {
    // A transient AFE fault the supervisor detects and outlives, plus a
    // config-register upset — enough to exercise the safety path without
    // permanently wedging the channel.
    campaign_ = std::make_unique<safety::FaultCampaign>();
    safety::faults::add_register_bit_flip(*campaign_, *gyro_, /*at=*/3000);
    if (cfg_.kind == ChannelKind::GyroFull) {
      safety::faults::add_primary_adc_stuck(*campaign_, *gyro_, /*at=*/6000,
                                            /*code=*/1234, /*clear_after=*/2000);
    }
    gyro_->set_fault_campaign(campaign_.get());
  }

  // The stimulus seam: a factory-built source, or a SyntheticSource wrapping
  // the profile fields (origin 0 — the channel owns one continuous global
  // timeline, matching the stimulus_global_time setting above).
  if (cfg_.stimulus_factory) {
    stimulus_ = cfg_.stimulus_factory(base_rate_hz_);
    if (!stimulus_) throw StateError("channel stimulus factory returned null");
  } else {
    stimulus_ = std::make_unique<sensor::SyntheticSource>(
        cfg_.rate_profile ? *cfg_.rate_profile : sensor::Profile::constant(cfg_.rate_dps),
        cfg_.temp_profile ? *cfg_.temp_profile : sensor::Profile::constant(cfg_.temp_c),
        base_rate_hz_);
  }

  sensor::Probe* probe = cfg_.probe;
  if (cfg_.with_flight_recorder) {
    recorder_probe_ = std::make_unique<ChannelRecorderProbe>(&obs_->recorder, cfg_.probe,
                                                             base_rate_hz_);
    probe = recorder_probe_.get();
  }
  if (probe) {
    if (gyro_)
      gyro_->set_probe(probe);
    else if (auto* bl = dynamic_cast<core::AnalogGyroBaseline*>(sensor_.get()))
      bl->set_probe(probe);
  }
  // Ingestion-side events (queue underrun) come from the channel itself.
  if (obs_ && stimulus_->kind() != sensor::StimulusKind::Synthetic)
    obs_->events.declare_emitter(obs::EventCategory::Probe, "ConditioningChannel");
  if (cfg_.with_flight_recorder) {
    obs_->events.declare_emitter(obs::EventCategory::Recorder, "ConditioningChannel");
    obs_->events.emit(0.0, obs::EventSeverity::Info, obs::EventCategory::Recorder,
                      "flight_recorder_attach", {},
                      {{"capacity", static_cast<double>(obs_->recorder.capacity())}});
  }
}

ConditioningChannel::~ConditioningChannel() = default;

void ConditioningChannel::advance(long n_base_ticks) {
  if (n_base_ticks <= 0) return;
  const std::size_t before = out_.size();
  const std::uint64_t dropped_before = dropped_outputs_;
  // Causal wrapper around the whole advance: scheduler-task spans sampled
  // inside sensor_->run() parent under it. Closed-but-unwound on exception
  // (SpanScope), so a crashing advance still leaves a complete span trail.
  obs::SpanScope adv_span(obs_ ? &obs_->spans : nullptr, "channel.advance",
                          obs::SpanCategory::Channel,
                          static_cast<double>(ticks_) / base_rate_hz_);
  // RateSensor::run() quantizes seconds back to round(seconds·fs) ticks;
  // n/fs survives that round-trip exactly for any realistic tick count.
  sensor_->run(*stimulus_, static_cast<double>(n_base_ticks) / base_rate_hz_, &out_);
  ticks_ += n_base_ticks;
  const double t_now = static_cast<double>(ticks_) / base_rate_hz_;
  if (obs_ && stimulus_->underruns() > last_underruns_) {
    obs_->events.emit(t_now, obs::EventSeverity::Warn,
                      obs::EventCategory::Probe, "stimulus_underrun", {},
                      {{"count", static_cast<double>(stimulus_->underruns())}});
  }
  last_underruns_ = stimulus_->underruns();
  // Hash every produced sample before the queue bound can discard any: the
  // fingerprint is a property of the simulation, not of consumer timing.
  for (std::size_t i = before; i < out_.size(); ++i) {
    std::uint64_t u;
    std::memcpy(&u, &out_[i], sizeof u);
    for (int b = 0; b < 8; ++b) {
      hash_ ^= (u >> (8 * b)) & 0xFF;
      hash_ *= 1099511628211ull;
    }
  }
  const std::uint64_t produced = out_.size() - before;
  total_outputs_ += produced;
  apply_queue_bound();
  adv_span.annotate("ticks", static_cast<double>(n_base_ticks));
  adv_span.annotate("outputs", static_cast<double>(produced));
  adv_span.close(t_now);
  if (cfg_.with_flight_recorder) {
    obs::FlightRecorder& rec = obs_->recorder;
    rec.record_metric(t_now, "channel.outputs", static_cast<double>(produced));
    if (dropped_outputs_ != dropped_before)
      rec.record_metric(t_now, "channel.dropped_outputs",
                        static_cast<double>(dropped_outputs_ - dropped_before));
  }
}

void ConditioningChannel::apply_queue_bound() {
  if (cfg_.queue_capacity == 0 || out_.size() <= cfg_.queue_capacity) return;
  const std::size_t excess = out_.size() - cfg_.queue_capacity;
  switch (cfg_.queue_policy) {
    case QueuePolicy::DropOldest:
      out_.erase(out_.begin(), out_.begin() + static_cast<std::ptrdiff_t>(excess));
      dropped_outputs_ += excess;
      break;
    case QueuePolicy::Shed:
      out_.resize(cfg_.queue_capacity);
      dropped_outputs_ += excess;
      break;
    case QueuePolicy::Block:
      // Never discard: the queue may legitimately exceed capacity when the
      // owner advanced past the full mark (one advance() can emit several
      // samples); queue_full() already reads true so the owner stops here.
      break;
  }
}

void ConditioningChannel::serialize_state(StateArchive& ar) {
  ar.begin_section("CHAN");
  // Config invariants: restore() only makes sense into a channel built from
  // the same config, so the image carries enough identity to catch misuse.
  std::uint32_t kind = static_cast<std::uint32_t>(cfg_.kind);
  std::uint64_t seed = cfg_.seed;
  ar.value(kind);
  ar.value(seed);
  if (kind != static_cast<std::uint32_t>(cfg_.kind))
    throw StateError("checkpoint channel-kind mismatch");
  if (seed != cfg_.seed) throw StateError("checkpoint channel-seed mismatch");

  // Stimulus-source summary at a fixed offset (checkpoint_tool inspect reads
  // these two fields without linking the platform), then the source's own
  // state so a mid-replay snapshot resumes at the exact cursor.
  std::uint32_t stim_kind = static_cast<std::uint32_t>(stimulus_->kind());
  std::int64_t stim_cursor = stimulus_->cursor();
  ar.value(stim_kind);
  ar.value(stim_cursor);
  if (stim_kind != static_cast<std::uint32_t>(stimulus_->kind()))
    throw StateError("checkpoint stimulus-source kind mismatch");
  stimulus_->serialize_state(ar);
  ar.value(last_underruns_);

  std::int64_t ticks = ticks_;
  ar.value(ticks);
  if (!ar.saving()) ticks_ = static_cast<long>(ticks);
  ar.value(hash_);
  ar.value(total_outputs_);
  ar.value(dropped_outputs_);
  std::uint64_t pending = out_.size();
  ar.value(pending);
  if (!ar.saving()) {
    if (pending > (1ull << 32)) throw StateError("checkpoint pending-queue count implausible");
    out_.resize(static_cast<std::size_t>(pending));
  }
  for (auto& v : out_) ar.value(v);

  bool has_campaign = campaign_ != nullptr;
  ar.value(has_campaign);
  if (has_campaign != (campaign_ != nullptr))
    throw StateError("checkpoint fault-campaign presence mismatch");
  if (campaign_) campaign_->serialize_state(ar);

  if (gyro_) {
    gyro_->serialize_state(ar);
  } else {
    auto* bl = dynamic_cast<core::AnalogGyroBaseline*>(sensor_.get());
    if (!bl) throw StateError("checkpoint: unknown sensor architecture");
    bl->serialize_state(ar);
  }
  ar.end_section();
}

std::vector<std::uint8_t> ConditioningChannel::snapshot() {
  StateArchive ar = StateArchive::saver();
  serialize_state(ar);
  return wrap_checkpoint(static_cast<std::uint32_t>(cfg_.kind), ar.take());
}

void ConditioningChannel::restore(const std::vector<std::uint8_t>& image) {
  std::uint32_t kind = 0;
  const std::vector<std::uint8_t> payload = unwrap_checkpoint(image, &kind);
  if (kind != static_cast<std::uint32_t>(cfg_.kind))
    throw StateError("checkpoint is for a different channel kind");
  StateArchive ar = StateArchive::loader(payload);
  serialize_state(ar);
  if (!ar.exhausted()) throw StateError("checkpoint has trailing bytes");
}

}  // namespace ascp::engine
