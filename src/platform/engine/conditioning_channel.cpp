#include "platform/engine/conditioning_channel.hpp"

#include <cstring>

#include "core/baselines.hpp"
#include "core/gyro_system.hpp"
#include "platform/engine/checkpoint.hpp"
#include "safety/standard_faults.hpp"

namespace ascp::engine {

ConditioningChannel::ConditioningChannel(const ChannelConfig& cfg) : cfg_(cfg) {
  switch (cfg_.kind) {
    case ChannelKind::GyroFull:
    case ChannelKind::GyroIdeal: {
      auto sys_cfg = core::default_gyro_system(
          cfg_.kind == ChannelKind::GyroFull ? core::Fidelity::Full : core::Fidelity::Ideal);
      sys_cfg.with_safety =
          cfg_.with_safety || cfg_.with_faults || static_cast<bool>(cfg_.campaign_factory);
      if (cfg_.configure) cfg_.configure(sys_cfg);
      // The channel owns one continuous timeline: profiles are evaluated on
      // the global tick axis, so advance(a); advance(b) — and a checkpoint
      // resume — see the stimulus continue rather than restart at t = 0.
      sys_cfg.stimulus_global_time = true;
      auto sys = std::make_unique<core::GyroSystem>(sys_cfg);
      gyro_ = sys.get();
      sensor_ = std::move(sys);
      base_rate_hz_ = sys_cfg.analog_fs;
      break;
    }
    case ChannelKind::Adxrs300: {
      auto bl_cfg = core::adxrs300_like();
      bl_cfg.stimulus_global_time = true;
      sensor_ = std::make_unique<core::AnalogGyroBaseline>(bl_cfg);
      base_rate_hz_ = bl_cfg.analog_fs;
      break;
    }
    case ChannelKind::Gyrostar: {
      auto bl_cfg = core::gyrostar_like();
      bl_cfg.stimulus_global_time = true;
      sensor_ = std::make_unique<core::AnalogGyroBaseline>(bl_cfg);
      base_rate_hz_ = bl_cfg.analog_fs;
      break;
    }
  }
  // Register writes and firmware loads land before power_on so config-hook
  // effects (PGA gains, ADC bits, sense mode) are baked into the cold build.
  if (gyro_ && cfg_.customize) cfg_.customize(*gyro_);
  sensor_->power_on(cfg_.seed);

  if (cfg_.with_obs) {
    obs_ = std::make_unique<obs::Observability>();
    if (gyro_)
      gyro_->set_observability(obs_->sink());
    else if (auto* bl = dynamic_cast<core::AnalogGyroBaseline*>(sensor_.get()))
      bl->set_observability(obs_->sink());
  }

  if (gyro_ && cfg_.with_trace) {
    trace_ = std::make_unique<TraceRecorder>();
    gyro_->set_trace(trace_.get(), /*decimate=*/64);
  }
  if (gyro_ && cfg_.campaign_factory) {
    campaign_ = cfg_.campaign_factory(*gyro_);
    if (campaign_) gyro_->set_fault_campaign(campaign_.get());
  } else if (gyro_ && cfg_.with_faults) {
    // A transient AFE fault the supervisor detects and outlives, plus a
    // config-register upset — enough to exercise the safety path without
    // permanently wedging the channel.
    campaign_ = std::make_unique<safety::FaultCampaign>();
    safety::faults::add_register_bit_flip(*campaign_, *gyro_, /*at=*/3000);
    if (cfg_.kind == ChannelKind::GyroFull) {
      safety::faults::add_primary_adc_stuck(*campaign_, *gyro_, /*at=*/6000,
                                            /*code=*/1234, /*clear_after=*/2000);
    }
    gyro_->set_fault_campaign(campaign_.get());
  }

  // The stimulus seam: a factory-built source, or a SyntheticSource wrapping
  // the profile fields (origin 0 — the channel owns one continuous global
  // timeline, matching the stimulus_global_time setting above).
  if (cfg_.stimulus_factory) {
    stimulus_ = cfg_.stimulus_factory(base_rate_hz_);
    if (!stimulus_) throw StateError("channel stimulus factory returned null");
  } else {
    stimulus_ = std::make_unique<sensor::SyntheticSource>(
        cfg_.rate_profile ? *cfg_.rate_profile : sensor::Profile::constant(cfg_.rate_dps),
        cfg_.temp_profile ? *cfg_.temp_profile : sensor::Profile::constant(cfg_.temp_c),
        base_rate_hz_);
  }

  if (cfg_.probe) {
    if (gyro_)
      gyro_->set_probe(cfg_.probe);
    else if (auto* bl = dynamic_cast<core::AnalogGyroBaseline*>(sensor_.get()))
      bl->set_probe(cfg_.probe);
  }
  // Ingestion-side events (queue underrun) come from the channel itself.
  if (obs_ && stimulus_->kind() != sensor::StimulusKind::Synthetic)
    obs_->events.declare_emitter(obs::EventCategory::Probe, "ConditioningChannel");
}

ConditioningChannel::~ConditioningChannel() = default;

void ConditioningChannel::advance(long n_base_ticks) {
  if (n_base_ticks <= 0) return;
  const std::size_t before = out_.size();
  // RateSensor::run() quantizes seconds back to round(seconds·fs) ticks;
  // n/fs survives that round-trip exactly for any realistic tick count.
  sensor_->run(*stimulus_, static_cast<double>(n_base_ticks) / base_rate_hz_, &out_);
  ticks_ += n_base_ticks;
  if (obs_ && stimulus_->underruns() > last_underruns_) {
    obs_->events.emit(static_cast<double>(ticks_) / base_rate_hz_, obs::EventSeverity::Warn,
                      obs::EventCategory::Probe, "stimulus_underrun", {},
                      {{"count", static_cast<double>(stimulus_->underruns())}});
  }
  last_underruns_ = stimulus_->underruns();
  // Hash every produced sample before the queue bound can discard any: the
  // fingerprint is a property of the simulation, not of consumer timing.
  for (std::size_t i = before; i < out_.size(); ++i) {
    std::uint64_t u;
    std::memcpy(&u, &out_[i], sizeof u);
    for (int b = 0; b < 8; ++b) {
      hash_ ^= (u >> (8 * b)) & 0xFF;
      hash_ *= 1099511628211ull;
    }
  }
  total_outputs_ += out_.size() - before;
  apply_queue_bound();
}

void ConditioningChannel::apply_queue_bound() {
  if (cfg_.queue_capacity == 0 || out_.size() <= cfg_.queue_capacity) return;
  const std::size_t excess = out_.size() - cfg_.queue_capacity;
  switch (cfg_.queue_policy) {
    case QueuePolicy::DropOldest:
      out_.erase(out_.begin(), out_.begin() + static_cast<std::ptrdiff_t>(excess));
      dropped_outputs_ += excess;
      break;
    case QueuePolicy::Shed:
      out_.resize(cfg_.queue_capacity);
      dropped_outputs_ += excess;
      break;
    case QueuePolicy::Block:
      // Never discard: the queue may legitimately exceed capacity when the
      // owner advanced past the full mark (one advance() can emit several
      // samples); queue_full() already reads true so the owner stops here.
      break;
  }
}

void ConditioningChannel::serialize_state(StateArchive& ar) {
  ar.begin_section("CHAN");
  // Config invariants: restore() only makes sense into a channel built from
  // the same config, so the image carries enough identity to catch misuse.
  std::uint32_t kind = static_cast<std::uint32_t>(cfg_.kind);
  std::uint64_t seed = cfg_.seed;
  ar.value(kind);
  ar.value(seed);
  if (kind != static_cast<std::uint32_t>(cfg_.kind))
    throw StateError("checkpoint channel-kind mismatch");
  if (seed != cfg_.seed) throw StateError("checkpoint channel-seed mismatch");

  // Stimulus-source summary at a fixed offset (checkpoint_tool inspect reads
  // these two fields without linking the platform), then the source's own
  // state so a mid-replay snapshot resumes at the exact cursor.
  std::uint32_t stim_kind = static_cast<std::uint32_t>(stimulus_->kind());
  std::int64_t stim_cursor = stimulus_->cursor();
  ar.value(stim_kind);
  ar.value(stim_cursor);
  if (stim_kind != static_cast<std::uint32_t>(stimulus_->kind()))
    throw StateError("checkpoint stimulus-source kind mismatch");
  stimulus_->serialize_state(ar);
  ar.value(last_underruns_);

  std::int64_t ticks = ticks_;
  ar.value(ticks);
  if (!ar.saving()) ticks_ = static_cast<long>(ticks);
  ar.value(hash_);
  ar.value(total_outputs_);
  ar.value(dropped_outputs_);
  std::uint64_t pending = out_.size();
  ar.value(pending);
  if (!ar.saving()) {
    if (pending > (1ull << 32)) throw StateError("checkpoint pending-queue count implausible");
    out_.resize(static_cast<std::size_t>(pending));
  }
  for (auto& v : out_) ar.value(v);

  bool has_campaign = campaign_ != nullptr;
  ar.value(has_campaign);
  if (has_campaign != (campaign_ != nullptr))
    throw StateError("checkpoint fault-campaign presence mismatch");
  if (campaign_) campaign_->serialize_state(ar);

  if (gyro_) {
    gyro_->serialize_state(ar);
  } else {
    auto* bl = dynamic_cast<core::AnalogGyroBaseline*>(sensor_.get());
    if (!bl) throw StateError("checkpoint: unknown sensor architecture");
    bl->serialize_state(ar);
  }
  ar.end_section();
}

std::vector<std::uint8_t> ConditioningChannel::snapshot() {
  StateArchive ar = StateArchive::saver();
  serialize_state(ar);
  return wrap_checkpoint(static_cast<std::uint32_t>(cfg_.kind), ar.take());
}

void ConditioningChannel::restore(const std::vector<std::uint8_t>& image) {
  std::uint32_t kind = 0;
  const std::vector<std::uint8_t> payload = unwrap_checkpoint(image, &kind);
  if (kind != static_cast<std::uint32_t>(cfg_.kind))
    throw StateError("checkpoint is for a different channel kind");
  StateArchive ar = StateArchive::loader(payload);
  serialize_state(ar);
  if (!ar.exhausted()) throw StateError("checkpoint has trailing bytes");
}

}  // namespace ascp::engine
