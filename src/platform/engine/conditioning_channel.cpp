#include "platform/engine/conditioning_channel.hpp"

#include <cstring>

#include "core/baselines.hpp"
#include "core/gyro_system.hpp"
#include "safety/standard_faults.hpp"

namespace ascp::engine {

ConditioningChannel::ConditioningChannel(const ChannelConfig& cfg) : cfg_(cfg) {
  switch (cfg_.kind) {
    case ChannelKind::GyroFull:
    case ChannelKind::GyroIdeal: {
      auto sys_cfg = core::default_gyro_system(
          cfg_.kind == ChannelKind::GyroFull ? core::Fidelity::Full : core::Fidelity::Ideal);
      sys_cfg.with_safety =
          cfg_.with_safety || cfg_.with_faults || static_cast<bool>(cfg_.campaign_factory);
      if (cfg_.configure) cfg_.configure(sys_cfg);
      auto sys = std::make_unique<core::GyroSystem>(sys_cfg);
      gyro_ = sys.get();
      sensor_ = std::move(sys);
      base_rate_hz_ = sys_cfg.analog_fs;
      break;
    }
    case ChannelKind::Adxrs300: {
      const auto bl_cfg = core::adxrs300_like();
      sensor_ = std::make_unique<core::AnalogGyroBaseline>(bl_cfg);
      base_rate_hz_ = bl_cfg.analog_fs;
      break;
    }
    case ChannelKind::Gyrostar: {
      const auto bl_cfg = core::gyrostar_like();
      sensor_ = std::make_unique<core::AnalogGyroBaseline>(bl_cfg);
      base_rate_hz_ = bl_cfg.analog_fs;
      break;
    }
  }
  // Register writes and firmware loads land before power_on so config-hook
  // effects (PGA gains, ADC bits, sense mode) are baked into the cold build.
  if (gyro_ && cfg_.customize) cfg_.customize(*gyro_);
  sensor_->power_on(cfg_.seed);

  if (cfg_.with_obs) {
    obs_ = std::make_unique<obs::Observability>();
    if (gyro_)
      gyro_->set_observability(obs_->sink());
    else if (auto* bl = dynamic_cast<core::AnalogGyroBaseline*>(sensor_.get()))
      bl->set_observability(obs_->sink());
  }

  if (gyro_ && cfg_.with_trace) {
    trace_ = std::make_unique<TraceRecorder>();
    gyro_->set_trace(trace_.get(), /*decimate=*/64);
  }
  if (gyro_ && cfg_.campaign_factory) {
    campaign_ = cfg_.campaign_factory(*gyro_);
    if (campaign_) gyro_->set_fault_campaign(campaign_.get());
  } else if (gyro_ && cfg_.with_faults) {
    // A transient AFE fault the supervisor detects and outlives, plus a
    // config-register upset — enough to exercise the safety path without
    // permanently wedging the channel.
    campaign_ = std::make_unique<safety::FaultCampaign>();
    safety::faults::add_register_bit_flip(*campaign_, *gyro_, /*at=*/3000);
    if (cfg_.kind == ChannelKind::GyroFull) {
      safety::faults::add_primary_adc_stuck(*campaign_, *gyro_, /*at=*/6000,
                                            /*code=*/1234, /*clear_after=*/2000);
    }
    gyro_->set_fault_campaign(campaign_.get());
  }

  rate_ = cfg_.rate_profile ? *cfg_.rate_profile : sensor::Profile::constant(cfg_.rate_dps);
  temp_ = cfg_.temp_profile ? *cfg_.temp_profile : sensor::Profile::constant(cfg_.temp_c);
}

ConditioningChannel::~ConditioningChannel() = default;

void ConditioningChannel::advance(long n_base_ticks) {
  if (n_base_ticks <= 0) return;
  // RateSensor::run() quantizes seconds back to round(seconds·fs) ticks;
  // n/fs survives that round-trip exactly for any realistic tick count.
  sensor_->run(rate_, temp_, static_cast<double>(n_base_ticks) / base_rate_hz_, &out_);
  ticks_ += n_base_ticks;
}

std::uint64_t ConditioningChannel::output_hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (double d : out_) {
    std::uint64_t u;
    std::memcpy(&u, &d, sizeof u);
    for (int i = 0; i < 8; ++i) {
      h ^= (u >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace ascp::engine
