// conditioning_channel.hpp — one sensor conditioning instance as a farmable
// unit of simulation.
//
// The paper validates the platform one device at a time; production use is
// the opposite — thousands of seed/stimulus/fault variations of the same
// conditioning pipeline (characterization sweeps, fault campaigns, Monte
// Carlo tolerance runs). ConditioningChannel packages everything one such
// variation owns — the sensor under test (platform GyroSystem at either
// fidelity, or an analog baseline from Tables 2/3), its seed, its stimulus
// profiles, an optional fault campaign and trace — behind a single
// advance(n_base_ticks) so a farm can drive heterogeneous channels through
// identical simulated time.
//
// Determinism contract: a channel's output stream is a pure function of its
// ChannelConfig. Nothing in here reads shared mutable state, so channels may
// advance on different threads with no synchronization, and the farm's
// results are bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/state_archive.hpp"
#include "common/trace.hpp"
#include "core/rate_sensor.hpp"
#include "obs/observability.hpp"
#include "safety/fault_injection.hpp"
#include "sensor/environment.hpp"

namespace ascp::core {
class GyroSystem;
struct GyroSystemConfig;
}

namespace ascp::engine {

class ChannelRecorderProbe;

/// Which conditioning architecture the channel instantiates.
enum class ChannelKind {
  GyroFull,   ///< platform customization, Full fidelity (AFE + quantization)
  GyroIdeal,  ///< platform customization, Ideal fidelity (MATLAB-level model)
  Adxrs300,   ///< analog baseline, Table 2 configuration
  Gyrostar,   ///< analog baseline, Table 3 configuration
};

/// What advance() does with freshly produced output samples once the
/// channel's result queue holds `queue_capacity` entries the consumer has
/// not yet drained with take_outputs(). Only applies when queue_capacity > 0.
enum class QueuePolicy {
  DropOldest,  ///< evict the oldest queued samples to make room (ring-buffer)
  Shed,        ///< discard the newest samples beyond capacity (tail-drop)
  Block,       ///< never discard: queue_full() goes true and the fleet stops
               ///< advancing the channel until the consumer drains it
};

struct ChannelConfig {
  ChannelKind kind = ChannelKind::GyroFull;
  /// Per-channel master seed. When the channel is built by a ChannelFarm the
  /// farm overwrites this with a stream forked from its root seed.
  std::uint64_t seed = 1;
  double rate_dps = 30.0;  ///< constant angular-rate stimulus
  double temp_c = 25.0;    ///< constant ambient temperature
  bool with_safety = false;  ///< supervisor + DIAG block (GyroFull/GyroIdeal)
  bool with_faults = false;  ///< canonical fault campaign (implies with_safety)
  bool with_trace = false;   ///< attach a TraceRecorder (gyro kinds only)
  /// Own a per-channel Observability bundle (metrics + event log + task
  /// profiler + MCU profiler) and attach it to the sensor. Observers are
  /// read-only: the output stream is bit-identical with or without it.
  bool with_obs = false;
  /// Arm the channel's black-box flight recorder (implies with_obs): the
  /// event log tees into the recorder ring, probe taps on the stimulus and
  /// decimated-output points are sampled into it, and advance() records
  /// per-call metric deltas — the structured tail a `.blackbox` crash image
  /// retains. Same obs discipline: the output stream is bit-identical with
  /// the recorder armed or not.
  bool with_flight_recorder = false;

  // ---- result-queue bounds (graceful degradation) -------------------------
  /// Maximum outputs() entries held between take_outputs() drains; 0 keeps
  /// the historical unbounded queue. Every sample is hashed into
  /// output_hash() *before* the bound applies, so determinism fingerprints
  /// are unaffected by the overflow policy.
  std::size_t queue_capacity = 0;
  QueuePolicy queue_policy = QueuePolicy::DropOldest;

  // ---- scenario hooks (conformance fuzzing) -------------------------------
  // Every hook must be a pure/deterministic function of the channel's own
  // configuration — the determinism contract above extends to them. All are
  // gyro-kind only; baselines ignore them.
  /// Mutates the GyroSystemConfig before construction (MEMS quadrature/drift
  /// scaling, sense-chain dimensioning, with_mcu, supervisor overrides).
  std::function<void(core::GyroSystemConfig&)> configure;
  /// Runs on the constructed system before power_on — the place for register
  /// writes (DSP + AFE files) and firmware loading.
  std::function<void(core::GyroSystem&)> customize;
  /// Builds the channel's fault campaign (overrides the canned with_faults
  /// demo campaign). The channel owns the returned campaign.
  std::function<std::unique_ptr<safety::FaultCampaign>(core::GyroSystem&)> campaign_factory;
  /// Time-varying stimulus; when unset the constant rate_dps/temp_c apply.
  std::optional<sensor::Profile> rate_profile;
  std::optional<sensor::Profile> temp_profile;

  // ---- stimulus/probe seam ------------------------------------------------
  /// Builds the channel's stimulus source (overrides the profile fields
  /// above). Receives the channel's base (analog) tick rate. Must be a
  /// pure/deterministic function of the channel's own configuration, like
  /// every other hook; the channel owns the returned source and checkpoints
  /// its state. When unset, a SyntheticSource wraps the profiles —
  /// bit-identical to the pre-seam behavior.
  std::function<std::unique_ptr<sensor::StimulusSource>(double /*base_rate_hz*/)>
      stimulus_factory;
  /// Read-only probe attached to the sensor's chain taps (non-owning; must
  /// outlive the channel). Bit-identity contract: the output stream is the
  /// same with the probe attached or not.
  sensor::Probe* probe = nullptr;
};

class ConditioningChannel {
 public:
  explicit ConditioningChannel(const ChannelConfig& cfg);
  ~ConditioningChannel();

  ConditioningChannel(const ConditioningChannel&) = delete;
  ConditioningChannel& operator=(const ConditioningChannel&) = delete;

  /// Advance simulated time by `n_base_ticks` analog clock ticks, appending
  /// decimated rate samples to outputs(). Callable repeatedly; decimation
  /// phase carries across calls exactly as in a single longer run.
  void advance(long n_base_ticks);

  /// Base (analog) tick rate — the farm's common time base [Hz].
  double base_rate_hz() const { return base_rate_hz_; }
  long ticks_advanced() const { return ticks_; }

  const ChannelConfig& config() const { return cfg_; }
  const std::vector<double>& outputs() const { return out_; }
  /// The conditioned gyro under test (null for analog-baseline kinds) — the
  /// conformance oracle reads supervisor/register state through this.
  core::GyroSystem* gyro() { return gyro_; }
  const core::GyroSystem* gyro() const { return gyro_; }
  const TraceRecorder* trace() const { return trace_.get(); }
  /// The channel's stimulus source (never null). The QueueSource ingestion
  /// path pushes through this accessor between advance() calls.
  sensor::StimulusSource* stimulus() { return stimulus_.get(); }
  const sensor::StimulusSource* stimulus() const { return stimulus_.get(); }
  /// Per-channel telemetry (null unless cfg.with_obs).
  obs::Observability* observability() { return obs_.get(); }
  const obs::Observability* observability() const { return obs_.get(); }
  /// The armed flight-recorder ring (null unless cfg.with_flight_recorder).
  obs::FlightRecorder* flight_recorder() {
    return cfg_.with_flight_recorder && obs_ ? &obs_->recorder : nullptr;
  }

  /// FNV-1a over every output sample's bit pattern, folded as samples are
  /// produced — the byte-identity fingerprint the determinism tests, the
  /// farm bench and the checkpoint replay proofs compare. Streams, so it
  /// covers samples already drained or shed from the bounded queue.
  std::uint64_t output_hash() const { return hash_; }
  /// Lifetime output-sample count (unaffected by draining/shedding).
  std::uint64_t total_outputs() const { return total_outputs_; }
  /// Samples discarded by the DropOldest/Shed overflow policies.
  std::uint64_t dropped_outputs() const { return dropped_outputs_; }
  /// True when queue_policy is Block and the queue is at capacity — the
  /// owner must drain with take_outputs() before advancing further.
  bool queue_full() const {
    return cfg_.queue_capacity > 0 && cfg_.queue_policy == QueuePolicy::Block &&
           out_.size() >= cfg_.queue_capacity;
  }
  /// Drain the result queue (moves the pending samples out).
  std::vector<double> take_outputs() {
    std::vector<double> drained = std::move(out_);
    out_.clear();
    return drained;
  }

  // ---- checkpoint / restore ----------------------------------------------
  /// Serialize the full platform state (sense chain, fixed-point DSP, MCU,
  /// supervisor latches, campaign firing position, RNG streams, pending
  /// queue) into a versioned, CRC-framed checkpoint image. A channel freshly
  /// constructed from the *same* ChannelConfig and restore()d from the image
  /// continues bit-exactly: outputs and output_hash() match a channel that
  /// ran straight through. Closures (hooks, campaign actions) do not travel —
  /// they are re-established by constructing from the config.
  std::vector<std::uint8_t> snapshot();
  /// Load a snapshot() image. Throws StateError on truncation, CRC mismatch,
  /// version/kind/seed disagreement or any structural mismatch; the channel
  /// must then be considered unusable (rebuild from config).
  void restore(const std::vector<std::uint8_t>& image);

 private:
  void serialize_state(StateArchive& ar);
  void apply_queue_bound();

  ChannelConfig cfg_;
  std::unique_ptr<core::RateSensor> sensor_;
  core::GyroSystem* gyro_ = nullptr;  ///< non-owning; set for gyro kinds
  std::unique_ptr<safety::FaultCampaign> campaign_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<obs::Observability> obs_;
  std::unique_ptr<ChannelRecorderProbe> recorder_probe_;  ///< probe tee, recorder armed
  std::unique_ptr<sensor::StimulusSource> stimulus_;
  std::uint64_t last_underruns_ = 0;  ///< edge detector for underrun events
  std::vector<double> out_;
  double base_rate_hz_ = 0.0;
  long ticks_ = 0;
  std::uint64_t hash_ = 1469598103934665603ull;  ///< FNV-1a offset basis
  std::uint64_t total_outputs_ = 0;
  std::uint64_t dropped_outputs_ = 0;
};

}  // namespace ascp::engine
