// conditioning_channel.hpp — one sensor conditioning instance as a farmable
// unit of simulation.
//
// The paper validates the platform one device at a time; production use is
// the opposite — thousands of seed/stimulus/fault variations of the same
// conditioning pipeline (characterization sweeps, fault campaigns, Monte
// Carlo tolerance runs). ConditioningChannel packages everything one such
// variation owns — the sensor under test (platform GyroSystem at either
// fidelity, or an analog baseline from Tables 2/3), its seed, its stimulus
// profiles, an optional fault campaign and trace — behind a single
// advance(n_base_ticks) so a farm can drive heterogeneous channels through
// identical simulated time.
//
// Determinism contract: a channel's output stream is a pure function of its
// ChannelConfig. Nothing in here reads shared mutable state, so channels may
// advance on different threads with no synchronization, and the farm's
// results are bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/trace.hpp"
#include "core/rate_sensor.hpp"
#include "obs/observability.hpp"
#include "safety/fault_injection.hpp"
#include "sensor/environment.hpp"

namespace ascp::core {
class GyroSystem;
struct GyroSystemConfig;
}

namespace ascp::engine {

/// Which conditioning architecture the channel instantiates.
enum class ChannelKind {
  GyroFull,   ///< platform customization, Full fidelity (AFE + quantization)
  GyroIdeal,  ///< platform customization, Ideal fidelity (MATLAB-level model)
  Adxrs300,   ///< analog baseline, Table 2 configuration
  Gyrostar,   ///< analog baseline, Table 3 configuration
};

struct ChannelConfig {
  ChannelKind kind = ChannelKind::GyroFull;
  /// Per-channel master seed. When the channel is built by a ChannelFarm the
  /// farm overwrites this with a stream forked from its root seed.
  std::uint64_t seed = 1;
  double rate_dps = 30.0;  ///< constant angular-rate stimulus
  double temp_c = 25.0;    ///< constant ambient temperature
  bool with_safety = false;  ///< supervisor + DIAG block (GyroFull/GyroIdeal)
  bool with_faults = false;  ///< canonical fault campaign (implies with_safety)
  bool with_trace = false;   ///< attach a TraceRecorder (gyro kinds only)
  /// Own a per-channel Observability bundle (metrics + event log + task
  /// profiler + MCU profiler) and attach it to the sensor. Observers are
  /// read-only: the output stream is bit-identical with or without it.
  bool with_obs = false;

  // ---- scenario hooks (conformance fuzzing) -------------------------------
  // Every hook must be a pure/deterministic function of the channel's own
  // configuration — the determinism contract above extends to them. All are
  // gyro-kind only; baselines ignore them.
  /// Mutates the GyroSystemConfig before construction (MEMS quadrature/drift
  /// scaling, sense-chain dimensioning, with_mcu, supervisor overrides).
  std::function<void(core::GyroSystemConfig&)> configure;
  /// Runs on the constructed system before power_on — the place for register
  /// writes (DSP + AFE files) and firmware loading.
  std::function<void(core::GyroSystem&)> customize;
  /// Builds the channel's fault campaign (overrides the canned with_faults
  /// demo campaign). The channel owns the returned campaign.
  std::function<std::unique_ptr<safety::FaultCampaign>(core::GyroSystem&)> campaign_factory;
  /// Time-varying stimulus; when unset the constant rate_dps/temp_c apply.
  std::optional<sensor::Profile> rate_profile;
  std::optional<sensor::Profile> temp_profile;
};

class ConditioningChannel {
 public:
  explicit ConditioningChannel(const ChannelConfig& cfg);
  ~ConditioningChannel();

  ConditioningChannel(const ConditioningChannel&) = delete;
  ConditioningChannel& operator=(const ConditioningChannel&) = delete;

  /// Advance simulated time by `n_base_ticks` analog clock ticks, appending
  /// decimated rate samples to outputs(). Callable repeatedly; decimation
  /// phase carries across calls exactly as in a single longer run.
  void advance(long n_base_ticks);

  /// Base (analog) tick rate — the farm's common time base [Hz].
  double base_rate_hz() const { return base_rate_hz_; }
  long ticks_advanced() const { return ticks_; }

  const ChannelConfig& config() const { return cfg_; }
  const std::vector<double>& outputs() const { return out_; }
  /// The conditioned gyro under test (null for analog-baseline kinds) — the
  /// conformance oracle reads supervisor/register state through this.
  core::GyroSystem* gyro() { return gyro_; }
  const core::GyroSystem* gyro() const { return gyro_; }
  const TraceRecorder* trace() const { return trace_.get(); }
  /// Per-channel telemetry (null unless cfg.with_obs).
  obs::Observability* observability() { return obs_.get(); }
  const obs::Observability* observability() const { return obs_.get(); }

  /// FNV-1a over the output samples' bit patterns — the byte-identity
  /// fingerprint the determinism tests and the farm bench compare.
  std::uint64_t output_hash() const;

 private:
  ChannelConfig cfg_;
  std::unique_ptr<core::RateSensor> sensor_;
  core::GyroSystem* gyro_ = nullptr;  ///< non-owning; set for gyro kinds
  std::unique_ptr<safety::FaultCampaign> campaign_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<obs::Observability> obs_;
  sensor::Profile rate_;
  sensor::Profile temp_;
  std::vector<double> out_;
  double base_rate_hz_ = 0.0;
  long ticks_ = 0;
};

}  // namespace ascp::engine
