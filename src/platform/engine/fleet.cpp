#include "platform/engine/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "common/rng.hpp"
#include "platform/engine/blackbox.hpp"
#include "platform/engine/checkpoint.hpp"
#include "safety/dtc.hpp"

namespace ascp::engine {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* channel_health_name(ChannelHealth h) {
  switch (h) {
    case ChannelHealth::Running: return "RUNNING";
    case ChannelHealth::BackingOff: return "BACKING_OFF";
    case ChannelHealth::Quarantined: return "QUARANTINED";
  }
  return "?";
}

FleetSupervisor::FleetSupervisor(std::vector<FleetChannelSpec> specs, const FleetConfig& cfg)
    : cfg_(cfg) {
  if (cfg_.events) {
    cfg_.events->declare_emitter(obs::EventCategory::Engine, "FleetSupervisor");
    cfg_.events->declare_emitter(obs::EventCategory::Recorder, "FleetSupervisor");
  }
  if (cfg_.spans) cfg_.spans->set_trace_id(cfg_.root_seed);
  if (cfg_.metrics) {
    m_ticks_ = cfg_.metrics->counter("fleet.ticks");
    m_stalls_ = cfg_.metrics->counter("fleet.stalls_detected");
    m_exceptions_ = cfg_.metrics->counter("fleet.channel_exceptions");
    m_restarts_ = cfg_.metrics->counter("fleet.restarts");
    m_quarantines_ = cfg_.metrics->counter("fleet.quarantines");
    m_shed_ = cfg_.metrics->counter("fleet.shed_channel_ticks");
    m_delivered_ = cfg_.metrics->counter("fleet.delivered_samples");
    m_checkpoints_ = cfg_.metrics->counter("fleet.checkpoints");
    m_blackbox_ = cfg_.metrics->counter("fleet.blackbox_dumps");
  }

  Rng root(cfg_.root_seed);
  states_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto st = std::make_unique<ChannelState>();
    st->config = std::move(specs[i].config);
    if (cfg_.flight_recorders) st->config.with_flight_recorder = true;
    if (cfg_.reseed_channels)
      st->config.seed = root.fork(static_cast<std::uint64_t>(i) + 1).next_u64();
    st->priority = specs[i].priority;
    st->before_advance = std::move(specs[i].before_advance);
    st->channel = std::make_unique<ConditioningChannel>(st->config);
    states_.push_back(std::move(st));
  }

  const unsigned pool_size = static_cast<unsigned>(
      std::min<std::size_t>(cfg_.threads > 1 ? cfg_.threads : 1, states_.size()));
  heartbeats_.reserve(std::max<unsigned>(pool_size, 1));
  for (unsigned k = 0; k < std::max<unsigned>(pool_size, 1); ++k)
    heartbeats_.push_back(std::make_unique<Heartbeat>());
  if (pool_size > 1) {
    pool_.reserve(pool_size);
    for (unsigned k = 0; k < pool_size; ++k)
      pool_.emplace_back([this, k] { worker_loop(k); });
  }

  if (cfg_.tick_deadline_ms > 0.0) {
    watchdog_ = std::thread([this] {
      const auto scan_period =
          std::chrono::microseconds(std::max<std::int64_t>(
              50, static_cast<std::int64_t>(cfg_.tick_deadline_ms * 1000.0 / 4.0)));
      while (!watchdog_stop_.load(std::memory_order_acquire)) {
        const std::int64_t now = steady_ns();
        for (auto& hb : heartbeats_) {
          const long ch = hb->channel.load(std::memory_order_acquire);
          if (ch < 0 || hb->flagged.load(std::memory_order_acquire)) continue;
          const double elapsed_ms =
              static_cast<double>(now - hb->start_ns.load(std::memory_order_acquire)) / 1e6;
          if (elapsed_ms > cfg_.tick_deadline_ms) {
            hb->flagged.store(true, std::memory_order_release);
            std::lock_guard<std::mutex> lk(stall_m_);
            stall_log_.push_back({ch, elapsed_ms});
          }
        }
        std::this_thread::sleep_for(scan_period);
      }
    });
  }
}

FleetSupervisor::~FleetSupervisor() {
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : pool_) t.join();
}

double FleetSupervisor::now_sim() const {
  return static_cast<double>(fleet_tick_) * cfg_.tick_seconds;
}

void FleetSupervisor::emit(obs::EventSeverity sev, const char* name, std::string detail,
                           std::initializer_list<obs::Event::KV> kv) {
  if (cfg_.events)
    cfg_.events->emit(now_sim(), sev, obs::EventCategory::Engine, name, std::move(detail), kv);
}

void FleetSupervisor::span_edge(const char* name, std::size_t channel, std::uint64_t parent,
                                const char* k1, double v1) {
  if (!cfg_.spans) return;
  const std::uint64_t id = cfg_.spans->begin(
      name, obs::SpanCategory::Fleet, now_sim(),
      parent ? parent : obs::SpanLog::kCurrentParent);
  cfg_.spans->annotate(id, "channel", static_cast<double>(channel));
  if (k1) cfg_.spans->annotate(id, k1, v1);
  cfg_.spans->end(id, now_sim());
}

void FleetSupervisor::open_incident(std::size_t i) {
  ChannelState& st = *states_[i];
  if (st.incident_open) return;
  st.incident_open = true;
  st.incident_start = std::chrono::steady_clock::now();
  // The incident span stays open until catch-up completes (or quarantine
  // closes it for good), so every lifecycle edge parents under it.
  if (cfg_.spans) {
    st.incident_span =
        cfg_.spans->begin("incident", obs::SpanCategory::Fleet, now_sim());
    cfg_.spans->annotate(st.incident_span, "channel", static_cast<double>(i));
  }
}

void FleetSupervisor::dump_blackbox(std::size_t i) {
  if (!cfg_.blackbox_sink && cfg_.blackbox_dir.empty()) return;
  ChannelState& st = *states_[i];
  BlackboxImage img;
  img.kind = static_cast<std::uint32_t>(st.config.kind);
  img.seed = st.config.seed;
  img.channel_index = i;
  img.fleet_tick = fleet_tick_;
  img.reason = st.last_error;
  img.dtcs = st.dtcs;
  img.restarts = st.restarts;
  img.health = static_cast<std::uint8_t>(st.health);
  img.rate_dps = st.config.rate_dps;
  img.temp_c = st.config.temp_c;
  img.with_safety = st.config.with_safety;
  img.with_faults = st.config.with_faults;
  // The wrecked instance is still intact here (dump precedes the rebuild) and
  // its fingerprint is always a clean prefix: the hash folds only after a
  // fully successful sensor run.
  img.crash_ticks = st.channel->ticks_advanced();
  img.crash_hash = st.channel->output_hash();
  img.crash_outputs = st.channel->total_outputs();
  img.checkpoint_tick = st.last_good_tick;
  img.checkpoint = st.last_good;  // verbatim — possibly corrupt, replay re-detects
  if (auto* obs = st.channel->observability()) {
    if (auto* rec = st.channel->flight_recorder())
      capture_flight_records(*rec, &img.records);
    capture_spans(obs->spans, &img.channel_spans);
    capture_metrics(obs->metrics, &img.counters, &img.gauges);
  }
  if (cfg_.spans) capture_spans(*cfg_.spans, &img.fleet_spans);

  const std::vector<std::uint8_t> bytes = encode_blackbox(img);
  const long seq = stats_.blackbox_dumps++;
  if (cfg_.metrics) cfg_.metrics->add(m_blackbox_);
  if (cfg_.blackbox_sink) cfg_.blackbox_sink(i, bytes);
  if (!cfg_.blackbox_dir.empty()) {
    std::filesystem::create_directories(cfg_.blackbox_dir);
    char name[64];
    std::snprintf(name, sizeof name, "bb%05ld_ch%02zu.blackbox", seq, i);
    save_blackbox_file(cfg_.blackbox_dir + "/" + name, bytes);
  }
  if (cfg_.events)
    cfg_.events->emit(now_sim(), obs::EventSeverity::Warn, obs::EventCategory::Recorder,
                      "blackbox_dump", st.last_error,
                      {{"channel", static_cast<double>(i)},
                       {"bytes", static_cast<double>(bytes.size())}});
}

void FleetSupervisor::advance_one(std::size_t i, unsigned worker_index) {
  ChannelState& st = *states_[i];
  Heartbeat& hb = *heartbeats_[worker_index];
  hb.flagged.store(false, std::memory_order_relaxed);
  hb.start_ns.store(steady_ns(), std::memory_order_release);
  hb.channel.store(static_cast<long>(i), std::memory_order_release);
  try {
    // Chaos hooks fire for the *live* tick only; the catch-up portion below
    // replays simulated time the channel missed and must stay pure.
    if (st.before_advance) st.before_advance(fleet_tick_);
    // Block-policy backpressure: a full queue pauses the channel (it catches
    // up after the supervisor drains it).
    if (!st.channel->queue_full()) {
      // Advance to the *absolute* base-tick target for this fleet tick, not by
      // a relative delta: per-tick llround deltas accumulate rounding when
      // tick_seconds * base_rate is non-integral, so a channel catching up in
      // one big advance would land on a different global tick than one that
      // ticked live — breaking the clean-twin bit-exactness invariant.
      const long target = std::llround(static_cast<double>(fleet_tick_ + 1) *
                                       cfg_.tick_seconds * st.channel->base_rate_hz());
      st.channel->advance(std::max<long>(0, target - st.channel->ticks_advanced()));
      st.ticks_done = fleet_tick_ + 1;
    }
  } catch (const std::exception& e) {
    st.tick_error = e.what();
    st.tick_failed.store(true, std::memory_order_release);
  } catch (...) {
    st.tick_error = "unknown exception";
    st.tick_failed.store(true, std::memory_order_release);
  }
  hb.channel.store(-1, std::memory_order_release);
}

void FleetSupervisor::worker_loop(unsigned worker_index) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    std::size_t k;
    while ((k = cursor_.fetch_add(1, std::memory_order_relaxed)) < runnable_.size())
      advance_one(runnable_[k], worker_index);
    {
      std::lock_guard<std::mutex> lk(m_);
      if (--active_ == 0) cv_done_.notify_one();
    }
  }
}

void FleetSupervisor::run_one_tick() {
  // The tick span brackets the whole supervisory cycle (advance + failure
  // handling + drain + checkpoint), so incident spans opened mid-tick parent
  // under it.
  obs::SpanScope tick_span(cfg_.spans, "fleet.tick", obs::SpanCategory::Fleet, now_sim());
  // Build this tick's work list: healthy channels, minus backoff windows,
  // minus (under overload) low-priority sheds.
  runnable_.clear();
  int shed_below = std::numeric_limits<int>::min();
  if (cfg_.realtime_budget_ms > 0.0 && last_tick_wall_ms_ > cfg_.realtime_budget_ms) {
    // Behind real time: advance only the highest-priority class this tick.
    int top = std::numeric_limits<int>::min();
    for (const auto& st : states_)
      if (st->health == ChannelHealth::Running) top = std::max(top, st->priority);
    shed_below = top;
  }
  bool shed_any = false;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    ChannelState& st = *states_[i];
    if (st.health == ChannelHealth::Quarantined) continue;
    if (st.health == ChannelHealth::BackingOff) {
      if (fleet_tick_ < st.backoff_until) continue;
      st.health = ChannelHealth::Running;
    }
    if (st.priority < shed_below) {
      ++st.shed_ticks;
      ++stats_.shed_channel_ticks;
      if (cfg_.metrics) cfg_.metrics->add(m_shed_);
      shed_any = true;
      continue;
    }
    runnable_.push_back(i);
  }
  if (shed_any)
    emit(obs::EventSeverity::Warn, "load_shed", "behind real-time budget",
         {{"wall_ms", last_tick_wall_ms_}, {"budget_ms", cfg_.realtime_budget_ms}});

  const auto wall0 = std::chrono::steady_clock::now();
  if (pool_.empty()) {
    for (std::size_t k = 0; k < runnable_.size(); ++k) advance_one(runnable_[k], 0);
  } else {
    {
      std::lock_guard<std::mutex> lk(m_);
      cursor_.store(0, std::memory_order_relaxed);
      active_ = pool_.size();
      ++generation_;
    }
    cv_work_.notify_all();
    std::unique_lock<std::mutex> lk(m_);
    cv_done_.wait(lk, [this] { return active_ == 0; });
  }
  last_tick_wall_ms_ =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall0)
          .count();

  ++fleet_tick_;
  ++stats_.ticks;
  if (cfg_.metrics) cfg_.metrics->add(m_ticks_);

  // Watchdog detections observed during the tick → DTC + event + stats.
  {
    std::vector<StallRecord> stalls;
    {
      std::lock_guard<std::mutex> lk(stall_m_);
      stalls.swap(stall_log_);
    }
    for (const auto& s : stalls) {
      ChannelState& st = *states_[static_cast<std::size_t>(s.channel)];
      st.dtcs |= safety::kDtcEngineFault;
      ++stats_.stalls_detected;
      stats_.stall_detect_ms.push_back(s.elapsed_ms);
      if (cfg_.metrics) cfg_.metrics->add(m_stalls_);
      open_incident(static_cast<std::size_t>(s.channel));
      span_edge("stall_detect", static_cast<std::size_t>(s.channel),
                st.incident_span, "elapsed_ms", s.elapsed_ms);
      emit(obs::EventSeverity::Warn, "worker_stall", "tick deadline exceeded",
           {{"channel", static_cast<double>(s.channel)},
            {"elapsed_ms", s.elapsed_ms},
            {"deadline_ms", cfg_.tick_deadline_ms}});
    }
  }

  handle_failures();
  drain_outputs();
  take_checkpoints();
  close_incidents();
  tick_span.annotate("runnable", static_cast<double>(runnable_.size()));
  tick_span.close(now_sim());
}

void FleetSupervisor::handle_failures() {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    ChannelState& st = *states_[i];
    if (!st.tick_failed.load(std::memory_order_acquire)) continue;
    st.tick_failed.store(false, std::memory_order_relaxed);
    st.last_error = st.tick_error;
    st.dtcs |= safety::kDtcEngineFault;
    ++stats_.exceptions;
    if (cfg_.metrics) cfg_.metrics->add(m_exceptions_);
    open_incident(i);
    span_edge("channel_exception", i, st.incident_span);
    emit(obs::EventSeverity::Error, "channel_exception", st.tick_error,
         {{"channel", static_cast<double>(i)}});
    restart_channel(i);
  }
}

void FleetSupervisor::restart_channel(std::size_t i) {
  ChannelState& st = *states_[i];
  // Forensics first: the wrecked instance is still intact here, so the dump
  // captures its clean-prefix fingerprint, the ring tail, and the last-good
  // checkpoint bytes (verbatim — even if about to be rejected as corrupt).
  // This covers every failure class: exception, corrupt checkpoint, and the
  // quarantine branch below.
  dump_blackbox(i);
  ++st.restarts;
  if (st.restarts > cfg_.max_restarts) {
    st.health = ChannelHealth::Quarantined;
    ++stats_.quarantined;
    if (cfg_.metrics) cfg_.metrics->add(m_quarantines_);
    st.incident_open = false;  // permanent: not a repairable incident
    span_edge("quarantine", i, st.incident_span, "restarts",
              static_cast<double>(st.restarts));
    if (cfg_.spans && st.incident_span) {
      cfg_.spans->end(st.incident_span, now_sim());
      st.incident_span = 0;
    }
    emit(obs::EventSeverity::Error, "channel_quarantine",
         "restart budget exhausted: " + st.last_error,
         {{"channel", static_cast<double>(i)}, {"restarts", static_cast<double>(st.restarts)}});
    return;
  }

  const std::uint64_t restart_span =
      cfg_.spans ? cfg_.spans->begin("restart", obs::SpanCategory::Fleet, now_sim(),
                                     st.incident_span ? st.incident_span
                                                      : obs::SpanLog::kCurrentParent)
                 : 0;
  if (restart_span) cfg_.spans->annotate(restart_span, "channel", static_cast<double>(i));
  // The wrecked instance may hold partially-mutated state — discard it and
  // rebuild from the recipe, then restore the last-good image if it checks
  // out. A corrupt/truncated image is *detected* (CRC frame) and demoted to
  // a cold rebuild + full replay from tick zero.
  st.channel = std::make_unique<ConditioningChannel>(st.config);
  st.ticks_done = 0;
  if (!st.last_good.empty()) {
    try {
      st.channel->restore(st.last_good);
      st.ticks_done = st.last_good_tick;
      span_edge("restore_checkpoint", i, restart_span, "from_tick",
                static_cast<double>(st.last_good_tick));
    } catch (const StateError& e) {
      ++stats_.corrupt_checkpoints;
      span_edge("checkpoint_corrupt", i, restart_span);
      emit(obs::EventSeverity::Error, "checkpoint_corrupt", e.what(),
           {{"channel", static_cast<double>(i)}});
      st.channel = std::make_unique<ConditioningChannel>(st.config);
      st.ticks_done = 0;
      st.last_good.clear();
      span_edge("cold_rebuild", i, restart_span);
    }
  } else {
    span_edge("cold_rebuild", i, restart_span);
  }

  const long backoff = std::min(cfg_.backoff_cap_ticks,
                                cfg_.backoff_base_ticks << std::min(st.restarts - 1, 30));
  st.backoff_until = fleet_tick_ + std::max<long>(backoff, 0);
  st.health = st.backoff_until > fleet_tick_ ? ChannelHealth::BackingOff : ChannelHealth::Running;
  ++stats_.restarts;
  if (cfg_.metrics) cfg_.metrics->add(m_restarts_);
  if (cfg_.spans && restart_span) {
    cfg_.spans->annotate(restart_span, "backoff_ticks", static_cast<double>(backoff));
    cfg_.spans->end(restart_span, now_sim());
  }
  emit(obs::EventSeverity::Warn, "channel_restart",
       st.last_good.empty() && st.ticks_done == 0 ? "cold rebuild" : "restored from checkpoint",
       {{"channel", static_cast<double>(i)},
        {"from_tick", static_cast<double>(st.ticks_done)},
        {"backoff_ticks", static_cast<double>(backoff)}});
}

void FleetSupervisor::drain_outputs() {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    ChannelState& st = *states_[i];
    if (st.channel->outputs().empty()) continue;
    auto batch = st.channel->take_outputs();
    stats_.delivered_samples += static_cast<long>(batch.size());
    if (cfg_.metrics) cfg_.metrics->add(m_delivered_, static_cast<double>(batch.size()));
    if (consumer_) consumer_(i, std::move(batch));
  }
}

void FleetSupervisor::take_checkpoints() {
  if (cfg_.checkpoint_interval <= 0 || fleet_tick_ % cfg_.checkpoint_interval != 0) return;
  for (auto& stp : states_) {
    ChannelState& st = *stp;
    if (st.health == ChannelHealth::Quarantined) continue;
    if (st.ticks_done != fleet_tick_) continue;  // behind (shed/backoff): skip
    st.last_good = st.channel->snapshot();
    st.last_good_tick = st.ticks_done;
    ++stats_.checkpoints;
    if (cfg_.metrics) cfg_.metrics->add(m_checkpoints_);
  }
}

void FleetSupervisor::close_incidents() {
  for (auto& stp : states_) {
    ChannelState& st = *stp;
    if (!st.incident_open || st.health != ChannelHealth::Running) continue;
    if (st.ticks_done != fleet_tick_) continue;
    st.incident_open = false;
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - st.incident_start)
                          .count();
    stats_.mttr_ms.push_back(ms);
    const std::size_t idx = static_cast<std::size_t>(&stp - states_.data());
    span_edge("catch_up", idx, st.incident_span, "mttr_ms", ms);
    if (cfg_.spans && st.incident_span) {
      cfg_.spans->end(st.incident_span, now_sim());
      st.incident_span = 0;
    }
    emit(obs::EventSeverity::Info, "channel_recovered", {},
         {{"channel", static_cast<double>(idx)}, {"mttr_ms", ms}});
  }
}

void FleetSupervisor::run_ticks(long n) {
  for (long k = 0; k < n; ++k) run_one_tick();

  // Final catch-up: shed or backing-off channels replay their missed time so
  // the run ends with every healthy channel at the same simulated instant.
  for (std::size_t i = 0; i < states_.size(); ++i) {
    ChannelState& st = *states_[i];
    if (st.health == ChannelHealth::Quarantined) continue;
    st.health = ChannelHealth::Running;
    while (st.ticks_done < fleet_tick_ && !st.tick_failed.load(std::memory_order_relaxed)) {
      if (st.channel->queue_full()) drain_outputs();
      try {
        const long target = std::llround(static_cast<double>(fleet_tick_) *
                                         cfg_.tick_seconds * st.channel->base_rate_hz());
        st.channel->advance(std::max<long>(0, target - st.channel->ticks_advanced()));
        st.ticks_done = fleet_tick_;
      } catch (const std::exception& e) {
        st.tick_error = e.what();
        st.tick_failed.store(true, std::memory_order_release);
      }
    }
    if (st.tick_failed.load(std::memory_order_relaxed)) {
      st.tick_failed.store(false, std::memory_order_relaxed);
      st.last_error = st.tick_error;
      st.dtcs |= safety::kDtcEngineFault;
      ++stats_.exceptions;
      open_incident(i);
      span_edge("channel_exception", i, st.incident_span);
      restart_channel(i);
    }
  }
  drain_outputs();
  close_incidents();
}

void FleetSupervisor::corrupt_last_checkpoint(std::size_t i) {
  auto& img = states_[i]->last_good;
  if (img.size() > kCheckpointHeaderSize) img[kCheckpointHeaderSize + img.size() / 3] ^= 0x40;
}

void FleetSupervisor::truncate_last_checkpoint(std::size_t i, std::size_t keep) {
  auto& img = states_[i]->last_good;
  if (img.size() > keep) img.resize(keep);
}

}  // namespace ascp::engine
