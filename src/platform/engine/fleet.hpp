// fleet.hpp — crash-resilient supervised runtime over a channel fleet.
//
// ChannelFarm answers "how do N channels advance in parallel"; the
// FleetSupervisor answers "what happens when one of them goes wrong while
// the rest must keep streaming". It advances the fleet in fixed *fleet
// ticks* of simulated time and wraps every channel in the full resilience
// loop:
//
//   * checkpointing    — every `checkpoint_interval` ticks each channel's
//                        bit-exact state image (ConditioningChannel::
//                        snapshot) is retained as the last-good point;
//   * worker watchdog  — a scan thread observes per-worker heartbeats and
//                        flags any channel whose advance has exceeded the
//                        tick deadline (detection is asynchronous: the
//                        stalled advance itself cannot be interrupted);
//   * containment      — a channel that throws mid-advance never unwinds a
//                        worker thread or touches its siblings; the wrecked
//                        instance is discarded;
//   * restart          — the channel is rebuilt from its config and restored
//                        from the last-good checkpoint, then deterministically
//                        catches up the missed simulated time. A corrupt or
//                        truncated image is detected by the CRC frame and
//                        falls back to a cold rebuild + full replay. Restarts
//                        back off exponentially (capped) and after
//                        `max_restarts` the channel is permanently
//                        quarantined with an ENGINE_FAULT trouble code;
//   * degradation      — when a tick's wall time exceeds the real-time
//                        budget, low-priority channels are shed (skipped)
//                        until the fleet is back under budget; shed channels
//                        catch up later, so no simulated time is ever lost.
//
// Determinism: chaos (stalls, exceptions, checkpoint corruption) is injected
// from *outside* the channel's simulation state, and catch-up replays the
// exact missed ticks — so a recovered channel's output_hash() equals a
// clean twin that never crashed. The chaos bench proves this invariant.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/observability.hpp"
#include "platform/engine/conditioning_channel.hpp"

namespace ascp::engine {

/// Lifecycle of one supervised channel.
enum class ChannelHealth {
  Running,      ///< advancing (possibly catching up after a restart/shed)
  BackingOff,   ///< restarted, waiting out the backoff window
  Quarantined,  ///< permanently parked after max_restarts failures
};

const char* channel_health_name(ChannelHealth h);

struct FleetChannelSpec {
  ChannelConfig config;
  /// Shedding order under overload: lower priority is shed first.
  int priority = 0;
  /// Chaos/test hook invoked on the worker thread immediately before the
  /// channel advances one *live* fleet tick (never during catch-up replay).
  /// Throwing simulates a channel crash; sleeping simulates a stall. Must
  /// not touch the channel's simulation state.
  std::function<void(long fleet_tick)> before_advance;
};

struct FleetConfig {
  /// Per-channel seeds fork from here exactly like ChannelFarm's, so a fleet
  /// channel reproduces the stream of a solo channel with the same derived
  /// seed.
  std::uint64_t root_seed = 1;
  bool reseed_channels = true;
  /// Worker threads (1 = advance on the calling thread, no pool).
  unsigned threads = 1;
  /// Simulated seconds per fleet tick.
  double tick_seconds = 0.005;
  /// Wall-clock deadline for one channel advance; 0 disables the watchdog.
  double tick_deadline_ms = 0.0;
  /// Fleet ticks between checkpoints; 0 disables checkpointing (restarts
  /// then always cold-rebuild and replay from tick zero).
  long checkpoint_interval = 4;
  /// Failed restarts before permanent quarantine.
  int max_restarts = 3;
  /// Restart backoff: min(base << (restarts-1), cap) fleet ticks.
  long backoff_base_ticks = 1;
  long backoff_cap_ticks = 8;
  /// Per-tick wall budget driving priority shedding; 0 disables shedding.
  double realtime_budget_ms = 0.0;
  /// Optional telemetry (non-owning). Events are emitted from the
  /// supervising thread only (EventLog is single-writer).
  obs::MetricRegistry* metrics = nullptr;
  obs::EventLog* events = nullptr;
  /// Optional causal-span log (non-owning, supervising thread only): every
  /// fleet tick and every lifecycle edge of an incident — stall detect →
  /// exception → restart → restore/cold-rebuild → catch-up → quarantine —
  /// is recorded with ancestry, trace id = root_seed.
  obs::SpanLog* spans = nullptr;
  /// Arm every channel's flight recorder (forces with_flight_recorder on the
  /// per-channel configs before construction), so a crash dump always has a
  /// ring tail to retain.
  bool flight_recorders = false;
  /// Crash forensics: when a channel is restarted or quarantined the
  /// supervisor dumps a framed `.blackbox` image (blackbox.hpp) of the
  /// wrecked instance — ring tail, last-good checkpoint, metrics, spans —
  /// into this directory (created on demand; empty disables) …
  std::string blackbox_dir;
  /// … and/or hands the framed bytes to this callback (supervising thread).
  std::function<void(std::size_t channel, const std::vector<std::uint8_t>& image)>
      blackbox_sink;
};

/// Aggregate counters for the run so far (chaos-bench reporting).
struct FleetStats {
  long ticks = 0;
  long stalls_detected = 0;
  long exceptions = 0;
  long restarts = 0;
  long quarantined = 0;
  long corrupt_checkpoints = 0;  ///< restore attempts rejected by the CRC frame
  long checkpoints = 0;
  long shed_channel_ticks = 0;   ///< channel-ticks skipped by load shedding
  long delivered_samples = 0;    ///< outputs drained to the consumer
  long blackbox_dumps = 0;       ///< `.blackbox` crash images written
  /// Wall-clock detection latency of stall incidents [ms] (time from the
  /// advance starting to the watchdog flagging it).
  std::vector<double> stall_detect_ms;
  /// Wall-clock mean time to repair [ms]: failure observed → channel caught
  /// back up with the fleet.
  std::vector<double> mttr_ms;
};

class FleetSupervisor {
 public:
  FleetSupervisor(std::vector<FleetChannelSpec> specs, const FleetConfig& cfg);
  ~FleetSupervisor();

  FleetSupervisor(const FleetSupervisor&) = delete;
  FleetSupervisor& operator=(const FleetSupervisor&) = delete;

  /// Advance the whole fleet by `n` fleet ticks. Ends with a catch-up pass:
  /// on return every non-quarantined channel has simulated exactly
  /// `ticks_run() * tick_seconds` seconds.
  void run_ticks(long n);

  std::size_t size() const { return states_.size(); }
  long ticks_run() const { return fleet_tick_; }
  /// The live channel instance (rebuilt across restarts; never null).
  ConditioningChannel& channel(std::size_t i) { return *states_[i]->channel; }
  const ConditioningChannel& channel(std::size_t i) const { return *states_[i]->channel; }

  ChannelHealth health(std::size_t i) const { return states_[i]->health; }
  /// Fleet-level trouble codes for channel i (safety::Dtc vocabulary —
  /// kDtcEngineFault after any crash/stall/restart/quarantine).
  std::uint16_t fleet_dtcs(std::size_t i) const { return states_[i]->dtcs; }
  int restarts(std::size_t i) const { return states_[i]->restarts; }
  long ticks_done(std::size_t i) const { return states_[i]->ticks_done; }
  std::string last_error(std::size_t i) const { return states_[i]->last_error; }

  const FleetStats& stats() const { return stats_; }

  /// Consumer for drained output samples (called on the supervising thread
  /// after each tick). Unset, drained samples are counted and discarded.
  void set_consumer(std::function<void(std::size_t, std::vector<double>&&)> fn) {
    consumer_ = std::move(fn);
  }

  // ---- chaos/test hooks ----------------------------------------------------
  /// Flip one bit inside the payload of channel i's last-good checkpoint
  /// (no-op without one). The next restore detects the CRC mismatch.
  void corrupt_last_checkpoint(std::size_t i);
  /// Truncate channel i's last-good checkpoint to `keep` bytes.
  void truncate_last_checkpoint(std::size_t i, std::size_t keep);
  bool has_checkpoint(std::size_t i) const { return !states_[i]->last_good.empty(); }

 private:
  struct ChannelState {
    std::unique_ptr<ConditioningChannel> channel;
    ChannelConfig config;  ///< derived seed baked in (restart recipe)
    int priority = 0;
    std::function<void(long)> before_advance;

    ChannelHealth health = ChannelHealth::Running;
    long ticks_done = 0;  ///< fleet ticks of simulated time completed
    std::vector<std::uint8_t> last_good;
    long last_good_tick = 0;
    int restarts = 0;
    long backoff_until = 0;  ///< skip while fleet_tick_ < backoff_until
    std::uint16_t dtcs = 0;
    std::string last_error;
    long shed_ticks = 0;

    // Worker → supervisor failure handoff (one worker per channel per tick).
    std::atomic<bool> tick_failed{false};
    std::string tick_error;

    // Open incident (failure observed, catch-up not yet complete).
    bool incident_open = false;
    std::chrono::steady_clock::time_point incident_start{};
    std::uint64_t incident_span = 0;  ///< open "incident" span id (0 = none)
  };

  /// Per-worker heartbeat the watchdog thread scans. `channel` is the index
  /// being advanced (-1 idle); `start_ns` the steady-clock start.
  struct Heartbeat {
    std::atomic<long> channel{-1};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<bool> flagged{false};
  };

  void worker_loop(unsigned worker_index);
  void advance_one(std::size_t i, unsigned worker_index);
  void run_one_tick();
  void handle_failures();
  void drain_outputs();
  void take_checkpoints();
  void restart_channel(std::size_t i);
  void close_incidents();
  void emit(obs::EventSeverity sev, const char* name, std::string detail,
            std::initializer_list<obs::Event::KV> kv = {});
  double now_sim() const;
  /// Dump the wrecked (still-intact) instance of channel i as a `.blackbox`
  /// image. No-op unless a sink or directory is configured.
  void dump_blackbox(std::size_t i);
  /// Completed Fleet-category lifecycle span tagged with the channel index.
  void span_edge(const char* name, std::size_t channel, std::uint64_t parent,
                 const char* k1 = nullptr, double v1 = 0.0);
  void open_incident(std::size_t i);

  std::vector<std::unique_ptr<ChannelState>> states_;
  FleetConfig cfg_;
  FleetStats stats_;
  long fleet_tick_ = 0;
  std::function<void(std::size_t, std::vector<double>&&)> consumer_;

  obs::MetricRegistry::Id m_ticks_ = 0, m_stalls_ = 0, m_exceptions_ = 0, m_restarts_ = 0,
                          m_quarantines_ = 0, m_shed_ = 0, m_delivered_ = 0,
                          m_checkpoints_ = 0, m_blackbox_ = 0;

  // Tick work list (indices of channels advancing this tick).
  std::vector<std::size_t> runnable_;

  // Worker pool (created when cfg.threads > 1), ChannelFarm-style barrier.
  std::vector<std::thread> pool_;
  std::vector<std::unique_ptr<Heartbeat>> heartbeats_;
  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::size_t active_ = 0;
  bool stop_ = false;

  // Watchdog thread + its detection journal (consumed by the supervisor
  // thread after each tick).
  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
  std::mutex stall_m_;
  struct StallRecord {
    long channel;
    double elapsed_ms;
  };
  std::vector<StallRecord> stall_log_;

  double last_tick_wall_ms_ = 0.0;
};

}  // namespace ascp::engine
