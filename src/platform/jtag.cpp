#include "platform/jtag.hpp"

#include <cassert>

namespace ascp::platform {

TapState tap_next(TapState s, bool tms) {
  switch (s) {
    case TapState::TestLogicReset: return tms ? TapState::TestLogicReset : TapState::RunTestIdle;
    case TapState::RunTestIdle:    return tms ? TapState::SelectDrScan : TapState::RunTestIdle;
    case TapState::SelectDrScan:   return tms ? TapState::SelectIrScan : TapState::CaptureDr;
    case TapState::CaptureDr:      return tms ? TapState::Exit1Dr : TapState::ShiftDr;
    case TapState::ShiftDr:        return tms ? TapState::Exit1Dr : TapState::ShiftDr;
    case TapState::Exit1Dr:        return tms ? TapState::UpdateDr : TapState::PauseDr;
    case TapState::PauseDr:        return tms ? TapState::Exit2Dr : TapState::PauseDr;
    case TapState::Exit2Dr:        return tms ? TapState::UpdateDr : TapState::ShiftDr;
    case TapState::UpdateDr:       return tms ? TapState::SelectDrScan : TapState::RunTestIdle;
    case TapState::SelectIrScan:   return tms ? TapState::TestLogicReset : TapState::CaptureIr;
    case TapState::CaptureIr:      return tms ? TapState::Exit1Ir : TapState::ShiftIr;
    case TapState::ShiftIr:        return tms ? TapState::Exit1Ir : TapState::ShiftIr;
    case TapState::Exit1Ir:        return tms ? TapState::UpdateIr : TapState::PauseIr;
    case TapState::PauseIr:        return tms ? TapState::Exit2Ir : TapState::PauseIr;
    case TapState::Exit2Ir:        return tms ? TapState::UpdateIr : TapState::ShiftIr;
    case TapState::UpdateIr:       return tms ? TapState::SelectDrScan : TapState::RunTestIdle;
  }
  return TapState::TestLogicReset;
}

JtagDevice::JtagDevice(std::uint32_t idcode, RegisterFile* regs)
    : idcode_(idcode), regs_(regs) {}

int JtagDevice::dr_length() const {
  switch (ir_) {
    case jtag_ir::kIdcode: return 32;
    case jtag_ir::kAddr: return 16;
    case jtag_ir::kDataWr:
    case jtag_ir::kDataRd: return 16;
    default: return 1;  // BYPASS and unknown instructions
  }
}

std::uint64_t JtagDevice::dr_capture_value() const {
  switch (ir_) {
    case jtag_ir::kIdcode: return idcode_;
    case jtag_ir::kAddr: return reg_addr_;
    case jtag_ir::kDataWr:
    case jtag_ir::kDataRd: return regs_ ? regs_->read_reg(reg_addr_) : 0;
    default: return 0;
  }
}

void JtagDevice::dr_update(std::uint64_t value) {
  switch (ir_) {
    case jtag_ir::kAddr:
      reg_addr_ = static_cast<std::uint16_t>(value);
      break;
    case jtag_ir::kDataWr:
      if (regs_) regs_->write_reg(reg_addr_, static_cast<std::uint16_t>(value));
      break;
    default:
      break;
  }
}

bool JtagDevice::clock(bool tms, bool tdi) {
  bool tdo = false;
  // Actions happen on entry to the new state (rising-edge semantics).
  const TapState next = tap_next(state_, tms);

  // TDO reflects the bit leaving the shift register while in a shift state.
  if (state_ == TapState::ShiftIr) {
    tdo = ir_shift_ & 1;
    ir_shift_ = static_cast<std::uint8_t>((ir_shift_ >> 1) | (tdi ? (1u << (kIrBits - 1)) : 0));
  } else if (state_ == TapState::ShiftDr) {
    tdo = dr_shift_ & 1;
    const int len = dr_length();
    dr_shift_ = (dr_shift_ >> 1) | (tdi ? (std::uint64_t{1} << (len - 1)) : 0);
  }

  switch (next) {
    case TapState::TestLogicReset:
      ir_ = jtag_ir::kIdcode;
      break;
    case TapState::CaptureIr:
      ir_shift_ = 0x1;  // IEEE: capture 0b...01 for fault isolation
      break;
    case TapState::UpdateIr:
      ir_ = static_cast<std::uint8_t>(ir_shift_ & ((1u << kIrBits) - 1));
      break;
    case TapState::CaptureDr:
      dr_shift_ = dr_capture_value();
      break;
    case TapState::UpdateDr:
      dr_update(dr_shift_);
      break;
    default:
      break;
  }
  state_ = next;
  return tdo;
}

bool JtagChain::clock(bool tms, bool tdi) {
  bool bit = tdi;
  for (JtagDevice* dev : devices_) bit = dev->clock(tms, bit);
  return bit;
}

void JtagHost::reset() {
  for (int i = 0; i < 5; ++i) chain_.clock(true, false);
  chain_.clock(false, false);  // -> Run-Test/Idle
}

void JtagHost::goto_shift_ir() {
  // Idle -> SelectDR -> SelectIR -> CaptureIR -> ShiftIR
  chain_.clock(true, false);
  chain_.clock(true, false);
  chain_.clock(false, false);
  chain_.clock(false, false);
}

void JtagHost::goto_shift_dr() {
  // Idle -> SelectDR -> CaptureDR -> ShiftDR
  chain_.clock(true, false);
  chain_.clock(false, false);
  chain_.clock(false, false);
}

void JtagHost::exit_to_idle() {
  // Exit1 -> Update -> Idle (last shift clock already raised TMS).
  chain_.clock(true, false);
  chain_.clock(false, false);
}

void JtagHost::shift_ir(const std::vector<std::uint8_t>& instructions) {
  assert(instructions.size() == chain_.size());
  goto_shift_ir();
  // Device farthest from TDI (highest index) receives its bits first.
  const int total = static_cast<int>(chain_.size()) * JtagDevice::kIrBits;
  int sent = 0;
  for (std::size_t d = chain_.size(); d-- > 0;) {
    for (int b = 0; b < JtagDevice::kIrBits; ++b) {
      const bool bit = (instructions[d] >> b) & 1;
      ++sent;
      chain_.clock(/*tms=*/sent == total, bit);  // last bit exits ShiftIR
    }
  }
  exit_to_idle();
}

std::vector<std::uint64_t> JtagHost::shift_dr(const std::vector<std::uint64_t>& values,
                                              const std::vector<int>& bits_per_device) {
  assert(values.size() == chain_.size() && bits_per_device.size() == chain_.size());
  goto_shift_dr();
  int total = 0;
  for (int b : bits_per_device) total += b;

  std::vector<std::uint64_t> captured(chain_.size(), 0);
  int sent = 0;
  // Input: device N-1's value first; output: device N-1's capture first.
  std::size_t out_dev = chain_.size() - 1;
  int out_bit = 0;
  for (std::size_t d = chain_.size(); d-- > 0;) {
    for (int b = 0; b < bits_per_device[d]; ++b) {
      const bool bit_in = (values[d] >> b) & 1;
      ++sent;
      const bool bit_out = chain_.clock(/*tms=*/sent == total, bit_in);
      if (bit_out) captured[out_dev] |= std::uint64_t{1} << out_bit;
      if (++out_bit == bits_per_device[out_dev] && out_dev > 0) {
        out_bit = 0;
        --out_dev;
      }
    }
  }
  exit_to_idle();
  return captured;
}

std::vector<std::uint8_t> JtagHost::all_bypass_except(std::size_t idx,
                                                      std::uint8_t instruction) const {
  std::vector<std::uint8_t> ir(chain_.size(), jtag_ir::kBypass);
  ir.at(idx) = instruction;
  return ir;
}

namespace {
std::vector<int> dr_bits(const JtagChain& chain, std::size_t idx, int bits) {
  std::vector<int> out(chain.size(), 1);  // bypassed devices: 1-bit DR
  out.at(idx) = bits;
  return out;
}
}  // namespace

std::uint32_t JtagHost::read_idcode(std::size_t device_index) {
  shift_ir(all_bypass_except(device_index, jtag_ir::kIdcode));
  const auto captured = shift_dr(std::vector<std::uint64_t>(chain_.size(), 0),
                                 dr_bits(chain_, device_index, 32));
  return static_cast<std::uint32_t>(captured[device_index]);
}

void JtagHost::write_register(std::size_t device_index, std::uint16_t addr, std::uint16_t value) {
  shift_ir(all_bypass_except(device_index, jtag_ir::kAddr));
  std::vector<std::uint64_t> v(chain_.size(), 0);
  v[device_index] = addr;
  shift_dr(v, dr_bits(chain_, device_index, 16));
  shift_ir(all_bypass_except(device_index, jtag_ir::kDataWr));
  v[device_index] = value;
  shift_dr(v, dr_bits(chain_, device_index, 16));
}

std::uint16_t JtagHost::read_register(std::size_t device_index, std::uint16_t addr) {
  shift_ir(all_bypass_except(device_index, jtag_ir::kAddr));
  std::vector<std::uint64_t> v(chain_.size(), 0);
  v[device_index] = addr;
  shift_dr(v, dr_bits(chain_, device_index, 16));
  shift_ir(all_bypass_except(device_index, jtag_ir::kDataRd));
  v[device_index] = 0;
  const auto captured = shift_dr(v, dr_bits(chain_, device_index, 16));
  return static_cast<std::uint16_t>(captured[device_index]);
}

}  // namespace ascp::platform
