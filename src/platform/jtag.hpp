// jtag.hpp — IEEE 1149.1 TAP controller, device chain, and host driver.
//
// Paper §4.2 selects JTAG as the analog/digital configuration interface for
// four reasons: proven protocol, asynchronous (clock-skew tolerant), only
// four wires per chain, and full read-back capability. This module models
// the digital reality of that choice: each configurable block carries a TAP
// with a 4-bit IR (IDCODE / BYPASS / ADDR / DATA); chains of TAPs share
// TMS/TCK with TDI→TDO daisy-chaining; and JtagHost drives the state machine
// the way the platform's firmware (or the external test PC) would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/registers.hpp"

namespace ascp::platform {

/// The 16 TAP controller states.
enum class TapState {
  TestLogicReset, RunTestIdle,
  SelectDrScan, CaptureDr, ShiftDr, Exit1Dr, PauseDr, Exit2Dr, UpdateDr,
  SelectIrScan, CaptureIr, ShiftIr, Exit1Ir, PauseIr, Exit2Ir, UpdateIr,
};

/// IEEE 1149.1 state transition function.
TapState tap_next(TapState state, bool tms);

/// Instruction codes (4-bit IR).
namespace jtag_ir {
constexpr std::uint8_t kIdcode = 0x2;
constexpr std::uint8_t kAddr = 0x8;    ///< select register address
constexpr std::uint8_t kDataWr = 0x9;  ///< write register at address on Update-DR
constexpr std::uint8_t kDataRd = 0xA;  ///< capture register at address; Update-DR inert
constexpr std::uint8_t kBypass = 0xF;
}  // namespace jtag_ir

/// One TAP-equipped device giving bit-serial access to a RegisterFile.
class JtagDevice {
 public:
  static constexpr int kIrBits = 4;

  /// `idcode` identifies the die (read via IDCODE), `regs` is the register
  /// file this TAP fronts (may be shared with a bridge window — same
  /// registers, two access paths, exactly like the paper's platform).
  JtagDevice(std::uint32_t idcode, RegisterFile* regs);

  /// Advance one TCK cycle. Returns TDO.
  bool clock(bool tms, bool tdi);

  TapState state() const { return state_; }
  std::uint8_t instruction() const { return ir_; }
  std::uint32_t idcode() const { return idcode_; }

 private:
  int dr_length() const;
  std::uint64_t dr_capture_value() const;
  void dr_update(std::uint64_t value);

  std::uint32_t idcode_;
  RegisterFile* regs_;
  TapState state_ = TapState::TestLogicReset;
  std::uint8_t ir_ = jtag_ir::kIdcode;
  std::uint8_t ir_shift_ = 0;
  std::uint64_t dr_shift_ = 0;
  int shift_count_ = 0;
  std::uint16_t reg_addr_ = 0;
};

/// A scan chain: shared TMS/TCK, TDI of the chain feeds device 0, whose TDO
/// feeds device 1, and so on.
class JtagChain {
 public:
  void add(JtagDevice* dev) { devices_.push_back(dev); }
  std::size_t size() const { return devices_.size(); }
  JtagDevice& device(std::size_t i) { return *devices_.at(i); }

  /// One TCK for the whole chain; returns chain TDO.
  bool clock(bool tms, bool tdi);

 private:
  std::vector<JtagDevice*> devices_;
};

/// Host-side driver: navigates TAP states and performs whole-chain scans.
class JtagHost {
 public:
  explicit JtagHost(JtagChain& chain) : chain_(chain) {}

  /// Five TMS=1 clocks: every TAP lands in Test-Logic-Reset, then idle.
  void reset();

  /// Load one instruction per device (index 0 first in the vector).
  void shift_ir(const std::vector<std::uint8_t>& instructions);

  /// Shift a data vector through every device's DR. `bits_per_device[i]`
  /// bits are shifted for device i (caller must match each device's current
  /// DR length); returns the captured values shifted out.
  std::vector<std::uint64_t> shift_dr(const std::vector<std::uint64_t>& values,
                                      const std::vector<int>& bits_per_device);

  // ---- register-level conveniences (single-target, others in BYPASS) ----
  std::uint32_t read_idcode(std::size_t device_index);
  void write_register(std::size_t device_index, std::uint16_t addr, std::uint16_t value);
  std::uint16_t read_register(std::size_t device_index, std::uint16_t addr);

 private:
  void goto_shift_dr();
  void goto_shift_ir();
  void exit_to_idle();
  std::vector<std::uint8_t> all_bypass_except(std::size_t idx, std::uint8_t instruction) const;

  JtagChain& chain_;
};

}  // namespace ascp::platform
