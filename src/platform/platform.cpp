#include "platform/platform.hpp"

namespace ascp::platform {

McuSubsystem::McuSubsystem(const PlatformConfig& cfg)
    : cfg_(cfg),
      bus_(cfg.xdata_ram),
      jtag_dev_(0x1A5CD001, &regs_),  // platform digital die IDCODE
      jtag_host_(jtag_chain_) {
  cpu_.set_xdata_bus(&bus_);
  host_.attach(cpu_);

  area_.instantiate("cpu8051");
  area_.instantiate("rom16k");
  area_.instantiate("ram_ctrl");
  area_.instantiate("uart");
  area_.instantiate("bridge16");
  area_.instantiate("regfile");
  area_.instantiate("jtag_tap");

  bus_.map(&regs_, cfg.map.regfile, 256, "regfile");

  if (cfg.with_spi) {
    spi_ = std::make_unique<mcu::SpiMaster>();
    eeprom_ = std::make_unique<mcu::SpiEeprom>(8192);
    spi_->connect(eeprom_.get());
    bus_.map(spi_.get(), cfg.map.spi, 3, "spi");
    area_.instantiate("spi");
  }
  if (cfg.with_timer) {
    timer_ = std::make_unique<mcu::Timer16>();
    bus_.map(timer_.get(), cfg.map.timer, 4, "timer");
    area_.instantiate("timer16");
  }
  if (cfg.with_watchdog) {
    watchdog_ = std::make_unique<mcu::Watchdog>([this] {
      cpu_.reset();
      if (reset_hook_) reset_hook_();
    });
    bus_.map(watchdog_.get(), cfg.map.watchdog, 4, "watchdog");
    area_.instantiate("watchdog");
  }
  if (cfg.with_sram_trace) {
    sram_ = std::make_unique<mcu::SramController>();
    bus_.map(sram_.get(), cfg.map.sram, 7, "sram");
    area_.instantiate("sram_ctrl");
  }
  if (cfg.with_program_ram) {
    bus_.map_program_ram(cfg.map.prog_ram, cfg.map.prog_size, &cpu_);
    // The cache fronts the big external RAM over the 2-wire link (Fig. 4).
    cache_ = std::make_unique<mcu::CacheController>();
    cpu_.attach_sfr_device(cache_.get());
    area_.instantiate("cache_ctrl");
  }

  jtag_chain_.add(&jtag_dev_);
}

long McuSubsystem::cycles_per_sample(double dsp_fs) const {
  // 12 clocks per machine cycle.
  return static_cast<long>(static_cast<double>(cfg_.cpu_clock_hz) / 12.0 / dsp_fs + 0.5);
}

void McuSubsystem::run_cpu(long machine_cycles) {
  long used = 0;
  while (used < machine_cycles) {
    const int c = cpu_.step();
    used += c;
    if (timer_) timer_->tick(c);
    if (watchdog_) watchdog_->tick(c);
    host_.pump(cpu_);
  }
}

}  // namespace ascp::platform
