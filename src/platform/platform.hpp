// platform.hpp — the generic platform assembly (paper Fig. 2 / Fig. 4).
//
// McuSubsystem wires the programmable-digital side exactly as Fig. 4 draws
// it: the 8051 core with its SFR bus, the 16-bit bridge carrying SPI, timer,
// watchdog and SRAM controller, program RAM for the prototype boot flow, a
// DSP register window, and the UART host link. PlatformConfig selects which
// blocks exist — only instantiated blocks appear in the area model, which is
// the platform-vs-universal story of the paper.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "mcu/bootrom.hpp"
#include "mcu/bus.hpp"
#include "mcu/cache_ctrl.hpp"
#include "mcu/core8051.hpp"
#include "mcu/spi.hpp"
#include "mcu/sram_ctrl.hpp"
#include "mcu/timer16.hpp"
#include "mcu/uart.hpp"
#include "mcu/watchdog.hpp"
#include "platform/area_model.hpp"
#include "platform/jtag.hpp"
#include "platform/registers.hpp"

namespace ascp::platform {

/// Bridge memory map (byte addresses in XDATA space).
struct BridgeMap {
  std::uint16_t regfile = 0x4000;   ///< DSP/AFE register window (256 regs)
  std::uint16_t spi = 0xFF00;       ///< SPI master (3 regs)
  std::uint16_t timer = 0xFF10;     ///< 16-bit timer (4 regs)
  std::uint16_t watchdog = 0xFF20;  ///< watchdog (4 regs)
  std::uint16_t sram = 0xFF30;      ///< SRAM trace controller (7 regs)
  std::uint16_t prog_ram = 0x8000;  ///< program RAM base
  std::uint32_t prog_size = 0x7F00; ///< program RAM bytes
};

struct PlatformConfig {
  bool with_spi = true;
  bool with_timer = true;
  bool with_watchdog = true;
  bool with_sram_trace = true;
  bool with_program_ram = true;  ///< 'prototype' version; false = 'ASIC' ROM-only
  std::size_t xdata_ram = 4096;
  BridgeMap map{};
  long cpu_clock_hz = 20'000'000;  ///< paper §4.3: 20 MHz
};

/// The programmable-digital subsystem plus the platform's register fabric
/// and JTAG chain.
class McuSubsystem {
 public:
  explicit McuSubsystem(const PlatformConfig& cfg = {});

  // ---- Fig. 4 blocks ------------------------------------------------------
  mcu::Core8051& cpu() { return cpu_; }
  mcu::BridgedBus& bus() { return bus_; }
  mcu::HostLink& host() { return host_; }
  mcu::SpiMaster* spi() { return spi_.get(); }
  mcu::SpiEeprom* eeprom() { return eeprom_.get(); }
  mcu::Timer16* timer() { return timer_.get(); }
  mcu::Watchdog* watchdog() { return watchdog_.get(); }
  mcu::SramController* sram_trace() { return sram_.get(); }
  /// Cache controller fronting the big external RAM (prototype versions
  /// with program RAM only — paper Fig. 4 places it on the SFR bus).
  mcu::CacheController* cache() { return cache_.get(); }

  /// DSP/AFE register fabric — visible to the CPU at map.regfile, to the
  /// host over JTAG, and to C++ directly.
  RegisterFile& regs() { return regs_; }
  JtagChain& jtag_chain() { return jtag_chain_; }
  JtagHost& jtag() { return jtag_host_; }

  const PlatformConfig& config() const { return cfg_; }

  /// Machine cycles per DSP sample at the configured CPU clock (12 clocks
  /// per machine cycle) and a given DSP sample rate.
  long cycles_per_sample(double dsp_fs) const;

  /// Advance the CPU by `machine_cycles` (runs bridge peripherals too) while
  /// pumping the host link.
  void run_cpu(long machine_cycles);

  /// Load firmware: ASIC-style straight into ROM at 0, or via the boot path.
  void load_firmware(const std::vector<std::uint8_t>& image) { cpu_.load_program(image); }

  /// Hook running after the watchdog resets the CPU — the system-level
  /// recovery path (self-test, calibration replay) chains off this.
  void set_reset_hook(std::function<void()> hook) { reset_hook_ = std::move(hook); }

  /// Area bookkeeping for everything this subsystem instantiated.
  const AreaModel& area() const { return area_; }
  AreaModel& area() { return area_; }

  /// Full programmable-side state: CPU, buses, peripherals, register fabric.
  /// Wiring (device maps, hooks, JTAG attachment) is reconstructed by the
  /// owner; presence flags catch checkpoints from a different PlatformConfig.
  void serialize_state(StateArchive& ar) {
    cpu_.serialize_state(ar);
    bus_.serialize_state(ar);
    host_.serialize_state(ar);
    auto presence = [&ar](bool present, const char* what) {
      bool stored = present;
      ar.value(stored);
      if (stored != present)
        throw StateError(std::string("checkpoint platform mismatch: ") + what);
    };
    presence(static_cast<bool>(spi_), "spi");
    if (spi_) {
      spi_->serialize_state(ar);
      eeprom_->serialize_state(ar);
    }
    presence(static_cast<bool>(timer_), "timer");
    if (timer_) timer_->serialize_state(ar);
    presence(static_cast<bool>(watchdog_), "watchdog");
    if (watchdog_) watchdog_->serialize_state(ar);
    presence(static_cast<bool>(sram_), "sram");
    if (sram_) sram_->serialize_state(ar);
    presence(static_cast<bool>(cache_), "cache");
    if (cache_) cache_->serialize_state(ar);
    regs_.serialize_values(ar);
  }

 private:
  PlatformConfig cfg_;
  mcu::Core8051 cpu_;
  mcu::BridgedBus bus_;
  mcu::HostLink host_;
  std::unique_ptr<mcu::SpiMaster> spi_;
  std::unique_ptr<mcu::SpiEeprom> eeprom_;
  std::unique_ptr<mcu::Timer16> timer_;
  std::unique_ptr<mcu::Watchdog> watchdog_;
  std::unique_ptr<mcu::SramController> sram_;
  std::unique_ptr<mcu::CacheController> cache_;
  RegisterFile regs_;
  JtagDevice jtag_dev_;
  JtagChain jtag_chain_;
  JtagHost jtag_host_;
  AreaModel area_;
  std::function<void()> reset_hook_;
};

}  // namespace ascp::platform
