#include "platform/registers.hpp"

namespace ascp::platform {

std::uint16_t RegisterFile::define(std::string name, std::uint16_t addr, RegKind kind,
                                   std::uint16_t reset_value, WriteHook on_write) {
  if (regs_.contains(addr))
    throw std::invalid_argument("register address collision at " + std::to_string(addr));
  if (by_name_.contains(name)) throw std::invalid_argument("duplicate register name " + name);
  by_name_[name] = addr;
  regs_[addr] = Reg{std::move(name), kind, reset_value, std::move(on_write), {}};
  return addr;
}

void RegisterFile::declare_fields(std::uint16_t addr, std::vector<RegField> fields) {
  Reg& reg = at(addr);
  std::uint16_t used = 0;
  for (const RegField& f : fields) {
    if (f.width <= 0)
      throw std::invalid_argument("zero-width field '" + f.name + "' in register " + reg.name);
    if (f.lsb < 0 || f.lsb + f.width > 16)
      throw std::invalid_argument("field '" + f.name + "' exceeds 16 bits in register " +
                                  reg.name);
    const auto mask =
        static_cast<std::uint16_t>(((1u << f.width) - 1u) << f.lsb);
    if (used & mask)
      throw std::invalid_argument("field '" + f.name + "' overlaps another field in register " +
                                  reg.name);
    used |= mask;
  }
  reg.fields = std::move(fields);
}

const std::vector<RegField>* RegisterFile::fields_of(std::uint16_t addr) const {
  const Reg& reg = at(addr);
  return reg.fields.empty() ? nullptr : &reg.fields;
}

const RegisterFile::Reg& RegisterFile::at(std::uint16_t addr) const {
  const auto it = regs_.find(addr);
  if (it == regs_.end())
    throw std::out_of_range("no register at address " + std::to_string(addr));
  return it->second;
}

RegisterFile::Reg& RegisterFile::at(std::uint16_t addr) {
  return const_cast<Reg&>(static_cast<const RegisterFile*>(this)->at(addr));
}

std::uint16_t RegisterFile::read(std::uint16_t addr) const { return at(addr).value; }

std::uint16_t RegisterFile::read(std::string_view name) const {
  return read(address_of(name));
}

void RegisterFile::write(std::uint16_t addr, std::uint16_t value) {
  Reg& reg = at(addr);
  if (reg.kind == RegKind::Status)
    throw std::logic_error("write to status register " + reg.name);
  reg.value = value;
  if (reg.on_write) reg.on_write(value);
}

void RegisterFile::write(std::string_view name, std::uint16_t value) {
  write(address_of(name), value);
}

void RegisterFile::post_status(std::uint16_t addr, std::uint16_t value) {
  at(addr).value = value;
}

void RegisterFile::post_status(std::string_view name, std::uint16_t value) {
  post_status(address_of(name), value);
}

void RegisterFile::corrupt(std::uint16_t addr, std::uint16_t xor_mask) {
  at(addr).value ^= xor_mask;
}

std::uint16_t RegisterFile::address_of(std::string_view name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end())
    throw std::out_of_range("no register named " + std::string(name));
  return it->second;
}

std::vector<RegisterFile::Entry> RegisterFile::dump() const {
  std::vector<Entry> out;
  out.reserve(regs_.size());
  for (const auto& [addr, reg] : regs_)
    out.push_back(Entry{reg.name, addr, reg.kind, reg.value,
                        reg.fields.empty() ? nullptr : &reg.fields});
  return out;
}

std::uint16_t RegisterFile::read_reg(std::uint16_t reg) {
  // The CPU may probe unpopulated addresses during read-back scans.
  const auto it = regs_.find(reg);
  return it == regs_.end() ? 0xFFFF : it->second.value;
}

void RegisterFile::write_reg(std::uint16_t reg, std::uint16_t value) {
  const auto it = regs_.find(reg);
  if (it == regs_.end() || it->second.kind == RegKind::Status) return;  // ignored, like hardware
  it->second.value = value;
  if (it->second.on_write) it->second.on_write(value);
}

}  // namespace ascp::platform
