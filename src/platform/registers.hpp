// registers.hpp — memory-mapped configuration/status register fabric.
//
// Paper §4.2: "a routine constantly checks the system status by accessing
// the several readable registers spread along the processing chain", and
// §3: analog cell parameters are programmed "through the digital part".
// RegisterFile is that fabric: named 16-bit registers, declared as CONFIG
// (writable, with change callbacks into the owning block) or STATUS
// (read-only, refreshed by the owning block), addressable from C++, from
// the 8051 via a bridge window, and bit-serially via JTAG — with full
// read-back of everything, the property the paper's self-tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mcu/bus.hpp"

namespace ascp::platform {

enum class RegKind { Config, Status };

/// Bit-field annotation of one register, used by the static register-map
/// checker (src/analysis) and self-documentation dumps. Fields do not change
/// runtime behaviour — they declare intent: which bits carry meaning, which
/// are reserved, and which a host/firmware may legally write.
struct RegField {
  std::string name;
  int lsb = 0;
  int width = 1;
  bool writable = true;   ///< false: host/firmware writes are illegal
  bool reserved = false;  ///< declared hole — must read as written / zero
};

class RegisterFile : public mcu::BridgeDevice {
 public:
  using WriteHook = std::function<void(std::uint16_t)>;

  /// Declare a register. `addr` is the word index inside the file. Returns
  /// addr for convenience. Throws on duplicate name/address.
  std::uint16_t define(std::string name, std::uint16_t addr, RegKind kind,
                       std::uint16_t reset_value = 0, WriteHook on_write = {});

  /// Annotate a defined register with its bit-field layout. Throws on
  /// unknown address, zero/negative field width, fields past bit 15, or
  /// overlapping fields — the declaration itself must be well-formed so the
  /// static checker can rely on it.
  void declare_fields(std::uint16_t addr, std::vector<RegField> fields);
  /// Field layout of a register, or nullptr when none was declared.
  const std::vector<RegField>* fields_of(std::uint16_t addr) const;

  // ---- C++-side access ---------------------------------------------------
  std::uint16_t read(std::uint16_t addr) const;
  std::uint16_t read(std::string_view name) const;
  /// Write a CONFIG register (fires the hook). Throws on STATUS registers —
  /// those belong to the hardware side.
  void write(std::uint16_t addr, std::uint16_t value);
  void write(std::string_view name, std::uint16_t value);

  /// Hardware-side update of a STATUS register (no hook, always allowed).
  void post_status(std::uint16_t addr, std::uint16_t value);
  void post_status(std::string_view name, std::uint16_t value);

  /// Fault injection: flip bits in the stored value without firing the
  /// config hook — models a single-event upset in the register flops, which
  /// the datapath only notices once something re-reads (or scrubs) the file.
  void corrupt(std::uint16_t addr, std::uint16_t xor_mask);

  std::uint16_t address_of(std::string_view name) const;
  bool contains(std::string_view name) const { return by_name_.contains(std::string(name)); }
  std::size_t size() const { return regs_.size(); }

  /// All registers in address order (read-back / dump support).
  struct Entry {
    std::string name;
    std::uint16_t addr;
    RegKind kind;
    std::uint16_t value;
    const std::vector<RegField>* fields = nullptr;  ///< nullptr when undeclared
  };
  std::vector<Entry> dump() const;

  // ---- BridgeDevice (8051 MOVX window) ------------------------------------
  std::uint16_t read_reg(std::uint16_t reg) override;
  void write_reg(std::uint16_t reg, std::uint16_t value) override;

  /// Checkpoint path: raw value transport, no write hooks. Hooks mutate the
  /// owning block's config, and that state is serialized by its owner —
  /// firing them here would apply those side effects twice (and STATUS
  /// registers have no legal write path at all). Addresses are verified so a
  /// checkpoint from a differently-shaped register map fails loudly.
  void serialize_values(StateArchive& ar) {
    std::uint32_t n = static_cast<std::uint32_t>(regs_.size());
    ar.value(n);
    if (n != regs_.size())
      throw StateError("register-file size mismatch in checkpoint");
    for (auto& [addr, reg] : regs_) {
      std::uint16_t a = addr;
      ar.value(a);
      if (a != addr)
        throw StateError("register-file address mismatch in checkpoint");
      ar.value(reg.value);
    }
  }

 private:
  struct Reg {
    std::string name;
    RegKind kind;
    std::uint16_t value;
    WriteHook on_write;
    std::vector<RegField> fields;  ///< empty until declare_fields()
  };

  const Reg& at(std::uint16_t addr) const;
  Reg& at(std::uint16_t addr);

  std::map<std::uint16_t, Reg> regs_;
  std::map<std::string, std::uint16_t, std::less<>> by_name_;
};

}  // namespace ascp::platform
