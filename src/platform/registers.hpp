// registers.hpp — memory-mapped configuration/status register fabric.
//
// Paper §4.2: "a routine constantly checks the system status by accessing
// the several readable registers spread along the processing chain", and
// §3: analog cell parameters are programmed "through the digital part".
// RegisterFile is that fabric: named 16-bit registers, declared as CONFIG
// (writable, with change callbacks into the owning block) or STATUS
// (read-only, refreshed by the owning block), addressable from C++, from
// the 8051 via a bridge window, and bit-serially via JTAG — with full
// read-back of everything, the property the paper's self-tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mcu/bus.hpp"

namespace ascp::platform {

enum class RegKind { Config, Status };

class RegisterFile : public mcu::BridgeDevice {
 public:
  using WriteHook = std::function<void(std::uint16_t)>;

  /// Declare a register. `addr` is the word index inside the file. Returns
  /// addr for convenience. Throws on duplicate name/address.
  std::uint16_t define(std::string name, std::uint16_t addr, RegKind kind,
                       std::uint16_t reset_value = 0, WriteHook on_write = {});

  // ---- C++-side access ---------------------------------------------------
  std::uint16_t read(std::uint16_t addr) const;
  std::uint16_t read(std::string_view name) const;
  /// Write a CONFIG register (fires the hook). Throws on STATUS registers —
  /// those belong to the hardware side.
  void write(std::uint16_t addr, std::uint16_t value);
  void write(std::string_view name, std::uint16_t value);

  /// Hardware-side update of a STATUS register (no hook, always allowed).
  void post_status(std::uint16_t addr, std::uint16_t value);
  void post_status(std::string_view name, std::uint16_t value);

  /// Fault injection: flip bits in the stored value without firing the
  /// config hook — models a single-event upset in the register flops, which
  /// the datapath only notices once something re-reads (or scrubs) the file.
  void corrupt(std::uint16_t addr, std::uint16_t xor_mask);

  std::uint16_t address_of(std::string_view name) const;
  bool contains(std::string_view name) const { return by_name_.contains(std::string(name)); }
  std::size_t size() const { return regs_.size(); }

  /// All registers in address order (read-back / dump support).
  struct Entry {
    std::string name;
    std::uint16_t addr;
    RegKind kind;
    std::uint16_t value;
  };
  std::vector<Entry> dump() const;

  // ---- BridgeDevice (8051 MOVX window) ------------------------------------
  std::uint16_t read_reg(std::uint16_t reg) override;
  void write_reg(std::uint16_t reg, std::uint16_t value) override;

 private:
  struct Reg {
    std::string name;
    RegKind kind;
    std::uint16_t value;
    WriteHook on_write;
  };

  const Reg& at(std::uint16_t addr) const;
  Reg& at(std::uint16_t addr);

  std::map<std::uint16_t, Reg> regs_;
  std::map<std::string, std::uint16_t, std::less<>> by_name_;
};

}  // namespace ascp::platform
