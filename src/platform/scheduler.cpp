#include "platform/scheduler.hpp"

#include <stdexcept>

namespace ascp::platform {

void Scheduler::every(long divider, Task task, std::string name) {
  every(divider, 0, std::move(task), std::move(name));
}

void Scheduler::every(long divider, long phase, Task task, std::string name) {
  if (divider < 1) throw std::invalid_argument("scheduler divider must be >= 1");
  if (phase < 0 || phase >= divider)
    throw std::invalid_argument("scheduler phase must be in [0, divider)");
  entries_.push_back(Entry{divider, phase, std::move(task), std::move(name)});
}

void Scheduler::tick() {
  for (Entry& e : entries_)
    if (ticks_ % e.divider == e.phase) e.task();
  ++ticks_;
}

void Scheduler::run_ticks(long n) {
  for (long i = 0; i < n; ++i) tick();
}

void Scheduler::run_seconds(double seconds) {
  run_ticks(static_cast<long>(seconds * base_rate_ + 0.5));
}

}  // namespace ascp::platform
