#include "platform/scheduler.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/profile.hpp"

namespace ascp::platform {

void Scheduler::every(long divider, Task task, std::string name) {
  every(divider, 0, std::move(task), std::move(name));
}

void Scheduler::every(long divider, long phase, Task task, std::string name) {
  if (divider < 1) throw std::invalid_argument("scheduler divider must be >= 1");
  if (phase < 0 || phase >= divider)
    throw std::invalid_argument("scheduler phase must be in [0, divider)");
  Entry e{divider, phase, std::move(task), std::move(name), -1};
  if (profiler_) e.profile_id = profiler_->register_task(e.name, divider, phase);
  entries_.push_back(std::move(e));
}

void Scheduler::set_profiler(obs::TaskProfiler* profiler) {
  profiler_ = profiler;
  for (Entry& e : entries_)
    e.profile_id = profiler_ ? profiler_->register_task(e.name, e.divider, e.phase) : -1;
  if (profiler_) profiler_->set_base_rate(base_rate_);
}

void Scheduler::tick() {
  if (profiler_) {
    using clock = std::chrono::steady_clock;
    for (Entry& e : entries_) {
      if (ticks_ % e.divider != e.phase) continue;
      const auto t0 = clock::now();
      e.task();
      const double wall = std::chrono::duration<double>(clock::now() - t0).count();
      profiler_->record(e.profile_id, ticks_, wall);
    }
  } else {
    for (Entry& e : entries_)
      if (ticks_ % e.divider == e.phase) e.task();
  }
  ++ticks_;
}

void Scheduler::run_ticks(long n) {
  for (long i = 0; i < n; ++i) tick();
}

void Scheduler::run_seconds(double seconds) {
  run_ticks(static_cast<long>(seconds * base_rate_ + 0.5));
}

}  // namespace ascp::platform
