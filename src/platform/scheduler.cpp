#include "platform/scheduler.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/profile.hpp"

namespace ascp::platform {

void Scheduler::every(long divider, Task task, std::string name) {
  every(divider, 0, std::move(task), std::move(name));
}

void Scheduler::every(long divider, long phase, Task task, std::string name) {
  if (divider < 1) throw std::invalid_argument("scheduler divider must be >= 1");
  if (phase < 0 || phase >= divider)
    throw std::invalid_argument("scheduler phase must be in [0, divider)");
  Entry e{divider, phase, std::move(task), std::move(name), -1, 1, 0};
  if (profiler_) {
    e.profile_id = profiler_->register_task(e.name, divider, phase);
    e.sample_stride = entry_stride(e);
  }
  entries_.push_back(std::move(e));
}

long Scheduler::entry_stride(const Entry& e) const {
  const long requested = profiler_ ? profiler_->sample_stride() : 1;
  if (requested > 0) return requested;
  // Auto: sample each task at ~kAutoSampleHz in simulated time, so the two
  // host clock reads per timed firing stay negligible even at MHz base rates.
  const double fire_hz = base_rate_ / static_cast<double>(e.divider);
  const long stride = static_cast<long>(fire_hz / obs::TaskProfiler::kAutoSampleHz);
  return stride < 1 ? 1 : stride;
}

void Scheduler::set_profiler(obs::TaskProfiler* profiler) {
  profiler_ = profiler;
  for (Entry& e : entries_) {
    e.profile_id = profiler_ ? profiler_->register_task(e.name, e.divider, e.phase) : -1;
    e.sample_stride = profiler_ ? entry_stride(e) : 1;
    e.fired = 0;
  }
  if (profiler_) profiler_->set_base_rate(base_rate_);
}

std::vector<Scheduler::TaskInfo> Scheduler::tasks() const {
  std::vector<TaskInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back({e.name, e.divider, e.phase});
  return out;
}

void Scheduler::tick() {
  if (profiler_) {
    using clock = std::chrono::steady_clock;
    for (Entry& e : entries_) {
      if (ticks_ % e.divider != e.phase) continue;
      if (e.fired++ % e.sample_stride == 0) {
        const auto t0 = clock::now();
        e.task();
        const double wall = std::chrono::duration<double>(clock::now() - t0).count();
        profiler_->record(e.profile_id, ticks_, wall,
                          static_cast<double>(e.sample_stride));
      } else {
        e.task();
        profiler_->count(e.profile_id);
      }
    }
  } else {
    for (Entry& e : entries_)
      if (ticks_ % e.divider == e.phase) e.task();
  }
  ++ticks_;
}

void Scheduler::run_ticks(long n) {
  for (long i = 0; i < n; ++i) tick();
}

void Scheduler::run_seconds(double seconds) {
  run_ticks(static_cast<long>(seconds * base_rate_ + 0.5));
}

}  // namespace ascp::platform
