// scheduler.hpp — deterministic multi-rate simulation kernel.
//
// The platform is a multi-rate system: the MEMS/analog models integrate at
// ~1.92 MHz, the DSP chain runs at the 240 kHz ADC rate, decimated outputs
// at ~1.9 kHz, and the 8051 executes a slice of instructions per DSP sample
// (20 MHz clock, paper §4.3). The scheduler advances a base tick and fires
// registered tasks at integer divisions of it, in registration order within
// a tick — fully deterministic, so every experiment is reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ascp::obs {
class TaskProfiler;
}

namespace ascp::platform {

class Scheduler {
 public:
  using Task = std::function<void()>;

  /// `base_rate_hz` is the fastest rate in the system (tick rate).
  explicit Scheduler(double base_rate_hz) : base_rate_(base_rate_hz) {}

  /// Run `task` every `divider` base ticks (divider >= 1), starting at the
  /// first tick. Tasks registered earlier run first within a tick.
  void every(long divider, Task task, std::string name = {});

  /// Run `task` every `divider` base ticks, offset by `phase` ticks
  /// (0 <= phase < divider): fires when ticks() % divider == phase. A
  /// divider-8 phase-7 task models hardware that emits on the 8th clock of
  /// each conversion cycle (e.g. a SAR ADC completing), which is how the
  /// conditioning pipelines keep their pre-refactor sample alignment.
  void every(long divider, long phase, Task task, std::string name = {});

  /// Advance one base tick.
  void tick();

  /// Advance `n` base ticks.
  void run_ticks(long n);

  /// Advance by wall-clock simulation time.
  void run_seconds(double seconds);

  double base_rate() const { return base_rate_; }
  double dt() const { return 1.0 / base_rate_; }
  long ticks() const { return ticks_; }
  double now() const { return static_cast<double>(ticks_) / base_rate_; }

  /// Checkpoint restore: reposition the tick counter so task phases resume
  /// where the saved run left off. Only meaningful for persistent schedulers
  /// (the analog baselines); per-run schedulers are rebuilt instead.
  void set_ticks(long ticks) { ticks_ = ticks; }

  /// Attach a task profiler (null detaches). Already-registered and future
  /// tasks are registered with it; while attached, tick() counts every task
  /// invocation and wall-times a sampled subset (the profiler's
  /// sample-stride policy — see TaskProfiler::set_sample_stride). Profiling
  /// is observational only — it cannot change task order or firing pattern.
  void set_profiler(obs::TaskProfiler* profiler);
  obs::TaskProfiler* profiler() const { return profiler_; }

  /// Static view of one registered task, for offline analysis (the timing
  /// analyzer turns these into TaskSpecs without running anything).
  struct TaskInfo {
    std::string name;
    long divider = 1;
    long phase = 0;
  };
  std::vector<TaskInfo> tasks() const;

 private:
  struct Entry {
    long divider;
    long phase;
    Task task;
    std::string name;
    int profile_id = -1;
    long sample_stride = 1;  ///< wall-time every Nth firing of this entry
    long fired = 0;          ///< firings since profiler attach (sampling phase)
  };

  long entry_stride(const Entry& e) const;

  double base_rate_;
  long ticks_ = 0;
  std::vector<Entry> entries_;
  obs::TaskProfiler* profiler_ = nullptr;
};

}  // namespace ascp::platform
