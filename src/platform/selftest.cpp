#include "platform/selftest.hpp"

#include <sstream>

namespace ascp::platform {

namespace {

void add(SelfTestResult& r, std::string name, bool passed, std::string detail = {}) {
  r.checks.push_back(SelfTestResult::Check{std::move(name), passed, std::move(detail)});
}

}  // namespace

std::string SelfTestResult::report() const {
  std::ostringstream out;
  std::size_t passed = 0;
  for (const auto& c : checks) {
    if (c.passed) ++passed;
    out << "  [" << (c.passed ? "PASS" : "FAIL") << "] " << c.name;
    if (!c.detail.empty()) out << " — " << c.detail;
    out << "\n";
  }
  out << "  " << passed << "/" << checks.size() << " checks passed — self-test "
      << (all_passed() ? "PASSED" : "FAILED") << "\n";
  return out.str();
}

SelfTestResult run_self_test(McuSubsystem& sys) {
  SelfTestResult result;
  auto& jtag = sys.jtag();
  jtag.reset();

  // --- [1] JTAG chain alive: IDCODE is sane -------------------------------
  const std::uint32_t id = jtag.read_idcode(0);
  add(result, "jtag idcode", id != 0 && id != 0xFFFFFFFF,
      "read 0x" + [&] { char b[16]; std::snprintf(b, 16, "%08X", id); return std::string(b); }());

  // --- [2] config-register walking bits over JTAG, read back via bridge ----
  bool walk_ok = true;
  std::string walk_detail;
  for (const auto& e : sys.regs().dump()) {
    if (e.kind != RegKind::Config) continue;
    const std::uint16_t saved = e.value;
    for (std::uint16_t pattern : {std::uint16_t{0x0001}, std::uint16_t{0x8000},
                                  std::uint16_t{0x5555}, std::uint16_t{0xAAAA}}) {
      jtag.write_register(0, e.addr, pattern);
      const std::uint16_t via_jtag = jtag.read_register(0, e.addr);
      const std::uint16_t via_bridge =
          sys.bus().read_word(static_cast<std::uint16_t>(sys.config().map.regfile + 2 * e.addr));
      if (via_jtag != pattern || via_bridge != pattern) {
        walk_ok = false;
        walk_detail = "register '" + e.name + "' failed pattern";
      }
    }
    jtag.write_register(0, e.addr, saved);  // restore
  }
  add(result, "config register walking bits (jtag+bridge)", walk_ok, walk_detail);

  // --- [3] status registers reject writes ----------------------------------
  bool status_ok = true;
  for (const auto& e : sys.regs().dump()) {
    if (e.kind != RegKind::Status) continue;
    const std::uint16_t before = sys.regs().read(e.addr);
    jtag.write_register(0, e.addr, static_cast<std::uint16_t>(~before));
    if (sys.regs().read(e.addr) != before) status_ok = false;
  }
  add(result, "status register write protection", status_ok);

  // --- [4] bridge write path: CPU-visible word access ------------------------
  // Save/restore the scratch register so a runtime invocation (the watchdog
  // recovery path re-runs the suite while the chain is live) is idempotent.
  bool bridge_ok = true;
  if (auto* timer = sys.timer()) {
    const std::uint16_t base = sys.config().map.timer;
    const std::uint16_t saved = sys.bus().read_word(base);
    sys.bus().write_word(base, 0xBEAD);
    bridge_ok = sys.bus().read_word(base) == 0xBEAD && timer->read_reg(0) == 0xBEAD;
    sys.bus().write_word(base, saved);
  }
  add(result, "bridge 16-bit write/read coherence", bridge_ok);

  // --- [5] SRAM trace memory test ---------------------------------------------
  bool sram_ok = true;
  if (auto* sram = sys.sram_trace()) {
    const bool saved_armed = (sram->read_reg(6) & 2) != 0;
    const std::uint16_t saved_node = sram->read_reg(1);
    const std::uint16_t saved_decim = sram->read_reg(2);
    sram->write_reg(1, 0);  // node 0
    sram->write_reg(2, 1);
    sram->write_reg(0, 3);  // reset + arm
    for (std::uint16_t i = 0; i < 256; ++i)
      sram->push(0, static_cast<std::uint16_t>(i * 257 + 1));  // distinct pattern
    sram->write_reg(0, 0);  // disarm
    sram->write_reg(4, 0);  // rewind
    for (std::uint16_t i = 0; i < 256 && sram_ok; ++i)
      sram_ok = sram->read_reg(5) == static_cast<std::uint16_t>(i * 257 + 1);
    // Restore the trace configuration (contents were consumed by the test;
    // a previously-armed capture restarts fresh, which is what a live chain
    // wants after its buffer was overwritten).
    sram->write_reg(1, saved_node);
    sram->write_reg(2, saved_decim);
    sram->write_reg(0, saved_armed ? 3 : 0);
    sram->write_reg(4, 0);
  }
  add(result, "sram trace pattern test", sram_ok);

  return result;
}

}  // namespace ascp::platform
