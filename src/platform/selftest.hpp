// selftest.hpp — platform self-checking (paper §2).
//
// "FPGA and analog front end not only have to satisfy functional
// specification for the targeted sensor, but also have to pass strict
// self-checking tests concerning full hardware read-back capability."
//
// The suite exercises every access path of the configuration fabric:
// JTAG IDCODE, JTAG write → bridge read coherence, bridge write → JTAG
// read, walking-bit patterns through every config register (restoring the
// original values), status-register write protection, and an SRAM trace
// memory test. Each check yields a named pass/fail record.
#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace ascp::platform {

struct SelfTestResult {
  struct Check {
    std::string name;
    bool passed;
    std::string detail;
  };

  std::vector<Check> checks;
  bool all_passed() const {
    for (const auto& c : checks)
      if (!c.passed) return false;
    return true;
  }
  std::string report() const;
};

/// Run the full self-check on an assembled MCU subsystem. Non-destructive:
/// every config register is restored to its pre-test value.
SelfTestResult run_self_test(McuSubsystem& sys);

}  // namespace ascp::platform
