#include "safety/cal_store.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace ascp::safety {

std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t len) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= static_cast<std::uint16_t>(data[i]) << 8;
    for (int b = 0; b < 8; ++b)
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
  }
  return crc;
}

namespace {

// Every byte crosses the SPI wires through the master's DATA/CTRL registers,
// the same path the 8051 boot code uses — no host-side peeking.
std::uint8_t xfer(mcu::SpiMaster& spi, std::uint8_t mosi) {
  spi.write_reg(mcu::SpiMaster::kRegData, mosi);
  return static_cast<std::uint8_t>(spi.read_reg(mcu::SpiMaster::kRegData));
}
void cs(mcu::SpiMaster& spi, bool asserted) {
  spi.write_reg(mcu::SpiMaster::kRegCtrl, asserted ? 1 : 0);
}

void put_u64(std::uint8_t* p, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(bits >> (8 * i));
}

double get_u64(const std::uint8_t* p) {
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::array<std::uint8_t, kCalRecordBytes> serialize(const dsp::CompensationCoeffs& c) {
  std::array<std::uint8_t, kCalRecordBytes> rec{};
  rec[0] = static_cast<std::uint8_t>(kCalMagic & 0xFF);
  rec[1] = static_cast<std::uint8_t>(kCalMagic >> 8);
  const double fields[6] = {c.offset[0], c.offset[1], c.offset[2], c.s0, c.s1, c.s2};
  for (int i = 0; i < 6; ++i) put_u64(&rec[2 + 8 * static_cast<std::size_t>(i)], fields[i]);
  const std::uint16_t crc = crc16_ccitt(rec.data(), kCalRecordBytes - 2);
  rec[kCalRecordBytes - 2] = static_cast<std::uint8_t>(crc & 0xFF);
  rec[kCalRecordBytes - 1] = static_cast<std::uint8_t>(crc >> 8);
  return rec;
}

std::array<std::uint8_t, kCalRecordBytes> read_record(mcu::SpiMaster& spi) {
  std::array<std::uint8_t, kCalRecordBytes> rec{};
  cs(spi, true);
  xfer(spi, 0x03);  // READ
  xfer(spi, static_cast<std::uint8_t>(kCalEepromAddr >> 8));
  xfer(spi, static_cast<std::uint8_t>(kCalEepromAddr & 0xFF));
  for (auto& byte : rec) byte = xfer(spi, 0x00);
  cs(spi, false);
  return rec;
}

CalRecord::Status record_status(const std::array<std::uint8_t, kCalRecordBytes>& rec) {
  const std::uint16_t magic =
      static_cast<std::uint16_t>(rec[0] | (rec[1] << 8));
  if (magic != kCalMagic) return CalRecord::Status::Missing;
  const std::uint16_t stored = static_cast<std::uint16_t>(
      rec[kCalRecordBytes - 2] | (rec[kCalRecordBytes - 1] << 8));
  if (stored != crc16_ccitt(rec.data(), kCalRecordBytes - 2))
    return CalRecord::Status::Corrupt;
  return CalRecord::Status::Ok;
}

}  // namespace

void store_calibration(mcu::SpiMaster& spi, const dsp::CompensationCoeffs& coeffs) {
  const auto rec = serialize(coeffs);
  // 25xx page writes are 32 bytes; the record spans two pages.
  constexpr std::size_t kPage = 32;
  std::size_t written = 0;
  while (written < rec.size()) {
    const std::uint16_t addr = static_cast<std::uint16_t>(kCalEepromAddr + written);
    const std::size_t room = kPage - (addr % kPage);
    const std::size_t n = std::min(room, rec.size() - written);

    cs(spi, true);
    xfer(spi, 0x06);  // WREN
    cs(spi, false);

    cs(spi, true);
    xfer(spi, 0x02);  // WRITE
    xfer(spi, static_cast<std::uint8_t>(addr >> 8));
    xfer(spi, static_cast<std::uint8_t>(addr & 0xFF));
    for (std::size_t i = 0; i < n; ++i) xfer(spi, rec[written + i]);
    cs(spi, false);

    written += n;
  }
}

CalRecord load_calibration(mcu::SpiMaster& spi) {
  const auto rec = read_record(spi);
  CalRecord out;
  out.status = record_status(rec);
  if (out.status != CalRecord::Status::Ok) return out;
  out.coeffs.offset[0] = get_u64(&rec[2]);
  out.coeffs.offset[1] = get_u64(&rec[10]);
  out.coeffs.offset[2] = get_u64(&rec[18]);
  out.coeffs.s0 = get_u64(&rec[26]);
  out.coeffs.s1 = get_u64(&rec[34]);
  out.coeffs.s2 = get_u64(&rec[42]);
  return out;
}

bool audit_calibration(mcu::SpiMaster& spi) {
  return record_status(read_record(spi)) != CalRecord::Status::Corrupt;
}

}  // namespace ascp::safety
