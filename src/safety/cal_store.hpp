// cal_store.hpp — calibration record persisted in the SPI EEPROM.
//
// Paper §4.2: the external SPI EEPROM lets the platform "reboot directly
// from EEPROM instead of downloading each time after reset". Here it holds
// the factory-trim compensation coefficients so the watchdog recovery path
// can replay them after a reset: magic + 6 little-endian IEEE-754 doubles +
// CRC16-CCITT, all moved through the SpiMaster register interface exactly
// the way the 8051 boot code would.
#pragma once

#include <cstdint>

#include "dsp/compensation.hpp"
#include "mcu/spi.hpp"

namespace ascp::safety {

/// Fixed EEPROM location of the calibration record (top of the default 8 KiB
/// part, clear of the firmware image the boot flow stores from address 0).
constexpr std::uint16_t kCalEepromAddr = 0x1F00;
constexpr std::uint16_t kCalMagic = 0xCA1B;
constexpr std::size_t kCalRecordBytes = 2 + 6 * 8 + 2;  ///< magic + coeffs + crc

/// CRC16-CCITT (poly 0x1021, init 0xFFFF) over `len` bytes.
std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t len);

struct CalRecord {
  enum class Status {
    Ok,       ///< magic + CRC valid, coeffs usable
    Missing,  ///< no magic — fresh EEPROM, not a fault
    Corrupt,  ///< magic present but CRC mismatch — latchable fault
  };
  Status status = Status::Missing;
  dsp::CompensationCoeffs coeffs;
};

/// Serialize `coeffs` and write the record at kCalEepromAddr through the
/// SPI master (WREN + page WRITEs).
void store_calibration(mcu::SpiMaster& spi, const dsp::CompensationCoeffs& coeffs);

/// Read back and validate the record through the SPI master.
CalRecord load_calibration(mcu::SpiMaster& spi);

/// CRC-only audit (no deserialization) — cheap enough for a periodic
/// runtime check. Returns false only on a Corrupt record.
bool audit_calibration(mcu::SpiMaster& spi);

}  // namespace ascp::safety
