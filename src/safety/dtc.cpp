#include "safety/dtc.hpp"

namespace ascp::safety {

const char* dtc_name(std::uint16_t bit) {
  switch (bit & static_cast<std::uint16_t>(-static_cast<std::int32_t>(bit))) {  // lowest set bit
    case kDtcPllUnlock: return "PLL_UNLOCK";
    case kDtcAgcRail: return "AGC_RAIL";
    case kDtcAdcStuck: return "ADC_STUCK";
    case kDtcRateRange: return "RATE_RANGE";
    case kDtcDriveCollapse: return "DRIVE_COLLAPSE";
    case kDtcTempRange: return "TEMP_RANGE";
    case kDtcCtrlRail: return "CTRL_RAIL";
    case kDtcGainAnomaly: return "GAIN_ANOMALY";
    case kDtcQuadRange: return "QUAD_RANGE";
    case kDtcCfgCorrupt: return "CFG_CORRUPT";
    case kDtcWatchdogBite: return "WATCHDOG_BITE";
    case kDtcCalCrc: return "CAL_CRC";
    case kDtcSelfTest: return "SELF_TEST";
    case kDtcCalReplay: return "CAL_REPLAY";
    case kDtcEngineFault: return "ENGINE_FAULT";
    default: return "?";
  }
}

std::string describe_dtcs(std::uint16_t mask) {
  if (!mask) return "-";
  std::string out;
  for (int b = 0; b < 16; ++b) {
    const std::uint16_t bit = static_cast<std::uint16_t>(1u << b);
    if (!(mask & bit)) continue;
    if (!out.empty()) out += "|";
    out += dtc_name(bit);
  }
  return out;
}

const char* state_name(SafetyState s) {
  switch (s) {
    case SafetyState::Nominal: return "NOMINAL";
    case SafetyState::Degraded: return "DEGRADED";
    case SafetyState::SafeState: return "SAFE_STATE";
  }
  return "?";
}

}  // namespace ascp::safety
