// dtc.hpp — diagnostic trouble codes and the degradation state machine
// vocabulary shared by the safety supervisor, the fault campaign and the
// firmware-visible DIAG register block.
//
// Automotive conditioning chips must not only "pass strict self-checking
// tests" at power-on (paper §2) — they must detect field faults at runtime,
// latch a machine-readable trouble code for the service tool, and degrade
// predictably instead of emitting plausible-but-wrong rate data. Each DTC is
// one bit of a 16-bit mask so the whole fault picture fits in a single
// bridge/JTAG register read.
#pragma once

#include <cstdint>
#include <string>

namespace ascp::safety {

/// Degradation state machine (paper-era ASIL thinking, simplified):
///   NOMINAL   — all plausibility monitors quiet, output is live.
///   DEGRADED  — a fault was detected; output still live but flagged, and
///               compensation inputs may be frozen at last-plausible values.
///   SAFE_STATE — an unrecoverable/critical fault persists; the output is
///               forced to the null voltage with the fault flag raised so a
///               downstream ECU can never mistake it for a real rate.
enum class SafetyState : std::uint16_t { Nominal = 0, Degraded = 1, SafeState = 2 };

/// DTC bit assignments (register `diag_dtc`). Latched on detection, held
/// until the service-tool clear write — surviving the fault itself clearing.
enum Dtc : std::uint16_t {
  kDtcPllUnlock = 1u << 0,      ///< PLL lock lost after having locked
  kDtcAgcRail = 1u << 1,        ///< AGC actuator pinned at its rail
  kDtcAdcStuck = 1u << 2,       ///< ADC code stuck (no dither across N samples)
  kDtcRateRange = 1u << 3,      ///< rate output outside the plausible span
  kDtcDriveCollapse = 1u << 4,  ///< drive-pickoff amplitude collapsed
  kDtcTempRange = 1u << 5,      ///< measured die temperature implausible
  kDtcCtrlRail = 1u << 6,       ///< force-feedback control pinned at its rail
  kDtcGainAnomaly = 1u << 7,    ///< loop gain far from the locked baseline
                                ///< (reference drift / PGA gain fault)
  kDtcQuadRange = 1u << 8,      ///< quadrature monitor outside plausible span
  kDtcCfgCorrupt = 1u << 9,     ///< config register differs from its shadow (SEU)
  kDtcWatchdogBite = 1u << 10,  ///< firmware hang — watchdog reset taken
  kDtcCalCrc = 1u << 11,        ///< EEPROM calibration record failed its CRC
  kDtcSelfTest = 1u << 12,      ///< post-reset self-test reported a failure
  kDtcCalReplay = 1u << 13,     ///< watchdog-recovery calibration replay found a
                                ///< corrupt image — safe defaults substituted
  kDtcEngineFault = 1u << 14,   ///< fleet runtime: channel crashed/stalled and
                                ///< was restarted or quarantined by the
                                ///< supervisor (engine-level, not chain-level)
};

/// Short mnemonic for one DTC bit (the lowest set bit of `bit`).
const char* dtc_name(std::uint16_t bit);

/// "PLL_UNLOCK|AGC_RAIL"-style rendering of a latched mask ("-" when empty).
std::string describe_dtcs(std::uint16_t mask);

const char* state_name(SafetyState s);

}  // namespace ascp::safety
