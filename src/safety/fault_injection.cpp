#include "safety/fault_injection.hpp"

namespace ascp::safety {

const char* fault_layer_name(FaultLayer layer) {
  switch (layer) {
    case FaultLayer::Sensor: return "sensor";
    case FaultLayer::Afe: return "afe";
    case FaultLayer::Dsp: return "dsp";
    case FaultLayer::Mcu: return "mcu";
  }
  return "?";
}

}  // namespace ascp::safety
