// fault_injection.hpp — sample-indexed fault campaign registry.
//
// A FaultCampaign holds a list of named faults, each bound to an inject
// callback (and optionally a clear callback) that reaches into whatever
// layer the fault lives at — MEMS transducer, AFE, DSP registers, MCU.
// The campaign is stepped once per DSP sample by the system under test and
// fires each fault exactly at its requested sample index, so detection
// latency can be measured in samples rather than "sometime after".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/state_archive.hpp"
#include "obs/observability.hpp"

namespace ascp::safety {

enum class FaultLayer { Sensor, Afe, Dsp, Mcu };

const char* fault_layer_name(FaultLayer layer);

struct FaultSpec {
  std::string name;
  FaultLayer layer = FaultLayer::Sensor;
  long inject_at = 0;    ///< DSP-sample index at which the fault appears
  long clear_after = -1; ///< samples until auto-clear (−1 = permanent)
  bool detectable = true;  ///< false = documented undetectable-by-design
  std::uint16_t expected_dtc = 0;  ///< DTC bit the monitors should latch
};

class FaultCampaign {
 public:
  using Action = std::function<void()>;

  struct Entry {
    FaultSpec spec;
    Action inject;
    Action clear;     ///< may be empty when clear_after < 0
    bool injected = false;
    bool cleared = false;
  };

  /// Register a fault. `clear` is invoked `spec.clear_after` samples after
  /// injection when that is ≥ 0 (transient faults).
  void add(FaultSpec spec, Action inject, Action clear = {}) {
    entries_.push_back({std::move(spec), std::move(inject), std::move(clear)});
  }

  /// Attach an observability sink (`fs` converts sample indexes to seconds
  /// for event timestamps). Inject/clear firings emit Fault events.
  void set_obs(const obs::ObsSink& sink, double fs) {
    obs_ = sink;
    obs_fs_ = fs > 0.0 ? fs : 1.0;
    if (obs_.events) obs_.events->declare_emitter(obs::EventCategory::Fault, "FaultCampaign");
  }

  /// Advance to DSP-sample `sample`, firing any due injections/clears.
  /// Called from inside the system's run loop.
  void step(long sample) {
    for (auto& e : entries_) {
      if (!e.injected && sample >= e.spec.inject_at) {
        e.inject();
        e.injected = true;
        if (obs_.events)
          obs_.events->emit(static_cast<double>(sample) / obs_fs_, obs::EventSeverity::Warn,
                            obs::EventCategory::Fault, "fault_inject", e.spec.name,
                            {{"sample", static_cast<double>(sample)},
                             {"layer", static_cast<double>(static_cast<int>(e.spec.layer))}});
        if (obs_.metrics) obs_.metrics->add(obs_.metrics->counter("fault.injections"));
      }
      if (e.injected && !e.cleared && e.spec.clear_after >= 0 &&
          sample >= e.spec.inject_at + e.spec.clear_after) {
        if (e.clear) e.clear();
        e.cleared = true;
        if (obs_.events)
          obs_.events->emit(static_cast<double>(sample) / obs_fs_, obs::EventSeverity::Info,
                            obs::EventCategory::Fault, "fault_clear", e.spec.name,
                            {{"sample", static_cast<double>(sample)}});
        if (obs_.metrics) obs_.metrics->add(obs_.metrics->counter("fault.clears"));
      }
    }
  }

  /// Forget firing state so the same campaign can be replayed on a fresh
  /// system (does not undo injected faults — rebuild the system for that).
  void rearm() {
    for (auto& e : entries_) {
      e.injected = false;
      e.cleared = false;
    }
  }

  const std::vector<Entry>& entries() const { return entries_; }
  std::vector<Entry>& entries() { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Checkpoint path: only the firing flags travel — callbacks are rebuilt
  /// by the owning channel's campaign factory, and the faults' physical
  /// effects live in (and restore with) the component state they mutated.
  void serialize_state(StateArchive& ar) {
    std::uint32_t n = static_cast<std::uint32_t>(entries_.size());
    ar.value(n);
    if (n != entries_.size())
      throw StateError("fault-campaign entry count mismatch in checkpoint");
    for (auto& e : entries_) {
      ar.value(e.injected);
      ar.value(e.cleared);
    }
  }

 private:
  std::vector<Entry> entries_;
  obs::ObsSink obs_{};
  double obs_fs_ = 1.0;
};

}  // namespace ascp::safety
