// standard_faults.hpp — canonical fault bindings for a GyroSystem.
//
// Header-only glue between the generic FaultCampaign and the concrete
// conditioning chain: each builder registers one parameterized fault with
// its inject/clear callbacks reaching into the right layer. Lives outside
// the ascp_safety library so safety/ never depends on core/ — the bench,
// tests and examples that own a GyroSystem compile these inline.
#pragma once

#include "core/gyro_system.hpp"
#include "safety/cal_store.hpp"
#include "safety/dtc.hpp"
#include "safety/fault_injection.hpp"

namespace ascp::safety::faults {

// ---- sensor layer ----------------------------------------------------------

inline void add_drive_electrode_open(FaultCampaign& c, core::GyroSystem& g, long at) {
  c.add({"drive electrode open", FaultLayer::Sensor, at, -1, true, kDtcDriveCollapse},
        [&g] { g.mems().inject_drive_fault(sensor::DriveElectrodeFault::Open); },
        [&g] { g.mems().clear_faults(); });
}

inline void add_drive_electrode_stuck(FaultCampaign& c, core::GyroSystem& g, long at,
                                      double stuck_v = 1.2) {
  c.add({"drive electrode stuck", FaultLayer::Sensor, at, -1, true, kDtcDriveCollapse},
        [&g, stuck_v] {
          g.mems().inject_drive_fault(sensor::DriveElectrodeFault::Stuck, stuck_v);
        },
        [&g] { g.mems().clear_faults(); });
}

/// Default Δkq is 50× the nominal quadrature stiffness: large enough to
/// saturate the quadrature-null servo (which silently absorbs small steps)
/// so the residual shows up on the quad monitor.
inline void add_quadrature_step(FaultCampaign& c, core::GyroSystem& g, long at,
                                double delta_kq = 3.0e6) {
  c.add({"quadrature step", FaultLayer::Sensor, at, -1, true, kDtcQuadRange},
        [&g, delta_kq] { g.mems().inject_quadrature_step(delta_kq); },
        [&g] { g.mems().clear_faults(); });
}

// ---- AFE layer (Full fidelity only — Ideal has no AFE instances) -----------

inline void add_primary_adc_stuck(FaultCampaign& c, core::GyroSystem& g, long at,
                                  std::int32_t code = 1234, long clear_after = -1) {
  c.add({"primary ADC stuck code", FaultLayer::Afe, at, clear_after, true, kDtcAdcStuck},
        [&g, code] { g.acq_primary()->adc().inject_stuck_code(code); },
        [&g] { g.acq_primary()->adc().clear_faults(); });
}

/// Sense ADC stuck at a mid-scale code: indistinguishable from the healthy
/// actively-nulled channel — the campaign's documented undetectable row.
inline void add_sense_adc_stuck_null(FaultCampaign& c, core::GyroSystem& g, long at) {
  c.add({"sense ADC stuck at null", FaultLayer::Afe, at, -1, false, 0},
        [&g] { g.acq_sense()->adc().inject_stuck_code(0); },
        [&g] { g.acq_sense()->adc().clear_faults(); });
}

/// Default drift is −45%: the AGC re-normalizes the apparent amplitude by
/// moving its gain the same fraction, which clears the 35% gain-anomaly
/// threshold (a −30% drift would hide inside the monitor's dead band).
inline void add_reference_drift(FaultCampaign& c, core::GyroSystem& g, long at,
                                double frac = -0.45) {
  c.add({"ADC reference drift", FaultLayer::Afe, at, -1, true, kDtcGainAnomaly},
        [&g, frac] {
          g.acq_primary()->adc().inject_reference_shift(frac);
          g.acq_sense()->adc().inject_reference_shift(frac);
        },
        [&g] {
          g.acq_primary()->adc().clear_faults();
          g.acq_sense()->adc().clear_faults();
        });
}

/// Default factor 2.0 (gain-setting bit stuck high): the AGC halves its own
/// gain to compensate, a clean GAIN_ANOMALY. A gain *loss* instead drives
/// the AGC into its rail, which clamps the excursion below the anomaly
/// threshold — that failure mode latches AGC_RAIL rather than GAIN_ANOMALY.
inline void add_pga_gain_error(FaultCampaign& c, core::GyroSystem& g, long at,
                               double factor = 2.0) {
  c.add({"primary PGA gain error", FaultLayer::Afe, at, -1, true, kDtcGainAnomaly},
        [&g, factor] {
          auto& amp = g.acq_primary()->amplifier();
          amp.set_gain(amp.gain() * factor);
        },
        [&g, factor] {
          auto& amp = g.acq_primary()->amplifier();
          amp.set_gain(amp.gain() / factor);
        });
}

inline void add_charge_amp_open(FaultCampaign& c, core::GyroSystem& g, long at) {
  c.add({"primary charge-amp open wire", FaultLayer::Afe, at, -1, true, kDtcDriveCollapse},
        [&g] { g.champ_primary()->inject_open_wire(true); },
        [&g] { g.champ_primary()->inject_open_wire(false); });
}

// ---- DSP layer -------------------------------------------------------------

inline void add_nco_phase_jump(FaultCampaign& c, core::GyroSystem& g, long at,
                               double radians = 1.5707963267948966) {
  c.add({"NCO phase jump", FaultLayer::Dsp, at, -1, true, kDtcPllUnlock},
        [&g, radians] { g.drive().pll().nco().advance_phase(radians); });
}

inline void add_register_bit_flip(FaultCampaign& c, core::GyroSystem& g, long at,
                                  std::uint16_t addr = core::reg::kSenseGain,
                                  std::uint16_t mask = 0x80) {
  c.add({"config register bit flip", FaultLayer::Dsp, at, -1, true, kDtcCfgCorrupt},
        [&g, addr, mask] { g.regs().corrupt(addr, mask); });
}

// ---- MCU layer -------------------------------------------------------------

inline void add_firmware_hang(FaultCampaign& c, core::GyroSystem& g, long at) {
  c.add({"firmware hang (watchdog)", FaultLayer::Mcu, at, -1, true, kDtcWatchdogBite},
        [&g] { g.platform().cpu().jam(); });
}

inline void add_eeprom_cal_corruption(FaultCampaign& c, core::GyroSystem& g, long at) {
  c.add({"EEPROM calibration corruption", FaultLayer::Mcu, at, -1, true, kDtcCalCrc},
        [&g] {
          if (auto* ee = g.platform().eeprom())
            ee->corrupt(static_cast<std::uint16_t>(kCalEepromAddr + 10), 0x40);
        });
}

}  // namespace ascp::safety::faults
