#include "safety/supervisor.hpp"

#include <algorithm>
#include <cmath>

namespace ascp::safety {

namespace {
int bit_index(std::uint16_t bit) {
  int i = 0;
  while (bit > 1) {
    bit = static_cast<std::uint16_t>(bit >> 1);
    ++i;
  }
  return i;
}
}  // namespace

void SafetySupervisor::set_obs(const obs::ObsSink& sink) {
  obs_ = sink;
  if (obs_.events) {
    obs_.events->declare_emitter(obs::EventCategory::Supervisor, "SafetySupervisor");
    obs_.events->declare_emitter(obs::EventCategory::Dtc, "SafetySupervisor");
    obs_.events->declare_emitter(obs::EventCategory::Watchdog, "SafetySupervisor");
  }
}

void SafetySupervisor::set_state(SafetyState next) {
  if (next == state_) return;
  const SafetyState prev = state_;
  state_ = next;
  if (obs_.events) {
    // A step toward SAFE_STATE is bad news; a step back down is recovery.
    const bool worse = static_cast<int>(next) > static_cast<int>(prev);
    obs_.events->emit(sim_time(), worse ? obs::EventSeverity::Warn : obs::EventSeverity::Info,
                      obs::EventCategory::Supervisor, "state_transition",
                      std::string(state_name(prev)) + "->" + state_name(next),
                      {{"from", static_cast<double>(prev)}, {"to", static_cast<double>(next)}});
  }
  if (obs_.metrics)
    obs_.metrics->add(obs_.metrics->counter("supervisor.state_transitions"));
}

void SafetySupervisor::attach(platform::RegisterFile* regs, std::uint16_t base) {
  regs_ = regs;
  diag_base_ = base;
  if (!diag_defined_) {
    using platform::RegKind;
    regs_->define("diag_dtc", static_cast<std::uint16_t>(base + diag::kDtcReg),
                  RegKind::Status);
    regs_->define("diag_state", static_cast<std::uint16_t>(base + diag::kState),
                  RegKind::Status);
    regs_->define("diag_flags", static_cast<std::uint16_t>(base + diag::kFlags),
                  RegKind::Status);
    regs_->define("diag_events", static_cast<std::uint16_t>(base + diag::kEvents),
                  RegKind::Status);
    regs_->define("diag_clear", static_cast<std::uint16_t>(base + diag::kClear),
                  RegKind::Config, 0, [this](std::uint16_t v) {
                    if (v == diag::kClearMagic) clear_dtcs();
                  });
    // Field layouts for the static register-map checker.
    regs_->declare_fields(static_cast<std::uint16_t>(base + diag::kDtcReg),
                          {{"dtc_mask", 0, 16, /*writable=*/false, false}});
    regs_->declare_fields(static_cast<std::uint16_t>(base + diag::kState),
                          {{"state", 0, 2, /*writable=*/false, false}});
    regs_->declare_fields(static_cast<std::uint16_t>(base + diag::kFlags),
                          {{"output_nulled", 0, 1, /*writable=*/false, false}});
    regs_->declare_fields(static_cast<std::uint16_t>(base + diag::kClear),
                          {{"clear_magic", 0, 16, /*writable=*/true, false}});
    diag_defined_ = true;
  }
  post_diag();
}

void SafetySupervisor::on_fast(const FastSample& s) {
  ++fast_index_;

  settle_run_ = s.loop_settled ? settle_run_ + 1 : 0;

  if (!armed_) {
    // Monitors are blind until the drive loop has stayed settled for a
    // sustained spell: start-up transients (no lock, zero amplitude, railed
    // AGC, the settle flag blipping as the amplitude first sweeps through
    // its tolerance band) are all nominal.
    if (settle_run_ >= cfg_.arm_settle_samples) {
      capture_baselines(s);
      armed_ = true;
      last_primary_ = s.primary_adc_v;
      last_sense_ = s.sense_adc_v;
    }
    return;
  }

  // Re-baseline the loop gain whenever the loop re-settles for a sustained
  // spell (post-recovery the AGC may legitimately land on a slightly
  // different operating point). Fires exactly once per settle crossing.
  if (settle_run_ == cfg_.arm_settle_samples) agc_baseline_ = s.agc_gain;

  // PLL lock loss (long debounce: reacquisition blips must not latch).
  if (!s.pll_locked) {
    if (unlock_run_ < cfg_.unlock_trip_samples) ++unlock_run_;
    if (unlock_run_ >= cfg_.unlock_trip_samples) latch(kDtcPllUnlock);
  } else {
    unlock_run_ = 0;
  }

  // AGC actuator pinned at its upper rail.
  if (s.agc_gain >= cfg_.agc_rail_frac * cfg_.agc_gain_max) {
    if (agc_rail_run_ < cfg_.fast_trip_samples) ++agc_rail_run_;
    if (agc_rail_run_ >= cfg_.fast_trip_samples) latch(kDtcAgcRail);
  } else {
    agc_rail_run_ = 0;
  }

  // Force-feedback control pinned at its rail (critical: the rebalancing
  // loop has run out of authority, the output is no longer trustworthy).
  if (std::abs(s.control_v) >= cfg_.ctrl_rail_frac * cfg_.ctrl_limit_v) {
    if (ctrl_rail_run_ < cfg_.fast_trip_samples) ++ctrl_rail_run_;
    if (ctrl_rail_run_ >= cfg_.fast_trip_samples) latch(kDtcCtrlRail);
  } else {
    ctrl_rail_run_ = 0;
  }

  // Drive-pickoff amplitude collapse (critical: no carrier, no rate).
  if (s.amplitude < cfg_.drive_collapse_frac * cfg_.drive_amplitude_target) {
    if (collapse_run_ < cfg_.fast_trip_samples) ++collapse_run_;
    if (collapse_run_ >= cfg_.fast_trip_samples) latch(kDtcDriveCollapse);
  } else {
    collapse_run_ = 0;
  }

  // Loop-gain anomaly: the AGC quietly re-trims around reference drift and
  // PGA gain faults, so the *actuator position* is the observable.
  if (agc_baseline_ > 0.0 &&
      std::abs(s.agc_gain - agc_baseline_) > cfg_.gain_anomaly_frac * agc_baseline_) {
    if (gain_run_ < cfg_.fast_trip_samples) ++gain_run_;
    if (gain_run_ >= cfg_.fast_trip_samples) latch(kDtcGainAnomaly);
  } else {
    gain_run_ = 0;
  }

  // ADC stuck-code detectors. The primary (drive pickoff) channel carries a
  // live carrier, so *any* repeated code is implausible. The sense channel
  // is actively nulled around mid-scale; only a code pinned away from null
  // (at a rail) is distinguishable from healthy operation.
  if (s.primary_adc_v == last_primary_) {
    if (stuck_primary_ < cfg_.adc_stuck_samples) ++stuck_primary_;
    if (stuck_primary_ >= cfg_.adc_stuck_samples) latch(kDtcAdcStuck);
  } else {
    stuck_primary_ = 0;
  }
  last_primary_ = s.primary_adc_v;

  if (s.sense_adc_v == last_sense_ && std::abs(s.sense_adc_v) >= 0.5 * cfg_.adc_vref) {
    if (stuck_sense_ < cfg_.adc_stuck_samples) ++stuck_sense_;
    if (stuck_sense_ >= cfg_.adc_stuck_samples) latch(kDtcAdcStuck);
  } else {
    stuck_sense_ = 0;
  }
  last_sense_ = s.sense_adc_v;
}

SlowDecision SafetySupervisor::on_slow(const SlowSample& s) {
  ++slow_index_;

  if (armed_) {
    rate_active_ = std::abs(s.rate_v - cfg_.null_v) > cfg_.rate_range_v;
    if (rate_active_) latch(kDtcRateRange);

    quad_active_ = std::abs(s.quad_v) > cfg_.quad_range_v;
    if (quad_active_) latch(kDtcQuadRange);

    if (cfg_.scrub_interval_slow > 0 && slow_index_ % cfg_.scrub_interval_slow == 0)
      scrub_config();

    if (audit_ && cfg_.audit_interval_slow > 0 &&
        slow_index_ % cfg_.audit_interval_slow == 0) {
      if (!audit_()) latch(kDtcCalCrc);
    }
  }

  // Degradation state machine. Escalation needs a *critical* condition to
  // stay active; recovery needs every condition quiet. Both are counted in
  // output samples so the timing is rate-independent.
  const bool critical = rate_active_ ||
                        stuck_primary_ >= cfg_.adc_stuck_samples ||
                        stuck_sense_ >= cfg_.adc_stuck_samples ||
                        collapse_run_ >= cfg_.fast_trip_samples ||
                        ctrl_rail_run_ >= cfg_.fast_trip_samples;
  critical_slow_ = critical ? std::min(critical_slow_ + 1, cfg_.escalate_slow) : 0;
  quiet_slow_ = any_condition_active() ? 0 : std::min(quiet_slow_ + 1, cfg_.recover_slow);

  switch (state_) {
    case SafetyState::Nominal:
      // latch() moves Nominal → Degraded; nothing to do here.
      break;
    case SafetyState::Degraded:
      if (critical_slow_ >= cfg_.escalate_slow) {
        set_state(SafetyState::SafeState);
      } else if (quiet_slow_ >= cfg_.recover_slow) {
        set_state(SafetyState::Nominal);
        nominal_return_fast_ = fast_index_;
        quiet_slow_ = 0;
      }
      break;
    case SafetyState::SafeState:
      if (quiet_slow_ >= cfg_.recover_slow) {
        set_state(SafetyState::Degraded);
        quiet_slow_ = 0;
      }
      break;
  }

  SlowDecision d;
  d.state = state_;
  if (state_ == SafetyState::SafeState) {
    d.output_v = cfg_.null_v;
    d.output_forced = true;
  } else {
    d.output_v = s.rate_v;
    d.output_forced = false;
  }
  post_diag();
  return d;
}

double SafetySupervisor::comp_temp(double measured_c) {
  const bool implausible =
      measured_c < cfg_.temp_min_c || measured_c > cfg_.temp_max_c;
  if (implausible) {
    temp_active_ = true;
    latch(kDtcTempRange);
    temp_frozen_ = true;
    return last_good_temp_;
  }
  temp_active_ = false;

  // Reference drift / PGA gain faults skew the ADC transfer function; the
  // measured temperature rides the same references, so compensation must
  // not re-trim the output from it while GAIN_ANOMALY is active.
  if (gain_run_ >= cfg_.fast_trip_samples) {
    temp_frozen_ = true;
    return last_good_temp_;
  }

  temp_frozen_ = false;
  last_good_temp_ = measured_c;
  return measured_c;
}

void SafetySupervisor::notify_watchdog_bite() {
  if (obs_.events)
    obs_.events->emit(sim_time(), obs::EventSeverity::Error, obs::EventCategory::Watchdog,
                      "watchdog_bite");
  if (obs_.metrics) obs_.metrics->add(obs_.metrics->counter("supervisor.watchdog_bites"));
  latch(kDtcWatchdogBite);
}

void SafetySupervisor::notify_selftest(bool passed) {
  if (!passed) latch(kDtcSelfTest);
}

void SafetySupervisor::notify_cal_replay(bool ok) {
  if (!ok) {
    // A corrupt image on the recovery path gets its own code (CAL_REPLAY) on
    // top of the CRC one: the service tool must see that the chain is now
    // running on substituted safe-default coefficients, not merely that an
    // audit observed a bad CRC at some point.
    latch(kDtcCalCrc);
    latch(kDtcCalReplay);
  }
}

void SafetySupervisor::rescan_config_shadows() {
  shadows_.clear();
  if (!regs_) return;
  for (const auto& r : regs_->dump()) {
    if (r.kind != platform::RegKind::Config) continue;
    // The DIAG block's own clear register is service-tool writable; shadowing
    // it would turn every legitimate clear into a CFG_CORRUPT false positive.
    if (diag_defined_ && r.addr >= diag_base_ && r.addr < diag_base_ + 5) continue;
    shadows_.push_back({r.addr, r.value});
  }
}

long SafetySupervisor::first_latch_fast(std::uint16_t dtc_bit) const {
  return first_latch_[static_cast<std::size_t>(bit_index(dtc_bit))];
}

void SafetySupervisor::clear_dtcs() {
  if (obs_.events && dtcs_)
    obs_.events->emit(sim_time(), obs::EventSeverity::Info, obs::EventCategory::Dtc,
                      "dtc_clear", describe_dtcs(dtcs_));
  dtcs_ = 0;
  post_diag();
}

void SafetySupervisor::reset() {
  state_ = SafetyState::Nominal;
  dtcs_ = 0;
  events_ = 0;
  armed_ = false;
  settle_run_ = 0;
  fast_index_ = 0;
  slow_index_ = 0;
  first_latch_.fill(-1);
  nominal_return_fast_ = -1;
  agc_baseline_ = 0.0;
  last_primary_ = 0.0;
  last_sense_ = 0.0;
  stuck_primary_ = 0;
  stuck_sense_ = 0;
  unlock_run_ = 0;
  agc_rail_run_ = 0;
  ctrl_rail_run_ = 0;
  collapse_run_ = 0;
  gain_run_ = 0;
  rate_active_ = false;
  quad_active_ = false;
  temp_active_ = false;
  temp_frozen_ = false;
  last_good_temp_ = 25.0;
  critical_slow_ = 0;
  quiet_slow_ = 0;
  shadows_.clear();
  if (regs_) post_diag();
}

void SafetySupervisor::serialize_state(StateArchive& ar) {
  ar.enum_value(state_);
  ar.value(dtcs_);
  ar.value(events_);
  ar.value(armed_);
  std::int64_t sr = settle_run_, fi = fast_index_, si = slow_index_,
               nr = nominal_return_fast_;
  ar.value(sr);
  ar.value(fi);
  ar.value(si);
  ar.value(nr);
  settle_run_ = static_cast<long>(sr);
  fast_index_ = static_cast<long>(fi);
  slow_index_ = static_cast<long>(si);
  nominal_return_fast_ = static_cast<long>(nr);
  for (auto& f : first_latch_) {
    std::int64_t v = f;
    ar.value(v);
    f = static_cast<long>(v);
  }
  ar.value(agc_baseline_);
  ar.value(last_primary_);
  ar.value(last_sense_);
  auto int_field = [&ar](int& v) {
    std::int32_t x = v;
    ar.value(x);
    v = x;
  };
  int_field(stuck_primary_);
  int_field(stuck_sense_);
  int_field(unlock_run_);
  int_field(agc_rail_run_);
  int_field(ctrl_rail_run_);
  int_field(collapse_run_);
  int_field(gain_run_);
  ar.value(rate_active_);
  ar.value(quad_active_);
  ar.value(temp_active_);
  ar.value(temp_frozen_);
  ar.value(last_good_temp_);
  int_field(critical_slow_);
  int_field(quiet_slow_);
  std::uint32_t n_shadows = static_cast<std::uint32_t>(shadows_.size());
  ar.value(n_shadows);
  if (!ar.saving()) shadows_.resize(n_shadows);
  for (auto& sh : shadows_) {
    ar.value(sh.addr);
    ar.value(sh.value);
  }
  // DIAG registers are restored raw by the register file, but re-posting
  // keeps them coherent even if that ordering ever changes.
  if (!ar.saving()) post_diag();
}

void SafetySupervisor::latch(std::uint16_t dtc_bit) {
  if (dtcs_ & dtc_bit) return;
  dtcs_ |= dtc_bit;
  ++events_;
  auto& first = first_latch_[static_cast<std::size_t>(bit_index(dtc_bit))];
  if (first < 0) first = fast_index_;
  if (obs_.events)
    obs_.events->emit(sim_time(), obs::EventSeverity::Error, obs::EventCategory::Dtc,
                      "dtc_latch", dtc_name(dtc_bit),
                      {{"mask", static_cast<double>(dtcs_)}});
  if (obs_.metrics) obs_.metrics->add(obs_.metrics->counter("supervisor.dtc_latches"));
  if (state_ == SafetyState::Nominal) set_state(SafetyState::Degraded);
  post_diag();
}

void SafetySupervisor::capture_baselines(const FastSample& s) {
  agc_baseline_ = s.agc_gain;
  rescan_config_shadows();
}

void SafetySupervisor::scrub_config() {
  if (!regs_) return;
  for (const auto& sh : shadows_) {
    const std::uint16_t cur = regs_->read(sh.addr);
    if (cur == sh.value) continue;
    latch(kDtcCfgCorrupt);
    // Repair through the normal write path so config hooks re-sync the
    // datapath with the restored value.
    regs_->write(sh.addr, sh.value);
  }
}

void SafetySupervisor::post_diag() {
  if (!regs_ || !diag_defined_) return;
  regs_->post_status(static_cast<std::uint16_t>(diag_base_ + diag::kDtcReg), dtcs_);
  regs_->post_status(static_cast<std::uint16_t>(diag_base_ + diag::kState),
                     static_cast<std::uint16_t>(state_));
  regs_->post_status(static_cast<std::uint16_t>(diag_base_ + diag::kFlags),
                     state_ == SafetyState::SafeState ? 1u : 0u);
  regs_->post_status(static_cast<std::uint16_t>(diag_base_ + diag::kEvents), events_);
}

bool SafetySupervisor::any_condition_active() const {
  return rate_active_ || quad_active_ || temp_active_ ||
         unlock_run_ >= cfg_.unlock_trip_samples ||
         agc_rail_run_ >= cfg_.fast_trip_samples ||
         ctrl_rail_run_ >= cfg_.fast_trip_samples ||
         collapse_run_ >= cfg_.fast_trip_samples ||
         gain_run_ >= cfg_.fast_trip_samples ||
         stuck_primary_ >= cfg_.adc_stuck_samples ||
         stuck_sense_ >= cfg_.adc_stuck_samples;
}

}  // namespace ascp::safety
