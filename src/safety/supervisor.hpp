// supervisor.hpp — runtime safety supervisor: plausibility monitors, DTC
// latching and the NOMINAL → DEGRADED → SAFE_STATE degradation machine.
//
// The paper's firmware "constantly checks the system status by accessing the
// several readable registers spread along the processing chain (for example
// makes sure that the PLL is locked)" (§4.2). The supervisor is the
// hardwired half of that story: cheap per-sample plausibility monitors that
// run beside the conditioning chain, latch diagnostic trouble codes into a
// bridge-mapped DIAG register block (readable by the 8051 and over JTAG),
// and drive the degradation state machine that decides what the output pin
// is allowed to show.
//
// Monitors (all O(1) per sample):
//   * PLL lock loss after first lock          → PLL_UNLOCK
//   * AGC actuator pinned at its upper rail   → AGC_RAIL
//   * ADC code stuck / stuck at rail          → ADC_STUCK      (critical)
//   * rate output outside the plausible span  → RATE_RANGE     (critical)
//   * drive-pickoff amplitude collapse        → DRIVE_COLLAPSE (critical)
//   * control (force-feedback) rail pinning   → CTRL_RAIL      (critical)
//   * loop gain far from the locked baseline  → GAIN_ANOMALY (ref drift/PGA)
//   * measured temperature implausible        → TEMP_RANGE
//   * quadrature monitor out of range         → QUAD_RANGE
//   * config-register scrub vs. shadows       → CFG_CORRUPT (SEU, repaired)
//   * periodic EEPROM calibration-CRC audit   → CAL_CRC
// plus event inputs from the platform: watchdog bite, self-test verdict,
// calibration-replay verdict.
//
// Degradation policy: any latch ⇒ at least DEGRADED. A *critical* condition
// that stays active for `escalate_slow` output samples ⇒ SAFE_STATE, where
// the output is forced to the null voltage with the fault flag raised. When
// every condition has been quiet for `recover_slow` output samples the state
// steps back down one level; DTCs stay latched until the service-tool clear.
// On GAIN_ANOMALY or TEMP_RANGE the temperature feeding the compensation
// polynomials is frozen at the last plausible value (drifting references
// must not be allowed to re-trim the output through the compensation path).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/observability.hpp"
#include "platform/registers.hpp"
#include "safety/dtc.hpp"

namespace ascp::safety {

/// DIAG register offsets from the block base address.
namespace diag {
constexpr std::uint16_t kDtcReg = 0;    ///< status: latched DTC bitmask
constexpr std::uint16_t kState = 1;     ///< status: SafetyState (0/1/2)
constexpr std::uint16_t kFlags = 2;     ///< status: bit0 output forced to null
constexpr std::uint16_t kEvents = 3;    ///< status: DTC latch event count
constexpr std::uint16_t kClear = 4;     ///< config: write kClearMagic to clear DTCs
constexpr std::uint16_t kClearMagic = 0xC1EA;
}  // namespace diag

struct SupervisorConfig {
  double fs = 240e3;            ///< fast (DSP) sample rate [Hz]
  double null_v = 2.5;          ///< output null voltage (forced in SAFE_STATE)
  double rate_range_v = 2.2;    ///< |rate − null| beyond this is implausible
  double quad_range_v = 0.5;    ///< |quad monitor| beyond this is implausible
  double temp_min_c = -55.0;    ///< plausible die-temperature window
  double temp_max_c = 130.0;
  double adc_vref = 2.5;        ///< ADC full scale (rail-stuck detection)
  double agc_gain_max = 2.4;    ///< AGC actuator rail
  double agc_rail_frac = 0.98;  ///< gain above frac·max counts as railed
  double ctrl_limit_v = 2.4;    ///< force-feedback control rail
  double ctrl_rail_frac = 0.98;
  double drive_amplitude_target = 1.0;  ///< AGC set point (collapse reference)
  double drive_collapse_frac = 0.25;    ///< amplitude below frac·target = collapse
  double gain_anomaly_frac = 0.35;      ///< |gain − baseline| beyond frac·baseline
  int adc_stuck_samples = 64;    ///< identical codes before ADC_STUCK
  int fast_trip_samples = 48;    ///< consecutive bad fast samples to latch rails
  /// Consecutive settled samples before the monitors arm (and before the
  /// gain baseline is re-captured after a settle loss). The raw settle flag
  /// blips while the amplitude first sweeps through its tolerance band with
  /// the AGC still railed — baselining there would poison the gain-anomaly
  /// monitor, so arming waits for a sustained settle (50 ms at 240 kHz).
  int arm_settle_samples = 12000;
  int unlock_trip_samples = 1200;  ///< sustained unlock before PLL_UNLOCK
  int escalate_slow = 8;         ///< critical-active slow samples → SAFE_STATE
  int recover_slow = 16;         ///< quiet slow samples → step back one level
  int scrub_interval_slow = 32;  ///< config-register scrub cadence
  int audit_interval_slow = 256; ///< calibration-CRC audit cadence (0 = off)
};

/// Per-DSP-sample observables (everything is already computed by the chain;
/// the supervisor only reads).
struct FastSample {
  double primary_adc_v = 0.0;  ///< primary (drive pickoff) ADC sample
  double sense_adc_v = 0.0;    ///< sense ADC sample
  bool pll_locked = false;
  bool loop_settled = false;   ///< PLL locked AND AGC settled
  double agc_gain = 0.0;
  double amplitude = 0.0;      ///< measured drive-pickoff carrier amplitude
  double control_v = 0.0;      ///< force-feedback control voltage
};

/// Per-output-sample observables.
struct SlowSample {
  double rate_v = 0.0;   ///< compensated rate output [V]
  double quad_v = 0.0;   ///< raw quadrature monitor [V]
  double temp_c = 25.0;  ///< measured (sensor) die temperature
};

/// What the chain must do with the current output sample.
struct SlowDecision {
  double output_v = 0.0;    ///< value to drive onto the output
  bool output_forced = false;  ///< true in SAFE_STATE (output_v == null)
  SafetyState state = SafetyState::Nominal;
};

class SafetySupervisor {
 public:
  explicit SafetySupervisor(const SupervisorConfig& cfg) : cfg_(cfg) { reset(); }

  /// Define the DIAG register block at `base` inside `regs` and keep the
  /// handle for status posting and config scrubbing.
  void attach(platform::RegisterFile* regs, std::uint16_t base);

  /// Optional calibration audit: called every audit_interval_slow output
  /// samples; returning false latches CAL_CRC.
  void set_calibration_audit(std::function<bool()> audit) { audit_ = std::move(audit); }

  /// Attach an observability sink (null members disable channels). The
  /// supervisor emits exactly one Supervisor event per state transition, one
  /// Dtc event per latch/clear, and one Watchdog event per bite.
  void set_obs(const obs::ObsSink& sink);

  // ---- chain hooks ---------------------------------------------------------
  void on_fast(const FastSample& s);
  SlowDecision on_slow(const SlowSample& s);

  /// Vet the temperature feeding the compensation block: returns the frozen
  /// last-plausible value while TEMP_RANGE or GAIN_ANOMALY is active.
  double comp_temp(double measured_c);

  // ---- platform event inputs ----------------------------------------------
  void notify_watchdog_bite();
  void notify_selftest(bool passed);
  void notify_cal_replay(bool ok);  ///< post-reset EEPROM replay verdict

  /// Re-capture the config-register shadows (call after intentional
  /// reconfiguration, otherwise the scrubber treats the change as an SEU).
  void rescan_config_shadows();

  // ---- observability -------------------------------------------------------
  SafetyState state() const { return state_; }
  std::uint16_t dtcs() const { return dtcs_; }
  bool armed() const { return armed_; }
  long fast_index() const { return fast_index_; }
  long slow_index() const { return slow_index_; }
  /// Fast-sample index at which `dtc_bit` first latched (−1 = never).
  long first_latch_fast(std::uint16_t dtc_bit) const;
  /// Fast-sample index of the most recent return to NOMINAL (−1 = never left
  /// or never returned).
  long nominal_return_fast() const { return nominal_return_fast_; }

  /// Service-tool clear: drops latched DTCs (state machine is governed by
  /// live conditions, not by this).
  void clear_dtcs();

  /// Full re-initialization (power-on): clears DTCs, disarms, forgets
  /// baselines and shadows.
  void reset();

  /// Checkpoint path: monitor state, latches and shadows. Attachments
  /// (registers, obs, audit callback) are wiring and stay as constructed.
  /// After a load the DIAG registers are re-posted from the restored state.
  void serialize_state(StateArchive& ar);

 private:
  void latch(std::uint16_t dtc_bit);
  void capture_baselines(const FastSample& s);
  void scrub_config();
  void post_diag();
  bool any_condition_active() const;
  /// Every state_ change goes through here — the single place that emits the
  /// Supervisor transition event (so there is exactly one event per change).
  void set_state(SafetyState next);
  double sim_time() const { return static_cast<double>(fast_index_) / cfg_.fs; }

  SupervisorConfig cfg_;
  obs::ObsSink obs_{};
  platform::RegisterFile* regs_ = nullptr;
  std::uint16_t diag_base_ = 0;
  bool diag_defined_ = false;
  std::function<bool()> audit_;

  SafetyState state_ = SafetyState::Nominal;
  std::uint16_t dtcs_ = 0;
  std::uint16_t events_ = 0;
  bool armed_ = false;
  long settle_run_ = 0;  ///< consecutive loop_settled fast samples

  long fast_index_ = 0;
  long slow_index_ = 0;
  std::array<long, 16> first_latch_{};
  long nominal_return_fast_ = -1;

  // Monitor state.
  double agc_baseline_ = 0.0;
  double last_primary_ = 0.0, last_sense_ = 0.0;
  int stuck_primary_ = 0, stuck_sense_ = 0;
  int unlock_run_ = 0, agc_rail_run_ = 0, ctrl_rail_run_ = 0;
  int collapse_run_ = 0, gain_run_ = 0;
  bool rate_active_ = false, quad_active_ = false, temp_active_ = false;
  bool temp_frozen_ = false;
  double last_good_temp_ = 25.0;
  int critical_slow_ = 0, quiet_slow_ = 0;

  struct Shadow {
    std::uint16_t addr;
    std::uint16_t value;
  };
  std::vector<Shadow> shadows_;
};

}  // namespace ascp::safety
