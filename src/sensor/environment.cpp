#include "sensor/environment.hpp"

namespace ascp::sensor {

Profile Profile::constant(double value) {
  Profile p;
  p.kind_ = Kind::Constant;
  p.a_ = value;
  return p;
}

Profile Profile::step(double value, double t0) {
  Profile p;
  p.kind_ = Kind::Step;
  p.a_ = value;
  p.t0_ = t0;
  return p;
}

Profile Profile::sine(double amplitude, double freq_hz, double t0) {
  Profile p;
  p.kind_ = Kind::Sine;
  p.a_ = amplitude;
  p.b_ = freq_hz;
  p.t0_ = t0;
  return p;
}

Profile Profile::ramp(double v0, double v1, double t0, double t1) {
  Profile p;
  p.kind_ = Kind::Ramp;
  p.a_ = v0;
  p.b_ = v1;
  p.t0_ = t0;
  p.t1_ = t1;
  return p;
}

Profile Profile::staircase(std::vector<double> levels, double dwell) {
  Profile p;
  p.kind_ = Kind::Staircase;
  p.b_ = dwell;
  p.levels_ = std::move(levels);
  return p;
}

Profile Profile::chirp(double amplitude, double f0, double f1, double t0, double t1) {
  Profile p;
  p.kind_ = Kind::Chirp;
  p.a_ = amplitude;
  p.b_ = f0;
  p.c_ = f1;
  p.t0_ = t0;
  p.t1_ = t1;
  return p;
}

}  // namespace ascp::sensor
