#include "sensor/environment.hpp"

#include <cmath>

#include "common/math.hpp"

namespace ascp::sensor {

Profile Profile::constant(double value) {
  return Profile([value](double) { return value; });
}

Profile Profile::step(double value, double t0) {
  return Profile([value, t0](double t) { return t >= t0 ? value : 0.0; });
}

Profile Profile::sine(double amplitude, double freq_hz, double t0) {
  return Profile([amplitude, freq_hz, t0](double t) {
    return t >= t0 ? amplitude * std::sin(kTwoPi * freq_hz * (t - t0)) : 0.0;
  });
}

Profile Profile::ramp(double v0, double v1, double t0, double t1) {
  return Profile([v0, v1, t0, t1](double t) {
    if (t <= t0) return v0;
    if (t >= t1) return v1;
    return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
  });
}

Profile Profile::staircase(std::vector<double> levels, double dwell) {
  return Profile([levels = std::move(levels), dwell](double t) {
    if (levels.empty() || t < 0.0) return 0.0;
    const auto idx = static_cast<std::size_t>(t / dwell);
    return levels[idx < levels.size() ? idx : levels.size() - 1];
  });
}

Profile Profile::chirp(double amplitude, double f0, double f1, double t0, double t1) {
  return Profile([amplitude, f0, f1, t0, t1](double t) {
    if (t < t0) return 0.0;
    const double tt = std::min(t, t1) - t0;
    const double k = (f1 - f0) / (t1 - t0);
    const double phase = kTwoPi * (f0 * tt + 0.5 * k * tt * tt);
    return amplitude * std::sin(phase);
  });
}

}  // namespace ascp::sensor
