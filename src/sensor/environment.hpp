// environment.hpp — stimulus profiles for experiments.
//
// The metrology benches exercise the conditioned sensor with the stimuli an
// evaluation lab would use: rate steps (turn-on / step response), rate sines
// (bandwidth), rate staircases (sensitivity/linearity), temperature ramps
// and soaks (over-temperature rows of Table 1).
//
// Profile::at() runs twice per 1.92 MHz analog tick, so the six canned
// shapes evaluate through a tagged small-variant switch instead of a
// std::function call; the Fn constructor remains as the escape hatch for
// arbitrary closures (the conformance fuzzer's segment evaluator uses it).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/math.hpp"

namespace ascp::sensor {

/// Time-dependent scalar profile (rate in °/s or temperature in °C).
class Profile {
 public:
  using Fn = std::function<double(double /*t_seconds*/)>;

  Profile() = default;  ///< constant 0
  explicit Profile(Fn fn) : kind_(Kind::Fn), fn_(std::move(fn)) {}

  double at(double t) const {
    switch (kind_) {
      case Kind::Constant:
        return a_;
      case Kind::Step:
        return t >= t0_ ? a_ : 0.0;
      case Kind::Sine:
        return t >= t0_ ? a_ * std::sin(kTwoPi * b_ * (t - t0_)) : 0.0;
      case Kind::Ramp:
        if (t <= t0_) return a_;
        if (t >= t1_) return b_;
        return a_ + (b_ - a_) * (t - t0_) / (t1_ - t0_);
      case Kind::Staircase: {
        if (levels_.empty() || t < 0.0) return 0.0;
        // Degenerate dwell: every edge is already behind us — hold the
        // final level instead of dividing by zero.
        if (!(b_ > 0.0)) return levels_.back();
        const double q = t / b_;
        // Clamp in the double domain *before* the size_t cast: t/dwell can
        // exceed SIZE_MAX (UB on cast) long before it exceeds levels.size().
        // At an exact dwell edge t == i·dwell the i-th level starts (the
        // boundary sample belongs to the new step); the last edge
        // t == n·dwell and beyond hold the final level.
        if (q >= static_cast<double>(levels_.size())) return levels_.back();
        return levels_[static_cast<std::size_t>(q)];
      }
      case Kind::Chirp: {
        if (t < t0_) return 0.0;
        // Degenerate sweep window (t1 <= t0): a constant-frequency sine at
        // f0 from t0 on, instead of a 0/0 sweep slope.
        if (!(t1_ > t0_)) return a_ * std::sin(kTwoPi * b_ * (t - t0_));
        // At t == t0 the phase is exactly 0; at t == t1 the sweep ends on
        // phase 2π(f0 + f1)(t1−t0)/2 and freezes (the value holds past t1).
        const double tt = std::min(t, t1_) - t0_;
        const double k = (c_ - b_) / (t1_ - t0_);
        const double phase = kTwoPi * (b_ * tt + 0.5 * k * tt * tt);
        return a_ * std::sin(phase);
      }
      case Kind::Fn:
        return fn_(t);
    }
    return 0.0;
  }

  static Profile constant(double value);
  /// 0 before t0, `value` after.
  static Profile step(double value, double t0);
  /// amplitude·sin(2π f (t − t0)) after t0, 0 before.
  static Profile sine(double amplitude, double freq_hz, double t0 = 0.0);
  /// Linear sweep from v0 at t0 to v1 at t1 (clamped outside).
  static Profile ramp(double v0, double v1, double t0, double t1);
  /// Piecewise-constant staircase: `levels[i]` held for `dwell` seconds each;
  /// the final level holds past the last dwell edge.
  static Profile staircase(std::vector<double> levels, double dwell);
  /// Linear-frequency chirp: amplitude·sin(phase(t)), f0→f1 over [t0, t1];
  /// the sweep-end value holds past t1.
  static Profile chirp(double amplitude, double f0, double f1, double t0, double t1);

 private:
  enum class Kind : std::uint8_t { Constant, Step, Sine, Ramp, Staircase, Chirp, Fn };

  // Parameter slots, by kind:
  //   Constant:  a = value
  //   Step:      a = value, t0
  //   Sine:      a = amplitude, b = freq_hz, t0
  //   Ramp:      a = v0, b = v1, t0, t1
  //   Staircase: b = dwell, levels
  //   Chirp:     a = amplitude, b = f0, c = f1, t0, t1
  Kind kind_ = Kind::Constant;
  double a_ = 0.0, b_ = 0.0, c_ = 0.0, t0_ = 0.0, t1_ = 0.0;
  std::vector<double> levels_;
  Fn fn_;
};

}  // namespace ascp::sensor
