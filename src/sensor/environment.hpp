// environment.hpp — stimulus profiles for experiments.
//
// The metrology benches exercise the conditioned sensor with the stimuli an
// evaluation lab would use: rate steps (turn-on / step response), rate sines
// (bandwidth), rate staircases (sensitivity/linearity), temperature ramps
// and soaks (over-temperature rows of Table 1).
#pragma once

#include <functional>
#include <utility>
#include <vector>

namespace ascp::sensor {

/// Time-dependent scalar profile (rate in °/s or temperature in °C).
class Profile {
 public:
  using Fn = std::function<double(double /*t_seconds*/)>;

  Profile() : fn_([](double) { return 0.0; }) {}
  explicit Profile(Fn fn) : fn_(std::move(fn)) {}

  double at(double t) const { return fn_(t); }

  static Profile constant(double value);
  /// 0 before t0, `value` after.
  static Profile step(double value, double t0);
  /// amplitude·sin(2π f (t − t0)) after t0, 0 before.
  static Profile sine(double amplitude, double freq_hz, double t0 = 0.0);
  /// Linear sweep from v0 at t0 to v1 at t1 (clamped outside).
  static Profile ramp(double v0, double v1, double t0, double t1);
  /// Piecewise-constant staircase: `levels[i]` held for `dwell` seconds each.
  static Profile staircase(std::vector<double> levels, double dwell);
  /// Linear-frequency chirp: amplitude·sin(phase(t)), f0→f1 over [t0, t1].
  static Profile chirp(double amplitude, double f0, double f1, double t0, double t1);

 private:
  Fn fn_;
};

}  // namespace ascp::sensor
