#include "sensor/generic.hpp"

#include <algorithm>
#include <cmath>

namespace ascp::sensor {

double CapacitivePressureSensor::capacitance(double pressure_kpa, double temp_c) {
  const double p = std::clamp(pressure_kpa, 0.0, cfg_.p_collapse_kpa * 0.95);
  const double deflection = cfg_.sensitivity * p / (1.0 - p / cfg_.p_collapse_kpa);
  const double c = cfg_.c0_farads * (1.0 + deflection) *
                   (1.0 + cfg_.tempco * (temp_c - 25.0));
  return c + rng_.gaussian(cfg_.noise_farads);
}

ResistiveBridgeSensor::ResistiveBridgeSensor(const Config& cfg, ascp::Rng rng)
    : cfg_(cfg), offset_draw_(rng.gaussian(cfg.offset_fraction)), rng_(rng) {}

double ResistiveBridgeSensor::output(double load, double v_excitation, double temp_c) {
  const double dt = temp_c - 25.0;
  const double strain = std::clamp(load, -1.0, 1.0) * cfg_.full_scale_strain;
  const double dr_r = cfg_.gauge_factor * strain * (1.0 + cfg_.gain_tempco * dt);
  const double offset = (offset_draw_ + cfg_.offset_tempco * dt) * v_excitation;
  // Full bridge: Vout = Vexc·ΔR/R (small-signal; second order term kept for
  // realism at full scale).
  const double v = v_excitation * dr_r / (1.0 + dr_r / 2.0) + offset;
  return v + rng_.gaussian(cfg_.noise_density * v_excitation * 100.0 * 1e-3);
}

double LvdtSensor::output(double v_exc, double v_exc_q, double position_mm) {
  const double x = std::clamp(position_mm / cfg_.stroke_mm, -1.0, 1.0);
  // Slight cubic droop at stroke ends (core leaving the linear region).
  const double coupling = cfg_.transfer_gain * x * (1.0 - 0.05 * x * x);
  const double in_phase = coupling * std::cos(cfg_.phase_rad) + cfg_.null_fraction;
  const double quad = coupling * std::sin(cfg_.phase_rad) + cfg_.null_fraction;
  return in_phase * v_exc + quad * v_exc_q;
}

}  // namespace ascp::sensor
