// generic.hpp — the other sensor classes the generic platform targets.
//
// Paper §1/§3: the platform must "interface several kinds of sensors"
// (capacitive, resistive, inductive, …). These behavioural models back the
// generic-sensor-interface example and the platform-vs-universal ablation:
// each produces an electrode-level signal that one of the AFE channel types
// can acquire.
#pragma once

#include "common/rng.hpp"

namespace ascp::sensor {

/// Capacitive absolute-pressure sensor: diaphragm deflection changes the
/// sense capacitance. C(P) = C0·(1 + s·P/(1 − P/P_collapse)) — soft upward
/// nonlinearity typical of touch-mode-free designs.
class CapacitivePressureSensor {
 public:
  struct Config {
    double c0_farads = 10e-12;     ///< rest capacitance
    double sensitivity = 2e-3;     ///< fractional ΔC per kPa at low pressure
    double p_collapse_kpa = 800.0; ///< nonlinearity knee
    double tempco = 150e-6;        ///< ΔC/C per °C
    double noise_farads = 5e-18;   ///< kTC-style capacitance noise, 1σ per sample
  };

  CapacitivePressureSensor(const Config& cfg, ascp::Rng rng) : cfg_(cfg), rng_(rng) {}

  /// Capacitance at pressure [kPa] and temperature [°C].
  double capacitance(double pressure_kpa, double temp_c = 25.0);

  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  ascp::Rng rng_;
};

/// Resistive Wheatstone full-bridge (piezoresistive strain / pressure):
/// differential output for excitation Vexc is Vexc·(ΔR/R), with bridge
/// offset mismatch and strong tempco of both gain and offset — the classic
/// conditioning problem for resistive automotive sensors.
class ResistiveBridgeSensor {
 public:
  struct Config {
    double gauge_factor = 2.0;       ///< ΔR/R per unit strain
    double full_scale_strain = 1e-3; ///< strain at full-scale load
    double offset_fraction = 2e-3;   ///< bridge imbalance 1σ draw
    double gain_tempco = -300e-6;    ///< span drift per °C
    double offset_tempco = 5e-6;     ///< offset drift per °C (fraction of Vexc)
    double noise_density = 30e-9;    ///< output noise [V/√Hz·Vexc⁻¹] equivalent
  };

  ResistiveBridgeSensor(const Config& cfg, ascp::Rng rng);

  /// Differential bridge output [V] for `load` in [−1, 1] of full scale.
  double output(double load, double v_excitation, double temp_c = 25.0);

 private:
  Config cfg_;
  double offset_draw_;
  ascp::Rng rng_;
};

/// Inductive LVDT-style position sensor: secondary voltage is the excitation
/// carrier amplitude-modulated by core position — exercising the platform's
/// carrier-based (modulator/demodulator) conditioning path like the gyro.
class LvdtSensor {
 public:
  struct Config {
    double transfer_gain = 0.8;   ///< secondary/primary ratio at full stroke
    double stroke_mm = 5.0;       ///< mechanical full scale
    double phase_rad = 0.05;      ///< residual carrier phase shift
    double null_fraction = 1e-3;  ///< residual null voltage fraction
  };

  LvdtSensor(const Config& cfg, ascp::Rng rng) : cfg_(cfg), rng_(rng) {}

  /// Secondary output for primary excitation `v_exc` (instantaneous carrier
  /// sample) and quadrature sample `v_exc_q`, at core position [mm].
  double output(double v_exc, double v_exc_q, double position_mm);

 private:
  Config cfg_;
  ascp::Rng rng_;
};

}  // namespace ascp::sensor
