#include "sensor/gyro_mems.hpp"

#include <algorithm>
#include <cmath>

#include "common/math.hpp"

namespace ascp::sensor {

GyroMems::GyroMems(const GyroMemsConfig& cfg, ascp::Rng rng)
    : cfg_(cfg), rng_(rng), dt_(1.0 / cfg.sim_fs) {
  // Brownian force noise: density d [(m/s²)/√Hz] sampled at sim_fs has
  // per-step sigma d·√(sim_fs/2).
  noise_sigma_ = cfg_.brownian_accel_density * std::sqrt(cfg_.sim_fs / 2.0);
}

double GyroMems::f0_at(double temp_c) const {
  return cfg_.f0_hz * (1.0 + cfg_.f0_tempco * (temp_c - 25.0));
}

double GyroMems::q_at(double temp_c) const {
  return cfg_.q_drive * (1.0 + cfg_.q_tempco * (temp_c - 25.0));
}

double GyroMems::mechanical_sensitivity(double x_amp, double temp_c) const {
  // Matched modes, response at resonance: y_amp = (2κΩ·ẋ_amp)·Qs/ω0².
  const double w0 = kTwoPi * f0_at(temp_c);
  const double vx_amp = w0 * x_amp;
  const double qs = cfg_.q_sense * (1.0 + cfg_.q_tempco * (temp_c - 25.0));
  const double omega_per_dps = kPi / 180.0;
  return 2.0 * cfg_.angular_gain * omega_per_dps * vx_amp * qs / (w0 * w0);
}

GyroMems::Params GyroMems::resolve(const GyroInputs& in) const {
  Params p{};
  const double dtc = in.temp_c - 25.0;
  const double w0d = kTwoPi * f0_at(in.temp_c);
  const double w0s = kTwoPi * (f0_at(in.temp_c) + cfg_.mode_split_hz * (1.0 + cfg_.f0_tempco * dtc));
  const double qd = cfg_.q_drive * (1.0 + cfg_.q_tempco * dtc);
  const double qs = cfg_.q_sense * (1.0 + cfg_.q_tempco * dtc);
  p.w0d2 = w0d * w0d;
  p.w0s2 = w0s * w0s;
  p.dd = w0d / qd;
  p.ds = w0s / qs;
  p.fpv = cfg_.force_per_volt * (1.0 + cfg_.force_tempco * dtc);
  p.kq = cfg_.quad_stiffness * (1.0 + cfg_.quad_tempco * dtc) + quad_step_;
  p.kappa_omega = cfg_.angular_gain * in.rate_dps * kPi / 180.0;
  return p;
}

GyroMems::State GyroMems::derivative(const State& s, const Params& p, double fd, double fc,
                                     double noise) {
  // Coriolis terms couple the modal velocities antisymmetrically: energy
  // pumped into the sense mode is drawn from the drive mode.
  State d;
  d.x = s.vx;
  d.y = s.vy;
  d.vx = fd - p.dd * s.vx - p.w0d2 * s.x + 2.0 * p.kappa_omega * s.vy;
  d.vy = fc - p.ds * s.vy - p.w0s2 * s.y - 2.0 * p.kappa_omega * s.vx - p.kq * s.x + noise;
  return d;
}

double GyroMems::pickoff_cap(double displacement, double temp_c) const {
  // Parallel-plate pickoff: ΔC = k·x / (1 − x/gap) — soft nonlinearity that
  // the closed-loop configuration suppresses (paper §4.1: closed loop gives
  // "more linear and accurate measures").
  const double k = cfg_.cap_per_meter * (1.0 + cfg_.cap_tempco * (temp_c - 25.0));
  const double ratio = displacement / cfg_.electrode_gap_m;
  const double clamped = std::clamp(ratio, -0.9, 0.9);
  return k * displacement / (1.0 - clamped * 0.5);
}

GyroOutputs GyroMems::step(const GyroInputs& in) {
  const Params p = resolve(in);

  double v_drive = in.v_drive;
  if (drive_fault_ == DriveElectrodeFault::Open) v_drive = 0.0;
  else if (drive_fault_ == DriveElectrodeFault::Stuck) v_drive = stuck_v_;
  const double fd = p.fpv * v_drive;
  const double fc = p.fpv * in.v_control;
  // Fluctuation-dissipation scaling of the Brownian force.
  const double t_scale = std::sqrt((in.temp_c + 273.15) / 298.15 * cfg_.q_drive /
                                   (cfg_.q_drive * (1.0 + cfg_.q_tempco * (in.temp_c - 25.0))));
  const double noise = rng_.gaussian(noise_sigma_ * t_scale);

  // Classic RK4 with inputs held over the step (zero-order hold).
  const State k1 = derivative(s_, p, fd, fc, noise);
  State s2{s_.x + 0.5 * dt_ * k1.x, s_.vx + 0.5 * dt_ * k1.vx, s_.y + 0.5 * dt_ * k1.y,
           s_.vy + 0.5 * dt_ * k1.vy};
  const State k2 = derivative(s2, p, fd, fc, noise);
  State s3{s_.x + 0.5 * dt_ * k2.x, s_.vx + 0.5 * dt_ * k2.vx, s_.y + 0.5 * dt_ * k2.y,
           s_.vy + 0.5 * dt_ * k2.vy};
  const State k3 = derivative(s3, p, fd, fc, noise);
  State s4{s_.x + dt_ * k3.x, s_.vx + dt_ * k3.vx, s_.y + dt_ * k3.y, s_.vy + dt_ * k3.vy};
  const State k4 = derivative(s4, p, fd, fc, noise);

  s_.x += dt_ / 6.0 * (k1.x + 2 * k2.x + 2 * k3.x + k4.x);
  s_.vx += dt_ / 6.0 * (k1.vx + 2 * k2.vx + 2 * k3.vx + k4.vx);
  s_.y += dt_ / 6.0 * (k1.y + 2 * k2.y + 2 * k3.y + k4.y);
  s_.vy += dt_ / 6.0 * (k1.vy + 2 * k2.vy + 2 * k3.vy + k4.vy);

  return GyroOutputs{pickoff_cap(s_.x, in.temp_c), pickoff_cap(s_.y, in.temp_c)};
}

void GyroMems::reset() { s_ = State{}; }

}  // namespace ascp::sensor
