// gyro_mems.hpp — vibrating-ring MEMS gyroscope behavioral model.
//
// Paper §4.1 ([7],[8]): a circular ring with drive, sense and control
// electrodes. The ring's two degenerate flexural modes are modelled as a
// pair of damped second-order oscillators (per unit mass):
//
//   ẍ + (ω0d/Qd)·ẋ + ω0d²·x = f_drive + 2κΩ·ẏ          (primary / drive)
//   ÿ + (ω0s/Qs)·ẏ + ω0s²·y = f_ctrl − 2κΩ·ẋ − kq·x + n (secondary / sense)
//
// κ is the ring's angular gain (~0.37), Ω the yaw rate, kq the quadrature
// stiffness coupling, n the Brownian force noise. Electrostatic drive
// converts electrode volts to force; capacitive pickoff converts modal
// displacement to ΔC with electrode-gap nonlinearity. Resonance frequency
// and Q drift with temperature — the effects the conditioning chain's PLL
// and compensation stages exist to fight.
#pragma once

#include "common/rng.hpp"

namespace ascp::sensor {

struct GyroMemsConfig {
  // Mechanics (per unit mass).
  double f0_hz = 15e3;      ///< drive-mode resonance at 25 °C (paper: ~15 kHz)
  double mode_split_hz = 0; ///< f0_sense − f0_drive (0 = mode-matched ring)
  double q_drive = 5000.0;  ///< drive-mode quality factor at 25 °C
  double q_sense = 5000.0;  ///< sense-mode quality factor at 25 °C
  double angular_gain = 0.37;  ///< κ, Coriolis coupling of the ring

  // Transduction.
  double force_per_volt = 1.0;      ///< electrostatic drive [m/s² per V]
  double cap_per_meter = 1e-7;      ///< pickoff ΔC/Δx [F/m]
  double electrode_gap_m = 2e-6;    ///< gap for pickoff nonlinearity
  double quad_stiffness = 6.0e4;    ///< kq [1/s²] (≈50 °/s equivalent)

  // Temperature coefficients.
  double f0_tempco = -20e-6;        ///< Δf0/f0 per °C
  double q_tempco = -2e-3;          ///< ΔQ/Q per °C (Q drops when hot)
  double force_tempco = -150e-6;    ///< drive-force gain per °C
  double cap_tempco = 80e-6;        ///< pickoff gain per °C
  double quad_tempco = 2e-3;        ///< quadrature coupling per °C

  // Noise.
  /// Brownian force noise per unit mass at 25 °C [(m/s²)/√Hz]. Scaled in
  /// operation by √(T/T₀ · Q₀/Q(T)) — fluctuation-dissipation: hotter and
  /// more damped means noisier.
  double brownian_accel_density = 6.5e-5;

  double sim_fs = 1.92e6;  ///< integration rate [Hz]
};

/// Electrode interface sampled once per integration step.
struct GyroInputs {
  double v_drive = 0.0;    ///< primary drive electrode voltage [V]
  double v_control = 0.0;  ///< secondary control (force-feedback) voltage [V]
  double rate_dps = 0.0;   ///< yaw rate Ω [°/s]
  double temp_c = 25.0;    ///< die temperature [°C]
};

struct GyroOutputs {
  double dc_primary = 0.0;  ///< drive pickoff ΔC [F]
  double dc_sense = 0.0;    ///< sense pickoff ΔC [F]
};

/// Drive-electrode interconnect faults (bond-wire / metallization failures).
enum class DriveElectrodeFault {
  None,
  Open,   ///< electrode floating: no drive force reaches the ring
  Stuck,  ///< electrode shorted to a DC level: constant force, no AC drive
};

/// RK4-integrated two-mode ring model.
class GyroMems {
 public:
  GyroMems(const GyroMemsConfig& cfg, ascp::Rng rng);

  /// Advance one integration step (1/sim_fs seconds).
  GyroOutputs step(const GyroInputs& in);

  // ---- fault injection -----------------------------------------------------
  void inject_drive_fault(DriveElectrodeFault fault, double stuck_v = 0.0) {
    drive_fault_ = fault;
    stuck_v_ = stuck_v;
  }
  /// Additive quadrature-stiffness step Δkq [1/s²] — a crack or particle
  /// suddenly skewing the ring's stiffness axes.
  void inject_quadrature_step(double delta_kq) { quad_step_ = delta_kq; }
  void clear_faults() {
    drive_fault_ = DriveElectrodeFault::None;
    stuck_v_ = 0.0;
    quad_step_ = 0.0;
  }

  /// Modal state access for tests/analysis.
  double x() const { return s_.x; }
  double y() const { return s_.y; }
  double vx() const { return s_.vx; }
  double vy() const { return s_.vy; }

  /// Drive resonance frequency at a given temperature [Hz].
  double f0_at(double temp_c) const;
  /// Drive-mode Q at a given temperature.
  double q_at(double temp_c) const;
  /// Mechanical rate sensitivity ∂(sense amplitude)/∂Ω for matched modes at
  /// drive amplitude `x_amp` [m per °/s] — used by tests as ground truth.
  double mechanical_sensitivity(double x_amp, double temp_c = 25.0) const;

  const GyroMemsConfig& config() const { return cfg_; }

  void reset();

  void serialize_state(StateArchive& ar) {
    ar.value(s_.x);
    ar.value(s_.vx);
    ar.value(s_.y);
    ar.value(s_.vy);
    rng_.serialize_state(ar);
    ar.enum_value(drive_fault_);
    ar.value(stuck_v_);
    ar.value(quad_step_);
  }

 private:
  struct State {
    double x = 0.0, vx = 0.0, y = 0.0, vy = 0.0;
  };
  struct Params {  ///< temperature-resolved coefficients for one step
    double w0d2, w0s2, dd, ds, fpv, kq, kappa_omega;
  };

  static State derivative(const State& s, const Params& p, double fd, double fc, double noise);
  Params resolve(const GyroInputs& in) const;
  double pickoff_cap(double displacement, double temp_c) const;

  GyroMemsConfig cfg_;
  State s_;
  ascp::Rng rng_;
  double noise_sigma_;
  double dt_;
  DriveElectrodeFault drive_fault_ = DriveElectrodeFault::None;
  double stuck_v_ = 0.0;
  double quad_step_ = 0.0;
};

}  // namespace ascp::sensor
