#include "sensor/stimulus_source.hpp"

#include <cstring>
#include <fstream>

namespace ascp::sensor {

const char* stimulus_kind_name(StimulusKind k) {
  switch (k) {
    case StimulusKind::Synthetic: return "synthetic";
    case StimulusKind::Recorded: return "recorded";
    case StimulusKind::Queue: return "queue";
  }
  return "?";
}

const char* probe_point_name(ProbePoint p) {
  switch (p) {
    case ProbePoint::Stimulus: return "stimulus";
    case ProbePoint::PostMems: return "post_mems";
    case ProbePoint::PostAfe: return "post_afe";
    case ProbePoint::PostAdc: return "post_adc";
    case ProbePoint::DecimatedOutput: return "decimated_output";
  }
  return "?";
}

// ---- .strace container -----------------------------------------------------

namespace {

constexpr char kStraceMagic[8] = {'A', 'S', 'C', 'P', 'S', 'T', 'R', 'C'};

void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& v, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& v, double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof u);
  put_u64(v, u);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return x;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return x;
}

double get_f64(const std::uint8_t* p) {
  const std::uint64_t u = get_u64(p);
  double x;
  std::memcpy(&x, &u, sizeof x);
  return x;
}

}  // namespace

std::vector<std::uint8_t> encode_strace(const StimulusTrace& trace) {
  std::vector<std::uint8_t> payload;
  payload.reserve(trace.samples.size() * 16);
  for (const auto& s : trace.samples) {
    put_f64(payload, s.rate_dps);
    put_f64(payload, s.temp_c);
  }
  std::vector<std::uint8_t> image;
  image.reserve(kStraceHeaderSize + payload.size());
  image.insert(image.end(), kStraceMagic, kStraceMagic + sizeof kStraceMagic);
  put_u32(image, kStraceVersion);
  put_u32(image, static_cast<std::uint32_t>(trace.interp));
  put_f64(image, trace.sample_rate_hz);
  put_u64(image, trace.samples.size());
  put_u32(image, crc32(payload.data(), payload.size()));
  image.insert(image.end(), payload.begin(), payload.end());
  return image;
}

bool inspect_strace(const std::vector<std::uint8_t>& bytes, StraceInfo* info) {
  if (bytes.size() < kStraceHeaderSize) return false;
  if (std::memcmp(bytes.data(), kStraceMagic, sizeof kStraceMagic) != 0) return false;
  StraceInfo out;
  out.version = get_u32(bytes.data() + 8);
  out.interp = get_u32(bytes.data() + 12);
  out.sample_rate_hz = get_f64(bytes.data() + 16);
  out.count = get_u64(bytes.data() + 24);
  out.crc = get_u32(bytes.data() + 32);
  const std::uint64_t payload_len = out.count * 16;
  out.crc_ok = bytes.size() >= kStraceHeaderSize + payload_len &&
               crc32(bytes.data() + kStraceHeaderSize, static_cast<std::size_t>(payload_len)) ==
                   out.crc;
  if (info) *info = out;
  return true;
}

StimulusTrace decode_strace(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kStraceHeaderSize) throw StateError("strace truncated: no header");
  if (std::memcmp(bytes.data(), kStraceMagic, sizeof kStraceMagic) != 0)
    throw StateError("strace bad magic");
  const std::uint32_t version = get_u32(bytes.data() + 8);
  if (version != kStraceVersion)
    throw StateError("strace version " + std::to_string(version) + " unsupported");
  const std::uint32_t interp = get_u32(bytes.data() + 12);
  if (interp > static_cast<std::uint32_t>(TraceInterp::Linear))
    throw StateError("strace unknown interpolation mode " + std::to_string(interp));
  const std::uint64_t count = get_u64(bytes.data() + 24);
  if (count > (1ull << 32)) throw StateError("strace sample count implausible");
  const std::uint64_t payload_len = count * 16;
  if (bytes.size() < kStraceHeaderSize + payload_len)
    throw StateError("strace truncated: payload shorter than declared");
  const std::uint32_t want = get_u32(bytes.data() + 32);
  const std::uint32_t got =
      crc32(bytes.data() + kStraceHeaderSize, static_cast<std::size_t>(payload_len));
  if (want != got) throw StateError("strace CRC mismatch: payload corrupted");

  StimulusTrace trace;
  trace.sample_rate_hz = get_f64(bytes.data() + 16);
  trace.interp = static_cast<TraceInterp>(interp);
  trace.samples.resize(static_cast<std::size_t>(count));
  const std::uint8_t* p = bytes.data() + kStraceHeaderSize;
  for (auto& s : trace.samples) {
    s.rate_dps = get_f64(p);
    s.temp_c = get_f64(p + 8);
    p += 16;
  }
  return trace;
}

bool save_strace(const std::string& path, const StimulusTrace& trace) {
  const auto bytes = encode_strace(trace);
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(f);
}

StimulusTrace load_strace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw StateError("cannot open strace file: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  return decode_strace(bytes);
}

// ---- RecordedSource --------------------------------------------------------

RecordedSource::RecordedSource(std::shared_ptr<const StimulusTrace> trace, double tick_rate_hz,
                               long start_tick)
    : trace_(std::move(trace)), tick_rate_hz_(tick_rate_hz), start_(start_tick) {
  if (!trace_ || trace_->samples.empty())
    throw StateError("recorded source needs a non-empty trace");
  if (!(trace_->sample_rate_hz > 0.0) || !(tick_rate_hz_ > 0.0))
    throw StateError("recorded source needs positive sample rates");
  exact_ = trace_->sample_rate_hz == tick_rate_hz_;
  step_ = trace_->sample_rate_hz / tick_rate_hz_;
}

StimulusSample RecordedSource::sample(long tick) {
  const auto& s = trace_->samples;
  const long n = static_cast<long>(s.size());
  long k = tick - start_;
  if (k < 0) k = 0;
  if (exact_) {
    // The bit-exact replay path: one trace sample per simulation tick, no
    // floating-point index arithmetic at all.
    if (k >= n) {
      ++underruns_;
      cursor_ = n - 1;
      return s.back();
    }
    cursor_ = k;
    return s[static_cast<std::size_t>(k)];
  }
  const double pos = static_cast<double>(k) * step_;
  if (pos >= static_cast<double>(n - 1)) {
    // The final sample's own interval holds it; anything beyond the trace
    // duration is an underrun (still held — replay degrades, never throws).
    if (pos >= static_cast<double>(n)) ++underruns_;
    cursor_ = n - 1;
    return s.back();
  }
  const auto i0 = static_cast<std::size_t>(pos);
  cursor_ = static_cast<std::int64_t>(i0);
  if (trace_->interp == TraceInterp::Hold) return s[i0];
  const double frac = pos - static_cast<double>(i0);
  const auto& lo = s[i0];
  const auto& hi = s[i0 + 1];
  return {lo.rate_dps + (hi.rate_dps - lo.rate_dps) * frac,
          lo.temp_c + (hi.temp_c - lo.temp_c) * frac};
}

void RecordedSource::serialize_state(StateArchive& ar) {
  ar.begin_section("SREC");
  // Trace identity: a restored source must be replaying the *same* trace,
  // or the cursor below is meaningless.
  std::uint64_t count = trace_->samples.size();
  double rate = trace_->sample_rate_hz;
  ar.value(count);
  ar.value(rate);
  if (count != trace_->samples.size() || rate != trace_->sample_rate_hz)
    throw StateError("checkpoint recorded-trace identity mismatch");
  ar.value(cursor_);
  ar.value(underruns_);
  ar.end_section();
}

// ---- QueueSource -----------------------------------------------------------

void QueueSource::serialize_state(StateArchive& ar) {
  ar.begin_section("SQUE");
  ar.value(last_.rate_dps);
  ar.value(last_.temp_c);
  ar.value(consumed_);
  ar.value(underruns_);
  std::uint64_t pending = q_.size();
  ar.value(pending);
  if (!ar.saving()) {
    if (pending > cfg_.capacity)
      throw StateError("checkpoint queue-source pending count exceeds capacity");
    q_.resize(static_cast<std::size_t>(pending));
  }
  for (auto& s : q_) {
    ar.value(s.rate_dps);
    ar.value(s.temp_c);
  }
  ar.end_section();
}

}  // namespace ascp::sensor
